package farm

import (
	"fmt"
	"time"

	"repro/internal/amg"
	"repro/internal/check"
	"repro/internal/netsim"
	"repro/internal/switchsim"
	"repro/internal/transport"
)

// The farm is both the thing the scenario engine injects faults into
// (check.Target) and the live-state oracle the invariant checkers
// consult (check.Context). Both are satisfied structurally so check
// never has to import farm.
var (
	_ check.Target  = (*Farm)(nil)
	_ check.Context = (*Farm)(nil)
)

// Now returns the current virtual time under either kernel.
func (f *Farm) Now() time.Duration {
	if f.Shards != nil {
		return f.Shards.Now()
	}
	return f.Sched.Now()
}

// After schedules fn on the virtual clock.
func (f *Farm) After(d time.Duration, fn func()) { f.Sched.AfterFunc(d, fn) }

// SetSegmentLoss overrides one segment's link quality: loss in [0, 1]
// degrades it (1 is a full partition); a negative loss heals the
// segment back to the farm's default profile.
func (f *Farm) SetSegmentLoss(segment string, loss float64) {
	p := netsim.LinkProfile{Loss: f.Spec.Loss, Latency: f.Spec.Latency, Jitter: f.Spec.Jitter}
	if loss >= 0 {
		if loss > 1 {
			loss = 1
		}
		p.Loss = loss
	}
	f.Net.SetSegmentProfile(segment, p)
}

// ActiveCentralNode names the node hosting the authoritative Central
// ("" when none is active).
func (f *Farm) ActiveCentralNode() string {
	c := f.ActiveCentral()
	if c == nil {
		return ""
	}
	for _, name := range f.order {
		if f.Centrals[name] == c {
			return name
		}
	}
	return ""
}

// ViewOf returns the committed membership of the adapter at ip, false
// when the owning daemon is down or the adapter holds no view.
func (f *Farm) ViewOf(ip transport.IP) (amg.Membership, bool) {
	node, ok := f.owner[ip]
	if !ok {
		return amg.Membership{}, false
	}
	d := f.Daemons[node]
	if !d.Running() {
		return amg.Membership{}, false
	}
	return d.View(ip)
}

// JournalDrift reports the divergence between the named node's journal
// fold and its live Central state ("" when consistent or not relevant).
func (f *Farm) JournalDrift(node string) string {
	c, ok := f.Centrals[node]
	if !ok {
		return ""
	}
	return c.JournalDrift()
}

// CheckTopology captures the farm's static shape for the scenario
// generator. Segments excludes the admin VLAN: partitioning the control
// segment tests Central redundancy, which the failover op already
// covers with a bounded blast radius.
func (f *Farm) CheckTopology() check.Topology {
	var topo check.Topology
	for _, name := range f.order {
		info := f.Nodes[name]
		topo.Nodes = append(topo.Nodes, check.NodeTopo{
			Name:     name,
			Role:     info.Role,
			Domain:   info.Domain,
			Adapters: append([]transport.IP(nil), info.Adapters...),
			Switch:   info.Switch,
		})
	}
	for _, sw := range f.Fabric.Switches() {
		topo.Switches = append(topo.Switches, sw.Name())
	}
	seen := map[string]bool{}
	for _, name := range f.order {
		for _, ip := range f.Nodes[name].Adapters {
			seg, ok := f.Fabric.SegmentOf(ip)
			if ok && seg != switchsim.SegmentName(AdminVLAN) && !seen[seg] {
				seen[seg] = true
				topo.Segments = append(topo.Segments, seg)
			}
		}
	}
	for _, d := range f.Spec.Domains {
		topo.Domains = append(topo.Domains, d.Name)
	}
	return topo
}

// ConvergenceFailures audits the farm after a chaos run has settled:
// every daemon back up, every adapter segmented and holding a view, one
// view per segment, and the active Central stable, complete, and
// verified against the switches. It returns one message per failed
// property (empty means converged).
func (f *Farm) ConvergenceFailures() []string {
	var out []string
	bySegment := map[string]map[string]bool{}
	for _, name := range f.order {
		d := f.Daemons[name]
		if !d.Running() {
			out = append(out, fmt.Sprintf("node %s still down", name))
			continue
		}
		for _, ip := range f.Nodes[name].Adapters {
			seg, connected := f.SegmentOf(ip)
			if !connected {
				out = append(out, fmt.Sprintf("adapter %v has no segment", ip))
				continue
			}
			v, ok := d.View(ip)
			if !ok {
				out = append(out, fmt.Sprintf("adapter %v (node %s) has no committed view", ip, name))
				continue
			}
			set := bySegment[seg]
			if set == nil {
				set = map[string]bool{}
				bySegment[seg] = set
			}
			set[v.String()] = true
		}
	}
	for seg, views := range bySegment {
		if len(views) != 1 {
			out = append(out, fmt.Sprintf("segment %s did not converge to one view: %v", seg, views))
		}
	}
	c := f.ActiveCentral()
	if c == nil {
		return append(out, "no active central")
	}
	if !c.Stable() {
		out = append(out, "central not stable after quiet period")
	}
	total := 0
	for _, members := range c.Groups() {
		total += len(members)
	}
	want := 0
	for _, name := range f.order {
		want += len(f.Nodes[name].Adapters)
	}
	if total != want {
		out = append(out, fmt.Sprintf("central tracks %d adapters, want %d", total, want))
	}
	if ms := c.Verify(); len(ms) != 0 {
		out = append(out, fmt.Sprintf("post-chaos verification found: %v", ms))
	}
	return out
}
