package core

import (
	"testing"
	"time"
)

// TestLeaderEvictsStragglerWhoRediscovers drives the stale-view healing
// path end to end: a member is dropped from the group without ever
// hearing about it (the "dropped while unreachable" shape), keeps running
// its stale ring, and must be healed by the leader's Evict — abandon the
// dead view, rediscover the segment, rejoin.
func TestLeaderEvictsStragglerWhoRediscovers(t *testing.T) {
	h := newHarness(t, 47)
	cfg := fastConfig()
	ips := h.singleSegment(cfg, 5)
	h.run(8 * time.Second)
	h.assertOneGroup(ips)
	leaderIP := h.viewOf(ips[0]).Leader()

	var leader, victim *adapterProto
	for _, d := range h.daemons {
		if p, ok := d.byIP[leaderIP]; ok {
			leader = p
		}
		if p, ok := d.byIP[ipn(0, 2)]; ok {
			victim = p
		}
	}
	// Depart the victim leader-side: the rest of the group recommits, but
	// the victim is no longer a member so no Prepare/Commit reaches it.
	leader.lead.queueDepart(victim.self)
	h.run(time.Second)
	if leader.view.Contains(victim.self) {
		t.Fatal("depart never committed")
	}
	if victim.state != stMember || !victim.view.Contains(victim.self) {
		t.Fatalf("fixture broken: victim state=%v view=%v (should be wedged on the stale view)",
			victim.state, victim.view)
	}

	// The straggler's stale-ring traffic (its heartbeats, or the suspicions
	// it raises about neighbors that went silent on it) must draw an Evict.
	// Poll while healing runs: viewCommitted clears the evictAt entry the
	// moment the evicted adapter rejoins, so the evidence is transient.
	evicted := false
	for waited := time.Duration(0); waited < 20*time.Second; waited += 250 * time.Millisecond {
		h.run(250 * time.Millisecond)
		if _, ok := leader.lead.evictAt[victim.self]; ok {
			evicted = true
			break
		}
	}
	if !evicted {
		t.Fatal("leader never evicted the straggler")
	}
	// And the evicted straggler rediscovers the segment and rejoins.
	h.run(15 * time.Second)
	h.assertOneGroup(ips)
}
