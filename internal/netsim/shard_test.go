package netsim

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/transport"
)

// shardFixture builds a sharded network of hosts h0..h{n-1} on one
// RecvFilter segment, host i homed on shard i%k.
type shardFixture struct {
	sh       *sim.Shards
	res      *StaticResolver
	net      *Network
	adapters []*Adapter
	scheds   []*sim.Scheduler // per adapter: its home shard's scheduler
}

func newShardFixture(seed int64, k, hosts int, lookahead time.Duration, p LinkProfile) *shardFixture {
	sh := sim.NewShards(seed, k, lookahead)
	sh.SetParallel(false)
	res := NewStaticResolver()
	home := func(node string) int {
		var i int
		fmt.Sscanf(node, "h%d", &i)
		return i % k
	}
	n := NewSharded(sh, res, home)
	n.SetSegmentProfile("seg", p)
	f := &shardFixture{sh: sh, res: res, net: n}
	for i := 0; i < hosts; i++ {
		a := n.AddAdapter(ip(byte(i+1)), fmt.Sprintf("h%d", i))
		res.Attach(a.LocalIP(), "seg")
		f.adapters = append(f.adapters, a)
		f.scheds = append(f.scheds, sh.Shard(i%k))
	}
	n.Ensure()
	return f
}

// TestShardedUnicastCross checks a cross-shard unicast arrives once, with
// the right payload, at send time + base latency + deterministic spread.
func TestShardedUnicastCross(t *testing.T) {
	p := LinkProfile{Latency: 2 * time.Millisecond, Spread: 500 * time.Microsecond}
	f := newShardFixture(1, 2, 2, time.Millisecond, p)
	a, b := f.adapters[0], f.adapters[1]
	if a.Lane() == b.Lane() {
		t.Fatal("fixture should split hosts across lanes")
	}
	var gotAt time.Duration
	var got string
	b.Bind(100, func(src, _ transport.Addr, pl []byte) {
		gotAt = f.scheds[1].Now()
		got = string(pl)
	})
	sendAt := 10 * time.Millisecond
	f.scheds[0].AfterFunc(sendAt, func() {
		if err := a.Unicast(100, transport.Addr{IP: b.LocalIP(), Port: 100}, []byte("xlane")); err != nil {
			t.Error(err)
		}
	})
	f.sh.RunUntil(time.Second)
	if got != "xlane" {
		t.Fatalf("payload = %q", got)
	}
	want := sendAt + p.Latency + pairSpread(p, a.LocalIP(), b.LocalIP())
	if gotAt != want {
		t.Fatalf("arrived at %v, want %v", gotAt, want)
	}
}

// TestShardedMulticastRecvFilter checks receiver-side filtering across
// shards: subscribers on every lane hear the multicast, non-subscribers
// and the sender do not.
func TestShardedMulticastRecvFilter(t *testing.T) {
	p := LinkProfile{Latency: 2 * time.Millisecond, RecvFilter: true}
	f := newShardFixture(1, 4, 8, time.Millisecond, p)
	group := transport.Addr{IP: transport.BeaconGroup, Port: 200}
	heard := make([]int, len(f.adapters))
	for i, a := range f.adapters {
		i := i
		if i%2 == 0 { // evens subscribe (sender h0 included)
			a.JoinGroup(group.IP, group.Port)
		}
		a.Bind(200, func(_, _ transport.Addr, _ []byte) { heard[i]++ })
	}
	f.scheds[0].AfterFunc(5*time.Millisecond, func() {
		if err := f.adapters[0].Multicast(200, group, []byte("beacon")); err != nil {
			t.Error(err)
		}
	})
	f.sh.RunUntil(time.Second)
	for i, h := range heard {
		want := 0
		if i%2 == 0 && i != 0 {
			want = 1
		}
		if h != want {
			t.Errorf("host %d heard %d, want %d", i, h, want)
		}
	}
}

// TestShardedCrossMulticastRequiresRecvFilter: flooding another shard's
// subscription state is a race, so the send path must refuse it loudly.
func TestShardedCrossMulticastRequiresRecvFilter(t *testing.T) {
	p := LinkProfile{Latency: 2 * time.Millisecond} // no RecvFilter
	f := newShardFixture(1, 2, 2, time.Millisecond, p)
	group := transport.Addr{IP: transport.BeaconGroup, Port: 200}
	f.adapters[1].JoinGroup(group.IP, group.Port)
	f.scheds[0].AfterFunc(time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for cross-shard multicast without RecvFilter")
			}
		}()
		f.adapters[0].Multicast(200, group, []byte("x"))
	})
	f.sh.RunUntil(10 * time.Millisecond)
}

// deliveryLog runs a draw-free mixed unicast/multicast workload over k
// shards and returns per-receiver logs of (arrival time, source, first
// payload byte) — the observable delivery history.
func deliveryLog(t *testing.T, k int) []string {
	t.Helper()
	const hosts = 12
	p := LinkProfile{Latency: 2 * time.Millisecond, Spread: 700 * time.Microsecond, RecvFilter: true}
	f := newShardFixture(7, k, hosts, time.Millisecond, p)
	group := transport.Addr{IP: transport.BeaconGroup, Port: 200}
	logs := make([]string, hosts)
	for i, a := range f.adapters {
		i, a := i, a
		a.JoinGroup(group.IP, group.Port)
		rec := func(src transport.Addr, pl []byte) {
			logs[i] += fmt.Sprintf("(%v %v %d)", f.scheds[i].Now(), src.IP, pl[0])
		}
		a.Bind(200, func(src, _ transport.Addr, pl []byte) { rec(src, pl) })
		a.Bind(100, func(src, _ transport.Addr, pl []byte) { rec(src, pl) })
	}
	for i, a := range f.adapters {
		i, a := i, a
		f.scheds[i].AfterFunc(time.Duration(i+1)*3*time.Millisecond, func() {
			if err := a.Multicast(200, group, []byte{byte(i)}); err != nil {
				t.Error(err)
			}
			peer := f.adapters[(i+5)%hosts]
			if err := a.Unicast(100, transport.Addr{IP: peer.LocalIP(), Port: 100}, []byte{byte(100 + i)}); err != nil {
				t.Error(err)
			}
		})
	}
	f.sh.RunUntil(time.Second)
	return logs
}

// TestShardedDeliveryDeterminism checks the tentpole contract at the
// netsim level: the same workload produces byte-identical per-receiver
// delivery histories for 1, 2, 3 and 4 shards (1 shard being the exact
// legacy kernel).
func TestShardedDeliveryDeterminism(t *testing.T) {
	base := deliveryLog(t, 1)
	for _, k := range []int{2, 3, 4} {
		got := deliveryLog(t, k)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("k=%d host %d diverged:\n k=1: %s\n k=%d: %s", k, i, base[i], k, got[i])
			}
		}
	}
}

// TestShardedTopologyChangeMidWindowPanics: sharded runs are for static
// topologies; a resolver change surfacing inside a window must fail fast
// rather than race the cache rebuild.
func TestShardedTopologyChangeMidWindowPanics(t *testing.T) {
	p := LinkProfile{Latency: 2 * time.Millisecond}
	f := newShardFixture(1, 2, 2, time.Millisecond, p)
	f.scheds[0].AfterFunc(time.Millisecond, func() {
		f.res.Attach(ip(200), "seg") // bumps the resolver version mid-window
		defer func() {
			if recover() == nil {
				t.Error("expected panic for mid-window topology change")
			}
		}()
		f.adapters[0].Unicast(100, transport.Addr{IP: f.adapters[1].LocalIP(), Port: 100}, []byte("x"))
	})
	f.sh.RunUntil(10 * time.Millisecond)
}
