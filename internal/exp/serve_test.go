package exp

import (
	"reflect"
	"testing"
	"time"
)

func quickServe() ServeOptions {
	o := DefaultServe()
	o.FrontEnds = []int{2}
	o.Delays = []time.Duration{0, 1 * time.Second}
	return o
}

// One cell, run twice, must be bit-identical: the whole serving plane —
// arrivals, routing, notification pipe — lives inside the deterministic
// kernel.
func TestServeCellDeterministic(t *testing.T) {
	o := quickServe()
	a, err := ServeCell(o, 2, "failure", 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ServeCell(o, 2, "failure", 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("cells diverged:\n  %+v\n  %+v", a, b)
	}
}

// The E17 acceptance properties on a minimal sweep: every cell recovers
// with a clean audit, an unannounced failure always costs error-seconds,
// the cost strictly increases with notification delay, and a
// pre-announced move through a direct pipe is free.
func TestServeSweepSanity(t *testing.T) {
	o := quickServe()
	points, err := ServeSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if bad := serveSanity(o, points); len(bad) != 0 {
		t.Fatalf("sanity violations: %v", bad)
	}
	for _, pt := range points {
		if pt.Schedule == "move" && pt.DelayMs == 0 && pt.ErrorSeconds != 0 {
			t.Fatalf("pre-announced move through a direct pipe cost %.3f error-seconds", pt.ErrorSeconds)
		}
		if pt.Requests == 0 || pt.PeakSessions == 0 {
			t.Fatalf("cell served no traffic: %+v", pt)
		}
	}
}
