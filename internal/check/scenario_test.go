package check

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/transport"
)

func testTopology() Topology {
	return Topology{
		Nodes: []NodeTopo{
			{Name: "mgmt-00", Role: "admin", Adapters: []transport.IP{ip("10.0.0.1")}, Switch: "sw-00"},
			{Name: "acme-fe-01", Role: "frontend", Domain: "acme",
				Adapters: []transport.IP{ip("10.0.0.11"), ip("10.0.0.12")}, Switch: "sw-00"},
			{Name: "acme-be-01", Role: "backend", Domain: "acme",
				Adapters: []transport.IP{ip("10.0.0.21")}, Switch: "sw-01"},
			{Name: "globex-be-01", Role: "backend", Domain: "globex",
				Adapters: []transport.IP{ip("10.0.0.31")}, Switch: "sw-01"},
		},
		Switches: []string{"sw-00", "sw-01"},
		Segments: []string{"vlan-101", "vlan-102"},
		Domains:  []string{"acme", "globex"},
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	topo := testTopology()
	a := Generate(42, topo, GenOpts{Partition: true, Failover: true})
	b := Generate(42, topo, GenOpts{Partition: true, Failover: true})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	c := Generate(43, topo, GenOpts{Partition: true, Failover: true})
	if reflect.DeepEqual(a.Ops, c.Ops) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestGenerateNeverTargetsAdminNodes(t *testing.T) {
	topo := testTopology()
	for seed := int64(1); seed <= 20; seed++ {
		s := Generate(seed, topo, GenOpts{Rounds: 40})
		for _, op := range s.Ops {
			if op.Node == "mgmt-00" {
				t.Fatalf("seed %d: op targets admin node directly: %+v", seed, op)
			}
			if op.Adapter == ip("10.0.0.1") {
				t.Fatalf("seed %d: op targets admin adapter: %+v", seed, op)
			}
		}
	}
}

func TestScheduleDSLRoundTrip(t *testing.T) {
	orig := Schedule{
		Seed:   101,
		Settle: 90 * time.Second,
		Ops: []Op{
			{At: 2 * time.Second, Kind: OpKillNode, Node: "acme-be-01"},
			{At: 5 * time.Second, Kind: OpFailAdapter, Adapter: ip("10.0.0.11"),
				Mode: netsim.FailRecv, For: 10 * time.Second},
			{At: 9 * time.Second, Kind: OpPartition, Target: "vlan-101", For: 8 * time.Second},
			{At: 11 * time.Second, Kind: OpDropProfile, Target: "vlan-102",
				Loss: 0.35, For: 20 * time.Second},
			{At: 12 * time.Second, Kind: OpKillSwitch, Target: "sw-01", For: 8 * time.Second},
			{At: 15 * time.Second, Kind: OpMoveDomain, Node: "acme-fe-01", Target: "globex"},
			{At: 20 * time.Second, Kind: OpFailover, For: 30 * time.Second},
			{At: 25 * time.Second, Kind: OpRestartNode, Node: "acme-be-01"},
		},
	}
	text := orig.String()
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse(String()) failed: %v\n%s", err, text)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Fatalf("round trip changed the schedule:\n got %+v\nwant %+v", back, orig)
	}
}

func TestGeneratedSchedulesRoundTrip(t *testing.T) {
	topo := testTopology()
	for seed := int64(1); seed <= 10; seed++ {
		s := Generate(seed, topo, GenOpts{Partition: true, Failover: true})
		back, err := Parse(s.String())
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, s)
		}
		if !reflect.DeepEqual(s, back) {
			t.Fatalf("seed %d round trip changed the schedule", seed)
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"frobnicate 3",
		"@notatime kill x",
		"@2s explode x",
		"@2s kill",
		"@2s fail 999.1.2.3 fail-recv",
		"@2s fail 10.0.0.1 fail-sideways",
		"@2s drop vlan-1 1.7",
		"@2s move node globex",
		"@2s failover extra-arg",
		"seed twelve",
		"settle -3s",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted garbage", bad)
		}
	}
}

func TestParseIgnoresCommentsAndBlanks(t *testing.T) {
	s, err := Parse("# a comment\n\nseed 7\n@2s kill n1\n\n# another\nsettle 1m\n")
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 7 || len(s.Ops) != 1 || s.Settle != time.Minute {
		t.Fatalf("unexpected parse result: %+v", s)
	}
}

func TestGoLiteralMentionsEveryOp(t *testing.T) {
	topo := testTopology()
	s := Generate(3, topo, GenOpts{Partition: true, Failover: true, Rounds: 40})
	lit := s.GoLiteral()
	if !strings.HasPrefix(lit, "check.Schedule{") {
		t.Fatalf("literal prefix: %q", lit[:30])
	}
	if got := strings.Count(lit, "{At:"); got != len(s.Ops) {
		t.Fatalf("literal has %d ops, schedule has %d:\n%s", got, len(s.Ops), lit)
	}
}

// scriptedTarget records applied ops so scheduling/reversal order can be
// asserted without a farm.
type scriptedTarget struct {
	now     time.Duration
	timers  []scriptedTimer
	applied []string
	central string
}

type scriptedTimer struct {
	at time.Duration
	fn func()
}

func (s *scriptedTarget) Now() time.Duration { return s.now }
func (s *scriptedTarget) After(d time.Duration, fn func()) {
	s.timers = append(s.timers, scriptedTimer{s.now + d, fn})
}
func (s *scriptedTarget) RunFor(d time.Duration) {
	end := s.now + d
	for {
		best := -1
		for i, tm := range s.timers {
			if tm.at <= end && (best < 0 || tm.at < s.timers[best].at) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		tm := s.timers[best]
		s.timers = append(s.timers[:best], s.timers[best+1:]...)
		s.now = tm.at
		tm.fn()
	}
	s.now = end
}
func (s *scriptedTarget) log(f string, a ...interface{}) {
	s.applied = append(s.applied, fmt.Sprintf("%v "+f, append([]interface{}{s.now}, a...)...))
}

func (s *scriptedTarget) KillNode(name string) error    { s.log("kill %s", name); return nil }
func (s *scriptedTarget) RestartNode(name string) error { s.log("restart %s", name); return nil }
func (s *scriptedTarget) FailAdapter(ip transport.IP, mode netsim.FailureMode) error {
	s.log("fail %v %v", ip, mode)
	return nil
}
func (s *scriptedTarget) KillSwitch(name string) error    { s.log("switch-off %s", name); return nil }
func (s *scriptedTarget) RestoreSwitch(name string) error { s.log("switch-on %s", name); return nil }
func (s *scriptedTarget) MoveNodeToDomain(node, to string, done func(error)) error {
	s.log("move %s to %s", node, to)
	return nil
}
func (s *scriptedTarget) SetSegmentLoss(segment string, loss float64) {
	s.log("loss %s %g", segment, loss)
}
func (s *scriptedTarget) ActiveCentralNode() string { return s.central }

func TestRunAppliesAndReversesOps(t *testing.T) {
	tg := &scriptedTarget{central: "mgmt-00"}
	s := Schedule{
		Settle: 5 * time.Second,
		Ops: []Op{
			{At: 1 * time.Second, Kind: OpFailAdapter, Adapter: ip("10.0.0.11"),
				Mode: netsim.FailRecv, For: 3 * time.Second},
			{At: 2 * time.Second, Kind: OpPartition, Target: "vlan-101", For: 2 * time.Second},
			{At: 3 * time.Second, Kind: OpFailover, For: 4 * time.Second},
		},
	}
	s.Run(tg)
	want := []string{
		"1s fail 10.0.0.11 fail-recv",
		"2s loss vlan-101 1",
		"3s kill mgmt-00",
		"4s fail 10.0.0.11 healthy",
		"4s loss vlan-101 -1",
		"7s restart mgmt-00",
	}
	if !reflect.DeepEqual(tg.applied, want) {
		t.Fatalf("applied ops:\n got %v\nwant %v", tg.applied, want)
	}
	// Horizon (3s+4s) + settle (5s) = 12s.
	if tg.now != 12*time.Second {
		t.Fatalf("final time %v, want 12s", tg.now)
	}
}
