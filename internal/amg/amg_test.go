package amg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/transport"
	"repro/internal/wire"
)

func mk(last ...byte) []wire.Member {
	out := make([]wire.Member, len(last))
	for i, d := range last {
		out[i] = wire.Member{IP: transport.MakeIP(10, 0, 0, d), Node: "n", Index: 0}
	}
	return out
}

func ip(d byte) transport.IP { return transport.MakeIP(10, 0, 0, d) }

func TestNewSortsDescendingAndDedups(t *testing.T) {
	g := New(1, mk(3, 9, 1, 9, 5))
	if g.Size() != 4 {
		t.Fatalf("size = %d, want 4 (dedup)", g.Size())
	}
	want := []transport.IP{ip(9), ip(5), ip(3), ip(1)}
	for i, w := range want {
		if g.Members[i].IP != w {
			t.Fatalf("rank %d = %v, want %v", i, g.Members[i].IP, w)
		}
	}
}

func TestLeaderAndSuccessor(t *testing.T) {
	g := New(1, mk(3, 9, 5))
	if g.Leader() != ip(9) {
		t.Errorf("leader = %v", g.Leader())
	}
	if g.Successor() != ip(5) {
		t.Errorf("successor = %v", g.Successor())
	}
	single := New(1, mk(7))
	if single.Leader() != ip(7) || single.Successor() != 0 {
		t.Error("singleton leader/successor wrong")
	}
	empty := New(1, nil)
	if empty.Leader() != 0 {
		t.Error("empty leader should be 0")
	}
}

func TestRingNeighbors(t *testing.T) {
	g := New(1, mk(1, 2, 3, 4)) // order: 4 3 2 1
	// RightOf 4 is 3, LeftOf 4 is 1 (wrap).
	if g.RightOf(ip(4)) != ip(3) || g.LeftOf(ip(4)) != ip(1) {
		t.Errorf("neighbors of leader: %v %v", g.LeftOf(ip(4)), g.RightOf(ip(4)))
	}
	if g.RightOf(ip(1)) != ip(4) {
		t.Errorf("RightOf tail = %v, want leader", g.RightOf(ip(1)))
	}
	l, r := g.Neighbors(ip(3))
	if l != ip(4) || r != ip(2) {
		t.Errorf("Neighbors(3) = %v %v", l, r)
	}
	if g.RightOf(ip(99)) != 0 {
		t.Error("RightOf nonmember should be 0")
	}
	// Singleton: self-neighbor.
	s := New(1, mk(7))
	if s.RightOf(ip(7)) != ip(7) {
		t.Error("singleton right neighbor should be self")
	}
}

func TestIndexContains(t *testing.T) {
	g := New(1, mk(1, 2, 3))
	if g.IndexOf(ip(3)) != 0 || g.IndexOf(ip(2)) != 1 || g.IndexOf(ip(1)) != 2 {
		t.Error("IndexOf wrong")
	}
	if g.IndexOf(ip(9)) != -1 || g.Contains(ip(9)) {
		t.Error("nonmember lookups wrong")
	}
	if m, ok := g.Member(ip(2)); !ok || m.IP != ip(2) {
		t.Error("Member lookup wrong")
	}
}

func TestWithJoinedWithout(t *testing.T) {
	g := New(5, mk(1, 3))
	g2 := g.WithJoined(mk(2)...)
	if g2.Version != 6 || g2.Size() != 3 || !g2.Contains(ip(2)) {
		t.Fatalf("WithJoined = %v", g2)
	}
	if g.Size() != 2 {
		t.Fatal("WithJoined mutated receiver")
	}
	g3 := g2.Without(ip(3), ip(1))
	if g3.Version != 7 || g3.Size() != 1 || !g3.Contains(ip(2)) {
		t.Fatalf("Without = %v", g3)
	}
}

func TestDiff(t *testing.T) {
	old := New(1, mk(1, 2, 3))
	cur := New(2, mk(2, 3, 4, 5))
	joined, left := cur.Diff(old)
	if len(joined) != 2 || len(left) != 1 {
		t.Fatalf("diff: joined=%v left=%v", joined, left)
	}
	jset := map[transport.IP]bool{}
	for _, m := range joined {
		jset[m.IP] = true
	}
	if !jset[ip(4)] || !jset[ip(5)] || left[0] != ip(1) {
		t.Fatalf("diff contents wrong: %v %v", joined, left)
	}
	// Diff against self is empty.
	j2, l2 := cur.Diff(cur)
	if len(j2) != 0 || len(l2) != 0 {
		t.Fatal("self-diff not empty")
	}
}

func TestEqualAndSameMembers(t *testing.T) {
	a := New(1, mk(1, 2))
	b := New(1, mk(2, 1))
	c := New(2, mk(1, 2))
	d := New(1, mk(1, 3))
	if !a.Equal(b) {
		t.Error("same sets same version must be Equal")
	}
	if a.Equal(c) {
		t.Error("version must matter for Equal")
	}
	if !a.SameMembers(c) {
		t.Error("SameMembers must ignore version")
	}
	if a.SameMembers(d) {
		t.Error("different sets reported same")
	}
}

func TestSubgroups(t *testing.T) {
	g := New(1, mk(1, 2, 3, 4, 5, 6, 7))
	subs := g.Subgroups(3)
	if len(subs) != 3 || len(subs[0]) != 3 || len(subs[1]) != 3 || len(subs[2]) != 1 {
		t.Fatalf("subgroup sizes: %d groups", len(subs))
	}
	// Contiguity in rank order.
	if subs[0][0].IP != ip(7) || subs[2][0].IP != ip(1) {
		t.Fatal("subgroups not rank-contiguous")
	}
	if g.SubgroupOf(ip(7), 3) != 0 || g.SubgroupOf(ip(1), 3) != 2 {
		t.Fatal("SubgroupOf wrong")
	}
	if g.SubgroupOf(ip(99), 3) != -1 {
		t.Fatal("SubgroupOf nonmember")
	}
	if n := len(g.Subgroups(0)); n != 1 {
		t.Fatalf("size<2 must give one subgroup, got %d", n)
	}
	if New(1, nil).Subgroups(3) != nil {
		t.Fatal("empty group must give nil subgroups")
	}
}

// Property: walking RightOf from the leader visits every member exactly
// once and returns to the leader — the ring is a single cycle.
func TestPropertyRingIsSingleCycle(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 1
		rng := rand.New(rand.NewSource(seed))
		members := make([]wire.Member, n)
		seen := map[transport.IP]bool{}
		for i := range members {
			var a transport.IP
			for {
				a = transport.IP(rng.Uint32())
				if a != 0 && !seen[a] {
					break
				}
			}
			seen[a] = true
			members[i] = wire.Member{IP: a}
		}
		g := New(1, members)
		visited := map[transport.IP]bool{}
		cur := g.Leader()
		for i := 0; i < n; i++ {
			if visited[cur] {
				return false
			}
			visited[cur] = true
			cur = g.RightOf(cur)
		}
		return cur == g.Leader() && len(visited) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: LeftOf inverts RightOf.
func TestPropertyLeftInvertsRight(t *testing.T) {
	g := New(1, mk(1, 2, 3, 4, 5, 6, 7, 8, 9, 10))
	for _, m := range g.Members {
		if g.LeftOf(g.RightOf(m.IP)) != m.IP {
			t.Fatalf("LeftOf(RightOf(%v)) != %v", m.IP, m.IP)
		}
	}
}

// Property: Diff(WithJoined) reports exactly the joined members.
func TestPropertyDiffMatchesEdits(t *testing.T) {
	base := New(1, mk(10, 20, 30))
	added := base.WithJoined(mk(15, 25)...)
	joined, left := added.Diff(base)
	if len(joined) != 2 || len(left) != 0 {
		t.Fatalf("joined=%v left=%v", joined, left)
	}
	removed := base.Without(ip(20))
	joined, left = removed.Diff(base)
	if len(joined) != 0 || len(left) != 1 || left[0] != ip(20) {
		t.Fatalf("joined=%v left=%v", joined, left)
	}
}

func TestString(t *testing.T) {
	g := New(3, mk(1, 2))
	if got := g.String(); got != "v3{10.0.0.2 10.0.0.1}" {
		t.Errorf("String() = %q", got)
	}
}

func BenchmarkIndexOf256(b *testing.B) {
	members := make([]wire.Member, 256)
	for i := range members {
		members[i] = wire.Member{IP: transport.MakeIP(10, 0, byte(i/200), byte(i%200+1))}
	}
	g := New(1, members)
	target := members[137].IP
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.IndexOf(target) < 0 {
			b.Fatal("missing")
		}
	}
}
