package serve

import (
	"math"
	"sort"
	"testing"
	"time"
)

func TestArrivalsSameSeedIdentical(t *testing.T) {
	cfg := Config{Seed: 42}
	a := NewArrivals(42, cfg)
	b := NewArrivals(42, cfg)
	for i := 0; i < 5000; i++ {
		ga, sa, da := a.Next()
		gb, sb, db := b.Next()
		if ga != gb || sa != sb || da != db {
			t.Fatalf("draw %d diverged: (%v,%d,%v) vs (%v,%d,%v)", i, ga, sa, da, gb, sb, db)
		}
	}
}

func TestArrivalsDifferentSeedsDiverge(t *testing.T) {
	cfg := Config{}
	a := NewArrivals(1, cfg)
	b := NewArrivals(2, cfg)
	same := 0
	for i := 0; i < 100; i++ {
		ga, sa, _ := a.Next()
		gb, sb, _ := b.Next()
		if ga == gb && sa == sb {
			same++
		}
	}
	if same == 100 {
		t.Fatal("different seeds produced identical sequences")
	}
}

// TestArrivalsDistribution checks the generator against its own analytic
// targets: empirical session rate near SessionsPerSec, empirical mean
// duration near MeanSession, all draws inside the configured bounds, and
// a genuinely heavy duration tail.
func TestArrivalsDistribution(t *testing.T) {
	cfg := Config{
		SessionsPerSec: 500,
		MeanSession:    20 * time.Second,
	}.withDefaults()
	a := NewArrivals(7, cfg)

	const draws = 200_000
	var totalGap, totalDur float64
	var totalSessions int64
	durs := make([]float64, 0, draws)
	for i := 0; i < draws; i++ {
		gap, sessions, dur := a.Next()
		if sessions < 1 || sessions > cfg.MaxBurst {
			t.Fatalf("burst size %d outside [1, %d]", sessions, cfg.MaxBurst)
		}
		if dur <= 0 {
			t.Fatalf("non-positive duration %v", dur)
		}
		totalGap += gap.Seconds()
		totalSessions += int64(sessions)
		totalDur += dur.Seconds()
		durs = append(durs, dur.Seconds())
	}

	rate := float64(totalSessions) / totalGap
	if math.Abs(rate-cfg.SessionsPerSec)/cfg.SessionsPerSec > 0.10 {
		t.Errorf("empirical session rate %.1f/s, want within 10%% of %.1f/s",
			rate, cfg.SessionsPerSec)
	}

	meanDur := totalDur / draws
	want := cfg.MeanSession.Seconds()
	if math.Abs(meanDur-want)/want > 0.10 {
		t.Errorf("empirical mean duration %.2fs, want within 10%% of %.2fs", meanDur, want)
	}

	sort.Float64s(durs)
	p50 := durs[draws/2]
	p99 := durs[draws*99/100]
	// Heavy tail: the p99 session is far longer than the median one. For
	// Pareto(1.3) on a 100:1 window the ratio is ~30; exponential would
	// give ~6.6.
	if p99/p50 < 10 {
		t.Errorf("duration tail too light: p99/p50 = %.1f, want >= 10", p99/p50)
	}
	// The bound actually binds: nothing beyond TailRatio × the minimum.
	if durs[draws-1] > durs[0]*cfg.TailRatio*1.01 {
		t.Errorf("max duration %.2fs exceeds TailRatio bound (min %.2fs, ratio %.0f)",
			durs[draws-1], durs[0], cfg.TailRatio)
	}
}

func TestBoundedParetoMeanMatchesSamples(t *testing.T) {
	for _, alpha := range []float64{0.8, 1.0, 1.3, 2.5} {
		a := NewArrivals(11, Config{})
		const n = 500_000
		var sum float64
		for i := 0; i < n; i++ {
			sum += a.boundedPareto(alpha, 2, 200)
		}
		got := sum / n
		want := boundedParetoMean(alpha, 2, 200)
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("alpha=%.1f: sampled mean %.3f vs analytic %.3f", alpha, got, want)
		}
	}
}
