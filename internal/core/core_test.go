package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/amg"
	"repro/internal/detect"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/wire"
)

// harness builds daemons over the simulated network.
type harness struct {
	t       *testing.T
	sched   *sim.Scheduler
	res     *netsim.StaticResolver
	net     *netsim.Network
	daemons map[string]*Daemon
	eps     map[transport.IP]*netsim.Adapter
	central *fakeCentral
}

type simClock struct{ s *sim.Scheduler }

func (c simClock) Now() time.Duration { return c.s.Now() }
func (c simClock) AfterFunc(d time.Duration, fn func()) transport.Timer {
	return c.s.AfterFunc(d, fn)
}

// fakeCentral records reports and acks them, standing in for
// internal/central.
type fakeCentral struct {
	active  bool
	ep      transport.Endpoint
	reports []*wire.Report
	// groups tracks the latest full/delta-applied membership per leader.
	groups map[transport.IP]map[transport.IP]bool
}

func newFakeCentral() *fakeCentral {
	return &fakeCentral{groups: make(map[transport.IP]map[transport.IP]bool)}
}

func (c *fakeCentral) Activate(ep transport.Endpoint) { c.active, c.ep = true, ep }
func (c *fakeCentral) Deactivate()                    { c.active = false }

func (c *fakeCentral) HandleReport(src transport.Addr, r *wire.Report) {
	cp := *r
	c.reports = append(c.reports, &cp)
	if r.Full {
		set := make(map[transport.IP]bool)
		for _, m := range r.Members {
			set[m.IP] = true
		}
		c.groups[r.Leader] = set
	} else if set, ok := c.groups[r.Leader]; ok {
		for _, m := range r.Members {
			set[m.IP] = true
		}
		for _, ip := range r.Left {
			delete(set, ip)
		}
	}
	// Members can live in only one group: joining here removes elsewhere.
	for _, m := range r.Members {
		for l, set := range c.groups {
			if l != r.Leader {
				delete(set, m.IP)
			}
		}
	}
	for l, set := range c.groups {
		if len(set) == 0 {
			delete(c.groups, l)
		}
	}
	if c.ep != nil {
		ack := &wire.ReportAck{From: c.ep.LocalIP(), Seq: r.Seq}
		_ = c.ep.Unicast(transport.PortReport, src, wire.Encode(ack))
	}
}

func newHarness(t *testing.T, seed int64) *harness {
	t.Helper()
	sched := sim.NewScheduler(seed)
	res := netsim.NewStaticResolver()
	return &harness{
		t:       t,
		sched:   sched,
		res:     res,
		net:     netsim.New(sched, res),
		daemons: make(map[string]*Daemon),
		eps:     make(map[transport.IP]*netsim.Adapter),
		central: newFakeCentral(),
	}
}

func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.BeaconPhase = 2 * time.Second
	cfg.BeaconInterval = 500 * time.Millisecond
	cfg.LeaderBeaconInterval = 1 * time.Second
	cfg.StableWait = 1 * time.Second
	cfg.DeferTimeout = 3 * time.Second
	cfg.DetectorParams.Interval = 500 * time.Millisecond
	cfg.OrphanTimeout = 6 * time.Second
	cfg.ConsensusWindow = 1 * time.Second
	return cfg
}

// addNode creates a daemon named node with adapters on the given segments
// (adapter i attaches to segments[i]; adapter 0 is administrative).
func (h *harness) addNode(cfg Config, node string, ips []transport.IP, segments []string) *Daemon {
	h.t.Helper()
	var eps []transport.Endpoint
	for i, ip := range ips {
		a := h.net.AddAdapter(ip, node)
		h.res.Attach(ip, segments[i])
		h.eps[ip] = a
		eps = append(eps, a)
	}
	d, err := NewDaemon(cfg, node, simClock{h.sched}, h.sched.Rand(), eps)
	if err != nil {
		h.t.Fatal(err)
	}
	d.SetCentral(h.central)
	h.daemons[node] = d
	return d
}

func (h *harness) run(d time.Duration) { h.sched.RunFor(d) }

func ipn(c, d byte) transport.IP { return transport.MakeIP(10, 0, c, d) }

// singleSegment builds n single-adapter nodes on one segment.
func (h *harness) singleSegment(cfg Config, n int) []transport.IP {
	var ips []transport.IP
	for i := 1; i <= n; i++ {
		ip := ipn(0, byte(i))
		h.addNode(cfg, fmt.Sprintf("node-%02d", i), []transport.IP{ip}, []string{"admin"})
		ips = append(ips, ip)
	}
	for _, d := range h.daemons {
		d.Start()
	}
	return ips
}

func (h *harness) viewOf(ip transport.IP) amg.Membership {
	h.t.Helper()
	for _, d := range h.daemons {
		if v, ok := d.View(ip); ok {
			return v
		}
	}
	h.t.Fatalf("adapter %v has no committed view", ip)
	return amg.Membership{}
}

// assertOneGroup checks all ips share one view led by the highest.
func (h *harness) assertOneGroup(ips []transport.IP) {
	h.t.Helper()
	want := h.viewOf(ips[0])
	highest := ips[0]
	for _, ip := range ips {
		if ip > highest {
			highest = ip
		}
	}
	if want.Leader() != highest {
		h.t.Fatalf("leader = %v, want highest %v (view %v)", want.Leader(), highest, want)
	}
	if want.Size() != len(ips) {
		h.t.Fatalf("group size = %d, want %d (view %v)", want.Size(), len(ips), want)
	}
	for _, ip := range ips {
		v := h.viewOf(ip)
		if !v.Equal(want) {
			h.t.Fatalf("adapter %v view %v != %v", ip, v, want)
		}
	}
}

func TestFormationSingleSegment(t *testing.T) {
	h := newHarness(t, 1)
	ips := h.singleSegment(fastConfig(), 8)
	h.run(10 * time.Second)
	h.assertOneGroup(ips)
}

func TestFormationSingleton(t *testing.T) {
	h := newHarness(t, 2)
	ips := h.singleSegment(fastConfig(), 1)
	h.run(6 * time.Second)
	v := h.viewOf(ips[0])
	if v.Size() != 1 || v.Leader() != ips[0] {
		t.Fatalf("singleton view = %v", v)
	}
}

func TestFormationTwoSegmentsStayIsolated(t *testing.T) {
	h := newHarness(t, 3)
	cfg := fastConfig()
	var segA, segB []transport.IP
	for i := 1; i <= 4; i++ {
		ip := ipn(1, byte(i))
		h.addNode(cfg, fmt.Sprintf("a-%d", i), []transport.IP{ip}, []string{"seg-a"})
		segA = append(segA, ip)
	}
	for i := 1; i <= 3; i++ {
		ip := ipn(2, byte(i))
		h.addNode(cfg, fmt.Sprintf("b-%d", i), []transport.IP{ip}, []string{"seg-b"})
		segB = append(segB, ip)
	}
	for _, d := range h.daemons {
		d.Start()
	}
	h.run(10 * time.Second)
	h.assertOneGroup(segA)
	h.assertOneGroup(segB)
	if h.viewOf(segA[0]).Leader() == h.viewOf(segB[0]).Leader() {
		t.Fatal("segments merged across isolation boundary")
	}
}

func TestMultiAdapterNodeThreeGroups(t *testing.T) {
	// The paper's testbed shape: every node has 3 adapters on 3 segments,
	// yielding 3 AMGs (Figure 5's "three groups").
	h := newHarness(t, 4)
	cfg := fastConfig()
	segs := []string{"admin", "front", "back"}
	var perSeg [3][]transport.IP
	for i := 1; i <= 5; i++ {
		var ips []transport.IP
		for s := 0; s < 3; s++ {
			ip := ipn(byte(s), byte(i))
			ips = append(ips, ip)
			perSeg[s] = append(perSeg[s], ip)
		}
		h.addNode(cfg, fmt.Sprintf("node-%d", i), ips, segs)
	}
	for _, d := range h.daemons {
		d.Start()
	}
	h.run(12 * time.Second)
	for s := 0; s < 3; s++ {
		h.assertOneGroup(perSeg[s])
	}
}

func TestLateJoiner(t *testing.T) {
	h := newHarness(t, 5)
	cfg := fastConfig()
	ips := h.singleSegment(cfg, 5)
	h.run(8 * time.Second)
	h.assertOneGroup(ips)

	late := ipn(0, 99)
	h.addNode(cfg, "late", []transport.IP{late}, []string{"admin"})
	h.daemons["late"].Start()
	h.run(10 * time.Second)
	// 10.0.0.99 is the highest IP: it must end up leading the group after
	// the merge path runs (it forms, absorbs the old group).
	all := append(append([]transport.IP{}, ips...), late)
	h.assertOneGroup(all)
}

func TestLateJoinerLowIP(t *testing.T) {
	h := newHarness(t, 6)
	cfg := fastConfig()
	var ips []transport.IP
	for i := 10; i <= 14; i++ {
		ip := ipn(0, byte(i))
		h.addNode(cfg, fmt.Sprintf("node-%d", i), []transport.IP{ip}, []string{"admin"})
		ips = append(ips, ip)
	}
	for _, d := range h.daemons {
		d.Start()
	}
	h.run(8 * time.Second)
	late := ipn(0, 2) // lower than everyone: plain join
	h.addNode(cfg, "late", []transport.IP{late}, []string{"admin"})
	h.daemons["late"].Start()
	h.run(8 * time.Second)
	h.assertOneGroup(append(append([]transport.IP{}, ips...), late))
}

func TestMemberDeathRecommit(t *testing.T) {
	h := newHarness(t, 7)
	cfg := fastConfig()
	ips := h.singleSegment(cfg, 6)
	h.run(8 * time.Second)
	h.assertOneGroup(ips)

	var deaths []transport.IP
	for _, d := range h.daemons {
		d.SetHooks(Hooks{Death: func(_, dead transport.IP) { deaths = append(deaths, dead) }})
	}
	victim := ipn(0, 3)
	h.daemons["node-03"].Crash()
	h.eps[victim].SetMode(netsim.FailStop)
	h.run(15 * time.Second)

	var rest []transport.IP
	for _, ip := range ips {
		if ip != victim {
			rest = append(rest, ip)
		}
	}
	h.assertOneGroup(rest)
	found := false
	for _, d := range deaths {
		if d == victim {
			found = true
		} else {
			t.Fatalf("false death declared: %v", d)
		}
	}
	if !found {
		t.Fatal("death hook never fired for victim")
	}
}

func TestLeaderDeathSuccessorTakesOver(t *testing.T) {
	h := newHarness(t, 8)
	cfg := fastConfig()
	ips := h.singleSegment(cfg, 6)
	h.run(8 * time.Second)
	view := h.viewOf(ips[0])
	oldLeader := view.Leader()
	successor := view.Successor()

	// Crash the leader node.
	for name, d := range h.daemons {
		if d.AdminIP() == oldLeader {
			d.Crash()
			h.eps[oldLeader].SetMode(netsim.FailStop)
			_ = name
		}
	}
	h.run(20 * time.Second)
	var rest []transport.IP
	for _, ip := range ips {
		if ip != oldLeader {
			rest = append(rest, ip)
		}
	}
	h.assertOneGroup(rest)
	if got := h.viewOf(rest[0]).Leader(); got != successor {
		t.Fatalf("new leader = %v, want committed successor %v", got, successor)
	}
}

func TestPartitionMerge(t *testing.T) {
	h := newHarness(t, 9)
	cfg := fastConfig()
	// Two halves boot in separate partitions of the same logical segment.
	var left, right []transport.IP
	for i := 1; i <= 3; i++ {
		ip := ipn(0, byte(i))
		h.addNode(cfg, fmt.Sprintf("l-%d", i), []transport.IP{ip}, []string{"part-left"})
		left = append(left, ip)
	}
	for i := 10; i <= 12; i++ {
		ip := ipn(0, byte(i))
		h.addNode(cfg, fmt.Sprintf("r-%d", i), []transport.IP{ip}, []string{"part-right"})
		right = append(right, ip)
	}
	for _, d := range h.daemons {
		d.Start()
	}
	h.run(8 * time.Second)
	h.assertOneGroup(left)
	h.assertOneGroup(right)

	// Heal: everyone onto one segment.
	for _, ip := range left {
		h.res.Attach(ip, "part-right")
	}
	h.run(15 * time.Second)
	h.assertOneGroup(append(append([]transport.IP{}, left...), right...))
}

func TestMovedAdapterRejoinsNewSegment(t *testing.T) {
	h := newHarness(t, 10)
	cfg := fastConfig()
	var segA, segB []transport.IP
	for i := 1; i <= 4; i++ {
		ip := ipn(1, byte(i))
		h.addNode(cfg, fmt.Sprintf("a-%d", i), []transport.IP{ip}, []string{"seg-a"})
		segA = append(segA, ip)
	}
	for i := 1; i <= 4; i++ {
		ip := ipn(2, byte(i))
		h.addNode(cfg, fmt.Sprintf("b-%d", i), []transport.IP{ip}, []string{"seg-b"})
		segB = append(segB, ip)
	}
	for _, d := range h.daemons {
		d.Start()
	}
	h.run(10 * time.Second)
	h.assertOneGroup(segA)
	h.assertOneGroup(segB)

	// VLAN move: a-2's adapter lands in seg-b (paper §3.1's scenario).
	moved := ipn(1, 2)
	h.res.Attach(moved, "seg-b")
	h.run(30 * time.Second)

	var restA []transport.IP
	for _, ip := range segA {
		if ip != moved {
			restA = append(restA, ip)
		}
	}
	h.assertOneGroup(restA)
	h.assertOneGroup(append(append([]transport.IP{}, segB...), moved))
}

func TestFormationUnderLoss(t *testing.T) {
	h := newHarness(t, 11)
	h.net.SetDefaultProfile(netsim.LinkProfile{Loss: 0.15, Latency: 300 * time.Microsecond, Jitter: 500 * time.Microsecond})
	cfg := fastConfig()
	ips := h.singleSegment(cfg, 10)
	// Under 15% loss the group may transiently shed and re-absorb members
	// (false suspicions, orphan/heal cycles); the guarantee is eventual
	// convergence, so poll rather than assert at a fixed instant.
	deadline := 120 * time.Second
	for h.sched.Now() < deadline {
		h.run(2 * time.Second)
		if converged(h, ips) {
			return
		}
	}
	h.assertOneGroup(ips) // fail with details
}

// converged reports whether all ips share one committed view of full size.
func converged(h *harness, ips []transport.IP) bool {
	var want amg.Membership
	for i, ip := range ips {
		var v amg.Membership
		found := false
		for _, d := range h.daemons {
			if vv, ok := d.View(ip); ok {
				v, found = vv, true
			}
		}
		if !found || v.Size() != len(ips) {
			return false
		}
		if i == 0 {
			want = v
		} else if !v.Equal(want) {
			return false
		}
	}
	return true
}

func TestDisableAdapterGoesSilent(t *testing.T) {
	h := newHarness(t, 12)
	cfg := fastConfig()
	ips := h.singleSegment(cfg, 5)
	h.run(8 * time.Second)
	victim := ipn(0, 2)
	if !h.daemons["node-02"].DisableAdapter(victim) {
		t.Fatal("DisableAdapter refused")
	}
	h.run(15 * time.Second)
	var rest []transport.IP
	for _, ip := range ips {
		if ip != victim {
			rest = append(rest, ip)
		}
	}
	h.assertOneGroup(rest)
	if _, ok := h.daemons["node-02"].View(victim); ok {
		t.Fatal("disabled adapter still has a committed view")
	}
}

func TestDisableMessageFromNetwork(t *testing.T) {
	h := newHarness(t, 13)
	cfg := fastConfig()
	ips := h.singleSegment(cfg, 4)
	h.run(8 * time.Second)
	// A Disable sent to node-03's admin adapter targeting itself.
	target := ipn(0, 3)
	sender := h.eps[ipn(0, 1)]
	msg := &wire.Disable{Target: target, Reason: "verify conflict"}
	_ = sender.Unicast(transport.PortMember, transport.Addr{IP: target, Port: transport.PortMember}, wire.Encode(msg))
	h.run(15 * time.Second)
	var rest []transport.IP
	for _, ip := range ips {
		if ip != target {
			rest = append(rest, ip)
		}
	}
	h.assertOneGroup(rest)
}

func TestReportsReachCentral(t *testing.T) {
	h := newHarness(t, 14)
	cfg := fastConfig()
	ips := h.singleSegment(cfg, 6)
	h.run(12 * time.Second)
	h.assertOneGroup(ips)
	leader := h.viewOf(ips[0]).Leader()

	if !h.central.active {
		t.Fatal("central never activated on the admin leader")
	}
	set := h.central.groups[leader]
	if len(set) != len(ips) {
		t.Fatalf("central sees %d members of group %v, want %d (reports: %d)",
			len(set), leader, len(ips), len(h.central.reports))
	}
	for _, ip := range ips {
		if !set[ip] {
			t.Fatalf("central missing member %v", ip)
		}
	}
	// The leader daemon must know it hosts Central.
	for _, d := range h.daemons {
		if d.AdminIP() == leader && !d.HostingCentral() {
			t.Fatal("leader daemon does not report hosting central")
		}
		if d.CentralIP() != leader {
			t.Fatalf("daemon %s thinks central is %v", d.Node(), d.CentralIP())
		}
	}
}

func TestSteadyStateSilenceOnReportPlane(t *testing.T) {
	h := newHarness(t, 15)
	cfg := fastConfig()
	h.singleSegment(cfg, 6)
	h.run(15 * time.Second)
	before := len(h.central.reports)
	h.run(60 * time.Second)
	after := len(h.central.reports)
	if after != before {
		t.Fatalf("membership reports flowed in steady state: %d -> %d", before, after)
	}
}

func TestDeltaReportOnDeath(t *testing.T) {
	h := newHarness(t, 16)
	cfg := fastConfig()
	ips := h.singleSegment(cfg, 6)
	h.run(12 * time.Second)
	victim := ipn(0, 2)
	h.daemons["node-02"].Crash()
	h.eps[victim].SetMode(netsim.FailStop)
	h.run(20 * time.Second)
	leader := h.viewOf(ipn(0, 6)).Leader()
	set := h.central.groups[leader]
	if set[victim] {
		t.Fatal("central still counts the dead member")
	}
	if len(set) != len(ips)-1 {
		t.Fatalf("central group size = %d, want %d", len(set), len(ips)-1)
	}
	// The death must have arrived as a delta, not a full resync.
	last := h.central.reports[len(h.central.reports)-1]
	if last.Full {
		t.Fatal("death reported via full report; expected delta")
	}
	foundLeft := false
	for _, r := range h.central.reports {
		for _, l := range r.Left {
			if l == victim {
				foundLeft = true
			}
		}
	}
	if !foundLeft {
		t.Fatal("no delta report carried the departure")
	}
}

func TestCentralFailover(t *testing.T) {
	h := newHarness(t, 17)
	cfg := fastConfig()
	ips := h.singleSegment(cfg, 6)
	h.run(12 * time.Second)
	view := h.viewOf(ips[0])
	oldCentral := view.Leader()
	successor := view.Successor()

	for _, d := range h.daemons {
		if d.AdminIP() == oldCentral {
			d.Crash()
			h.eps[oldCentral].SetMode(netsim.FailStop)
		}
	}
	h.run(30 * time.Second)
	for _, d := range h.daemons {
		if !d.Running() {
			continue
		}
		if d.CentralIP() != successor {
			t.Fatalf("daemon %s central = %v, want successor %v", d.Node(), d.CentralIP(), successor)
		}
		if d.AdminIP() == successor && !d.HostingCentral() {
			t.Fatal("successor is not hosting central")
		}
	}
	// New central rebuilt the view from full re-reports.
	set := h.central.groups[successor]
	if len(set) != len(ips)-1 {
		t.Fatalf("rebuilt view has %d members, want %d", len(set), len(ips)-1)
	}
}

func TestCrashAndRestartRejoins(t *testing.T) {
	h := newHarness(t, 18)
	cfg := fastConfig()
	ips := h.singleSegment(cfg, 5)
	h.run(8 * time.Second)
	victim := ipn(0, 2)
	h.daemons["node-02"].Crash()
	h.eps[victim].SetMode(netsim.FailStop)
	h.run(12 * time.Second)
	// Reboot.
	h.eps[victim].SetMode(netsim.Healthy)
	h.daemons["node-02"].Start()
	h.run(15 * time.Second)
	h.assertOneGroup(ips)
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.BeaconInterval = 0 },
		func(c *Config) { c.CommitTimeout = 0 },
		func(c *Config) { c.DetectorParams.MissThreshold = 0 },
		func(c *Config) { c.OrphanTimeout = 0 },
		func(c *Config) { c.Consensus = true; c.Detector = detect.Ring },
		func(c *Config) { c.ProbeRetries = -1 },
	}
	for i, mut := range bad {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d validated", i)
		}
	}
}

func TestNewDaemonErrors(t *testing.T) {
	h := newHarness(t, 19)
	if _, err := NewDaemon(DefaultConfig(), "x", simClock{h.sched}, h.sched.Rand(), nil); err == nil {
		t.Fatal("no-adapter daemon accepted")
	}
	cfg := DefaultConfig()
	cfg.AdminIndex = 5
	a := h.net.AddAdapter(ipn(9, 1), "x")
	if _, err := NewDaemon(cfg, "x", simClock{h.sched}, h.sched.Rand(), []transport.Endpoint{a}); err == nil {
		t.Fatal("out-of-range AdminIndex accepted")
	}
}

// Determinism: the same seed yields the same final topology and report
// stream; different seeds may differ in timing but converge to the same
// groups.
func TestDeterministicConvergence(t *testing.T) {
	runOnce := func(seed int64) (transport.IP, int) {
		h := newHarness(t, seed)
		ips := h.singleSegment(fastConfig(), 7)
		h.run(15 * time.Second)
		h.assertOneGroup(ips)
		return h.viewOf(ips[0]).Leader(), len(h.central.reports)
	}
	l1, r1 := runOnce(42)
	l2, r2 := runOnce(42)
	if l1 != l2 || r1 != r2 {
		t.Fatalf("same seed diverged: %v/%d vs %v/%d", l1, r1, l2, r2)
	}
}

func TestAllDetectorKindsConverge(t *testing.T) {
	kinds := []detect.Kind{detect.Ring, detect.BiRing, detect.AllToAll, detect.RandPing, detect.Subgroup}
	for _, k := range kinds {
		t.Run(k.String(), func(t *testing.T) {
			h := newHarness(t, 20)
			cfg := fastConfig()
			cfg.Detector = k
			cfg.Consensus = k == detect.BiRing
			ips := h.singleSegment(cfg, 8)
			h.run(12 * time.Second)
			h.assertOneGroup(ips)
			// And each still detects a failure end to end.
			victim := ipn(0, 4)
			h.daemons["node-04"].Crash()
			h.eps[victim].SetMode(netsim.FailStop)
			h.run(40 * time.Second)
			var rest []transport.IP
			for _, ip := range ips {
				if ip != victim {
					rest = append(rest, ip)
				}
			}
			h.assertOneGroup(rest)
		})
	}
}
