// Package core implements the GulfStream daemon — the paper's primary
// contribution. A Daemon runs on every node of the farm, manages each of
// the node's network adapters through a small protocol state machine
// (beacon discovery → Adapter Membership Group formation via two-phase
// commit → ring/ping failure detection), elects AMG leaders by highest IP,
// merges independently formed groups, survives leader death through the
// committed succession order, and reports membership deltas up the
// hierarchy to GulfStream Central.
package core

import (
	"fmt"
	"time"

	"repro/internal/detect"
)

// Config carries every protocol parameter. The field comments give the
// paper's symbol where one exists.
type Config struct {
	// BeaconPhase is Tb: how long a starting adapter collects BEACONs
	// before forming or deferring (paper §2.1; 5/10/20 s in Figure 5).
	BeaconPhase time.Duration
	// BeaconInterval is the gap between BEACONs during the initial phase.
	BeaconInterval time.Duration
	// LeaderBeaconInterval is the slower post-formation leader beacon.
	LeaderBeaconInterval time.Duration
	// StableWait is Ts: how long a leader lets membership sit quiet
	// before its first report to Central (5 s in the paper's runs).
	StableWait time.Duration

	// DeferTimeout bounds how long a deferring adapter waits to be
	// claimed by the highest-IP adapter before forming a singleton.
	DeferTimeout time.Duration
	// CommitTimeout bounds one two-phase-commit round.
	CommitTimeout time.Duration
	// CommitRetries is how many times a 2PC retries after dropping
	// non-responders.
	CommitRetries int
	// PendingTimeout discards a prepared-but-never-committed view.
	PendingTimeout time.Duration
	// JoinBatchDelay batches join/death changes into one recommit.
	JoinBatchDelay time.Duration

	// Detector selects the failure-detection strategy.
	Detector detect.Kind
	// DetectorParams tunes it (heartbeat interval Th, sensitivity, ...).
	DetectorParams detect.Params
	// Consensus requires suspicions from two neighbors before the leader
	// probes (meaningful with the bidirectional ring; paper §3).
	Consensus bool
	// ConsensusWindow bounds the wait for the second suspicion.
	ConsensusWindow time.Duration

	// ProbeTimeout and ProbeRetries govern the leader's direct
	// verification of a suspect before declaring it dead.
	ProbeTimeout time.Duration
	ProbeRetries int

	// OrphanTimeout: a member that hears nothing from its group this long
	// concludes it has been cut off (e.g. moved to another VLAN), forms a
	// singleton and starts beaconing (paper §3.1).
	OrphanTimeout time.Duration
	// EscalationPatience: a member whose suspicion reports produce no
	// recommit within this window escalates — it probes the leader
	// directly, then the successor, and if neither answers it concludes
	// it has been cut off (the paper's §3.1 moved-adapter narrative).
	EscalationPatience time.Duration

	// ReportRetry is the retransmit interval for unacked reports.
	ReportRetry time.Duration

	// ReportEpoch offsets this incarnation's report sequence numbers.
	// Central dedups reports per reporting daemon by sequence number, so
	// a freshly restarted process counting again from 1 would have its
	// first reports silently swallowed as duplicates of its previous
	// life's. Real daemons (gsd) set this to a value that grows across
	// restarts (boot time in nanoseconds); simulated daemons keep 0 —
	// the simulator reuses the Daemon object across restarts, so their
	// counters are already monotonic.
	ReportEpoch uint64

	// AdminIndex is which adapter is the administrative one (paper: "by
	// convention, adapter 0").
	AdminIndex uint8

	// UnsafeSkipVerify makes a leader act on the first suspicion without
	// the paper's verification probe — the §3 false-report flaw
	// reintroduced on purpose. It exists ONLY as fault injection for the
	// simulation-testing harness (internal/check), which must catch the
	// resulting unverified evictions mid-run; it is never set in
	// production configurations.
	UnsafeSkipVerify bool
}

// DefaultConfig returns the parameters of the prototype deployment.
func DefaultConfig() Config {
	return Config{
		BeaconPhase:          5 * time.Second,
		BeaconInterval:       1 * time.Second,
		LeaderBeaconInterval: 2 * time.Second,
		StableWait:           5 * time.Second,
		DeferTimeout:         6 * time.Second,
		CommitTimeout:        1 * time.Second,
		CommitRetries:        3,
		PendingTimeout:       5 * time.Second,
		JoinBatchDelay:       500 * time.Millisecond,
		Detector:             detect.BiRing,
		DetectorParams:       detect.Defaults(),
		Consensus:            true,
		ConsensusWindow:      2 * time.Second,
		ProbeTimeout:         500 * time.Millisecond,
		ProbeRetries:         2,
		OrphanTimeout:        12 * time.Second,
		EscalationPatience:   6 * time.Second,
		ReportRetry:          1 * time.Second,
		AdminIndex:           0,
	}
}

// Validate rejects unusable parameter combinations.
func (c Config) Validate() error {
	switch {
	case c.BeaconPhase < 0:
		return fmt.Errorf("core: negative BeaconPhase")
	case c.BeaconInterval <= 0:
		return fmt.Errorf("core: BeaconInterval must be positive")
	case c.LeaderBeaconInterval <= 0:
		return fmt.Errorf("core: LeaderBeaconInterval must be positive")
	case c.CommitTimeout <= 0:
		return fmt.Errorf("core: CommitTimeout must be positive")
	case c.DetectorParams.Interval <= 0:
		return fmt.Errorf("core: detector Interval must be positive")
	case c.DetectorParams.MissThreshold < 1:
		return fmt.Errorf("core: MissThreshold must be >= 1")
	case c.OrphanTimeout <= c.DetectorParams.Interval:
		return fmt.Errorf("core: OrphanTimeout must exceed the heartbeat interval")
	case c.EscalationPatience <= 0:
		return fmt.Errorf("core: EscalationPatience must be positive")
	case c.ProbeRetries < 0 || c.CommitRetries < 0:
		return fmt.Errorf("core: negative retry count")
	}
	if c.Consensus && c.Detector != detect.BiRing {
		return fmt.Errorf("core: Consensus requires the bidirectional ring detector")
	}
	return nil
}
