package sim

import (
	"testing"
	"time"
)

// Allocation regression guards for the pooled event kernel: once the free
// list is warm, the fire-and-forget scheduling paths and in-callback timer
// reschedules must not allocate.

// TestAllocSchedule: Schedule + fire recycles one pooled event, zero
// allocations in the steady state.
func TestAllocSchedule(t *testing.T) {
	s := NewScheduler(1)
	fn := func() {}
	s.Schedule(0, fn)
	s.Run()
	got := testing.AllocsPerRun(200, func() {
		s.Schedule(time.Millisecond, fn)
		s.Run()
	})
	if got != 0 {
		t.Errorf("Schedule+fire: %.1f allocs/op, want 0", got)
	}
}

// TestAllocAfterCall: the arg-style callback path allocates nothing — no
// closure, pooled event, and a pointer arg already in an interface.
func TestAllocAfterCall(t *testing.T) {
	s := NewScheduler(1)
	type payload struct{ n int }
	fn := func(arg any) { arg.(*payload).n++ }
	p := &payload{}
	var arg any = p // pre-boxed so the measured loop pays no conversion
	s.AfterCall(0, fn, arg)
	s.Run()
	got := testing.AllocsPerRun(200, func() {
		s.AfterCall(time.Millisecond, fn, arg)
		s.Run()
	})
	if got != 0 {
		t.Errorf("AfterCall+fire: %.1f allocs/op, want 0", got)
	}
	if p.n == 0 {
		t.Fatal("callback never ran")
	}
}

// TestAllocTimerResetLoop: a periodic timer rescheduling itself from its
// own callback (the fixed-interval fast path) runs allocation-free.
func TestAllocTimerResetLoop(t *testing.T) {
	s := NewScheduler(1)
	fires := 0
	var tm *Timer
	tm = s.AfterFunc(time.Millisecond, func() {
		fires++
		tm.Reset(time.Millisecond)
	})
	s.RunFor(10 * time.Millisecond) // warm: event recycles through the pool
	start := fires
	got := testing.AllocsPerRun(50, func() {
		s.RunFor(time.Millisecond)
	})
	if got != 0 {
		t.Errorf("periodic Reset loop: %.1f allocs/op, want 0", got)
	}
	if fires == start {
		t.Fatal("timer stopped firing")
	}
	tm.Stop()
}

// TestAllocAfterFunc budgets the cancellable path: AfterFunc hands back
// a fresh Timer handle (one allocation) but the event itself must still
// come from the pool.
func TestAllocAfterFunc(t *testing.T) {
	s := NewScheduler(1)
	fn := func() {}
	s.AfterFunc(0, fn)
	s.Run()
	got := testing.AllocsPerRun(200, func() {
		s.AfterFunc(time.Millisecond, fn)
		s.Run()
	})
	if got > 1 {
		t.Errorf("AfterFunc+fire: %.1f allocs/op, want <= 1 (the Timer handle)", got)
	}
}

// TestTimerStopAfterReuse pins the generation-counter contract: once a
// timer's event has fired and been recycled for an unrelated schedule, the
// stale handle's Stop must go inert instead of cancelling the new owner.
func TestTimerStopAfterReuse(t *testing.T) {
	s := NewScheduler(1)
	firstRan := false
	tm := s.AfterFunc(time.Millisecond, func() { firstRan = true })
	s.Run()
	if !firstRan {
		t.Fatal("first callback never ran")
	}
	// The fired event is on the free list; this schedule reuses it.
	secondRan := false
	s.Schedule(time.Millisecond, func() { secondRan = true })
	if tm.Stop() {
		t.Error("Stop after fire reported true")
	}
	s.Run()
	if !secondRan {
		t.Fatal("stale Timer.Stop cancelled an unrelated schedule reusing its event")
	}
}

// TestTimerStopAfterStopAndReuse is the same guard for the cancel path:
// Stop, let the event be reused, Stop again.
func TestTimerStopAfterStopAndReuse(t *testing.T) {
	s := NewScheduler(1)
	tm := s.AfterFunc(time.Minute, func() { t.Fatal("stopped timer fired") })
	if !tm.Stop() {
		t.Fatal("first Stop should report true")
	}
	ran := false
	s.Schedule(time.Millisecond, func() { ran = true })
	if tm.Stop() {
		t.Error("second Stop reported true")
	}
	s.Run()
	if !ran {
		t.Fatal("double Stop cancelled an unrelated schedule reusing the event")
	}
}

// TestAllocShardedExchange extends the steady-state guarantee to the
// sharded kernel: cross-shard Post, the barrier merge, the PostAt
// injection and the window loop itself must all recycle — zero allocs/op
// once the pair queues, merge scratch and event pools are warm.
func TestAllocShardedExchange(t *testing.T) {
	sh := NewShards(1, 4, time.Millisecond)
	sh.SetParallel(false) // workers park on channels; serial mode isolates the pools
	fn := func(any) {}
	var arg any = sh
	step := func() {
		// Two crossing posts per window plus local work on each shard.
		at := sh.Now() + 2*time.Millisecond
		sh.Post(0, 2, at, fn, arg)
		sh.Post(3, 1, at, fn, arg)
		for i := 0; i < 4; i++ {
			sh.Shard(i).AfterCall(time.Millisecond, fn, arg)
		}
		sh.RunFor(2 * time.Millisecond)
	}
	for i := 0; i < 8; i++ {
		step() // warm pair queues, merge scratch, per-shard free lists
	}
	got := testing.AllocsPerRun(200, step)
	if got != 0 {
		t.Errorf("sharded post+exchange+fire: %.1f allocs/op, want 0", got)
	}
}

// TestAllocPostAt: barrier-time injection recycles pooled events like any
// other schedule.
func TestAllocPostAt(t *testing.T) {
	s := NewScheduler(1)
	fn := func(any) {}
	var arg any = s
	s.PostAt(0, fn, arg)
	s.Run()
	got := testing.AllocsPerRun(200, func() {
		s.PostAt(s.Now()+time.Millisecond, fn, arg)
		s.Run()
	})
	if got != 0 {
		t.Errorf("PostAt+fire: %.1f allocs/op, want 0", got)
	}
}

func BenchmarkScheduleFire(b *testing.B) {
	s := NewScheduler(1)
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Schedule(time.Millisecond, fn)
		s.Run()
	}
}

func BenchmarkAfterCallFire(b *testing.B) {
	s := NewScheduler(1)
	fn := func(any) {}
	var arg any = s
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.AfterCall(time.Millisecond, fn, arg)
		s.Run()
	}
}

// BenchmarkShardedWindow measures one full window cycle on a 4-shard
// kernel: 4 local fires, 2 cross-shard posts, barrier merge.
func BenchmarkShardedWindow(b *testing.B) {
	sh := NewShards(1, 4, time.Millisecond)
	sh.SetParallel(false)
	fn := func(any) {}
	var arg any = sh
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		at := sh.Now() + 2*time.Millisecond
		sh.Post(0, 2, at, fn, arg)
		sh.Post(3, 1, at, fn, arg)
		for j := 0; j < 4; j++ {
			sh.Shard(j).AfterCall(time.Millisecond, fn, arg)
		}
		sh.RunFor(2 * time.Millisecond)
	}
}
