// Package journal is the durable state journal behind GulfStream Central
// failover. Central's farm view is otherwise memory-only: on leader death
// a successor cold-starts by multicasting ResyncRequest and re-pulling
// every group's full report — a resync storm whose cost grows with farm
// size. The journal turns that O(farm) pull into O(delta) replay: every
// committed state transition (group commits, adapter/node/switch state
// flips, expected-move bookkeeping) is appended as a Record, periodically
// folded into a snapshot, and either persisted (file backend, cmd/gsd) or
// streamed to the next-in-line administrative adapter (warm standby), so
// an elected successor reconstructs the view locally before going active.
package journal

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// Kind classifies a journal record.
type Kind uint8

// Record kinds. The numeric values are part of the on-disk and on-wire
// format; append only.
const (
	// RecGroupUpdate carries one group's full committed state (leader,
	// version, reporting source, membership). Emitted whenever the group's
	// membership changes — self-contained, so replay needs no baseline.
	RecGroupUpdate Kind = iota + 1
	// RecGroupRemove drops a group from the view.
	RecGroupRemove
	// RecAdapterFlip records one adapter's liveness transition.
	RecAdapterFlip
	// RecNodeFlip records node-level correlated death/recovery.
	RecNodeFlip
	// RecSwitchFlip records switch-level correlated death/recovery.
	RecSwitchFlip
	// RecMoveExpect registers a Central-initiated move in progress.
	RecMoveExpect
	// RecMoveDone clears an expected move (completed or expired).
	RecMoveDone
	// RecSnapshot carries the entire state; it resets the fold. Stores
	// keep snapshots out-of-band, but the warm-standby stream uses this
	// kind to bootstrap a fresh peer.
	RecSnapshot
)

func (k Kind) String() string {
	switch k {
	case RecGroupUpdate:
		return "group-update"
	case RecGroupRemove:
		return "group-remove"
	case RecAdapterFlip:
		return "adapter-flip"
	case RecNodeFlip:
		return "node-flip"
	case RecSwitchFlip:
		return "switch-flip"
	case RecMoveExpect:
		return "move-expect"
	case RecMoveDone:
		return "move-done"
	case RecSnapshot:
		return "snapshot"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Record is one journaled state transition. Which payload fields are
// meaningful depends on Kind; the codec writes only those.
type Record struct {
	Epoch uint64 // activation epoch of the Central that committed this
	Seq   uint64 // dense, monotonically increasing journal position
	Time  time.Duration

	Kind Kind

	// RecGroupUpdate / RecGroupRemove
	Group   transport.IP
	Version uint64
	Src     transport.Addr // reporting daemon's admin address
	Members []wire.Member  // descending-IP order

	// RecAdapterFlip (Member is the subject), RecMoveExpect/Done (Adapter)
	Member  wire.Member
	Alive   bool
	Adapter transport.IP
	DiedAt  time.Duration

	// RecNodeFlip / RecSwitchFlip
	Node string
	Dead bool

	// RecMoveExpect
	Deadline time.Duration

	// RecSnapshot
	Snap *State
}

// GroupState is one group's journaled view.
type GroupState struct {
	Leader  transport.IP
	Version uint64
	Src     transport.Addr
	Members []wire.Member // descending-IP order
	// Seq is the journal position of the last record touching this group.
	Seq uint64
	// Epoch is the activation epoch that last touched this group.
	Epoch uint64
	// Streamed marks state received live from the previous active Central
	// in this process lifetime (as opposed to loaded from disk). A
	// successor trusts streamed groups and issues verification resyncs
	// only for the rest.
	Streamed bool
}

// AdapterState is one adapter's journaled liveness.
type AdapterState struct {
	Member wire.Member
	Alive  bool
	Group  transport.IP
	DiedAt time.Duration
}

// State is the materialized fold of the journal: everything a successor
// needs to stand up a Central view without a farm-wide resync.
type State struct {
	Groups        map[transport.IP]*GroupState
	Adapters      map[transport.IP]AdapterState
	DeadNodes     map[string]bool
	DeadSwitches  map[string]bool
	ExpectedMoves map[transport.IP]time.Duration
}

// NewState returns an empty state.
func NewState() *State {
	return &State{
		Groups:        make(map[transport.IP]*GroupState),
		Adapters:      make(map[transport.IP]AdapterState),
		DeadNodes:     make(map[string]bool),
		DeadSwitches:  make(map[string]bool),
		ExpectedMoves: make(map[transport.IP]time.Duration),
	}
}

// clone deep-copies a state (snapshots must not alias live maps).
func (s *State) clone() *State {
	c := NewState()
	for l, g := range s.Groups {
		gg := *g
		gg.Members = append([]wire.Member(nil), g.Members...)
		c.Groups[l] = &gg
	}
	for ip, a := range s.Adapters {
		c.Adapters[ip] = a
	}
	for n, d := range s.DeadNodes {
		c.DeadNodes[n] = d
	}
	for n, d := range s.DeadSwitches {
		c.DeadSwitches[n] = d
	}
	for ip, d := range s.ExpectedMoves {
		c.ExpectedMoves[ip] = d
	}
	return c
}

// Equal compares two states structurally (snapshot+replay equivalence
// tests rely on it).
func (s *State) Equal(o *State) bool {
	if len(s.Groups) != len(o.Groups) || len(s.Adapters) != len(o.Adapters) ||
		len(s.DeadNodes) != len(o.DeadNodes) || len(s.DeadSwitches) != len(o.DeadSwitches) ||
		len(s.ExpectedMoves) != len(o.ExpectedMoves) {
		return false
	}
	for l, g := range s.Groups {
		og := o.Groups[l]
		if og == nil || og.Version != g.Version || og.Src != g.Src || len(og.Members) != len(g.Members) {
			return false
		}
		for i := range g.Members {
			if g.Members[i] != og.Members[i] {
				return false
			}
		}
	}
	for ip, a := range s.Adapters {
		if o.Adapters[ip] != a {
			return false
		}
	}
	for n := range s.DeadNodes {
		if !o.DeadNodes[n] {
			return false
		}
	}
	for n := range s.DeadSwitches {
		if !o.DeadSwitches[n] {
			return false
		}
	}
	for ip, d := range s.ExpectedMoves {
		if o.ExpectedMoves[ip] != d {
			return false
		}
	}
	return true
}

// fold applies one record to the state. streamed marks records received
// live over the standby stream (vs. committed locally or loaded).
func (s *State) fold(rec Record, streamed bool) {
	switch rec.Kind {
	case RecGroupUpdate:
		s.Groups[rec.Group] = &GroupState{
			Leader:   rec.Group,
			Version:  rec.Version,
			Src:      rec.Src,
			Members:  append([]wire.Member(nil), rec.Members...),
			Seq:      rec.Seq,
			Epoch:    rec.Epoch,
			Streamed: streamed,
		}
	case RecGroupRemove:
		delete(s.Groups, rec.Group)
	case RecAdapterFlip:
		s.Adapters[rec.Member.IP] = AdapterState{
			Member: rec.Member, Alive: rec.Alive, Group: rec.Group, DiedAt: rec.DiedAt,
		}
	case RecNodeFlip:
		if rec.Dead {
			s.DeadNodes[rec.Node] = true
		} else {
			delete(s.DeadNodes, rec.Node)
		}
	case RecSwitchFlip:
		if rec.Dead {
			s.DeadSwitches[rec.Node] = true
		} else {
			delete(s.DeadSwitches, rec.Node)
		}
	case RecMoveExpect:
		s.ExpectedMoves[rec.Adapter] = rec.Deadline
	case RecMoveDone:
		delete(s.ExpectedMoves, rec.Adapter)
	case RecSnapshot:
		if rec.Snap == nil {
			return
		}
		fresh := rec.Snap.clone()
		*s = *fresh
		if streamed {
			for _, g := range s.Groups {
				g.Streamed = true
			}
		}
	}
}

// Snapshot bundles a state with the journal position it folds up to.
type Snapshot struct {
	Epoch uint64
	Seq   uint64
	State *State
}

// Store is the append-only persistence behind a Journal. Implementations:
// MemStore (simulation, warm standby) and FileStore (cmd/gsd).
type Store interface {
	// Append persists one record after the current tail.
	Append(rec Record) error
	// SetSnapshot atomically replaces the store's basis with snap and
	// discards all appended records (compaction).
	SetSnapshot(snap Snapshot) error
	// Load returns the persisted basis and every record after it. A fresh
	// store returns a nil snapshot state and no records.
	Load() (Snapshot, []Record, error)
	// Close releases resources. The Journal calls it exactly once.
	Close() error
}

// Options tunes a Journal.
type Options struct {
	// SnapEvery folds the log into a snapshot after this many appended
	// records (compaction). 0 means DefaultSnapEvery.
	SnapEvery int
}

// DefaultSnapEvery bounds replay work to one snapshot load plus at most
// this many record folds.
const DefaultSnapEvery = 256

// Journal manages an append-only store plus its materialized state. It is
// single-goroutine, like everything protocol-side.
type Journal struct {
	store     Store
	st        *State
	epoch     uint64
	seq       uint64
	snapEvery int
	sinceSnap int
	loaded    bool // store held state at open
}

// New opens a journal over store, replaying any persisted snapshot and
// log tail into the materialized state.
func New(store Store, opts Options) (*Journal, error) {
	if opts.SnapEvery <= 0 {
		opts.SnapEvery = DefaultSnapEvery
	}
	snap, recs, err := store.Load()
	if err != nil {
		return nil, err
	}
	j := &Journal{store: store, st: NewState(), snapEvery: opts.SnapEvery}
	if snap.State != nil {
		j.st = snap.State.clone()
		j.epoch, j.seq = snap.Epoch, snap.Seq
		j.loaded = true
	}
	for _, rec := range recs {
		j.st.fold(rec, false)
		j.epoch, j.seq = rec.Epoch, rec.Seq
		j.loaded = true
	}
	return j, nil
}

// NewMem is shorthand for an in-memory journal (simulation, standbys).
func NewMem() *Journal {
	j, err := New(NewMemStore(), Options{})
	if err != nil { // MemStore.Load cannot fail
		panic(err)
	}
	return j
}

// State exposes the materialized fold. Callers must not mutate it.
func (j *Journal) State() *State { return j.st }

// Epoch returns the current activation epoch.
func (j *Journal) Epoch() uint64 { return j.epoch }

// Seq returns the last journal position.
func (j *Journal) Seq() uint64 { return j.seq }

// Loaded reports whether this journal holds replayable state — from the
// store at open, or ingested over the standby stream since. Only a loaded
// journal can seed a restore on activation.
func (j *Journal) Loaded() bool { return j.loaded }

// BeginEpoch starts a new activation epoch and persists a snapshot of the
// current state as the new regime's basis, compacting the log.
func (j *Journal) BeginEpoch() uint64 {
	j.epoch++
	_ = j.store.SetSnapshot(Snapshot{Epoch: j.epoch, Seq: j.seq, State: j.st.clone()})
	j.sinceSnap = 0
	return j.epoch
}

// Reset discards the materialized state, re-basing the store on an empty
// snapshot at the current position. An activating Central that declines
// to restore (cold start) must call it: its live view starts from
// nothing, and a journal still folding the previous regime's groups
// would diverge from the live state it claims to describe — and leak
// those stale groups into the next standby's bootstrap snapshot.
func (j *Journal) Reset() {
	j.st = NewState()
	j.loaded = false
	_ = j.store.SetSnapshot(Snapshot{Epoch: j.epoch, Seq: j.seq, State: j.st.clone()})
	j.sinceSnap = 0
}

// commit stamps, persists and folds one locally-committed record,
// returning the stamped record for streaming.
func (j *Journal) commit(rec Record) Record {
	j.seq++
	rec.Epoch, rec.Seq = j.epoch, j.seq
	_ = j.store.Append(rec)
	j.st.fold(rec, false)
	j.sinceSnap++
	if j.sinceSnap >= j.snapEvery {
		_ = j.store.SetSnapshot(Snapshot{Epoch: j.epoch, Seq: j.seq, State: j.st.clone()})
		j.sinceSnap = 0
	}
	return rec
}

// GroupUpdate journals one group's full committed state.
func (j *Journal) GroupUpdate(now time.Duration, leader transport.IP, version uint64, src transport.Addr, members []wire.Member) Record {
	ms := append([]wire.Member(nil), members...)
	sort.Slice(ms, func(a, b int) bool { return ms[a].IP > ms[b].IP })
	return j.commit(Record{Time: now, Kind: RecGroupUpdate,
		Group: leader, Version: version, Src: src, Members: ms})
}

// GroupRemove journals a group's dissolution.
func (j *Journal) GroupRemove(now time.Duration, leader transport.IP) Record {
	return j.commit(Record{Time: now, Kind: RecGroupRemove, Group: leader})
}

// AdapterFlip journals one adapter's liveness transition.
func (j *Journal) AdapterFlip(now time.Duration, m wire.Member, alive bool, group transport.IP, diedAt time.Duration) Record {
	return j.commit(Record{Time: now, Kind: RecAdapterFlip,
		Member: m, Alive: alive, Group: group, DiedAt: diedAt})
}

// NodeFlip journals node-level correlated death or recovery.
func (j *Journal) NodeFlip(now time.Duration, node string, dead bool) Record {
	return j.commit(Record{Time: now, Kind: RecNodeFlip, Node: node, Dead: dead})
}

// SwitchFlip journals switch-level correlated death or recovery.
func (j *Journal) SwitchFlip(now time.Duration, name string, dead bool) Record {
	return j.commit(Record{Time: now, Kind: RecSwitchFlip, Node: name, Dead: dead})
}

// MoveExpect journals a Central-initiated move in progress.
func (j *Journal) MoveExpect(now time.Duration, adapter transport.IP, deadline time.Duration) Record {
	return j.commit(Record{Time: now, Kind: RecMoveExpect, Adapter: adapter, Deadline: deadline})
}

// MoveDone journals the completion (or expiry) of an expected move.
func (j *Journal) MoveDone(now time.Duration, adapter transport.IP) Record {
	return j.commit(Record{Time: now, Kind: RecMoveDone, Adapter: adapter})
}

// SnapshotRecord synthesizes a RecSnapshot of the current state at the
// current position, for bootstrapping a fresh standby over the stream. It
// is not appended locally — the local store already holds this state.
func (j *Journal) SnapshotRecord(now time.Duration) Record {
	return Record{Epoch: j.epoch, Seq: j.seq, Time: now, Kind: RecSnapshot, Snap: j.st.clone()}
}

// Ingest applies one record received over the standby stream. Records
// must arrive in order: a record is accepted iff it is a snapshot
// (resetting the fold to the sender's position) or the immediate
// successor of the last ingested position. Out-of-order records are
// dropped — the sender retransmits from the cumulative ack. Returns
// whether the record was applied.
func (j *Journal) Ingest(rec Record) bool {
	switch {
	case rec.Kind == RecSnapshot:
		j.st = NewState()
		j.st.fold(rec, true)
		j.epoch, j.seq = rec.Epoch, rec.Seq
		j.loaded = true
		_ = j.store.SetSnapshot(Snapshot{Epoch: rec.Epoch, Seq: rec.Seq, State: j.st.clone()})
		j.sinceSnap = 0
		return true
	case rec.Seq == j.seq+1:
		_ = j.store.Append(rec)
		j.st.fold(rec, true)
		j.epoch, j.seq = rec.Epoch, rec.Seq
		j.loaded = true
		j.sinceSnap++
		if j.sinceSnap >= j.snapEvery {
			_ = j.store.SetSnapshot(Snapshot{Epoch: j.epoch, Seq: j.seq, State: j.st.clone()})
			j.sinceSnap = 0
		}
		return true
	default:
		return false
	}
}

// Close closes the underlying store.
func (j *Journal) Close() error { return j.store.Close() }

// MemStore is the in-memory Store: the simulator's backend and the warm
// standby's default.
type MemStore struct {
	snap Snapshot
	recs []Record
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Append implements Store.
func (m *MemStore) Append(rec Record) error {
	m.recs = append(m.recs, rec)
	return nil
}

// SetSnapshot implements Store.
func (m *MemStore) SetSnapshot(snap Snapshot) error {
	m.snap = Snapshot{Epoch: snap.Epoch, Seq: snap.Seq, State: snap.State.clone()}
	m.recs = nil
	return nil
}

// Load implements Store.
func (m *MemStore) Load() (Snapshot, []Record, error) {
	var snap Snapshot
	if m.snap.State != nil {
		snap = Snapshot{Epoch: m.snap.Epoch, Seq: m.snap.Seq, State: m.snap.State.clone()}
	}
	return snap, append([]Record(nil), m.recs...), nil
}

// Close implements Store.
func (m *MemStore) Close() error { return nil }
