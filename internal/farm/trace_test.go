package farm

import (
	"testing"
	"time"

	"repro/internal/trace"
)

// TestTraceCapturesProtocolLifecycle drives a small farm with the flight
// recorder on and checks that discovery, 2PC, reporting, and failure
// handling all leave correlated records, and that the metrics bridge
// derives instruments from them.
func TestTraceCapturesProtocolLifecycle(t *testing.T) {
	f, err := Build(Spec{
		Seed:         5,
		UniformNodes: 6, UniformAdapters: 2,
		AdminNodes: 1,
		StartSkew:  time.Second,
		Trace:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	if !f.Trace.Enabled() {
		t.Fatal("Spec.Trace did not enable the recorder")
	}
	if _, ok := f.RunUntilStable(3 * time.Minute); !ok {
		t.Fatal("farm never stabilized")
	}

	seen := make(map[trace.Kind]bool)
	for _, rec := range f.Trace.Snapshot() {
		seen[rec.Kind] = true
		if rec.Node == "" {
			t.Fatalf("record missing node: %v", rec)
		}
	}
	for _, k := range []trace.Kind{
		trace.KBeaconSent, trace.KBeaconHeard, trace.KFormed,
		trace.KPrepareSent, trace.KPrepareRecv, trace.KPrepareAck,
		trace.KCommitSent, trace.KCommitRecv, trace.KViewCommit,
		trace.KReportQueued, trace.KReportAcked, trace.KReportApplied,
		trace.KCentralActivated,
	} {
		if !seen[k] {
			t.Errorf("no %v record captured", k)
		}
	}

	// Each 2PC transaction's records share the (leader, token) pair.
	txns := trace.Txns(f.Trace.Snapshot())
	if len(txns) == 0 {
		t.Fatal("no 2PC transactions correlated")
	}
	for _, txn := range txns {
		for _, rec := range txn.Records {
			if rec.Group != txn.Leader || rec.Token != txn.Token {
				t.Fatalf("txn %s contains foreign record %v", txn.ID(), rec)
			}
		}
	}

	// The bridge fed the registry.
	for _, name := range []string{"beacons_sent_total", "twopc_rounds_total",
		"twopc_commits_total", "view_commits_total", "reports_applied_total",
		"central_activations_total"} {
		if f.Metrics.CounterValue(name) == 0 {
			t.Errorf("counter %s never incremented", name)
		}
	}
	if f.Metrics.Histogram("twopc_round").N == 0 {
		t.Error("no twopc_round latency samples")
	}
}

// TestTraceDisabledByDefault pins that a farm without Spec.Trace records
// nothing (the recorder exists but capture is off).
func TestTraceDisabledByDefault(t *testing.T) {
	f, err := Build(Spec{Seed: 2, AdminNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	f.RunFor(30 * time.Second)
	if f.Trace.Enabled() {
		t.Error("recorder enabled without Spec.Trace")
	}
	if n := f.Trace.Total(); n != 0 {
		t.Errorf("disabled recorder captured %d records", n)
	}
}
