package core

import (
	"math/rand"

	"repro/internal/transport"
	"repro/internal/wire"
)

// detectorEnv adapts an adapterProto to detect.Env.
type detectorEnv adapterProto

func (e *detectorEnv) p() *adapterProto { return (*adapterProto)(e) }

// Self implements detect.Env.
func (e *detectorEnv) Self() transport.IP { return e.p().self }

// Clock implements detect.Env.
func (e *detectorEnv) Clock() transport.Clock { return e.p().d.clock }

// Rand implements detect.Env.
func (e *detectorEnv) Rand() *rand.Rand { return e.p().d.rng }

// Send implements detect.Env: all detector traffic rides the heartbeat
// plane.
func (e *detectorEnv) Send(dst transport.IP, m wire.Message) {
	e.p().sendHeartbeatPlane(dst, m)
}

// ReportSuspect implements detect.Env.
func (e *detectorEnv) ReportSuspect(suspect transport.IP, reason wire.SuspectReason) {
	e.p().reportSuspect(suspect, reason)
}
