// Package span is the causal timeline layer: it stitches the flight
// recorder's per-transition records into end-to-end lifecycle spans —
// one span per incident (a node death, a planned domain move, a leader
// change) covering everything from the ground-truth fault instant
// through suspicion, probe, verdict, the 2PC membership commit, the
// committed view, Central's report apply and notification, the serving
// plane's reroute, and the first clean client request.
//
// Three correlators tie the stages together:
//
//   - Central's incident id (event.Event.Incident, mirrored into
//     KNotifySent/KIncidentClosed records and the balancer's
//     KServeBackendDown/Up records);
//   - the 2PC transaction id (Group = committing leader, Token = round
//     token) linking prepare → commit;
//   - the group incarnation (Group + Version) linking commit → view
//     commit → report apply.
//
// Records come from a Collector (one source per recorder, merged in
// deterministic sim-time order) and spans feed per-stage latency
// histograms (Observe) — the instrument every notification-path and
// detection optimization is measured against.
package span

import (
	"fmt"
	"time"
)

// Stage labels one milestone of a lifecycle span.
type Stage uint8

// Stages, in the canonical failure-pipeline order. Move and
// leader-change spans use subsets (and StMoveDone/StRestore); a span's
// milestone list is always ordered by time, not by stage number.
const (
	// StFault: the harness disturbed the farm (KFaultInjected) — ground
	// truth, before any daemon noticed.
	StFault Stage = iota + 1
	// StSuspicion: a detector first reported one of the subject's
	// adapters silent.
	StSuspicion
	// StProbe: a verification probe went to the suspect.
	StProbe
	// StVerdict: verification declared the suspect dead.
	StVerdict
	// StTakeover: the successor promoted itself after verifying the
	// leader's death (leader-change spans).
	StTakeover
	// StPrepare: the verifier opened the eviction/reform 2PC round.
	StPrepare
	// StCommit: the leader committed the round.
	StCommit
	// StView: the new membership view was finalized.
	StView
	// StReport: Central applied the report carrying the change.
	StReport
	// StNotify: Central published the incident notification.
	StNotify
	// StReroute: the balancer pulled the subject out of rotation (or
	// drained it, for a planned move).
	StReroute
	// StMoveDone: Central correlated the move's completion (NodeMoved).
	StMoveDone
	// StRestore: the balancer returned the subject to rotation.
	StRestore
	// StClean: the affected domain served its first error-free tick.
	StClean

	stageMax
)

var stageNames = [...]string{
	StFault:     "fault",
	StSuspicion: "suspicion",
	StProbe:     "probe",
	StVerdict:   "verdict",
	StTakeover:  "takeover",
	StPrepare:   "2pc-prepare",
	StCommit:    "2pc-commit",
	StView:      "view-commit",
	StReport:    "report",
	StNotify:    "notify",
	StReroute:   "reroute",
	StMoveDone:  "move-done",
	StRestore:   "restore",
	StClean:     "first-clean",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) && stageNames[s] != "" {
		return stageNames[s]
	}
	return fmt.Sprintf("Stage(%d)", uint8(s))
}

// MarshalText renders the stage name into JSON documents.
func (s Stage) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// Span kinds.
const (
	KindFailure        = "failure"
	KindPlannedMove    = "planned-move"
	KindUnexpectedMove = "unexpected-move"
	KindSwitchFailure  = "switch-failure"
	KindLeaderChange   = "leader-change"
)

// Milestone is one reached stage: which record hit it, when, and where.
type Milestone struct {
	Stage Stage `json:"stage"`
	// T is the capture instant; Seq breaks ties deterministically.
	T   time.Duration `json:"t"`
	Seq uint64        `json:"seq"`
	// Node is the node that recorded the underlying transition.
	Node   string `json:"node,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// Span is one stitched incident lifecycle.
type Span struct {
	// Ref is a stable display handle ("s1", "s2", ... in start order).
	Ref string `json:"ref"`
	// Kind classifies the incident: failure, planned-move,
	// unexpected-move, switch-failure, leader-change.
	Kind string `json:"kind"`
	// Incident is Central's id (0 for trace-only spans such as leader
	// changes); Central names the issuing instance's hosting node.
	Incident uint64 `json:"incident,omitempty"`
	Central  string `json:"central,omitempty"`
	// Subject is the node (or switch) the incident is about.
	Subject string `json:"subject"`
	// Domain is the serving domain the reroute touched, when one did.
	Domain string `json:"domain,omitempty"`
	// Closed reports that Central resolved the incident; ClosedAt is
	// when (meaningful only when Closed). Trace-only spans are Closed
	// when their final expected milestone was found.
	Closed   bool          `json:"closed"`
	ClosedAt time.Duration `json:"closed_at,omitempty"`
	// Milestones, ordered by (T, Seq).
	Milestones []Milestone `json:"milestones"`
	// Missing lists expected-but-unreached stages (empty = complete).
	Missing []Stage `json:"missing,omitempty"`
}

// Start returns the span's first milestone instant (0 when empty).
func (s *Span) Start() time.Duration {
	if len(s.Milestones) == 0 {
		return 0
	}
	return s.Milestones[0].T
}

// End returns the span's last milestone instant.
func (s *Span) End() time.Duration {
	if len(s.Milestones) == 0 {
		return 0
	}
	return s.Milestones[len(s.Milestones)-1].T
}

// Total is the end-to-end duration, first milestone to last.
func (s *Span) Total() time.Duration { return s.End() - s.Start() }

// Complete reports that every expected stage was reached.
func (s *Span) Complete() bool { return len(s.Missing) == 0 }

// Monotone reports that the milestones never step backward in time —
// with Complete, the "gap-free" property: stage durations are diffs of
// consecutive milestones, so they partition [Start, End] exactly, with
// no unattributed interval.
func (s *Span) Monotone() bool {
	for i := 1; i < len(s.Milestones); i++ {
		if s.Milestones[i].T < s.Milestones[i-1].T {
			return false
		}
	}
	return true
}

// StageDuration is the latency attributed to reaching one stage from
// the previous milestone.
type StageDuration struct {
	Stage Stage         `json:"stage"`
	D     time.Duration `json:"d"`
}

// StageDurations attributes the span's total latency across its stages:
// element i is milestone i+1's stage and its distance from milestone i.
// The durations sum to Total exactly.
func (s *Span) StageDurations() []StageDuration {
	if len(s.Milestones) < 2 {
		return nil
	}
	out := make([]StageDuration, 0, len(s.Milestones)-1)
	for i := 1; i < len(s.Milestones); i++ {
		out = append(out, StageDuration{
			Stage: s.Milestones[i].Stage,
			D:     s.Milestones[i].T - s.Milestones[i-1].T,
		})
	}
	return out
}

// Milestone returns the reached milestone for a stage (nil when the
// stage was not reached).
func (s *Span) Milestone(st Stage) *Milestone {
	for i := range s.Milestones {
		if s.Milestones[i].Stage == st {
			return &s.Milestones[i]
		}
	}
	return nil
}

// String renders a one-line summary.
func (s *Span) String() string {
	state := "OPEN"
	if s.Closed {
		state = "closed"
	}
	return fmt.Sprintf("%s %s %s [%v +%v] %d milestones (%s)",
		s.Ref, s.Kind, s.Subject, s.Start(), s.Total(), len(s.Milestones), state)
}
