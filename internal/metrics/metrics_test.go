package metrics

import (
	"strings"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/transport"
)

func netTrace(port uint16, seg string, bytes, dropped int) netsim.Trace {
	return netsim.Trace{
		Dst:     transport.Addr{IP: transport.MakeIP(10, 0, 0, 1), Port: port},
		Segment: seg,
		Bytes:   bytes,
		Dropped: dropped,
	}
}

func TestRegistryAggregation(t *testing.T) {
	r := NewRegistry()
	r.Observe(netTrace(transport.PortHeartbeat, "vlan-100", 22, 0))
	r.Observe(netTrace(transport.PortHeartbeat, "vlan-100", 22, 1))
	r.Observe(netTrace(transport.PortBeacon, "vlan-200", 40, 0))

	if tot := r.Total(); tot.Messages != 3 || tot.Bytes != 84 || tot.Dropped != 1 {
		t.Fatalf("total = %+v", tot)
	}
	hb := r.PlaneCounter("heartbeat")
	if hb.Messages != 2 || hb.Bytes != 44 || hb.Dropped != 1 {
		t.Fatalf("heartbeat = %+v", hb)
	}
	if r.PlaneCounter("snmp").Messages != 0 {
		t.Fatal("unseen plane should be zero")
	}
	if seg := r.SegmentCounter("vlan-100"); seg.Messages != 2 {
		t.Fatalf("segment = %+v", seg)
	}
}

func TestPlaneNames(t *testing.T) {
	cases := map[uint16]string{
		transport.PortBeacon:    "beacon",
		transport.PortMember:    "membership",
		transport.PortHeartbeat: "heartbeat",
		transport.PortReport:    "report",
		transport.PortSNMP:      "snmp",
		9999:                    "other",
	}
	for port, want := range cases {
		if got := Plane(port); got != want {
			t.Errorf("Plane(%d) = %q, want %q", port, got, want)
		}
	}
}

func TestResetAndRate(t *testing.T) {
	r := NewRegistry()
	r.Observe(netTrace(transport.PortHeartbeat, "s", 22, 0))
	r.Reset(10 * time.Second)
	if r.Total().Messages != 0 {
		t.Fatal("Reset did not clear")
	}
	r.Observe(netTrace(transport.PortHeartbeat, "s", 22, 0))
	r.Observe(netTrace(transport.PortHeartbeat, "s", 22, 0))
	got := r.Rate(r.Total().Messages, 14*time.Second)
	if got != 0.5 {
		t.Fatalf("rate = %v, want 0.5 msg/s", got)
	}
	if r.Rate(5, 10*time.Second) != 0 {
		t.Fatal("zero window rate must be 0")
	}
}

func TestSummary(t *testing.T) {
	r := NewRegistry()
	r.Observe(netTrace(transport.PortBeacon, "s", 40, 0))
	r.Observe(netTrace(transport.PortReport, "s", 60, 2))
	s := r.Summary()
	if !strings.Contains(s, "beacon") || !strings.Contains(s, "report") {
		t.Fatalf("summary = %q", s)
	}
	if strings.Index(s, "beacon") > strings.Index(s, "report") {
		t.Fatal("summary not in name order")
	}
}

func TestLatencies(t *testing.T) {
	var l Latencies
	if l.Quantile(0.5) != 0 || l.Mean() != 0 || l.Max() != 0 || l.Min() != 0 {
		t.Fatal("empty latencies must report zeros")
	}
	for _, ms := range []int{50, 10, 30, 20, 40} {
		l.Add(time.Duration(ms) * time.Millisecond)
	}
	if l.N() != 5 {
		t.Fatal("N wrong")
	}
	if l.Min() != 10*time.Millisecond || l.Max() != 50*time.Millisecond {
		t.Fatalf("min/max = %v/%v", l.Min(), l.Max())
	}
	if l.Quantile(0.5) != 30*time.Millisecond {
		t.Fatalf("median = %v", l.Quantile(0.5))
	}
	if l.Mean() != 30*time.Millisecond {
		t.Fatalf("mean = %v", l.Mean())
	}
	if l.Quantile(0) != 10*time.Millisecond || l.Quantile(1) != 50*time.Millisecond {
		t.Fatal("extreme quantiles wrong")
	}
	// Adding after sorting must still work.
	l.Add(time.Millisecond)
	if l.Min() != time.Millisecond {
		t.Fatal("Add after sort broke ordering")
	}
}
