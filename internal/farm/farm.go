// Package farm assembles complete simulated multi-domain server farms —
// the Océano shape of Figure 1/2: network-isolated customer domains with
// front-end and back-end layers, an administrative domain that every node
// touches, managed switches whose VLAN tables define the segments, a
// configuration database describing the expected topology, and a
// GulfStream daemon on every node. It is the workload generator and fault
// injector behind every experiment in EXPERIMENTS.md.
package farm

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/central"
	"repro/internal/configdb"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/journal"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/switchsim"
	"repro/internal/trace"
	"repro/internal/transport"
)

// AdminVLAN is the administrative domain's VLAN id.
const AdminVLAN = 1

// BackboneVLAN is the inter-zone backbone segment of zoned farms: each
// zone's gateway node carries an extra adapter here, forming one
// farm-spanning AMG whose traffic is the only thing that crosses shard
// boundaries.
const BackboneVLAN = 2

// zoneAdminVLAN returns zone z's administrative VLAN. Zones get disjoint
// 64-wide VLAN blocks well above the domain/uniform ranges.
func zoneAdminVLAN(z int) int { return 4096 + z*64 }

// zoneDataVLAN returns the VLAN of zone z's data segment a (1-based
// adapter index; a < 64).
func zoneDataVLAN(z, a int) int { return 4096 + z*64 + a }

// DomainSpec describes one hosted customer domain.
type DomainSpec struct {
	Name      string
	FrontEnds int
	BackEnds  int
}

// FrontVLAN returns the VLAN of domain i's front-end segment.
func FrontVLAN(i int) int { return 100 + 2*i }

// BackVLAN returns the VLAN of domain i's back-end segment.
func BackVLAN(i int) int { return 101 + 2*i }

// Spec describes a farm to build.
type Spec struct {
	Seed int64

	// Domains lists the hosted domains (may be empty for uniform farms).
	Domains []DomainSpec
	// AdminNodes are management-only nodes (one admin adapter each); the
	// paper's "management nodes eligible to host the GulfStream view".
	AdminNodes int

	// UniformNodes, when > 0, builds the testbed shape instead: N nodes
	// with UniformAdapters adapters each, adapter i on VLAN class i
	// (adapter 0 administrative) — the Figure 5 workload.
	UniformNodes    int
	UniformAdapters int

	// Zones, when > 0, builds the zoned shape for large-scale sweeps:
	// Zones independent zones of ZoneNodes nodes × ZoneAdapters adapters,
	// each zone with its own admin VLAN (so it forms its own AMGs, elects
	// its own leader and hosts its own Central against a zone-local
	// configdb), plus each zone's node 0 carrying one extra adapter on the
	// shared backbone segment. Broadcast domains stay zone-sized, so total
	// formation cost grows linearly in zones instead of quadratically in
	// farm size — the only shape where 100k adapters is reachable.
	Zones        int
	ZoneNodes    int
	ZoneAdapters int

	// Shards > 1 runs a zoned farm on the sharded kernel, zone i (all its
	// nodes, switches and segments) on shard i%Shards. Only the backbone
	// crosses shards, so the lookahead window is BackboneLatency.
	Shards int
	// BackboneLatency is the backbone link latency (default 1ms). In a
	// sharded run it is the conservative lookahead, so it must be at least
	// as large as every cross-shard link's base latency.
	BackboneLatency time.Duration
	// Spread adds a deterministic per-(src,dst) latency spread in
	// [0, Spread) on every segment — jitter's decorrelation without RNG
	// draws, so results stay identical under any shard count. Zoned farms
	// default it to 300µs (and default Jitter to zero, since RNG jitter
	// would diverge between shard counts).
	Spread time.Duration

	// NodesPerSwitch packs nodes onto switches (default 16).
	NodesPerSwitch int

	// Network quality.
	Loss    float64
	Latency time.Duration
	Jitter  time.Duration

	// StartSkew staggers daemon boots uniformly over [0, StartSkew) —
	// the dominant component of the paper's δ.
	StartSkew time.Duration

	// Core is the daemon configuration; zero value means defaults.
	Core core.Config
	// Central is the GulfStream Central configuration; zero means defaults.
	Central central.Config
	// RecordEvents keeps the full event log on the bus.
	RecordEvents bool
	// Journal gives every node's Central an in-memory state journal,
	// enabling the warm-standby stream and journal-based failover.
	Journal bool
	// Trace enables the protocol flight recorder: every daemon and
	// Central records protocol state transitions into the shared
	// Farm.Trace ring (records carry the node name, so one unified
	// timeline covers the whole farm).
	Trace bool
	// TraceCapacity overrides the flight-recorder ring size
	// (trace.DefaultCapacity when zero).
	TraceCapacity int
}

// NodeInfo describes one built node.
type NodeInfo struct {
	Name     string
	Role     string // "admin", "frontend", "backend", "uniform"
	Domain   string
	Adapters []transport.IP // by adapter index
	Switch   string
}

// Farm is a built, runnable simulated farm.
type Farm struct {
	Spec Spec
	// Sched is the event kernel of a single-threaded farm; nil when the
	// farm runs sharded (use Shards, or the kernel-agnostic Now/Fired/
	// RunFor helpers).
	Sched *sim.Scheduler
	// Shards is the sharded kernel when Spec.Shards > 1, else nil.
	Shards *sim.Shards
	Net    *netsim.Network
	Fabric *switchsim.Fabric
	DB     *configdb.DB
	Bus    *event.Bus
	// DBs/Buses hold the per-zone configdb and event bus of zoned farms
	// (zone Centrals may run on different shards, so they cannot share
	// one mutable DB). DB/Bus alias zone 0's for convenience.
	DBs     []*configdb.DB
	Buses   []*event.Bus
	Metrics *metrics.Registry
	// Trace is the farm-wide flight recorder. Always present; capture is
	// enabled only when Spec.Trace is set (a disabled recorder costs one
	// atomic load per protocol transition).
	Trace *trace.Recorder

	Nodes    map[string]*NodeInfo
	Daemons  map[string]*core.Daemon
	Centrals map[string]*central.Central
	// Journals holds each node's journal when Spec.Journal is set.
	Journals map[string]*journal.Journal

	adapters map[transport.IP]*netsim.Adapter
	owner    map[transport.IP]string // adapter -> owning node
	order    []string                // node build order (deterministic)
	shardOf  map[string]int          // node (and switch) -> home shard
	started  bool
}

// Build constructs the farm described by spec.
func Build(spec Spec) (*Farm, error) {
	if spec.NodesPerSwitch <= 0 {
		spec.NodesPerSwitch = 16
	}
	if spec.Core.BeaconInterval == 0 {
		spec.Core = core.DefaultConfig()
	}
	if spec.Central.StabilizeWait == 0 {
		spec.Central = central.DefaultConfig()
	}
	if spec.Latency == 0 {
		spec.Latency = 200 * time.Microsecond
	}
	if spec.Jitter == 0 && spec.Zones == 0 {
		// Zoned farms default to zero jitter: RNG-drawn jitter would make
		// single- and multi-shard runs diverge. Spread fills jitter's
		// decorrelation role deterministically.
		spec.Jitter = 300 * time.Microsecond
	}
	if spec.Zones > 0 {
		if spec.ZoneNodes <= 0 || spec.ZoneAdapters <= 0 {
			return nil, fmt.Errorf("farm: zoned spec needs ZoneNodes and ZoneAdapters")
		}
		if spec.ZoneAdapters > 63 {
			return nil, fmt.Errorf("farm: ZoneAdapters %d exceeds the zone VLAN block", spec.ZoneAdapters)
		}
		if spec.Spread == 0 {
			spec.Spread = 300 * time.Microsecond
		}
		if spec.BackboneLatency == 0 {
			spec.BackboneLatency = time.Millisecond
		}
	}
	if spec.Shards > 1 {
		if spec.Zones <= 0 {
			return nil, fmt.Errorf("farm: sharded farms require the zoned shape (Zones > 0)")
		}
		if spec.Trace {
			return nil, fmt.Errorf("farm: the flight recorder is not shard-safe; disable Trace for sharded runs")
		}
		if spec.BackboneLatency < spec.Latency {
			return nil, fmt.Errorf("farm: backbone latency %v below zone latency %v would break the lookahead bound", spec.BackboneLatency, spec.Latency)
		}
	}
	f := &Farm{
		Spec:     spec,
		Fabric:   switchsim.NewFabric(),
		Bus:      event.NewBus(spec.RecordEvents),
		Metrics:  metrics.NewRegistry(),
		Nodes:    make(map[string]*NodeInfo),
		Daemons:  make(map[string]*core.Daemon),
		Centrals: make(map[string]*central.Central),
		Journals: make(map[string]*journal.Journal),
		adapters: make(map[transport.IP]*netsim.Adapter),
		owner:    make(map[transport.IP]string),
		shardOf:  make(map[string]int),
	}
	if spec.Shards > 1 {
		f.Shards = sim.NewShards(spec.Seed, spec.Shards, spec.BackboneLatency)
		f.Net = netsim.NewSharded(f.Shards, f.Fabric, func(node string) int { return f.shardOf[node] })
	} else {
		f.Sched = sim.NewScheduler(spec.Seed)
		f.Net = netsim.New(f.Sched, f.Fabric)
	}
	f.Net.SetDefaultProfile(netsim.LinkProfile{
		Loss: spec.Loss, Latency: spec.Latency, Jitter: spec.Jitter, Spread: spec.Spread,
	})
	if spec.Zones > 0 {
		// The backbone floods all zones: receiver-side multicast filtering
		// (mandatory across shards, and kept in single-shard runs so the
		// semantics don't depend on the shard layout).
		f.Net.SetSegmentProfile(switchsim.SegmentName(BackboneVLAN), netsim.LinkProfile{
			Loss: spec.Loss, Latency: spec.BackboneLatency, Spread: spec.Spread, RecvFilter: true,
		})
	}
	if f.Shards == nil {
		// The metrics tap serializes every transmission through one mutex —
		// harmless single-threaded, a scalability sink (and a cross-shard
		// ordering hazard) under parallel windows.
		f.Metrics.Attach(f.Net)
	}
	f.Trace = trace.New(spec.TraceCapacity)
	f.Trace.Enable(spec.Trace)
	f.Trace.AddSink(metrics.ObserveTrace(f.Metrics))

	var err error
	if spec.Zones > 0 {
		err = f.buildZoned()
	} else {
		f.DB = configdb.New()
		err = f.build()
	}
	if err != nil {
		return nil, err
	}
	f.Net.Ensure() // resolve the segment cache before any (possibly parallel) window
	return f, nil
}

// clock adapts the scheduler to transport.Clock.
type clock struct{ s *sim.Scheduler }

func (c clock) Now() time.Duration { return c.s.Now() }
func (c clock) AfterFunc(d time.Duration, fn func()) transport.Timer {
	return c.s.AfterFunc(d, fn)
}

// Clock returns the farm's virtual clock (shard 0's in a sharded farm;
// per-node components use clockFor so their timers live on their shard).
func (f *Farm) Clock() transport.Clock { return clock{f.schedFor("")} }

// schedFor returns the scheduler a node's events run on: the single
// kernel, or the node's home shard.
func (f *Farm) schedFor(node string) *sim.Scheduler {
	if f.Shards != nil {
		return f.Shards.Shard(f.shardOf[node])
	}
	return f.Sched
}

// clockFor returns the node's clock, backed by its home shard.
func (f *Farm) clockFor(node string) transport.Clock { return clock{f.schedFor(node)} }

// Fired reports total events executed under either kernel.
func (f *Farm) Fired() uint64 {
	if f.Shards != nil {
		return f.Shards.Fired()
	}
	return f.Sched.Fired()
}

// ipFor allocates 10.<class>.<hi>.<lo> for the ordinal-th adapter of a
// VLAN class.
func ipFor(class, ordinal int) transport.IP {
	return transport.MakeIP(10, byte(class), byte(ordinal/200), byte(ordinal%200+1))
}

type builder struct {
	f *Farm
	// per-class ordinals for IP allocation
	ordinals map[int]int
	// per-switch port counters
	ports map[string]int
	// switch assignment
	switchOf  func(nodeIdx int) string
	nodeCount int
}

func (b *builder) nextIP(class int) transport.IP {
	b.ordinals[class]++
	return ipFor(class, b.ordinals[class]-1)
}

func (b *builder) wire(sw string, ip transport.IP, vlan int) int {
	b.ports[sw]++
	port := b.ports[sw]
	b.f.Fabric.Switch(sw).Connect(port, ip, vlan)
	return port
}

func (f *Farm) build() error {
	b := &builder{f: f, ordinals: make(map[int]int), ports: make(map[string]int)}

	// Provision switches: enough for all nodes plus one management port
	// per switch, all trunked (VLANs are fabric-wide).
	totalNodes := f.Spec.AdminNodes + f.Spec.UniformNodes
	for _, d := range f.Spec.Domains {
		totalNodes += d.FrontEnds + d.BackEnds
	}
	if totalNodes == 0 {
		return fmt.Errorf("farm: spec builds zero nodes")
	}
	nSwitches := (totalNodes + f.Spec.NodesPerSwitch - 1) / f.Spec.NodesPerSwitch
	for i := 0; i < nSwitches; i++ {
		name := fmt.Sprintf("sw-%02d", i)
		f.Fabric.AddSwitch(name)
		// Management adapter on the admin VLAN, with its SNMP agent.
		mgmt := b.nextIP(9)
		a := f.Net.AddAdapter(mgmt, name)
		b.wire(name, mgmt, AdminVLAN)
		f.Fabric.Switch(name).AttachAgent(a, f.Spec.Central.Community)
	}
	b.switchOf = func(nodeIdx int) string {
		return fmt.Sprintf("sw-%02d", nodeIdx%nSwitches)
	}

	addNode := func(name, role, domain string, vlans []int) error {
		sw := b.switchOf(b.nodeCount)
		b.nodeCount++
		info := &NodeInfo{Name: name, Role: role, Domain: domain, Switch: sw}
		var eps []transport.Endpoint
		for idx, vlan := range vlans {
			class := 1
			if idx > 0 {
				class = vlan % 97 // spreads VLANs over IP classes deterministically
				if class <= 1 {
					class += 2
				}
			}
			ip := b.nextIP(class)
			a := f.Net.AddAdapter(ip, name)
			port := b.wire(sw, ip, vlan)
			info.Adapters = append(info.Adapters, ip)
			eps = append(eps, a)
			f.adapters[ip] = a
			f.owner[ip] = name
			if err := f.DB.AddAdapter(configdb.AdapterSpec{
				IP: ip, Node: name, Index: idx, VLAN: vlan, Switch: sw, Port: port,
			}); err != nil {
				return err
			}
		}
		// AddAdapter already created the node record with empty metadata;
		// fill in its domain and role.
		node := f.DB.AddNode(name, domain, role)
		node.Domain = domain
		node.Role = role

		d, err := core.NewDaemon(f.Spec.Core, name, f.Clock(), f.Sched.Rand(), eps)
		if err != nil {
			return err
		}
		c := central.New(f.Spec.Central, f.Clock(), f.Bus, f.DB)
		for _, swt := range f.Fabric.Switches() {
			c.RegisterSwitchAgent(swt.Name(), transport.Addr{IP: swt.ManagementIP(), Port: transport.PortSNMP})
		}
		if f.Spec.Journal {
			j := journal.NewMem()
			c.SetJournal(j)
			f.Journals[name] = j
		}
		d.SetCentral(c)
		d.SetTracer(f.Trace)
		c.SetTracer(f.Trace, name)
		f.Nodes[name] = info
		f.Daemons[name] = d
		f.Centrals[name] = c
		f.order = append(f.order, name)
		return nil
	}

	// Administrative nodes: single admin adapter.
	for i := 0; i < f.Spec.AdminNodes; i++ {
		if err := addNode(fmt.Sprintf("mgmt-%02d", i), "admin", "", []int{AdminVLAN}); err != nil {
			return err
		}
	}
	// Uniform testbed nodes.
	for i := 0; i < f.Spec.UniformNodes; i++ {
		k := f.Spec.UniformAdapters
		if k <= 0 {
			k = 3
		}
		vlans := []int{AdminVLAN}
		for a := 1; a < k; a++ {
			vlans = append(vlans, 10+a)
		}
		if err := addNode(fmt.Sprintf("node-%03d", i), "uniform", "", vlans); err != nil {
			return err
		}
	}
	// Domain nodes.
	for di, dom := range f.Spec.Domains {
		for i := 0; i < dom.FrontEnds; i++ {
			name := fmt.Sprintf("%s-fe-%02d", dom.Name, i)
			// Admin (circle), dispatcher-facing (triangle), internal (square).
			if err := addNode(name, "frontend", dom.Name,
				[]int{AdminVLAN, FrontVLAN(di), BackVLAN(di)}); err != nil {
				return err
			}
		}
		for i := 0; i < dom.BackEnds; i++ {
			name := fmt.Sprintf("%s-be-%02d", dom.Name, i)
			if err := addNode(name, "backend", dom.Name,
				[]int{AdminVLAN, BackVLAN(di)}); err != nil {
				return err
			}
		}
	}
	return nil
}

// buildZoned constructs the zoned shape: Zones independent zones, each
// with its own admin VLAN (own AMGs, own leader, own Central against a
// zone-local configdb and bus), its own data VLANs, and a gateway adapter
// on each zone's node 0 joining the shared backbone segment. When the farm
// is sharded, zone z lives wholly on shard z mod K — nodes, switches and
// segments — so the backbone is the only cross-shard traffic. Every daemon
// gets a node-derived RNG (not the shared scheduler stream), keeping any
// runtime draws identical under every shard count.
func (f *Farm) buildZoned() error {
	b := &builder{f: f, ordinals: make(map[int]int), ports: make(map[string]int)}
	spec := f.Spec
	shards := 1
	if f.Shards != nil {
		shards = f.Shards.N()
	}
	nodeIdx := 0
	for z := 0; z < spec.Zones; z++ {
		shard := z % shards
		zdb := configdb.New()
		zbus := event.NewBus(spec.RecordEvents)
		f.DBs = append(f.DBs, zdb)
		f.Buses = append(f.Buses, zbus)

		// Zone switches, each with a management adapter (and SNMP agent) on
		// the zone's admin VLAN. shardOf must be set before AddAdapter: the
		// sharded network homes the adapter by its node's shard.
		nSw := (spec.ZoneNodes + spec.NodesPerSwitch - 1) / spec.NodesPerSwitch
		zoneSwitches := make([]string, 0, nSw)
		for s := 0; s < nSw; s++ {
			name := fmt.Sprintf("z%03d-sw-%02d", z, s)
			f.shardOf[name] = shard
			f.Fabric.AddSwitch(name)
			mgmt := b.nextIP(9)
			a := f.Net.AddAdapter(mgmt, name)
			b.wire(name, mgmt, zoneAdminVLAN(z))
			f.Fabric.Switch(name).AttachAgent(a, spec.Central.Community)
			zoneSwitches = append(zoneSwitches, name)
		}

		domain := fmt.Sprintf("zone-%03d", z)
		for i := 0; i < spec.ZoneNodes; i++ {
			name := fmt.Sprintf("z%03d-n%03d", z, i)
			f.shardOf[name] = shard
			sw := zoneSwitches[i%nSw]
			info := &NodeInfo{Name: name, Role: "zone", Domain: domain, Switch: sw}
			vlans := []int{zoneAdminVLAN(z)}
			for a := 1; a < spec.ZoneAdapters; a++ {
				vlans = append(vlans, zoneDataVLAN(z, a))
			}
			if i == 0 {
				// Gateway: the extra backbone adapter rides at a non-admin
				// index, so backbone leadership never hosts a zone Central.
				vlans = append(vlans, BackboneVLAN)
			}
			var eps []transport.Endpoint
			for idx, vlan := range vlans {
				class := 1
				if idx > 0 {
					class = vlan % 97
					if class <= 1 {
						class += 2
					}
				}
				ip := b.nextIP(class)
				a := f.Net.AddAdapter(ip, name)
				port := b.wire(sw, ip, vlan)
				info.Adapters = append(info.Adapters, ip)
				eps = append(eps, a)
				f.adapters[ip] = a
				f.owner[ip] = name
				if err := zdb.AddAdapter(configdb.AdapterSpec{
					IP: ip, Node: name, Index: idx, VLAN: vlan, Switch: sw, Port: port,
				}); err != nil {
					return err
				}
			}
			node := zdb.AddNode(name, domain, "zone")
			node.Domain = domain
			node.Role = "zone"

			seed := int64(sim.Splitmix64(uint64(spec.Seed) ^ sim.Splitmix64(uint64(0x10000+nodeIdx))))
			d, err := core.NewDaemon(spec.Core, name, f.clockFor(name), rand.New(rand.NewSource(seed)), eps)
			if err != nil {
				return err
			}
			c := central.New(spec.Central, f.clockFor(name), zbus, zdb)
			for _, swName := range zoneSwitches {
				swt := f.Fabric.Switch(swName)
				c.RegisterSwitchAgent(swt.Name(), transport.Addr{IP: swt.ManagementIP(), Port: transport.PortSNMP})
			}
			if spec.Journal {
				j := journal.NewMem()
				c.SetJournal(j)
				f.Journals[name] = j
			}
			d.SetCentral(c)
			d.SetTracer(f.Trace)
			c.SetTracer(f.Trace, name)
			f.Nodes[name] = info
			f.Daemons[name] = d
			f.Centrals[name] = c
			f.order = append(f.order, name)
			nodeIdx++
		}
	}
	f.DB = f.DBs[0]
	f.Bus = f.Buses[0]
	return nil
}

// Start boots every daemon, staggered over StartSkew. Skews are drawn in
// node build order from the root-seeded stream — the scheduler's own RNG
// single-threaded, a control RNG with the same seed when sharded — so the
// boot schedule is identical under every shard count.
func (f *Farm) Start() {
	if f.started {
		return
	}
	f.started = true
	rng := func() *rand.Rand {
		if f.Shards != nil {
			return rand.New(rand.NewSource(f.Spec.Seed))
		}
		return f.Sched.Rand()
	}()
	for _, name := range f.order {
		d := f.Daemons[name]
		delay := time.Duration(0)
		if f.Spec.StartSkew > 0 {
			delay = time.Duration(rng.Int63n(int64(f.Spec.StartSkew)))
		}
		f.schedFor(name).AfterFunc(delay, d.Start)
	}
}

// RunFor advances the simulation under either kernel.
func (f *Farm) RunFor(d time.Duration) {
	if f.Shards != nil {
		f.Shards.RunFor(d)
		return
	}
	f.Sched.RunFor(d)
}

// ActiveCentral returns the authoritative GulfStream Central. Partitioned
// admin adapters may each host a Central for their own partition (the
// paper allows this); the authoritative one is the instance with the
// largest admin group behind it — ties broken by build order for
// determinism.
func (f *Farm) ActiveCentral() *central.Central {
	var best *central.Central
	bestSize := -1
	for _, name := range f.order {
		d := f.Daemons[name]
		if !d.Running() || !d.HostingCentral() {
			continue
		}
		size := 0
		if v, ok := d.View(d.AdminIP()); ok {
			size = v.Size()
		}
		if size > bestSize {
			best, bestSize = f.Centrals[name], size
		}
	}
	return best
}

// RunUntilStable advances until the active Central has a stable view or
// the timeout elapses. It returns the instant stability was reached
// (Central's StableAt) and whether stability was achieved.
func (f *Farm) RunUntilStable(timeout time.Duration) (time.Duration, bool) {
	deadline := f.Now() + timeout
	step := 250 * time.Millisecond
	for f.Now() < deadline {
		c := f.ActiveCentral()
		if c != nil && c.Stable() {
			return c.StableAt(), true
		}
		f.RunFor(step)
	}
	c := f.ActiveCentral()
	if c != nil && c.Stable() {
		return c.StableAt(), true
	}
	return 0, false
}

// HostingCentrals lists every Central currently hosted by a running
// daemon, in node build order — one per zone in a converged zoned farm.
func (f *Farm) HostingCentrals() []*central.Central {
	var out []*central.Central
	for _, name := range f.order {
		d := f.Daemons[name]
		if d.Running() && d.HostingCentral() {
			out = append(out, f.Centrals[name])
		}
	}
	return out
}

// RunUntilAllStable advances until at least want Centrals are hosted and
// every hosted Central has a stable view, or the timeout elapses — the
// zoned-farm convergence criterion (want = zone count). It returns the
// latest StableAt among the hosted Centrals.
func (f *Farm) RunUntilAllStable(want int, timeout time.Duration) (time.Duration, bool) {
	deadline := f.Now() + timeout
	step := 250 * time.Millisecond
	check := func() (time.Duration, bool) {
		cs := f.HostingCentrals()
		if len(cs) < want {
			return 0, false
		}
		var last time.Duration
		for _, c := range cs {
			if !c.Stable() {
				return 0, false
			}
			if at := c.StableAt(); at > last {
				last = at
			}
		}
		return last, true
	}
	for f.Now() < deadline {
		if at, ok := check(); ok {
			return at, ok
		}
		f.RunFor(step)
	}
	return check()
}

// --- fault injection ---

// traceFault leaves the ground-truth record a lifecycle span starts
// from: the exact simulated instant the harness disturbed the farm,
// before any daemon could notice.
func (f *Farm) traceFault(node, detail string) {
	f.Trace.Record(trace.Record{
		T: f.Now(), Kind: trace.KFaultInjected, Node: node, Detail: detail,
	})
}

// KillNode crashes a node: its daemon halts and all adapters go dark.
func (f *Farm) KillNode(name string) error {
	info, ok := f.Nodes[name]
	if !ok {
		return fmt.Errorf("farm: unknown node %q", name)
	}
	f.traceFault(name, "kill")
	f.Daemons[name].Crash()
	for _, ip := range info.Adapters {
		f.adapters[ip].SetMode(netsim.FailStop)
	}
	return nil
}

// RestartNode reverses KillNode.
func (f *Farm) RestartNode(name string) error {
	info, ok := f.Nodes[name]
	if !ok {
		return fmt.Errorf("farm: unknown node %q", name)
	}
	f.traceFault(name, "restart")
	for _, ip := range info.Adapters {
		f.adapters[ip].SetMode(netsim.Healthy)
	}
	f.Daemons[name].Start()
	return nil
}

// FailAdapter puts one adapter into the given failure mode.
func (f *Farm) FailAdapter(ip transport.IP, mode netsim.FailureMode) error {
	a, ok := f.adapters[ip]
	if !ok {
		return fmt.Errorf("farm: unknown adapter %v", ip)
	}
	f.traceFault(f.owner[ip], fmt.Sprintf("adapter %v mode %d", ip, mode))
	a.SetMode(mode)
	return nil
}

// KillSwitch powers a switch off; every adapter wired to it loses its
// segment.
func (f *Farm) KillSwitch(name string) error {
	sw := f.Fabric.Switch(name)
	if sw == nil {
		return fmt.Errorf("farm: unknown switch %q", name)
	}
	f.traceFault(name, "switch-off")
	sw.SetUp(false)
	return nil
}

// RestoreSwitch powers a switch back on.
func (f *Farm) RestoreSwitch(name string) error {
	sw := f.Fabric.Switch(name)
	if sw == nil {
		return fmt.Errorf("farm: unknown switch %q", name)
	}
	f.traceFault(name, "switch-on")
	sw.SetUp(true)
	return nil
}

// MoveNodeToDomain asks the active Central to relocate a domain node: its
// non-admin adapters are re-VLANed to the target domain's segments (front
// VLAN for adapter 1, back VLAN for adapter 2, by the Figure 2 layout).
func (f *Farm) MoveNodeToDomain(node, toDomain string, done func(error)) error {
	c := f.ActiveCentral()
	if c == nil {
		return fmt.Errorf("farm: no active central")
	}
	di := -1
	for i, d := range f.Spec.Domains {
		if d.Name == toDomain {
			di = i
		}
	}
	if di < 0 {
		return fmt.Errorf("farm: unknown domain %q", toDomain)
	}
	info, ok := f.Nodes[node]
	if !ok {
		return fmt.Errorf("farm: unknown node %q", node)
	}
	moves := map[int]int{}
	switch info.Role {
	case "frontend":
		moves[1] = FrontVLAN(di)
		moves[2] = BackVLAN(di)
	case "backend":
		moves[1] = BackVLAN(di)
	default:
		return fmt.Errorf("farm: node %q (role %s) is not movable", node, info.Role)
	}
	c.MoveNode(node, moves, func(err error) {
		if err == nil {
			info.Domain = toDomain
			_ = f.DB.SetNodeDomain(node, toDomain)
		}
		if done != nil {
			done(err)
		}
	})
	return nil
}

// AdaptersOf lists the node's adapters (span.Topology): how the span
// stitcher maps detection-side trace records, which name the suspected
// adapter, back to the incident's subject node.
func (f *Farm) AdaptersOf(node string) []transport.IP {
	info, ok := f.Nodes[node]
	if !ok {
		return nil
	}
	return info.Adapters
}

// AdapterIPs lists every daemon-managed adapter in the farm.
func (f *Farm) AdapterIPs() []transport.IP {
	var out []transport.IP
	for _, name := range f.order {
		out = append(out, f.Nodes[name].Adapters...)
	}
	return out
}

// SegmentOf exposes the fabric's current view for assertions.
func (f *Farm) SegmentOf(ip transport.IP) (string, bool) { return f.Fabric.SegmentOf(ip) }
