package farm

import (
	"testing"
	"time"

	"repro/internal/serve"
)

// serveSpec is a two-domain farm for serving-plane tests.
func serveSpec(seed int64) Spec {
	spec := fastSpec(seed)
	spec.AdminNodes = 2
	spec.Domains = []DomainSpec{
		{Name: "acme", FrontEnds: 2, BackEnds: 1},
		{Name: "globex", FrontEnds: 2, BackEnds: 1},
	}
	return spec
}

// buildServing stabilizes a farm and attaches a serving plane with
// measurement starting clean. The plane attaches after initial
// stabilization so startup churn never touches the routing table.
func buildServing(t *testing.T, seed int64, cfg serve.Config, pipe serve.Pipe) (*Farm, *serve.Plane) {
	t.Helper()
	f, err := Build(serveSpec(seed))
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	if _, ok := f.RunUntilStable(90 * time.Second); !ok {
		t.Fatal("farm never stabilized")
	}
	p := f.AttachServe(cfg, pipe)
	p.Start()
	f.RunFor(5 * time.Second) // warm-up: sessions in flight
	p.Workload.ResetStats()
	return f, p
}

func serveStats(t *testing.T, p *serve.Plane, dom string) serve.DomainStats {
	t.Helper()
	for _, s := range p.Stats() {
		if s.Domain == dom {
			return s
		}
	}
	t.Fatalf("no stats for %q", dom)
	return serve.DomainStats{}
}

// A node failure costs error-seconds until Central's notification pulls
// it from rotation; after recovery the plane serves cleanly again and
// the routing table matches ground truth.
func TestServeFailureAccruesThenRecovers(t *testing.T) {
	f, p := buildServing(t, 31, serve.Config{Seed: 31}, nil)

	if err := f.KillNode("acme-fe-00"); err != nil {
		t.Fatal(err)
	}
	f.RunFor(40 * time.Second)

	mid := serveStats(t, p, "acme")
	if mid.ErrorSeconds <= 0 {
		t.Fatalf("node failure cost no error-seconds: %+v", mid)
	}
	if up := p.Balancer.Healthy("acme"); len(up) != 1 || up[0] != "acme-fe-01" {
		t.Fatalf("balancer rotation after failure: %v", up)
	}
	if !p.Drained() {
		t.Fatal("direct pipe reports pending notifications")
	}
	if findings := p.Audit(f); len(findings) != 0 {
		t.Fatalf("audit while failure is known: %v", findings)
	}

	// Tail window: the failure is routed around, so no new error-seconds.
	p.Workload.ResetStats()
	f.RunFor(20 * time.Second)
	if tail := serveStats(t, p, "acme"); tail.ErrorSeconds != 0 {
		t.Fatalf("errors still accruing after notification: %+v", tail)
	}

	if err := f.RestartNode("acme-fe-00"); err != nil {
		t.Fatal(err)
	}
	f.RunFor(40 * time.Second)
	if up := p.Balancer.Healthy("acme"); len(up) != 2 {
		t.Fatalf("balancer rotation after recovery: %v", up)
	}
	if findings := p.Audit(f); len(findings) != 0 {
		t.Fatalf("audit after recovery: %v", findings)
	}
	p.Stop()
}

// The paper's §3.1 contrast: a Central-initiated move announces itself
// (MoveStarted) so the balancer drains the node before the VLAN rewrite
// lands — while the same move done behind GulfStream's back serves
// errors until failure detection and move correlation catch up.
func TestServeExpectedMoveCheaperThanSurprise(t *testing.T) {
	run := func(surprise bool) float64 {
		f, p := buildServing(t, 37, serve.Config{Seed: 37}, nil)
		mover := "globex-fe-00"
		if surprise {
			if err := f.SurpriseMoveNode(mover, "acme"); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := f.MoveNodeToDomain(mover, "acme", nil); err != nil {
				t.Fatal(err)
			}
		}
		f.RunFor(60 * time.Second)
		if _, ok := f.RunUntilStable(60 * time.Second); !ok {
			t.Fatal("farm never re-stabilized after move")
		}
		if findings := p.Audit(f); len(findings) != 0 {
			t.Fatalf("audit after move (surprise=%v): %v", surprise, findings)
		}
		p.Stop()
		return serveStats(t, p, "globex").ErrorSeconds
	}

	expected := run(false)
	surprised := run(true)
	if surprised <= 0 {
		t.Fatalf("surprise move cost no error-seconds")
	}
	if expected >= surprised {
		t.Fatalf("expected move (%.2f error-s) not cheaper than surprise (%.2f error-s)",
			expected, surprised)
	}
}

// Two builds from the same seed produce bit-identical serving stats —
// the whole plane lives inside the deterministic kernel.
func TestServeDeterministicAcrossBuilds(t *testing.T) {
	run := func() []serve.DomainStats {
		f, p := buildServing(t, 41, serve.Config{Seed: 41}, nil)
		if err := f.KillNode("globex-fe-01"); err != nil {
			t.Fatal(err)
		}
		f.RunFor(30 * time.Second)
		p.Stop()
		return p.Stats()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("serving stats diverged:\n  %+v\n  %+v", a[i], b[i])
		}
	}
}

// A delayed notification pipe costs strictly more error-seconds for the
// same failure on the same farm.
func TestServeDelayedPipeCostlierOnFarm(t *testing.T) {
	run := func(delay time.Duration) float64 {
		f, err := Build(serveSpec(43))
		if err != nil {
			t.Fatal(err)
		}
		f.Start()
		if _, ok := f.RunUntilStable(90 * time.Second); !ok {
			t.Fatal("farm never stabilized")
		}
		p := f.AttachServe(serve.Config{Seed: 43}, serve.NewDelayedPipe(f.Clock(), delay))
		p.Start()
		f.RunFor(5 * time.Second)
		p.Workload.ResetStats()
		if err := f.KillNode("acme-fe-00"); err != nil {
			t.Fatal(err)
		}
		f.RunFor(45 * time.Second)
		p.Stop()
		return serveStats(t, p, "acme").ErrorSeconds
	}

	direct := run(0)
	slow := run(10 * time.Second)
	if slow <= direct {
		t.Fatalf("10s notification delay not costlier: direct %.2f, delayed %.2f", direct, slow)
	}
}
