package wire

import (
	"testing"

	"repro/internal/transport"
)

// Allocation regression guards for the zero-alloc message plane. The hot
// planes (beacons, heartbeats, 2PC) encode through pooled Packets and
// decode into caller-owned scratch messages; these tests pin that
// contract so a refactor cannot quietly reintroduce per-message garbage.

func allocBeacon() *Beacon {
	return &Beacon{
		Sender:      transport.IP(0x0A000001),
		Node:        "node-07",
		Incarnation: 3,
		Leader:      transport.IP(0x0A000002),
		Version:     41,
		Members:     16,
		Admin:       true,
	}
}

func allocHeartbeat() *Heartbeat {
	return &Heartbeat{From: transport.IP(0x0A000001), Seq: 900, Version: 41, Leader: transport.IP(0x0A000002)}
}

// TestAllocPacketCycle: the pooled encode path allocates nothing in the
// steady state, for fixed-size and string-carrying messages alike.
func TestAllocPacketCycle(t *testing.T) {
	msgs := []Message{allocBeacon(), allocHeartbeat(), &Prepare{Op: OpJoin, Version: 7}}
	for _, m := range msgs {
		m := m
		// Warm the pool so the measured runs only recycle.
		NewPacket(m).Free()
		got := testing.AllocsPerRun(200, func() {
			p := NewPacket(m)
			_ = p.Bytes()
			p.Free()
		})
		if got != 0 {
			t.Errorf("NewPacket(%v)+Free: %.1f allocs/op, want 0", m.Type(), got)
		}
	}
}

// TestAllocAppendEncode: encoding into a caller buffer of sufficient
// capacity is allocation-free.
func TestAllocAppendEncode(t *testing.T) {
	dst := make([]byte, 0, 256)
	m := allocBeacon()
	got := testing.AllocsPerRun(200, func() {
		dst = AppendEncode(dst[:0], m)
	})
	if got != 0 {
		t.Errorf("AppendEncode into pre-sized buffer: %.1f allocs/op, want 0", got)
	}
}

// TestAllocDecodeInto: the receive path decodes hot-plane packets into a
// reused message with zero steady-state allocations — the beacon's node
// name comes out of the pooled decoder's intern table.
func TestAllocDecodeInto(t *testing.T) {
	cases := []struct {
		name    string
		pkt     []byte
		scratch Message
	}{
		{"beacon", Encode(allocBeacon()), &Beacon{}},
		{"heartbeat", Encode(allocHeartbeat()), &Heartbeat{}},
		{"suspect", Encode(&Suspect{Reporter: 1, Suspect: 2, Reason: ReasonProbeTimeout}), &Suspect{}},
	}
	for _, tc := range cases {
		// Warm the decoder pool's intern table with this packet's strings.
		if err := DecodeInto(tc.pkt, tc.scratch); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got := testing.AllocsPerRun(200, func() {
			if err := DecodeInto(tc.pkt, tc.scratch); err != nil {
				t.Fatal(err)
			}
		})
		if got != 0 {
			t.Errorf("DecodeInto(%s): %.1f allocs/op, want 0", tc.name, got)
		}
	}
}

func BenchmarkNewPacketBeacon(b *testing.B) {
	m := allocBeacon()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := NewPacket(m)
		_ = p.Bytes()
		p.Free()
	}
}

func BenchmarkDecodeIntoBeacon(b *testing.B) {
	pkt := Encode(allocBeacon())
	var scratch Beacon
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := DecodeInto(pkt, &scratch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeIntoHeartbeat(b *testing.B) {
	pkt := Encode(allocHeartbeat())
	var scratch Heartbeat
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := DecodeInto(pkt, &scratch); err != nil {
			b.Fatal(err)
		}
	}
}
