// Package transport defines the narrow waist between GulfStream protocol
// code and the world it runs in. Daemons are written purely against Clock
// and Transport; the simulator (internal/netsim + internal/sim) and the
// real UDP-multicast transport (this package's UDPTransport) both satisfy
// these interfaces, so identical protocol code runs in deterministic
// simulation and on real networks.
package transport

import (
	"fmt"
	"time"
)

// IP is an IPv4 address in host byte order. GulfStream orders adapters and
// elects leaders by numeric IP comparison, exactly as the paper specifies
// ("the adapter with the highest IP address").
type IP uint32

// MakeIP builds an IP from dotted-quad components.
func MakeIP(a, b, c, d byte) IP {
	return IP(a)<<24 | IP(b)<<16 | IP(c)<<8 | IP(d)
}

// ParseIP parses a dotted-quad string. It returns 0, false on malformed
// input (GulfStream has no use for a zero address, so 0 doubles as "none").
func ParseIP(s string) (IP, bool) {
	var a, b, c, d int
	if n, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d); n != 4 || err != nil {
		return 0, false
	}
	for _, v := range [...]int{a, b, c, d} {
		if v < 0 || v > 255 {
			return 0, false
		}
	}
	return MakeIP(byte(a), byte(b), byte(c), byte(d)), true
}

// String renders the address in dotted-quad form.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// IsMulticast reports whether ip falls in the IPv4 class D range.
func (ip IP) IsMulticast() bool { return ip>>28 == 0xe }

// Addr is a UDP-style endpoint: an adapter (or multicast group) plus port.
type Addr struct {
	IP   IP
	Port uint16
}

func (a Addr) String() string { return fmt.Sprintf("%v:%d", a.IP, a.Port) }

// Well-known GulfStream ports and groups. The paper specifies "a well-known
// address and port" for BEACON multicast; the remaining ports separate the
// protocol planes so metrics can attribute load per plane.
const (
	PortBeacon    uint16 = 7400 // BEACON multicast (discovery)
	PortMember    uint16 = 7401 // 2PC membership traffic, joins, merges
	PortHeartbeat uint16 = 7402 // heartbeats, suspicions, probes, pings
	PortReport    uint16 = 7403 // AMG-leader -> GulfStream Central reports
	PortJournal   uint16 = 7404 // journal stream: active Central -> warm standby
	PortSNMP      uint16 = 161  // switch management agents
)

// BeaconGroup is the well-known multicast group BEACONs are sent to.
var BeaconGroup = MakeIP(224, 0, 0, 71)

// Timer mirrors time.Timer's Stop/Reset contract.
type Timer interface {
	// Stop cancels the timer, reporting whether it prevented the fire.
	Stop() bool
	// Reset re-arms the timer to fire d from now with its original
	// callback, reporting whether it was still pending. Resetting from
	// inside the timer's own callback is the cheap way to run a
	// fixed-interval loop: it reuses the timer instead of allocating a
	// fresh one every period.
	Reset(d time.Duration) bool
}

// Clock abstracts time for protocol code. Now is an offset from an
// arbitrary epoch (simulation start, or process start for UDP).
type Clock interface {
	Now() time.Duration
	AfterFunc(d time.Duration, fn func()) Timer
}

// Handler receives packets delivered to a bound port. src is the sending
// adapter's address; dst distinguishes unicast from multicast delivery.
// The payload is only valid for the duration of the call: transports may
// reuse the buffer (and share it between the receivers of one multicast),
// so a handler that needs the bytes afterwards must copy them. wire.Decode
// already copies everything it keeps.
type Handler func(src, dst Addr, payload []byte)

// Endpoint is one network adapter's view of the transport: it can send
// from its own address and bind handlers on local ports.
type Endpoint interface {
	// LocalIP returns the adapter's address.
	LocalIP() IP
	// Unicast sends payload from srcPort to dst. Delivery is best-effort;
	// an error reports only local conditions (adapter down, not bound).
	// The transport does not retain payload after the call returns, so
	// callers may reuse (or pool) their encode buffers immediately.
	Unicast(srcPort uint16, dst Addr, payload []byte) error
	// Multicast sends payload from srcPort to every adapter on the local
	// network segment that has joined group, excluding the sender.
	Multicast(srcPort uint16, group Addr, payload []byte) error
	// Bind registers h for packets arriving on port. Binding a bound port
	// replaces the handler. A nil handler unbinds.
	Bind(port uint16, h Handler)
	// JoinGroup subscribes the adapter to a multicast group on port.
	JoinGroup(group IP, port uint16)
	// Loopback performs a local self-test of the adapter's send+receive
	// path, reporting whether the adapter is operational. The paper's
	// daemons run exactly this test before accusing a ring neighbor.
	Loopback() bool
}

// Liveness is an optional interface of Endpoints whose underlying adapter
// can be administratively or physically down.
type Liveness interface {
	Up() bool
}

// GroupLeaver is an optional interface of Endpoints that can drop a
// multicast membership joined earlier with JoinGroup. The UDP endpoint
// implements it; simulated endpoints may not (the simulator tears whole
// adapters down instead), so callers type-assert.
type GroupLeaver interface {
	LeaveGroup(group IP, port uint16)
}
