package configdb

import (
	"path/filepath"
	"testing"

	"repro/internal/transport"
)

func ip(d byte) transport.IP { return transport.MakeIP(10, 0, 0, d) }

func sampleDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	db.AddNode("web-01", "domain-a", "frontend")
	db.AddNode("web-02", "domain-a", "backend")
	specs := []AdapterSpec{
		{IP: ip(1), Node: "web-01", Index: 0, VLAN: 1, Switch: "sw0", Port: 1},
		{IP: ip(2), Node: "web-01", Index: 1, VLAN: 100, Switch: "sw0", Port: 2},
		{IP: ip(3), Node: "web-02", Index: 0, VLAN: 1, Switch: "sw1", Port: 1},
		{IP: ip(4), Node: "web-02", Index: 1, VLAN: 100, Switch: "sw1", Port: 2},
	}
	for _, s := range specs {
		if err := db.AddAdapter(s); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestBasicLookups(t *testing.T) {
	db := sampleDB(t)
	a, ok := db.Adapter(ip(2))
	if !ok || a.Node != "web-01" || a.VLAN != 100 {
		t.Fatalf("Adapter(2) = %+v %v", a, ok)
	}
	if _, ok := db.Adapter(ip(99)); ok {
		t.Fatal("phantom adapter")
	}
	n, ok := db.Node("web-01")
	if !ok || n.Domain != "domain-a" || len(n.Adapters) != 2 {
		t.Fatalf("Node = %+v", n)
	}
	if got := db.AdaptersOnSwitch("sw1"); len(got) != 2 || got[0] != ip(3) {
		t.Fatalf("AdaptersOnSwitch = %v", got)
	}
	if sw := db.Switches(); len(sw) != 2 || sw[0] != "sw0" || sw[1] != "sw1" {
		t.Fatalf("Switches = %v", sw)
	}
	if len(db.Adapters()) != 4 || len(db.Nodes()) != 2 {
		t.Fatal("listing sizes wrong")
	}
}

func TestDuplicateAdapterRejected(t *testing.T) {
	db := sampleDB(t)
	err := db.AddAdapter(AdapterSpec{IP: ip(1), Node: "other"})
	if err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestMutators(t *testing.T) {
	db := sampleDB(t)
	if err := db.SetExpectedVLAN(ip(2), 200); err != nil {
		t.Fatal(err)
	}
	if a, _ := db.Adapter(ip(2)); a.VLAN != 200 {
		t.Fatal("SetExpectedVLAN did not stick")
	}
	if err := db.SetExpectedVLAN(ip(99), 1); err == nil {
		t.Fatal("unknown adapter accepted")
	}
	if err := db.SetNodeDomain("web-01", "domain-b"); err != nil {
		t.Fatal(err)
	}
	if n, _ := db.Node("web-01"); n.Domain != "domain-b" {
		t.Fatal("SetNodeDomain did not stick")
	}
	if err := db.SetNodeDomain("ghost", "x"); err == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := sampleDB(t)
	path := filepath.Join(t.TempDir(), "farm.json")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Adapters()) != 4 || len(got.Nodes()) != 2 {
		t.Fatalf("loaded %d adapters %d nodes", len(got.Adapters()), len(got.Nodes()))
	}
	a, ok := got.Adapter(ip(4))
	if !ok || a.Switch != "sw1" || a.Port != 2 || a.VLAN != 100 {
		t.Fatalf("loaded adapter = %+v", a)
	}
	n, _ := got.Node("web-02")
	if n.Domain != "domain-a" || n.Role != "backend" {
		t.Fatalf("loaded node = %+v", n)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestVerifyCleanTopology(t *testing.T) {
	db := sampleDB(t)
	groups := map[transport.IP][]transport.IP{
		ip(3): {ip(3), ip(1)}, // admin VLAN 1
		ip(4): {ip(4), ip(2)}, // domain VLAN 100
	}
	if ms := db.Verify(groups); len(ms) != 0 {
		t.Fatalf("clean topology produced mismatches: %v", ms)
	}
}

func TestVerifyUnknownAdapter(t *testing.T) {
	db := sampleDB(t)
	groups := map[transport.IP][]transport.IP{
		ip(3): {ip(3), ip(1), ip(77)},
		ip(4): {ip(4), ip(2)},
	}
	ms := db.Verify(groups)
	if len(ms) != 1 || ms[0].Kind != UnknownAdapter || ms[0].Adapter != ip(77) {
		t.Fatalf("mismatches = %v", ms)
	}
}

func TestVerifyMissingAdapter(t *testing.T) {
	db := sampleDB(t)
	groups := map[transport.IP][]transport.IP{
		ip(3): {ip(3), ip(1)},
		ip(4): {ip(4)}, // ip(2) vanished
	}
	ms := db.Verify(groups)
	if len(ms) != 1 || ms[0].Kind != MissingAdapter || ms[0].Adapter != ip(2) {
		t.Fatalf("mismatches = %v", ms)
	}
}

func TestVerifyWrongSegment(t *testing.T) {
	db := sampleDB(t)
	// ip(2) (expects VLAN 100) shows up in the admin group — exactly the
	// security violation the paper disables adapters over.
	groups := map[transport.IP][]transport.IP{
		ip(3): {ip(3), ip(1), ip(2)},
		ip(4): {ip(4)},
	}
	ms := db.Verify(groups)
	var wrong []Mismatch
	for _, m := range ms {
		if m.Kind == WrongSegment {
			wrong = append(wrong, m)
		}
	}
	if len(wrong) != 1 || wrong[0].Adapter != ip(2) || wrong[0].VLAN != 100 {
		t.Fatalf("wrong-segment findings = %v (all: %v)", wrong, ms)
	}
}

func TestVerifySplitVLAN(t *testing.T) {
	db := sampleDB(t)
	groups := map[transport.IP][]transport.IP{
		ip(2): {ip(2)}, // VLAN 100 split into two groups
		ip(4): {ip(4)},
		ip(3): {ip(3), ip(1)},
	}
	ms := db.Verify(groups)
	var split []Mismatch
	for _, m := range ms {
		if m.Kind == SplitVLAN {
			split = append(split, m)
		}
	}
	if len(split) != 1 || split[0].VLAN != 100 {
		t.Fatalf("split findings = %v (all: %v)", split, ms)
	}
}

func TestVerifyDeterministicOrder(t *testing.T) {
	db := sampleDB(t)
	groups := map[transport.IP][]transport.IP{
		ip(3): {ip(3), ip(77), ip(88)},
	}
	a := db.Verify(groups)
	b := db.Verify(groups)
	if len(a) != len(b) {
		t.Fatal("nondeterministic verify")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestMismatchString(t *testing.T) {
	m := Mismatch{Kind: WrongSegment, Adapter: ip(2), VLAN: 100, Detail: "x"}
	s := m.String()
	if s == "" || s == "wrong-segment" {
		t.Fatalf("String = %q", s)
	}
	for _, k := range []MismatchKind{UnknownAdapter, MissingAdapter, WrongSegment, SplitVLAN} {
		if k.String() == "" {
			t.Error("empty kind name")
		}
	}
}
