// Package netsim simulates an IP-over-switched-Ethernet network for
// GulfStream: adapters attached to broadcast segments, UDP-like unicast and
// multicast with configurable loss and latency, and adapter failure modes
// (fail-stop, receive-dead, send-dead — the paper's §3 discusses exactly
// the receive-dead case and why it requires a loopback self-test).
//
// Which adapters share a segment is not decided here: a SegmentResolver —
// in practice the switch fabric in internal/switchsim — maps each adapter
// to a segment, so VLAN reconfiguration moves adapters between segments
// without netsim noticing anything but a version bump.
package netsim

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/sim"
	"repro/internal/transport"
)

// SegmentResolver maps adapters to broadcast segments. Implementations
// must bump Version whenever any mapping changes so the network can
// invalidate its segment-membership cache.
type SegmentResolver interface {
	// SegmentOf returns the segment the adapter is attached to, and false
	// if the adapter currently has no connectivity (port down, switch
	// dead, unknown adapter).
	SegmentOf(ip transport.IP) (string, bool)
	// Version increments on every topology change.
	Version() uint64
}

// LinkProfile describes delivery quality on a segment. Loss is the
// independent per-receiver drop probability in [0,1]; latency of a packet
// is Latency plus a uniform draw from [0, Jitter).
type LinkProfile struct {
	Loss    float64
	Latency time.Duration
	Jitter  time.Duration
}

// FailureMode enumerates the ways an adapter can be broken.
type FailureMode int

const (
	// Healthy: adapter sends and receives normally.
	Healthy FailureMode = iota
	// FailStop: adapter neither sends nor receives (powered off, cable cut).
	FailStop
	// FailRecv: adapter transmits but hears nothing — the paper's "fails
	// in such a way that it ceases to receive messages" case, which a
	// naive ring detector misblames on the left neighbor.
	FailRecv
	// FailSend: adapter receives but its transmissions vanish.
	FailSend
)

func (m FailureMode) String() string {
	switch m {
	case Healthy:
		return "healthy"
	case FailStop:
		return "fail-stop"
	case FailRecv:
		return "fail-recv"
	case FailSend:
		return "fail-send"
	default:
		return fmt.Sprintf("FailureMode(%d)", int(m))
	}
}

// Trace describes one transmission attempt, for metrics and debugging.
type Trace struct {
	Time      time.Duration
	Src       transport.IP
	Dst       transport.Addr
	Segment   string
	Bytes     int
	Multicast bool
	Receivers int // copies actually delivered (post-loss)
	Dropped   int // copies lost to the loss model
}

// Network is the simulated fabric. It is driven entirely by the
// scheduler's event loop and is not safe for concurrent use.
type Network struct {
	sched    *sim.Scheduler
	resolver SegmentResolver

	adapters map[transport.IP]*Adapter
	order    []transport.IP // sorted, for deterministic iteration

	defaultProfile LinkProfile
	segProfiles    map[string]LinkProfile

	// segment-membership cache, invalidated on resolver version change
	cacheVersion uint64
	segMembers   map[string][]*Adapter

	tap func(Trace)
}

// New creates a network on the given scheduler with the resolver deciding
// segment membership.
func New(sched *sim.Scheduler, resolver SegmentResolver) *Network {
	return &Network{
		sched:          sched,
		resolver:       resolver,
		adapters:       make(map[transport.IP]*Adapter),
		defaultProfile: LinkProfile{Latency: 200 * time.Microsecond, Jitter: 300 * time.Microsecond},
		segProfiles:    make(map[string]LinkProfile),
		cacheVersion:   ^uint64(0),
	}
}

// Scheduler returns the scheduler driving this network.
func (n *Network) Scheduler() *sim.Scheduler { return n.sched }

// SetDefaultProfile sets the link profile used by segments without an
// override.
func (n *Network) SetDefaultProfile(p LinkProfile) { n.defaultProfile = p }

// SetSegmentProfile overrides the link profile for one segment.
func (n *Network) SetSegmentProfile(segment string, p LinkProfile) {
	n.segProfiles[segment] = p
}

// Tap installs fn to observe every transmission attempt. A nil fn removes
// the tap.
func (n *Network) Tap(fn func(Trace)) { n.tap = fn }

func (n *Network) profileFor(segment string) LinkProfile {
	if p, ok := n.segProfiles[segment]; ok {
		return p
	}
	return n.defaultProfile
}

// AddAdapter creates and attaches an adapter with the given address,
// owned by the named node. It panics on duplicate addresses: farm
// construction is programmer-controlled and a duplicate is always a bug.
func (n *Network) AddAdapter(ip transport.IP, node string) *Adapter {
	if _, dup := n.adapters[ip]; dup {
		panic(fmt.Sprintf("netsim: duplicate adapter %v", ip))
	}
	a := &Adapter{
		net:      n,
		ip:       ip,
		node:     node,
		bindings: make(map[uint16]transport.Handler),
		groups:   make(map[transport.Addr]bool),
	}
	n.adapters[ip] = a
	i := sort.Search(len(n.order), func(i int) bool { return n.order[i] >= ip })
	n.order = append(n.order, 0)
	copy(n.order[i+1:], n.order[i:])
	n.order[i] = ip
	n.invalidate()
	return a
}

// Adapter returns the adapter with the given address, or nil.
func (n *Network) Adapter(ip transport.IP) *Adapter { return n.adapters[ip] }

// Adapters returns all adapters in ascending IP order.
func (n *Network) Adapters() []*Adapter {
	out := make([]*Adapter, 0, len(n.order))
	for _, ip := range n.order {
		out = append(out, n.adapters[ip])
	}
	return out
}

func (n *Network) invalidate() { n.cacheVersion = ^uint64(0) }

// members returns the adapters currently attached to segment, rebuilding
// the cache if the resolver's topology version moved.
func (n *Network) members(segment string) []*Adapter {
	if v := n.resolver.Version(); v != n.cacheVersion || n.segMembers == nil {
		n.segMembers = make(map[string][]*Adapter)
		for _, ip := range n.order {
			if seg, ok := n.resolver.SegmentOf(ip); ok {
				n.segMembers[seg] = append(n.segMembers[seg], n.adapters[ip])
			}
		}
		n.cacheVersion = v
	}
	return n.segMembers[segment]
}

// SegmentMembers lists the addresses attached to segment, ascending.
func (n *Network) SegmentMembers(segment string) []transport.IP {
	ms := n.members(segment)
	out := make([]transport.IP, len(ms))
	for i, a := range ms {
		out[i] = a.ip
	}
	return out
}

// latency draws one delivery latency for the profile.
func (n *Network) latency(p LinkProfile) time.Duration {
	d := p.Latency
	if p.Jitter > 0 {
		d += time.Duration(n.sched.Rand().Int63n(int64(p.Jitter)))
	}
	return d
}

func (n *Network) lost(p LinkProfile) bool {
	return p.Loss > 0 && n.sched.Rand().Float64() < p.Loss
}

// deliver schedules the arrival of payload at dst's handler for port.
func (n *Network) deliver(dst *Adapter, src, to transport.Addr, payload []byte, after time.Duration) {
	pkt := append([]byte(nil), payload...)
	n.sched.AfterFunc(after, func() {
		if !dst.canReceive() {
			return
		}
		h := dst.bindings[to.Port]
		if h == nil {
			return
		}
		h(src, to, pkt)
	})
}

// Adapter is one simulated network interface; it implements
// transport.Endpoint and transport.Liveness.
type Adapter struct {
	net      *Network
	ip       transport.IP
	node     string
	mode     FailureMode
	bindings map[uint16]transport.Handler
	groups   map[transport.Addr]bool
}

var (
	_ transport.Endpoint = (*Adapter)(nil)
	_ transport.Liveness = (*Adapter)(nil)
)

// LocalIP returns the adapter's address.
func (a *Adapter) LocalIP() transport.IP { return a.ip }

// Node returns the owning node's identifier.
func (a *Adapter) Node() string { return a.node }

// Mode returns the adapter's current failure mode.
func (a *Adapter) Mode() FailureMode { return a.mode }

// SetMode sets the adapter's failure mode.
func (a *Adapter) SetMode(m FailureMode) { a.mode = m }

// Up reports whether the adapter is fully healthy. Partially failed
// adapters (FailRecv/FailSend) are not "up": the loopback test catches
// them, as the paper requires.
func (a *Adapter) Up() bool { return a.mode == Healthy }

func (a *Adapter) canSend() bool    { return a.mode == Healthy || a.mode == FailRecv }
func (a *Adapter) canReceive() bool { return a.mode == Healthy || a.mode == FailSend }

// Loopback self-tests the adapter's send+receive path.
func (a *Adapter) Loopback() bool {
	if !(a.canSend() && a.canReceive()) {
		return false
	}
	_, connected := a.net.resolver.SegmentOf(a.ip)
	return connected
}

// Bind registers h on port; nil unbinds.
func (a *Adapter) Bind(port uint16, h transport.Handler) {
	if h == nil {
		delete(a.bindings, port)
		return
	}
	a.bindings[port] = h
}

// JoinGroup subscribes to multicast group traffic on port.
func (a *Adapter) JoinGroup(group transport.IP, port uint16) {
	a.groups[transport.Addr{IP: group, Port: port}] = true
}

// LeaveGroup removes a multicast subscription.
func (a *Adapter) LeaveGroup(group transport.IP, port uint16) {
	delete(a.groups, transport.Addr{IP: group, Port: port})
}

// ErrAdapterDown is returned from send operations on a dead interface.
var ErrAdapterDown = fmt.Errorf("netsim: adapter cannot transmit")

// ErrNoSegment is returned when the sending adapter has no connectivity.
var ErrNoSegment = fmt.Errorf("netsim: adapter not attached to any segment")

// Unicast sends payload to dst if dst shares the sender's segment.
// Cross-segment sends vanish silently (there are no routers between
// GulfStream segments, per the paper's network assumptions); only local
// conditions produce an error.
func (a *Adapter) Unicast(srcPort uint16, dst transport.Addr, payload []byte) error {
	if !a.canSend() {
		return ErrAdapterDown
	}
	seg, ok := a.net.resolver.SegmentOf(a.ip)
	if !ok {
		return ErrNoSegment
	}
	src := transport.Addr{IP: a.ip, Port: srcPort}
	tr := Trace{Time: a.net.sched.Now(), Src: a.ip, Dst: dst, Segment: seg, Bytes: len(payload)}
	target := a.net.adapters[dst.IP]
	if target != nil {
		if tseg, tok := a.net.resolver.SegmentOf(dst.IP); tok && tseg == seg {
			p := a.net.profileFor(seg)
			if a.net.lost(p) {
				tr.Dropped = 1
			} else {
				tr.Receivers = 1
				a.net.deliver(target, src, dst, payload, a.net.latency(p))
			}
		}
	}
	if a.net.tap != nil {
		a.net.tap(tr)
	}
	return nil
}

// Multicast sends payload to every subscribed adapter on the sender's
// segment, excluding the sender itself.
func (a *Adapter) Multicast(srcPort uint16, group transport.Addr, payload []byte) error {
	if !a.canSend() {
		return ErrAdapterDown
	}
	seg, ok := a.net.resolver.SegmentOf(a.ip)
	if !ok {
		return ErrNoSegment
	}
	src := transport.Addr{IP: a.ip, Port: srcPort}
	p := a.net.profileFor(seg)
	tr := Trace{Time: a.net.sched.Now(), Src: a.ip, Dst: group, Segment: seg, Bytes: len(payload), Multicast: true}
	for _, m := range a.net.members(seg) {
		if m == a || !m.groups[group] {
			continue
		}
		if a.net.lost(p) {
			tr.Dropped++
			continue
		}
		tr.Receivers++
		a.net.deliver(m, src, group, payload, a.net.latency(p))
	}
	if a.net.tap != nil {
		a.net.tap(tr)
	}
	return nil
}

// StaticResolver is a trivial SegmentResolver backed by a map, for tests
// and single-segment experiments that need no switch fabric.
type StaticResolver struct {
	seg     map[transport.IP]string
	version uint64
}

// NewStaticResolver returns an empty resolver.
func NewStaticResolver() *StaticResolver {
	return &StaticResolver{seg: make(map[transport.IP]string), version: 1}
}

// Attach maps an adapter to a segment (replacing any previous mapping).
func (r *StaticResolver) Attach(ip transport.IP, segment string) {
	r.seg[ip] = segment
	r.version++
}

// Detach removes an adapter's connectivity entirely.
func (r *StaticResolver) Detach(ip transport.IP) {
	delete(r.seg, ip)
	r.version++
}

// SegmentOf implements SegmentResolver.
func (r *StaticResolver) SegmentOf(ip transport.IP) (string, bool) {
	s, ok := r.seg[ip]
	return s, ok
}

// Version implements SegmentResolver.
func (r *StaticResolver) Version() uint64 { return r.version }
