package core

import (
	"time"

	"repro/internal/amg"
	"repro/internal/detect"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// state is an adapter's protocol phase.
type state int

const (
	// stIdle: not started, crashed, or administratively disabled.
	stIdle state = iota
	// stBeaconing: initial discovery — multicasting BEACONs, collecting.
	stBeaconing
	// stDeferring: heard a higher IP during the phase; waiting for its
	// two-phase commit to claim us.
	stDeferring
	// stMember: committed into a group led by someone else.
	stMember
	// stLeader: leading a group (possibly a singleton).
	stLeader
)

func (s state) String() string {
	return [...]string{"idle", "beaconing", "deferring", "member", "leader"}[s]
}

// pendingView is a prepared-but-uncommitted membership.
type pendingView struct {
	view   amg.Membership
	leader transport.IP
	token  uint64
	timer  transport.Timer
}

// Heard-peer table slot layout: the high 32 bits hold the peer's IP, the
// low 32 its beacon fingerprint — grouped/admin flags plus the low 30
// bits of its incarnation. The node name cannot change without an
// incarnation bump, so an unchanged fingerprint proves the whole beacon
// is a repeat without touching the string side table.
const (
	heardGrouped  = uint64(1) << 31 // peer already declared a leader
	heardAdmin    = uint64(1) << 30 // peer is its node's administrative adapter
	heardIncMask  = 1<<30 - 1
	heardMinSlots = 64
)

// adapterProto runs the GulfStream protocol for one network adapter.
type adapterProto struct {
	d     *Daemon
	ep    transport.Endpoint
	self  transport.IP
	index uint8

	state    state
	disabled bool

	// discovery. Peers heard this beacon phase live in a flat linear-probe
	// hash table of packed (IP, fingerprint) slots: the beacon flood is
	// O(segment²) per interval, and recognizing a repeat in one or two
	// probes of a pointer-free array beats both a Go map and a binary
	// search at that rate. heardNode is append-only, reached through the
	// parallel heardIdx; it is only touched when a peer is new or changed.
	heardTab    []uint64
	heardIdx    []int32
	heardNode   []string
	heardCnt    int
	beaconMsg   wire.Beacon    // reused each sendBeacon, so beacons don't allocate
	rxBeacon    wire.Beacon    // reused receive scratch (beacon plane)
	rxHB        wire.Heartbeat // reused receive scratch (heartbeat plane)
	beaconTick  transport.Timer
	phaseTimer  transport.Timer
	deferTimer  transport.Timer
	beaconEvery time.Duration

	// membership
	view     amg.Membership
	pending  *pendingView
	detector detect.Detector
	// ledFloor is the highest view version this adapter has ever
	// committed as leader of its own lineage. An adapter that demotes
	// (absorbed by a merge) and later re-promotes (leader takeover)
	// derives its next version from the absorbing group's counter, which
	// may sit below numbers its own lineage already used — and reusing
	// (self, version) for a different membership makes stale messages
	// from the abandoned incarnation indistinguishable from current ones.
	// Every own-lineage version must exceed this floor.
	ledFloor uint64

	// liveness of the group as seen from here
	lastGroupActivity time.Duration
	orphanTick        transport.Timer
	// escalation state: first unresolved suspicion since the last commit,
	// and whether a leader/successor probe chain is in flight.
	firstSuspicionAt time.Duration
	escalating       bool

	// verification probes this adapter is waiting on (leader/successor)
	probes     map[uint64]*probeState
	nextNonce  uint64
	lead       *leaderState
	refreshLog map[transport.IP]time.Duration // rate-limit view refreshes
}

func newAdapterProto(d *Daemon, ep transport.Endpoint, index uint8) *adapterProto {
	return &adapterProto{d: d, ep: ep, self: ep.LocalIP(), index: index}
}

func (p *adapterProto) isAdmin() bool { return p.index == p.d.cfg.AdminIndex }

func (p *adapterProto) clock() transport.Clock { return p.d.clock }

func (p *adapterProto) now() time.Duration { return p.d.clock.Now() }

// start (re)initializes the adapter and opens the beacon phase.
func (p *adapterProto) start() {
	p.shutdown() // clear any leftovers from a previous life
	p.disabled = false
	p.state = stBeaconing
	for i := range p.heardTab {
		p.heardTab[i] = 0
	}
	p.heardNode = p.heardNode[:0]
	p.heardCnt = 0
	p.view = amg.Membership{}
	p.pending = nil
	p.probes = make(map[uint64]*probeState)
	p.refreshLog = make(map[transport.IP]time.Duration)
	p.lastGroupActivity = p.now()

	p.ep.JoinGroup(transport.BeaconGroup, transport.PortBeacon)
	p.ep.Bind(transport.PortBeacon, p.onBeaconPacket)
	p.ep.Bind(transport.PortMember, p.onMemberPacket)
	p.ep.Bind(transport.PortHeartbeat, p.onHeartbeatPacket)
	if p.isAdmin() {
		p.ep.Bind(transport.PortReport, p.d.handleReportPlane)
		// Admin adapters also listen for Central's multicast resync pull.
		p.ep.JoinGroup(transport.BeaconGroup, transport.PortReport)
		// And for the journal stream, in case they are the warm standby.
		p.ep.Bind(transport.PortJournal, p.d.handleJournalPlane)
	}

	p.detector = detect.New(p.d.cfg.Detector, p.d.cfg.DetectorParams, (*detectorEnv)(p))

	p.sendBeacon()
	p.beaconEvery = p.d.cfg.BeaconInterval
	p.beaconTick = p.clock().AfterFunc(p.beaconEvery, p.beaconLoop)
	p.phaseTimer = p.clock().AfterFunc(p.d.cfg.BeaconPhase, p.endBeaconPhase)
	p.orphanTick = p.clock().AfterFunc(p.d.cfg.DetectorParams.Interval, p.orphanCheck)
}

// shutdown cancels every timer and detaches the detector.
func (p *adapterProto) shutdown() {
	for _, t := range []*transport.Timer{&p.beaconTick, &p.phaseTimer, &p.deferTimer, &p.orphanTick} {
		if *t != nil {
			(*t).Stop()
			*t = nil
		}
	}
	if p.pending != nil && p.pending.timer != nil {
		p.pending.timer.Stop()
		p.pending = nil
	}
	if p.detector != nil {
		p.detector.Stop()
		p.detector = nil
	}
	for _, ps := range p.probes {
		if ps.timer != nil {
			ps.timer.Stop()
		}
	}
	p.probes = nil
	p.dropLeaderState()
	p.state = stIdle
}

// disable takes the adapter out of service administratively.
func (p *adapterProto) disable() {
	p.shutdown()
	p.disabled = true
}

// --- beaconing ---

func (p *adapterProto) sendBeacon() {
	b := &p.beaconMsg
	*b = wire.Beacon{
		Sender:      p.self,
		Node:        p.d.node,
		Incarnation: p.d.incarnation,
		Admin:       p.isAdmin(),
	}
	if p.state == stLeader || p.state == stMember {
		b.Leader = p.view.Leader()
		b.Version = p.view.Version
		b.Members = uint32(p.view.Size())
	}
	pkt := wire.NewPacket(b)
	_ = p.ep.Multicast(transport.PortBeacon,
		transport.Addr{IP: transport.BeaconGroup, Port: transport.PortBeacon}, pkt.Bytes())
	pkt.Free()
	p.trace(&trace.Record{Kind: trace.KBeaconSent, Group: b.Leader, Version: b.Version})
}

func (p *adapterProto) beaconLoop() {
	if p.state != stBeaconing && p.state != stLeader {
		p.beaconTick = nil
		return
	}
	p.sendBeacon()
	p.beaconTick.Reset(p.beaconEvery)
}

// endBeaconPhase closes discovery: the highest IP heard (or self) leads.
func (p *adapterProto) endBeaconPhase() {
	p.phaseTimer = nil
	if p.state != stBeaconing {
		return
	}
	highest := p.self
	for _, slot := range p.heardTab {
		if ip := transport.IP(slot >> 32); ip > highest {
			highest = ip
		}
	}
	if highest == p.self {
		// We lead: two-phase commit over every ungrouped adapter we heard
		// (paper §2.1). Adapters already in groups come over through the
		// merge path instead, led by their own leaders.
		members := []wire.Member{p.selfMember()}
		for i, slot := range p.heardTab {
			if slot != 0 && slot&heardGrouped == 0 {
				members = append(members, wire.Member{
					IP:    transport.IP(slot >> 32),
					Node:  p.heardNode[p.heardIdx[i]],
					Admin: slot&heardAdmin != 0,
				})
			}
		}
		if p.d.hooks.Formed != nil {
			p.d.hooks.Formed(p.self, len(members))
		}
		p.trace(&trace.Record{Kind: trace.KFormed, Count: uint32(len(members))})
		p.becomeLeader()
		p.lead.startChange(wire.OpForm, amg.New(1, members))
		return
	}
	// Defer AMG formation and leadership to the highest IP.
	p.state = stDeferring
	if p.beaconTick != nil {
		p.beaconTick.Stop()
		p.beaconTick = nil
	}
	p.deferTimer = p.clock().AfterFunc(p.d.cfg.DeferTimeout, p.deferExpired)
}

// deferExpired: nobody claimed us — form a singleton; merging will fold
// us into the segment's group.
func (p *adapterProto) deferExpired() {
	p.deferTimer = nil
	if p.state != stDeferring {
		return
	}
	p.becomeLeader()
	p.commitView(amg.New(1, []wire.Member{p.selfMember()}))
}

func (p *adapterProto) selfMember() wire.Member {
	return wire.Member{IP: p.self, Node: p.d.node, Index: p.index, Admin: p.isAdmin()}
}

// becomeLeader flips the adapter into the leader role.
func (p *adapterProto) becomeLeader() {
	if p.state == stLeader && p.lead != nil {
		return
	}
	p.state = stLeader
	p.lead = newLeaderState(p)
	if p.deferTimer != nil {
		p.deferTimer.Stop()
		p.deferTimer = nil
	}
	// Leaders keep beaconing (slower) so joiners and other groups find us.
	p.beaconEvery = p.d.cfg.LeaderBeaconInterval
	if p.beaconTick == nil {
		p.beaconTick = p.clock().AfterFunc(p.beaconEvery, p.beaconLoop)
	}
}

// dropLeaderState cancels all leader-side machinery.
func (p *adapterProto) dropLeaderState() {
	if p.lead == nil {
		return
	}
	p.lead.stop()
	p.lead = nil
}

// --- message entry points ---

func (p *adapterProto) onBeaconPacket(src, _ transport.Addr, payload []byte) {
	// stIdle alone implies deafness: Crash is the only way to clear
	// d.running and it shuts every proto down to stIdle first, so the
	// extra Daemon dereference (a cold cache line per delivery) is
	// redundant in the packet handlers.
	if p.state == stIdle {
		return
	}
	// The beacon plane carries only Beacons: decode into a reused scratch
	// message so the startup flood (every adapter hears every beacon on
	// its segment) does not allocate per packet.
	b := &p.rxBeacon
	if wire.DecodeInto(payload, b) != nil || b.Sender == p.self {
		return
	}
	_ = src
	p.onBeacon(b)
}

func (p *adapterProto) onBeacon(b *wire.Beacon) {
	switch p.state {
	case stBeaconing:
		if p.d.tracer != nil { // guard here: building the Record is not free at beacon rates
			p.trace(&trace.Record{Kind: trace.KBeaconHeard, Peer: b.Sender, Group: b.Leader, Version: b.Version})
		}
		// Beacons repeat every interval; only write when the fingerprint
		// changed (the repeats dominate at scale). This is the hottest
		// lookup in the simulator: one or two linear probes, typically one
		// cache line, no pointers.
		fp := uint64(b.Incarnation) & heardIncMask
		if b.Leader != 0 {
			fp |= heardGrouped
		}
		if b.Admin {
			fp |= heardAdmin
		}
		p.heardPut(b.Sender, fp, b.Node)
	case stDeferring:
		// A formed leader on our segment: ask to join directly rather than
		// waiting out the defer timeout.
		if b.Leader == b.Sender && b.Leader != 0 {
			p.sendMember(b.Sender, &wire.JoinRequest{
				From: p.self, Node: p.d.node, Index: p.index,
				Admin: p.isAdmin(), Incarnation: p.d.incarnation,
			})
		}
	case stLeader:
		p.onBeaconAsLeader(b)
	case stMember:
		// Only leaders act on beacons after formation (paper §2.1).
	}
}

// heardPut records (or re-confirms) a peer's beacon in the heard table.
// An existing slot with a matching fingerprint is the no-op fast path.
func (p *adapterProto) heardPut(ip transport.IP, fp uint64, node string) {
	if len(p.heardTab) == 0 {
		p.heardTab = make([]uint64, heardMinSlots)
		p.heardIdx = make([]int32, heardMinSlots)
	}
	want := uint64(ip)<<32 | fp
	mask := uint32(len(p.heardTab) - 1)
	i := uint32((uint64(ip)*0x9E3779B97F4A7C15)>>32) & mask
	for {
		slot := p.heardTab[i]
		if slot == 0 {
			p.heardTab[i] = want
			p.heardIdx[i] = int32(len(p.heardNode))
			p.heardNode = append(p.heardNode, node)
			p.heardCnt++
			if p.heardCnt*4 > len(p.heardTab)*3 {
				p.heardGrow()
			}
			return
		}
		if uint32(slot>>32) == uint32(ip) {
			if slot != want {
				p.heardTab[i] = want
				p.heardNode[p.heardIdx[i]] = node
			}
			return
		}
		i = (i + 1) & mask
	}
}

// heardGrow doubles the heard table, re-probing every live slot.
func (p *adapterProto) heardGrow() {
	oldTab, oldIdx := p.heardTab, p.heardIdx
	p.heardTab = make([]uint64, 2*len(oldTab))
	p.heardIdx = make([]int32, 2*len(oldIdx))
	mask := uint32(len(p.heardTab) - 1)
	for j, slot := range oldTab {
		if slot == 0 {
			continue
		}
		i := uint32(((slot>>32)*0x9E3779B97F4A7C15)>>32) & mask
		for p.heardTab[i] != 0 {
			i = (i + 1) & mask
		}
		p.heardTab[i] = slot
		p.heardIdx[i] = oldIdx[j]
	}
}

func (p *adapterProto) onBeaconAsLeader(b *wire.Beacon) {
	switch {
	case b.Leader == 0:
		// Ungrouped adapter on our segment: absorb it.
		p.lead.queueJoin(wire.Member{IP: b.Sender, Node: b.Node, Admin: b.Admin})
	case b.Leader == b.Sender && b.Sender < p.self:
		// A lower-IP leader shares our segment. It may not have heard us
		// yet (asymmetric loss): nudge it with a unicast beacon so it
		// sends us its MergeOffer.
		nb := &wire.Beacon{
			Sender: p.self, Node: p.d.node, Incarnation: p.d.incarnation,
			Leader: p.self, Version: p.view.Version, Members: uint32(p.view.Size()),
			Admin: p.isAdmin(),
		}
		pkt := wire.NewPacket(nb)
		_ = p.ep.Unicast(transport.PortBeacon,
			transport.Addr{IP: b.Sender, Port: transport.PortBeacon}, pkt.Bytes())
		pkt.Free()
	case b.Leader == b.Sender && b.Sender > p.self:
		// Merging AMGs are led by the higher-IP leader: offer our members.
		p.sendMember(b.Sender, &wire.MergeOffer{
			From: p.self, Version: p.view.Version, Members: p.view.Members,
		})
	}
}

func (p *adapterProto) onMemberPacket(src, _ transport.Addr, payload []byte) {
	if p.state == stIdle { // see onBeaconPacket: stIdle implies !running
		return
	}
	msg, err := wire.Decode(payload)
	if err != nil {
		return
	}
	switch m := msg.(type) {
	case *wire.Prepare:
		p.onPrepare(m)
	case *wire.PrepareAck:
		if p.lead != nil {
			p.lead.onPrepareAck(m)
		}
	case *wire.Commit:
		p.onCommit(m)
	case *wire.Abort:
		p.onAbort(m)
	case *wire.JoinRequest:
		if p.lead != nil {
			p.lead.queueJoin(wire.Member{IP: m.From, Node: m.Node, Index: m.Index, Admin: m.Admin})
		}
	case *wire.MergeOffer:
		if p.lead != nil && m.From < p.self {
			for _, mem := range m.Members {
				if mem.IP != p.self {
					p.lead.queueJoin(mem)
				}
			}
		}
	case *wire.Disable:
		// Central's conflict response, addressed to this node's admin
		// adapter; the target may be any adapter of the node.
		p.d.DisableAdapter(m.Target)
	case *wire.Evict:
		p.onEvict(m)
	}
	_ = src
}

// onEvict handles a leader's notice that we are not in its group. If the
// evictor plausibly owns our segment's group (it is our recorded leader,
// a member of our stale view, or a higher leader), our view is dead
// weight: abandon it and rediscover.
func (p *adapterProto) onEvict(m *wire.Evict) {
	if m.Target != p.self || p.state != stMember {
		return
	}
	cur := p.view.Leader()
	if m.Leader == cur || m.Leader > cur || p.view.Contains(m.Leader) {
		p.trace(&trace.Record{Kind: trace.KEvicted, Peer: m.Leader,
			Group: cur, Version: m.Version})
		p.isolationOrphan()
	}
}

func (p *adapterProto) onHeartbeatPacket(src, _ transport.Addr, payload []byte) {
	if p.state == stIdle { // see onBeaconPacket: stIdle implies !running
		return
	}
	from := src.IP
	// Ring heartbeats dominate the steady state; give them an
	// allocation-free path through a reused scratch message.
	if t, ok := wire.Peek(payload); ok && t == wire.THeartbeat {
		hb := &p.rxHB
		if wire.DecodeInto(payload, hb) != nil {
			return
		}
		p.noteActivity(hb.From)
		p.checkPeerView(hb.From, hb.Leader, hb.Version)
		if p.detector != nil {
			p.detector.Handle(from, hb)
		}
		return
	}
	msg, err := wire.Decode(payload)
	if err != nil {
		return
	}
	switch m := msg.(type) {
	case *wire.Probe:
		ack := &wire.ProbeAck{From: p.self, Nonce: m.Nonce}
		if p.state == stMember || p.state == stLeader {
			ack.Leader = p.view.Leader()
			ack.Version = p.view.Version
		}
		p.sendHeartbeatPlane(from, ack)
		p.noteActivity(from)
		return
	case *wire.ProbeAck:
		p.onProbeAck(m)
		p.noteActivity(m.From)
		return
	case *wire.Suspect:
		if p.lead != nil && !p.view.Contains(m.Reporter) {
			p.lead.evictStray(m.Reporter)
		}
		p.onSuspect(m)
		p.noteActivity(m.Reporter)
		return
	case *wire.Heartbeat:
		p.noteActivity(m.From)
		p.checkPeerView(m.From, m.Leader, m.Version)
	case *wire.Ping:
		p.noteActivity(m.From)
		p.checkPeerView(m.From, m.Leader, 0)
	default:
		p.noteActivity(from)
	}
	if p.detector != nil {
		p.detector.Handle(from, msg)
	}
}

// checkPeerView compares a peer's self-declared group identity (claimed
// leader + version; version 0 = unknown) against ours and triggers the
// appropriate healing. Versions are per-lineage, so two same-numbered
// views under different leaders can coexist after overlapping merges —
// the leader comparison is what catches a member wedged on a parallel
// stale view whose ring happens to interlock with the real one.
func (p *adapterProto) checkPeerView(from, claimed transport.IP, version uint64) {
	if p.state != stMember && p.state != stLeader {
		return
	}
	if p.lead != nil {
		switch {
		case !p.view.Contains(from):
			// Traffic from an adapter outside our committed view: a member
			// we dropped while it was unreachable, still running its stale
			// ring. Tell it to re-form.
			p.lead.evictStray(from)
		case (claimed != 0 && claimed != p.self) || (version != 0 && version < p.view.Version):
			// One of our members follows an older lineage or an older
			// version of ours: push it the current view.
			p.lead.refreshMember(from)
		}
		return
	}
	// Member side: a peer of our group claiming a different leader — or
	// our own leader at an older version (it missed a commit and its ring
	// interlocks with ours, so it will never suspect anyone) — means the
	// peer is running a stale view. Report it to our leader (rate-
	// limited); if the peer is the stale one the leader refreshes it, and
	// if WE are the stale one, the peer's groupmates run the same check
	// against us from their side.
	if claimed == 0 || !p.view.Contains(from) {
		return
	}
	if claimed == p.view.Leader() && (version == 0 || version >= p.view.Version) {
		return // same lineage, same-or-newer view: nothing to heal here
	}
	now := p.now()
	if at, ok := p.refreshLog[from]; ok && now-at < 2*time.Second {
		return
	}
	p.refreshLog[from] = now
	p.sendHeartbeatPlane(p.view.Leader(), &wire.Suspect{
		Reporter: p.self, Suspect: from, Version: p.view.Version,
		Reason: wire.ReasonStaleView,
	})
}

// noteActivity marks group liveness from the perspective of this adapter.
func (p *adapterProto) noteActivity(from transport.IP) {
	if p.view.Contains(from) {
		p.lastGroupActivity = p.now()
	}
}

func (p *adapterProto) sendMember(dst transport.IP, m wire.Message) {
	pkt := wire.NewPacket(m)
	_ = p.ep.Unicast(transport.PortMember, transport.Addr{IP: dst, Port: transport.PortMember}, pkt.Bytes())
	pkt.Free()
}

// sendMemberFan unicasts one pre-encoded packet to dst — the 2PC fan-out
// path, where encoding once per round instead of once per member matters.
func (p *adapterProto) sendMemberFan(dst transport.IP, pkt *wire.Packet) {
	_ = p.ep.Unicast(transport.PortMember, transport.Addr{IP: dst, Port: transport.PortMember}, pkt.Bytes())
}

func (p *adapterProto) sendHeartbeatPlane(dst transport.IP, m wire.Message) {
	pkt := wire.NewPacket(m)
	_ = p.ep.Unicast(transport.PortHeartbeat, transport.Addr{IP: dst, Port: transport.PortHeartbeat}, pkt.Bytes())
	pkt.Free()
}

// --- member-side 2PC ---

// acceptablePreparer decides whether src may rewrite our membership:
// our current leader, any higher-IP leader (merge absorption), our
// committed successor (leader failover), or anyone while we are ungrouped.
func (p *adapterProto) acceptablePreparer(src transport.IP) bool {
	switch p.state {
	case stBeaconing, stDeferring:
		return true
	case stMember, stLeader:
		cur := p.view.Leader()
		return src == cur || src > cur || src == p.view.Successor()
	default:
		return false
	}
}

func (p *adapterProto) onPrepare(m *wire.Prepare) {
	if m.Leader == p.self {
		return // our own broadcast looped back
	}
	ok := p.acceptablePreparer(m.Leader)
	if ok && m.Leader == p.view.Leader() && m.Version <= p.view.Version {
		ok = false // stale round from our own leader
	}
	// The new view must include us.
	included := false
	for _, mem := range m.Members {
		if mem.IP == p.self {
			included = true
			break
		}
	}
	if !included {
		ok = false
	}
	det := ""
	if !ok {
		det = "rejected"
	}
	p.trace(&trace.Record{Kind: trace.KPrepareRecv, Peer: m.Leader, Group: m.Leader,
		Version: m.Version, Token: m.Token, Detail: det})
	ack := &wire.PrepareAck{From: p.self, Leader: m.Leader, Version: m.Version, Token: m.Token, OK: ok}
	p.sendMember(m.Leader, ack)
	if !ok {
		return
	}
	if p.pending != nil && p.pending.timer != nil {
		p.pending.timer.Stop()
	}
	pv := &pendingView{
		view:   amg.New(m.Version, m.Members),
		leader: m.Leader,
		token:  m.Token,
	}
	// New() renumbers from scratch; force the wire version.
	pv.view.Version = m.Version
	p.pending = pv
	pv.timer = p.clock().AfterFunc(p.d.cfg.PendingTimeout, func() {
		if p.pending == pv {
			p.pending = nil
		}
	})
	p.noteActivity(m.Leader)
}

func (p *adapterProto) onCommit(m *wire.Commit) {
	if m.Leader == p.self {
		return
	}
	if p.pending != nil && p.pending.token == m.Token && p.pending.leader == m.Leader {
		pv := p.pending
		p.pending = nil
		if pv.timer != nil {
			pv.timer.Stop()
		}
		p.trace(&trace.Record{Kind: trace.KCommitRecv, Peer: m.Leader, Group: m.Leader,
			Version: m.Version, Token: m.Token})
		p.adoptView(pv.view, m.Leader)
		return
	}
	// Direct install (view refresh / lost Prepare): the Commit carries the
	// membership; accept it under the same authority rules.
	if len(m.Members) == 0 || !p.acceptablePreparer(m.Leader) {
		return
	}
	if m.Leader == p.view.Leader() && m.Version <= p.view.Version {
		return
	}
	v := amg.New(m.Version, m.Members)
	v.Version = m.Version
	if !v.Contains(p.self) {
		return
	}
	p.trace(&trace.Record{Kind: trace.KCommitRecv, Peer: m.Leader, Group: m.Leader,
		Version: m.Version, Token: m.Token, Detail: "direct"})
	p.adoptView(v, m.Leader)
}

// adoptView installs a view committed by another adapter (we are not its
// leader — if we led a group before, we are being absorbed and demote).
func (p *adapterProto) adoptView(v amg.Membership, leader transport.IP) {
	if v.Leader() != leader {
		// Malformed: the committing leader must be the highest member.
		return
	}
	if p.lead != nil {
		// Demotion: anything we were about to tell Central about our own
		// leadership term is now stale and must not be delivered late.
		p.d.reporter.dropLeader(p.self)
	}
	p.dropLeaderState()
	p.state = stMember
	if p.beaconTick != nil {
		p.beaconTick.Stop()
		p.beaconTick = nil
	}
	if p.deferTimer != nil {
		p.deferTimer.Stop()
		p.deferTimer = nil
	}
	p.commitView(v)
}

func (p *adapterProto) onAbort(m *wire.Abort) {
	if p.pending != nil && p.pending.token == m.Token && p.pending.leader == m.Leader {
		if p.pending.timer != nil {
			p.pending.timer.Stop()
		}
		p.pending = nil
		p.trace(&trace.Record{Kind: trace.KAbortRecv, Peer: m.Leader, Group: m.Leader, Token: m.Token})
	}
}

// commitView finalizes a membership view locally (both roles). The view
// is installed before the KViewCommit record is captured so that trace
// sinks (the invariant engine in internal/check) observe the committed
// state when the record reaches them.
func (p *adapterProto) commitView(v amg.Membership) {
	p.view = v
	if v.Leader() == p.self && v.Version > p.ledFloor {
		p.ledFloor = v.Version
	}
	p.trace(&trace.Record{Kind: trace.KViewCommit, Group: v.Leader(),
		Version: v.Version, Count: uint32(v.Size())})
	p.lastGroupActivity = p.now()
	p.firstSuspicionAt = 0 // a commit proves the leadership is working
	if p.detector != nil {
		p.detector.Reconfigure(v)
	}
	if p.state == stLeader && p.lead != nil {
		p.lead.viewCommitted(v)
	}
	if p.isAdmin() {
		p.d.adminViewChanged()
	}
	if p.d.hooks.Commit != nil {
		p.d.hooks.Commit(p.self, v)
	}
}

// --- suspicion routing & verification ---

// reportSuspect is called by the detector (via detectorEnv) when a peer
// goes silent. The paper's order of operations: loopback-test our own
// adapter first, then tell the leader — or the successor when the suspect
// IS the leader.
func (p *adapterProto) reportSuspect(suspect transport.IP, reason wire.SuspectReason) {
	if p.state != stMember && p.state != stLeader {
		return
	}
	if !p.ep.Loopback() {
		// Our own adapter is broken; blaming the neighbor would be the
		// §3 false-report flaw. Stay quiet and let others detect us.
		p.trace(&trace.Record{Kind: trace.KLoopbackFailed, Peer: suspect, Detail: reason.String()})
		return
	}
	if p.d.hooks.Suspicion != nil {
		p.d.hooks.Suspicion(p.self, suspect, reason)
	}
	p.trace(&trace.Record{Kind: trace.KSuspicionRaised, Peer: suspect,
		Group: p.view.Leader(), Version: p.view.Version, Detail: reason.String()})
	if p.state == stMember && p.firstSuspicionAt == 0 {
		p.firstSuspicionAt = p.now()
	}
	target := p.view.Leader()
	if suspect == target {
		target = p.view.Successor()
	}
	if target == 0 {
		return
	}
	msg := &wire.Suspect{Reporter: p.self, Suspect: suspect, Version: p.view.Version, Reason: reason}
	if target == p.self {
		p.onSuspect(msg)
		return
	}
	p.sendHeartbeatPlane(target, msg)
}

func (p *adapterProto) onSuspect(m *wire.Suspect) {
	if !p.view.Contains(m.Suspect) {
		return
	}
	p.trace(&trace.Record{Kind: trace.KSuspicionRecv, Peer: m.Suspect,
		Group: p.view.Leader(), Version: m.Version, Detail: m.Reason.String()})
	switch {
	case p.state == stLeader:
		p.lead.onSuspicion(m)
	case p.state == stMember && p.self == p.view.Successor() && m.Suspect == p.view.Leader():
		// Successor verifies the leader's death (paper §2.1).
		p.verifySuspect(m.Suspect, func(res probeResult) {
			if p.state != stMember || m.Suspect != p.view.Leader() {
				return
			}
			if res.dead || res.leader != m.Suspect {
				// Dead, or alive but no longer leading this group (it was
				// moved away): either way the group needs a new leader.
				p.takeOverLeadership()
			}
		})
	}
}

// takeOverLeadership promotes the successor after a verified leader death.
func (p *adapterProto) takeOverLeadership() {
	oldLeader := p.view.Leader()
	oldVersion := p.view.Version
	p.trace(&trace.Record{Kind: trace.KLeaderTakeover, Peer: oldLeader,
		Group: oldLeader, Version: oldVersion})
	p.becomeLeader()
	// Our full report supersedes the old group (by leader AND version —
	// the address alone is ambiguous if that leader re-formed elsewhere).
	p.lead.prevLeader = oldLeader
	p.lead.prevVersion = oldVersion
	p.lead.queueRemove(oldLeader)
}

// probeResult is the outcome of a direct verification probe.
type probeResult struct {
	dead bool
	// For a live target, its self-declared membership.
	leader  transport.IP
	version uint64
}

type probeState struct {
	target  transport.IP
	left    int
	timer   transport.Timer
	verdict func(probeResult)
}

// verifySuspect probes target directly; the verdict reports death or the
// live target's current allegiance.
func (p *adapterProto) verifySuspect(target transport.IP, verdict func(probeResult)) {
	p.nextNonce++
	nonce := p.nextNonce
	ps := &probeState{target: target, left: p.d.cfg.ProbeRetries, verdict: verdict}
	p.probes[nonce] = ps
	p.sendProbe(nonce, ps)
}

func (p *adapterProto) sendProbe(nonce uint64, ps *probeState) {
	p.trace(&trace.Record{Kind: trace.KProbeSent, Peer: ps.target, Token: nonce})
	p.sendHeartbeatPlane(ps.target, &wire.Probe{From: p.self, Nonce: nonce})
	ps.timer = p.clock().AfterFunc(p.d.cfg.ProbeTimeout, func() {
		cur, ok := p.probes[nonce]
		if !ok || cur != ps {
			return
		}
		if ps.left > 0 {
			ps.left--
			p.sendProbe(nonce, ps)
			return
		}
		delete(p.probes, nonce)
		p.trace(&trace.Record{Kind: trace.KVerdictDead, Peer: ps.target, Token: nonce})
		ps.verdict(probeResult{dead: true})
	})
}

func (p *adapterProto) onProbeAck(m *wire.ProbeAck) {
	for nonce, ps := range p.probes {
		if ps.target == m.From {
			if ps.timer != nil {
				ps.timer.Stop()
			}
			delete(p.probes, nonce)
			p.trace(&trace.Record{Kind: trace.KVerdictAlive, Peer: m.From,
				Group: m.Leader, Version: m.Version, Token: nonce})
			ps.verdict(probeResult{leader: m.Leader, version: m.Version})
		}
	}
}

// --- orphan detection ---

// orphanCheck notices that the group has gone completely silent — the
// signature of this adapter having been moved to another VLAN (§3.1) or
// of a catastrophic partition. The adapter reverts to a singleton and
// beacons; the new segment's leader absorbs it.
func (p *adapterProto) orphanCheck() {
	if p.state == stIdle {
		p.orphanTick = nil
		return
	}
	defer func() {
		// Re-arm by Reset: the body may have shut the adapter down (nil
		// timer) or restarted it (fresh timer — Reset just re-times it).
		if p.state != stIdle && p.orphanTick != nil {
			p.orphanTick.Reset(p.d.cfg.DetectorParams.Interval)
		} else {
			p.orphanTick = nil
		}
	}()
	grouped := (p.state == stMember || p.state == stLeader) && p.view.Size() > 1
	if !grouped {
		return
	}
	if p.now()-p.lastGroupActivity > p.d.cfg.OrphanTimeout {
		p.isolationOrphan()
		return
	}
	// Escalation (paper §3.1): our suspicion reports have produced no
	// recommit. Check the leader directly; if it is unreachable, try the
	// successor; if both are, we — not they — are the ones cut off.
	if p.state == stMember && p.firstSuspicionAt > 0 && !p.escalating &&
		p.now()-p.firstSuspicionAt > p.d.cfg.EscalationPatience {
		p.escalateSuspicion()
	}
}

// escalateSuspicion probes the leader, then the successor, and orphans if
// neither is reachable.
func (p *adapterProto) escalateSuspicion() {
	p.escalating = true
	leader := p.view.Leader()
	p.verifySuspect(leader, func(res probeResult) {
		// firstSuspicionAt == 0 means a commit landed while the probe was
		// in flight: leadership is demonstrably working, the verdict is
		// stale. Acting on it would orphan a freshly healed member.
		if p.state != stMember || p.view.Leader() != leader || p.firstSuspicionAt == 0 {
			p.escalating = false
			return
		}
		if !res.dead && res.leader == leader {
			// The leader answers and still leads; it will resolve the
			// suspicions in its own time. Restart the patience window.
			p.escalating = false
			p.firstSuspicionAt = p.now()
			return
		}
		if !res.dead && res.leader != leader {
			// The leader is alive but follows someone else now: the group
			// we believe in no longer exists. Reform and rediscover.
			p.escalating = false
			p.isolationOrphan()
			return
		}
		// Leader unreachable.
		succ := p.view.Successor()
		if succ == p.self {
			p.escalating = false
			p.takeOverLeadership()
			return
		}
		// Make sure the successor knows, and check whether we can even
		// reach it.
		p.sendHeartbeatPlane(succ, &wire.Suspect{
			Reporter: p.self, Suspect: leader, Version: p.view.Version,
			Reason: wire.ReasonProbeTimeout,
		})
		p.verifySuspect(succ, func(res2 probeResult) {
			p.escalating = false
			// Same staleness guards as above: a commit during the probe (or
			// a leader change) supersedes whatever this verdict says. The
			// original code checked only the state and would orphan a member
			// that had just been healed by a takeover or refresh commit.
			if p.state != stMember || p.view.Leader() != leader || p.firstSuspicionAt == 0 {
				return
			}
			switch {
			case res2.dead:
				// We can reach neither the leader nor the successor: we
				// are the one cut off. Become a leader and beacon.
				p.isolationOrphan()
			case res2.leader == succ || res2.leader == leader:
				// The successor is taking (or about to take) over; its
				// commit will reach us. Restart the patience window.
				p.firstSuspicionAt = p.now()
			default:
				// The successor too has moved on: the group is gone.
				p.isolationOrphan()
			}
		})
	})
}

// isolationOrphan abandons the current group: the adapter has lost
// contact with everyone (moved VLAN, or partitioned away) and reforms as
// a fresh singleton leader. The lineage break is flagged so Central does
// not misread the reformation as the old group dying.
func (p *adapterProto) isolationOrphan() {
	p.trace(&trace.Record{Kind: trace.KOrphaned,
		Group: p.view.Leader(), Version: p.view.Version})
	if p.d.hooks.Orphaned != nil {
		p.d.hooks.Orphaned(p.self)
	}
	// The new version jumps beyond anything the old group used — or
	// anything this adapter's own earlier lineage used, if that counter
	// ran higher — so stale messages cannot confuse a later rejoin.
	oldVersion := p.view.Version
	if p.ledFloor > oldVersion {
		oldVersion = p.ledFloor
	}
	if p.lead != nil {
		p.d.reporter.dropLeader(p.self)
	}
	p.dropLeaderState()
	p.becomeLeader()
	p.lead.fresh = true
	v := amg.New(oldVersion+1000, []wire.Member{p.selfMember()})
	p.commitView(v)
}
