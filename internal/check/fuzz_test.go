package check

import (
	"reflect"
	"testing"
)

// FuzzScheduleParse throws arbitrary text at the schedule DSL parser.
// Whatever parses must survive a String→Parse round trip unchanged —
// the property the shrinker's artifact files rely on — and the parser
// must never panic on garbage.
func FuzzScheduleParse(f *testing.F) {
	f.Add("seed 101\n@2s kill acme-be-003\nsettle 3m\n")
	f.Add("@6s fail 10.3.0.5 fail-recv for 10s\n")
	f.Add("@9s partition vlan-101 for 8s\n@11s drop vlan-102 0.35 for 20s\n")
	f.Add("@12s switch-off sw-01 for 8s\n@15s move acme-fe-001 to globex\n")
	f.Add("@20s failover for 30s\n")
	f.Add("# comment\n\nseed -9\nsettle 15s\n")
	f.Add("@0s kill x\n@0s restart x\n")
	f.Add("seed 9223372036854775807\n")
	f.Add("@2562047h47m16.854775807s failover\n")
	f.Fuzz(func(t *testing.T, text string) {
		s, err := Parse(text)
		if err != nil {
			return
		}
		back, err := Parse(s.String())
		if err != nil {
			t.Fatalf("re-parse of rendered schedule failed: %v\nrendered:\n%s", err, s)
		}
		// String() materializes the default settle; normalize before
		// comparing.
		if s.Settle == 0 {
			s.Settle = DefaultSettle
		}
		if !reflect.DeepEqual(s, back) {
			t.Fatalf("round trip changed schedule:\n in: %+v\nout: %+v\ntext:\n%s", s, back, s.String())
		}
	})
}
