package switchsim

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/snmp"
	"repro/internal/transport"
)

func ip(c, d byte) transport.IP { return transport.MakeIP(10, 0, c, d) }

func TestSegmentResolution(t *testing.T) {
	f := NewFabric()
	sw := f.AddSwitch("sw0")
	sw.Connect(1, ip(0, 1), 100)
	sw.Connect(2, ip(0, 2), 100)
	sw.Connect(3, ip(0, 3), 200)

	seg1, ok1 := f.SegmentOf(ip(0, 1))
	seg2, ok2 := f.SegmentOf(ip(0, 2))
	seg3, ok3 := f.SegmentOf(ip(0, 3))
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("wired adapters must resolve")
	}
	if seg1 != seg2 || seg1 == seg3 {
		t.Fatalf("segments: %s %s %s", seg1, seg2, seg3)
	}
	if seg1 != "vlan-100" || seg3 != "vlan-200" {
		t.Fatalf("segment names: %s %s", seg1, seg3)
	}
	if _, ok := f.SegmentOf(ip(9, 9)); ok {
		t.Fatal("unwired adapter resolved")
	}
}

func TestVLANSpansSwitches(t *testing.T) {
	f := NewFabric()
	a := f.AddSwitch("sw0")
	b := f.AddSwitch("sw1")
	a.Connect(1, ip(0, 1), 100)
	b.Connect(1, ip(0, 2), 100)
	s1, _ := f.SegmentOf(ip(0, 1))
	s2, _ := f.SegmentOf(ip(0, 2))
	if s1 != s2 {
		t.Fatal("same VLAN on two switches must share a segment (trunked)")
	}
}

func TestPortAndSwitchFailureDisconnect(t *testing.T) {
	f := NewFabric()
	sw := f.AddSwitch("sw0")
	sw.Connect(1, ip(0, 1), 100)
	sw.Connect(2, ip(0, 2), 100)
	v0 := f.Version()

	if err := sw.SetPortUp(1, false); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.SegmentOf(ip(0, 1)); ok {
		t.Fatal("adapter on downed port still resolves")
	}
	if _, ok := f.SegmentOf(ip(0, 2)); !ok {
		t.Fatal("sibling port wrongly disconnected")
	}
	if f.Version() == v0 {
		t.Fatal("version did not bump on port down")
	}
	sw.SetPortUp(1, true)
	if _, ok := f.SegmentOf(ip(0, 1)); !ok {
		t.Fatal("port restore did not reconnect")
	}

	sw.SetUp(false)
	for _, a := range []transport.IP{ip(0, 1), ip(0, 2)} {
		if _, ok := f.SegmentOf(a); ok {
			t.Fatalf("adapter %v resolves on dead switch", a)
		}
	}
	sw.SetUp(true)
	if _, ok := f.SegmentOf(ip(0, 1)); !ok {
		t.Fatal("switch restore did not reconnect")
	}
}

func TestSetPortVLANMovesSegment(t *testing.T) {
	f := NewFabric()
	sw := f.AddSwitch("sw0")
	sw.Connect(1, ip(0, 1), 100)
	v0 := f.Version()
	if err := sw.SetPortVLAN(1, 200); err != nil {
		t.Fatal(err)
	}
	seg, _ := f.SegmentOf(ip(0, 1))
	if seg != "vlan-200" {
		t.Fatalf("segment after move = %s", seg)
	}
	if f.Version() == v0 {
		t.Fatal("version did not bump on VLAN move")
	}
	// No-op move must not bump.
	v1 := f.Version()
	sw.SetPortVLAN(1, 200)
	if f.Version() != v1 {
		t.Fatal("no-op VLAN move bumped version")
	}
	if err := sw.SetPortVLAN(99, 100); err == nil {
		t.Fatal("SetPortVLAN on missing port must error")
	}
}

func TestConnectConflictsPanic(t *testing.T) {
	f := NewFabric()
	sw := f.AddSwitch("sw0")
	sw.Connect(1, ip(0, 1), 100)
	mustPanic(t, func() { sw.Connect(1, ip(0, 2), 100) })
	mustPanic(t, func() { sw.Connect(2, ip(0, 1), 100) })
	mustPanic(t, func() { f.AddSwitch("sw0") })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

func TestLocateAndWiring(t *testing.T) {
	f := NewFabric()
	sw0 := f.AddSwitch("sw0")
	sw1 := f.AddSwitch("sw1")
	sw0.Connect(1, ip(0, 1), 100)
	sw0.Connect(2, ip(0, 2), 100)
	sw1.Connect(1, ip(0, 3), 100)

	sw, port, ok := f.Locate(ip(0, 2))
	if !ok || sw.Name() != "sw0" || port != 2 {
		t.Fatalf("Locate = %v %d %v", sw, port, ok)
	}
	got := f.AdaptersOnSwitch("sw0")
	if len(got) != 2 || got[0] != ip(0, 1) || got[1] != ip(0, 2) {
		t.Fatalf("AdaptersOnSwitch = %v", got)
	}
	if vlan, ok := f.VLANOf(ip(0, 3)); !ok || vlan != 100 {
		t.Fatalf("VLANOf = %d %v", vlan, ok)
	}
	if len(f.Switches()) != 2 {
		t.Fatal("Switches() wrong length")
	}
}

func TestMIBReflectsState(t *testing.T) {
	f := NewFabric()
	sw := f.AddSwitch("core-1")
	sw.Connect(5, ip(0, 5), 300)
	mib := sw.MIB()

	if v, err := mib.Get(OIDSysName); err != nil || v.String() != "core-1" {
		t.Fatalf("sysName = %v %v", v, err)
	}
	if v, err := mib.Get(OIDNumPorts); err != nil || v.Int != 1 {
		t.Fatalf("numPorts = %v %v", v, err)
	}
	if v, err := mib.Get(OIDPortVLAN(5)); err != nil || v.Int != 300 {
		t.Fatalf("portVLAN = %v %v", v, err)
	}
	if v, err := mib.Get(OIDPortAdapter(5)); err != nil || v.String() != "10.0.0.5" {
		t.Fatalf("portAdapter = %v %v", v, err)
	}
	// Direct state changes surface in the MIB.
	sw.SetPortUp(5, false)
	if v, _ := mib.Get(OIDPortStatus(5)); v.Int != PortDown {
		t.Fatalf("portStatus after down = %v", v)
	}
}

func TestMIBSetMovesVLAN(t *testing.T) {
	f := NewFabric()
	sw := f.AddSwitch("sw0")
	sw.Connect(1, ip(0, 1), 100)
	if err := sw.MIB().Set(OIDPortVLAN(1), snmp.Integer(250)); err != nil {
		t.Fatal(err)
	}
	if seg, _ := f.SegmentOf(ip(0, 1)); seg != "vlan-250" {
		t.Fatalf("segment after MIB set = %s", seg)
	}
	if sw.Port(1).VLAN != 250 {
		t.Fatal("port state not updated")
	}
}

func TestMIBSetValidation(t *testing.T) {
	f := NewFabric()
	sw := f.AddSwitch("sw0")
	sw.Connect(1, ip(0, 1), 100)
	if err := sw.MIB().Set(OIDPortVLAN(1), snmp.Integer(0)); err == nil {
		t.Fatal("VLAN 0 accepted")
	}
	if err := sw.MIB().Set(OIDPortVLAN(1), snmp.OctetString("ten")); err == nil {
		t.Fatal("string VLAN accepted")
	}
	if err := sw.MIB().Set(OIDPortStatus(1), snmp.Integer(7)); err == nil {
		t.Fatal("bogus status accepted")
	}
	if err := sw.MIB().Set(OIDPortAdapter(1), snmp.OctetString("x")); err == nil {
		t.Fatal("read-only adapter binding accepted a write")
	}
}

func TestMIBSetPortStatus(t *testing.T) {
	f := NewFabric()
	sw := f.AddSwitch("sw0")
	sw.Connect(1, ip(0, 1), 100)
	if err := sw.MIB().Set(OIDPortStatus(1), snmp.Integer(PortDown)); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.SegmentOf(ip(0, 1)); ok {
		t.Fatal("SNMP port-down did not disconnect")
	}
}

// End-to-end: SNMP client over the simulated admin network reconfigures a
// port's VLAN, and multicast reachability follows — the paper's exact
// domain-move mechanism.
func TestSNMPReconfigurationEndToEnd(t *testing.T) {
	sched := sim.NewScheduler(31)
	fabric := NewFabric()
	net := netsim.New(sched, fabric)

	sw := fabric.AddSwitch("sw0")
	// Admin VLAN 1: central's adapter + switch management adapter.
	central := net.AddAdapter(ip(1, 1), "central")
	mgmt := net.AddAdapter(ip(1, 2), "sw0-mgmt")
	sw.Connect(1, central.LocalIP(), 1)
	sw.Connect(2, mgmt.LocalIP(), 1)
	// Two domain adapters, initially both in VLAN 100.
	a := net.AddAdapter(ip(2, 1), "nodeA")
	b := net.AddAdapter(ip(2, 2), "nodeB")
	sw.Connect(3, a.LocalIP(), 100)
	sw.Connect(4, b.LocalIP(), 100)

	sw.AttachAgent(mgmt, "farm-admin")
	client := snmp.NewClient(central, clock{sched}, "farm-admin", 40000)

	heard := 0
	b.Bind(500, func(_, _ transport.Addr, _ []byte) { heard++ })
	b.JoinGroup(transport.BeaconGroup, 500)
	group := transport.Addr{IP: transport.BeaconGroup, Port: 500}

	a.Multicast(500, group, []byte("before"))
	sched.Run()
	if heard != 1 {
		t.Fatalf("pre-move multicast heard %d", heard)
	}

	var setErr error
	done := false
	client.Set(transport.Addr{IP: mgmt.LocalIP(), Port: transport.PortSNMP},
		OIDPortVLAN(3), snmp.Integer(200), func(err error) { setErr, done = err, true })
	sched.Run()
	if !done || setErr != nil {
		t.Fatalf("SNMP set done=%v err=%v", done, setErr)
	}
	a.Multicast(500, group, []byte("after"))
	sched.Run()
	if heard != 1 {
		t.Fatalf("post-move multicast heard %d, want still 1", heard)
	}
	if seg, _ := fabric.SegmentOf(a.LocalIP()); seg != "vlan-200" {
		t.Fatalf("adapter segment = %s", seg)
	}
}

type clock struct{ s *sim.Scheduler }

func (c clock) Now() time.Duration { return c.s.Now() }
func (c clock) AfterFunc(d time.Duration, fn func()) transport.Timer {
	return c.s.AfterFunc(d, fn)
}

func TestAgentWalkOverPorts(t *testing.T) {
	sched := sim.NewScheduler(33)
	fabric := NewFabric()
	net := netsim.New(sched, fabric)
	sw := fabric.AddSwitch("sw0")
	central := net.AddAdapter(ip(1, 1), "central")
	mgmt := net.AddAdapter(ip(1, 2), "sw0-mgmt")
	sw.Connect(1, central.LocalIP(), 1)
	sw.Connect(2, mgmt.LocalIP(), 1)
	sw.Connect(3, ip(2, 1), 100)
	sw.AttachAgent(mgmt, "farm-admin")
	client := snmp.NewClient(central, clock{sched}, "farm-admin", 40000)

	var vbs []snmp.VarBind
	client.WalkPrefix(transport.Addr{IP: mgmt.LocalIP(), Port: transport.PortSNMP},
		snmp.MustOID("1.3.6.1.4.1.2.6509.2.1"), func(got []snmp.VarBind, err error) {
			if err != nil {
				t.Errorf("walk: %v", err)
			}
			vbs = got
		})
	sched.Run()
	if len(vbs) != 3 {
		t.Fatalf("walk found %d port VLAN entries, want 3", len(vbs))
	}
	if vbs[0].Value.Int != 1 || vbs[2].Value.Int != 100 {
		t.Fatalf("walk values: %v", vbs)
	}
}
