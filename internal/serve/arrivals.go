package serve

import (
	"math"
	"math/rand"
	"time"
)

// Arrivals is the seed-deterministic heavy-tailed session source: bursts
// arrive as a Poisson process, each burst carrying a bounded-Pareto
// number of sessions whose durations are bounded-Pareto as well — the
// classic web-workload shape (most sessions are short, a heavy tail is
// not, and load arrives in spikes). The generator owns its rand.Rand, so
// one seed produces one arrival sequence regardless of what else the
// simulation schedules.
type Arrivals struct {
	rng *rand.Rand

	burstRate float64 // bursts per second (Poisson)
	alpha     float64 // burst-size Pareto shape
	maxBurst  float64

	durAlpha float64
	durMin   float64 // seconds
	durMax   float64 // seconds
}

// NewArrivals builds a generator for one domain from the workload
// config. Seeds differing in any bit give independent sequences.
func NewArrivals(seed int64, cfg Config) *Arrivals {
	cfg = cfg.withDefaults()
	meanBurst := boundedParetoMean(cfg.BurstAlpha, 1, float64(cfg.MaxBurst))
	// Pick the duration window [L, TailRatio*L] so its Pareto mean lands
	// exactly on MeanSession.
	factor := boundedParetoMean(cfg.SessionAlpha, 1, cfg.TailRatio)
	durMin := cfg.MeanSession.Seconds() / factor
	return &Arrivals{
		rng:       rand.New(rand.NewSource(seed)),
		burstRate: cfg.SessionsPerSec / meanBurst,
		alpha:     cfg.BurstAlpha,
		maxBurst:  float64(cfg.MaxBurst),
		durAlpha:  cfg.SessionAlpha,
		durMin:    durMin,
		durMax:    durMin * cfg.TailRatio,
	}
}

// Next draws the next burst: the gap until it arrives, how many sessions
// it carries, and their common duration (sessions in one burst behave as
// one counted cohort).
func (a *Arrivals) Next() (gap time.Duration, sessions int, dur time.Duration) {
	u := 1 - a.rng.Float64() // (0, 1]
	gap = time.Duration(-math.Log(u) / a.burstRate * float64(time.Second))
	// Round, don't floor: flooring the continuous sample would bias the
	// realized session rate ~10% under SessionsPerSec.
	sessions = int(math.Round(a.boundedPareto(a.alpha, 1, a.maxBurst)))
	if sessions < 1 {
		sessions = 1
	}
	dur = time.Duration(a.boundedPareto(a.durAlpha, a.durMin, a.durMax) * float64(time.Second))
	return gap, sessions, dur
}

// boundedPareto samples the Pareto distribution with shape alpha
// truncated to [l, h] by CDF inversion.
func (a *Arrivals) boundedPareto(alpha, l, h float64) float64 {
	u := 1 - a.rng.Float64() // (0, 1]
	lh := math.Pow(l/h, alpha)
	return l / math.Pow(1-(1-lh)*(1-u), 1/alpha)
}

// boundedParetoMean is the analytic mean of the Pareto(alpha)
// distribution truncated to [l, h].
func boundedParetoMean(alpha, l, h float64) float64 {
	if h <= l {
		return l
	}
	if alpha == 1 {
		return l * h / (h - l) * math.Log(h/l)
	}
	la := math.Pow(l, alpha)
	return alpha * la * (math.Pow(h, 1-alpha) - math.Pow(l, 1-alpha)) /
		((1 - alpha) * (1 - math.Pow(l/h, alpha)))
}
