package serve

import (
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/transport"
)

// DomainStats is one domain's accumulated serving outcome.
type DomainStats struct {
	Domain string `json:"domain"`
	// Requests is the number of requests issued.
	Requests uint64 `json:"requests"`
	// Errors = Misroutes + Unrouted: requests users saw fail.
	Errors uint64 `json:"errors"`
	// Misroutes are requests sent to a backend the ground-truth fabric
	// says cannot serve the domain (dead, moved away, or unplugged).
	Misroutes uint64 `json:"misroutes"`
	// Unrouted are requests issued while the balancer had no backend in
	// rotation for the domain.
	Unrouted uint64 `json:"unrouted"`
	// ErrorSeconds integrates the failing traffic fraction over time:
	// a tick where half the requests fail adds half the tick. It is the
	// user-visible cost of stale routing — the E17 optimization target.
	ErrorSeconds float64 `json:"error_seconds"`
	// PeakSessions is the largest in-flight session count observed.
	PeakSessions int64 `json:"peak_sessions"`
}

// domainLoad is one domain's live workload state: counted session
// cohorts in an expiry ring, plus the arrival generator.
type domainLoad struct {
	name  string
	arr   *Arrivals
	stats DomainStats

	nextBurst       time.Duration // absolute time of the next arrival burst
	pendingSessions int           // size of the burst arriving at nextBurst
	pendingDur      time.Duration // duration of that burst's sessions
	active          int64         // in-flight sessions (a count, not objects)
	expiry          []int64       // ring: sessions ending at tick (index)
	tick            int64
	carry           float64 // fractional request remainder across ticks
	// wasBad remembers that the previous served tick had errors, so the
	// first clean tick after an incident leaves a KServeClean record —
	// the span stitcher's "first clean client request" milestone.
	wasBad bool
}

// Workload drives the simulated client population. Each Tick it expires
// due cohorts, admits newly-arrived ones, asks the balancer to split the
// tick's request batch, and resolves every share against ground truth.
// Cost per tick is O(domains × backends), independent of the session
// count — which is how a laptop sweeps millions of in-flight sessions.
type Workload struct {
	cfg    Config
	clock  transport.Clock
	bal    *Balancer
	oracle Oracle
	reg    *metrics.Registry
	tracer *trace.Recorder

	domains []*domainLoad
	ringLen int64
	running bool
	timer   transport.Timer
}

// NewWorkload builds the workload over the balancer's domains. reg and
// tracer may be nil.
func NewWorkload(cfg Config, clock transport.Clock, bal *Balancer, oracle Oracle,
	reg *metrics.Registry, tracer *trace.Recorder) *Workload {
	cfg = cfg.withDefaults()
	// The duration sampler is bounded at TailRatio × the minimum, so the
	// ring only needs to hold the longest possible session.
	maxSession := time.Duration(cfg.MeanSession.Seconds() * cfg.TailRatio /
		boundedParetoMean(cfg.SessionAlpha, 1, cfg.TailRatio) * float64(time.Second))
	ringLen := int64(maxSession/cfg.Tick) + 2
	w := &Workload{
		cfg: cfg, clock: clock, bal: bal, oracle: oracle,
		reg: reg, tracer: tracer, ringLen: ringLen,
	}
	for i, dom := range bal.domains {
		w.domains = append(w.domains, &domainLoad{
			name:   dom,
			arr:    NewArrivals(cfg.Seed+int64(i)*1_000_003, cfg),
			stats:  DomainStats{Domain: dom},
			expiry: make([]int64, ringLen),
		})
	}
	return w
}

// Start schedules the first tick. Idempotent.
func (w *Workload) Start() {
	if w.running {
		return
	}
	w.running = true
	now := w.clock.Now()
	for _, d := range w.domains {
		gap, sessions, dur := d.arr.Next()
		d.nextBurst = now + gap
		d.pendingSessions, d.pendingDur = sessions, dur
	}
	w.timer = w.clock.AfterFunc(w.cfg.Tick, w.tick)
}

// Stop halts ticking. Accumulated stats remain readable.
func (w *Workload) Stop() {
	if !w.running {
		return
	}
	w.running = false
	if w.timer != nil {
		w.timer.Stop()
	}
}

// Running reports whether the workload is ticking.
func (w *Workload) Running() bool { return w.running }

func (w *Workload) tick() {
	if !w.running {
		return
	}
	now := w.clock.Now()
	tickSecs := w.cfg.Tick.Seconds()
	for _, d := range w.domains {
		// Expire cohorts due this tick.
		d.tick++
		slot := d.tick % w.ringLen
		d.active -= d.expiry[slot]
		d.expiry[slot] = 0

		// Admit every burst that has arrived by now.
		for d.nextBurst <= now {
			d.active += int64(d.pendingSessions)
			durTicks := int64(d.pendingDur / w.cfg.Tick)
			if durTicks < 1 {
				durTicks = 1
			}
			if durTicks > w.ringLen-1 {
				durTicks = w.ringLen - 1
			}
			d.expiry[(d.tick+durTicks)%w.ringLen] += int64(d.pendingSessions)
			gap, sessions, dur := d.arr.Next()
			d.nextBurst += gap
			d.pendingSessions, d.pendingDur = sessions, dur
		}
		if d.active > d.stats.PeakSessions {
			d.stats.PeakSessions = d.active
		}

		// Route the tick's request batch and resolve it against ground
		// truth.
		r := float64(d.active)*w.cfg.RequestsPerSec*tickSecs + d.carry
		n := int64(r)
		d.carry = r - float64(n)
		if n <= 0 {
			continue
		}
		var bad int64
		shares := w.bal.Assign(d.name, n)
		if len(shares) == 0 {
			bad = n
			d.stats.Unrouted += uint64(n)
			w.trace(trace.KServeMisroute, "", uint32(clampCount(n)), d.name+" unrouted")
		} else {
			for _, s := range shares {
				if !w.oracle.Serves(s.Node, d.name) {
					bad += s.Requests
					d.stats.Misroutes += uint64(s.Requests)
					w.trace(trace.KServeMisroute, s.Node, uint32(clampCount(s.Requests)), d.name)
				}
			}
		}
		d.stats.Requests += uint64(n)
		d.stats.Errors += uint64(bad)
		switch {
		case bad > 0:
			d.stats.ErrorSeconds += tickSecs * float64(bad) / float64(n)
			d.wasBad = true
		case d.wasBad:
			d.wasBad = false
			w.trace(trace.KServeClean, "", uint32(clampCount(n)), d.name)
		}
		if w.reg != nil {
			w.reg.Add("serve_requests_total", uint64(n))
			if bad > 0 {
				w.reg.Add("serve_errors_total", uint64(bad))
			}
		}
	}
	w.timer = w.clock.AfterFunc(w.cfg.Tick, w.tick)
}

func clampCount(n int64) int64 {
	const max = int64(^uint32(0))
	if n > max {
		return max
	}
	return n
}

func (w *Workload) trace(kind trace.Kind, node string, count uint32, detail string) {
	if w.tracer == nil {
		return
	}
	w.tracer.Record(trace.Record{
		T: w.clock.Now(), Kind: kind, Node: node, Count: count, Detail: detail,
	})
}

// Stats snapshots every domain's accumulated statistics, in the
// balancer's domain order.
func (w *Workload) Stats() []DomainStats {
	out := make([]DomainStats, 0, len(w.domains))
	for _, d := range w.domains {
		out = append(out, d.stats)
	}
	return out
}

// ResetStats zeroes the accumulated statistics (sessions in flight stay
// in flight) — called after warm-up so measurements start clean.
func (w *Workload) ResetStats() {
	for _, d := range w.domains {
		d.stats = DomainStats{Domain: d.name, PeakSessions: d.active}
	}
}

// ActiveSessions reports the domain's current in-flight session count.
func (w *Workload) ActiveSessions(domain string) int64 {
	for _, d := range w.domains {
		if d.name == domain {
			return d.active
		}
	}
	return 0
}
