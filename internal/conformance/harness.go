package conformance

import (
	"fmt"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/trace"
	"repro/internal/transport"
)

// Suite is one named conformance scenario: an optional spec mutation
// applied before boot (planting configdb lies), and a body driving the
// live farm. The harness handles boot, scraping, teardown, and the
// verdict pipeline around it.
type Suite struct {
	Name    string
	Desc    string
	Prepare func(*FarmSpec)
	Run     func(*H) error
}

// Options configures a harness run.
type Options struct {
	// Bin is the gsd binary; empty builds it into the artifacts dir.
	Bin string
	// Fabric selects "loopback" (default) or "netns".
	Fabric string
	// Artifacts is the output directory (default: a temp dir).
	Artifacts string
	// Logf receives progress lines (default: discard).
	Logf func(string, ...any)
	// PollEvery is the background scrape cadence (default 500ms).
	PollEvery time.Duration
}

// Result is one suite's outcome.
type Result struct {
	Suite   string   `json:"suite"`
	Fabric  string   `json:"fabric"`
	Passed  bool     `json:"passed"`
	Err     string   `json:"error,omitempty"`
	Seconds float64  `json:"seconds"`
	Verdict *Verdict `json:"verdict,omitempty"`
}

// BuildGSD compiles the daemon into dir and returns the binary path.
func BuildGSD(dir string) (string, error) {
	bin := filepath.Join(dir, "gsd")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/gsd")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("conformance: go build gsd: %v\n%s", err, out)
	}
	return bin, nil
}

// Run executes the suites sequentially, each on a fresh farm, and
// returns per-suite results. A suite failure does not stop the run.
func Run(suites []Suite, opts Options) ([]Result, error) {
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if opts.Artifacts == "" {
		dir, err := os.MkdirTemp("", "gshive-*")
		if err != nil {
			return nil, err
		}
		opts.Artifacts = dir
	}
	if err := os.MkdirAll(opts.Artifacts, 0o755); err != nil {
		return nil, err
	}
	bin := opts.Bin
	if bin == "" {
		var err error
		if bin, err = BuildGSD(opts.Artifacts); err != nil {
			return nil, err
		}
	}
	poll := opts.PollEvery
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}

	var results []Result
	for _, suite := range suites {
		start := time.Now()
		logf("=== suite %s (%s)", suite.Name, suite.Desc)
		res := runSuite(suite, bin, opts.Fabric, filepath.Join(opts.Artifacts, suite.Name), poll, logf)
		res.Seconds = time.Since(start).Seconds()
		if res.Passed {
			logf("--- PASS %s (%.1fs)", suite.Name, res.Seconds)
		} else {
			logf("--- FAIL %s (%.1fs): %s", suite.Name, res.Seconds, res.Err)
		}
		results = append(results, res)
	}
	if err := writeJSON(filepath.Join(opts.Artifacts, "results.json"), results); err != nil {
		return results, err
	}
	return results, nil
}

func runSuite(suite Suite, bin, fabricKind, art string, poll time.Duration,
	logf func(string, ...any)) Result {

	res := Result{Suite: suite.Name, Fabric: fabricKind}
	var spec *FarmSpec
	var fabric Fabric
	switch fabricKind {
	case "", "loopback":
		res.Fabric = "loopback"
		spec = DefaultFarm()
		if suite.Prepare != nil {
			suite.Prepare(spec)
		}
		fabric = NewLoopbackFabric(spec, bin, art, logf)
	case "netns":
		spec = NetnsFarm()
		if suite.Prepare != nil {
			suite.Prepare(spec)
		}
		nf, err := NewNetnsFabric(spec, bin, art, logf)
		if err != nil {
			res.Err = err.Error()
			return res
		}
		fabric = nf
	default:
		res.Err = fmt.Sprintf("unknown fabric %q", fabricKind)
		return res
	}

	h := &H{
		Spec: spec, F: fabric, S: NewScraper(), Art: art, logf: logf,
		dead: map[string]bool{},
	}
	fabric.OnStart(func(d *Daemon) { h.S.Track(d) })

	if err := fabric.Boot(); err != nil {
		res.Err = "boot: " + err.Error()
		fabric.Close()
		return res
	}
	stopPoll := h.S.Start(poll)

	runErr := suite.Run(h)

	// Final topology snapshot (with verification) before teardown.
	finalTopo, topoErr := h.Topology(true)
	stopPoll()
	h.S.Poll() // final drain while every surviving daemon still runs
	closeErr := fabric.Close()

	gt := h.GroundTruth()
	verdict := evaluate(suite.Name, res.Fabric, h.S, spec, finalTopo, gt)
	res.Verdict = verdict
	if err := writeArtifacts(art, verdict, h.S, finalTopo, gt); err != nil {
		logf("suite %s: artifacts: %v", suite.Name, err)
	}

	switch {
	case runErr != nil:
		res.Err = runErr.Error()
	case topoErr != nil:
		res.Err = "final topology: " + topoErr.Error()
	case closeErr != nil:
		res.Err = "teardown: " + closeErr.Error()
	case !verdict.Passed:
		res.Err = verdict.summary()
	default:
		res.Passed = true
	}
	return res
}

// summary flattens a failing verdict into one message.
func (v *Verdict) summary() string {
	var parts []string
	add := func(label string, items []string) {
		if len(items) > 0 {
			parts = append(parts, fmt.Sprintf("%s (%d): %s", label, len(items), items[0]))
		}
	}
	add("invariant violations", v.Violations)
	add("unclosed spans", v.AuditFindings)
	add("topology diff", v.TopologyDiff)
	add("mismatch diff", v.MismatchDiff)
	if len(parts) == 0 {
		return "failed"
	}
	return strings.Join(parts, "; ")
}

// H is the live handle a suite body drives the farm through.
type H struct {
	Spec *FarmSpec
	F    Fabric
	S    *Scraper
	Art  string

	logf func(string, ...any)

	mu             sync.Mutex
	dead           map[string]bool
	expectMismatch []string
}

// Logf logs a progress line into the harness output.
func (h *H) Logf(format string, args ...any) { h.logf(format, args...) }

// ExpectMismatch declares configdb verification verdicts (substrings)
// the final verification must raise.
func (h *H) ExpectMismatch(subs ...string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.expectMismatch = append(h.expectMismatch, subs...)
}

// GroundTruth snapshots the declared reality right now.
func (h *H) GroundTruth() *GroundTruth {
	h.mu.Lock()
	dead := make(map[string]bool, len(h.dead))
	for n, v := range h.dead {
		if v {
			dead[n] = true
		}
	}
	expect := append([]string(nil), h.expectMismatch...)
	h.mu.Unlock()
	return h.Spec.GroundTruth(h.F.VLANOf, dead, expect)
}

// KillNode drains the victim's trace feed, SIGKILLs it, and marks it
// dead in the ground truth.
func (h *H) KillNode(node string) error {
	h.S.Poll()
	if err := h.F.KillNode(node); err != nil {
		return err
	}
	h.S.Inject(trace.KFaultInjected, node, "harness: kill (SIGKILL)")
	h.mu.Lock()
	h.dead[node] = true
	h.mu.Unlock()
	return nil
}

// RestartNode boots a fresh incarnation and clears the dead mark.
func (h *H) RestartNode(node string) error {
	if err := h.F.RestartNode(node); err != nil {
		return err
	}
	h.S.Inject(trace.KFaultInjected, node, "harness: restart")
	h.mu.Lock()
	delete(h.dead, node)
	h.mu.Unlock()
	return nil
}

// PauseNode SIGSTOPs a node — the process freeze the loopback fabric
// uses as a recoverable fail-stop.
func (h *H) PauseNode(node string) error {
	d, ok := h.F.Live(node)
	if !ok {
		return fmt.Errorf("conformance: %s is not running", node)
	}
	h.S.Poll()
	if err := d.Signal(syscall.SIGSTOP); err != nil {
		return err
	}
	h.S.Inject(trace.KFaultInjected, node, "harness: pause (SIGSTOP)")
	return nil
}

// ResumeNode SIGCONTs a paused node.
func (h *H) ResumeNode(node string) error {
	d, ok := h.F.Live(node)
	if !ok {
		return fmt.Errorf("conformance: %s is not running", node)
	}
	if err := d.Signal(syscall.SIGCONT); err != nil {
		return err
	}
	h.S.Inject(trace.KFaultInjected, node, "harness: resume (SIGCONT)")
	return nil
}

// FailAdapter injects an adapter failure mode through the fabric.
func (h *H) FailAdapter(ip transport.IP, mode string, lossIn, lossOut float64) error {
	if err := h.F.FailAdapter(ip, mode, lossIn, lossOut); err != nil {
		return err
	}
	node, _, _ := h.Spec.Adapter(ip)
	h.S.Inject(trace.KFaultInjected, node,
		fmt.Sprintf("harness: adapter %v -> %s in=%.2f out=%.2f", ip, mode, lossIn, lossOut))
	return nil
}

// SurpriseMove re-plugs an adapter behind Central's back.
func (h *H) SurpriseMove(ip transport.IP, vlan int) error {
	if err := h.F.RescopeAdapter(ip, vlan); err != nil {
		return err
	}
	node, _, _ := h.Spec.Adapter(ip)
	h.S.Inject(trace.KFaultInjected, node,
		fmt.Sprintf("harness: surprise move %v -> vlan %d", ip, vlan))
	return nil
}

// PlannedMove asks the active Central to relocate a node's adapters
// (index -> new VLAN) through the switch agent, as the paper's §2.2
// dynamic reconfiguration.
func (h *H) PlannedMove(node string, vlanByIndex map[int]int) error {
	central, doc := h.activeCentral()
	if central == nil {
		return fmt.Errorf("conformance: no active Central for move (last: %+v)", doc)
	}
	var pairs []string
	idxs := make([]int, 0, len(vlanByIndex))
	for i := range vlanByIndex {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		pairs = append(pairs, fmt.Sprintf("%d:%d", i, vlanByIndex[i]))
	}
	q := url.Values{"node": {node}, "set": {strings.Join(pairs, ",")}}
	h.S.Inject(trace.KFaultInjected, node,
		fmt.Sprintf("harness: planned move set=%s via %s", strings.Join(pairs, ","), central.Node))
	return httpCommand(central.DebugURL()+"/fabricctl/move?"+q.Encode(), httpMoveTimeout)
}

// ActiveCentral names the node hosting the active Central ("" if none
// is reachable).
func (h *H) ActiveCentral() string {
	d, _ := h.activeCentral()
	if d == nil {
		return ""
	}
	return d.Node
}

// activeCentral polls every live daemon's /topology for the active
// Central instance.
func (h *H) activeCentral() (*Daemon, *TopologyDoc) {
	var last *TopologyDoc
	for _, d := range h.F.LiveDaemons() {
		var doc TopologyDoc
		if err := httpGetJSON(d.DebugURL()+"/topology", &doc, httpTimeout); err != nil {
			continue
		}
		last = &doc
		if doc.HostingCentral && doc.Active {
			return d, &doc
		}
	}
	return nil, last
}

// Topology fetches the active Central's topology document, optionally
// running configdb verification.
func (h *H) Topology(verify bool) (*TopologyDoc, error) {
	d, _ := h.activeCentral()
	if d == nil {
		return nil, fmt.Errorf("conformance: no active Central reachable")
	}
	u := d.DebugURL() + "/topology"
	if verify {
		u += "?verify=1"
	}
	var doc TopologyDoc
	if err := httpGetJSON(u, &doc, httpTimeout); err != nil {
		return nil, err
	}
	return &doc, nil
}

// WaitSettled polls until the active Central is stable and its
// discovered topology matches the ground truth (open incidents are
// allowed — a dead node legitimately keeps one open). Returns the last
// divergence on timeout.
func (h *H) WaitSettled(timeout time.Duration) error {
	return h.waitTopology(timeout, false)
}

// WaitConverged is WaitSettled plus "every incident closed" — the
// quiescent end state suites finish on.
func (h *H) WaitConverged(timeout time.Duration) error {
	return h.waitTopology(timeout, true)
}

func (h *H) waitTopology(timeout time.Duration, needClosed bool) error {
	deadline := time.Now().Add(timeout)
	lastWhy := "no active Central reachable"
	for {
		doc, err := h.Topology(false)
		switch {
		case err != nil:
			lastWhy = err.Error()
		case !doc.Stable:
			lastWhy = fmt.Sprintf("Central on %s not stable yet", doc.Node)
		case needClosed && len(doc.Incidents) > 0:
			lastWhy = fmt.Sprintf("open incidents: %v", doc.Incidents)
		default:
			if diff := h.GroundTruth().Diff(doc); len(diff) > 0 {
				lastWhy = strings.Join(diff, "; ")
			} else {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("conformance: not converged after %v: %s", timeout, lastWhy)
		}
		time.Sleep(500 * time.Millisecond)
	}
}

// WaitFor polls an arbitrary condition.
func (h *H) WaitFor(what string, timeout time.Duration, cond func() (bool, error)) error {
	deadline := time.Now().Add(timeout)
	var lastErr error
	for {
		ok, err := cond()
		if ok {
			return nil
		}
		lastErr = err
		if time.Now().After(deadline) {
			if lastErr != nil {
				return fmt.Errorf("conformance: timed out waiting for %s: %v", what, lastErr)
			}
			return fmt.Errorf("conformance: timed out waiting for %s", what)
		}
		time.Sleep(500 * time.Millisecond)
	}
}
