//go:build !linux && !darwin && !freebsd && !netbsd && !openbsd

package transport

import (
	"net"
	"syscall"
)

// setMulticastInterface is a no-op on platforms without the unix
// IP_MULTICAST_IF socket option path; the default multicast route is used.
func setMulticastInterface(_ *net.UDPConn, _ net.IP) error { return nil }

// reuseControl is a no-op on platforms without SO_REUSEADDR handling here.
func reuseControl(_, _ string, _ syscall.RawConn) error { return nil }
