// Package detect implements the failure-detection strategies GulfStream
// runs inside an Adapter Membership Group. The paper's prototype uses a
// logical heartbeat ring (§3, unidirectional or bidirectional); §4.2
// sketches two scalability alternatives — subgroup heartbeating and a
// randomized distributed pinging protocol (ref [9]) — and compares against
// the all-to-all heartbeating of systems like HACMP. All four are here,
// behind one interface, so the load/latency trade-offs can be measured
// against each other (experiment E5).
//
// Detectors only *suspect*; confirming a death (loopback self-test first,
// then the group leader's direct probe) is the daemon's job in
// internal/core.
package detect

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/amg"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Kind selects a detection strategy.
type Kind int

// Detector kinds.
const (
	// Ring: heartbeat the right neighbor, monitor the left (paper §3).
	Ring Kind = iota + 1
	// BiRing: heartbeat and monitor both neighbors; the leader requires a
	// consensus of two suspicions (paper §3's improvement).
	BiRing
	// AllToAll: every member heartbeats every other (HACMP-style baseline;
	// "scales poorly" per §5).
	AllToAll
	// RandPing: randomized distributed pinging with indirect probes
	// (paper §4.2, ref [9]).
	RandPing
	// Subgroup: tight rings inside small subgroups plus low-frequency
	// leader polling of each subgroup (paper §4.2).
	Subgroup
)

func (k Kind) String() string {
	switch k {
	case Ring:
		return "ring"
	case BiRing:
		return "biring"
	case AllToAll:
		return "all-to-all"
	case RandPing:
		return "randping"
	case Subgroup:
		return "subgroup"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind maps a name to a Kind.
func ParseKind(s string) (Kind, error) {
	for k := Ring; k <= Subgroup; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("detect: unknown detector %q", s)
}

// Params tunes a detector.
type Params struct {
	// Interval is the heartbeat (or ping-round) period Th.
	Interval time.Duration
	// MissThreshold is how many consecutive missed intervals mark a
	// neighbor suspect (the paper's "one strike and you're out" is 1).
	MissThreshold int
	// PingTimeout bounds a direct ping before indirect probing starts.
	PingTimeout time.Duration
	// Proxies is how many members relay an indirect ping.
	Proxies int
	// SubgroupSize bounds subgroup membership.
	SubgroupSize int
	// PollInterval is the leader's low-frequency subgroup poll period.
	PollInterval time.Duration
	// PollTimeout bounds one subgroup poll.
	PollTimeout time.Duration
}

// Defaults returns the parameter set used by the prototype experiments.
func Defaults() Params {
	return Params{
		Interval:      1 * time.Second,
		MissThreshold: 3,
		PingTimeout:   400 * time.Millisecond,
		Proxies:       2,
		SubgroupSize:  8,
		PollInterval:  5 * time.Second,
		PollTimeout:   1 * time.Second,
	}
}

// Env is what a detector may do to the world. The daemon's per-adapter
// protocol state implements it.
type Env interface {
	// Self returns the local adapter's address.
	Self() transport.IP
	// Clock returns the time source.
	Clock() transport.Clock
	// Rand returns the deterministic random source.
	Rand() *rand.Rand
	// Send transmits a message on the heartbeat plane.
	Send(dst transport.IP, m wire.Message)
	// ReportSuspect raises a suspicion about a member. The daemon runs
	// the loopback self-test and routes the report to the verifier.
	ReportSuspect(suspect transport.IP, reason wire.SuspectReason)
}

// Detector is a pluggable failure-detection strategy for one adapter.
type Detector interface {
	// Reconfigure installs a new committed membership view.
	Reconfigure(view amg.Membership)
	// Handle processes an incoming heartbeat-plane message, reporting
	// whether it consumed it.
	Handle(src transport.IP, m wire.Message) bool
	// Stop cancels all timers.
	Stop()
	// Kind identifies the strategy.
	Kind() Kind
}

// New constructs a detector of the given kind.
func New(kind Kind, p Params, env Env) Detector {
	switch kind {
	case Ring:
		return newRing(p, env, false)
	case BiRing:
		return newRing(p, env, true)
	case AllToAll:
		return newAllToAll(p, env)
	case RandPing:
		return newRandPing(p, env)
	case Subgroup:
		return newSubgroup(p, env)
	default:
		panic(fmt.Sprintf("detect: bad kind %d", kind))
	}
}

// monitorSet tracks last-heard times for a set of monitored peers. A
// suspicion is raised when a peer stays silent past the limit, and then
// re-raised periodically while the silence lasts — a single Suspect
// message to the leader may be lost, and a one-shot report would leave
// the failure undetected forever.
type monitorSet struct {
	lastSeen  map[transport.IP]time.Duration
	suspected map[transport.IP]time.Duration // last report time
}

func newMonitorSet() *monitorSet {
	return &monitorSet{
		lastSeen:  make(map[transport.IP]time.Duration),
		suspected: make(map[transport.IP]time.Duration),
	}
}

// watch begins monitoring ip as of now (grace: counts as just heard).
func (m *monitorSet) watch(ip transport.IP, now time.Duration) {
	if _, ok := m.lastSeen[ip]; !ok {
		m.lastSeen[ip] = now
	}
}

// reset replaces the watch set with ips.
func (m *monitorSet) reset(ips []transport.IP, now time.Duration) {
	keep := make(map[transport.IP]bool, len(ips))
	for _, ip := range ips {
		keep[ip] = true
	}
	for ip := range m.lastSeen {
		if !keep[ip] {
			delete(m.lastSeen, ip)
			delete(m.suspected, ip)
		}
	}
	for _, ip := range ips {
		m.watch(ip, now)
	}
}

// heard records a sign of life.
func (m *monitorSet) heard(ip transport.IP, now time.Duration) {
	if _, ok := m.lastSeen[ip]; ok {
		m.lastSeen[ip] = now
		delete(m.suspected, ip)
	}
}

// overdue returns peers silent longer than limit whose last report (if
// any) is at least reRaise old.
func (m *monitorSet) overdue(now, limit, reRaise time.Duration) []transport.IP {
	var out []transport.IP
	for ip, at := range m.lastSeen {
		if now-at <= limit {
			continue
		}
		if last, reported := m.suspected[ip]; reported && now-last < reRaise {
			continue
		}
		out = append(out, ip)
	}
	return out
}

func (m *monitorSet) markSuspected(ip transport.IP, now time.Duration) { m.suspected[ip] = now }
