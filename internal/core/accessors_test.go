package core

import (
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// Accessor and small-path coverage.

func TestDaemonAccessors(t *testing.T) {
	h := newHarness(t, 71)
	cfg := fastConfig()
	ips := h.singleSegment(cfg, 3)
	h.run(8 * time.Second)
	leaderIP := h.viewOf(ips[0]).Leader()
	for _, d := range h.daemons {
		if d.Node() == "" {
			t.Fatal("empty node name")
		}
		if d.Clock() == nil {
			t.Fatal("nil clock")
		}
		if d.Config().BeaconInterval != cfg.BeaconInterval {
			t.Fatal("config not round-tripped")
		}
		leading := d.Leading()
		if d.AdminIP() == leaderIP {
			if len(leading) != 1 || leading[0] != leaderIP {
				t.Fatalf("leader daemon Leading() = %v", leading)
			}
		} else if len(leading) != 0 {
			t.Fatalf("member daemon Leading() = %v", leading)
		}
	}
	// View of an unknown adapter.
	if _, ok := h.daemons["node-01"].View(ipn(9, 9)); ok {
		t.Fatal("unknown adapter had a view")
	}
	// State strings.
	for s := stIdle; s <= stLeader; s++ {
		if s.String() == "" {
			t.Fatal("empty state name")
		}
	}
}

// startChange while a round is in flight folds the changes into the dirty
// sets instead of clobbering the round.
func TestStartChangeWhileInFlight(t *testing.T) {
	h := newHarness(t, 72)
	cfg := fastConfig()
	// Members 10..13 so the phantom joiners below have LOWER addresses
	// (higher-IP joiners are deliberately ignored by queueJoin).
	var ips []transport.IP
	for i := 10; i <= 13; i++ {
		ip := ipn(0, byte(i))
		h.addNode(cfg, "n"+ip.String(), []transport.IP{ip}, []string{"admin"})
		ips = append(ips, ip)
	}
	for _, d := range h.daemons {
		d.Start()
	}
	h.run(8 * time.Second)
	leaderIP := h.viewOf(ips[0]).Leader()
	var leader *adapterProto
	for _, d := range h.daemons {
		if p, ok := d.byIP[leaderIP]; ok {
			leader = p
		}
	}
	// Open a round manually (a join of a phantom that will never ack, so
	// the round stays in flight briefly), then request another change.
	phantom := wire.Member{IP: ipn(0, 5), Node: "phantom"}
	target1 := leader.view.WithJoined(phantom)
	leader.lead.startChange(wire.OpJoin, target1)
	if leader.lead.round == nil {
		t.Fatal("no round in flight")
	}
	phantom2 := wire.Member{IP: ipn(0, 6), Node: "phantom2"}
	target2 := leader.view.WithJoined(phantom2)
	leader.lead.startChange(wire.OpJoin, target2)
	if _, queued := leader.lead.dirtyJoins[phantom2.IP]; !queued {
		t.Fatal("second change not folded into dirty set")
	}
	// Everything settles back to the real membership (phantoms never ack).
	h.run(30 * time.Second)
	h.assertOneGroup(ips)
}

// Daemon.Crash during an in-flight round must not fire timers afterwards.
func TestCrashCancelsEverything(t *testing.T) {
	h := newHarness(t, 73)
	cfg := fastConfig()
	h.singleSegment(cfg, 4)
	h.run(4 * time.Second) // mid-formation
	for _, d := range h.daemons {
		d.Crash()
	}
	fired := h.sched.Fired()
	h.run(30 * time.Second)
	// Network deliveries already queued may fire, but no daemon should
	// schedule new periodic work: the event count must flatline quickly.
	if h.sched.Fired()-fired > 200 {
		t.Fatalf("crashed daemons still active: %d events after crash", h.sched.Fired()-fired)
	}
}

// Double Start is a no-op; Start after Crash revives with a higher
// incarnation.
func TestStartIdempotentAndIncarnation(t *testing.T) {
	h := newHarness(t, 74)
	cfg := fastConfig()
	h.addNode(cfg, "solo", []transport.IP{ipn(0, 1)}, []string{"admin"})
	d := h.daemons["solo"]
	d.Start()
	inc1 := d.incarnation
	d.Start() // no-op
	if d.incarnation != inc1 {
		t.Fatal("double Start bumped incarnation")
	}
	d.Crash()
	d.Start()
	if d.incarnation != inc1+1 {
		t.Fatalf("incarnation after restart = %d, want %d", d.incarnation, inc1+1)
	}
	h.run(6 * time.Second)
	if v, ok := d.View(ipn(0, 1)); !ok || v.Size() != 1 {
		t.Fatalf("restarted solo daemon view = %v %v", v, ok)
	}
}
