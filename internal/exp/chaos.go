package exp

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/central"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/farm"
	"repro/internal/serve"
	"repro/internal/span"
)

// ChaosOptions parameterizes the chaos seed sweep (E15): N independent
// farms, each driven by a seed-derived fault schedule with the
// protocol-invariant engine watching every trace record.
type ChaosOptions struct {
	// From is the first seed; the sweep covers [From, From+Seeds).
	From int64
	// Seeds is how many schedules to explore.
	Seeds int
	// Rounds is the fault-injection count per schedule.
	Rounds int
	// Parallel bounds concurrent simulations (NumCPU when 0).
	Parallel int
	// Partition enables segment partition / drop-profile faults.
	Partition bool
	// Failover enables active-Central failover faults.
	Failover bool
	// Settle overrides the post-fault reconvergence window (0 = default).
	Settle time.Duration
	// SeedBug plants core.Config.UnsafeSkipVerify — the paper's §3
	// act-without-verification flaw — to demonstrate the harness catches
	// and shrinks a real protocol bug.
	SeedBug bool
	// Shrink ddmin-reduces each failing schedule to a minimal
	// reproduction.
	Shrink bool
	// ShrinkBudget bounds full re-simulations per shrink (24 when 0).
	ShrinkBudget int
	// ArtifactDir receives one reproduction file per failing seed
	// ("" disables).
	ArtifactDir string
}

// DefaultChaos sweeps 32 seeds with shrinking on.
func DefaultChaos() ChaosOptions {
	return ChaosOptions{From: 1000, Seeds: 32, Rounds: 25, Shrink: true}
}

// chaosSpec mirrors the farm shape of the in-tree chaos regression
// tests: two domains over seven-node switches, three management nodes,
// aggressive timers, flight recorder and journal on.
func chaosSpec(seed int64, seedBug bool) farm.Spec {
	cfg := core.DefaultConfig()
	cfg.BeaconPhase = 2 * time.Second
	cfg.BeaconInterval = 500 * time.Millisecond
	cfg.LeaderBeaconInterval = 1 * time.Second
	cfg.StableWait = 1 * time.Second
	cfg.DeferTimeout = 3 * time.Second
	cfg.DetectorParams.Interval = 500 * time.Millisecond
	cfg.OrphanTimeout = 6 * time.Second
	cfg.ConsensusWindow = 1 * time.Second
	cfg.EscalationPatience = 3 * time.Second
	cfg.UnsafeSkipVerify = seedBug
	cc := central.DefaultConfig()
	cc.StabilizeWait = 3 * time.Second
	return farm.Spec{
		Seed:       seed,
		AdminNodes: 3,
		Domains: []farm.DomainSpec{
			{Name: "acme", FrontEnds: 2, BackEnds: 3},
			{Name: "globex", FrontEnds: 2, BackEnds: 3},
		},
		NodesPerSwitch: 7,
		Core:           cfg,
		Central:        cc,
		StartSkew:      1 * time.Second,
		RecordEvents:   true,
		Trace:          true,
		Journal:        true,
	}
}

// chaosOutcome is one seed's result.
type chaosOutcome struct {
	seed       int64
	schedule   check.Schedule
	simTime    time.Duration
	wall       time.Duration
	violations []check.Violation
	dropped    int
	converge   []string
	err        error
	shrunk     *check.Schedule
	shrinkRuns int
}

func (c chaosOutcome) failed() bool {
	return c.err != nil || len(c.violations) > 0 || c.dropped > 0 || len(c.converge) > 0
}

// chaosRun executes one schedule against a fresh farm and reports what
// the invariant engine and the convergence assertions saw. When sched is
// nil the schedule is generated from the seed.
func chaosRun(o ChaosOptions, seed int64, sched *check.Schedule) chaosOutcome {
	out := chaosOutcome{seed: seed}
	start := time.Now()
	defer func() { out.wall = time.Since(start) }()

	f, err := farm.Build(chaosSpec(seed, o.SeedBug))
	if err != nil {
		out.err = err
		return out
	}
	engine := check.NewEngine(f)
	engine.Attach(f.Trace)
	// The span collector keeps every non-beacon record regardless of ring
	// capacity, so the timeline audit after the schedule settles sees the
	// whole run.
	coll := span.NewCollector(nil)
	coll.Attach("farm", f.Trace)
	f.Start()
	if _, ok := f.RunUntilStable(2 * time.Minute); !ok {
		out.err = fmt.Errorf("initial stabilization failed")
		return out
	}
	// A light serving plane rides along on a direct bus tap: after the
	// schedule settles, every backend still in rotation must actually
	// serve its domain — the end-to-end check that Central's
	// notifications were sufficient to route around the whole schedule.
	plane := f.AttachServe(serve.Config{Seed: seed, SessionsPerSec: 50}, nil)
	plane.Start()
	if sched == nil {
		s := check.Generate(seed, f.CheckTopology(), check.GenOpts{
			Rounds: o.Rounds, Partition: o.Partition, Failover: o.Failover,
		})
		if o.Settle > 0 {
			s.Settle = o.Settle
		}
		sched = &s
	}
	out.schedule = *sched
	before := f.Now()
	sched.Run(f)
	out.simTime = f.Now() - before
	out.violations = engine.Violations()
	out.dropped = engine.Dropped()
	out.converge = f.ConvergenceFailures()
	plane.Stop()
	// Only audit routing when the farm itself reconverged; a farm that is
	// still broken already fails above, and auditing it would just blame
	// the balancer for Central's unfinished business.
	if c := f.ActiveCentral(); c != nil && c.Stable() && plane.Drained() {
		out.converge = append(out.converge, plane.Audit(f)...)
		// Causal-timeline audit: every incident Central opened during the
		// schedule must have closed into a complete, gap-free span.
		out.converge = append(out.converge, span.Audit(coll.Records(), f)...)
	}
	return out
}

// Chaos sweeps the seeds in parallel, shrinks every failing schedule to
// a minimal reproduction, writes artifacts, and returns the table plus
// the number of failing seeds.
func Chaos(o ChaosOptions) (*Table, int, error) {
	if o.Seeds <= 0 {
		o.Seeds = 1
	}
	if o.Rounds <= 0 {
		o.Rounds = 25
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.NumCPU()
	}
	if o.ShrinkBudget <= 0 {
		o.ShrinkBudget = 24
	}

	outcomes := make([]chaosOutcome, o.Seeds)
	sem := make(chan struct{}, o.Parallel)
	var wg sync.WaitGroup
	for i := 0; i < o.Seeds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			outcomes[i] = chaosRun(o, o.From+int64(i), nil)
		}(i)
	}
	wg.Wait()

	// Shrinking re-runs full simulations; do it sequentially so the
	// sweep's parallelism doesn't multiply.
	failing := 0
	for i := range outcomes {
		out := &outcomes[i]
		if !out.failed() {
			continue
		}
		failing++
		if o.Shrink && (len(out.violations) > 0 || out.dropped > 0) && out.err == nil {
			min, runs := check.Shrink(out.schedule, func(c check.Schedule) bool {
				r := chaosRun(o, out.seed, &c)
				return len(r.violations) > 0 || r.dropped > 0
			}, o.ShrinkBudget)
			out.shrunk = &min
			out.shrinkRuns = runs
		}
		if o.ArtifactDir != "" {
			if err := writeChaosArtifact(o.ArtifactDir, *out); err != nil {
				return nil, failing, err
			}
		}
	}

	t := &Table{
		ID: "E15/chaos",
		Title: fmt.Sprintf("chaos seed sweep: %d seeds from %d, %d faults each",
			o.Seeds, o.From, o.Rounds),
		Columns: []string{"seed", "faults", "sim time(s)", "wall(s)", "violations", "converged", "shrunk to"},
	}
	for _, out := range outcomes {
		verdict, shrunk := "yes", ""
		switch {
		case out.err != nil:
			verdict = "ERROR: " + out.err.Error()
		case len(out.converge) > 0:
			verdict = fmt.Sprintf("NO (%d findings)", len(out.converge))
		}
		vio := fmt.Sprintf("%d", len(out.violations))
		if out.dropped > 0 {
			vio += fmt.Sprintf("(+%d dropped)", out.dropped)
		}
		if out.shrunk != nil {
			shrunk = fmt.Sprintf("%d ops in %d runs", len(out.shrunk.Ops), out.shrinkRuns)
		}
		t.AddRow(fmt.Sprintf("%d", out.seed), fmt.Sprintf("%d", len(out.schedule.Ops)),
			secs(out.simTime), fmt.Sprintf("%.1f", out.wall.Seconds()), vio, verdict, shrunk)
	}
	if failing == 0 {
		t.Note("all %d seeds: protocol invariants held continuously and every farm reconverged", o.Seeds)
	} else {
		t.Note("%d/%d seeds FAILED; reproduction artifacts in %s", failing, o.Seeds, o.ArtifactDir)
	}
	if o.SeedBug {
		t.Note("UnsafeSkipVerify planted: failures above demonstrate the harness catching the §3 flaw")
	}
	return t, failing, nil
}

// writeChaosArtifact records everything needed to replay one failing
// seed: the schedule DSL, the first violations with their trace windows,
// the convergence findings, and (when shrunk) the minimal reproduction
// as DSL and as a Go literal.
func writeChaosArtifact(dir string, out chaosOutcome) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# chaos reproduction, seed %d\n", out.seed)
	if out.err != nil {
		fmt.Fprintf(&b, "# run error: %v\n", out.err)
	}
	fmt.Fprintf(&b, "\n## schedule\n\n%s\n", out.schedule)
	if len(out.converge) > 0 {
		b.WriteString("## convergence failures\n\n")
		for _, m := range out.converge {
			fmt.Fprintf(&b, "  %s\n", m)
		}
		b.WriteString("\n")
	}
	if len(out.violations) > 0 {
		fmt.Fprintf(&b, "## invariant violations (%d", len(out.violations))
		if out.dropped > 0 {
			fmt.Fprintf(&b, ", +%d dropped", out.dropped)
		}
		b.WriteString(")\n\n")
		max := len(out.violations)
		if max > 5 {
			max = 5
		}
		for _, v := range out.violations[:max] {
			b.WriteString(v.Format())
			b.WriteString("\n\n")
		}
	}
	if out.shrunk != nil {
		fmt.Fprintf(&b, "## minimal reproduction (%d runs)\n\n%s\n## as Go literal\n\n%s\n",
			out.shrinkRuns, out.shrunk, out.shrunk.GoLiteral())
	}
	name := filepath.Join(dir, fmt.Sprintf("chaos-seed-%d.txt", out.seed))
	return os.WriteFile(name, []byte(b.String()), 0o644)
}
