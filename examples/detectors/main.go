// Detectors: the paper's failure-detection design space, side by side.
//
// Runs the same scenario — one AMG, one injected node failure, a lossy
// segment — under every detection strategy the paper discusses: the
// prototype's unidirectional ring, the bidirectional ring with the
// two-neighbor consensus (§3's improvement), the subgroup scheme and the
// randomized pinging protocol from §4.2, and the all-to-all baseline the
// related-work section criticizes. Prints detection latency, network
// load, and false-alarm behaviour for each.
//
// Run with:
//
//	go run ./examples/detectors
package main

import (
	"fmt"
	"log"
	"time"

	gulfstream "repro"
)

const (
	groupSize = 24
	loss      = 0.05 // 5% ambient packet loss
)

func main() {
	fmt.Printf("one AMG of %d adapters, %.0f%% packet loss, one node killed\n\n",
		groupSize, loss*100)
	fmt.Printf("%-12s %18s %18s %14s\n", "detector", "detect latency", "heartbeat msgs/s", "false alarms")
	fmt.Println("----------------------------------------------------------------------")
	for _, kind := range []gulfstream.DetectorKind{
		gulfstream.DetectorRing,
		gulfstream.DetectorBiRing,
		gulfstream.DetectorSubgroup,
		gulfstream.DetectorRandPing,
		gulfstream.DetectorAllToAll,
	} {
		lat, rate, falseAlarms := runOne(kind)
		latS := "undetected"
		if lat > 0 {
			latS = lat.Truncate(10 * time.Millisecond).String()
		}
		fmt.Printf("%-12s %18s %18.1f %14d\n", kind, latS, rate, falseAlarms)
	}
	fmt.Println()
	fmt.Println("ring/subgroup load is linear in members; all-to-all is quadratic (HACMP,")
	fmt.Println("per the paper, 'uses a form of heartbeating which scales poorly'); the")
	fmt.Println("leader's verification probe keeps false alarms from becoming false kills.")
}

func runOne(kind gulfstream.DetectorKind) (time.Duration, float64, int) {
	cfg := gulfstream.DefaultConfig()
	cfg.BeaconPhase = 3 * time.Second
	cfg.Detector = kind
	cfg.Consensus = kind == gulfstream.DetectorBiRing
	f, err := gulfstream.NewFarm(gulfstream.Spec{
		Seed:            77,
		UniformNodes:    groupSize,
		UniformAdapters: 1,
		Loss:            loss,
		Core:            cfg,
		RecordEvents:    true,
	})
	if err != nil {
		log.Fatal(err)
	}
	f.Start()
	f.RunFor(cfg.BeaconPhase + 15*time.Second) // settle
	f.Metrics.Reset(f.Sched.Now())
	f.RunFor(30 * time.Second) // steady-state load window
	hb := f.Metrics.PlaneCounter("heartbeat")
	rate := f.Metrics.Rate(hb.Messages, f.Sched.Now())

	victimNode := "node-011"
	victim := f.Nodes[victimNode].Adapters[0]
	killedAt := f.Sched.Now()
	if err := f.KillNode(victimNode); err != nil {
		log.Fatal(err)
	}
	f.RunFor(60 * time.Second)

	var lat time.Duration
	falseAlarms := 0
	for _, e := range f.Bus.Log() {
		if e.Kind != gulfstream.AdapterFailed || e.Time < killedAt {
			continue
		}
		if e.Adapter == victim {
			if lat == 0 {
				lat = e.Time - killedAt
			}
		} else {
			falseAlarms++
		}
	}
	return lat, rate, falseAlarms
}
