package conformance

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"time"
)

// ReadyInfo is the one-line JSON readiness message gsd writes on its
// -ready-fd descriptor once the protocol clock is running.
type ReadyInfo struct {
	Node        string   `json:"node"`
	PID         int      `json:"pid"`
	StartUnixNS int64    `json:"start_unix_ns"`
	Adapters    []string `json:"adapters"`
	DebugAddr   string   `json:"debug_addr"`
}

// readyTimeout bounds how long a daemon may take to report readiness.
const readyTimeout = 20 * time.Second

// Daemon is one incarnation of a gsd process under harness control.
// A restarted node gets a fresh Daemon with Gen+1; the scraper keeps
// every incarnation's trace stream as a separate source.
type Daemon struct {
	Node  string
	Gen   int
	Ready ReadyInfo
	Log   string // per-daemon log file path

	cmd  *exec.Cmd
	mu   sync.Mutex
	done bool
	err  error
	wait chan struct{}
}

// Source names this incarnation's trace stream ("web-1#2").
func (d *Daemon) Source() string { return fmt.Sprintf("%s#%d", d.Node, d.Gen) }

// DebugURL is the incarnation's debug endpoint base URL.
func (d *Daemon) DebugURL() string { return "http://" + d.Ready.DebugAddr }

// startDaemon launches argv[0] with the given arguments, wiring a pipe
// onto child fd 3 and waiting for the readiness line. Stdout/stderr go
// to logPath. The returned Daemon is running and ready.
func startDaemon(node string, gen int, argv []string, logPath string) (*Daemon, error) {
	pr, pw, err := os.Pipe()
	if err != nil {
		return nil, err
	}
	defer pr.Close()

	logf, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		pw.Close()
		return nil, err
	}
	defer logf.Close()

	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	cmd.ExtraFiles = []*os.File{pw} // child fd 3
	if err := cmd.Start(); err != nil {
		pw.Close()
		return nil, fmt.Errorf("conformance: start %s: %w", node, err)
	}
	pw.Close() // the child holds the write end now

	d := &Daemon{Node: node, Gen: gen, Log: logPath, cmd: cmd, wait: make(chan struct{})}
	go func() {
		err := cmd.Wait()
		d.mu.Lock()
		d.done, d.err = true, err
		d.mu.Unlock()
		close(d.wait)
	}()

	lineCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(pr)
		if sc.Scan() {
			lineCh <- sc.Text()
		}
		close(lineCh)
	}()
	select {
	case line, ok := <-lineCh:
		if !ok || line == "" {
			d.Kill()
			return nil, fmt.Errorf("conformance: %s exited before reporting ready (log: %s)", node, logPath)
		}
		if err := json.Unmarshal([]byte(line), &d.Ready); err != nil {
			d.Kill()
			return nil, fmt.Errorf("conformance: %s readiness line %q: %w", node, line, err)
		}
	case <-time.After(readyTimeout):
		d.Kill()
		return nil, fmt.Errorf("conformance: %s not ready within %v (log: %s)", node, readyTimeout, logPath)
	}
	if d.Ready.DebugAddr == "" {
		d.Kill()
		return nil, fmt.Errorf("conformance: %s reported no debug address", node)
	}
	return d, nil
}

// Alive reports whether the process is still running.
func (d *Daemon) Alive() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return !d.done
}

// Signal delivers a signal to the process (SIGSTOP/SIGCONT pauses).
func (d *Daemon) Signal(sig syscall.Signal) error {
	if !d.Alive() {
		return fmt.Errorf("conformance: %s already exited", d.Source())
	}
	return d.cmd.Process.Signal(sig)
}

// Kill SIGKILLs the process and reaps it — the fail-stop crash.
func (d *Daemon) Kill() {
	d.mu.Lock()
	done := d.done
	d.mu.Unlock()
	if !done {
		_ = d.cmd.Process.Kill()
		_ = d.cmd.Process.Signal(syscall.SIGCONT) // a stopped process ignores nothing but KILL+CONT
	}
	<-d.wait
}

// Stop SIGTERMs the process and verifies the deterministic clean exit.
func (d *Daemon) Stop(timeout time.Duration) error {
	if !d.Alive() {
		return nil
	}
	_ = d.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-d.wait:
		d.mu.Lock()
		err := d.err
		d.mu.Unlock()
		if err != nil {
			return fmt.Errorf("conformance: %s did not exit cleanly on SIGTERM: %w (log: %s)", d.Source(), err, d.Log)
		}
		return nil
	case <-time.After(timeout):
		d.Kill()
		return fmt.Errorf("conformance: %s ignored SIGTERM for %v, killed", d.Source(), timeout)
	}
}
