package trace

import (
	"strings"
	"testing"
)

// Every declared kind must have a non-empty, unique name — the table is
// positional, so appending a kind without a kindNames entry would render
// as "Kind(n)" in every dump and silently break name-based filters.
func TestKindNamesExhaustiveAndUnique(t *testing.T) {
	if int(kindMax) > len(kindNames) {
		t.Fatalf("kindNames has %d entries, need %d (a kind was added without a name)",
			len(kindNames), int(kindMax))
	}
	seen := make(map[string]Kind)
	for k := Kind(1); k < kindMax; k++ {
		name := kindNames[k]
		if name == "" {
			t.Errorf("kind %d has an empty kindNames entry", k)
			continue
		}
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("kind %d String() fell through to the numeric form", k)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("kinds %d and %d share the name %q", prev, k, name)
		}
		seen[name] = k
	}
}

// AutoDump must trigger for kinds >= 64: the trigger set used to be a
// single uint64, so any kind past the first word could never fire.
func TestAutoDumpHighKind(t *testing.T) {
	const high = Kind(200) // well past one uint64's worth of kinds
	r := New(16)
	var got []Record
	r.AutoDump(func(trigger Record, recent []Record) {
		got = append(got, trigger)
	}, high)

	r.Record(Record{Kind: KBeaconSent, Node: "a"}) // not in the trigger set
	if len(got) != 0 {
		t.Fatalf("dump fired for an unarmed kind: %v", got)
	}
	r.Record(Record{Kind: high, Node: "a"})
	if len(got) != 1 || got[0].Kind != high {
		t.Fatalf("dump did not fire for kind %d: got %v", high, got)
	}
}

// The dump trigger must also fire for the newest declared kinds (the
// ones the uint64 mask was about to outgrow) and keep working for low
// kinds after the widening.
func TestAutoDumpMixedKinds(t *testing.T) {
	r := New(16)
	fired := 0
	r.AutoDump(func(Record, []Record) { fired++ }, KOrphaned, KServeClean, Kind(130))
	r.Record(Record{Kind: KOrphaned})
	r.Record(Record{Kind: KServeClean})
	r.Record(Record{Kind: Kind(130)})
	r.Record(Record{Kind: KBeaconSent})
	if fired != 3 {
		t.Fatalf("fired %d times, want 3", fired)
	}
}
