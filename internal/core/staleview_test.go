package core

import (
	"testing"
	"time"

	"repro/internal/amg"
	"repro/internal/wire"
)

// The interlocked-stale-view wedge: after overlapping merges a member can
// hold a *different group's* view with the SAME version number, whose
// ring neighbors coincide with its real ones — heartbeats flow both ways
// and no suspicion ever fires. Only the group-identity (leader) carried
// in heartbeats exposes it. This test forges the wedge directly and
// checks the gossip + refresh machinery heals it.
func TestInterlockedStaleViewHeals(t *testing.T) {
	h := newHarness(t, 61)
	cfg := fastConfig()
	ips := h.singleSegment(cfg, 6)
	h.run(8 * time.Second)
	h.assertOneGroup(ips)
	real := h.viewOf(ips[0]) // led by 10.0.0.6, version 1

	// Forge: member 10.0.0.3 believes a parallel lineage led by 10.0.0.5
	// with the SAME version number, containing {5,4,3,2,1}. Its ring
	// neighbors there (4 and 2) equal its neighbors in the real 6-member
	// ring, so pure liveness monitoring can never notice.
	var victim *adapterProto
	for _, d := range h.daemons {
		if p, ok := d.byIP[ipn(0, 3)]; ok {
			victim = p
		}
	}
	var staleMembers []wire.Member
	for _, m := range real.Members {
		if m.IP != ipn(0, 6) {
			staleMembers = append(staleMembers, m)
		}
	}
	stale := amg.New(real.Version, staleMembers)
	stale.Version = real.Version
	sl, sr := stale.Neighbors(victim.self)
	rl, rr := real.Neighbors(victim.self)
	if sl != rl || sr != rr {
		t.Fatalf("fixture is not an interlock: stale neighbors %v/%v vs real %v/%v", sl, sr, rl, rr)
	}
	victim.view = stale
	victim.detector.Reconfigure(stale)

	// Heal: groupmates see its heartbeats claim leader 10.0.0.5, report
	// stale-view to 10.0.0.6, which refreshes the victim.
	h.run(10 * time.Second)
	got := h.viewOf(ipn(0, 3))
	if !got.Equal(h.viewOf(ips[0])) {
		t.Fatalf("stale member not healed: %v vs %v", got, h.viewOf(ips[0]))
	}
	h.assertOneGroup(ips)
}

// A stale-view report about a non-member triggers eviction, not refresh.
func TestStaleViewReportAboutStranger(t *testing.T) {
	h := newHarness(t, 62)
	cfg := fastConfig()
	ips := h.singleSegment(cfg, 4)
	h.run(8 * time.Second)
	leaderIP := h.viewOf(ips[0]).Leader()
	var leader *adapterProto
	for _, d := range h.daemons {
		if p, ok := d.byIP[leaderIP]; ok {
			leader = p
		}
	}
	// Forge a stale-view report about an address outside the group.
	stranger := ipn(0, 77)
	leader.lead.onSuspicion(&wire.Suspect{
		Reporter: ipn(0, 1), Suspect: stranger,
		Version: leader.view.Version, Reason: wire.ReasonStaleView,
	})
	// Nothing to assert beyond "no panic, no membership damage".
	h.run(5 * time.Second)
	h.assertOneGroup(ips)
}
