package core

import (
	"testing"
	"time"

	"repro/internal/transport"
)

// Two ring-adjacent members move segments together: they keep heartbeating
// each other, so the total-silence orphan path never fires. The §3.1
// escalation (probe leader, probe successor, conclude we moved) must kick
// in and both must end up in the new segment's group.
func TestAdjacentPairMoveEscalates(t *testing.T) {
	h := newHarness(t, 31)
	cfg := fastConfig()
	cfg.EscalationPatience = 3 * time.Second
	var segA, segB []transport.IP
	for i := 1; i <= 6; i++ {
		ip := ipn(1, byte(i))
		h.addNode(cfg, nodeName("a", i), []transport.IP{ip}, []string{"seg-a"})
		segA = append(segA, ip)
	}
	for i := 1; i <= 3; i++ {
		ip := ipn(2, byte(i))
		h.addNode(cfg, nodeName("b", i), []transport.IP{ip}, []string{"seg-b"})
		segB = append(segB, ip)
	}
	for _, d := range h.daemons {
		d.Start()
	}
	h.run(10 * time.Second)
	h.assertOneGroup(segA)
	h.assertOneGroup(segB)

	// Move ring-adjacent members 10.0.1.3 and 10.0.1.4 together.
	movers := []transport.IP{ipn(1, 3), ipn(1, 4)}
	for _, ip := range movers {
		h.res.Attach(ip, "seg-b")
	}
	h.run(45 * time.Second)

	var restA []transport.IP
	for _, ip := range segA {
		if ip != movers[0] && ip != movers[1] {
			restA = append(restA, ip)
		}
	}
	h.assertOneGroup(restA)
	h.assertOneGroup(append(append([]transport.IP{}, segB...), movers...))
}

// A group's LEADER moves segments: the isolation guard must stop it from
// declaring its whole group dead; it reforms as a fresh singleton, and
// the old group's successor takes over.
func TestMovedLeaderDoesNotMassKill(t *testing.T) {
	h := newHarness(t, 32)
	cfg := fastConfig()
	cfg.EscalationPatience = 3 * time.Second
	var segA, segB []transport.IP
	for i := 1; i <= 5; i++ {
		ip := ipn(1, byte(i))
		h.addNode(cfg, nodeName("a", i), []transport.IP{ip}, []string{"seg-a"})
		segA = append(segA, ip)
	}
	for i := 1; i <= 3; i++ {
		ip := ipn(2, byte(i))
		h.addNode(cfg, nodeName("b", i), []transport.IP{ip}, []string{"seg-b"})
		segB = append(segB, ip)
	}
	var deaths []transport.IP
	for _, d := range h.daemons {
		d.SetHooks(Hooks{Death: func(_, dead transport.IP) { deaths = append(deaths, dead) }})
	}
	for _, d := range h.daemons {
		d.Start()
	}
	h.run(10 * time.Second)
	leader := h.viewOf(segA[0]).Leader() // 10.0.1.5
	if leader != ipn(1, 5) {
		t.Fatalf("unexpected initial leader %v", leader)
	}
	// Move the leader to seg-b.
	h.res.Attach(leader, "seg-b")
	h.run(45 * time.Second)

	// Survivors recommitted under the old successor.
	var restA []transport.IP
	for _, ip := range segA {
		if ip != leader {
			restA = append(restA, ip)
		}
	}
	h.assertOneGroup(restA)
	// The moved leader joined seg-b's group.
	h.assertOneGroup(append(append([]transport.IP{}, segB...), leader))
	// The isolation guard: the moved leader must not have declared the
	// (alive) survivors dead. The survivors legitimately declare the
	// *leader* dead during takeover.
	for _, d := range deaths {
		if d != leader {
			t.Fatalf("moved leader mass-killed healthy member %v (deaths: %v)", d, deaths)
		}
	}
}

// A leader that genuinely loses every member to a real crash must not
// leak death reports it cannot verify: it reforms fresh, and the central
// hook shows the lineage break.
func TestLeaderSurvivesMassDeath(t *testing.T) {
	h := newHarness(t, 33)
	cfg := fastConfig()
	ips := h.singleSegment(cfg, 5)
	h.run(8 * time.Second)
	leader := h.viewOf(ips[0]).Leader()
	// Kill everyone except the leader, at once.
	for name, d := range h.daemons {
		if d.AdminIP() != leader {
			d.Crash()
			h.eps[d.AdminIP()].SetMode(1 /* netsim.FailStop */)
			_ = name
		}
	}
	h.run(30 * time.Second)
	v := h.viewOf(leader)
	if v.Size() != 1 || v.Leader() != leader {
		t.Fatalf("leader did not reform singleton: %v", v)
	}
}

// Escalation against a live leader must not destroy the group: a member
// with a stuck suspicion probes the leader, finds it alive, and stays.
func TestEscalationAgainstLiveLeaderHarmless(t *testing.T) {
	h := newHarness(t, 34)
	cfg := fastConfig()
	cfg.EscalationPatience = 2 * time.Second
	ips := h.singleSegment(cfg, 5)
	h.run(8 * time.Second)
	// Inject a bogus suspicion state directly: member 10.0.0.2 thinks it
	// reported something and nothing happened.
	var member *adapterProto
	for _, d := range h.daemons {
		if p, ok := d.byIP[ipn(0, 2)]; ok {
			member = p
		}
	}
	if member == nil || member.state != stMember {
		t.Fatal("fixture: 10.0.0.2 is not a member")
	}
	member.firstSuspicionAt = h.sched.Now()
	h.run(20 * time.Second)
	h.assertOneGroup(ips)
}

// Suspect messages carry versions; a leader receiving a heartbeat tagged
// with a stale version refreshes the member (lost-commit healing).
func TestStaleMemberRefreshedByLeader(t *testing.T) {
	h := newHarness(t, 35)
	cfg := fastConfig()
	ips := h.singleSegment(cfg, 4)
	h.run(8 * time.Second)
	// Bump the committed version past 1 (version 0 on the wire means
	// "unknown") by adding a late joiner.
	h.addNode(cfg, "late", []transport.IP{ipn(0, 40)}, []string{"admin"})
	h.daemons["late"].Start()
	h.run(10 * time.Second)
	ips = append(ips, ipn(0, 40))
	h.assertOneGroup(ips)
	leaderIP := h.viewOf(ips[0]).Leader()
	var leaderProto, memberProto *adapterProto
	for _, d := range h.daemons {
		if p, ok := d.byIP[leaderIP]; ok {
			leaderProto = p
		}
		if p, ok := d.byIP[ipn(0, 1)]; ok {
			memberProto = p
		}
	}
	// Forge a stale view on the member: wind its version back, detector
	// included (heartbeats advertise the detector's view version).
	old := memberProto.view
	stale := old
	stale.Version = old.Version - 1
	memberProto.view = stale
	memberProto.detector.Reconfigure(stale)
	// Its next heartbeats carry the stale version; the leader must push a
	// refresh Commit that restores the current view.
	h.run(10 * time.Second)
	if memberProto.view.Version != leaderProto.view.Version {
		t.Fatalf("stale member not refreshed: v%d vs leader v%d",
			memberProto.view.Version, leaderProto.view.Version)
	}
}

func nodeName(prefix string, i int) string {
	return prefix + "-" + string(rune('0'+i))
}

// Sanity: escalation fields reset on commit.
func TestSuspicionClockResetOnCommit(t *testing.T) {
	h := newHarness(t, 36)
	cfg := fastConfig()
	ips := h.singleSegment(cfg, 4)
	h.run(8 * time.Second)
	var member *adapterProto
	for _, d := range h.daemons {
		if p, ok := d.byIP[ipn(0, 1)]; ok {
			member = p
		}
	}
	member.firstSuspicionAt = h.sched.Now()
	// Force a commit by having a new node join.
	h.addNode(cfg, "late", []transport.IP{ipn(0, 99)}, []string{"admin"})
	h.daemons["late"].Start()
	h.run(15 * time.Second)
	if member.firstSuspicionAt != 0 {
		t.Fatal("suspicion clock survived a commit")
	}
	h.assertOneGroup(append(append([]transport.IP{}, ips...), ipn(0, 99)))
}
