package farm

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/netsim"
)

// Chaos test: a farm is subjected to a long random schedule of node
// kills, restarts, adapter failures of every mode, switch outages, and
// Central-initiated domain moves — then left alone. Afterwards the whole
// system must converge: every live adapter in exactly one group per
// segment, Central's view matching the daemons' views, verification
// clean, and no failure events for adapters that were healthy the whole
// time.
func TestChaosConvergence(t *testing.T) {
	for _, seed := range []int64{101, 202, 303, 404, 505} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			chaosRun(t, seed)
		})
	}
}

func chaosRun(t *testing.T, seed int64) {
	spec := fastSpec(seed)
	spec.AdminNodes = 3
	spec.Domains = []DomainSpec{
		{Name: "acme", FrontEnds: 2, BackEnds: 3},
		{Name: "globex", FrontEnds: 2, BackEnds: 3},
	}
	spec.NodesPerSwitch = 7
	spec.Core.EscalationPatience = 3 * time.Second
	f, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	if _, ok := f.RunUntilStable(2 * time.Minute); !ok {
		t.Fatal("initial stabilization failed")
	}
	rng := f.Sched.Rand()

	// Track which nodes were ever disturbed; untouched ones must never be
	// the subject of an (unsuppressed) failure event.
	disturbed := map[string]bool{}
	// Nodes that can be chaos targets (not management, to keep Central's
	// segment quorate enough for the run to stay observable).
	var targets []string
	for _, name := range f.order {
		if f.Nodes[name].Role != "admin" {
			targets = append(targets, name)
		}
	}
	down := map[string]bool{}

	const rounds = 25
	for i := 0; i < rounds; i++ {
		name := targets[rng.Intn(len(targets))]
		switch rng.Intn(5) {
		case 0: // kill
			if !down[name] {
				disturbed[name] = true
				down[name] = true
				if err := f.KillNode(name); err != nil {
					t.Fatal(err)
				}
			}
		case 1: // restart
			if down[name] {
				down[name] = false
				if err := f.RestartNode(name); err != nil {
					t.Fatal(err)
				}
			}
		case 2: // adapter failure mode roulette
			if !down[name] {
				disturbed[name] = true
				info := f.Nodes[name]
				ip := info.Adapters[rng.Intn(len(info.Adapters))]
				modes := []netsim.FailureMode{netsim.FailStop, netsim.FailRecv, netsim.FailSend}
				_ = f.FailAdapter(ip, modes[rng.Intn(len(modes))])
				// Heal it a bit later so the run can converge.
				f.Sched.AfterFunc(10*time.Second, func() { _ = f.FailAdapter(ip, netsim.Healthy) })
			}
		case 3: // domain move via Central
			info := f.Nodes[name]
			if !down[name] && (info.Role == "frontend" || info.Role == "backend") {
				disturbed[name] = true
				to := "acme"
				if info.Domain == "acme" {
					to = "globex"
				}
				_ = f.MoveNodeToDomain(name, to, nil)
			}
		case 4: // switch blink
			sw := f.Fabric.Switches()[rng.Intn(len(f.Fabric.Switches()))]
			swName := sw.Name()
			// Everything on that switch is disturbed.
			for _, n := range f.order {
				if f.Nodes[n].Switch == swName {
					disturbed[n] = true
				}
			}
			_ = f.KillSwitch(swName)
			f.Sched.AfterFunc(8*time.Second, func() { _ = f.RestoreSwitch(swName) })
		}
		f.RunFor(time.Duration(2+rng.Intn(6)) * time.Second)
	}
	// Revive everything and let the farm settle.
	for name := range down {
		if down[name] {
			_ = f.RestartNode(name)
		}
	}
	f.RunFor(3 * time.Minute)

	// 1. Every daemon's adapters are committed members of some group, and
	//    all adapters that share a segment share a view.
	bySegment := map[string]map[string]bool{} // segment -> set of view strings
	for _, name := range f.order {
		d := f.Daemons[name]
		if !d.Running() {
			t.Fatalf("node %s still down after revival", name)
		}
		for _, ip := range f.Nodes[name].Adapters {
			seg, connected := f.SegmentOf(ip)
			if !connected {
				t.Fatalf("adapter %v has no segment after chaos", ip)
			}
			v, ok := d.View(ip)
			if !ok {
				t.Fatalf("adapter %v (node %s) has no committed view", ip, name)
			}
			set := bySegment[seg]
			if set == nil {
				set = map[string]bool{}
				bySegment[seg] = set
			}
			set[v.String()] = true
		}
	}
	for seg, views := range bySegment {
		if len(views) != 1 {
			t.Fatalf("segment %s did not converge to one view: %v", seg, views)
		}
	}
	// 2. Central's view matches reality and verification is clean.
	c := f.ActiveCentral()
	if c == nil {
		t.Fatal("no active central after chaos")
	}
	if !c.Stable() {
		t.Fatal("central not stable after quiet period")
	}
	total := 0
	for _, members := range c.Groups() {
		total += len(members)
	}
	want := 0
	for _, name := range f.order {
		want += len(f.Nodes[name].Adapters)
	}
	if total != want {
		t.Fatalf("central tracks %d adapters, want %d (groups: %v)", total, want, c.Groups())
	}
	if ms := c.Verify(); len(ms) != 0 {
		t.Fatalf("post-chaos verification found: %v", ms)
	}
	// 3. Never-disturbed nodes must have no unsuppressed failure events.
	for _, e := range f.Bus.Filter(event.NodeFailed) {
		if !disturbed[e.Node] && !e.Suppressed {
			t.Fatalf("undisturbed node %s was declared failed: %v", e.Node, e)
		}
	}
}
