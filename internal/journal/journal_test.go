package journal

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

func ip(c, d byte) transport.IP { return transport.MakeIP(10, 0, c, d) }

func mem(c, d byte, node string) wire.Member {
	return wire.Member{IP: ip(c, d), Node: node, Index: 0, Admin: true}
}

func addr(c, d byte) transport.Addr {
	return transport.Addr{IP: ip(c, d), Port: transport.PortReport}
}

// drive applies a representative sequence of transitions to a journal.
func drive(j *Journal) {
	now := time.Duration(0)
	tick := func() time.Duration { now += time.Second; return now }
	j.GroupUpdate(tick(), ip(1, 9), 3, addr(1, 9),
		[]wire.Member{mem(1, 9, "n9"), mem(1, 5, "n5"), mem(1, 2, "n2")})
	j.GroupUpdate(tick(), ip(2, 7), 1, addr(2, 7),
		[]wire.Member{mem(2, 7, "m7"), mem(2, 3, "m3")})
	j.AdapterFlip(tick(), mem(1, 5, "n5"), false, ip(1, 9), now)
	j.GroupUpdate(tick(), ip(1, 9), 4, addr(1, 9),
		[]wire.Member{mem(1, 9, "n9"), mem(1, 2, "n2")})
	j.NodeFlip(tick(), "n5", true)
	j.SwitchFlip(tick(), "sw-00", true)
	j.SwitchFlip(tick(), "sw-00", false)
	j.MoveExpect(tick(), ip(2, 3), now+time.Minute)
	j.GroupRemove(tick(), ip(2, 7))
	j.AdapterFlip(tick(), mem(1, 5, "n5"), true, ip(1, 9), 0)
	j.NodeFlip(tick(), "n5", false)
	j.MoveDone(tick(), ip(2, 3))
	j.GroupUpdate(tick(), ip(2, 7), 2, addr(2, 7),
		[]wire.Member{mem(2, 7, "m7"), mem(2, 3, "m3"), mem(2, 1, "m1")})
}

func TestReplayEquivalence(t *testing.T) {
	store := NewMemStore()
	j, err := New(store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j.BeginEpoch()
	drive(j)

	// A second journal over the same store must fold to the same state.
	replayed, err := New(store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !replayed.Loaded() {
		t.Fatal("replayed journal does not report loaded state")
	}
	if !j.State().Equal(replayed.State()) {
		t.Fatalf("replayed state differs:\nlive %+v\nreplay %+v", j.State(), replayed.State())
	}
	if replayed.Seq() != j.Seq() || replayed.Epoch() != j.Epoch() {
		t.Fatalf("position differs: (%d,%d) vs (%d,%d)",
			replayed.Epoch(), replayed.Seq(), j.Epoch(), j.Seq())
	}
}

func TestCompactionPreservesState(t *testing.T) {
	// SnapEvery 3 forces several compactions during drive.
	store := NewMemStore()
	j, err := New(store, Options{SnapEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	j.BeginEpoch()
	drive(j)
	snap, recs, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if snap.State == nil {
		t.Fatal("no snapshot after compaction")
	}
	if len(recs) >= 13 {
		t.Fatalf("log not compacted: %d records retained", len(recs))
	}
	replayed, err := New(store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !j.State().Equal(replayed.State()) {
		t.Fatal("compacted replay diverges from live state")
	}
}

func TestIngestStreamMatchesSource(t *testing.T) {
	active := NewMem()
	active.BeginEpoch()
	standby := NewMem()

	// Bootstrap with a snapshot record, then stream the increments.
	if !standby.Ingest(active.SnapshotRecord(0)) {
		t.Fatal("snapshot rejected")
	}
	var streamed []Record
	now := time.Duration(0)
	commit := func(rec Record) { streamed = append(streamed, rec) }
	commit(active.GroupUpdate(now, ip(1, 9), 1, addr(1, 9),
		[]wire.Member{mem(1, 9, "n9"), mem(1, 2, "n2")}))
	commit(active.AdapterFlip(now, mem(1, 2, "n2"), false, ip(1, 9), now))
	commit(active.NodeFlip(now, "n2", true))
	for _, rec := range streamed {
		if !standby.Ingest(rec) {
			t.Fatalf("in-order record %d rejected", rec.Seq)
		}
	}
	if !active.State().Equal(standby.State()) {
		t.Fatal("standby state diverges from active")
	}
	for _, g := range standby.State().Groups {
		if !g.Streamed {
			t.Fatal("streamed group not marked streamed")
		}
	}
	// Out-of-order and duplicate records must be dropped.
	if standby.Ingest(Record{Epoch: active.Epoch(), Seq: active.Seq() + 5, Kind: RecNodeFlip, Node: "x", Dead: true}) {
		t.Fatal("gap record accepted")
	}
	if standby.Ingest(streamed[0]) {
		t.Fatal("duplicate record accepted")
	}
	if !active.State().Equal(standby.State()) {
		t.Fatal("rejected records mutated standby state")
	}
}

func TestRecordCodecRoundTrips(t *testing.T) {
	full := NewState()
	full.Groups[ip(3, 3)] = &GroupState{
		Leader: ip(3, 3), Version: 9, Src: addr(3, 3),
		Members: []wire.Member{mem(3, 3, "z3"), mem(3, 1, "z1")},
		Seq:     41, Epoch: 2,
	}
	full.Adapters[ip(3, 1)] = AdapterState{Member: mem(3, 1, "z1"), Alive: true, Group: ip(3, 3)}
	full.DeadNodes["z9"] = true
	full.DeadSwitches["sw-07"] = true
	full.ExpectedMoves[ip(3, 1)] = 90 * time.Second

	recs := []Record{
		{Epoch: 1, Seq: 1, Time: time.Second, Kind: RecGroupUpdate, Group: ip(1, 9), Version: 4,
			Src: addr(1, 9), Members: []wire.Member{mem(1, 9, "n9"), mem(1, 2, "n2")}},
		{Epoch: 1, Seq: 2, Time: 2 * time.Second, Kind: RecGroupRemove, Group: ip(1, 9)},
		{Epoch: 1, Seq: 3, Time: 3 * time.Second, Kind: RecAdapterFlip,
			Member: mem(1, 2, "n2"), Alive: false, Group: ip(1, 9), DiedAt: 3 * time.Second},
		{Epoch: 1, Seq: 4, Kind: RecNodeFlip, Node: "n2", Dead: true},
		{Epoch: 1, Seq: 5, Kind: RecSwitchFlip, Node: "sw-01", Dead: false},
		{Epoch: 1, Seq: 6, Kind: RecMoveExpect, Adapter: ip(1, 2), Deadline: time.Minute},
		{Epoch: 1, Seq: 7, Kind: RecMoveDone, Adapter: ip(1, 2)},
		{Epoch: 2, Seq: 7, Kind: RecSnapshot, Snap: full},
	}
	for _, rec := range recs {
		got, err := DecodeRecord(EncodeRecord(rec))
		if err != nil {
			t.Fatalf("%v: %v", rec.Kind, err)
		}
		if rec.Kind == RecSnapshot {
			if got.Snap == nil || !got.Snap.Equal(rec.Snap) {
				t.Fatalf("snapshot record corrupted: %+v", got.Snap)
			}
			got.Snap, rec.Snap = nil, nil
		}
		if !reflect.DeepEqual(rec, got) {
			t.Fatalf("%v round trip:\nsent %+v\ngot  %+v", rec.Kind, rec, got)
		}
	}
}

func TestRecordDecodeRejectsGarbage(t *testing.T) {
	rec := Record{Epoch: 1, Seq: 1, Kind: RecGroupUpdate, Group: ip(1, 1),
		Members: []wire.Member{mem(1, 1, "a")}}
	b := EncodeRecord(rec)
	for i := 1; i < len(b); i++ {
		if _, err := DecodeRecord(b[:i]); err == nil {
			t.Fatalf("prefix of length %d decoded", i)
		}
	}
	if _, err := DecodeRecord(append(b, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	bad := append([]byte(nil), b...)
	bad[1] = 0xEE
	if _, err := DecodeRecord(bad); err == nil {
		t.Fatal("unknown kind accepted")
	}
	bad = append([]byte(nil), b...)
	bad[0] = 9
	if _, err := DecodeRecord(bad); err == nil {
		t.Fatal("unknown version accepted")
	}
}

func TestKindStrings(t *testing.T) {
	for k := RecGroupUpdate; k <= RecSnapshot; k++ {
		if s := k.String(); s == "" || s[0] == 'K' {
			t.Fatalf("Kind(%d).String() = %q", k, s)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatal("unknown kind string wrong")
	}
}
