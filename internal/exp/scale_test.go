package exp

import (
	"testing"
	"time"
)

// scaleTestOptions shrinks the sweep to something a unit test can afford.
func scaleTestOptions() ScaleOptions {
	o := DefaultScale()
	o.Adapters = []int{60}
	o.Trials = 1
	o.Timeout = 5 * time.Minute
	return o
}

// TestScaleDeterminism runs identical configurations twice and demands
// bit-identical outcomes: same event count and same discovered topology.
// This is the standing guard that the kernel and message-plane
// optimizations never traded reproducibility for speed. Besides a toy
// size it covers the smallest real E14 sweep point (500 adapters); the
// larger points run the same code on more of the same nodes.
func TestScaleDeterminism(t *testing.T) {
	o := scaleTestOptions()
	sizes := []int{60, 500}
	if testing.Short() {
		sizes = sizes[:1]
	}
	for _, adapters := range sizes {
		a, err := ScaleTrialRun(o, adapters, o.Seed)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ScaleTrialRun(o, adapters, o.Seed)
		if err != nil {
			t.Fatal(err)
		}
		if a.Fired != b.Fired {
			t.Errorf("adapters=%d: same seed, different event counts: %d vs %d", adapters, a.Fired, b.Fired)
		}
		if a.StableSecs != b.StableSecs {
			t.Errorf("adapters=%d: same seed, different stabilization times: %v vs %v", adapters, a.StableSecs, b.StableSecs)
		}
		if a.TopoHash != b.TopoHash {
			t.Errorf("adapters=%d: same seed, different topologies: %#x vs %#x", adapters, a.TopoHash, b.TopoHash)
		}
		if a.TopoHash == 0 {
			t.Errorf("adapters=%d: topology hash is zero: Central view missing or empty", adapters)
		}
	}
}

// TestScaleSweep smoke-tests the full sweep machinery (aggregation, alloc
// accounting, table rendering) at a toy size.
func TestScaleSweep(t *testing.T) {
	o := scaleTestOptions()
	o.Trials = 2
	tab, err := Scale(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(tab.Rows))
	}
	pts, err := ScaleSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	pt := pts[0]
	if pt.Nodes != 30 || len(pt.Trials) != 2 {
		t.Fatalf("point = %+v, want 30 nodes x 2 trials", pt)
	}
	for _, tr := range pt.Trials {
		if tr.Fired == 0 || tr.EventsPerSec <= 0 {
			t.Errorf("trial %+v: no events measured", tr)
		}
	}
	if pt.AllocsPerEvent < 0 || pt.BytesPerEvent <= 0 {
		t.Errorf("alloc accounting broken: %+v", pt)
	}
}
