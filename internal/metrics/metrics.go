// Package metrics collects the measurements the paper's evaluation needs:
// message and byte counts per protocol plane and per segment, and latency
// samples with quantiles. A Registry taps directly into netsim traffic.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/netsim"
	"repro/internal/transport"
)

// Plane names traffic classes by destination port.
func Plane(port uint16) string {
	switch port {
	case transport.PortBeacon:
		return "beacon"
	case transport.PortMember:
		return "membership"
	case transport.PortHeartbeat:
		return "heartbeat"
	case transport.PortReport:
		return "report"
	case transport.PortJournal:
		return "journal"
	case transport.PortSNMP:
		return "snmp"
	default:
		return "other"
	}
}

// Counter accumulates message and byte totals.
type Counter struct {
	Messages uint64
	Bytes    uint64
	Dropped  uint64
}

func (c *Counter) add(bytes, dropped int) {
	c.Messages++
	c.Bytes += uint64(bytes)
	c.Dropped += uint64(dropped)
}

// Registry aggregates traffic counters. Not safe for concurrent use
// (simulation is single-threaded).
type Registry struct {
	byPlane   map[string]*Counter
	bySegment map[string]*Counter
	total     Counter
	since     time.Duration
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byPlane:   make(map[string]*Counter),
		bySegment: make(map[string]*Counter),
	}
}

// Attach installs the registry as net's traffic tap.
func (r *Registry) Attach(net *netsim.Network) {
	net.Tap(r.Observe)
}

// Observe records one transmission trace.
func (r *Registry) Observe(tr netsim.Trace) {
	r.total.add(tr.Bytes, tr.Dropped)
	p := Plane(tr.Dst.Port)
	c := r.byPlane[p]
	if c == nil {
		c = &Counter{}
		r.byPlane[p] = c
	}
	c.add(tr.Bytes, tr.Dropped)
	s := r.bySegment[tr.Segment]
	if s == nil {
		s = &Counter{}
		r.bySegment[tr.Segment] = s
	}
	s.add(tr.Bytes, tr.Dropped)
}

// Reset zeroes all counters and marks the window start.
func (r *Registry) Reset(now time.Duration) {
	r.byPlane = make(map[string]*Counter)
	r.bySegment = make(map[string]*Counter)
	r.total = Counter{}
	r.since = now
}

// Total returns the all-traffic counter.
func (r *Registry) Total() Counter { return r.total }

// PlaneCounter returns the counter for a protocol plane (zero if unseen).
func (r *Registry) PlaneCounter(plane string) Counter {
	if c := r.byPlane[plane]; c != nil {
		return *c
	}
	return Counter{}
}

// SegmentCounter returns the counter for a segment (zero if unseen).
func (r *Registry) SegmentCounter(seg string) Counter {
	if c := r.bySegment[seg]; c != nil {
		return *c
	}
	return Counter{}
}

// Rate converts a message count to messages/second over the window ending
// at now.
func (r *Registry) Rate(messages uint64, now time.Duration) float64 {
	w := now - r.since
	if w <= 0 {
		return 0
	}
	return float64(messages) / w.Seconds()
}

// Summary renders all planes in name order, for experiment output.
func (r *Registry) Summary() string {
	names := make([]string, 0, len(r.byPlane))
	for n := range r.byPlane {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		c := r.byPlane[n]
		fmt.Fprintf(&b, "%-12s %8d msgs %10d bytes %6d dropped\n", n, c.Messages, c.Bytes, c.Dropped)
	}
	return b.String()
}

// Latencies collects duration samples and reports order statistics.
type Latencies struct {
	samples []time.Duration
	sorted  bool
}

// Add records one sample.
func (l *Latencies) Add(d time.Duration) {
	l.samples = append(l.samples, d)
	l.sorted = false
}

// N returns the sample count.
func (l *Latencies) N() int { return len(l.samples) }

func (l *Latencies) sortSamples() {
	if !l.sorted {
		sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
		l.sorted = true
	}
}

// Quantile returns the q-th (0..1) order statistic, 0 with no samples.
func (l *Latencies) Quantile(q float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	l.sortSamples()
	idx := int(q * float64(len(l.samples)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(l.samples) {
		idx = len(l.samples) - 1
	}
	return l.samples[idx]
}

// Mean returns the arithmetic mean, 0 with no samples.
func (l *Latencies) Mean() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range l.samples {
		sum += s
	}
	return sum / time.Duration(len(l.samples))
}

// Max returns the largest sample.
func (l *Latencies) Max() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	l.sortSamples()
	return l.samples[len(l.samples)-1]
}

// Min returns the smallest sample.
func (l *Latencies) Min() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	l.sortSamples()
	return l.samples[0]
}
