package journal

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/wire"
)

func openFile(t *testing.T, dir string, snapEvery int) *Journal {
	t.Helper()
	store, err := NewFileStore(dir, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	j, err := New(store, Options{SnapEvery: snapEvery})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestFileStoreReplayEquivalence(t *testing.T) {
	dir := t.TempDir()
	j := openFile(t, dir, 0)
	j.BeginEpoch()
	drive(j)
	want := j.State()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	re := openFile(t, dir, 0)
	defer re.Close()
	if !re.Loaded() {
		t.Fatal("reopened journal reports no state")
	}
	if !want.Equal(re.State()) {
		t.Fatalf("reopened state differs:\nwant %+v\ngot  %+v", want, re.State())
	}
	if re.Seq() != j.Seq() || re.Epoch() != j.Epoch() {
		t.Fatalf("position differs: (%d,%d) vs (%d,%d)", re.Epoch(), re.Seq(), j.Epoch(), j.Seq())
	}
}

func TestFileStoreCompactionAndReopen(t *testing.T) {
	dir := t.TempDir()
	j := openFile(t, dir, 4) // compact every 4 records
	j.BeginEpoch()
	drive(j)
	want := j.State()
	j.Close()

	// The log must have been folded down.
	info, err := os.Stat(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() > 4*256 {
		t.Fatalf("log suspiciously large after compaction: %d bytes", info.Size())
	}
	re := openFile(t, dir, 4)
	defer re.Close()
	if !want.Equal(re.State()) {
		t.Fatal("compacted reopen diverges")
	}
}

func TestFileStoreTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	j := openFile(t, dir, 0)
	j.BeginEpoch()
	drive(j)
	wantSeq := j.Seq()
	j.Close()

	// Simulate a torn final write: chop bytes off the log tail.
	logPath := filepath.Join(dir, logName)
	buf, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logPath, buf[:len(buf)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	re := openFile(t, dir, 0)
	if re.Seq() != wantSeq-1 {
		t.Fatalf("recovered to seq %d, want %d (last whole record)", re.Seq(), wantSeq-1)
	}
	// The torn bytes must be gone from disk: appending a record and
	// reopening must replay cleanly past the old tear.
	re.GroupUpdate(time.Minute, ip(7, 7), 1, addr(7, 7), []wire.Member{mem(7, 7, "t7")})
	want := re.State()
	re.Close()
	re2 := openFile(t, dir, 0)
	defer re2.Close()
	if !want.Equal(re2.State()) {
		t.Fatal("replay after torn-tail repair diverges")
	}
	if re2.State().Groups[ip(7, 7)] == nil {
		t.Fatal("post-repair append lost")
	}
}

func TestFileStoreCorruptMiddleTruncatesFromThere(t *testing.T) {
	dir := t.TempDir()
	j := openFile(t, dir, 0)
	j.BeginEpoch()
	drive(j)
	j.Close()

	logPath := filepath.Join(dir, logName)
	buf, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the log: every record from the damaged
	// frame on is unusable, but the prefix must still replay.
	buf[len(buf)/2] ^= 0xFF
	if err := os.WriteFile(logPath, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	re := openFile(t, dir, 0)
	defer re.Close()
	if re.Seq() == 0 || re.Seq() >= j.Seq() {
		t.Fatalf("recovered seq %d, want a non-empty strict prefix of %d", re.Seq(), j.Seq())
	}
}

func TestFileStoreCorruptSnapshotDropsLog(t *testing.T) {
	dir := t.TempDir()
	j := openFile(t, dir, 3) // force a snapshot
	j.BeginEpoch()
	drive(j)
	j.Close()

	snapPath := filepath.Join(dir, snapName)
	buf, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xFF
	if err := os.WriteFile(snapPath, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	// Without its baseline the compacted log is meaningless: the journal
	// must come up empty rather than fold deltas onto nothing.
	re := openFile(t, dir, 3)
	defer re.Close()
	if re.Loaded() {
		t.Fatalf("journal trusted a log whose snapshot baseline is corrupt (seq %d)", re.Seq())
	}
}

func TestFileStoreEmptyDirIsFresh(t *testing.T) {
	j := openFile(t, t.TempDir(), 0)
	defer j.Close()
	if j.Loaded() || j.Seq() != 0 || j.Epoch() != 0 {
		t.Fatal("fresh dir reports state")
	}
}
