// Command gsctl is an interactive console for driving a simulated farm:
// build a farm, advance virtual time, inspect the discovered topology,
// inject faults, and trigger reconfigurations — a REPL version of the
// gsfarm scenario runner, useful for exploring protocol behaviour.
//
// Usage:
//
//	gsctl [-admin 2] [-domains acme:2:3,globex:2:3] [-uniform N[:adapters]] [-journal] [-trace=false]
//
// Commands: help, run <seconds>, status, groups, events [n], kill <node>,
// restart <node>, killsw <switch>, restoresw <switch>, move <node> <domain>,
// fail <adapter> <recv|send|stop|ok>, verify, journal, metrics, trace,
// timeline, health, quit.
// With -journal every node keeps a state journal; the journal command
// shows each node's replay position and who the warm standby is.
// The flight recorder is on by default: "trace [n]" shows the last n
// protocol transitions, "trace txns" the correlated 2PC timelines,
// "trace <filter>" records matching a kind/node substring, and
// "trace json" the raw dump; "timeline" stitches the recorder into
// end-to-end incident spans and "timeline <ref|incident>" renders one
// span's waterfall; "health" summarizes per-node daemon and adapter
// state.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	gulfstream "repro"
)

func main() {
	var (
		admin    = flag.Int("admin", 2, "administrative nodes")
		domains  = flag.String("domains", "acme:2:3,globex:2:3", "domains as name:frontends:backends,...")
		uniform  = flag.String("uniform", "", "uniform nodes as N[:adaptersPerNode] (replaces -domains)")
		journals = flag.Bool("journal", false, "give every node a state journal (inspect with the journal command)")
		traceOn  = flag.Bool("trace", true, "record protocol transitions in the flight recorder (inspect with the trace command)")
		traceCap = flag.Int("trace-cap", 0, "flight recorder ring capacity (0 = default)")
		seed     = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	spec := gulfstream.Spec{Seed: *seed, AdminNodes: *admin, StartSkew: 2 * time.Second,
		RecordEvents: true, Journal: *journals, Trace: *traceOn, TraceCapacity: *traceCap}
	if *uniform != "" {
		parts := strings.SplitN(*uniform, ":", 2)
		n, err := strconv.Atoi(parts[0])
		if err != nil {
			fatalf("bad -uniform: %v", err)
		}
		spec.UniformNodes = n
		spec.UniformAdapters = 3
		if len(parts) == 2 {
			if spec.UniformAdapters, err = strconv.Atoi(parts[1]); err != nil {
				fatalf("bad -uniform: %v", err)
			}
		}
	} else {
		for _, d := range strings.Split(*domains, ",") {
			p := strings.Split(d, ":")
			if len(p) != 3 {
				fatalf("bad domain %q (want name:fe:be)", d)
			}
			fe, err1 := strconv.Atoi(p[1])
			be, err2 := strconv.Atoi(p[2])
			if err1 != nil || err2 != nil {
				fatalf("bad domain %q", d)
			}
			spec.Domains = append(spec.Domains, gulfstream.DomainSpec{Name: p[0], FrontEnds: fe, BackEnds: be})
		}
	}
	f, err := gulfstream.NewFarm(spec)
	if err != nil {
		fatalf("build: %v", err)
	}
	f.Start()
	fmt.Printf("farm built (%d nodes); daemons booting. type 'run 30' then 'groups'. 'help' lists commands.\n", len(f.Nodes))
	repl(f, os.Stdin, os.Stdout)
}

// repl drives the farm from a command stream; factored out of main so it
// can be tested with scripted input.
func repl(f *gulfstream.Farm, in io.Reader, out io.Writer) {
	sc := bufio.NewScanner(in)
	eventCursor := 0
	for {
		fmt.Fprintf(out, "gsctl t=%v> ", f.Sched.Now().Truncate(time.Millisecond))
		if !sc.Scan() {
			return
		}
		args := strings.Fields(sc.Text())
		if len(args) == 0 {
			continue
		}
		switch args[0] {
		case "quit", "exit":
			return
		case "help":
			fmt.Fprintln(out, "run <s> | status | groups | events [n] | kill <node> | restart <node> |")
			fmt.Fprintln(out, "killsw <sw> | restoresw <sw> | move <node> <domain> | fail <adapter> <mode> |")
			fmt.Fprintln(out, "verify | journal | metrics | trace [n|txns|json|<filter>] |")
			fmt.Fprintln(out, "timeline [ref|incident] | health | quit")
		case "run":
			secs := 10.0
			if len(args) > 1 {
				secs, _ = strconv.ParseFloat(args[1], 64)
			}
			f.RunFor(time.Duration(secs * float64(time.Second)))
			fmt.Fprintf(out, "advanced to t=%v\n", f.Sched.Now())
		case "status":
			c := f.ActiveCentral()
			if c == nil {
				fmt.Fprintln(out, "no active GulfStream Central yet")
				continue
			}
			fmt.Fprintf(out, "central active; %d groups; stable=%v\n", c.GroupCount(), c.Stable())
		case "groups":
			c := f.ActiveCentral()
			if c == nil {
				fmt.Fprintln(out, "no active central")
				continue
			}
			groups := c.Groups()
			leaders := make([]gulfstream.IP, 0, len(groups))
			for l := range groups {
				leaders = append(leaders, l)
			}
			sort.Slice(leaders, func(i, j int) bool { return leaders[i] < leaders[j] })
			for _, l := range leaders {
				seg, _ := f.SegmentOf(l)
				fmt.Fprintf(out, "  %v (%s): %v\n", l, seg, groups[l])
			}
		case "events":
			n := 20
			if len(args) > 1 {
				n, _ = strconv.Atoi(args[1])
			}
			log := f.Bus.Log()
			start := eventCursor
			if len(log)-start > n {
				start = len(log) - n
			}
			for _, e := range log[start:] {
				fmt.Fprintf(out, "  %v\n", e)
			}
			eventCursor = len(log)
		case "kill":
			do(out, len(args) == 2, func() error { return f.KillNode(args[1]) })
		case "restart":
			do(out, len(args) == 2, func() error { return f.RestartNode(args[1]) })
		case "killsw":
			do(out, len(args) == 2, func() error { return f.KillSwitch(args[1]) })
		case "restoresw":
			do(out, len(args) == 2, func() error { return f.RestoreSwitch(args[1]) })
		case "move":
			do(out, len(args) == 3, func() error {
				return f.MoveNodeToDomain(args[1], args[2], func(err error) {
					if err != nil {
						fmt.Fprintf(out, "move failed: %v\n", err)
					} else {
						fmt.Fprintln(out, "SNMP reconfiguration complete")
					}
				})
			})
		case "fail":
			do(out, len(args) == 3, func() error {
				ip, ok := gulfstream.ParseIP(args[1])
				if !ok {
					return fmt.Errorf("bad adapter %q", args[1])
				}
				modes := map[string]gulfstream.FailureMode{
					"recv": gulfstream.FailRecv, "send": gulfstream.FailSend,
					"stop": gulfstream.FailStop, "ok": gulfstream.Healthy,
				}
				m, ok := modes[args[2]]
				if !ok {
					return fmt.Errorf("bad mode %q", args[2])
				}
				return f.FailAdapter(ip, m)
			})
		case "verify":
			c := f.ActiveCentral()
			if c == nil {
				fmt.Fprintln(out, "no active central")
				continue
			}
			ms := c.Verify()
			if len(ms) == 0 {
				fmt.Fprintln(out, "verification: clean")
			}
			for _, m := range ms {
				fmt.Fprintf(out, "  %v\n", m)
			}
		case "journal":
			if len(f.Journals) == 0 {
				fmt.Fprintln(out, "no journals (start gsctl with -journal)")
				continue
			}
			names := make([]string, 0, len(f.Journals))
			for name := range f.Journals {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				j := f.Journals[name]
				role := ""
				if d := f.Daemons[name]; d != nil && d.Running() && d.HostingCentral() {
					role = "  <- hosts Central"
				} else if j.Loaded() {
					role = "  <- warm standby"
				}
				fmt.Fprintf(out, "  %-12s epoch %-3d seq %-5d groups %-3d loaded=%v%s\n",
					name, j.Epoch(), j.Seq(), len(j.State().Groups), j.Loaded(), role)
			}
		case "metrics":
			fmt.Fprint(out, f.Metrics.Summary())
		case "trace":
			cmdTrace(f, out, args[1:])
		case "timeline":
			cmdTimeline(f, out, args[1:])
		case "health":
			cmdHealth(f, out)
		default:
			fmt.Fprintf(out, "unknown command %q (try help)\n", args[0])
		}
	}
}

// cmdTrace renders the flight recorder: the last n records, the
// correlated 2PC transaction timelines, a raw JSON dump, or records
// matching a kind/node substring filter.
func cmdTrace(f *gulfstream.Farm, out io.Writer, args []string) {
	if !f.Trace.Enabled() && f.Trace.Total() == 0 {
		fmt.Fprintln(out, "flight recorder disabled (start gsctl without -trace=false)")
		return
	}
	n := 20
	mode := ""
	if len(args) > 0 {
		if v, err := strconv.Atoi(args[0]); err == nil {
			n = v
		} else {
			mode = args[0]
		}
	}
	switch mode {
	case "json":
		if err := f.Trace.WriteJSON(out); err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
		}
	case "txns":
		txns := gulfstream.TraceTxns(f.Trace.Snapshot())
		if len(txns) > n {
			txns = txns[len(txns)-n:]
		}
		if len(txns) == 0 {
			fmt.Fprintln(out, "no 2PC transactions recorded")
			return
		}
		for _, t := range txns {
			fmt.Fprintf(out, "txn %s (%d records)\n", t.ID(), len(t.Records))
			for _, rec := range t.Records {
				fmt.Fprintf(out, "    %v\n", rec)
			}
		}
	case "":
		recs := f.Trace.Snapshot()
		if len(recs) > n {
			recs = recs[len(recs)-n:]
		}
		fmt.Fprintf(out, "%d captured, %d dropped; showing %d:\n",
			f.Trace.Total(), f.Trace.Dropped(), len(recs))
		for _, rec := range recs {
			fmt.Fprintf(out, "  %v\n", rec)
		}
	default:
		recs := f.Trace.Filter(func(rec gulfstream.TraceRecord) bool {
			return strings.Contains(rec.Kind.String(), mode) || rec.Node == mode
		})
		if len(recs) > n {
			recs = recs[len(recs)-n:]
		}
		fmt.Fprintf(out, "%d matching %q:\n", len(recs), mode)
		for _, rec := range recs {
			fmt.Fprintf(out, "  %v\n", rec)
		}
	}
}

// cmdTimeline stitches the flight recorder into end-to-end incident
// spans. With no argument it lists every span's one-line summary; with
// a span ref ("s3") or a Central incident id it renders that span's
// waterfall — one row per milestone with the latency attributed to the
// stage and a bar positioned on the span's own time axis.
func cmdTimeline(f *gulfstream.Farm, out io.Writer, args []string) {
	if !f.Trace.Enabled() && f.Trace.Total() == 0 {
		fmt.Fprintln(out, "flight recorder disabled (start gsctl without -trace=false)")
		return
	}
	spans := gulfstream.StitchSpans(f.Trace.Snapshot(), f)
	if len(spans) == 0 {
		fmt.Fprintln(out, "no spans stitched (no incidents in the retained trace window)")
		return
	}
	if len(args) == 0 {
		for _, sp := range spans {
			extra := ""
			if sp.Incident != 0 {
				extra = fmt.Sprintf("  incident=%d@%s", sp.Incident, sp.Central)
			}
			if !sp.Complete() {
				extra += fmt.Sprintf("  MISSING %v", sp.Missing)
			}
			fmt.Fprintf(out, "  %v%s\n", sp, extra)
		}
		fmt.Fprintln(out, "timeline <ref|incident> renders one span's waterfall")
		return
	}
	var sel *gulfstream.Span
	for _, sp := range spans {
		if sp.Ref == args[0] || (sp.Incident != 0 && strconv.FormatUint(sp.Incident, 10) == args[0]) {
			sel = sp
			break
		}
	}
	if sel == nil {
		fmt.Fprintf(out, "no span %q (bare timeline lists refs and incident ids)\n", args[0])
		return
	}
	fmt.Fprintf(out, "%v\n", sel)
	if sel.Incident != 0 {
		fmt.Fprintf(out, "  incident %d issued by Central on %s", sel.Incident, sel.Central)
		if sel.Closed {
			fmt.Fprintf(out, ", closed at %v", sel.ClosedAt)
		}
		fmt.Fprintln(out)
	}
	if sel.Domain != "" {
		fmt.Fprintf(out, "  serving domain: %s\n", sel.Domain)
	}
	const width = 44
	total := sel.Total()
	start := sel.Start()
	col := func(t time.Duration) int {
		if total <= 0 {
			return 0
		}
		c := int(float64(t-start) / float64(total) * width)
		if c > width {
			c = width
		}
		return c
	}
	for i, m := range sel.Milestones {
		from := m.T
		if i > 0 {
			from = sel.Milestones[i-1].T
		}
		a, b := col(from), col(m.T)
		bar := strings.Repeat(" ", a) + "|" + strings.Repeat("=", b-a)
		fmt.Fprintf(out, "  %-12s t=%-12v +%-10v %-20s %s\n",
			m.Stage, m.T, m.T-from, m.Node, bar)
	}
	if !sel.Complete() {
		fmt.Fprintf(out, "  missing stages: %v\n", sel.Missing)
	}
}

// cmdHealth summarizes each node: daemon liveness, per-adapter committed
// view, leadership, and who hosts Central.
func cmdHealth(f *gulfstream.Farm, out io.Writer) {
	names := make([]string, 0, len(f.Nodes))
	for name := range f.Nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		d := f.Daemons[name]
		status := "up"
		if !d.Running() {
			status = "DOWN"
		}
		host := ""
		if d.Running() && d.HostingCentral() {
			host = "  <- hosts Central"
		}
		fmt.Fprintf(out, "  %-12s %-4s%s\n", name, status, host)
		if !d.Running() {
			continue
		}
		leading := make(map[gulfstream.IP]bool)
		for _, ip := range d.Leading() {
			leading[ip] = true
		}
		for _, ip := range f.Nodes[name].Adapters {
			v, ok := d.View(ip)
			if !ok {
				fmt.Fprintf(out, "      %-15v (no committed view)\n", ip)
				continue
			}
			role := "member of " + v.Leader().String()
			if leading[ip] {
				role = "leader"
			}
			fmt.Fprintf(out, "      %-15v v%-4d %2d members  %s\n", ip, v.Version, v.Size(), role)
		}
	}
	if c := f.ActiveCentral(); c != nil {
		fmt.Fprintf(out, "  central: %d groups, stable=%v\n", c.GroupCount(), c.Stable())
	} else {
		fmt.Fprintln(out, "  central: none active")
	}
}

func do(out io.Writer, ok bool, fn func() error) {
	if !ok {
		fmt.Fprintln(out, "wrong arguments (try help)")
		return
	}
	if err := fn(); err != nil {
		fmt.Fprintf(out, "error: %v\n", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gsctl: "+format+"\n", args...)
	os.Exit(2)
}
