// Sharded parallel event kernel with conservative lookahead.
//
// Shards partitions a simulation into K independent Schedulers that
// advance in lockstep windows of width L (the lookahead): within a window
// [W, W+L) every shard executes only its own events, so shards never touch
// each other's state and the window bodies can run on parallel goroutines.
// Cross-shard interactions are expressed as posted events whose timestamps
// are at least one lookahead in the future (in a network simulation, L is
// the minimum cross-shard link latency, so every legal delivery satisfies
// this by construction). Posted events accumulate in per-(src,dst) queues
// during the window and are merged into the destination heaps at the
// window barrier in (time, source shard, post order) order — a fixed total
// order, so a run's result is independent of both the number of worker
// goroutines and whether the windows execute serially or in parallel.
//
// A shard count of 1 bypasses the window machinery entirely: Shards(1) is
// the plain single-threaded Scheduler, bit for bit, and shard 0 always
// keeps the root RNG seed so the degenerate kernel replays existing
// recorded runs unchanged. See DESIGN.md §13.
package sim

import (
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"
	"time"
)

// Splitmix64 is the SplitMix64 mixing function: a bijective finalizer
// with good avalanche behavior, used to derive independent seed streams
// from a root seed.
func Splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ShardSeed derives the RNG seed for one shard from the root seed. Shard 0
// keeps the root seed itself — a one-shard kernel must be bit-identical to
// the plain Scheduler, recorded hashes included — while every other shard
// draws from an independent splitmix-derived stream, so no shard's
// randomness depends on how a single-threaded run would have interleaved
// the draws.
func ShardSeed(seed int64, shard int) int64 {
	if shard == 0 {
		return seed
	}
	return int64(uint64(seed) ^ Splitmix64(uint64(shard)))
}

// xentry is one cross-shard event waiting in a per-pair queue. Its
// position in the queue is its sequence number: entries are appended in
// the source shard's execution order, which is already deterministic.
type xentry struct {
	at  time.Duration
	fn  func(any)
	arg any
}

// xqueue is the single-producer queue for one (src, dst) shard pair. The
// source shard appends during window execution; the barrier (all workers
// parked) drains it. The backing array is reused, so steady-state posting
// allocates nothing.
type xqueue struct {
	entries []xentry
}

// xmerge is one entry of the barrier's merge scratch: the queue entry plus
// its (source shard, sequence) tiebreak key.
type xmerge struct {
	at  time.Duration
	src int
	seq int
	fn  func(any)
	arg any
}

// xmergeList sorts merge entries by (time, source shard, sequence) — the
// deterministic cross-shard delivery order.
type xmergeList []xmerge

func (m *xmergeList) Len() int      { return len(*m) }
func (m *xmergeList) Swap(i, j int) { (*m)[i], (*m)[j] = (*m)[j], (*m)[i] }
func (m *xmergeList) Less(i, j int) bool {
	a, b := (*m)[i], (*m)[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// wcmd tells a worker to run its shard up to end; inclusive selects the
// boundary drain (events at exactly end run, RunUntil semantics) instead
// of the exclusive window body.
type wcmd struct {
	end       time.Duration
	inclusive bool
}

// Shards is the sharded kernel. It is driven from a single control
// goroutine (the RunUntil/RunFor caller); during a window each shard's
// events run either on that goroutine (serial mode) or on the shard's
// dedicated worker goroutine (parallel mode). The two modes produce
// identical simulations — windows make shards independent — so parallel
// execution is purely a wall-clock optimization.
type Shards struct {
	shards    []*Scheduler
	lookahead time.Duration
	now       time.Duration // committed global time (last barrier)
	windowEnd time.Duration // cross-post floor while a window runs
	pairs     [][]xqueue    // [src][dst] cross-shard queues
	hooks     []func()      // barrier hooks (run quiesced, before the merge)
	merge     xmergeList    // barrier scratch, reused
	parallel  bool
	running   atomic.Bool // a window is executing (workers live)
	run       []chan wcmd
	done      chan int
	halted    bool
}

// NewShards builds a kernel of n shards with the given lookahead. Shard
// i's Scheduler is seeded with ShardSeed(seed, i). A single shard needs no
// lookahead (there are no windows); n > 1 requires lookahead > 0.
func NewShards(seed int64, n int, lookahead time.Duration) *Shards {
	if n < 1 {
		panic("sim: NewShards with no shards")
	}
	if n > 1 && lookahead <= 0 {
		panic("sim: NewShards needs a positive lookahead for n > 1")
	}
	sh := &Shards{
		lookahead: lookahead,
		parallel:  n > 1 && runtime.GOMAXPROCS(0) > 1,
	}
	for i := 0; i < n; i++ {
		sh.shards = append(sh.shards, NewScheduler(ShardSeed(seed, i)))
	}
	sh.pairs = make([][]xqueue, n)
	for i := range sh.pairs {
		sh.pairs[i] = make([]xqueue, n)
	}
	return sh
}

// N returns the shard count.
func (sh *Shards) N() int { return len(sh.shards) }

// Shard returns shard i's Scheduler. During a window, shard i's events may
// use it freely (it is theirs); other shards must not touch it.
func (sh *Shards) Shard(i int) *Scheduler { return sh.shards[i] }

// Lookahead returns the window width.
func (sh *Shards) Lookahead() time.Duration { return sh.lookahead }

// SetParallel selects worker-goroutine (true) or serial (false) window
// execution. The simulation result is identical either way; serial mode
// avoids synchronization overhead on single-core hosts, parallel mode is
// the point of the exercise everywhere else. The default is parallel when
// GOMAXPROCS > 1 and more than one shard exists.
func (sh *Shards) SetParallel(p bool) { sh.parallel = p && len(sh.shards) > 1 }

// Parallel reports the current execution mode.
func (sh *Shards) Parallel() bool { return sh.parallel }

// Running reports whether a window is currently executing (worker
// goroutines live). Shared read-mostly structures may only be rebuilt
// while this is false.
func (sh *Shards) Running() bool { return sh.running.Load() }

// OnBarrier registers fn to run at every window barrier, after all shards
// have parked and before the kernel's own cross-event merge. Hooks run on
// the control goroutine with the kernel quiesced — the place to exchange
// higher-level cross-shard state (netsim flushes its delivery bundles
// here).
func (sh *Shards) OnBarrier(fn func()) { sh.hooks = append(sh.hooks, fn) }

// Now returns the committed global time: every shard has executed all its
// events strictly before this instant.
func (sh *Shards) Now() time.Duration {
	if len(sh.shards) == 1 {
		return sh.shards[0].Now()
	}
	return sh.now
}

// Fired reports the total events executed across all shards.
func (sh *Shards) Fired() uint64 {
	var n uint64
	for _, s := range sh.shards {
		n += s.Fired()
	}
	return n
}

// Pending reports the total events queued across all shards.
func (sh *Shards) Pending() int {
	n := 0
	for _, s := range sh.shards {
		n += s.Pending()
	}
	return n
}

// Post schedules fn(arg) at absolute time at on shard dst, on behalf of
// shard src. During a window, at must not precede the window's end — the
// conservative-lookahead contract; a violation means the caller's latency
// model is shorter than the lookahead and the run would not be
// deterministic, so Post panics rather than silently reordering. Posted
// events are merged into dst at the next barrier in (time, src, post
// order) order. Steady-state posting allocates nothing: the per-pair
// queues reuse their backing arrays.
func (sh *Shards) Post(src, dst int, at time.Duration, fn func(any), arg any) {
	if at < sh.windowEnd {
		panic(fmt.Sprintf("sim: cross-shard post at %v violates lookahead window ending %v", at, sh.windowEnd))
	}
	if len(sh.shards) == 1 {
		// Degenerate kernel: no windows, no barriers — inject directly,
		// sequenced at post time like any other schedule.
		sh.shards[0].PostAt(at, fn, arg)
		return
	}
	q := &sh.pairs[src][dst]
	q.entries = append(q.entries, xentry{at: at, fn: fn, arg: arg})
}

// earliest returns the earliest queued event time across shards.
func (sh *Shards) earliest() (time.Duration, bool) {
	var min time.Duration
	ok := false
	for _, s := range sh.shards {
		if len(s.queue) == 0 {
			continue
		}
		if !ok || s.queue[0].at < min {
			min = s.queue[0].at
			ok = true
		}
	}
	return min, ok
}

// runSpan executes one window on every shard (exclusive of end, or
// inclusive for the boundary drain) and runs the barrier.
func (sh *Shards) runSpan(end time.Duration, inclusive bool) {
	sh.windowEnd = end
	sh.running.Store(true)
	if sh.parallel {
		sh.startWorkers()
		cmd := wcmd{end: end, inclusive: inclusive}
		for _, ch := range sh.run {
			ch <- cmd
		}
		for range sh.run {
			<-sh.done
		}
	} else {
		for _, s := range sh.shards {
			if inclusive {
				s.RunUntil(end)
			} else {
				s.runWindow(end)
			}
		}
	}
	sh.running.Store(false)
	// Barrier: all shards parked at end. Higher-level exchanges first,
	// then the kernel's own cross-event merge.
	for _, fn := range sh.hooks {
		fn()
	}
	sh.exchange()
	sh.now = end
	sh.windowEnd = 0
}

// startWorkers lazily spawns one persistent goroutine per shard.
func (sh *Shards) startWorkers() {
	if sh.run != nil {
		return
	}
	sh.run = make([]chan wcmd, len(sh.shards))
	sh.done = make(chan int, len(sh.shards))
	for i := range sh.shards {
		ch := make(chan wcmd)
		sh.run[i] = ch
		go func(s *Scheduler, ch chan wcmd) {
			for cmd := range ch {
				if cmd.inclusive {
					s.RunUntil(cmd.end)
				} else {
					s.runWindow(cmd.end)
				}
				sh.done <- 0
			}
		}(sh.shards[i], ch)
	}
}

// exchange merges every pending cross-shard event into its destination
// heap in (time, source shard, post order) order. It runs quiesced and is
// allocation-free in the steady state (queue arrays and the merge scratch
// are reused).
func (sh *Shards) exchange() {
	for dst := range sh.shards {
		m := sh.merge[:0]
		for src := range sh.shards {
			q := &sh.pairs[src][dst]
			for i := range q.entries {
				e := &q.entries[i]
				m = append(m, xmerge{at: e.at, src: src, seq: i, fn: e.fn, arg: e.arg})
			}
		}
		if len(m) == 0 {
			sh.merge = m
			continue
		}
		sh.merge = m
		sort.Sort(&sh.merge)
		s := sh.shards[dst]
		for i := range sh.merge {
			e := &sh.merge[i]
			s.PostAt(e.at, e.fn, e.arg)
			e.fn, e.arg = nil, nil
		}
		for src := range sh.shards {
			q := &sh.pairs[src][dst]
			for i := range q.entries {
				q.entries[i].fn, q.entries[i].arg = nil, nil
			}
			q.entries = q.entries[:0]
		}
		sh.merge = sh.merge[:0]
	}
}

// RunUntil executes events with timestamps <= deadline on every shard,
// windows and barriers included, then advances the committed clock to
// deadline — the sharded equivalent of Scheduler.RunUntil. Windows cover
// [now, deadline) exclusively; a final inclusive drain runs events at
// exactly the deadline (and any same-instant chains they schedule), so
// back-to-back RunUntil calls observe the same states a single-threaded
// kernel would.
func (sh *Shards) RunUntil(deadline time.Duration) {
	if len(sh.shards) == 1 {
		sh.shards[0].RunUntil(deadline)
		sh.now = sh.shards[0].Now()
		return
	}
	sh.halted = false
	for !sh.halted && sh.now < deadline {
		start := sh.now
		next, ok := sh.earliest()
		if !ok || next >= deadline {
			break // nothing strictly before the deadline; drain handles the rest
		}
		if next > start {
			start = next // jump idle gaps: no events, hence no posts, in between
		}
		end := start + sh.lookahead
		if end > deadline {
			end = deadline
		}
		sh.runSpan(end, false)
	}
	if sh.halted {
		return
	}
	sh.runSpan(deadline, true)
}

// RunFor advances the sharded simulation by d.
func (sh *Shards) RunFor(d time.Duration) { sh.RunUntil(sh.Now() + d) }

// Run executes events until every shard's queue is empty.
func (sh *Shards) Run() {
	if len(sh.shards) == 1 {
		sh.shards[0].Run()
		sh.now = sh.shards[0].Now()
		return
	}
	sh.halted = false
	for !sh.halted {
		next, ok := sh.earliest()
		if !ok {
			return
		}
		sh.RunUntil(next + sh.lookahead)
	}
}

// Halt stops RunUntil/Run after the current window completes. Unlike
// Scheduler.Halt it cannot interrupt a window from inside an event
// callback — windows are the atomic unit of sharded execution.
func (sh *Shards) Halt() { sh.halted = true }

// Stop terminates the worker goroutines. The kernel remains usable in
// serial mode; workers respawn on the next parallel window.
func (sh *Shards) Stop() {
	if sh.run == nil {
		return
	}
	for _, ch := range sh.run {
		close(ch)
	}
	sh.run, sh.done = nil, nil
}

// String describes the kernel state, for debugging.
func (sh *Shards) String() string {
	return fmt.Sprintf("sim.Shards{n=%d now=%v pending=%d fired=%d lookahead=%v parallel=%v}",
		len(sh.shards), sh.Now(), sh.Pending(), sh.Fired(), sh.lookahead, sh.parallel)
}
