package journal

import (
	"fmt"
	"os"
	"path/filepath"
)

// FileStore persists the journal in a directory:
//
//	<dir>/snapshot.gsj — one CRC frame holding the snapshot basis
//	<dir>/journal.gsj  — CRC frames, one record each, appended in order
//
// Snapshots are written to a temp file and renamed into place, so a crash
// mid-snapshot leaves the previous basis intact. Appends are frames too:
// a torn tail (partial write on crash) fails its length or CRC check and
// Load truncates the log back to the last whole record.
type FileStore struct {
	dir  string
	sync bool
	log  *os.File
}

// FileOptions tunes a FileStore.
type FileOptions struct {
	// Sync fsyncs the log after every append. Durable against power loss,
	// but costs a disk flush per state transition.
	Sync bool
}

const (
	snapName = "snapshot.gsj"
	logName  = "journal.gsj"
)

// NewFileStore opens (creating if needed) a journal directory.
func NewFileStore(dir string, opts FileOptions) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &FileStore{dir: dir, sync: opts.Sync}, nil
}

func (f *FileStore) snapPath() string { return filepath.Join(f.dir, snapName) }
func (f *FileStore) logPath() string  { return filepath.Join(f.dir, logName) }

// openLog lazily opens the append handle.
func (f *FileStore) openLog() error {
	if f.log != nil {
		return nil
	}
	lf, err := os.OpenFile(f.logPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	f.log = lf
	return nil
}

// Append implements Store.
func (f *FileStore) Append(rec Record) error {
	if err := f.openLog(); err != nil {
		return err
	}
	frame := appendFrame(nil, EncodeRecord(rec))
	if _, err := f.log.Write(frame); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if f.sync {
		if err := f.log.Sync(); err != nil {
			return fmt.Errorf("journal: sync: %w", err)
		}
	}
	return nil
}

// SetSnapshot implements Store: atomically replace the basis, then reset
// the log.
func (f *FileStore) SetSnapshot(snap Snapshot) error {
	rec := Record{Epoch: snap.Epoch, Seq: snap.Seq, Kind: RecSnapshot, Snap: snap.State}
	frame := appendFrame(nil, EncodeRecord(rec))
	tmp := f.snapPath() + ".tmp"
	if err := os.WriteFile(tmp, frame, 0o644); err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	if err := os.Rename(tmp, f.snapPath()); err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	// The snapshot covers everything appended so far; start the log over.
	if f.log != nil {
		_ = f.log.Close()
		f.log = nil
	}
	if err := os.Truncate(f.logPath(), 0); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("journal: truncate: %w", err)
	}
	return nil
}

// Load implements Store. A torn or corrupt log tail is truncated away; a
// corrupt snapshot is treated as absent (and the log, whose baseline it
// was, is discarded with it).
func (f *FileStore) Load() (Snapshot, []Record, error) {
	var snap Snapshot
	if buf, err := os.ReadFile(f.snapPath()); err == nil {
		if payload, _, ok := readFrame(buf, 0); ok {
			if rec, err := DecodeRecord(payload); err == nil && rec.Kind == RecSnapshot {
				snap = Snapshot{Epoch: rec.Epoch, Seq: rec.Seq, State: rec.Snap}
			}
		}
	} else if !os.IsNotExist(err) {
		return snap, nil, fmt.Errorf("journal: %w", err)
	}

	buf, err := os.ReadFile(f.logPath())
	if err != nil {
		if os.IsNotExist(err) {
			return snap, nil, nil
		}
		return snap, nil, fmt.Errorf("journal: %w", err)
	}
	var recs []Record
	off := 0
	for off < len(buf) {
		payload, next, ok := readFrame(buf, off)
		if !ok {
			// Torn tail: keep the whole records, drop the rest on disk so
			// subsequent appends continue from a clean boundary.
			_ = os.Truncate(f.logPath(), int64(off))
			break
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			// A framed-but-unparseable record also ends the usable log.
			_ = os.Truncate(f.logPath(), int64(off))
			break
		}
		recs = append(recs, rec)
		off = next
	}
	// Keep only the contiguous run that extends the snapshot basis (seq
	// snap.Seq+1, snap.Seq+2, ...). Anything else — records predating the
	// basis, or a gap after a partial truncation — is unusable.
	kept := recs[:0]
	next := snap.Seq + 1
	if snap.State == nil {
		next = 1 // no basis: only a log self-contained from seq 1 replays
	}
	for _, rec := range recs {
		if rec.Seq != next {
			break
		}
		kept = append(kept, rec)
		next++
	}
	return snap, kept, nil
}

// Close implements Store.
func (f *FileStore) Close() error {
	if f.log != nil {
		err := f.log.Close()
		f.log = nil
		return err
	}
	return nil
}
