// Package amg holds the Adapter Membership Group data structures: the
// versioned, IP-ordered member list that a two-phase commit disseminates,
// and the ring/succession/subgroup math derived from it. The ordering is
// the protocol: Members[0] is the leader (highest IP), Members[1] the
// successor, and heartbeats flow around the list order (paper §2.1, §3).
package amg

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/transport"
	"repro/internal/wire"
)

// Membership is one committed AMG membership view.
type Membership struct {
	Version uint64
	Members []wire.Member // strictly descending by IP
}

// New builds a sorted membership at the given version. Duplicate IPs are
// collapsed (last write wins). A members slice that is already strictly
// descending by IP — the wire order of every view-carrying message, since
// senders serialize their own sorted view — is adopted without copying;
// the caller must not modify it afterwards.
func New(version uint64, members []wire.Member) Membership {
	sorted := true
	for i := 1; i < len(members); i++ {
		if members[i-1].IP <= members[i].IP {
			sorted = false
			break
		}
	}
	if sorted {
		return Membership{Version: version, Members: members}
	}
	byIP := make(map[transport.IP]wire.Member, len(members))
	for _, m := range members {
		byIP[m.IP] = m
	}
	out := make([]wire.Member, 0, len(byIP))
	for _, m := range byIP {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IP > out[j].IP })
	return Membership{Version: version, Members: out}
}

// Size returns the member count.
func (g Membership) Size() int { return len(g.Members) }

// Leader returns the highest-IP member's address (0 for an empty group).
func (g Membership) Leader() transport.IP {
	if len(g.Members) == 0 {
		return 0
	}
	return g.Members[0].IP
}

// Successor returns the second-ranked member — the adapter that verifies a
// leader death and takes over (paper §2.1). Zero if the group has < 2.
func (g Membership) Successor() transport.IP {
	if len(g.Members) < 2 {
		return 0
	}
	return g.Members[1].IP
}

// IndexOf returns the member's rank, or -1.
func (g Membership) IndexOf(ip transport.IP) int {
	i := sort.Search(len(g.Members), func(i int) bool { return g.Members[i].IP <= ip })
	if i < len(g.Members) && g.Members[i].IP == ip {
		return i
	}
	return -1
}

// Contains reports membership.
func (g Membership) Contains(ip transport.IP) bool { return g.IndexOf(ip) >= 0 }

// Member returns the record for ip.
func (g Membership) Member(ip transport.IP) (wire.Member, bool) {
	if i := g.IndexOf(ip); i >= 0 {
		return g.Members[i], true
	}
	return wire.Member{}, false
}

// RightOf returns ip's clockwise ring neighbor (the one ip heartbeats to).
// In a singleton group it returns ip itself; callers skip self-beats.
func (g Membership) RightOf(ip transport.IP) transport.IP {
	i := g.IndexOf(ip)
	if i < 0 || len(g.Members) == 0 {
		return 0
	}
	return g.Members[(i+1)%len(g.Members)].IP
}

// LeftOf returns ip's counterclockwise neighbor (the one ip monitors).
func (g Membership) LeftOf(ip transport.IP) transport.IP {
	i := g.IndexOf(ip)
	if i < 0 || len(g.Members) == 0 {
		return 0
	}
	return g.Members[(i-1+len(g.Members))%len(g.Members)].IP
}

// Neighbors returns both ring neighbors of ip.
func (g Membership) Neighbors(ip transport.IP) (left, right transport.IP) {
	return g.LeftOf(ip), g.RightOf(ip)
}

// IPs lists member addresses in rank order.
func (g Membership) IPs() []transport.IP {
	out := make([]transport.IP, len(g.Members))
	for i, m := range g.Members {
		out[i] = m.IP
	}
	return out
}

// WithJoined returns a new membership including extra members, version+1.
func (g Membership) WithJoined(extra ...wire.Member) Membership {
	all := make([]wire.Member, 0, len(g.Members)+len(extra))
	all = append(all, g.Members...)
	all = append(all, extra...)
	return New(g.Version+1, all)
}

// Without returns a new membership excluding the given IPs, version+1.
func (g Membership) Without(gone ...transport.IP) Membership {
	drop := make(map[transport.IP]bool, len(gone))
	for _, ip := range gone {
		drop[ip] = true
	}
	keep := make([]wire.Member, 0, len(g.Members))
	for _, m := range g.Members {
		if !drop[m.IP] {
			keep = append(keep, m)
		}
	}
	return New(g.Version+1, keep)
}

// Equal reports identical membership (IP sets and version).
func (g Membership) Equal(o Membership) bool {
	if g.Version != o.Version || len(g.Members) != len(o.Members) {
		return false
	}
	for i := range g.Members {
		if g.Members[i].IP != o.Members[i].IP {
			return false
		}
	}
	return true
}

// SameMembers reports identical IP sets regardless of version.
func (g Membership) SameMembers(o Membership) bool {
	if len(g.Members) != len(o.Members) {
		return false
	}
	for i := range g.Members {
		if g.Members[i].IP != o.Members[i].IP {
			return false
		}
	}
	return true
}

// Diff computes the delta from old to g: members present only in g
// (joined) and addresses present only in old (left). This is exactly what
// a leader reports to GulfStream Central.
func (g Membership) Diff(old Membership) (joined []wire.Member, left []transport.IP) {
	oldSet := make(map[transport.IP]bool, len(old.Members))
	for _, m := range old.Members {
		oldSet[m.IP] = true
	}
	newSet := make(map[transport.IP]bool, len(g.Members))
	for _, m := range g.Members {
		newSet[m.IP] = true
		if !oldSet[m.IP] {
			joined = append(joined, m)
		}
	}
	for _, m := range old.Members {
		if !newSet[m.IP] {
			left = append(left, m.IP)
		}
	}
	return joined, left
}

// Subgroups partitions the members into contiguous rank-order subgroups of
// at most size members each (paper §4.2's subgroup heartbeating). The
// last subgroup may be smaller. size < 2 yields a single subgroup.
func (g Membership) Subgroups(size int) [][]wire.Member {
	if size < 2 || len(g.Members) <= size {
		if len(g.Members) == 0 {
			return nil
		}
		return [][]wire.Member{g.Members}
	}
	var out [][]wire.Member
	for i := 0; i < len(g.Members); i += size {
		end := i + size
		if end > len(g.Members) {
			end = len(g.Members)
		}
		out = append(out, g.Members[i:end])
	}
	return out
}

// SubgroupOf returns the index of the subgroup containing ip under the
// given subgroup size, or -1.
func (g Membership) SubgroupOf(ip transport.IP, size int) int {
	i := g.IndexOf(ip)
	if i < 0 {
		return -1
	}
	if size < 2 {
		return 0
	}
	return i / size
}

// String renders "v<version>{ip ip ...}".
func (g Membership) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "v%d{", g.Version)
	for i, m := range g.Members {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(m.IP.String())
	}
	b.WriteByte('}')
	return b.String()
}
