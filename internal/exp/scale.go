package exp

import (
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/central"
	"repro/internal/core"
	"repro/internal/farm"
	"repro/internal/transport"
)

// ScaleOptions parameterizes the E14 scale sweep: cold-start a uniform
// farm at each adapter count and measure how fast the event kernel pushes
// it to stability.
type ScaleOptions struct {
	Seed int64
	// Adapters are the total adapter counts to sweep; each uniform node
	// carries AdaptersPerNode adapters, so nodes = adapters/AdaptersPerNode.
	Adapters        []int
	AdaptersPerNode int
	Trials          int
	// Workers bounds how many trials run concurrently (wall-clock
	// convenience on multi-core machines). Per-trial events/sec is only an
	// honest throughput figure with Workers=1; above that the reported
	// rates share cores and understate the kernel.
	Workers int
	// BeaconPhase is Tb for every run (the sweep holds protocol timing
	// fixed so only farm size varies).
	BeaconPhase time.Duration
	StartSkew   time.Duration
	Timeout     time.Duration
	// JSONPath, when non-empty, also writes the results as JSON
	// (BENCH_scale.json in CI).
	JSONPath string
}

// DefaultScale sweeps 500 to 4,000 adapters — the paper's testbed tops
// out at 165, so everything past the first point is extrapolation the
// simulator makes affordable.
func DefaultScale() ScaleOptions {
	return ScaleOptions{
		Seed:            99,
		Adapters:        []int{500, 1000, 2000, 4000},
		AdaptersPerNode: 2,
		Trials:          3,
		Workers:         1,
		BeaconPhase:     5 * time.Second,
		StartSkew:       2 * time.Second,
		Timeout:         10 * time.Minute,
	}
}

// ScaleTrial is one measured cold start.
type ScaleTrial struct {
	Seed         int64   `json:"seed"`
	StableSecs   float64 `json:"stable_secs"`    // simulated time to farm stability
	WallSecs     float64 `json:"wall_secs"`      // real time for the run
	Fired        uint64  `json:"fired"`          // events executed
	EventsPerSec float64 `json:"events_per_sec"` // Fired / WallSecs
	TopoHash     uint64  `json:"topo_hash"`      // FNV-1a over Central's sorted view
}

// ScalePoint aggregates the trials at one adapter count.
type ScalePoint struct {
	Adapters int          `json:"adapters"`
	Nodes    int          `json:"nodes"`
	Trials   []ScaleTrial `json:"trials"`
	// AllocsPerEvent and BytesPerEvent are process-wide ReadMemStats
	// deltas across the whole batch divided by total events fired, so they
	// stay exact even when trials run concurrently.
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
}

// ScaleFarm builds the uniform farm for one scale trial. Exposed so the
// determinism test can run the identical configuration twice.
func ScaleFarm(o ScaleOptions, adapters int, seed int64) (*farm.Farm, error) {
	cfg := core.DefaultConfig()
	cfg.BeaconPhase = o.BeaconPhase
	return farm.Build(farm.Spec{
		Seed:            seed,
		UniformNodes:    adapters / o.AdaptersPerNode,
		UniformAdapters: o.AdaptersPerNode,
		StartSkew:       o.StartSkew,
		Core:            cfg,
	})
}

// hashGroups folds one Central's discovered view — every group leader and
// its sorted members, zero-separated — into h.
func hashGroups(h hash.Hash64, c *central.Central) {
	groups := c.Groups()
	leaders := make([]transport.IP, 0, len(groups))
	for l := range groups {
		leaders = append(leaders, l)
	}
	sort.Slice(leaders, func(i, j int) bool { return leaders[i] < leaders[j] })
	var buf [4]byte
	put := func(ip transport.IP) {
		binary.BigEndian.PutUint32(buf[:], uint32(ip))
		h.Write(buf[:])
	}
	for _, l := range leaders {
		put(l)
		for _, m := range groups[l] {
			put(m)
		}
		buf = [4]byte{} // group separator
		h.Write(buf[:])
	}
}

// TopologyHash digests the active Central's discovered view so two runs
// can be compared for exact agreement without retaining either view.
func TopologyHash(f *farm.Farm) uint64 {
	c := f.ActiveCentral()
	if c == nil {
		return 0
	}
	h := fnv.New64a()
	hashGroups(h, c)
	return h.Sum64()
}

// TopologyHashAll digests every hosted Central's view in node build order
// — the whole-farm topology fingerprint of a zoned farm, where each zone
// discovers its own groups.
func TopologyHashAll(f *farm.Farm) uint64 {
	h := fnv.New64a()
	for _, c := range f.HostingCentrals() {
		hashGroups(h, c)
	}
	return h.Sum64()
}

// ScaleTrialRun cold-starts one farm and measures it to stability.
func ScaleTrialRun(o ScaleOptions, adapters int, seed int64) (ScaleTrial, error) {
	f, err := ScaleFarm(o, adapters, seed)
	if err != nil {
		return ScaleTrial{}, err
	}
	start := time.Now()
	f.Start()
	at, ok := f.RunUntilStable(o.Timeout)
	wall := time.Since(start)
	if !ok {
		return ScaleTrial{}, fmt.Errorf("exp: scale run (adapters=%d seed=%d) never stabilized", adapters, seed)
	}
	fired := f.Fired()
	return ScaleTrial{
		Seed:         seed,
		StableSecs:   at.Seconds(),
		WallSecs:     wall.Seconds(),
		Fired:        fired,
		EventsPerSec: float64(fired) / wall.Seconds(),
		TopoHash:     TopologyHash(f),
	}, nil
}

// ScaleSweep measures every (adapter count, trial) cell and returns the
// aggregated points.
func ScaleSweep(o ScaleOptions) ([]ScalePoint, error) {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	points := make([]ScalePoint, 0, len(o.Adapters))
	for _, a := range o.Adapters {
		pt := ScalePoint{Adapters: a, Nodes: a / o.AdaptersPerNode}
		trials := make([]ScaleTrial, o.Trials)
		errs := make([]error, o.Trials)

		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)

		sem := make(chan struct{}, o.Workers)
		var wg sync.WaitGroup
		for i := 0; i < o.Trials; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				trials[i], errs[i] = ScaleTrialRun(o, a, o.Seed+int64(i)*7919)
			}(i)
		}
		wg.Wait()
		runtime.ReadMemStats(&m1)
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		var fired uint64
		for _, tr := range trials {
			fired += tr.Fired
		}
		pt.Trials = trials
		pt.AllocsPerEvent = float64(m1.Mallocs-m0.Mallocs) / float64(fired)
		pt.BytesPerEvent = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(fired)
		points = append(points, pt)
	}
	return points, nil
}

// medianFloat returns the middle value (by sort) of a non-empty slice.
func medianFloat(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// Scale runs the E14 sweep and renders the table. When o.JSONPath is set
// the raw points are also written there as JSON.
func Scale(o ScaleOptions) (*Table, error) {
	points, err := ScaleSweep(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "E14/scale",
		Title: fmt.Sprintf("cold-start scale sweep, %d trials per size (Tb=%ds, skew=%v)",
			o.Trials, int(o.BeaconPhase.Seconds()), o.StartSkew),
		Columns: []string{"adapters", "nodes", "stable(s)", "events", "med ev/s", "allocs/ev", "B/ev"},
	}
	for _, pt := range points {
		var stable, evps []float64
		for _, tr := range pt.Trials {
			stable = append(stable, tr.StableSecs)
			evps = append(evps, tr.EventsPerSec)
		}
		t.AddRow(
			fmt.Sprintf("%d", pt.Adapters),
			fmt.Sprintf("%d", pt.Nodes),
			fmt.Sprintf("%.1f", medianFloat(stable)),
			fmt.Sprintf("%d", pt.Trials[0].Fired),
			fmt.Sprintf("%.0f", medianFloat(evps)),
			fmt.Sprintf("%.2f", pt.AllocsPerEvent),
			fmt.Sprintf("%.0f", pt.BytesPerEvent),
		)
	}
	t.Note("stable(s) is simulated time (= Tb+Ts+Tgsc+δ, size-invariant per the paper); ev/s is wall-clock kernel throughput")
	t.Note("allocs/ev and B/ev are process-wide ReadMemStats deltas over the whole batch: formation-time decode/build")
	t.Note("dominates the byte count, the steady state runs allocation-free (see DESIGN.md §9)")
	if o.JSONPath != "" {
		if err := mergeBenchJSON(o.JSONPath, "e14", points); err != nil {
			return nil, err
		}
		t.Note("raw points written to %s (key e14)", o.JSONPath)
	}
	return t, nil
}
