package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/central"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/farm"
	"repro/internal/serve"
)

// ServeOptions parameterizes E17, the user-visible-impact sweep: a
// two-domain farm at several sizes, a churn schedule (chaos DSL), and a
// notification-pipe delay, with the serving plane measuring what users
// would have seen. The headline curve is error-seconds vs notification
// delay: how much user pain each second of notification latency buys.
type ServeOptions struct {
	Seed int64
	// FrontEnds sweeps the per-domain front-end count (farm size axis).
	FrontEnds []int
	// Schedules names the churn scripts to run ("failure", "move").
	Schedules []string
	// Delays sweeps the notification pipe's one-way latency.
	Delays []time.Duration
	// SessionsPerSec is the per-domain mean session arrival rate.
	SessionsPerSec float64
	// Warmup runs before measurement starts (sessions build up).
	Warmup time.Duration
	// Tail is the post-settle window that must accrue zero new
	// error-seconds for the cell to count as recovered.
	Tail time.Duration
	// Parallel bounds concurrent cells (NumCPU when 0).
	Parallel int
	// JSONPath, when non-empty, receives the raw points
	// (BENCH_serve.json in CI).
	JSONPath string
}

// DefaultServe sweeps 3 farm sizes x 2 schedules x 3 delays.
func DefaultServe() ServeOptions {
	return ServeOptions{
		Seed:           171,
		FrontEnds:      []int{2, 4, 8},
		Schedules:      []string{"failure", "move"},
		Delays:         []time.Duration{0, 500 * time.Millisecond, 2 * time.Second},
		SessionsPerSec: 200,
		Warmup:         5 * time.Second,
		Tail:           15 * time.Second,
	}
}

// ServePoint is one measured cell of the E17 sweep.
type ServePoint struct {
	FrontEnds int     `json:"front_ends_per_domain"`
	Schedule  string  `json:"schedule"`
	DelayMs   float64 `json:"delay_ms"`
	// Aggregates across both domains for the measurement window.
	Requests     uint64  `json:"requests"`
	Errors       uint64  `json:"errors"`
	Misroutes    uint64  `json:"misroutes"`
	Unrouted     uint64  `json:"unrouted"`
	ErrorSeconds float64 `json:"error_seconds"`
	PeakSessions int64   `json:"peak_sessions"`
	// Notification-path observability.
	Notifications uint64  `json:"notifications"`
	MaxLagMs      float64 `json:"max_notify_lag_ms"`
	// Invariants: stale routes after settle (must be 0) and whether the
	// tail window accrued zero new error-seconds.
	AuditFindings int  `json:"audit_findings"`
	Recovered     bool `json:"recovered"`
	// Domains keeps the per-domain breakdown for offline analysis.
	Domains []serve.DomainStats `json:"domains"`
}

// serveSpec is the E17 farm: two equal domains with the chaos harness's
// aggressive timers so failure detection takes seconds, not minutes.
func serveSpec(seed int64, frontEnds int) farm.Spec {
	cfg := core.DefaultConfig()
	cfg.BeaconPhase = 2 * time.Second
	cfg.BeaconInterval = 500 * time.Millisecond
	cfg.LeaderBeaconInterval = 1 * time.Second
	cfg.StableWait = 1 * time.Second
	cfg.DeferTimeout = 3 * time.Second
	cfg.DetectorParams.Interval = 500 * time.Millisecond
	cfg.OrphanTimeout = 6 * time.Second
	cfg.ConsensusWindow = 1 * time.Second
	cfg.EscalationPatience = 3 * time.Second
	cc := central.DefaultConfig()
	cc.StabilizeWait = 3 * time.Second
	return farm.Spec{
		Seed:       seed,
		AdminNodes: 2,
		Domains: []farm.DomainSpec{
			{Name: "acme", FrontEnds: frontEnds, BackEnds: 1},
			{Name: "globex", FrontEnds: frontEnds, BackEnds: 1},
		},
		Core:      cfg,
		Central:   cc,
		StartSkew: 1 * time.Second,
	}
}

// serveChurn builds the cell's churn script in the chaos DSL. Both
// scripts target a front-end so the serving plane is in the blast
// radius.
func serveChurn(schedule string) (check.Schedule, error) {
	switch schedule {
	case "failure":
		// Unannounced kill, restart 20s later: the window where users see
		// errors is detection latency + notification delay.
		return check.Schedule{Ops: []check.Op{
			{At: 0, Kind: check.OpKillNode, Node: "acme-fe-00"},
			{At: 20 * time.Second, Kind: check.OpRestartNode, Node: "acme-fe-00"},
		}, Settle: 40 * time.Second}, nil
	case "move":
		// Central-initiated domain move: MoveStarted pre-announces the
		// drain, so the only user-visible window is the notification
		// delay itself.
		return check.Schedule{Ops: []check.Op{
			{At: 0, Kind: check.OpMoveDomain, Node: "globex-fe-00", Target: "acme"},
		}, Settle: 60 * time.Second}, nil
	default:
		return check.Schedule{}, fmt.Errorf("exp: unknown serve schedule %q", schedule)
	}
}

// ServeCell measures one (farm size, schedule, delay) cell. Everything
// runs inside the deterministic kernel: the same options produce
// bit-identical points.
func ServeCell(o ServeOptions, frontEnds int, schedule string, delay time.Duration) (ServePoint, error) {
	pt := ServePoint{
		FrontEnds: frontEnds,
		Schedule:  schedule,
		DelayMs:   float64(delay) / float64(time.Millisecond),
	}
	sched, err := serveChurn(schedule)
	if err != nil {
		return pt, err
	}
	f, err := farm.Build(serveSpec(o.Seed, frontEnds))
	if err != nil {
		return pt, err
	}
	f.Start()
	if _, ok := f.RunUntilStable(2 * time.Minute); !ok {
		return pt, fmt.Errorf("exp: serve cell (fe=%d %s delay=%v) never stabilized",
			frontEnds, schedule, delay)
	}
	plane := f.AttachServe(
		serve.Config{Seed: o.Seed, SessionsPerSec: o.SessionsPerSec},
		serve.NewDelayedPipe(f.Clock(), delay))
	plane.Start()
	f.RunFor(o.Warmup)
	plane.Workload.ResetStats()

	sched.Run(f)
	if _, ok := f.RunUntilStable(time.Minute); !ok {
		return pt, fmt.Errorf("exp: serve cell (fe=%d %s delay=%v) did not reconverge",
			frontEnds, schedule, delay)
	}
	// Let the pipe flush anything still in flight before auditing.
	f.RunFor(delay + time.Second)
	if !plane.Drained() {
		return pt, fmt.Errorf("exp: notification pipe still holds events after settle")
	}
	pt.AuditFindings = len(plane.Audit(f))

	pt.Domains = plane.Stats()
	for _, d := range pt.Domains {
		pt.Requests += d.Requests
		pt.Errors += d.Errors
		pt.Misroutes += d.Misroutes
		pt.Unrouted += d.Unrouted
		pt.ErrorSeconds += d.ErrorSeconds
		if d.PeakSessions > pt.PeakSessions {
			pt.PeakSessions = d.PeakSessions
		}
	}
	pt.Notifications = plane.Balancer.Notifications()
	pt.MaxLagMs = float64(plane.Balancer.MaxLag()) / float64(time.Millisecond)

	// Tail window: with the schedule over and every notification
	// delivered, the plane must serve cleanly again.
	plane.Workload.ResetStats()
	f.RunFor(o.Tail)
	pt.Recovered = true
	for _, d := range plane.Stats() {
		if d.ErrorSeconds > 0 {
			pt.Recovered = false
		}
	}
	plane.Stop()
	return pt, nil
}

// ServeSweep measures every cell, cells in parallel (each is its own
// farm; results are deterministic regardless of execution order).
func ServeSweep(o ServeOptions) ([]ServePoint, error) {
	if o.Parallel <= 0 {
		o.Parallel = runtime.NumCPU()
	}
	type cell struct {
		fe    int
		sched string
		delay time.Duration
	}
	var cells []cell
	for _, fe := range o.FrontEnds {
		for _, s := range o.Schedules {
			for _, d := range o.Delays {
				cells = append(cells, cell{fe, s, d})
			}
		}
	}
	points := make([]ServePoint, len(cells))
	errs := make([]error, len(cells))
	sem := make(chan struct{}, o.Parallel)
	var wg sync.WaitGroup
	for i, c := range cells {
		wg.Add(1)
		go func(i int, c cell) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			points[i], errs[i] = ServeCell(o, c.fe, c.sched, c.delay)
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return points, nil
}

// serveSanity checks the sweep's acceptance properties. Returns one
// message per violated property.
//
//   - every cell recovered (tail window clean) with a clean audit;
//   - the failure schedule always costs error-seconds (an unannounced
//     kill is never free);
//   - on the failure schedule, error-seconds increase strictly with the
//     injected notification delay at every farm size — the headline
//     "notification latency buys user pain" curve.
func serveSanity(o ServeOptions, points []ServePoint) []string {
	var bad []string
	for _, pt := range points {
		if pt.AuditFindings > 0 {
			bad = append(bad, fmt.Sprintf("fe=%d %s delay=%.0fms: %d stale routes after settle",
				pt.FrontEnds, pt.Schedule, pt.DelayMs, pt.AuditFindings))
		}
		if !pt.Recovered {
			bad = append(bad, fmt.Sprintf("fe=%d %s delay=%.0fms: error-seconds still accruing after settle",
				pt.FrontEnds, pt.Schedule, pt.DelayMs))
		}
		if pt.Schedule == "failure" && pt.ErrorSeconds <= 0 {
			bad = append(bad, fmt.Sprintf("fe=%d failure delay=%.0fms: unannounced kill cost no error-seconds",
				pt.FrontEnds, pt.DelayMs))
		}
	}
	for _, fe := range o.FrontEnds {
		prevDelay, prevES := time.Duration(-1), 0.0
		for _, d := range o.Delays {
			for _, pt := range points {
				if pt.FrontEnds != fe || pt.Schedule != "failure" ||
					pt.DelayMs != float64(d)/float64(time.Millisecond) {
					continue
				}
				if prevDelay >= 0 && pt.ErrorSeconds <= prevES {
					bad = append(bad, fmt.Sprintf(
						"fe=%d failure: error-seconds not monotone in delay (%.3f at %v -> %.3f at %v)",
						fe, prevES, prevDelay, pt.ErrorSeconds, d))
				}
				prevDelay, prevES = d, pt.ErrorSeconds
			}
		}
	}
	return bad
}

// Serve runs E17 and renders the table. The returned count is the
// number of violated sanity properties (0 on a healthy sweep).
func Serve(o ServeOptions) (*Table, int, error) {
	points, err := ServeSweep(o)
	if err != nil {
		return nil, 0, err
	}
	bad := serveSanity(o, points)

	t := &Table{
		ID: "E17/serve",
		Title: fmt.Sprintf("serving plane under churn: %d farm sizes x %v x %d notification delays, %g sessions/s/domain",
			len(o.FrontEnds), o.Schedules, len(o.Delays), o.SessionsPerSec),
		Columns: []string{"fe/dom", "schedule", "delay(ms)", "requests", "errors", "err-sec", "peak sess", "lag max(ms)", "clean"},
	}
	for _, pt := range points {
		clean := "yes"
		if pt.AuditFindings > 0 || !pt.Recovered {
			clean = "NO"
		}
		t.AddRow(
			fmt.Sprintf("%d", pt.FrontEnds),
			pt.Schedule,
			fmt.Sprintf("%.0f", pt.DelayMs),
			fmt.Sprintf("%d", pt.Requests),
			fmt.Sprintf("%d", pt.Errors),
			fmt.Sprintf("%.2f", pt.ErrorSeconds),
			fmt.Sprintf("%d", pt.PeakSessions),
			fmt.Sprintf("%.0f", pt.MaxLagMs),
			clean,
		)
	}
	t.Note("err-sec integrates the failing traffic fraction over time; 1.0 = the whole farm dark for one second")
	t.Note("failure: unannounced kill + restart — cost = detection latency + notification delay")
	t.Note("move: Central-initiated domain move — MoveStarted pre-drains, so cost ~ notification delay alone")
	for _, m := range bad {
		t.Note("SANITY FAILED: %s", m)
	}
	if len(bad) == 0 {
		t.Note("sanity: all cells recovered with clean audits; error-seconds strictly increase with delay on the failure schedule")
	}
	if o.JSONPath != "" {
		blob, err := json.MarshalIndent(points, "", "  ")
		if err != nil {
			return nil, len(bad), err
		}
		if err := os.WriteFile(o.JSONPath, append(blob, '\n'), 0o644); err != nil {
			return nil, len(bad), err
		}
		t.Note("raw points written to %s", o.JSONPath)
	}
	return t, len(bad), nil
}
