package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
)

func ip(s string) transport.IP {
	v, ok := transport.ParseIP(s)
	if !ok {
		panic("bad ip " + s)
	}
	return v
}

func TestRecorderCapturesInOrder(t *testing.T) {
	r := New(16)
	for i := 0; i < 5; i++ {
		r.Record(Record{Kind: KBeaconSent, T: time.Duration(i) * time.Second})
	}
	snap := r.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("got %d records, want 5", len(snap))
	}
	for i, rec := range snap {
		if rec.Seq != uint64(i+1) {
			t.Errorf("record %d: seq %d, want %d", i, rec.Seq, i+1)
		}
	}
	if r.Total() != 5 || r.Dropped() != 0 {
		t.Errorf("total=%d dropped=%d, want 5, 0", r.Total(), r.Dropped())
	}
}

func TestRecorderRingWraps(t *testing.T) {
	r := New(4)
	for i := 1; i <= 10; i++ {
		r.Record(Record{Kind: KBeaconSent, Token: uint64(i)})
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("got %d records, want capacity 4", len(snap))
	}
	// Oldest-first: tokens 7, 8, 9, 10.
	for i, rec := range snap {
		if want := uint64(7 + i); rec.Token != want {
			t.Errorf("slot %d: token %d, want %d", i, rec.Token, want)
		}
	}
	if r.Dropped() != 6 {
		t.Errorf("dropped=%d, want 6", r.Dropped())
	}
}

func TestRecorderDisable(t *testing.T) {
	r := New(4)
	r.Enable(false)
	r.Record(Record{Kind: KBeaconSent})
	if r.Total() != 0 {
		t.Errorf("disabled recorder captured %d records", r.Total())
	}
	r.Enable(true)
	r.Record(Record{Kind: KBeaconSent})
	if r.Total() != 1 {
		t.Errorf("re-enabled recorder has total %d, want 1", r.Total())
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(Record{Kind: KOrphaned})
	r.Enable(true)
	r.AddSink(func(Record) {})
	r.AutoDump(nil)
	if r.Snapshot() != nil || r.Total() != 0 || r.Cap() != 0 || r.Enabled() {
		t.Error("nil recorder should be inert")
	}
}

func TestSinksObserveEveryRecord(t *testing.T) {
	r := New(2) // smaller than the record count: sinks see past the ring
	var got []Kind
	r.AddSink(func(rec Record) { got = append(got, rec.Kind) })
	for _, k := range []Kind{KBeaconSent, KPrepareSent, KCommitSent} {
		r.Record(Record{Kind: k})
	}
	if len(got) != 3 || got[0] != KBeaconSent || got[2] != KCommitSent {
		t.Errorf("sink saw %v", got)
	}
}

func TestAutoDumpFiresOnFailureKinds(t *testing.T) {
	r := New(8)
	var trigger Record
	var recent []Record
	fired := 0
	r.AutoDump(func(tr Record, snap []Record) {
		fired++
		trigger, recent = tr, snap
	})
	r.Record(Record{Kind: KBeaconSent})
	r.Record(Record{Kind: KViewCommit})
	if fired != 0 {
		t.Fatalf("auto-dump fired on benign kinds")
	}
	r.Record(Record{Kind: KOrphaned, Node: "web-01"})
	if fired != 1 {
		t.Fatalf("auto-dump fired %d times, want 1", fired)
	}
	if trigger.Kind != KOrphaned || trigger.Node != "web-01" {
		t.Errorf("trigger = %+v", trigger)
	}
	if len(recent) != 3 {
		t.Errorf("dump snapshot has %d records, want 3", len(recent))
	}
}

func TestAutoDumpCustomKinds(t *testing.T) {
	r := New(8)
	fired := 0
	r.AutoDump(func(Record, []Record) { fired++ }, KCommitSent)
	r.Record(Record{Kind: KOrphaned}) // failure kind, but not selected
	r.Record(Record{Kind: KCommitSent})
	if fired != 1 {
		t.Errorf("auto-dump fired %d times, want 1 (KCommitSent only)", fired)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	r := New(8)
	r.Record(Record{
		Kind: KCommitSent, T: 1500 * time.Millisecond, Node: "node-001",
		Self: ip("10.1.0.5"), Group: ip("10.1.0.5"), Version: 3, Token: 42,
	})
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Total   uint64 `json:"total"`
		Records []struct {
			Kind  string  `json:"kind"`
			T     float64 `json:"t_sec"`
			Self  string  `json:"self"`
			Txn   string  `json:"txn"`
			Group string  `json:"group"`
		} `json:"records"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, buf.String())
	}
	if dump.Total != 1 || len(dump.Records) != 1 {
		t.Fatalf("dump = %+v", dump)
	}
	rec := dump.Records[0]
	if rec.Kind != "2pc-commit-sent" || rec.Self != "10.1.0.5" || rec.T != 1.5 {
		t.Errorf("record = %+v", rec)
	}
	if rec.Txn != "10.1.0.5#42" {
		t.Errorf("txn = %q, want 10.1.0.5#42", rec.Txn)
	}
}

func TestTxnsGroupsAndOrders(t *testing.T) {
	leader := ip("10.1.0.9")
	other := ip("10.1.0.7")
	records := []Record{
		{Kind: KPrepareSent, Group: leader, Token: 1, T: 1 * time.Second},
		{Kind: KBeaconSent, T: 1 * time.Second}, // not 2PC-correlated
		{Kind: KPrepareSent, Group: other, Token: 5, T: 2 * time.Second},
		{Kind: KPrepareAck, Group: leader, Token: 1, T: 2 * time.Second},
		{Kind: KCommitSent, Group: leader, Token: 1, T: 3 * time.Second},
		{Kind: KViewCommit, Group: leader, Version: 2}, // not a 2PC kind
	}
	txns := Txns(records)
	if len(txns) != 2 {
		t.Fatalf("got %d txns, want 2", len(txns))
	}
	if txns[0].ID() != "10.1.0.9#1" || len(txns[0].Records) != 3 {
		t.Errorf("txn[0] = %s with %d records", txns[0].ID(), len(txns[0].Records))
	}
	if txns[1].ID() != "10.1.0.7#5" || len(txns[1].Records) != 1 {
		t.Errorf("txn[1] = %s with %d records", txns[1].ID(), len(txns[1].Records))
	}
}

func TestRecordString(t *testing.T) {
	rec := Record{
		Kind: KSuspicionRaised, T: 12 * time.Second, Node: "web-01",
		Self: ip("10.1.0.5"), Peer: ip("10.1.0.6"), Detail: "probe-timeout",
	}
	s := rec.String()
	for _, want := range []string{"suspicion-raised", "web-01", "10.1.0.5", "10.1.0.6", "probe-timeout"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestKindNamesComplete(t *testing.T) {
	for k := Kind(1); k < kindMax; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
}

// TestConcurrentCapture exercises Record/Snapshot/WriteJSON under -race.
func TestConcurrentCapture(t *testing.T) {
	r := New(64)
	r.AddSink(func(Record) {})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(Record{Kind: KBeaconSent, Node: fmt.Sprintf("g%d", g), Token: uint64(i)})
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = r.Snapshot()
			_ = r.WriteJSON(&bytes.Buffer{})
		}
	}()
	wg.Wait()
	if r.Total() != 2000 {
		t.Errorf("total = %d, want 2000", r.Total())
	}
	snap := r.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq != snap[i-1].Seq+1 {
			t.Fatalf("snapshot not contiguous at %d: %d then %d", i, snap[i-1].Seq, snap[i].Seq)
		}
	}
}
