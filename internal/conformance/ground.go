package conformance

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/switchsim"
	"repro/internal/transport"
)

// TopologyDoc mirrors the gsd /topology JSON document: the hosting
// Central's current belief about the farm.
type TopologyDoc struct {
	Node           string              `json:"node"`
	HostingCentral bool                `json:"hosting_central"`
	Active         bool                `json:"active"`
	Stable         bool                `json:"stable"`
	Groups         map[string][]string `json:"groups"` // leader IP -> member IPs
	DeadNodes      []string            `json:"dead_nodes"`
	Incidents      map[string]uint64   `json:"incidents"`
	Mismatches     []string            `json:"mismatches"`
}

// GroundTruth is the B.O.D.Y.-style declarative statement of what the
// farm actually looks like right now: which adapters share each
// broadcast segment, which nodes are dead, and which configdb verdicts
// verification is expected to raise. The harness diffs Central's
// discovered topology against it; an empty diff is the pass condition.
type GroundTruth struct {
	// Segments maps segment name -> the sorted adapter addresses that
	// are really plugged into it (dead nodes excluded).
	Segments map[string][]string `json:"segments"`
	// DeadNodes are nodes whose processes are down and must be reported
	// dead by Central.
	DeadNodes []string `json:"dead_nodes"`
	// ExpectedMismatches are substrings that must each match at least
	// one configdb verification verdict — and every verdict must match
	// one of them. Empty means verification must come back clean.
	ExpectedMismatches []string `json:"expected_mismatches,omitempty"`
}

// GroundTruth assembles the current reality from the fabric's live
// per-adapter VLAN view (vlanOf returns 0 for "still on the spec
// VLAN"), the set of dead nodes, and the planted verification
// expectations.
func (f *FarmSpec) GroundTruth(vlanOf func(transport.IP) int, dead map[string]bool,
	expectMismatch []string) *GroundTruth {

	gt := &GroundTruth{Segments: map[string][]string{}, DeadNodes: []string{}}
	for _, n := range f.Nodes {
		if dead[n.Name] {
			gt.DeadNodes = append(gt.DeadNodes, n.Name)
			continue
		}
		for _, a := range n.Adapters {
			vlan := a.VLAN
			if vlanOf != nil {
				if v := vlanOf(a.IP); v != 0 {
					vlan = v
				}
			}
			seg := switchsim.SegmentName(vlan)
			gt.Segments[seg] = append(gt.Segments[seg], a.IP.String())
		}
	}
	for seg := range gt.Segments {
		sortIPStrings(gt.Segments[seg])
	}
	sort.Strings(gt.DeadNodes)
	gt.ExpectedMismatches = append(gt.ExpectedMismatches, expectMismatch...)
	return gt
}

// Diff compares Central's discovered topology against the ground
// truth. It returns one complaint per divergence; nil means the
// discovered topology is exactly the declared reality. Group leader
// identity is not part of the contract (any member may lead); the
// member sets are.
func (gt *GroundTruth) Diff(topo *TopologyDoc) []string {
	var out []string
	if topo == nil {
		return []string{"no topology document (no active Central reachable)"}
	}

	// Index discovered groups by their sorted member-set fingerprint.
	type discovered struct {
		leader string
		key    string
		used   bool
	}
	groups := make([]*discovered, 0, len(topo.Groups))
	for leader, members := range topo.Groups {
		ms := append([]string(nil), members...)
		sortIPStrings(ms)
		groups = append(groups, &discovered{leader: leader, key: strings.Join(ms, " ")})
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].key < groups[j].key })

	segs := make([]string, 0, len(gt.Segments))
	for s := range gt.Segments {
		segs = append(segs, s)
	}
	sort.Strings(segs)
	for _, seg := range segs {
		want := strings.Join(gt.Segments[seg], " ")
		found := false
		for _, g := range groups {
			if !g.used && g.key == want {
				g.used, found = true, true
				break
			}
		}
		if !found {
			out = append(out, fmt.Sprintf("segment %s: no discovered group matches {%s}", seg, want))
		}
	}
	for _, g := range groups {
		if !g.used {
			out = append(out, fmt.Sprintf("discovered group led by %s has no matching segment: {%s}", g.leader, g.key))
		}
	}

	// Dead nodes must match exactly.
	reported := map[string]bool{}
	for _, n := range topo.DeadNodes {
		reported[n] = true
	}
	for _, n := range gt.DeadNodes {
		if !reported[n] {
			out = append(out, fmt.Sprintf("node %s is down but Central does not report it dead", n))
		}
		delete(reported, n)
	}
	for n := range reported {
		out = append(out, fmt.Sprintf("Central reports %s dead but it is running", n))
	}
	return out
}

// DiffMismatches checks the verification verdicts against the
// expectations: every expected substring must match at least one
// verdict, and every verdict must be covered by some expectation.
func (gt *GroundTruth) DiffMismatches(verdicts []string) []string {
	var out []string
	covered := make([]bool, len(verdicts))
	for _, want := range gt.ExpectedMismatches {
		hit := false
		for i, v := range verdicts {
			if strings.Contains(v, want) {
				covered[i], hit = true, true
			}
		}
		if !hit {
			out = append(out, fmt.Sprintf("expected a %q verification verdict, got none", want))
		}
	}
	for i, v := range verdicts {
		if !covered[i] {
			out = append(out, fmt.Sprintf("unexpected verification verdict: %s", v))
		}
	}
	return out
}
