package conformance

import (
	"fmt"

	"repro/internal/snmp"
	"repro/internal/switchsim"
	"repro/internal/transport"
)

// switchAgent is the harness-side SNMP management agent for the
// emulated switch. It serves the same enterprise MIB layout as
// internal/switchsim, so a hosted Central performs planned moves
// exactly as in the paper — an SNMP SET on the port's VLAN object —
// and the write hook re-plugs the wired adapter through the fabric.
// It listens on an unprivileged port (FarmSpec.SwitchPort) because the
// harness is not root on the loopback fabric.
type switchAgent struct {
	rt *transport.Runtime
	ep *transport.UDPEndpoint
}

// startSwitchAgent binds the agent on spec.SwitchIP:spec.SwitchPort.
// apply is invoked (on its own goroutine — the SNMP reply must not
// wait for the rewiring) for every accepted port-VLAN SET.
func startSwitchAgent(spec *FarmSpec, apply func(port, vlan int)) (*switchAgent, error) {
	rt := transport.NewRuntime()
	rt.RunAsync() // drain socket reads; without this the agent never replies
	ep, err := transport.NewUDPEndpoint(rt, spec.SwitchIP)
	if err != nil {
		rt.Close()
		return nil, fmt.Errorf("conformance: switch agent on %v: %w", spec.SwitchIP, err)
	}

	mib := snmp.NewMapMIB()
	mib.Define(switchsim.OIDSysName, snmp.OctetString(spec.SwitchName), false)
	nports := 0
	for _, n := range spec.Nodes {
		for _, a := range n.Adapters {
			mib.Define(switchsim.OIDPortVLAN(a.Port), snmp.Integer(int64(a.VLAN)), true)
			mib.Define(switchsim.OIDPortStatus(a.Port), snmp.Integer(switchsim.PortUp), false)
			mib.Define(switchsim.OIDPortAdapter(a.Port), snmp.OctetString(a.IP.String()), false)
			nports++
		}
	}
	mib.Define(switchsim.OIDNumPorts, snmp.Integer(int64(nports)), false)
	mib.Validate = func(oid snmp.OID, v snmp.Value) error {
		if oid.HasPrefix(switchsim.OIDPortVLANTable()) {
			if v.Kind != snmp.KindInteger || v.Int < 1 || v.Int > 4094 {
				return fmt.Errorf("%w: VLAN id %v", snmp.ErrBadValue, v)
			}
		}
		return nil
	}
	mib.OnSet = func(oid snmp.OID, v snmp.Value) {
		vlanTable := switchsim.OIDPortVLANTable()
		if oid.HasPrefix(vlanTable) && len(oid) == len(vlanTable)+1 && v.Kind == snmp.KindInteger {
			go apply(int(oid[len(oid)-1]), int(v.Int))
		}
	}

	snmp.NewAgentOn(ep, spec.Community, mib, spec.SwitchPort)
	return &switchAgent{rt: rt, ep: ep}, nil
}

// close shuts the agent down. The endpoint must close before the
// runtime: Runtime.Close waits for the read loops, which only exit
// when their sockets do.
func (a *switchAgent) close() {
	a.ep.Close()
	a.rt.Close()
}
