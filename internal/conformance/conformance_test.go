package conformance

import (
	"encoding/json"
	"testing"
)

// TestLoopbackSmoke boots a real five-daemon farm on the loopback
// fabric and runs the cold-start and configdb-mismatch suites end to
// end: real processes, real UDP, real SNMP, invariant-checked traces.
// The remaining suites run via cmd/gshive (CI smoke job and nightly).
func TestLoopbackSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process farm boot; skipped in -short")
	}
	bin, err := BuildGSD(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	suites, err := FindSuites([]string{"smoke", "configdb-mismatch"})
	if err != nil {
		t.Fatal(err)
	}
	results, err := Run(suites, Options{
		Bin:       bin,
		Artifacts: t.TempDir(),
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(suites) {
		t.Fatalf("want %d results, got %d", len(suites), len(results))
	}
	for _, r := range results {
		if r.Passed {
			continue
		}
		detail, _ := json.MarshalIndent(r.Verdict, "", "  ")
		t.Errorf("suite %s failed: %s\nverdict: %s", r.Suite, r.Err, detail)
	}
}

func TestFindSuites(t *testing.T) {
	all, err := FindSuites([]string{"all"})
	if err != nil || len(all) != 8 {
		t.Fatalf("all: %v (%d suites)", err, len(all))
	}
	if _, err := FindSuites([]string{"no-such-suite"}); err == nil {
		t.Fatal("unknown suite accepted")
	}
}
