package transport

import (
	"net"
	"testing"
	"time"
)

// loopbackAvailable checks we can bind UDP on 127.0.0.1 in this sandbox.
func loopbackAvailable(t *testing.T) {
	t.Helper()
	c, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0})
	if err != nil {
		t.Skipf("no loopback UDP in this environment: %v", err)
	}
	c.Close()
}

func TestRuntimeClock(t *testing.T) {
	rt := NewRuntime()
	rt.RunAsync()
	defer rt.Close()
	if rt.Now() < 0 {
		t.Fatal("negative Now")
	}
	fired := make(chan struct{})
	rt.AfterFunc(10*time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
}

func TestRuntimeTimerStop(t *testing.T) {
	rt := NewRuntime()
	rt.RunAsync()
	defer rt.Close()
	fired := make(chan struct{}, 1)
	tm := rt.AfterFunc(50*time.Millisecond, func() { fired <- struct{}{} })
	if !tm.Stop() {
		t.Fatal("Stop returned false before firing")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	select {
	case <-fired:
		t.Fatal("stopped timer fired")
	case <-time.After(200 * time.Millisecond):
	}
}

func TestRuntimeSerializesCallbacks(t *testing.T) {
	rt := NewRuntime()
	rt.RunAsync()
	defer rt.Close()
	counter := 0
	done := make(chan int)
	// 100 concurrent posts must execute serially (no data race on counter,
	// which go test -race would catch).
	for i := 0; i < 100; i++ {
		rt.post(func() {
			counter++
			if counter == 100 {
				done <- counter
			}
		})
	}
	select {
	case n := <-done:
		if n != 100 {
			t.Fatalf("counter = %d", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("callbacks never drained")
	}
}

func TestUDPUnicastLoopback(t *testing.T) {
	loopbackAvailable(t)
	rt := NewRuntime()
	rt.RunAsync()
	defer rt.Close()

	lo := MakeIP(127, 0, 0, 1)
	a, err := NewUDPEndpoint(rt, lo)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	got := make(chan []byte, 1)
	// Use high ports to avoid clashes with anything local.
	a.Bind(47401, func(src, dst Addr, payload []byte) {
		got <- append([]byte(nil), payload...)
	})
	if err := a.Unicast(47402, Addr{IP: lo, Port: 47401}, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if string(p) != "hello" {
			t.Fatalf("payload = %q", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("packet never arrived")
	}
}

func TestUDPLoopbackSelfTest(t *testing.T) {
	loopbackAvailable(t)
	rt := NewRuntime()
	rt.RunAsync()
	defer rt.Close()
	lo := MakeIP(127, 0, 0, 1)
	e, err := NewUDPEndpoint(rt, lo)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if !e.Loopback() {
		t.Skip("loopback interface not detectable in this environment")
	}
}

func TestUDPBindNilUnbinds(t *testing.T) {
	loopbackAvailable(t)
	rt := NewRuntime()
	rt.RunAsync()
	defer rt.Close()
	lo := MakeIP(127, 0, 0, 1)
	a, err := NewUDPEndpoint(rt, lo)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	got := make(chan struct{}, 4)
	a.Bind(47411, func(_, _ Addr, _ []byte) { got <- struct{}{} })
	a.Bind(47411, nil) // unbind closes the socket
	b, err := NewUDPEndpoint(rt, lo)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	_ = b.Unicast(47412, Addr{IP: lo, Port: 47411}, []byte("x"))
	select {
	case <-got:
		t.Fatal("unbound handler fired")
	case <-time.After(300 * time.Millisecond):
	}
}

func TestUDPClosedEndpointErrors(t *testing.T) {
	loopbackAvailable(t)
	rt := NewRuntime()
	rt.RunAsync()
	defer rt.Close()
	lo := MakeIP(127, 0, 0, 1)
	e, err := NewUDPEndpoint(rt, lo)
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	if err := e.Unicast(47421, Addr{IP: lo, Port: 47422}, []byte("x")); err == nil {
		t.Fatal("send on closed endpoint succeeded")
	}
}
