package netsim

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/sim"
	"repro/internal/switchsim"
	"repro/internal/transport"
)

// Property test for the incremental segment cache: drive a switch fabric
// through long random sequences of adapter adds, VLAN moves, port flaps
// and switch power cycles, and after every operation demand that the
// incrementally maintained cache agrees exactly with a from-scratch
// recomputation from the resolver.

// fabricModel tracks the adapters we wired so the expectation can be
// recomputed independently of the cache under test.
type fabricModel struct {
	ips   []transport.IP
	vlans map[int]bool
}

// expectMembers recomputes one segment's membership straight from the
// resolver — the definition the incremental cache must match.
func (m *fabricModel) expectMembers(fab *switchsim.Fabric, seg string) []transport.IP {
	var out []transport.IP
	for _, ip := range m.ips { // ips are appended in ascending order
		if s, ok := fab.SegmentOf(ip); ok && s == seg {
			out = append(out, ip)
		}
	}
	return out
}

func (m *fabricModel) checkAll(t *testing.T, fab *switchsim.Fabric, n *Network, step int, op string) {
	t.Helper()
	for vlan := range m.vlans {
		seg := switchsim.SegmentName(vlan)
		want := m.expectMembers(fab, seg)
		got := n.SegmentMembers(seg)
		if len(got) != len(want) {
			t.Fatalf("step %d (%s): %s members = %v, want %v", step, op, seg, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("step %d (%s): %s members = %v, want %v", step, op, seg, got, want)
			}
		}
	}
	// Loopback must agree with connectivity for every adapter.
	for _, ip := range m.ips {
		_, connected := fab.SegmentOf(ip)
		if up := n.Adapter(ip).Loopback(); up != connected {
			t.Fatalf("step %d (%s): adapter %v loopback = %v, resolver says %v", step, op, ip, up, connected)
		}
	}
}

func TestIncrementalCacheMatchesRebuild(t *testing.T) {
	const (
		numSwitches = 4
		numPorts    = 10 // ports per switch
		numVLANs    = 5
		steps       = 400
	)
	sched := sim.NewScheduler(7)
	fab := switchsim.NewFabric()
	n := New(sched, fab)
	if !n.incremental {
		t.Fatal("fabric should drive the incremental cache path")
	}

	rng := rand.New(rand.NewSource(42))
	model := &fabricModel{vlans: make(map[int]bool)}
	switches := make([]*switchsim.Switch, numSwitches)
	for i := range switches {
		switches[i] = fab.AddSwitch(fmt.Sprintf("sw%d", i))
	}
	vlan := func() int { return 100 + rng.Intn(numVLANs) }

	next := 0 // adapters wired so far; IP and port derive from it
	for step := 0; step < steps; step++ {
		op := "noop"
		switch k := rng.Intn(10); {
		case k < 3 && next < numSwitches*numPorts:
			// Wire a new adapter into the next free port.
			sw := switches[next%numSwitches]
			port := next / numSwitches
			ip := transport.MakeIP(10, 1, byte(next/200), byte(next%200+1))
			v := vlan()
			model.vlans[v] = true
			// Exercise both wiring orders: resolver-first and adapter-first.
			if rng.Intn(2) == 0 {
				sw.Connect(port, ip, v)
				n.AddAdapter(ip, "n")
			} else {
				n.AddAdapter(ip, "n")
				sw.Connect(port, ip, v)
			}
			model.ips = append(model.ips, ip)
			next++
			op = "connect"
		case k < 6 && next > 0:
			// VLAN-move a random wired adapter.
			ip := model.ips[rng.Intn(len(model.ips))]
			sw, port, ok := fab.Locate(ip)
			if !ok {
				t.Fatalf("step %d: adapter %v lost its wiring", step, ip)
			}
			v := vlan()
			model.vlans[v] = true
			if err := sw.SetPortVLAN(port, v); err != nil {
				t.Fatal(err)
			}
			op = "vlan-move"
		case k < 8 && next > 0:
			// Flap a random adapter's port (detach / re-attach).
			ip := model.ips[rng.Intn(len(model.ips))]
			sw, port, _ := fab.Locate(ip)
			p := sw.Port(port)
			if err := sw.SetPortUp(port, !p.Up); err != nil {
				t.Fatal(err)
			}
			op = "port-flap"
		case next > 0:
			// Power-cycle a switch: a bulk change hitting many adapters.
			sw := switches[rng.Intn(numSwitches)]
			sw.SetUp(!sw.Up())
			op = "switch-toggle"
		}
		model.checkAll(t, fab, n, step, op)
	}

	// Finally, force the from-scratch path over the identical fabric state
	// and demand it reproduces what incremental maintenance built.
	type snapshot map[string][]transport.IP
	take := func() snapshot {
		s := make(snapshot)
		for vlan := range model.vlans {
			seg := switchsim.SegmentName(vlan)
			s[seg] = n.SegmentMembers(seg)
		}
		return s
	}
	before := take()
	n.invalidate()
	after := take()
	for seg, want := range before {
		got := after[seg]
		if len(got) != len(want) {
			t.Fatalf("rebuild changed %s: %v vs %v", seg, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("rebuild changed %s: %v vs %v", seg, got, want)
			}
		}
	}
}
