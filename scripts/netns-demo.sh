#!/usr/bin/env bash
# netns-demo.sh — run real GulfStream daemons (cmd/gsd) on one Linux
# machine, with network namespaces standing in for nodes and bridges for
# VLAN segments, reproducing the paper's multi-domain farm on real UDP
# multicast. Requires root (ip netns). Tested on Linux with iproute2.
#
#   sudo ./scripts/netns-demo.sh up      # build topology + start daemons
#   sudo ./scripts/netns-demo.sh status  # tail each daemon's log
#   sudo ./scripts/netns-demo.sh move    # move node web-3 acme -> globex
#   sudo ./scripts/netns-demo.sh down    # tear everything down
#
# The building blocks (gs_bridge, gs_attach, gs_start_node, ...) are
# plain functions; `source` this file to reuse them in other harnesses.
# The automated version of this demo is the conformance harness's netns
# fabric: `go build ./cmd/gshive && sudo ./gshive run -fabric netns`.
#
# Topology (mirrors examples/webfarm, scaled down):
#
#   bridge gs-admin  10.1.0.0/24   administrative VLAN (all nodes)
#   bridge gs-acme   10.2.0.0/24   domain acme's segment
#   bridge gs-globex 10.3.0.0/24   domain globex's segment
#
#   netns web-1: admin 10.1.0.11 + acme   10.2.0.11
#   netns web-2: admin 10.1.0.12 + acme   10.2.0.12
#   netns web-3: admin 10.1.0.13 + acme   10.2.0.13   (the mover)
#   netns web-4: admin 10.1.0.14 + globex 10.3.0.14
#   netns web-5: admin 10.1.0.15 + globex 10.3.0.15
#
# A "VLAN move" is re-plugging web-3's data veth from gs-acme to
# gs-globex and renumbering it — the namespace-world equivalent of the
# SNMP port-VLAN rewrite GulfStream Central performs in simulation.

set -euo pipefail

REPO_ROOT=$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)
BRIDGES=(gs-admin gs-acme gs-globex)
NODES=(web-1 web-2 web-3 web-4 web-5)
LOGDIR=${LOGDIR:-/tmp/gulfstream-netns}
GSD=${GSD:-$REPO_ROOT/bin/gsd}

gs_need_root() { [ "$(id -u)" = 0 ] || { echo "run as root (ip netns)"; exit 1; }; }

# gs_build_gsd ensures $GSD exists, building it in place when missing.
gs_build_gsd() {
  if [ ! -x "$GSD" ]; then
    echo "building gsd -> $GSD"
    mkdir -p "$(dirname "$GSD")"
    (cd "$REPO_ROOT" && go build -o "$GSD" ./cmd/gsd)
  fi
}

# gs_bridge <name> — create a VLAN-segment bridge with multicast
# flooding (snooping off), idempotent.
gs_bridge() {
  ip link add "$1" type bridge 2>/dev/null || true
  ip link set "$1" up
  # Bridges must forward multicast for BEACON discovery.
  echo 0 > "/sys/class/net/$1/bridge/multicast_snooping" 2>/dev/null || true
}

# gs_attach <ns> <bridge> <ifname> <addr/len> — wire a namespace
# adapter into a segment via a veth pair.
gs_attach() {
  local ns=$1 br=$2 ifn=$3 addr=$4
  ip link add "v-$ns-$ifn" type veth peer name "$ifn" netns "$ns"
  ip link set "v-$ns-$ifn" master "$br" up
  ip netns exec "$ns" ip addr add "$addr" dev "$ifn"
  ip netns exec "$ns" ip link set "$ifn" up multicast on
  ip netns exec "$ns" ip link set lo up
  # Multicast route so 224.0.0.71 beacons egress the right interface.
  ip netns exec "$ns" ip route add 224.0.0.0/4 dev "$ifn" 2>/dev/null || true
}

# gs_detach <ns> <ifname> — unplug a namespace adapter (idempotent).
gs_detach() { ip link del "v-$1-$2" 2>/dev/null || true; }

gs_node_addrs() { # node index -> "adminIP dataIP dataBridge"
  local i=$1
  case "$i" in
    1|2|3) echo "10.1.0.1$i/24 10.2.0.1$i/24 gs-acme" ;;
    4|5)   echo "10.1.0.1$i/24 10.3.0.1$i/24 gs-globex" ;;
  esac
}

# gs_start_node <ns> <adminIP> <dataIP> [extra gsd flags...] — launch a
# daemon in its namespace, logging to $LOGDIR.
gs_start_node() {
  local ns=$1 adminIP=$2 dataIP=$3; shift 3
  echo "starting gsd in $ns (admin $adminIP, data $dataIP)"
  ip netns exec "$ns" "$GSD" \
    -node "$ns" -adapters "$adminIP,$dataIP" \
    -tb 5s -ts 5s -tgsc 15s "$@" \
    > "$LOGDIR/$ns.log" 2>&1 &
  echo $! > "$LOGDIR/$ns.pid"
}

# gs_stop_node <ns> — kill the daemon and delete its namespace.
gs_stop_node() {
  [ -f "$LOGDIR/$1.pid" ] && kill "$(cat "$LOGDIR/$1.pid")" 2>/dev/null || true
  ip netns del "$1" 2>/dev/null || true
}

up() {
  gs_need_root; gs_build_gsd
  mkdir -p "$LOGDIR"
  for b in "${BRIDGES[@]}"; do gs_bridge "$b"; done
  local i=1
  for n in "${NODES[@]}"; do
    ip netns add "$n" 2>/dev/null || true
    read -r admin data dbr < <(gs_node_addrs "$i")
    gs_attach "$n" gs-admin eth0 "$admin"
    gs_attach "$n" "$dbr" eth1 "$data"
    gs_start_node "$n" "${admin%/*}" "${data%/*}"
    i=$((i+1))
  done
  echo
  echo "daemons up; after ~25s (Tb+Ts+Tgsc) the admin leader's log"
  echo "shows GulfStream Central's farm view. logs: $LOGDIR/*.log"
}

status() {
  for n in "${NODES[@]}"; do
    echo "=== $n ==="
    tail -n 6 "$LOGDIR/$n.log" 2>/dev/null || echo "(no log)"
  done
}

move() {
  gs_need_root
  local ns=web-3
  echo "moving $ns's data adapter acme -> globex (the §3.1 scenario)"
  gs_detach "$ns" eth1
  gs_attach "$ns" gs-globex eth1 "10.3.0.13/24"
  echo "watch $LOGDIR: the old AMG reports the departure, the new AMG the"
  echo "join, and Central infers a (here: unexpected) domain move."
}

down() {
  gs_need_root
  for n in "${NODES[@]}"; do gs_stop_node "$n"; done
  for b in "${BRIDGES[@]}"; do ip link del "$b" 2>/dev/null || true; done
  echo "torn down."
}

# Dispatch only when executed, so the functions are sourceable.
if [ "${BASH_SOURCE[0]}" = "$0" ]; then
  case "${1:-}" in
    up) up ;;
    down) down ;;
    status) status ;;
    move) move ;;
    *) echo "usage: $0 up|down|status|move"; exit 2 ;;
  esac
fi
