package central

import (
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/transport"
	"repro/internal/wire"
)

// The moved-leader lineage collision: a group's leader is re-VLANed, its
// old group's successor takes over, and meanwhile the moved leader starts
// a NEW group (same leader address!) on its new segment. The successor's
// takeover report must supersede the OLD lineage only — the version guard
// keeps it from deleting the moved leader's new group.
func TestTakeoverDoesNotDeleteNewLineage(t *testing.T) {
	f := newFixture(t, nil)
	// Old group on segment A, led by 10.0.1.5.
	f.full(ip(1, 5), 3,
		member(1, 5, "n5", true), member(1, 4, "n4", true), member(1, 3, "n3", true))
	// Segment B group.
	f.full(ip(2, 9), 1, wire.Member{IP: ip(2, 9), Node: "n9"})

	// The moved leader reforms fresh on segment B (version jumped) and
	// absorbs segment B's group.
	f.report(&wire.Report{
		Leader: ip(1, 5), Version: 1003, Full: true, Fresh: true,
		Members: []wire.Member{member(1, 5, "n5", true), {IP: ip(2, 9), Node: "n9"}},
	})
	// Old-group survivors under the successor; it supersedes lineage v3.
	f.report(&wire.Report{
		Leader: ip(1, 4), Version: 4, Full: true, PrevLeader: ip(1, 5), PrevVersion: 3,
		Members: []wire.Member{member(1, 4, "n4", true), member(1, 3, "n3", true)},
	})

	groups := f.c.Groups()
	if len(groups[ip(1, 5)]) != 2 {
		t.Fatalf("moved leader's new group damaged: %v", groups)
	}
	if len(groups[ip(1, 4)]) != 2 {
		t.Fatalf("successor group wrong: %v", groups)
	}
	// Nobody actually died.
	for _, a := range []transport.IP{ip(1, 5), ip(1, 4), ip(1, 3), ip(2, 9)} {
		if alive, known := f.c.AdapterAlive(a); !known || !alive {
			t.Fatalf("adapter %v wrongly dead", a)
		}
	}
	if n := f.bus.Count(event.AdapterFailed); n != 0 {
		t.Fatalf("%d false failures: %v", n, f.bus.Filter(event.AdapterFailed))
	}
}

// Fresh reports put displaced members into limbo; if they never resurface
// the sweep declares them failed after the move window.
func TestFreshLimboExpiry(t *testing.T) {
	f := newFixture(t, nil)
	f.full(ip(1, 5), 1,
		member(1, 5, "n5", true), member(1, 4, "n4", true), member(1, 3, "n3", true))
	// Same-key fresh singleton: n4 and n3 displaced into limbo.
	f.report(&wire.Report{
		Leader: ip(1, 5), Version: 1001, Full: true, Fresh: true,
		Members: []wire.Member{member(1, 5, "n5", true)},
	})
	if n := f.bus.Count(event.AdapterFailed); n != 0 {
		t.Fatalf("limbo members declared dead immediately: %v", f.bus.Filter(event.AdapterFailed))
	}
	// n4 resurfaces in another group within the window: fine.
	f.full(ip(2, 9), 1, wire.Member{IP: ip(2, 9), Node: "n9"}, member(1, 4, "n4", true))
	// n3 never resurfaces: the sweep declares it failed.
	f.sched.RunFor(f.c.cfg.MoveWindow + 10*time.Second)
	fails := f.bus.Filter(event.AdapterFailed)
	if len(fails) != 1 || fails[0].Adapter != ip(1, 3) {
		t.Fatalf("limbo expiry failures = %v", fails)
	}
	if alive, _ := f.c.AdapterAlive(ip(1, 4)); !alive {
		t.Fatal("resurfaced member wrongly dead")
	}
}

// An expected move completes even when the mover never appears dead (it
// led its old group and regrouped silently).
func TestExpectedMoveCompletesOnSilentRegroup(t *testing.T) {
	f := newFixture(t, nil)
	f.full(ip(1, 5), 1, member(1, 5, "mover", true), member(1, 4, "n4", true))
	f.full(ip(2, 9), 1, wire.Member{IP: ip(2, 9), Node: "n9"})
	f.c.expectedMoves[ip(1, 5)] = f.sched.Now() + f.c.cfg.MoveWindow
	// The mover joins segment B's group without ever being reported dead.
	f.report(&wire.Report{Leader: ip(2, 9), Version: 2,
		Members: []wire.Member{member(1, 5, "mover", true)}})
	moves := f.bus.Filter(event.NodeMoved)
	if len(moves) != 1 || moves[0].Detail != "expected (central-initiated)" {
		t.Fatalf("moves = %v", moves)
	}
	if _, still := f.c.expectedMoves[ip(1, 5)]; still {
		t.Fatal("expectation not cleared")
	}
	// The sweep must not later complain the move never completed.
	f.sched.RunFor(f.c.cfg.MoveWindow + 10*time.Second)
	for _, e := range f.bus.Filter(event.VerifyMismatch) {
		if e.Detail == "planned move never completed" {
			t.Fatal("completed move flagged as incomplete")
		}
	}
}

// Stale takeover references (PrevVersion older than what Central has)
// are ignored entirely.
func TestStaleTakeoverIgnored(t *testing.T) {
	f := newFixture(t, nil)
	f.full(ip(1, 5), 10, member(1, 5, "n5", true), member(1, 4, "n4", true))
	f.report(&wire.Report{
		Leader: ip(1, 4), Version: 3, Full: true, PrevLeader: ip(1, 5), PrevVersion: 2,
		Members: []wire.Member{member(1, 4, "n4", true)},
	})
	// Group v10 under 10.0.1.5 must survive; n5 stays alive.
	if alive, _ := f.c.AdapterAlive(ip(1, 5)); !alive {
		t.Fatal("stale takeover killed the leader")
	}
	if len(f.c.Groups()[ip(1, 5)]) == 0 {
		t.Fatal("stale takeover deleted the current lineage")
	}
}
