package farm

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/event"
)

// Chaos test: a farm is subjected to a long seed-derived schedule of
// node kills, restarts, adapter failures of every mode, switch outages,
// and Central-initiated domain moves — with the protocol-invariant
// engine watching every trace record as the run unfolds — then left
// alone. Afterwards the whole system must converge (one view per
// segment, Central matching the daemons, verification clean), no
// invariant may have fired mid-run, and never-disturbed nodes must have
// no unsuppressed failure events.
func TestChaosConvergence(t *testing.T) {
	for _, seed := range []int64{101, 202, 303, 404, 505} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			chaosRun(t, seed)
		})
	}
}

// chaosSpec is the farm shape every chaos run uses: two domains over
// seven-node switches, three management nodes, aggressive protocol
// timers, flight recorder and journal on.
func chaosSpec(seed int64) Spec {
	spec := fastSpec(seed)
	spec.AdminNodes = 3
	spec.Domains = []DomainSpec{
		{Name: "acme", FrontEnds: 2, BackEnds: 3},
		{Name: "globex", FrontEnds: 2, BackEnds: 3},
	}
	spec.NodesPerSwitch = 7
	spec.Core.EscalationPatience = 3 * time.Second
	spec.Trace = true
	spec.Journal = true
	return spec
}

func chaosRun(t *testing.T, seed int64) {
	f, err := Build(chaosSpec(seed))
	if err != nil {
		t.Fatal(err)
	}
	engine := check.NewEngine(f)
	engine.Attach(f.Trace)
	f.Start()
	if _, ok := f.RunUntilStable(2 * time.Minute); !ok {
		t.Fatal("initial stabilization failed")
	}

	topo := f.CheckTopology()
	sched := check.Generate(seed, topo, check.GenOpts{})
	sched.Run(f)

	for _, msg := range f.ConvergenceFailures() {
		t.Error(msg)
	}
	for _, v := range engine.Violations() {
		t.Errorf("invariant violated:\n%s", v.Format())
	}
	// Never-disturbed nodes must have no unsuppressed failure events.
	disturbed := sched.Disturbed(topo)
	for _, e := range f.Bus.Filter(event.NodeFailed) {
		if !disturbed[e.Node] && !e.Suppressed {
			t.Errorf("undisturbed node %s was declared failed: %v", e.Node, e)
		}
	}
	if t.Failed() {
		t.Logf("reproduce with schedule:\n%s", sched)
	}
}

// TestSeededBugCaught plants the paper's §3 flaw — a leader acting on
// the first suspicion without the verification probe — and demands that
// (1) the invariant engine catches the unverified eviction while the
// chaos schedule is still running, and (2) the shrinker reduces the
// schedule to a handful of ops that still reproduce it.
func TestSeededBugCaught(t *testing.T) {
	const seed = 7
	buggy := func(s check.Schedule) (*check.Engine, time.Duration) {
		spec := chaosSpec(seed)
		spec.Core.UnsafeSkipVerify = true
		f, err := Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		engine := check.NewEngine(f)
		engine.Attach(f.Trace)
		f.Start()
		if _, ok := f.RunUntilStable(2 * time.Minute); !ok {
			t.Fatal("initial stabilization failed")
		}
		start := f.Now()
		s.Run(f)
		return engine, f.Now() - start
	}

	topo := func() check.Topology {
		f, err := Build(chaosSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		return f.CheckTopology()
	}()
	sched := check.Generate(seed, topo, check.GenOpts{Rounds: 12})
	sched.Settle = 45 * time.Second

	engine, ran := buggy(sched)
	vs := engine.Violations()
	if len(vs) == 0 {
		t.Fatal("seeded skip-verify bug produced no invariant violation")
	}
	if vs[0].T > ran+2*time.Minute {
		t.Errorf("violation not caught during the run (at %v)", vs[0].T)
	}
	found := false
	for _, v := range vs {
		if v.Checker == "eviction-evidence" {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("expected an eviction-evidence violation, got: %v", vs[0])
	}

	min, runs := check.Shrink(sched, func(c check.Schedule) bool {
		e, _ := buggy(c)
		return !e.Ok()
	}, 24)
	if len(min.Ops) > 5 {
		t.Errorf("shrinker left %d ops (want <= 5) after %d runs:\n%s",
			len(min.Ops), runs, min)
	}
	t.Logf("shrunk %d ops -> %d in %d runs; reproduction:\n%s\nGo literal:\n%s",
		len(sched.Ops), len(min.Ops), runs, min, min.GoLiteral())
}
