package wire

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/transport"
)

func ip4(a, b, c, d byte) transport.IP { return transport.MakeIP(a, b, c, d) }

// sampleMessages returns one populated instance of every message type.
func sampleMessages() []Message {
	mem := []Member{
		{IP: ip4(10, 0, 0, 9), Node: "web-09", Index: 1, Admin: false},
		{IP: ip4(10, 0, 0, 3), Node: "web-03", Index: 0, Admin: true},
	}
	return []Message{
		&Beacon{Sender: ip4(10, 0, 0, 1), Node: "web-01", Incarnation: 7, Leader: ip4(10, 0, 0, 9), Version: 12, Members: 5, Admin: true},
		&Prepare{Leader: ip4(10, 0, 0, 9), Version: 13, Token: 0xdeadbeef, Op: OpJoin, Members: mem},
		&PrepareAck{From: ip4(10, 0, 0, 3), Leader: ip4(10, 0, 0, 9), Version: 13, Token: 0xdeadbeef, OK: true},
		&Commit{Leader: ip4(10, 0, 0, 9), Version: 13, Token: 0xdeadbeef, Members: mem},
		&Abort{Leader: ip4(10, 0, 0, 9), Version: 13, Token: 42},
		&JoinRequest{From: ip4(10, 0, 0, 4), Node: "web-04", Index: 2, Admin: false, Incarnation: 3},
		&MergeOffer{From: ip4(10, 0, 0, 2), Version: 4, Members: mem},
		&Heartbeat{From: ip4(10, 0, 0, 5), Seq: 991, Version: 13, Leader: ip4(10, 0, 0, 9)},
		&Suspect{Reporter: ip4(10, 0, 0, 5), Suspect: ip4(10, 0, 0, 6), Version: 13, Reason: ReasonMissedHeartbeats},
		&Probe{From: ip4(10, 0, 0, 9), Nonce: 555},
		&ProbeAck{From: ip4(10, 0, 0, 6), Nonce: 555, Leader: ip4(10, 0, 0, 9), Version: 13},
		&Evict{Leader: ip4(10, 0, 0, 9), Target: ip4(10, 0, 0, 2), Version: 14},
		&ResyncRequest{From: ip4(10, 0, 1, 1)},
		&Ping{From: ip4(10, 0, 0, 1), Nonce: 777, Leader: ip4(10, 0, 0, 9)},
		&PingAck{From: ip4(10, 0, 0, 2), Target: ip4(10, 0, 0, 1), Nonce: 777},
		&PingReq{From: ip4(10, 0, 0, 1), Target: ip4(10, 0, 0, 2), Nonce: 778},
		&Report{Leader: ip4(10, 0, 0, 9), Segment: "vlan-100", Version: 13, Seq: 2, Full: true, PrevLeader: ip4(10, 0, 0, 11), PrevVersion: 12, Fresh: true, Members: mem, Left: []transport.IP{ip4(10, 0, 0, 8)}},
		&ReportAck{From: ip4(10, 0, 1, 1), Seq: 2},
		&Disable{Target: ip4(10, 0, 0, 8), Reason: "vlan mismatch vs configdb"},
		&SubPoll{From: ip4(10, 0, 0, 9), Subgroup: 3, Nonce: 99},
		&SubPollAck{From: ip4(10, 0, 0, 7), Subgroup: 3, Nonce: 99, Alive: 8},
		&JournalAppend{From: ip4(10, 0, 1, 1), Epoch: 2, Seq: 17, Payload: []byte{0xca, 0xfe, 0x01}},
		&JournalAck{From: ip4(10, 0, 1, 2), Epoch: 2, Seq: 17},
	}
}

func TestEveryTypeRoundTrips(t *testing.T) {
	for _, m := range sampleMessages() {
		pkt := Encode(m)
		got, err := Decode(pkt)
		if err != nil {
			t.Fatalf("%v: decode: %v", m.Type(), err)
		}
		if got.Type() != m.Type() {
			t.Fatalf("type mismatch: %v vs %v", got.Type(), m.Type())
		}
		norm(m)
		norm(got)
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%v round trip:\n sent %#v\n got  %#v", m.Type(), m, got)
		}
	}
}

// norm maps empty slices to nil so DeepEqual compares semantics.
func norm(m Message) {
	switch v := m.(type) {
	case *Prepare:
		if len(v.Members) == 0 {
			v.Members = nil
		}
	case *Commit:
		if len(v.Members) == 0 {
			v.Members = nil
		}
	case *MergeOffer:
		if len(v.Members) == 0 {
			v.Members = nil
		}
	case *Report:
		if len(v.Members) == 0 {
			v.Members = nil
		}
		if len(v.Left) == 0 {
			v.Left = nil
		}
	case *JournalAppend:
		if len(v.Payload) == 0 {
			v.Payload = nil
		}
	}
}

// TestEvictRoundTrip pins the Evict layout field by field: eviction is the
// stale-view healing path (leader expels a straggler so it rediscovers),
// and a silently dropped field would strand the straggler forever.
func TestEvictRoundTrip(t *testing.T) {
	sent := &Evict{Leader: ip4(10, 0, 2, 9), Target: ip4(10, 0, 2, 4), Version: 31}
	got, err := Decode(Encode(sent))
	if err != nil {
		t.Fatal(err)
	}
	ev, ok := got.(*Evict)
	if !ok {
		t.Fatalf("decoded to %T", got)
	}
	if ev.Leader != sent.Leader {
		t.Errorf("Leader = %v, want %v", ev.Leader, sent.Leader)
	}
	if ev.Target != sent.Target {
		t.Errorf("Target = %v, want %v", ev.Target, sent.Target)
	}
	if ev.Version != sent.Version {
		t.Errorf("Version = %d, want %d", ev.Version, sent.Version)
	}
}

func TestEmptyCollectionsRoundTrip(t *testing.T) {
	msgs := []Message{
		&Prepare{Leader: ip4(1, 2, 3, 4), Op: OpForm},
		&Report{Leader: ip4(1, 2, 3, 4)},
		&MergeOffer{From: ip4(1, 2, 3, 4)},
		&JournalAppend{From: ip4(1, 2, 3, 4), Epoch: 1, Seq: 1},
	}
	for _, m := range msgs {
		got, err := Decode(Encode(m))
		if err != nil {
			t.Fatalf("%v: %v", m.Type(), err)
		}
		norm(m)
		norm(got)
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%v: %#v vs %#v", m.Type(), m, got)
		}
	}
}

func TestSampleCoversAllTypes(t *testing.T) {
	seen := map[Type]bool{}
	for _, m := range sampleMessages() {
		seen[m.Type()] = true
	}
	for ty := TBeacon; ty < tMax; ty++ {
		if !seen[ty] {
			t.Errorf("sampleMessages misses %v; round-trip coverage gap", ty)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("nil packet accepted")
	}
	if _, err := Decode([]byte{codecVersion}); err == nil {
		t.Error("1-byte packet accepted")
	}
	if _, err := Decode([]byte{99, byte(TBeacon), 0, 0}); err == nil {
		t.Error("wrong version accepted")
	}
	if _, err := Decode([]byte{codecVersion, 0xEE, 0}); err == nil {
		t.Error("unknown type accepted")
	}
	good := Encode(&Heartbeat{From: ip4(1, 1, 1, 1), Seq: 1, Version: 1})
	if _, err := Decode(append(good, 0xFF)); err != ErrTrailing {
		t.Errorf("trailing byte: err = %v, want ErrTrailing", err)
	}
}

func TestTruncationNeverSucceedsNorPanics(t *testing.T) {
	for _, m := range sampleMessages() {
		pkt := Encode(m)
		for i := 2; i < len(pkt); i++ {
			got, err := Decode(pkt[:i])
			if err == nil {
				t.Fatalf("%v: prefix len %d of %d decoded: %#v", m.Type(), i, len(pkt), got)
			}
		}
	}
}

func TestRandomBytesNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 20000; i++ {
		b := make([]byte, rng.Intn(120))
		rng.Read(b)
		if len(b) >= 2 {
			b[0] = codecVersion
			b[1] = byte(1 + rng.Intn(int(tMax)))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %x: %v", b, r)
				}
			}()
			_, _ = Decode(b)
		}()
	}
}

// Hostile member counts must not cause huge allocations.
func TestHostileMemberCountBounded(t *testing.T) {
	e := &enc{}
	e.u8(codecVersion)
	e.u8(byte(TPrepare))
	e.ip(ip4(1, 1, 1, 1))
	e.u64(1)
	e.u64(1)
	e.u8(byte(OpForm))
	e.u16(0xffff) // claims 65535 members, then no bytes
	if _, err := Decode(e.buf); err == nil {
		t.Fatal("hostile member count accepted")
	}
}

func TestLongStringTruncatedAtEncode(t *testing.T) {
	long := make([]byte, 70000)
	for i := range long {
		long[i] = 'a'
	}
	m := &Disable{Target: ip4(1, 1, 1, 1), Reason: string(long)}
	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.(*Disable).Reason) != 0xffff {
		t.Fatalf("reason length = %d, want capped 65535", len(got.(*Disable).Reason))
	}
}

func TestBigMembershipRoundTrip(t *testing.T) {
	var mem []Member
	for i := 0; i < 1000; i++ {
		mem = append(mem, Member{
			IP:    transport.MakeIP(10, 0, byte(i/250), byte(i%250+1)),
			Node:  "node-xyz",
			Index: byte(i % 3),
			Admin: i%3 == 0,
		})
	}
	m := &Prepare{Leader: mem[0].IP, Version: 9, Token: 11, Op: OpMerge, Members: mem}
	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatal("1000-member prepare corrupted")
	}
}

func TestTypeStrings(t *testing.T) {
	for ty := TBeacon; ty < tMax; ty++ {
		if s := ty.String(); s == "" || s[0] == 'T' {
			t.Errorf("Type(%d).String() = %q", ty, s)
		}
	}
	if Type(200).String() != "Type(200)" {
		t.Error("unknown type string wrong")
	}
	for _, o := range []Op{OpForm, OpJoin, OpMerge, OpRemove} {
		if o.String() == "" {
			t.Error("empty Op string")
		}
	}
	for _, r := range []SuspectReason{ReasonMissedHeartbeats, ReasonProbeTimeout, ReasonPingTimeout, ReasonSubgroupDead} {
		if r.String() == "" {
			t.Error("empty reason string")
		}
	}
}

func TestHeartbeatWireSize(t *testing.T) {
	// Heartbeats dominate network load (paper §3); keep them tiny and
	// catch accidental growth: ver+type+ip+seq+version+leader = 26 bytes.
	pkt := Encode(&Heartbeat{From: ip4(1, 1, 1, 1), Seq: 1, Version: 1, Leader: ip4(1, 1, 1, 2)})
	if len(pkt) != 26 {
		t.Fatalf("heartbeat is %d bytes, want 26", len(pkt))
	}
}

func BenchmarkEncodeHeartbeat(b *testing.B) {
	m := &Heartbeat{From: ip4(10, 0, 0, 1), Seq: 1234, Version: 9}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(m)
	}
}

func BenchmarkDecodeHeartbeat(b *testing.B) {
	pkt := Encode(&Heartbeat{From: ip4(10, 0, 0, 1), Seq: 1234, Version: 9})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodePrepare64(b *testing.B) {
	var mem []Member
	for i := 0; i < 64; i++ {
		mem = append(mem, Member{IP: transport.MakeIP(10, 0, 0, byte(i+1)), Node: "n", Index: 0})
	}
	m := &Prepare{Leader: mem[0].IP, Version: 1, Token: 1, Op: OpForm, Members: mem}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(m)
	}
}
