// HTTP debug endpoint: Prometheus-text metrics, flight-recorder dumps,
// a liveness/health snapshot, expvar, and pprof, served off the protocol
// event loop so handlers never touch daemon state directly.
package main

import (
	"encoding/json"
	"expvar"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/central"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/span"
	"repro/internal/trace"
	"repro/internal/transport"
)

// adapterHealth is one adapter's row in the /healthz document.
type adapterHealth struct {
	Adapter string `json:"adapter"`
	Role    string `json:"role"` // "leader", "member", or "discovering"
	Leader  string `json:"leader,omitempty"`
	Version uint64 `json:"version,omitempty"`
	Members int    `json:"members,omitempty"`
}

// healthSnapshot is the /healthz document. It is assembled on the
// protocol event loop and published through an atomic pointer, so the
// HTTP handler serves a consistent (if up to ~2s stale) view without
// racing the single-threaded daemon.
type healthSnapshot struct {
	Node           string          `json:"node"`
	UptimeSec      float64         `json:"uptime_sec"`
	Adapters       []adapterHealth `json:"adapters"`
	HostingCentral bool            `json:"hosting_central"`
	CentralGroups  int             `json:"central_groups,omitempty"`
	CentralStable  bool            `json:"central_stable,omitempty"`
	TraceTotal     uint64          `json:"trace_total"`
	TraceDropped   uint64          `json:"trace_dropped"`
}

// healthRefreshEvery is how often the event loop republishes /healthz.
const healthRefreshEvery = 2 * time.Second

// startDebug wires the debug HTTP server and schedules the health
// snapshot refresher on the runtime event loop. It returns the actually
// bound address (useful with ":0") after the listener goroutine is
// launched, or "" if the listen failed. A non-nil fc additionally mounts
// the /fabricctl handlers the conformance harness drives faults through.
func startDebug(addr, node string, rt *transport.Runtime, eps []transport.Endpoint,
	d *core.Daemon, ctr *central.Central, rec *trace.Recorder, reg *metrics.Registry,
	fc *fabricControl) string {

	var cur atomic.Pointer[healthSnapshot]

	collect := func() *healthSnapshot {
		s := &healthSnapshot{
			Node:         node,
			UptimeSec:    rt.Now().Seconds(),
			TraceTotal:   rec.Total(),
			TraceDropped: rec.Dropped(),
		}
		for _, ep := range eps {
			row := adapterHealth{Adapter: ep.LocalIP().String(), Role: "discovering"}
			if v, ok := d.View(ep.LocalIP()); ok {
				row.Role = "member"
				if v.Leader() == ep.LocalIP() {
					row.Role = "leader"
				}
				row.Leader = v.Leader().String()
				row.Version = v.Version
				row.Members = v.Size()
			}
			s.Adapters = append(s.Adapters, row)
		}
		sort.Slice(s.Adapters, func(i, j int) bool { return s.Adapters[i].Adapter < s.Adapters[j].Adapter })
		if s.HostingCentral = d.HostingCentral(); s.HostingCentral {
			s.CentralGroups = ctr.GroupCount()
			s.CentralStable = ctr.Stable()
		}
		return s
	}
	var refresh func()
	refresh = func() {
		cur.Store(collect())
		rt.AfterFunc(healthRefreshEvery, refresh)
	}
	rt.AfterFunc(0, refresh)

	expvar.Publish("gulfstream", expvar.Func(func() any {
		return map[string]any{
			"node":          node,
			"trace_total":   rec.Total(),
			"trace_dropped": rec.Dropped(),
			"trace_enabled": rec.Enabled(),
		}
	}))

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteProm(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		serveTrace(w, r, rec)
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		serveSpans(w, r, node, eps, rec)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		s := cur.Load()
		if s == nil {
			http.Error(w, `{"status":"starting"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(s)
	})
	mux.HandleFunc("/topology", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		serveTopology(w, r, node, rt, d, ctr)
	})
	if fc != nil {
		fc.mount(mux, rt, ctr)
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Printf("gsd: debug endpoint: %v", err)
		return ""
	}
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Printf("gsd: debug endpoint: %v", err)
		}
	}()
	bound := ln.Addr().String()
	log.Printf("gsd: debug endpoint on http://%s (/metrics /trace /spans /healthz /topology /debug/vars /debug/pprof)", bound)
	return bound
}

// topologyDoc is the /topology document: Central's current belief about
// the farm, assembled on the protocol event loop. The conformance
// harness diffs Groups against its declared ground truth and, with
// ?verify=1, collects the configdb mismatch verdicts.
type topologyDoc struct {
	Node           string              `json:"node"`
	HostingCentral bool                `json:"hosting_central"`
	Active         bool                `json:"active"`
	Stable         bool                `json:"stable"`
	Groups         map[string][]string `json:"groups"`
	DeadNodes      []string            `json:"dead_nodes,omitempty"`
	Incidents      map[string]uint64   `json:"incidents,omitempty"`
	Mismatches     []string            `json:"mismatches,omitempty"`
}

// serveTopology snapshots Central's discovered topology. The collection
// runs as one event-loop turn so the document is internally consistent.
func serveTopology(w http.ResponseWriter, r *http.Request, node string,
	rt *transport.Runtime, d *core.Daemon, ctr *central.Central) {

	verify := r.URL.Query().Get("verify") != ""
	done := make(chan *topologyDoc, 1)
	rt.Post(func() {
		doc := &topologyDoc{
			Node:           node,
			HostingCentral: d.HostingCentral(),
			Active:         ctr.Active(),
			Stable:         ctr.Stable(),
			Groups:         map[string][]string{},
			DeadNodes:      ctr.DeadNodes(),
			Incidents:      ctr.Incidents(),
		}
		for leader, members := range ctr.Groups() {
			ms := make([]string, len(members))
			for i, ip := range members {
				ms[i] = ip.String()
			}
			doc.Groups[leader.String()] = ms
		}
		if verify {
			doc.Mismatches = []string{}
			for _, m := range ctr.Verify() {
				doc.Mismatches = append(doc.Mismatches, m.String())
			}
		}
		done <- doc
	})
	select {
	case doc := <-done:
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(doc)
	case <-time.After(5 * time.Second):
		http.Error(w, `{"error":"event loop unresponsive"}`, http.StatusServiceUnavailable)
	}
}

// fabricControl exposes the loopback fabric's runtime knobs over HTTP:
// rescoping an adapter to another emulated segment (the SNMP port-VLAN
// rewrite equivalent), injecting socket-level faults, and asking a hosted
// Central for a planned node move. Only mounted with -fabric-ctl.
type fabricControl struct {
	scoped map[transport.IP]*transport.ScopedEndpoint
}

func (fc *fabricControl) endpoint(w http.ResponseWriter, r *http.Request) (*transport.ScopedEndpoint, bool) {
	ip, ok := transport.ParseIP(r.URL.Query().Get("adapter"))
	if !ok {
		http.Error(w, `{"error":"bad adapter"}`, http.StatusBadRequest)
		return nil, false
	}
	sc, ok := fc.scoped[ip]
	if !ok {
		http.Error(w, `{"error":"adapter not scoped"}`, http.StatusNotFound)
		return nil, false
	}
	return sc, true
}

func (fc *fabricControl) mount(mux *http.ServeMux, rt *transport.Runtime, ctr *central.Central) {
	ok := func(w http.ResponseWriter) { fmt.Fprintln(w, `{"ok":true}`) }

	mux.HandleFunc("/fabricctl/rescope", func(w http.ResponseWriter, r *http.Request) {
		sc, found := fc.endpoint(w, r)
		if !found {
			return
		}
		group, okIP := transport.ParseIP(r.URL.Query().Get("group"))
		if !okIP || !group.IsMulticast() {
			http.Error(w, `{"error":"bad group"}`, http.StatusBadRequest)
			return
		}
		sc.Rescope(group)
		ok(w)
	})

	mux.HandleFunc("/fabricctl/fault", func(w http.ResponseWriter, r *http.Request) {
		sc, found := fc.endpoint(w, r)
		if !found {
			return
		}
		q := r.URL.Query()
		parseLoss := func(key string) (float64, bool) {
			s := q.Get(key)
			if s == "" {
				return 0, true
			}
			v, err := strconv.ParseFloat(s, 64)
			return v, err == nil
		}
		lossIn, okIn := parseLoss("loss_in")
		lossOut, okOut := parseLoss("loss_out")
		if !okIn || !okOut {
			http.Error(w, `{"error":"bad loss rate"}`, http.StatusBadRequest)
			return
		}
		if err := sc.SetFault(q.Get("mode"), lossIn, lossOut); err != nil {
			http.Error(w, fmt.Sprintf(`{"error":%q}`, err), http.StatusBadRequest)
			return
		}
		ok(w)
	})

	mux.HandleFunc("/fabricctl/segments", func(w http.ResponseWriter, r *http.Request) {
		// map=ip:scope,ip:scope — the fabric's full segment table. The
		// same (immutable) table is installed on every scoped adapter so
		// cross-segment unicast dies here the way it would at a bridge.
		table := map[transport.IP]transport.IP{}
		for _, pair := range strings.Split(r.URL.Query().Get("map"), ",") {
			pair = strings.TrimSpace(pair)
			if pair == "" {
				continue
			}
			ipStr, scopeStr, found := strings.Cut(pair, ":")
			ip, okIP := transport.ParseIP(ipStr)
			scope, okScope := transport.ParseIP(scopeStr)
			if !found || !okIP || !okScope || !scope.IsMulticast() {
				http.Error(w, fmt.Sprintf(`{"error":"bad segment pair %q"}`, pair), http.StatusBadRequest)
				return
			}
			table[ip] = scope
		}
		for _, sc := range fc.scoped {
			sc.SetSegments(table)
		}
		ok(w)
	})

	mux.HandleFunc("/fabricctl/move", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		node := q.Get("node")
		vlanByIndex := map[int]int{}
		for _, pair := range strings.Split(q.Get("set"), ",") {
			idxStr, vlanStr, found := strings.Cut(strings.TrimSpace(pair), ":")
			if !found {
				continue
			}
			idx, err1 := strconv.Atoi(idxStr)
			vlan, err2 := strconv.Atoi(vlanStr)
			if err1 != nil || err2 != nil {
				http.Error(w, `{"error":"bad set pair"}`, http.StatusBadRequest)
				return
			}
			vlanByIndex[idx] = vlan
		}
		if node == "" || len(vlanByIndex) == 0 {
			http.Error(w, `{"error":"need node and set=idx:vlan"}`, http.StatusBadRequest)
			return
		}
		done := make(chan error, 1)
		rt.Post(func() {
			ctr.MoveNode(node, vlanByIndex, func(err error) { done <- err })
		})
		select {
		case err := <-done:
			if err != nil {
				http.Error(w, fmt.Sprintf(`{"error":%q}`, err), http.StatusConflict)
				return
			}
			ok(w)
		case <-time.After(30 * time.Second):
			http.Error(w, `{"error":"move timed out"}`, http.StatusGatewayTimeout)
		}
	})
}

// localTopo resolves the one node a standalone gsd can see: its own.
// Spans stitched from a single daemon's recorder cover the stages this
// node participated in or was notified about; farm-wide stitching wants
// a Collector over every node's recorder (gsctl timeline, gsbench lag).
type localTopo struct {
	node string
	ips  []transport.IP
}

func (t localTopo) AdaptersOf(node string) []transport.IP {
	if node == t.node {
		return t.ips
	}
	return nil
}

// serveSpans stitches the retained trace window into end-to-end
// incident spans and dumps them as JSON. ?incident=<id> keeps one
// Central incident, ?kind=<kind> one span kind (failure, planned-move,
// unexpected-move, switch-failure, leader-change), ?open=1 only spans
// whose incident has not closed yet.
func serveSpans(w http.ResponseWriter, r *http.Request, node string,
	eps []transport.Endpoint, rec *trace.Recorder) {

	topo := localTopo{node: node}
	for _, ep := range eps {
		topo.ips = append(topo.ips, ep.LocalIP())
	}
	q := r.URL.Query()
	var incident uint64
	if s := q.Get("incident"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf(`{"error":"bad incident %q"}`, s), http.StatusBadRequest)
			return
		}
		incident = v
	}
	kind, openOnly := q.Get("kind"), q.Get("open") != ""
	spans := span.Stitch(rec.Snapshot(), topo)
	out := make([]*span.Span, 0, len(spans))
	for _, sp := range spans {
		if incident != 0 && sp.Incident != incident {
			continue
		}
		if kind != "" && sp.Kind != kind {
			continue
		}
		if openOnly && sp.Closed {
			continue
		}
		out = append(out, sp)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(out)
}

// serveTrace dumps the flight recorder. With no query parameters the
// whole retained window is returned in the standard dump envelope;
// ?kind=<substring> filters by record kind, ?node=<substring> by node
// name, ?n=<count> keeps only the most recent matches, and ?txns=1
// groups 2PC records by transaction instead.
func serveTrace(w http.ResponseWriter, r *http.Request, rec *trace.Recorder) {
	q := r.URL.Query()
	kind, node := q.Get("kind"), q.Get("node")
	n := 0
	if s := q.Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			http.Error(w, fmt.Sprintf(`{"error":"bad n %q"}`, s), http.StatusBadRequest)
			return
		}
		n = v
	}
	records := rec.Filter(func(rc trace.Record) bool {
		if kind != "" && !strings.Contains(rc.Kind.String(), kind) {
			return false
		}
		if node != "" && !strings.Contains(rc.Node, node) {
			return false
		}
		return true
	})
	if n > 0 && len(records) > n {
		records = records[len(records)-n:]
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if q.Get("txns") != "" {
		type txnJSON struct {
			ID      string         `json:"id"`
			Records []trace.Record `json:"records"`
		}
		out := []txnJSON{}
		for _, t := range trace.Txns(records) {
			out = append(out, txnJSON{ID: t.ID(), Records: t.Records})
		}
		enc.Encode(out)
		return
	}
	if kind == "" && node == "" && n == 0 {
		rec.WriteJSON(w)
		return
	}
	if records == nil {
		records = []trace.Record{}
	}
	enc.Encode(struct {
		Total   uint64         `json:"total"`
		Dropped uint64         `json:"dropped"`
		Records []trace.Record `json:"records"`
	}{rec.Total(), rec.Dropped(), records})
}
