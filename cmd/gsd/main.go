// Command gsd is the GulfStream daemon for real networks: the same
// protocol engine the simulator runs, driven by UDP multicast/unicast
// sockets and wall-clock time. Start one per node, listing the node's
// adapter addresses (the first is the administrative adapter); the
// daemons discover each other by beaconing on 224.0.0.71:7400, form
// Adapter Membership Groups per segment, and report to whichever node's
// administrative adapter wins the admin-AMG leadership (that node
// activates GulfStream Central and prints farm-level events).
//
// Usage:
//
//	gsd -node web-01 -adapters 10.1.0.5,10.4.0.5,10.5.0.5 [flags]
//
// With -journal-dir, a hosted Central keeps an append-only journal of its
// committed state there and streams it to the next-in-line administrative
// adapter, so a successor (or a restarted gsd) rebuilds its view from the
// journal instead of a multicast resync pull.
//
// Network segments can be emulated on one machine with network
// namespaces; see README.md.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/central"
	"repro/internal/configdb"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/event"
	"repro/internal/journal"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/transport"
)

func main() {
	var (
		node       = flag.String("node", "", "node name (required)")
		adapters   = flag.String("adapters", "", "comma-separated adapter IPv4 addresses; first is administrative (required)")
		tb         = flag.Duration("tb", 5*time.Second, "beacon phase Tb")
		ts         = flag.Duration("ts", 5*time.Second, "leader quiet wait Ts")
		tgsc       = flag.Duration("tgsc", 15*time.Second, "Central stabilization wait Tgsc")
		th         = flag.Duration("th", time.Second, "heartbeat interval Th")
		miss       = flag.Int("miss", 3, "missed-heartbeat sensitivity k")
		detName    = flag.String("detector", "biring", "failure detector: ring|biring|all-to-all|randping|subgroup")
		dbPath     = flag.String("configdb", "", "expected-topology JSON for Central verification (optional)")
		community  = flag.String("community", "farm-admin", "SNMP community for switch management")
		journalDir = flag.String("journal-dir", "", "directory for Central's durable state journal (empty = journal off)")
		seed       = flag.Int64("seed", 0, "randomness seed (0 = time-based)")
		debugAddr  = flag.String("debug-addr", "", "HTTP debug listen address serving /metrics, /trace, /healthz, /debug/vars, /debug/pprof (empty = off)")
		traceOn    = flag.Bool("trace", true, "capture protocol flight-recorder records")
		traceCap   = flag.Int("trace-cap", 0, "flight recorder capacity in records (0 = default)")
	)
	flag.Parse()
	if *node == "" || *adapters == "" {
		flag.Usage()
		os.Exit(2)
	}
	kind, err := detect.ParseKind(*detName)
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.DefaultConfig()
	cfg.BeaconPhase = *tb
	cfg.StableWait = *ts
	cfg.Detector = kind
	cfg.Consensus = kind == detect.BiRing
	cfg.DetectorParams.Interval = *th
	cfg.DetectorParams.MissThreshold = *miss

	rt := transport.NewRuntime()
	var eps []transport.Endpoint
	for _, s := range strings.Split(*adapters, ",") {
		ip, ok := transport.ParseIP(strings.TrimSpace(s))
		if !ok {
			log.Fatalf("gsd: bad adapter address %q", s)
		}
		ep, err := transport.NewUDPEndpoint(rt, ip)
		if err != nil {
			log.Fatalf("gsd: adapter %v: %v", ip, err)
		}
		defer ep.Close()
		eps = append(eps, ep)
	}

	var db *configdb.DB
	if *dbPath != "" {
		db, err = configdb.Load(*dbPath)
		if err != nil {
			log.Fatalf("gsd: configdb: %v", err)
		}
	}
	bus := event.NewBus(false)
	bus.Subscribe(func(e event.Event) {
		fmt.Printf("%s %v\n", time.Now().Format(time.RFC3339), e)
	})
	cc := central.DefaultConfig()
	cc.StabilizeWait = *tgsc
	cc.Community = *community
	ctr := central.New(cc, rt, bus, db)
	if *journalDir != "" {
		store, err := journal.NewFileStore(*journalDir, journal.FileOptions{})
		if err != nil {
			log.Fatalf("gsd: journal: %v", err)
		}
		j, err := journal.New(store, journal.Options{})
		if err != nil {
			log.Fatalf("gsd: journal: %v", err)
		}
		defer j.Close()
		ctr.SetJournal(j)
		state := "empty"
		if j.Loaded() {
			state = fmt.Sprintf("replayed %d groups", len(j.State().Groups))
		}
		log.Printf("gsd: state journal at %s (%s, epoch %d, seq %d)",
			*journalDir, state, j.Epoch(), j.Seq())
	}

	s := *seed
	if s == 0 {
		s = time.Now().UnixNano()
	}
	d, err := core.NewDaemon(cfg, *node, rt, rand.New(rand.NewSource(s)), eps)
	if err != nil {
		log.Fatal(err)
	}
	d.SetCentral(ctr)

	// Flight recorder + telemetry registry. The recorder is always
	// installed (a disabled recorder costs one atomic load per capture
	// site); the registry is fed from recorder records via the bridge.
	rec := trace.New(*traceCap)
	rec.Enable(*traceOn)
	reg := metrics.NewRegistry()
	rec.AddSink(metrics.ObserveTrace(reg))
	d.SetTracer(rec)
	ctr.SetTracer(rec, *node)
	if *debugAddr != "" {
		startDebug(*debugAddr, *node, rt, eps, d, ctr, rec, reg)
	}

	// Start inside the event loop so all protocol work is serialized.
	rt.AfterFunc(0, func() {
		d.Start()
		log.Printf("gsd: node %s up with %d adapters (admin %v), detector %v",
			*node, len(eps), d.AdminIP(), kind)
	})

	// Periodic status line.
	var status func()
	status = func() {
		for _, ep := range eps {
			if v, ok := d.View(ep.LocalIP()); ok {
				role := "member"
				if v.Leader() == ep.LocalIP() {
					role = "LEADER"
				}
				log.Printf("gsd: adapter %v: %s of %v", ep.LocalIP(), role, v)
			} else {
				log.Printf("gsd: adapter %v: discovering", ep.LocalIP())
			}
		}
		if d.HostingCentral() {
			log.Printf("gsd: this node hosts GulfStream Central (%d groups)", ctr.GroupCount())
		}
		if j := ctr.Journal(); j != nil && (d.HostingCentral() || j.Loaded()) {
			log.Printf("gsd: journal epoch %d seq %d (%d groups)", j.Epoch(), j.Seq(), len(j.State().Groups))
		}
		rt.AfterFunc(30*time.Second, status)
	}
	rt.AfterFunc(30*time.Second, status)

	go rt.Run()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("gsd: shutting down")
	rt.Close()
}
