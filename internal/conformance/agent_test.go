package conformance

import (
	"testing"
	"time"

	"repro/internal/snmp"
	"repro/internal/switchsim"
	"repro/internal/transport"
)

// The harness switch agent must answer SNMP over real UDP — regression
// for the agent's event loop never being started (requests queued
// forever, every planned move timed out). The client runs on a
// ScopedEndpoint exactly as a hosted Central's does.
func TestSwitchAgentAnswersOverRealUDP(t *testing.T) {
	spec := DefaultFarm()
	applied := make(chan [2]int, 1)
	agent, err := startSwitchAgent(spec, func(port, vlan int) {
		applied <- [2]int{port, vlan}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.close()

	rt := transport.NewRuntime()
	defer rt.Close()
	rt.RunAsync()
	adminIP := spec.Nodes[4].Adapters[0].IP
	inner, err := transport.NewUDPEndpoint(rt, adminIP)
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	scope, _ := spec.Scope(1)
	ep := transport.NewScopedEndpoint(inner, scope)

	dataPort := spec.Nodes[0].Adapters[1].Port
	done := make(chan error, 1)
	rt.Post(func() {
		cl := snmp.NewClient(ep, rt, spec.Community, 7410)
		agentAddr := transport.Addr{IP: spec.SwitchIP, Port: spec.SwitchPort}
		cl.Set(agentAddr, switchsim.OIDPortVLAN(dataPort), snmp.Integer(102), func(err error) {
			done <- err
		})
	})
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("set failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no SNMP response within 5s")
	}
	select {
	case pv := <-applied:
		if pv[0] != dataPort || pv[1] != 102 {
			t.Fatalf("apply hook got port=%d vlan=%d, want port=%d vlan=102", pv[0], pv[1], dataPort)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("apply hook never fired")
	}
}
