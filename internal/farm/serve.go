package farm

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/serve"
	"repro/internal/switchsim"
)

// This file makes Farm the serving plane's world: it satisfies
// serve.Directory (the topology the balancer seeds from) and
// serve.Oracle (the ground truth requests resolve against), and adds the
// out-of-band failure the paper's verification chapter worries about —
// a domain move performed behind Central's back.

// Domains lists the farm's security domains in spec order
// (serve.Directory).
func (f *Farm) Domains() []string {
	out := make([]string, 0, len(f.Spec.Domains))
	for _, d := range f.Spec.Domains {
		out = append(out, d.Name)
	}
	return out
}

// FrontEnds lists the domain's front-end nodes in build order
// (serve.Directory).
func (f *Farm) FrontEnds(domain string) []string {
	var out []string
	for _, name := range f.order {
		info := f.Nodes[name]
		if info.Role == "frontend" && info.Domain == domain {
			out = append(out, name)
		}
	}
	return out
}

// DomainOf resolves a front-end node's current domain from the switch
// fabric: whichever domain's front VLAN its front adapter is wired into
// right now (serve.Directory). Reading the fabric — not the config DB —
// means surprise moves resolve correctly too; what makes them expensive
// is that nothing tells the balancer to re-ask until the move is finally
// correlated. Not-ok when the node is unknown, not a front-end, or its
// segment is dark (switch or port down).
func (f *Farm) DomainOf(node string) (string, bool) {
	info, ok := f.Nodes[node]
	if !ok || info.Role != "frontend" || len(info.Adapters) < 2 {
		return "", false
	}
	seg, ok := f.Fabric.SegmentOf(info.Adapters[1])
	if !ok {
		return "", false
	}
	for i, d := range f.Spec.Domains {
		if seg == switchsim.SegmentName(FrontVLAN(i)) {
			return d.Name, true
		}
	}
	return "", false
}

// Serves is the ground truth a routed request resolves against
// (serve.Oracle): the node's daemon is running, its front adapter is
// healthy, and the fabric has that adapter wired into the domain's front
// VLAN — switch up, port up, VLAN matching. Anything less and a real
// client would have gotten an error.
func (f *Farm) Serves(node, domain string) bool {
	info, ok := f.Nodes[node]
	if !ok || info.Role != "frontend" || len(info.Adapters) < 2 {
		return false
	}
	if !f.Daemons[node].Running() {
		return false
	}
	front := info.Adapters[1]
	if f.adapters[front].Mode() != netsim.Healthy {
		return false
	}
	di := f.domainIndex(domain)
	if di < 0 {
		return false
	}
	seg, ok := f.Fabric.SegmentOf(front)
	return ok && seg == switchsim.SegmentName(FrontVLAN(di))
}

func (f *Farm) domainIndex(domain string) int {
	for i, d := range f.Spec.Domains {
		if d.Name == domain {
			return i
		}
	}
	return -1
}

// SurpriseMoveNode rewires the node's ports to the target domain's VLANs
// directly on the switches, bypassing Central and the configuration
// database — the "reconfiguration behind GulfStream's back" of paper
// §3.1. Central sees unexplained adapter deaths, later correlates the
// rejoin as an UNEXPECTED move, and verification flags the DB mismatch;
// until all that lands, the serving plane keeps routing to a node that
// is gone.
func (f *Farm) SurpriseMoveNode(node, toDomain string) error {
	di := f.domainIndex(toDomain)
	if di < 0 {
		return fmt.Errorf("farm: unknown domain %q", toDomain)
	}
	info, ok := f.Nodes[node]
	if !ok {
		return fmt.Errorf("farm: unknown node %q", node)
	}
	moves := map[int]int{}
	switch info.Role {
	case "frontend":
		moves[1] = FrontVLAN(di)
		moves[2] = BackVLAN(di)
	case "backend":
		moves[1] = BackVLAN(di)
	default:
		return fmt.Errorf("farm: node %q (role %s) is not movable", node, info.Role)
	}
	f.traceFault(node, "surprise-move "+toDomain)
	for idx, vlan := range moves {
		ip := info.Adapters[idx]
		sw, port, ok := f.Fabric.Locate(ip)
		if !ok {
			return fmt.Errorf("farm: adapter %v is not wired", ip)
		}
		if err := sw.SetPortVLAN(port, vlan); err != nil {
			return err
		}
	}
	// Deliberately no f.DB or info.Domain update: the config database
	// still claims the old domain, which is what verification must catch.
	return nil
}

// AttachServe assembles a serving plane over this farm: balancer fed
// from the farm's event bus through pipe (direct tap when nil), workload
// resolving against the farm's ground truth, stats into the farm's
// metrics registry and flight recorder.
func (f *Farm) AttachServe(cfg serve.Config, pipe serve.Pipe) *serve.Plane {
	return serve.Attach(cfg, f.Clock(), f.Bus, f, f, f.Metrics, f.Trace, pipe)
}
