package span

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/trace"
	"repro/internal/transport"
)

// Topology is what the stitcher needs from the farm: which adapters
// belong to a node, so detection records (keyed by adapter IP) can be
// tied to the incident's subject (keyed by node name).
type Topology interface {
	AdaptersOf(node string) []transport.IP
}

// forever bounds open-ended searches.
const forever = time.Duration(1<<63 - 1)

// Stitch builds lifecycle spans from a merged record chronology (see
// Collector.Records). Incident spans are keyed by Central's incident id
// (one span per KNotifySent correlator); leader-change spans are
// stitched directly from KLeaderTakeover records. topo may be nil when
// no detection records are expected (pure Central dumps).
func Stitch(records []trace.Record, topo Topology) []*Span {
	st := &stitcher{recs: records, topo: topo}
	spans := st.incidents()
	spans = append(spans, st.leaderChanges()...)
	sort.SliceStable(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Start() != b.Start() {
			return a.Start() < b.Start()
		}
		if len(a.Milestones) > 0 && len(b.Milestones) > 0 &&
			a.Milestones[0].Seq != b.Milestones[0].Seq {
			return a.Milestones[0].Seq < b.Milestones[0].Seq
		}
		if a.Central != b.Central {
			return a.Central < b.Central
		}
		return a.Incident < b.Incident
	})
	for i, s := range spans {
		s.Ref = fmt.Sprintf("s%d", i+1)
	}
	return spans
}

type stitcher struct {
	recs []trace.Record
	topo Topology
}

// find returns the first record in [from, to] matching pred, in merged
// chronology order.
func (s *stitcher) find(from, to time.Duration, pred func(*trace.Record) bool) *trace.Record {
	for i := range s.recs {
		r := &s.recs[i]
		if r.T < from {
			continue
		}
		if r.T > to {
			return nil
		}
		if pred(r) {
			return r
		}
	}
	return nil
}

// findLast returns the last record in [from, to] matching pred.
func (s *stitcher) findLast(from, to time.Duration, pred func(*trace.Record) bool) *trace.Record {
	var hit *trace.Record
	for i := range s.recs {
		r := &s.recs[i]
		if r.T < from {
			continue
		}
		if r.T > to {
			break
		}
		if pred(r) {
			hit = r
		}
	}
	return hit
}

func ms(stage Stage, r *trace.Record) Milestone {
	return Milestone{Stage: stage, T: r.T, Seq: r.Seq, Node: r.Node, Detail: r.Detail}
}

// incidentAgg is one Central incident's raw material: every KNotifySent
// issued under the id, plus the KIncidentClosed record when resolved.
type incidentAgg struct {
	central string
	id      uint64
	subject string
	// kind0 is the first notification's event kind ("node-failed",
	// "move-started", ...), which classifies the span.
	kind0    string
	notifies []*trace.Record
	closed   *trace.Record
}

// notifyKind splits a KNotifySent Detail ("<event-kind> <subject>").
func notifyKind(detail string) (kind, subject string) {
	if i := strings.IndexByte(detail, ' '); i >= 0 {
		return detail[:i], detail[i+1:]
	}
	return detail, ""
}

// incidents stitches one span per Central incident id.
func (s *stitcher) incidents() []*Span {
	type key struct {
		central string
		id      uint64
	}
	byKey := make(map[key]*incidentAgg)
	var order []*incidentAgg
	for i := range s.recs {
		r := &s.recs[i]
		switch r.Kind {
		case trace.KNotifySent:
			k := key{r.Node, r.Token}
			agg := byKey[k]
			if agg == nil {
				kind0, subject := notifyKind(r.Detail)
				agg = &incidentAgg{central: r.Node, id: r.Token, subject: subject, kind0: kind0}
				byKey[k] = agg
				order = append(order, agg)
			}
			agg.notifies = append(agg.notifies, r)
		case trace.KIncidentClosed:
			if agg := byKey[key{r.Node, r.Token}]; agg != nil && agg.closed == nil {
				agg.closed = r
			}
		}
	}

	// floor bounds each subject's backward searches to after its previous
	// incident, so back-to-back incidents don't steal each other's
	// records.
	floor := make(map[string]time.Duration)
	spans := make([]*Span, 0, len(order))
	for _, agg := range order {
		var sp *Span
		switch agg.kind0 {
		case "move-started":
			sp = s.moveSpan(agg)
		case "node-moved":
			sp = s.notifyOnlySpan(agg, KindUnexpectedMove)
		case "switch-failed":
			sp = s.notifyOnlySpan(agg, KindSwitchFailure)
		default:
			sp = s.failureSpan(agg, floor[agg.subject])
		}
		floor[agg.subject] = agg.notifies[0].T
		spans = append(spans, sp)
	}
	return spans
}

// newIncidentSpan seeds the span shell shared by every incident kind.
func newIncidentSpan(agg *incidentAgg, kind string) *Span {
	sp := &Span{
		Kind:     kind,
		Incident: agg.id,
		Central:  agg.central,
		Subject:  agg.subject,
	}
	if agg.closed != nil {
		sp.Closed = true
		sp.ClosedAt = agg.closed.T
	}
	return sp
}

// finish sorts milestones chronologically and records which expected
// stages were never reached.
func (sp *Span) finish(expected ...Stage) {
	sort.SliceStable(sp.Milestones, func(i, j int) bool {
		a, b := sp.Milestones[i], sp.Milestones[j]
		if a.T != b.T {
			return a.T < b.T
		}
		return a.Seq < b.Seq
	})
	for _, st := range expected {
		if sp.Milestone(st) == nil {
			sp.Missing = append(sp.Missing, st)
		}
	}
}

// failureSpan stitches the full detection→reroute pipeline for a node
// or adapter failure incident.
func (s *stitcher) failureSpan(agg *incidentAgg, floor time.Duration) *Span {
	sp := newIncidentSpan(agg, KindFailure)
	open := agg.notifies[0].T
	subject := agg.subject

	// Ground truth: the harness fault that caused it all, when recorded.
	from := floor
	if fault := s.findLast(floor, open, func(r *trace.Record) bool {
		return r.Kind == trace.KFaultInjected && r.Node == subject
	}); fault != nil {
		sp.Milestones = append(sp.Milestones, ms(StFault, fault))
		from = fault.T
	}

	// Detection: a multi-adapter subject runs one detection chain per
	// AMG its adapters sat in, and the notification came from whichever
	// chain reached Central's report first — not necessarily the one
	// whose suspicion fired first. Build a candidate chain per suspect
	// adapter (anchored at its first suspicion before the notify) and
	// keep the most complete; the earlier suspicion wins ties, so a
	// single-adapter subject behaves as before.
	var adapters []transport.IP
	if s.topo != nil {
		adapters = s.topo.AdaptersOf(subject)
	}
	isSubjectAdapter := func(ip transport.IP) bool {
		for _, a := range adapters {
			if a == ip {
				return true
			}
		}
		return false
	}
	var best []Milestone
	tried := map[transport.IP]bool{}
	for {
		susp := s.find(from, open, func(r *trace.Record) bool {
			return r.Kind == trace.KSuspicionRaised && isSubjectAdapter(r.Peer) && !tried[r.Peer]
		})
		if susp == nil {
			break
		}
		tried[susp.Peer] = true
		if chain := s.detectionChain(susp, open); len(chain) > len(best) {
			best = chain
		}
	}
	sp.Milestones = append(sp.Milestones, best...)

	// Notification, and the serving plane's reaction to it.
	sp.Milestones = append(sp.Milestones, ms(StNotify, agg.notifies[0]))
	expected := []Stage{StSuspicion, StProbe, StVerdict, StPrepare, StCommit,
		StView, StReport, StNotify}
	if reroute := s.find(open, forever, func(r *trace.Record) bool {
		return r.Kind == trace.KServeBackendDown && r.Token == agg.id
	}); reroute != nil {
		sp.Milestones = append(sp.Milestones, ms(StReroute, reroute))
		sp.Domain = firstField(reroute.Detail)
		expected = append(expected, StReroute, StClean)
		if clean := s.find(reroute.T, forever, func(r *trace.Record) bool {
			return r.Kind == trace.KServeClean && r.Detail == sp.Domain
		}); clean != nil {
			sp.Milestones = append(sp.Milestones, ms(StClean, clean))
		}
	}
	sp.finish(expected...)
	return sp
}

// detectionChain builds one suspect adapter's detection→eviction chain
// from its first suspicion record: suspicion → probe → verdict, then
// the 2PC the verifying adapter runs as leader.
func (s *stitcher) detectionChain(susp *trace.Record, to time.Duration) []Milestone {
	out := []Milestone{ms(StSuspicion, susp)}
	suspect, cur := susp.Peer, susp.T
	if probe := s.find(cur, to, func(r *trace.Record) bool {
		return r.Kind == trace.KProbeSent && r.Peer == suspect
	}); probe != nil {
		out = append(out, ms(StProbe, probe))
		cur = probe.T
	}
	// Verdict, then the eviction 2PC the verifier runs as leader: its
	// prepare carries Group == the verifying adapter (Self).
	verdict := s.find(cur, to, func(r *trace.Record) bool {
		return r.Kind == trace.KVerdictDead && r.Peer == suspect
	})
	if verdict == nil {
		return out
	}
	out = append(out, ms(StVerdict, verdict))
	return append(out, s.commitChain(verdict.Self, verdict.T, to)...)
}

// commitChain returns the 2PC prepare → commit → view-commit → report
// milestones led by the given adapter, starting no earlier than from.
func (s *stitcher) commitChain(leader transport.IP, from, to time.Duration) []Milestone {
	var out []Milestone
	prepare := s.find(from, to, func(r *trace.Record) bool {
		return r.Kind == trace.KPrepareSent && r.Group == leader
	})
	if prepare == nil {
		return out
	}
	out = append(out, ms(StPrepare, prepare))
	commit := s.find(prepare.T, to, func(r *trace.Record) bool {
		return r.Kind == trace.KCommitSent && r.Group == prepare.Group
	})
	if commit == nil {
		return out
	}
	out = append(out, ms(StCommit, commit))
	view := s.find(commit.T, to, func(r *trace.Record) bool {
		return r.Kind == trace.KViewCommit && r.Group == commit.Group &&
			r.Version == commit.Version
	})
	if view == nil {
		return out
	}
	out = append(out, ms(StView, view))
	if report := s.find(view.T, to, func(r *trace.Record) bool {
		return r.Kind == trace.KReportApplied && r.Group == commit.Group &&
			r.Version >= commit.Version
	}); report != nil {
		out = append(out, ms(StReport, report))
	}
	return out
}

// moveSpan stitches a planned move: drain → rejoin view → report →
// move-done → restore, with an optional first-clean when the drain cost
// any errors.
func (s *stitcher) moveSpan(agg *incidentAgg) *Span {
	sp := newIncidentSpan(agg, KindPlannedMove)
	open := agg.notifies[0].T
	subject := agg.subject
	sp.Milestones = append(sp.Milestones, ms(StNotify, agg.notifies[0]))

	expected := []Stage{StNotify, StView, StReport, StMoveDone}
	var reroute *trace.Record
	if reroute = s.find(open, forever, func(r *trace.Record) bool {
		return r.Kind == trace.KServeBackendDown && r.Token == agg.id
	}); reroute != nil {
		sp.Milestones = append(sp.Milestones, ms(StReroute, reroute))
		sp.Domain = firstField(reroute.Detail)
		expected = append(expected, StReroute, StRestore)
	}
	// The subject's first view commit after the drain is the rejoin into
	// its new domain's group.
	if view := s.find(open, forever, func(r *trace.Record) bool {
		return r.Kind == trace.KViewCommit && r.Node == subject
	}); view != nil {
		sp.Milestones = append(sp.Milestones, ms(StView, view))
		if report := s.find(view.T, forever, func(r *trace.Record) bool {
			return r.Kind == trace.KReportApplied && r.Group == view.Group &&
				r.Version >= view.Version
		}); report != nil {
			sp.Milestones = append(sp.Milestones, ms(StReport, report))
		}
	}
	for _, n := range agg.notifies {
		if kind, _ := notifyKind(n.Detail); kind == "node-moved" {
			sp.Milestones = append(sp.Milestones, ms(StMoveDone, n))
			break
		}
	}
	if restore := s.find(open, forever, func(r *trace.Record) bool {
		return r.Kind == trace.KServeBackendUp && r.Token == agg.id
	}); restore != nil {
		sp.Milestones = append(sp.Milestones, ms(StRestore, restore))
		if clean := s.find(restore.T, forever, func(r *trace.Record) bool {
			return r.Kind == trace.KServeClean && r.Detail == sp.Domain
		}); clean != nil {
			sp.Milestones = append(sp.Milestones, ms(StClean, clean))
		}
	}
	sp.finish(expected...)
	return sp
}

// notifyOnlySpan covers incidents whose lifecycle is entirely Central's
// correlation (unexpected moves, switch failures): milestones are the
// notifications themselves.
func (s *stitcher) notifyOnlySpan(agg *incidentAgg, kind string) *Span {
	sp := newIncidentSpan(agg, kind)
	for i, n := range agg.notifies {
		st := StNotify
		if k, _ := notifyKind(n.Detail); i > 0 && k == "node-moved" {
			st = StMoveDone
		}
		sp.Milestones = append(sp.Milestones, ms(st, n))
	}
	sp.finish(StNotify)
	return sp
}

// leaderChanges stitches one trace-only span per takeover: promotion
// followed by the reform 2PC under the new leader. They carry no
// incident id — Central sees only the membership churn — so they are
// not part of the closure audit.
func (s *stitcher) leaderChanges() []*Span {
	var spans []*Span
	for i := range s.recs {
		r := &s.recs[i]
		if r.Kind != trace.KLeaderTakeover {
			continue
		}
		// Bound the chain by this adapter's next takeover, if any.
		to := forever
		for j := i + 1; j < len(s.recs); j++ {
			n := &s.recs[j]
			if n.Kind == trace.KLeaderTakeover && n.Self == r.Self {
				to = n.T
				break
			}
		}
		sp := &Span{Kind: KindLeaderChange, Subject: r.Node}
		sp.Milestones = append(sp.Milestones, ms(StTakeover, r))
		sp.Milestones = append(sp.Milestones, s.commitChain(r.Self, r.T, to)...)
		if rep := sp.Milestone(StReport); rep != nil {
			sp.Closed = true
			sp.ClosedAt = rep.T
		}
		sp.finish(StTakeover, StPrepare, StCommit, StView, StReport)
		spans = append(spans, sp)
	}
	return spans
}

func firstField(s string) string {
	if i := strings.IndexByte(s, ' '); i >= 0 {
		return s[:i]
	}
	return s
}

// Audit checks the stitched timeline's invariants: every incident span
// of the final Central regime must close, milestones must be monotone,
// and the per-stage attribution must partition the span exactly — no
// unattributed interval. One finding per violation; empty means every
// incident's story is complete.
//
// Closure is a per-regime promise: a Central that deactivates freezes
// its incident map, so its open incidents can never close. The regime
// boundaries come from the trace itself: KCentralActivated opens a
// central's regime, KCentralDeactivated ends it (regimes from different
// hosts may overlap during reconvergence — a restored standby can
// activate before the incumbent notices and resigns, and the incumbent
// may even outlive the pretender). Only incidents opened by a central
// that is still active at the end of the records, during its final
// activation, are expected to close. When the records carry no
// activation at all (synthetic streams, single-process dumps), every
// incident is audited.
func Audit(records []trace.Record, topo Topology) []string {
	var out []string
	sawActivation := false
	active := map[string]bool{}
	lastAct := map[string]time.Duration{}
	for i := range records {
		switch r := &records[i]; r.Kind {
		case trace.KCentralActivated:
			sawActivation = true
			active[r.Node] = true
			lastAct[r.Node] = r.T
		case trace.KCentralDeactivated:
			active[r.Node] = false
		}
	}
	for _, sp := range Stitch(records, topo) {
		if sp.Incident != 0 && !sp.Closed {
			open := sp.Start()
			if m := sp.Milestone(StNotify); m != nil {
				open = m.T
			}
			finalRegime := !sawActivation ||
				(active[sp.Central] && open >= lastAct[sp.Central])
			if finalRegime {
				out = append(out, fmt.Sprintf(
					"span: incident %d (%s %s) opened at %v never closed",
					sp.Incident, sp.Kind, sp.Subject, open))
			}
		}
		if !sp.Monotone() {
			out = append(out, fmt.Sprintf(
				"span: %s %s milestones not monotone", sp.Kind, sp.Subject))
		}
		var sum time.Duration
		for _, sd := range sp.StageDurations() {
			sum += sd.D
		}
		if sum != sp.Total() {
			out = append(out, fmt.Sprintf(
				"span: %s %s stage durations sum to %v, span total is %v",
				sp.Kind, sp.Subject, sum, sp.Total()))
		}
	}
	return out
}
