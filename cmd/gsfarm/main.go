// Command gsfarm runs a simulated multi-domain server farm from a JSON
// scenario file: it builds the farm, boots the daemons, executes a
// scripted fault/reconfiguration timeline, and prints the event stream,
// the discovered topology, and traffic statistics.
//
// Usage:
//
//	gsfarm scenario.json
//	gsfarm -print-example > scenario.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	gulfstream "repro"
)

// Scenario is the JSON scenario format.
type Scenario struct {
	Seed            int64        `json:"seed"`
	AdminNodes      int          `json:"adminNodes"`
	UniformNodes    int          `json:"uniformNodes,omitempty"`
	UniformAdapters int          `json:"uniformAdapters,omitempty"`
	Domains         []DomainJSON `json:"domains,omitempty"`
	LossPct         float64      `json:"lossPct,omitempty"`
	StartSkewMS     int          `json:"startSkewMs,omitempty"`
	DurationS       int          `json:"durationS"`
	Script          []Step       `json:"script,omitempty"`
}

// DomainJSON mirrors gulfstream.DomainSpec.
type DomainJSON struct {
	Name      string `json:"name"`
	FrontEnds int    `json:"frontEnds"`
	BackEnds  int    `json:"backEnds"`
}

// Step is one scripted action.
type Step struct {
	AtS    float64 `json:"atS"`
	Action string  `json:"action"` // kill-node|restart-node|kill-switch|restore-switch|move-node|fail-adapter|verify
	Target string  `json:"target,omitempty"`
	Arg    string  `json:"arg,omitempty"` // move-node: destination domain; fail-adapter: recv|send|stop|ok
}

func exampleScenario() Scenario {
	return Scenario{
		Seed:       1,
		AdminNodes: 2,
		Domains: []DomainJSON{
			{Name: "acme", FrontEnds: 2, BackEnds: 3},
			{Name: "globex", FrontEnds: 2, BackEnds: 3},
		},
		StartSkewMS: 2000,
		DurationS:   240,
		Script: []Step{
			{AtS: 60, Action: "kill-node", Target: "acme-be-01"},
			{AtS: 100, Action: "restart-node", Target: "acme-be-01"},
			{AtS: 140, Action: "move-node", Target: "globex-be-02", Arg: "acme"},
			{AtS: 220, Action: "verify"},
		},
	}
}

func main() {
	printExample := flag.Bool("print-example", false, "print an example scenario and exit")
	quiet := flag.Bool("quiet", false, "suppress the live event stream")
	flag.Parse()
	if *printExample {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(exampleScenario())
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gsfarm [-quiet] scenario.json | gsfarm -print-example")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	var sc Scenario
	if err := json.Unmarshal(data, &sc); err != nil {
		log.Fatalf("gsfarm: bad scenario: %v", err)
	}
	if err := run(sc, *quiet); err != nil {
		log.Fatal(err)
	}
}

func run(sc Scenario, quiet bool) error {
	spec := gulfstream.Spec{
		Seed:            sc.Seed,
		AdminNodes:      sc.AdminNodes,
		UniformNodes:    sc.UniformNodes,
		UniformAdapters: sc.UniformAdapters,
		Loss:            sc.LossPct / 100,
		StartSkew:       time.Duration(sc.StartSkewMS) * time.Millisecond,
		RecordEvents:    true,
	}
	for _, d := range sc.Domains {
		spec.Domains = append(spec.Domains, gulfstream.DomainSpec{
			Name: d.Name, FrontEnds: d.FrontEnds, BackEnds: d.BackEnds,
		})
	}
	f, err := gulfstream.NewFarm(spec)
	if err != nil {
		return err
	}
	if !quiet {
		f.Bus.Subscribe(func(e gulfstream.Event) { fmt.Printf("event %v\n", e) })
	}

	// Schedule the script.
	steps := append([]Step(nil), sc.Script...)
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].AtS < steps[j].AtS })
	for _, st := range steps {
		st := st
		f.Sched.AfterFunc(time.Duration(st.AtS*float64(time.Second)), func() {
			if err := apply(f, st); err != nil {
				fmt.Printf("script %+v: ERROR %v\n", st, err)
			} else {
				fmt.Printf("script t=%v: %s %s %s\n", f.Sched.Now(), st.Action, st.Target, st.Arg)
			}
		})
	}

	f.Start()
	f.RunFor(time.Duration(sc.DurationS) * time.Second)

	// Final state.
	fmt.Println("\n=== final topology ===")
	c := f.ActiveCentral()
	if c == nil {
		fmt.Println("no active GulfStream Central")
	} else {
		leaders := make([]gulfstream.IP, 0)
		groups := c.Groups()
		for l := range groups {
			leaders = append(leaders, l)
		}
		sort.Slice(leaders, func(i, j int) bool { return leaders[i] < leaders[j] })
		for _, l := range leaders {
			seg, _ := f.SegmentOf(l)
			fmt.Printf("group %v (%s): %d members\n", l, seg, len(groups[l]))
		}
		if ms := c.Verify(); len(ms) > 0 {
			fmt.Println("\nverification findings:")
			for _, m := range ms {
				fmt.Printf("  %v\n", m)
			}
		} else {
			fmt.Println("\nverification: clean")
		}
	}
	fmt.Println("\n=== traffic by protocol plane ===")
	fmt.Print(f.Metrics.Summary())
	return nil
}

func apply(f *gulfstream.Farm, st Step) error {
	switch st.Action {
	case "kill-node":
		return f.KillNode(st.Target)
	case "restart-node":
		return f.RestartNode(st.Target)
	case "kill-switch":
		return f.KillSwitch(st.Target)
	case "restore-switch":
		return f.RestoreSwitch(st.Target)
	case "move-node":
		return f.MoveNodeToDomain(st.Target, st.Arg, func(err error) {
			if err != nil {
				fmt.Printf("move %s: SNMP error: %v\n", st.Target, err)
			}
		})
	case "fail-adapter":
		ip, ok := gulfstream.ParseIP(st.Target)
		if !ok {
			return fmt.Errorf("bad adapter %q", st.Target)
		}
		mode := map[string]gulfstream.FailureMode{
			"recv": gulfstream.FailRecv, "send": gulfstream.FailSend,
			"stop": gulfstream.FailStop, "ok": gulfstream.Healthy,
		}
		m, ok := mode[st.Arg]
		if !ok {
			return fmt.Errorf("bad failure mode %q", st.Arg)
		}
		return f.FailAdapter(ip, m)
	case "verify":
		c := f.ActiveCentral()
		if c == nil {
			return fmt.Errorf("no active central")
		}
		for _, m := range c.Verify() {
			fmt.Printf("  verify: %v\n", m)
		}
		return nil
	default:
		return fmt.Errorf("unknown action %q", st.Action)
	}
}
