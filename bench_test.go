package gulfstream

import (
	"testing"
	"time"

	"repro/internal/detect"
	"repro/internal/exp"
)

// One benchmark per paper artifact (DESIGN.md §5). Each iteration runs a
// deterministic simulation of the experiment and reports the headline
// quantity via b.ReportMetric, so `go test -bench . -benchmem` regenerates
// the evaluation's shape. cmd/gsbench prints the full tables.

// BenchmarkFig5_TimeToStable reproduces E1 / Figure 5: the time for all
// groups to become stable is constant in the number of adapters and equal
// to Tb+Ts+Tgsc+δ. One representative cell per series.
func BenchmarkFig5_TimeToStable(b *testing.B) {
	o := exp.DefaultFig5()
	for _, tb := range o.BeaconPhases {
		tb := tb
		b.Run("Tb="+tb.String(), func(b *testing.B) {
			var total time.Duration
			for i := 0; i < b.N; i++ {
				got, err := exp.Fig5Cell(o, 20, tb, int64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
				total += got
			}
			b.ReportMetric(total.Seconds()/float64(b.N), "s-to-stable")
			b.ReportMetric((total-time.Duration(b.N)*(tb+o.StableWait+o.StabilizeWait)).Seconds()/float64(b.N), "delta-s")
		})
	}
}

// BenchmarkFormula1_Validation reproduces E2: predicted vs measured
// stabilization for one off-default parameter point.
func BenchmarkFormula1_Validation(b *testing.B) {
	o := exp.DefaultFormula1()
	o.Nodes = 20
	o.Grid = o.Grid[4:5] // Tb=5 Ts=5 Tgsc=30: an off-default point
	for i := 0; i < b.N; i++ {
		oo := o
		oo.Seed = int64(i) + 5
		if _, err := exp.Formula1(oo); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBeaconLoss reproduces E3: fraction of adapters missing from
// the initial topology at 50% loss vs the analytic p^k.
func BenchmarkBeaconLoss(b *testing.B) {
	o := exp.DefaultBeaconLoss()
	o.Adapters = 20
	o.LossRates = []float64{0.5}
	o.Trials = 2
	for i := 0; i < b.N; i++ {
		o.Seed = int64(i) + 11
		if _, err := exp.BeaconLoss(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectorTradeoff reproduces E4 for the paper's two headline
// schemes at 10% loss.
func BenchmarkDetectorTradeoff(b *testing.B) {
	o := exp.DefaultDetectors()
	o.Adapters = 16
	o.Window = 60 * time.Second
	schemes := []exp.DetectorScheme{
		{Name: "ring-k1", Kind: detect.Ring, Miss: 1},
		{Name: "biring-k3", Kind: detect.BiRing, Miss: 3, Consensus: true},
	}
	for _, s := range schemes {
		s := s
		b.Run(s.Name, func(b *testing.B) {
			var lat time.Duration
			falseSus := 0
			for i := 0; i < b.N; i++ {
				r, err := exp.DetectorCell(o, s, 0.10, int64(i)+21)
				if err != nil {
					b.Fatal(err)
				}
				if !r.Detected {
					b.Fatal("failure undetected")
				}
				lat += r.DetectionLatency
				falseSus += r.FalseSuspicions
			}
			b.ReportMetric(lat.Seconds()/float64(b.N), "s-detect")
			b.ReportMetric(float64(falseSus)/float64(b.N), "false-suspicions")
		})
	}
}

// BenchmarkHeartbeatLoad reproduces E5: steady-state detection load per
// scheme at one group size. Ring stays linear; all-to-all is quadratic.
func BenchmarkHeartbeatLoad(b *testing.B) {
	o := exp.DefaultHBLoad()
	o.Window = 30 * time.Second
	for _, k := range []detect.Kind{detect.Ring, detect.RandPing, detect.Subgroup, detect.AllToAll} {
		k := k
		b.Run(k.String(), func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				r, err := exp.HBLoadCell(o, k, 32, int64(i)+31)
				if err != nil {
					b.Fatal(err)
				}
				rate += r
			}
			b.ReportMetric(rate/float64(b.N), "msgs/s@32")
		})
	}
}

// BenchmarkLeaderFailover reproduces E6: leader death to recommitted
// group, and Central death to rebuilt view.
func BenchmarkLeaderFailover(b *testing.B) {
	o := exp.DefaultFailover()
	o.Nodes = 8
	o.Trials = 1
	for i := 0; i < b.N; i++ {
		oo := o
		oo.Seed = int64(i) + 41
		if _, err := exp.Failover(oo); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCentralFailoverRecovery reproduces E12: Central-host death to
// rebuilt view on a 20-node farm, with the state journal off (cold
// successor, multicast resync pull) and on (warm standby replaying its
// streamed journal). Reports time-to-rebuilt-view and the report-plane
// message count of the recovery; the journaled run must be quieter.
func BenchmarkCentralFailoverRecovery(b *testing.B) {
	o := exp.DefaultJournalFailover()
	for _, mode := range []struct {
		name    string
		journal bool
	}{{"journal-off", false}, {"journal-on", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var rebuild time.Duration
			var msgs uint64
			for i := 0; i < b.N; i++ {
				r, err := exp.JournalFailoverTrial(o, mode.journal, o.Seed+int64(i)*7)
				if err != nil {
					b.Fatal(err)
				}
				rebuild += r.Rebuild
				msgs += r.ResyncMsgs
			}
			b.ReportMetric(rebuild.Seconds()/float64(b.N), "s-to-rebuilt")
			b.ReportMetric(float64(msgs)/float64(b.N), "resync-msgs")
		})
	}
}

// BenchmarkDomainMove reproduces E7: a Central-initiated VLAN move with
// move inference and failure suppression.
func BenchmarkDomainMove(b *testing.B) {
	o := exp.DefaultMove()
	o.Trials = 1
	for i := 0; i < b.N; i++ {
		oo := o
		oo.Seed = int64(i) + 51
		if _, err := exp.Move(oo); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartitionMerge reproduces E8: healing a partition merges the
// AMGs under the highest-IP leader.
func BenchmarkPartitionMerge(b *testing.B) {
	o := exp.DefaultMerge()
	o.Sizes = [][2]int{{6, 6}}
	for i := 0; i < b.N; i++ {
		oo := o
		oo.Seed = int64(i) + 61
		if _, err := exp.Merge(oo); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCentralLoad reproduces E9: report-plane silence in steady
// state, delta-only traffic under churn.
func BenchmarkCentralLoad(b *testing.B) {
	o := exp.DefaultCentralLoad()
	o.FarmSizes = []int{16}
	o.Window = 30 * time.Second
	for i := 0; i < b.N; i++ {
		oo := o
		oo.Seed = int64(i) + 71
		if _, err := exp.CentralLoad(oo); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerification reproduces E10: discovered-vs-database
// verification with seeded inconsistencies.
func BenchmarkVerification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Verify(exp.VerifyOptions{Seed: int64(i) + 81}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBeaconPhaseAblation reproduces E11: the §2.1 argument that a
// zero beacon phase trades a few seconds of beaconing for a storm of
// singleton formations and merges.
func BenchmarkBeaconPhaseAblation(b *testing.B) {
	o := exp.DefaultBeaconPhase()
	o.Adapters = 16
	for i := 0; i < b.N; i++ {
		oo := o
		oo.Seed = int64(i) + 91
		if _, err := exp.BeaconPhase(oo); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFarmFormation is an end-to-end microbench: how much wall time
// the simulator needs to stabilize a 55-node (165-adapter) farm — the
// paper's full testbed.
func BenchmarkFarmFormation55Nodes(b *testing.B) {
	o := exp.DefaultFig5()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig5Cell(o, 55, 5*time.Second, int64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}
