package trace

import (
	"testing"

	"repro/internal/transport"
)

// BenchmarkRecord measures the hot capture path: one record copied into
// the ring under the mutex, no allocation.
func BenchmarkRecord(b *testing.B) {
	r := New(DefaultCapacity)
	r.Enable(true)
	rec := Record{
		Kind: KPrepareSent, Node: "web-01",
		Self:  transport.MakeIP(10, 1, 0, 1),
		Group: transport.MakeIP(10, 1, 0, 1),
		Token: 42, Count: 8,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(rec)
	}
}

// BenchmarkRecordDisabled measures the cost when capture is off: a
// single atomic load.
func BenchmarkRecordDisabled(b *testing.B) {
	r := New(DefaultCapacity)
	r.Enable(false)
	rec := Record{Kind: KBeaconSent, Node: "web-01"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(rec)
	}
	if r.Total() != 0 {
		b.Fatal("disabled recorder captured records")
	}
}

// BenchmarkRecordParallel measures contention: every daemon in a farm
// shares one recorder.
func BenchmarkRecordParallel(b *testing.B) {
	r := New(DefaultCapacity)
	r.Enable(true)
	rec := Record{Kind: KSuspicionRaised, Node: "web-01"}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Record(rec)
		}
	})
}
