package farm

import (
	"testing"
	"time"

	"repro/internal/netsim"
)

// The fast-Central-restart hole: the Central host crashes and comes back
// before any other daemon commits a view without it. Nobody observes a
// leadership change, so nobody would re-report — and the steady state is
// silent. The reborn Central must PULL the topology with its multicast
// resync request.
func TestFastCentralRestartResyncs(t *testing.T) {
	spec := fastSpec(21)
	spec.AdminNodes = 2
	spec.UniformNodes = 6
	spec.UniformAdapters = 3
	f, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	if _, ok := f.RunUntilStable(60 * time.Second); !ok {
		t.Fatal("farm never stabilized")
	}
	var hostName string
	for _, name := range f.order {
		if f.Daemons[name].HostingCentral() {
			hostName = name
		}
	}
	groupsBefore := f.ActiveCentral().GroupCount()
	adaptersBefore := 0
	for _, ms := range f.ActiveCentral().Groups() {
		adaptersBefore += len(ms)
	}

	// Kill and restart faster than failure detection (k*Th = 1.5s here).
	if err := f.KillNode(hostName); err != nil {
		t.Fatal(err)
	}
	f.RunFor(500 * time.Millisecond)
	if err := f.RestartNode(hostName); err != nil {
		t.Fatal(err)
	}
	// Give the restarted daemon time to rediscover, reclaim the admin
	// leadership (it is still the highest IP), and pull the topology.
	f.RunFor(60 * time.Second)

	c := f.ActiveCentral()
	if c == nil {
		t.Fatal("no active central after restart")
	}
	if got := c.GroupCount(); got != groupsBefore {
		t.Fatalf("rebuilt view has %d groups, want %d: %v", got, groupsBefore, c.Groups())
	}
	total := 0
	for _, ms := range c.Groups() {
		total += len(ms)
	}
	if total != adaptersBefore {
		t.Fatalf("rebuilt view has %d adapters, want %d: %v", total, adaptersBefore, c.Groups())
	}
	if ms := c.Verify(); len(ms) != 0 {
		t.Fatalf("verification after resync: %v", ms)
	}
}

// A member dropped from its group while unreachable must be evicted and
// rejoin once it can communicate again — the stale-ring split-brain.
func TestDroppedMemberEvictedAndRejoins(t *testing.T) {
	spec := fastSpec(22)
	spec.AdminNodes = 6
	f, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	if _, ok := f.RunUntilStable(60 * time.Second); !ok {
		t.Fatal("farm never stabilized")
	}
	victim := f.Nodes["mgmt-02"].Adapters[0]
	// Receive-dead long enough to be removed from the group, but the
	// daemon keeps running with its stale view.
	if err := f.FailAdapter(victim, netsim.FailRecv); err != nil {
		t.Fatal(err)
	}
	f.RunFor(20 * time.Second)
	if v, _ := f.Daemons["mgmt-05"].View(f.Nodes["mgmt-05"].Adapters[0]); v.Contains(victim) {
		t.Fatal("victim not removed while receive-dead")
	}
	// Heal the adapter: it still believes its stale view; the leader's
	// evictions (triggered by its stray heartbeats) must fold it back in.
	if err := f.FailAdapter(victim, netsim.Healthy); err != nil {
		t.Fatal(err)
	}
	f.RunFor(60 * time.Second)
	v, ok := f.Daemons["mgmt-05"].View(f.Nodes["mgmt-05"].Adapters[0])
	if !ok || !v.Contains(victim) || v.Size() != 6 {
		t.Fatalf("victim never rejoined: %v", v)
	}
	vv, _ := f.Daemons["mgmt-02"].View(victim)
	if !vv.Equal(v) {
		t.Fatalf("victim's view diverges: %v vs %v", vv, v)
	}
}
