package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// Codec errors.
var (
	ErrShort   = errors.New("journal: short record")
	ErrBadKind = errors.New("journal: unknown record kind")
	ErrBadCRC  = errors.New("journal: frame CRC mismatch")
)

// recVersion is the first byte of every encoded record.
const recVersion = 1

type jenc struct{ buf []byte }

func (e *jenc) u8(v byte)   { e.buf = append(e.buf, v) }
func (e *jenc) bool(v bool) { e.u8(map[bool]byte{false: 0, true: 1}[v]) }
func (e *jenc) u16(v uint16) {
	e.buf = binary.BigEndian.AppendUint16(e.buf, v)
}
func (e *jenc) u32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}
func (e *jenc) u64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}
func (e *jenc) ip(v transport.IP)     { e.u32(uint32(v)) }
func (e *jenc) dur(v time.Duration)   { e.u64(uint64(v)) }
func (e *jenc) addr(a transport.Addr) { e.ip(a.IP); e.u16(a.Port) }

func (e *jenc) str(s string) {
	if len(s) > 0xffff {
		s = s[:0xffff]
	}
	e.u16(uint16(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *jenc) member(m wire.Member) {
	e.ip(m.IP)
	e.str(m.Node)
	e.u8(m.Index)
	e.bool(m.Admin)
}

func (e *jenc) members(ms []wire.Member) {
	e.u16(uint16(len(ms)))
	for _, m := range ms {
		e.member(m)
	}
}

type jdec struct {
	buf []byte
	pos int
	err error
}

func (d *jdec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: reading %s at %d", ErrShort, what, d.pos)
	}
}

func (d *jdec) need(n int, what string) bool {
	if d.err != nil {
		return false
	}
	if d.pos+n > len(d.buf) {
		d.fail(what)
		return false
	}
	return true
}

func (d *jdec) u8() byte {
	if !d.need(1, "u8") {
		return 0
	}
	v := d.buf[d.pos]
	d.pos++
	return v
}

func (d *jdec) bool() bool { return d.u8() != 0 }

func (d *jdec) u16() uint16 {
	if !d.need(2, "u16") {
		return 0
	}
	v := binary.BigEndian.Uint16(d.buf[d.pos:])
	d.pos += 2
	return v
}

func (d *jdec) u32() uint32 {
	if !d.need(4, "u32") {
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf[d.pos:])
	d.pos += 4
	return v
}

func (d *jdec) u64() uint64 {
	if !d.need(8, "u64") {
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.pos:])
	d.pos += 8
	return v
}

func (d *jdec) ip() transport.IP   { return transport.IP(d.u32()) }
func (d *jdec) dur() time.Duration { return time.Duration(d.u64()) }
func (d *jdec) addr() transport.Addr {
	return transport.Addr{IP: d.ip(), Port: d.u16()}
}

func (d *jdec) str() string {
	n := int(d.u16())
	if d.err != nil || !d.need(n, "string body") {
		return ""
	}
	s := string(d.buf[d.pos : d.pos+n])
	d.pos += n
	return s
}

func (d *jdec) member() wire.Member {
	var m wire.Member
	m.IP = d.ip()
	m.Node = d.str()
	m.Index = d.u8()
	m.Admin = d.bool()
	return m
}

func (d *jdec) members() []wire.Member {
	n := int(d.u16())
	if d.err != nil {
		return nil
	}
	// Each member is at least 8 bytes; bound allocation by what can fit.
	if n > (len(d.buf)-d.pos)/8+1 {
		d.fail("member count")
		return nil
	}
	ms := make([]wire.Member, 0, n)
	for i := 0; i < n; i++ {
		ms = append(ms, d.member())
		if d.err != nil {
			return nil
		}
	}
	return ms
}

// EncodeRecord serializes one record. The layout is versioned and
// per-kind: header (version, kind, epoch, seq, time) then only the
// payload fields that kind uses.
func EncodeRecord(rec Record) []byte {
	e := &jenc{buf: make([]byte, 0, 64)}
	e.u8(recVersion)
	e.u8(byte(rec.Kind))
	e.u64(rec.Epoch)
	e.u64(rec.Seq)
	e.dur(rec.Time)
	switch rec.Kind {
	case RecGroupUpdate:
		e.ip(rec.Group)
		e.u64(rec.Version)
		e.addr(rec.Src)
		e.members(rec.Members)
	case RecGroupRemove:
		e.ip(rec.Group)
	case RecAdapterFlip:
		e.member(rec.Member)
		e.bool(rec.Alive)
		e.ip(rec.Group)
		e.dur(rec.DiedAt)
	case RecNodeFlip, RecSwitchFlip:
		e.str(rec.Node)
		e.bool(rec.Dead)
	case RecMoveExpect:
		e.ip(rec.Adapter)
		e.dur(rec.Deadline)
	case RecMoveDone:
		e.ip(rec.Adapter)
	case RecSnapshot:
		encodeState(e, rec.Snap)
	}
	return e.buf
}

// DecodeRecord parses one encoded record, rejecting trailing bytes.
func DecodeRecord(b []byte) (Record, error) {
	var rec Record
	d := &jdec{buf: b}
	if v := d.u8(); d.err == nil && v != recVersion {
		return rec, fmt.Errorf("journal: unknown record version %d", v)
	}
	rec.Kind = Kind(d.u8())
	rec.Epoch = d.u64()
	rec.Seq = d.u64()
	rec.Time = d.dur()
	switch rec.Kind {
	case RecGroupUpdate:
		rec.Group = d.ip()
		rec.Version = d.u64()
		rec.Src = d.addr()
		rec.Members = d.members()
	case RecGroupRemove:
		rec.Group = d.ip()
	case RecAdapterFlip:
		rec.Member = d.member()
		rec.Alive = d.bool()
		rec.Group = d.ip()
		rec.DiedAt = d.dur()
	case RecNodeFlip, RecSwitchFlip:
		rec.Node = d.str()
		rec.Dead = d.bool()
	case RecMoveExpect:
		rec.Adapter = d.ip()
		rec.Deadline = d.dur()
	case RecMoveDone:
		rec.Adapter = d.ip()
	case RecSnapshot:
		rec.Snap = decodeState(d)
	default:
		if d.err == nil {
			return rec, fmt.Errorf("%w: %d", ErrBadKind, byte(rec.Kind))
		}
	}
	if d.err != nil {
		return rec, d.err
	}
	if d.pos != len(b) {
		return rec, fmt.Errorf("journal: %d trailing bytes", len(b)-d.pos)
	}
	return rec, nil
}

// encodeState writes a full state in deterministic (sorted) order.
func encodeState(e *jenc, s *State) {
	if s == nil {
		s = NewState()
	}
	leaders := make([]transport.IP, 0, len(s.Groups))
	for l := range s.Groups {
		leaders = append(leaders, l)
	}
	sort.Slice(leaders, func(a, b int) bool { return leaders[a] < leaders[b] })
	e.u16(uint16(len(leaders)))
	for _, l := range leaders {
		g := s.Groups[l]
		e.ip(g.Leader)
		e.u64(g.Version)
		e.addr(g.Src)
		e.u64(g.Seq)
		e.u64(g.Epoch)
		e.members(g.Members)
	}
	ips := make([]transport.IP, 0, len(s.Adapters))
	for ip := range s.Adapters {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(a, b int) bool { return ips[a] < ips[b] })
	e.u16(uint16(len(ips)))
	for _, ip := range ips {
		a := s.Adapters[ip]
		e.member(a.Member)
		e.bool(a.Alive)
		e.ip(a.Group)
		e.dur(a.DiedAt)
	}
	encodeStringSet(e, s.DeadNodes)
	encodeStringSet(e, s.DeadSwitches)
	moves := make([]transport.IP, 0, len(s.ExpectedMoves))
	for ip := range s.ExpectedMoves {
		moves = append(moves, ip)
	}
	sort.Slice(moves, func(a, b int) bool { return moves[a] < moves[b] })
	e.u16(uint16(len(moves)))
	for _, ip := range moves {
		e.ip(ip)
		e.dur(s.ExpectedMoves[ip])
	}
}

func encodeStringSet(e *jenc, set map[string]bool) {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	e.u16(uint16(len(names)))
	for _, n := range names {
		e.str(n)
	}
}

func decodeState(d *jdec) *State {
	s := NewState()
	ng := int(d.u16())
	if d.err != nil || ng > (len(d.buf)-d.pos)/8+1 {
		d.fail("group count")
		return s
	}
	for i := 0; i < ng; i++ {
		g := &GroupState{}
		g.Leader = d.ip()
		g.Version = d.u64()
		g.Src = d.addr()
		g.Seq = d.u64()
		g.Epoch = d.u64()
		g.Members = d.members()
		if d.err != nil {
			return s
		}
		s.Groups[g.Leader] = g
	}
	na := int(d.u16())
	if d.err != nil || na > (len(d.buf)-d.pos)/8+1 {
		d.fail("adapter count")
		return s
	}
	for i := 0; i < na; i++ {
		var a AdapterState
		a.Member = d.member()
		a.Alive = d.bool()
		a.Group = d.ip()
		a.DiedAt = d.dur()
		if d.err != nil {
			return s
		}
		s.Adapters[a.Member.IP] = a
	}
	decodeStringSet(d, s.DeadNodes)
	decodeStringSet(d, s.DeadSwitches)
	nm := int(d.u16())
	if d.err != nil || nm > (len(d.buf)-d.pos)/8+1 {
		d.fail("move count")
		return s
	}
	for i := 0; i < nm; i++ {
		ip := d.ip()
		dl := d.dur()
		if d.err != nil {
			return s
		}
		s.ExpectedMoves[ip] = dl
	}
	return s
}

func decodeStringSet(d *jdec, set map[string]bool) {
	n := int(d.u16())
	if d.err != nil || n > (len(d.buf)-d.pos)/2+1 {
		d.fail("string set count")
		return
	}
	for i := 0; i < n; i++ {
		name := d.str()
		if d.err != nil {
			return
		}
		set[name] = true
	}
}

// --- CRC frames (file backend) ---

// A frame is [u32 payload length][u32 CRC-32/IEEE of payload][payload].
// The length cap rejects garbage lengths from a corrupt header before any
// large allocation.
const maxFramePayload = 16 << 20

var crcTable = crc32.MakeTable(crc32.IEEE)

// appendFrame appends one CRC frame for payload to dst.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.BigEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

// readFrame parses one frame at buf[off:]. It returns the payload and the
// offset just past the frame, or ok=false if the frame is truncated or
// fails its CRC — the torn-tail signal.
func readFrame(buf []byte, off int) (payload []byte, next int, ok bool) {
	if off+8 > len(buf) {
		return nil, off, false
	}
	n := int(binary.BigEndian.Uint32(buf[off:]))
	if n > maxFramePayload || off+8+n > len(buf) {
		return nil, off, false
	}
	sum := binary.BigEndian.Uint32(buf[off+4:])
	payload = buf[off+8 : off+8+n]
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, off, false
	}
	return payload, off + 8 + n, true
}
