package exp

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/farm"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// BeaconPhaseOptions parameterizes the Tb ablation.
type BeaconPhaseOptions struct {
	Seed     int64
	Adapters int
	// Phases are the Tb values to compare; the paper singles out Tb=0.
	Phases []time.Duration
}

// DefaultBeaconPhase compares the degenerate Tb=0 against useful phases.
func DefaultBeaconPhase() BeaconPhaseOptions {
	return BeaconPhaseOptions{
		Seed:     91,
		Adapters: 24,
		Phases:   []time.Duration{0, 1 * time.Second, 5 * time.Second, 10 * time.Second},
	}
}

// BeaconPhase reproduces the paper's §2.1 design argument: "Setting it to
// zero leads to the immediate formation of a singleton AMG for each
// adapter. These groups then begin a merging process ... Forming and
// merging all of these AMGs is more expensive than collecting beacon
// messages for a few seconds." We measure the membership-plane traffic
// (2PC + merge messages) and the time until the segment converges to one
// group, per Tb.
func BeaconPhase(o BeaconPhaseOptions) (*Table, error) {
	t := &Table{
		ID:      "E11/tb0",
		Title:   fmt.Sprintf("beacon-phase ablation (%d adapters, one segment)", o.Adapters),
		Columns: []string{"Tb(s)", "membership msgs", "membership bytes", "groups formed", "one-group at(s)"},
	}
	for _, tb := range o.Phases {
		cfg := core.DefaultConfig()
		cfg.BeaconPhase = tb
		cfg.DeferTimeout = 4 * time.Second
		f, err := farm.Build(farm.Spec{
			Seed:            o.Seed,
			UniformNodes:    o.Adapters,
			UniformAdapters: 1,
			Core:            cfg,
		})
		if err != nil {
			return nil, err
		}
		formations := 0
		for _, d := range f.Daemons {
			d.SetHooks(core.Hooks{Formed: func(_ transport.IP, _ int) { formations++ }})
		}
		f.Start()

		// Advance until all adapters share one committed view.
		var ips []transport.IP
		for i := 0; i < o.Adapters; i++ {
			ips = append(ips, f.Nodes[fmt.Sprintf("node-%03d", i)].Adapters[0])
		}
		var convergedAt time.Duration
		deadline := 5 * time.Minute
		for f.Sched.Now() < deadline {
			f.RunFor(250 * time.Millisecond)
			if ok, _ := oneGroup(f, ips); ok {
				convergedAt = f.Sched.Now()
				break
			}
		}
		if convergedAt == 0 {
			return nil, fmt.Errorf("exp: Tb=%v never converged", tb)
		}
		mem := f.Metrics.PlaneCounter(metrics.Plane(transport.PortMember))
		t.AddRow(secs(tb), fmt.Sprintf("%d", mem.Messages), fmt.Sprintf("%d", mem.Bytes),
			fmt.Sprintf("%d", formations), secs(convergedAt))
	}
	t.Note("paper §2.1: with Tb=0 every adapter forms a singleton and the segment converges by")
	t.Note("pairwise merges — more two-phase-commit traffic than beaconing for a few seconds;")
	t.Note("'the cost represents a tiny fraction of the total execution time' either way")
	return t, nil
}
