package configdb

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/transport"
)

// randomDB builds a database with n nodes of 1-3 adapters each.
func randomDB(rng *rand.Rand, n int) *DB {
	db := New()
	ordinal := 0
	for i := 0; i < n; i++ {
		node := fmt.Sprintf("node-%03d", i)
		db.AddNode(node, fmt.Sprintf("dom-%d", i%3), "role")
		adapters := rng.Intn(3) + 1
		for a := 0; a < adapters; a++ {
			ordinal++
			_ = db.AddAdapter(AdapterSpec{
				IP:     transport.MakeIP(10, byte(a+1), byte(ordinal/200), byte(ordinal%200+1)),
				Node:   node,
				Index:  a,
				VLAN:   100 + a,
				Switch: fmt.Sprintf("sw-%d", i%4),
				Port:   ordinal,
			})
		}
	}
	return db
}

// Property: JSON round-trips preserve every adapter and node record.
func TestPropertyJSONRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, int(nRaw%20)+1)
		data, err := json.Marshal(db)
		if err != nil {
			return false
		}
		back := New()
		if err := json.Unmarshal(data, back); err != nil {
			return false
		}
		as, bs := db.Adapters(), back.Adapters()
		if len(as) != len(bs) {
			return false
		}
		for i := range as {
			if as[i] != bs[i] {
				return false
			}
		}
		an, bn := db.Nodes(), back.Nodes()
		if len(an) != len(bn) {
			return false
		}
		for i := range an {
			if an[i].Name != bn[i].Name || an[i].Domain != bn[i].Domain || an[i].Role != bn[i].Role {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: a discovered grouping that exactly matches expectations (one
// group per expected VLAN) verifies clean; removing one adapter from it
// yields exactly one missing-adapter finding.
func TestPropertyVerifyExactGrouping(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(rng, int(nRaw%15)+2)
		groups := map[transport.IP][]transport.IP{}
		byVLAN := map[int][]transport.IP{}
		for _, a := range db.Adapters() {
			byVLAN[a.VLAN] = append(byVLAN[a.VLAN], a.IP)
		}
		for _, ips := range byVLAN {
			leader := ips[0]
			for _, ip := range ips {
				if ip > leader {
					leader = ip
				}
			}
			groups[leader] = ips
		}
		if ms := db.Verify(groups); len(ms) != 0 {
			return false
		}
		// Drop one adapter from its group.
		all := db.Adapters()
		victim := all[rng.Intn(len(all))]
		for leader, ips := range groups {
			var keep []transport.IP
			for _, ip := range ips {
				if ip != victim.IP {
					keep = append(keep, ip)
				}
			}
			if len(keep) == 0 {
				delete(groups, leader)
			} else {
				groups[leader] = keep
			}
		}
		ms := db.Verify(groups)
		missing := 0
		for _, m := range ms {
			if m.Kind == MissingAdapter && m.Adapter == victim.IP {
				missing++
			} else if m.Kind == MissingAdapter {
				return false
			}
		}
		return missing == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
