package metrics

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
	"repro/internal/transport"
)

// TestConcurrentObserveSummary exercises the registry from many
// goroutines under -race: traffic taps, instruments, and readers at
// once — the shape gsd produces (UDP event loop writing, HTTP debug
// handlers reading).
func TestConcurrentObserveSummary(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				r.Observe(netTrace(transport.PortHeartbeat, fmt.Sprintf("vlan-%d", g), 22, i%2))
				r.Inc("suspicions_total")
				r.Set("group_size", float64(i))
				r.ObserveDuration("twopc_round", time.Duration(i)*time.Microsecond)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = r.Summary()
			_ = r.Total()
			_ = r.Counters()
			_ = r.Histogram("twopc_round")
			r.WriteProm(&strings.Builder{})
		}
	}()
	wg.Wait()
	if got := r.Total().Messages; got != 1200 {
		t.Errorf("total messages = %d, want 1200", got)
	}
	if got := r.CounterValue("suspicions_total"); got != 1200 {
		t.Errorf("suspicions_total = %d, want 1200", got)
	}
	if got := r.Histogram("twopc_round").N; got != 1200 {
		t.Errorf("histogram N = %d, want 1200", got)
	}
}

// TestQuantileNearestRank pins the nearest-rank-with-rounding rule on
// small sample counts, where the old truncating index biased low (a
// 3-sample p95 used to return the median).
func TestQuantileNearestRank(t *testing.T) {
	ms := func(v int) time.Duration { return time.Duration(v) * time.Millisecond }
	cases := []struct {
		name    string
		samples []int
		q       float64
		want    time.Duration
	}{
		{"single sample any q", []int{7}, 0.95, ms(7)},
		{"two samples median rounds up", []int{10, 20}, 0.5, ms(20)},
		{"two samples p25 rounds down", []int{10, 20}, 0.25, ms(10)},
		{"three samples p95 is max", []int{10, 20, 30}, 0.95, ms(30)},
		{"three samples p75 rounds to max", []int{10, 20, 30}, 0.75, ms(30)},
		{"three samples p70 rounds to median", []int{10, 20, 30}, 0.70, ms(20)},
		{"five samples median exact", []int{10, 20, 30, 40, 50}, 0.5, ms(30)},
		{"five samples p90 rounds to max", []int{10, 20, 30, 40, 50}, 0.9, ms(50)},
		{"five samples p85 rounds to 4th", []int{10, 20, 30, 40, 50}, 0.85, ms(40)},
		{"q=0 is min", []int{30, 10, 20}, 0, ms(10)},
		{"q=1 is max", []int{30, 10, 20}, 1, ms(30)},
		{"q above 1 clamps", []int{10, 20}, 1.5, ms(20)},
		{"q below 0 clamps", []int{10, 20}, -0.5, ms(10)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var l Latencies
			for _, v := range tc.samples {
				l.Add(ms(v))
			}
			if got := l.Quantile(tc.q); got != tc.want {
				t.Errorf("Quantile(%v) over %v = %v, want %v", tc.q, tc.samples, got, tc.want)
			}
		})
	}
}

func TestPlaneJournalPort(t *testing.T) {
	if got := Plane(transport.PortJournal); got != "journal" {
		t.Errorf("Plane(PortJournal) = %q, want journal", got)
	}
}

// TestSummaryFormat pins the exact row layout experiment tables rely on.
func TestSummaryFormat(t *testing.T) {
	r := NewRegistry()
	r.Observe(netTrace(transport.PortBeacon, "s", 40, 1))
	want := "beacon              1 msgs         40 bytes      1 dropped\n"
	if got := r.Summary(); got != want {
		t.Errorf("Summary() = %q, want %q", got, want)
	}
}

func TestWritePromFormat(t *testing.T) {
	r := NewRegistry()
	r.Observe(netTrace(transport.PortBeacon, "vlan-1", 40, 0))
	r.Add("suspicions_total", 3)
	r.Set("group_size{leader=\"10.1.0.5\"}", 4)
	r.ObserveDuration("twopc_round", 10*time.Millisecond)
	r.ObserveDuration("twopc_round", 30*time.Millisecond)
	var b strings.Builder
	r.WriteProm(&b)
	out := b.String()
	for _, want := range []string{
		`gulfstream_plane_messages_total{plane="beacon"} 1`,
		`gulfstream_plane_bytes_total{plane="beacon"} 40`,
		`gulfstream_segment_messages_total{segment="vlan-1"} 1`,
		`gulfstream_suspicions_total 3`,
		`gulfstream_group_size{leader="10.1.0.5"} 4`,
		`gulfstream_twopc_round_seconds{quantile="0.5"} 0.03`,
		`gulfstream_twopc_round_seconds_count 2`,
		`gulfstream_twopc_round_seconds_sum 0.04`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
}

// TestObserveTraceBridge drives the flight-recorder sink and checks the
// derived instruments, including the 2PC round latency correlation.
func TestObserveTraceBridge(t *testing.T) {
	r := NewRegistry()
	sink := ObserveTrace(r)
	leader := transport.MakeIP(10, 1, 0, 9)
	recs := []trace.Record{
		{Kind: trace.KBeaconSent, T: 0},
		{Kind: trace.KPrepareSent, Group: leader, Token: 7, T: 1 * time.Second},
		{Kind: trace.KPrepareSent, Group: leader, Token: 7, T: 1100 * time.Millisecond}, // resend: not a new round
		{Kind: trace.KCommitSent, Group: leader, Token: 7, T: 1250 * time.Millisecond},
		{Kind: trace.KViewCommit, Self: leader, Group: leader, Version: 2, Count: 5},
		{Kind: trace.KViewCommit, Self: leader + 1, Group: leader, Version: 2, Count: 5}, // member copy: no gauge
		{Kind: trace.KSuspicionRaised, Peer: leader},
		{Kind: trace.KFalseAccusation, Peer: leader},
		{Kind: trace.KLeaderTakeover},
		{Kind: trace.KCentralActivated},
	}
	for _, rec := range recs {
		sink(rec)
	}
	for name, want := range map[string]uint64{
		"beacons_sent_total":        1,
		"twopc_rounds_total":        1,
		"twopc_commits_total":       1,
		"view_commits_total":        2,
		"suspicions_total":          1,
		"false_accusations_total":   1,
		"leader_takeovers_total":    1,
		"central_activations_total": 1,
	} {
		if got := r.CounterValue(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	h := r.Histogram("twopc_round")
	if h.N != 1 || h.Max != 250*time.Millisecond {
		t.Errorf("twopc_round = %+v, want one 250ms sample", h)
	}
	if got := r.Gauges()[`group_size{leader="10.1.0.9"}`]; got != 5 {
		t.Errorf("group_size gauge = %v, want 5", got)
	}
}
