package conformance

import (
	"encoding/json"
	"os"
	"path/filepath"

	"repro/internal/amg"
	"repro/internal/check"
	"repro/internal/span"
	"repro/internal/transport"
)

// offlineContext is the check.Context for replaying scraped traces:
// unlike the simulator's live context, the harness cannot consult a
// daemon's committed view or the fabric's historical segment state at
// the instant a record was captured, so the state-dependent checkers
// no-op (each guards on the !ok path) and the purely trace-derived
// invariants — monotone versions, 2PC, eviction evidence, suspicion
// evidence, probe-before-verdict — carry the audit.
type offlineContext struct{}

func (offlineContext) ViewOf(transport.IP) (amg.Membership, bool) { return amg.Membership{}, false }
func (offlineContext) SegmentOf(transport.IP) (string, bool)      { return "", false }
func (offlineContext) JournalDrift(string) string                 { return "" }

// Verdict is one suite's machine-checkable outcome, written to the
// artifacts directory as verdict.json.
type Verdict struct {
	Suite   string `json:"suite"`
	Fabric  string `json:"fabric"`
	Records int    `json:"records"`
	Sources int    `json:"sources"`

	// Violations are invariant breaches the check engine caught in the
	// merged farm trace.
	Violations []string `json:"violations"`
	// AuditFindings are incident spans that never closed (span.Audit).
	AuditFindings []string `json:"audit_findings"`
	// TopologyDiff is the divergence between Central's discovered
	// topology and the declared ground truth.
	TopologyDiff []string `json:"topology_diff"`
	// MismatchDiff compares configdb verification verdicts against the
	// planted expectations.
	MismatchDiff []string `json:"mismatch_diff"`
	// Warnings are non-fatal scrape anomalies.
	Warnings []string `json:"warnings,omitempty"`

	Passed bool `json:"passed"`
}

// evaluate runs the three verdict stages over the scraped farm trace
// and the final topology document.
func evaluate(suite, fabric string, s *Scraper, topoSpec span.Topology,
	finalTopo *TopologyDoc, gt *GroundTruth) *Verdict {

	v := &Verdict{
		Suite: suite, Fabric: fabric, Sources: s.Sources(),
		Violations: []string{}, AuditFindings: []string{},
		TopologyDiff: []string{}, MismatchDiff: []string{},
	}

	// Stage 1: the invariant engine over the keep-all merge. Beacons
	// stay in: the checkers' crash-restart reset tracking keys off the
	// discovery-phase beacon records.
	all := s.Merged(nil)
	v.Records = len(all)
	engine := check.NewEngine(offlineContext{})
	for _, r := range all {
		engine.Observe(r)
	}
	for _, viol := range engine.Violations() {
		v.Violations = append(v.Violations, viol.Format())
	}

	// Stage 2: incident-span closure audit over the stitching merge.
	v.AuditFindings = append(v.AuditFindings, span.Audit(s.Merged(span.DefaultFilter), topoSpec)...)

	// Stage 3: discovered topology vs declared ground truth, including
	// the configdb verification verdicts.
	v.TopologyDiff = append(v.TopologyDiff, gt.Diff(finalTopo)...)
	var mismatches []string
	if finalTopo != nil {
		mismatches = finalTopo.Mismatches
	}
	v.MismatchDiff = append(v.MismatchDiff, gt.DiffMismatches(mismatches)...)

	v.Warnings = s.Warnings()
	v.Passed = len(v.Violations) == 0 && len(v.AuditFindings) == 0 &&
		len(v.TopologyDiff) == 0 && len(v.MismatchDiff) == 0
	return v
}

// writeArtifacts persists the verdict, the merged trace, the final
// topology, and the ground truth under dir.
func writeArtifacts(dir string, v *Verdict, s *Scraper, finalTopo *TopologyDoc, gt *GroundTruth) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := writeJSON(filepath.Join(dir, "verdict.json"), v); err != nil {
		return err
	}
	if err := writeJSON(filepath.Join(dir, "ground-truth.json"), gt); err != nil {
		return err
	}
	if finalTopo != nil {
		if err := writeJSON(filepath.Join(dir, "topology.json"), finalTopo); err != nil {
			return err
		}
	}
	f, err := os.Create(filepath.Join(dir, "merged-trace.jsonl"))
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	for _, r := range s.Merged(nil) {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
