//go:build linux || darwin || freebsd || netbsd || openbsd

package transport

import (
	"net"
	"syscall"
)

// reuseControl marks sockets SO_REUSEADDR so a unicast socket on
// (adapterIP, port) can coexist with the multicast group socket bound to
// the same port.
func reuseControl(_, _ string, c syscall.RawConn) error {
	var serr error
	err := c.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_REUSEADDR, 1)
	})
	if err != nil {
		return err
	}
	return serr
}

// setMulticastInterface pins a UDP socket's outgoing multicast interface
// to the one carrying local, so that multicast sent from an adapter
// address actually egresses (and loops back) on that adapter's interface.
// Without this the kernel uses the default multicast route, and daemons
// bound to secondary addresses (e.g. several 127.0.0.x on loopback) never
// hear each other's beacons.
func setMulticastInterface(conn *net.UDPConn, local net.IP) error {
	v4 := local.To4()
	if v4 == nil {
		return nil
	}
	raw, err := conn.SyscallConn()
	if err != nil {
		return err
	}
	var addr [4]byte
	copy(addr[:], v4)
	var serr error
	cerr := raw.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInet4Addr(int(fd), syscall.IPPROTO_IP, syscall.IP_MULTICAST_IF, addr)
	})
	if cerr != nil {
		return cerr
	}
	return serr
}
