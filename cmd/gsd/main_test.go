package main

import (
	"bufio"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/transport"
)

// buildGSD compiles the daemon once per test binary into a temp dir.
func buildGSD(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "gsd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestReadyFDAndGracefulShutdown is the orchestration contract: a daemon
// started with -ready-fd writes exactly one JSON readiness line on that
// descriptor once its protocol clock runs, and a SIGTERM ends the process
// with exit code 0 (deterministically, so the harness can distinguish a
// clean teardown from a crash).
func TestReadyFDAndGracefulShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real daemon")
	}
	bin := buildGSD(t)

	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()

	cmd := exec.Command(bin,
		"-node", "test-1",
		"-adapters", "127.0.0.1",
		"-fast",
		"-trace=false",
		"-ready-fd", "3",
	)
	cmd.ExtraFiles = []*os.File{pw} // child fd 3
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	pw.Close() // child holds the write end now
	defer cmd.Process.Kill()

	lineCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(pr)
		if sc.Scan() {
			lineCh <- sc.Text()
		}
		close(lineCh)
	}()
	var line string
	select {
	case line = <-lineCh:
	case <-time.After(15 * time.Second):
		t.Fatal("no readiness line within 15s")
	}
	if line == "" {
		t.Fatal("readiness pipe closed without a line")
	}

	var info struct {
		Node        string   `json:"node"`
		PID         int      `json:"pid"`
		StartUnixNS int64    `json:"start_unix_ns"`
		Adapters    []string `json:"adapters"`
	}
	if err := json.Unmarshal([]byte(line), &info); err != nil {
		t.Fatalf("readiness line %q: %v", line, err)
	}
	if info.Node != "test-1" || info.PID != cmd.Process.Pid {
		t.Fatalf("readiness = %+v, want node test-1 pid %d", info, cmd.Process.Pid)
	}
	if len(info.Adapters) != 1 || info.Adapters[0] != "127.0.0.1" {
		t.Fatalf("adapters = %v", info.Adapters)
	}
	now := time.Now().UnixNano()
	if info.StartUnixNS <= 0 || info.StartUnixNS > now || now-info.StartUnixNS > int64(time.Minute) {
		t.Fatalf("start_unix_ns %d implausible (now %d)", info.StartUnixNS, now)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("SIGTERM exit: %v (want code 0)", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit within 10s of SIGTERM")
	}
}

// TestParseAdapters covers the ip@scope syntax the loopback fabric uses.
func TestParseAdapters(t *testing.T) {
	rt := transport.NewRuntime()
	defer rt.Close()

	eps, scoped, closeEPs, err := parseAdapters(rt, "127.0.0.1, 127.0.0.2@239.71.0.5")
	defer closeEPs()
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 2 || len(scoped) != 1 {
		t.Fatalf("eps=%d scoped=%d", len(eps), len(scoped))
	}
	sc, ok := scoped[transport.MakeIP(127, 0, 0, 2)]
	if !ok {
		t.Fatal("scoped endpoint not indexed by adapter IP")
	}
	if sc.Scope() != transport.MakeIP(239, 71, 0, 5) {
		t.Fatalf("scope = %v", sc.Scope())
	}
	if eps[1] != transport.Endpoint(sc) {
		t.Fatal("scoped adapter not wrapped in endpoint list")
	}

	for _, bad := range []string{"nonsense", "127.0.0.1@not-multicast", "127.0.0.1@10.0.0.1"} {
		_, _, c, err := parseAdapters(rt, bad)
		c()
		if err == nil {
			t.Errorf("parseAdapters(%q) accepted", bad)
		}
	}
}

// TestParseSwitches covers the -switches name=ip:port syntax.
func TestParseSwitches(t *testing.T) {
	got, err := parseSwitches("sw-1=10.71.0.254:10161, sw-2=10.71.0.253")
	if err != nil {
		t.Fatal(err)
	}
	want1 := transport.Addr{IP: transport.MakeIP(10, 71, 0, 254), Port: 10161}
	want2 := transport.Addr{IP: transport.MakeIP(10, 71, 0, 253), Port: transport.PortSNMP}
	if got["sw-1"] != want1 || got["sw-2"] != want2 {
		t.Fatalf("parseSwitches = %v", got)
	}
	for _, bad := range []string{"sw-1", "sw-1=zzz", "sw-1=10.0.0.1:99999"} {
		if _, err := parseSwitches(bad); err == nil {
			t.Errorf("parseSwitches(%q) accepted", bad)
		}
	}
}
