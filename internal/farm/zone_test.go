package farm

import (
	"testing"
	"time"
)

// zonedSpec is a small zoned farm: 4 zones × 6 nodes × 2 adapters, plus
// per-zone gateways on the backbone.
func zonedSpec(seed int64, shards int) Spec {
	return Spec{
		Seed:         seed,
		Zones:        4,
		ZoneNodes:    6,
		ZoneAdapters: 2,
		Shards:       shards,
		StartSkew:    2 * time.Second,
	}
}

// TestZonedFarmStabilizes: every zone elects its own leader, hosts its own
// Central, and all of them reach a stable view.
func TestZonedFarmStabilizes(t *testing.T) {
	f, err := Build(zonedSpec(42, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.DBs) != 4 || len(f.Buses) != 4 {
		t.Fatalf("per-zone DBs/Buses = %d/%d, want 4/4", len(f.DBs), len(f.Buses))
	}
	// 4 zones × (6 nodes × 2 adapters + 1 gateway) = 52 daemon adapters.
	if got := len(f.AdapterIPs()); got != 52 {
		t.Fatalf("adapters = %d, want 52", got)
	}
	f.Start()
	if _, ok := f.RunUntilAllStable(4, 90*time.Second); !ok {
		t.Fatalf("zones did not all stabilize; hosting=%d", len(f.HostingCentrals()))
	}
	if got := len(f.HostingCentrals()); got != 4 {
		t.Fatalf("hosting Centrals = %d, want 4 (one per zone)", got)
	}
	// Zone Centrals must not share state: each sees only its zone's groups.
	for _, c := range f.HostingCentrals() {
		if n := c.GroupCount(); n < 2 || n > 3 {
			t.Errorf("zone Central tracks %d groups, want 2 (admin+data) or 3 (+backbone)", n)
		}
	}
}

// TestZonedShardedMatchesSingle is the kernel-determinism contract at farm
// level: the same zoned spec run single-threaded and on a 2-shard kernel
// fires the same events and converges to the same instant.
func TestZonedShardedMatchesSingle(t *testing.T) {
	run := func(shards int) (uint64, time.Duration) {
		f, err := Build(zonedSpec(7, shards))
		if err != nil {
			t.Fatal(err)
		}
		f.Start()
		at, ok := f.RunUntilAllStable(4, 90*time.Second)
		if !ok {
			t.Fatalf("shards=%d did not stabilize", shards)
		}
		return f.Fired(), at
	}
	fired1, at1 := run(0)
	for _, k := range []int{2, 3} {
		firedK, atK := run(k)
		if firedK != fired1 || atK != at1 {
			t.Fatalf("shards=%d diverged: fired=%d stableAt=%v, want fired=%d stableAt=%v",
				k, firedK, atK, fired1, at1)
		}
	}
}

// TestShardedSpecValidation: sharding requires the zoned shape and a
// shard-safe configuration.
func TestShardedSpecValidation(t *testing.T) {
	if _, err := Build(Spec{Seed: 1, UniformNodes: 4, Shards: 2}); err == nil {
		t.Error("sharded non-zoned spec should be rejected")
	}
	s := zonedSpec(1, 2)
	s.Trace = true
	if _, err := Build(s); err == nil {
		t.Error("sharded spec with Trace should be rejected")
	}
	s = zonedSpec(1, 2)
	s.Latency = 5 * time.Millisecond // exceeds the 1ms backbone default
	if _, err := Build(s); err == nil {
		t.Error("backbone latency below zone latency should be rejected")
	}
}
