package central

import (
	"repro/internal/event"
	"repro/internal/trace"
)

// Incident correlation: Central assigns one id per ongoing disturbance,
// keyed by the subject node (or switch), and stamps it onto every
// notification about that subject until the disturbance resolves. The id
// is the correlator the span stitcher uses to tie a failure's detection,
// 2PC, report, notification, and serving-plane reaction into one
// end-to-end timeline — which is why every stamped publish also leaves a
// KNotifySent flight-recorder record, and every resolution a
// KIncidentClosed one.
//
// Lifecycle:
//
//   - open on the first failure-class or move-class event about a
//     subject (AdapterFailed, NodeFailed, SwitchFailed, MoveStarted,
//     NodeMoved);
//   - join (stamp without opening) recoveries and verification findings
//     about a subject with an open incident;
//   - close on the resolving event: NodeRecovered, SwitchRecovered,
//     AdapterRecovered when the node is not (or no longer) dead, and
//     NodeMoved once no further planned move is pending for the node;
//   - close explicitly when Central abandons a pending move without
//     correlating it (closeIncidentIfMoveDone), since no resolving
//     event will ever arrive on that path.
//
// Ids are per-Central-instance; the (hosting node, id) pair is unique
// farm-wide, which is how the stitcher disambiguates ids issued by
// partition-local Centrals.

// stampIncident correlates one outbound event, mutating e in place.
// Called from publish, so every bus subscriber sees the stamped id.
func (c *Central) stampIncident(e *event.Event) {
	subject := e.Node
	if subject == "" {
		return
	}
	switch e.Kind {
	case event.AdapterFailed, event.NodeFailed, event.SwitchFailed,
		event.MoveStarted, event.NodeMoved:
		id, open := c.incidents[subject]
		if !open {
			c.incidentSeq++
			id = c.incidentSeq
			c.incidents[subject] = id
		}
		e.Incident = id
		c.traceNotify(*e, subject)
		if e.Kind == event.NodeMoved && !c.nodeHasPendingMove(subject) {
			c.closeIncident(subject, id)
		}
	case event.AdapterRecovered, event.NodeRecovered, event.SwitchRecovered,
		event.VerifyMismatch:
		id, open := c.incidents[subject]
		if !open {
			return
		}
		e.Incident = id
		c.traceNotify(*e, subject)
		switch e.Kind {
		case event.NodeRecovered, event.SwitchRecovered:
			c.closeIncident(subject, id)
		case event.AdapterRecovered:
			// A recovered adapter resolves the incident only once the node
			// itself is no longer correlated dead (for a single-adapter
			// failure that is immediately; for a node death the
			// NodeRecovered that follows does the closing).
			if !c.nodeDead[subject] {
				c.closeIncident(subject, id)
			}
		}
	}
}

// nodeHasPendingMove reports whether any adapter Central is still
// expecting to move belongs to the node — a multi-adapter move closes on
// the last adapter's NodeMoved, not the first.
func (c *Central) nodeHasPendingMove(node string) bool {
	for ip := range c.expectedMoves {
		if a := c.adapters[ip]; a != nil && a.member.Node == node {
			return true
		}
		if c.db != nil {
			if spec, ok := c.db.Adapter(ip); ok && spec.Node == node {
				return true
			}
		}
	}
	return false
}

// closeIncidentIfMoveDone closes the node's open incident when Central
// holds no further expectation about it. Called on the paths that
// abandon a pending move without correlating it (expectation sweep,
// SNMP rewrite failure): no NodeMoved will ever arrive there, so the
// closure has to be explicit. A dead node keeps its incident open — the
// eventual NodeRecovered closes it.
func (c *Central) closeIncidentIfMoveDone(node string) {
	if node == "" {
		return
	}
	if id, open := c.incidents[node]; open && !c.nodeDead[node] && !c.nodeHasPendingMove(node) {
		c.closeIncident(node, id)
	}
}

func (c *Central) closeIncident(subject string, id uint64) {
	delete(c.incidents, subject)
	c.trace(trace.Record{Kind: trace.KIncidentClosed, Token: id, Detail: subject})
}

// traceNotify records the stamped publication in the flight recorder:
// Token carries the incident id, Detail the event kind and subject.
func (c *Central) traceNotify(e event.Event, subject string) {
	c.trace(trace.Record{Kind: trace.KNotifySent, Peer: e.Adapter,
		Group: e.Group, Token: e.Incident, Detail: e.Kind.String() + " " + subject})
}

// Incidents snapshots the open incidents (subject -> id), for debug
// surfaces and tests.
func (c *Central) Incidents() map[string]uint64 {
	out := make(map[string]uint64, len(c.incidents))
	for n, id := range c.incidents {
		out[n] = id
	}
	return out
}
