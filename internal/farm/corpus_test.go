package farm

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// TestRegenerateWireFuzzCorpus harvests real protocol traffic into
// internal/wire's FuzzDecode seed corpus: it taps every packet a chaos
// run puts on the simulated network, keeps a few distinct frames per
// wire type, and writes them as Go fuzz corpus files. Chaos traffic
// reaches encoder paths hand-written seeds miss — mid-eviction prepares,
// merge folds, journal stream records — and the committed files are then
// exercised by every plain `go test ./internal/wire` run.
//
// Gated behind GS_REGEN_CORPUS=1 because it rewrites checked-in files;
// run it when the wire protocol grows a message type or field.
func TestRegenerateWireFuzzCorpus(t *testing.T) {
	if os.Getenv("GS_REGEN_CORPUS") == "" {
		t.Skip("set GS_REGEN_CORPUS=1 to regenerate internal/wire's fuzz corpus")
	}
	const seed = 606
	const perType = 3

	f, err := Build(chaosSpec(seed))
	if err != nil {
		t.Fatal(err)
	}
	captured := map[wire.Type][][]byte{}
	seen := map[[sha256.Size]byte]bool{}
	f.Net.Tap(func(tr netsim.Trace) {
		typ, ok := wire.Peek(tr.Payload)
		if !ok || len(captured[typ]) >= perType {
			return
		}
		sum := sha256.Sum256(tr.Payload)
		if seen[sum] {
			return
		}
		seen[sum] = true
		// The payload aliases the sender's reusable buffer: copy now.
		captured[typ] = append(captured[typ], append([]byte(nil), tr.Payload...))
	})
	f.Start()
	if _, ok := f.RunUntilStable(2 * time.Minute); !ok {
		t.Fatal("initial stabilization failed")
	}
	topo := f.CheckTopology()
	check.Generate(seed, topo, check.GenOpts{Failover: true}).Run(f)

	dir := filepath.Join("..", "wire", "testdata", "fuzz", "FuzzDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	// Clear previous harvest (only files this test names) so a shrinking
	// capture doesn't leave stale frames behind.
	old, _ := filepath.Glob(filepath.Join(dir, "chaos-*"))
	for _, p := range old {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for typ, frames := range captured {
		for i, frame := range frames {
			name := filepath.Join(dir, fmt.Sprintf("chaos-%s-%d", typ, i))
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(frame)) + ")\n"
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
			total++
		}
	}
	if total == 0 {
		t.Fatal("chaos run captured no packets")
	}
	t.Logf("wrote %d corpus files across %d wire types to %s", total, len(captured), dir)
}
