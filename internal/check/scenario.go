package check

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/netsim"
	"repro/internal/transport"
)

// OpKind enumerates the fault-injection operations a schedule composes.
type OpKind uint8

// The schedule operations.
const (
	// OpKillNode powers a node off.
	OpKillNode OpKind = iota + 1
	// OpRestartNode powers a node back on (fresh incarnation).
	OpRestartNode
	// OpFailAdapter breaks one adapter in the given mode, healing it
	// after For.
	OpFailAdapter
	// OpPartition cuts a broadcast segment (100% loss) for For.
	OpPartition
	// OpDropProfile degrades a segment to the given loss rate for For.
	OpDropProfile
	// OpKillSwitch powers a switch off, restoring it after For.
	OpKillSwitch
	// OpMoveDomain asks Central to move a node to another domain.
	OpMoveDomain
	// OpFailover kills whichever node hosts the active Central, then
	// restarts it after For.
	OpFailover
)

var opNames = map[OpKind]string{
	OpKillNode:    "kill",
	OpRestartNode: "restart",
	OpFailAdapter: "fail",
	OpPartition:   "partition",
	OpDropProfile: "drop",
	OpKillSwitch:  "switch-off",
	OpMoveDomain:  "move",
	OpFailover:    "failover",
}

func (k OpKind) String() string {
	if s, ok := opNames[k]; ok {
		return s
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is one scheduled fault injection.
type Op struct {
	// At is the injection time, relative to the schedule's start.
	At time.Duration
	// Kind selects the operation.
	Kind OpKind
	// Node names the target node (kill, restart, move).
	Node string
	// Adapter is the target adapter (fail).
	Adapter transport.IP
	// Mode is the adapter failure mode (fail).
	Mode netsim.FailureMode
	// Target names the segment, switch, or destination domain.
	Target string
	// Loss is the degraded loss rate (drop).
	Loss float64
	// For is how long the fault holds before auto-reversal; zero means
	// the operation is not reversed (kill without a paired restart).
	For time.Duration
}

// Schedule is a replayable chaos scenario: a seed (for provenance), the
// ordered fault injections, and a settle period after the last fault
// during which the system must reconverge.
type Schedule struct {
	Seed   int64
	Ops    []Op
	Settle time.Duration
}

// DefaultSettle is used when a schedule does not name a settle period.
const DefaultSettle = 3 * time.Minute

// Target is the system under test, as the scenario engine sees it.
// *farm.Farm satisfies it structurally (check must not import farm:
// farm's tests import check).
type Target interface {
	Now() time.Duration
	After(d time.Duration, fn func())
	RunFor(d time.Duration)
	KillNode(name string) error
	RestartNode(name string) error
	FailAdapter(ip transport.IP, mode netsim.FailureMode) error
	KillSwitch(name string) error
	RestoreSwitch(name string) error
	MoveNodeToDomain(node, toDomain string, done func(error)) error
	SetSegmentLoss(segment string, loss float64)
	ActiveCentralNode() string
}

// Run injects every op at its scheduled time (fault injectors may
// reject an op that no longer applies — a shrunk schedule can ask to
// restart a live node — and that is fine: the schedule is a stimulus,
// not a transaction), then drives the target through the full horizon
// plus the settle period.
func (s Schedule) Run(tg Target) {
	var horizon time.Duration
	for _, op := range s.Ops {
		op := op
		tg.After(op.At, func() { applyOp(tg, op) })
		end := op.At + op.For
		if end > horizon {
			horizon = end
		}
	}
	settle := s.Settle
	if settle == 0 {
		settle = DefaultSettle
	}
	tg.RunFor(horizon + settle)
}

func applyOp(tg Target, op Op) {
	switch op.Kind {
	case OpKillNode:
		_ = tg.KillNode(op.Node)
	case OpRestartNode:
		_ = tg.RestartNode(op.Node)
	case OpFailAdapter:
		if err := tg.FailAdapter(op.Adapter, op.Mode); err != nil {
			return
		}
		if op.For > 0 {
			tg.After(op.For, func() { _ = tg.FailAdapter(op.Adapter, netsim.Healthy) })
		}
	case OpPartition:
		tg.SetSegmentLoss(op.Target, 1)
		if op.For > 0 {
			tg.After(op.For, func() { tg.SetSegmentLoss(op.Target, -1) })
		}
	case OpDropProfile:
		tg.SetSegmentLoss(op.Target, op.Loss)
		if op.For > 0 {
			tg.After(op.For, func() { tg.SetSegmentLoss(op.Target, -1) })
		}
	case OpKillSwitch:
		if err := tg.KillSwitch(op.Target); err != nil {
			return
		}
		if op.For > 0 {
			tg.After(op.For, func() { _ = tg.RestoreSwitch(op.Target) })
		}
	case OpMoveDomain:
		_ = tg.MoveNodeToDomain(op.Node, op.Target, nil)
	case OpFailover:
		node := tg.ActiveCentralNode()
		if node == "" {
			return
		}
		if err := tg.KillNode(node); err != nil {
			return
		}
		d := op.For
		if d == 0 {
			d = 30 * time.Second
		}
		tg.After(d, func() { _ = tg.RestartNode(node) })
	}
}

// ---------------------------------------------------------------------------
// Topology + generation

// NodeTopo describes one node of the system under test, enough for the
// generator to aim faults without importing the farm package.
type NodeTopo struct {
	Name     string
	Role     string // "admin", "frontend", "backend", "uniform"
	Domain   string
	Adapters []transport.IP
	Switch   string
}

// Topology is the static shape of the system under test, in a
// deterministic order.
type Topology struct {
	Nodes    []NodeTopo
	Switches []string
	Segments []string
	Domains  []string
}

// GenOpts tunes schedule generation.
type GenOpts struct {
	// Rounds is how many fault injections to draw (25 when zero).
	Rounds int
	// Partition enables segment partition and drop-profile operations.
	Partition bool
	// Failover enables active-Central failover operations.
	Failover bool
}

// Generate draws a random schedule from the seed — the same seed and
// topology always produce the identical schedule, which is what makes a
// sweep replayable. The shape mirrors the original inline chaos loop:
// 2–7 s between injections, adapters healed after 10 s, switches
// restored after 8 s, admin nodes never targeted directly, and every
// node still down at the end restarted so the system can converge.
func Generate(seed int64, topo Topology, o GenOpts) Schedule {
	rng := rand.New(rand.NewSource(seed))
	rounds := o.Rounds
	if rounds <= 0 {
		rounds = 25
	}
	var targets []NodeTopo
	for _, n := range topo.Nodes {
		if n.Role != "admin" {
			targets = append(targets, n)
		}
	}
	cases := 5
	if o.Partition {
		cases += 2
	}
	if o.Failover {
		cases++
	}
	modes := []netsim.FailureMode{netsim.FailStop, netsim.FailRecv, netsim.FailSend}

	down := map[string]bool{}
	var ops []Op
	var t time.Duration
	for i := 0; i < rounds && len(targets) > 0; i++ {
		t += time.Duration(2+rng.Intn(6)) * time.Second
		n := targets[rng.Intn(len(targets))]
		c := rng.Intn(cases)
		if c >= 7 || (c >= 5 && !o.Partition) {
			c = 7 // failover (c can only exceed the base cases when enabled)
		}
		switch c {
		case 0:
			if !down[n.Name] {
				down[n.Name] = true
				ops = append(ops, Op{At: t, Kind: OpKillNode, Node: n.Name})
			}
		case 1:
			if down[n.Name] {
				down[n.Name] = false
				ops = append(ops, Op{At: t, Kind: OpRestartNode, Node: n.Name})
			}
		case 2:
			if !down[n.Name] && len(n.Adapters) > 0 {
				ip := n.Adapters[rng.Intn(len(n.Adapters))]
				ops = append(ops, Op{At: t, Kind: OpFailAdapter, Adapter: ip,
					Mode: modes[rng.Intn(len(modes))], For: 10 * time.Second})
			}
		case 3:
			if !down[n.Name] && (n.Role == "frontend" || n.Role == "backend") {
				if to := otherDomain(rng, topo.Domains, n.Domain); to != "" {
					ops = append(ops, Op{At: t, Kind: OpMoveDomain, Node: n.Name, Target: to})
				}
			}
		case 4:
			if len(topo.Switches) > 0 {
				sw := topo.Switches[rng.Intn(len(topo.Switches))]
				ops = append(ops, Op{At: t, Kind: OpKillSwitch, Target: sw, For: 8 * time.Second})
			}
		case 5:
			if len(topo.Segments) > 0 {
				seg := topo.Segments[rng.Intn(len(topo.Segments))]
				ops = append(ops, Op{At: t, Kind: OpPartition, Target: seg, For: 8 * time.Second})
			}
		case 6:
			if len(topo.Segments) > 0 {
				seg := topo.Segments[rng.Intn(len(topo.Segments))]
				loss := 0.2 + 0.4*rng.Float64()
				ops = append(ops, Op{At: t, Kind: OpDropProfile, Target: seg,
					Loss: loss, For: 20 * time.Second})
			}
		case 7:
			ops = append(ops, Op{At: t, Kind: OpFailover, For: 30 * time.Second})
		}
	}
	// Trailing restarts, in topology (deterministic) order.
	t += 2 * time.Second
	for _, n := range targets {
		if down[n.Name] {
			ops = append(ops, Op{At: t, Kind: OpRestartNode, Node: n.Name})
		}
	}
	return Schedule{Seed: seed, Ops: ops, Settle: DefaultSettle}
}

func otherDomain(rng *rand.Rand, domains []string, cur string) string {
	var others []string
	for _, d := range domains {
		if d != cur {
			others = append(others, d)
		}
	}
	if len(others) == 0 {
		return ""
	}
	return others[rng.Intn(len(others))]
}

// Disturbed returns the set of node names a schedule may plausibly have
// affected, over-marking where the blast radius is indirect (a segment
// partition disturbs every node on the segment's switches; a failover
// disturbs every admin node). Nodes NOT in the set must come through
// the run without an unsuppressed failure verdict.
func (s Schedule) Disturbed(topo Topology) map[string]bool {
	out := map[string]bool{}
	markSwitch := func(sw string) {
		for _, n := range topo.Nodes {
			if n.Switch == sw {
				out[n.Name] = true
			}
		}
	}
	for _, op := range s.Ops {
		switch op.Kind {
		case OpKillNode, OpRestartNode, OpMoveDomain:
			out[op.Node] = true
		case OpFailAdapter:
			for _, n := range topo.Nodes {
				for _, ip := range n.Adapters {
					if ip == op.Adapter {
						out[n.Name] = true
					}
				}
			}
		case OpKillSwitch:
			markSwitch(op.Target)
		case OpPartition, OpDropProfile:
			// Segment membership is dynamic (domain moves rewire VLANs);
			// over-mark every node rather than guess.
			for _, n := range topo.Nodes {
				out[n.Name] = true
			}
		case OpFailover:
			for _, n := range topo.Nodes {
				if n.Role == "admin" {
					out[n.Name] = true
				}
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Text DSL

// String renders the schedule in the text DSL, one op per line:
//
//	seed 101
//	@2s kill acme-be-003
//	@6s fail 10.3.0.5 fail-recv for 10s
//	@9s partition vlan-101 for 8s
//	@11s drop vlan-102 0.35 for 20s
//	@12s switch-off sw-01 for 8s
//	@15s move acme-fe-001 to globex
//	@20s failover for 30s
//	settle 3m
//
// Parse reads the same format back; String∘Parse is the identity.
func (s Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d\n", s.Seed)
	for _, op := range s.Ops {
		fmt.Fprintf(&b, "@%v %s", op.At, op.Kind)
		switch op.Kind {
		case OpKillNode, OpRestartNode:
			fmt.Fprintf(&b, " %s", op.Node)
		case OpFailAdapter:
			fmt.Fprintf(&b, " %v %v", op.Adapter, op.Mode)
		case OpPartition, OpKillSwitch:
			fmt.Fprintf(&b, " %s", op.Target)
		case OpDropProfile:
			fmt.Fprintf(&b, " %s %s", op.Target, strconv.FormatFloat(op.Loss, 'g', -1, 64))
		case OpMoveDomain:
			fmt.Fprintf(&b, " %s to %s", op.Node, op.Target)
		}
		if op.For > 0 {
			fmt.Fprintf(&b, " for %v", op.For)
		}
		b.WriteByte('\n')
	}
	settle := s.Settle
	if settle == 0 {
		settle = DefaultSettle
	}
	fmt.Fprintf(&b, "settle %v\n", settle)
	return b.String()
}

var opByName = func() map[string]OpKind {
	m := make(map[string]OpKind, len(opNames))
	for k, n := range opNames {
		m[n] = k
	}
	return m
}()

var modeByName = map[string]netsim.FailureMode{
	netsim.FailStop.String(): netsim.FailStop,
	netsim.FailRecv.String(): netsim.FailRecv,
	netsim.FailSend.String(): netsim.FailSend,
}

// Parse reads the text DSL produced by String. Blank lines and lines
// starting with '#' are ignored.
func Parse(text string) (Schedule, error) {
	var s Schedule
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		switch {
		case f[0] == "seed":
			if len(f) != 2 {
				return s, fmt.Errorf("line %d: want 'seed N'", ln+1)
			}
			v, err := strconv.ParseInt(f[1], 10, 64)
			if err != nil {
				return s, fmt.Errorf("line %d: bad seed: %v", ln+1, err)
			}
			s.Seed = v
		case f[0] == "settle":
			if len(f) != 2 {
				return s, fmt.Errorf("line %d: want 'settle <duration>'", ln+1)
			}
			d, err := time.ParseDuration(f[1])
			if err != nil || d < 0 {
				return s, fmt.Errorf("line %d: bad settle duration %q", ln+1, f[1])
			}
			s.Settle = d
		case strings.HasPrefix(f[0], "@"):
			op, err := parseOp(f)
			if err != nil {
				return s, fmt.Errorf("line %d: %v", ln+1, err)
			}
			s.Ops = append(s.Ops, op)
		default:
			return s, fmt.Errorf("line %d: unrecognized directive %q", ln+1, f[0])
		}
	}
	return s, nil
}

func parseOp(f []string) (Op, error) {
	var op Op
	at, err := time.ParseDuration(f[0][1:])
	if err != nil || at < 0 {
		return op, fmt.Errorf("bad time %q", f[0])
	}
	op.At = at
	if len(f) < 2 {
		return op, fmt.Errorf("missing operation")
	}
	kind, ok := opByName[f[1]]
	if !ok {
		return op, fmt.Errorf("unknown operation %q", f[1])
	}
	op.Kind = kind
	args := f[2:]
	// Trailing "for <duration>".
	if len(args) >= 2 && args[len(args)-2] == "for" {
		d, err := time.ParseDuration(args[len(args)-1])
		if err != nil || d <= 0 {
			return op, fmt.Errorf("bad hold duration %q", args[len(args)-1])
		}
		op.For = d
		args = args[:len(args)-2]
	}
	switch kind {
	case OpKillNode, OpRestartNode:
		if len(args) != 1 {
			return op, fmt.Errorf("%s wants a node name", kind)
		}
		op.Node = args[0]
	case OpFailAdapter:
		if len(args) != 2 {
			return op, fmt.Errorf("fail wants '<ip> <mode>'")
		}
		ip, ok := transport.ParseIP(args[0])
		if !ok {
			return op, fmt.Errorf("bad adapter IP %q", args[0])
		}
		mode, ok := modeByName[args[1]]
		if !ok {
			return op, fmt.Errorf("unknown failure mode %q", args[1])
		}
		op.Adapter, op.Mode = ip, mode
	case OpPartition, OpKillSwitch:
		if len(args) != 1 {
			return op, fmt.Errorf("%s wants a target name", kind)
		}
		op.Target = args[0]
	case OpDropProfile:
		if len(args) != 2 {
			return op, fmt.Errorf("drop wants '<segment> <loss>'")
		}
		loss, err := strconv.ParseFloat(args[1], 64)
		if err != nil || loss < 0 || loss > 1 {
			return op, fmt.Errorf("bad loss rate %q", args[1])
		}
		op.Target, op.Loss = args[0], loss
	case OpMoveDomain:
		if len(args) != 3 || args[1] != "to" {
			return op, fmt.Errorf("move wants '<node> to <domain>'")
		}
		op.Node, op.Target = args[0], args[2]
	case OpFailover:
		if len(args) != 0 {
			return op, fmt.Errorf("failover takes no arguments")
		}
	}
	return op, nil
}

// ---------------------------------------------------------------------------
// Go-literal emission

// GoLiteral renders the schedule as a Go composite literal (package
// qualifier "check.") ready to paste into a regression test.
func (s Schedule) GoLiteral() string {
	var b strings.Builder
	fmt.Fprintf(&b, "check.Schedule{\n\tSeed:   %d,\n\tSettle: %s,\n\tOps: []check.Op{\n", s.Seed, goDur(s.Settle))
	for _, op := range s.Ops {
		fmt.Fprintf(&b, "\t\t{At: %s, Kind: check.Op%s", goDur(op.At), exportedOpName(op.Kind))
		if op.Node != "" {
			fmt.Fprintf(&b, ", Node: %q", op.Node)
		}
		if op.Adapter != 0 {
			fmt.Fprintf(&b, ", Adapter: %s", goIP(op.Adapter))
		}
		if op.Mode != netsim.Healthy {
			fmt.Fprintf(&b, ", Mode: netsim.%s", exportedModeName(op.Mode))
		}
		if op.Target != "" {
			fmt.Fprintf(&b, ", Target: %q", op.Target)
		}
		if op.Loss != 0 {
			fmt.Fprintf(&b, ", Loss: %s", strconv.FormatFloat(op.Loss, 'g', -1, 64))
		}
		if op.For > 0 {
			fmt.Fprintf(&b, ", For: %s", goDur(op.For))
		}
		b.WriteString("},\n")
	}
	b.WriteString("\t},\n}")
	return b.String()
}

func exportedOpName(k OpKind) string {
	switch k {
	case OpKillNode:
		return "KillNode"
	case OpRestartNode:
		return "RestartNode"
	case OpFailAdapter:
		return "FailAdapter"
	case OpPartition:
		return "Partition"
	case OpDropProfile:
		return "DropProfile"
	case OpKillSwitch:
		return "KillSwitch"
	case OpMoveDomain:
		return "MoveDomain"
	case OpFailover:
		return "Failover"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

func exportedModeName(m netsim.FailureMode) string {
	switch m {
	case netsim.FailStop:
		return "FailStop"
	case netsim.FailRecv:
		return "FailRecv"
	case netsim.FailSend:
		return "FailSend"
	}
	return fmt.Sprintf("FailureMode(%d)", int(m))
}

func goDur(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d%time.Minute == 0:
		return fmt.Sprintf("%d * time.Minute", d/time.Minute)
	case d%time.Second == 0:
		return fmt.Sprintf("%d * time.Second", d/time.Second)
	case d%time.Millisecond == 0:
		return fmt.Sprintf("%d * time.Millisecond", d/time.Millisecond)
	default:
		return fmt.Sprintf("time.Duration(%d)", int64(d))
	}
}

func goIP(ip transport.IP) string {
	parts := strings.Split(ip.String(), ".")
	return fmt.Sprintf("transport.MakeIP(%s, %s, %s, %s)", parts[0], parts[1], parts[2], parts[3])
}

// sortOps orders ops by time, keeping the relative order of equal
// times stable (needed by the shrinker's chunking).
func sortOps(ops []Op) {
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].At < ops[j].At })
}
