package snmp

import (
	"errors"
	"fmt"

	"repro/internal/transport"
)

// MIB is the management-information view an agent serves. The simulated
// switches in internal/switchsim implement it over their VLAN/port state.
type MIB interface {
	// Get returns the value at oid, or ErrNoSuchName.
	Get(oid OID) (Value, error)
	// Next returns the first (oid, value) strictly after the given oid in
	// walk order, or ErrNoSuchName at the end of the MIB.
	Next(oid OID) (OID, Value, error)
	// Set writes oid, or returns ErrNoSuchName / ErrNotWritable /
	// ErrBadValue.
	Set(oid OID, v Value) error
}

// Errors a MIB may return; the agent maps them to SNMP error-status codes.
var (
	ErrNoSuchName  = errors.New("snmp: no such name")
	ErrNotWritable = errors.New("snmp: not writable")
	ErrBadValue    = errors.New("snmp: bad value")
)

func errStatus(err error) int {
	switch {
	case err == nil:
		return ErrStatusNoError
	case errors.Is(err, ErrNoSuchName):
		return ErrStatusNoSuchName
	case errors.Is(err, ErrNotWritable):
		return ErrStatusNotWritable
	case errors.Is(err, ErrBadValue):
		return ErrStatusBadValue
	default:
		return ErrStatusGenErr
	}
}

// Agent serves a MIB over a transport endpoint (the switch's management
// adapter on the administrative segment).
type Agent struct {
	ep        transport.Endpoint
	mib       MIB
	community string
	port      uint16
}

// NewAgent binds an agent to ep's SNMP port, answering requests carrying
// the given community string. Requests with the wrong community are
// silently dropped (classic SNMP behaviour).
func NewAgent(ep transport.Endpoint, community string, mib MIB) *Agent {
	return NewAgentOn(ep, community, mib, transport.PortSNMP)
}

// NewAgentOn is NewAgent on an explicit UDP port. The well-known SNMP
// port is privileged on real hosts, so unprivileged harnesses (CI) run
// their emulated switch agents high and point Central at the full
// address — the client already targets whatever port the agent Addr
// carries.
func NewAgentOn(ep transport.Endpoint, community string, mib MIB, port uint16) *Agent {
	a := &Agent{ep: ep, mib: mib, community: community, port: port}
	ep.Bind(port, a.handle)
	return a
}

func (a *Agent) handle(src, _ transport.Addr, payload []byte) {
	req, err := Unmarshal(payload)
	if err != nil || req.Community != a.community || req.Type == Response {
		return
	}
	resp := &Message{
		Community: a.community,
		Type:      Response,
		RequestID: req.RequestID,
		Bindings:  make([]VarBind, len(req.Bindings)),
	}
	copy(resp.Bindings, req.Bindings)
	for i, vb := range req.Bindings {
		var err error
		switch req.Type {
		case Get:
			var v Value
			v, err = a.mib.Get(vb.OID)
			if err == nil {
				resp.Bindings[i].Value = v
			}
		case GetNext:
			var next OID
			var v Value
			next, v, err = a.mib.Next(vb.OID)
			if err == nil {
				resp.Bindings[i] = VarBind{OID: next, Value: v}
			}
		case Set:
			err = a.mib.Set(vb.OID, vb.Value)
		}
		if err != nil {
			resp.ErrStatus = errStatus(err)
			resp.ErrIndex = i + 1
			break
		}
	}
	out, err := resp.Marshal()
	if err != nil {
		return
	}
	// Best effort; SNMP has no agent-side retry.
	_ = a.ep.Unicast(a.port, src, out)
}

// MapMIB is a MIB backed by an ordered map, with an optional write hook so
// switches can apply side effects (VLAN moves) on Set.
type MapMIB struct {
	vals     map[string]Value
	oids     []OID // sorted
	writable map[string]bool
	// OnSet, if non-nil, runs after a successful Set with the new value.
	OnSet func(oid OID, v Value)
	// Validate, if non-nil, can veto a Set with ErrBadValue et al.
	Validate func(oid OID, v Value) error
}

// NewMapMIB returns an empty MapMIB.
func NewMapMIB() *MapMIB {
	return &MapMIB{vals: make(map[string]Value), writable: make(map[string]bool)}
}

// Define installs an object. writable controls Set access.
func (m *MapMIB) Define(oid OID, v Value, writable bool) {
	key := oid.String()
	if _, exists := m.vals[key]; !exists {
		m.oids = append(m.oids, oid.Append()) // copy
		sortOIDs(m.oids)
	}
	m.vals[key] = v
	m.writable[key] = writable
}

// Undefine removes an object.
func (m *MapMIB) Undefine(oid OID) {
	key := oid.String()
	if _, exists := m.vals[key]; !exists {
		return
	}
	delete(m.vals, key)
	delete(m.writable, key)
	for i, o := range m.oids {
		if o.Compare(oid) == 0 {
			m.oids = append(m.oids[:i], m.oids[i+1:]...)
			break
		}
	}
}

// Update changes an existing object's value without touching writability,
// bypassing validation (for the device updating its own state).
func (m *MapMIB) Update(oid OID, v Value) error {
	key := oid.String()
	if _, ok := m.vals[key]; !ok {
		return fmt.Errorf("%w: %v", ErrNoSuchName, oid)
	}
	m.vals[key] = v
	return nil
}

// Get implements MIB.
func (m *MapMIB) Get(oid OID) (Value, error) {
	v, ok := m.vals[oid.String()]
	if !ok {
		return Null, fmt.Errorf("%w: %v", ErrNoSuchName, oid)
	}
	return v, nil
}

// Next implements MIB.
func (m *MapMIB) Next(oid OID) (OID, Value, error) {
	for _, o := range m.oids {
		if o.Compare(oid) > 0 {
			return o, m.vals[o.String()], nil
		}
	}
	return nil, Null, fmt.Errorf("%w: walked past end", ErrNoSuchName)
}

// Set implements MIB.
func (m *MapMIB) Set(oid OID, v Value) error {
	key := oid.String()
	if _, ok := m.vals[key]; !ok {
		return fmt.Errorf("%w: %v", ErrNoSuchName, oid)
	}
	if !m.writable[key] {
		return fmt.Errorf("%w: %v", ErrNotWritable, oid)
	}
	if m.Validate != nil {
		if err := m.Validate(oid, v); err != nil {
			return err
		}
	}
	m.vals[key] = v
	if m.OnSet != nil {
		m.OnSet(oid, v)
	}
	return nil
}

// Walk visits every object at or below prefix in order.
func (m *MapMIB) Walk(prefix OID, fn func(OID, Value)) {
	for _, o := range m.oids {
		if o.HasPrefix(prefix) {
			fn(o, m.vals[o.String()])
		}
	}
}
