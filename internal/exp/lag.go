package exp

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/farm"
	"repro/internal/serve"
	"repro/internal/span"
)

// LagOptions parameterizes E18, the end-to-end latency attribution
// sweep: the E17 farm and churn scripts, but instrumented with the
// causal timeline plane. Every trial stitches the full
// failure→reroute pipeline into one span and attributes the user-
// visible window stage by stage; the sweep reports per-stage latency
// quantiles and reconciles the span arithmetic against the serving
// plane's independently-measured error-seconds.
type LagOptions struct {
	Seed int64
	// FrontEnds sweeps the per-domain front-end count (farm size axis).
	FrontEnds []int
	// Schedules names the churn scripts to run ("failure", "move").
	Schedules []string
	// Trials per cell; trial i runs the same cell at Seed+i (detection
	// timing varies with the farm seed, spreading the quantiles).
	Trials int
	// Delay is the notification pipe's one-way latency — nonzero so the
	// notify→reroute stage is visible in the waterfall.
	Delay time.Duration
	// SessionsPerSec is the per-domain mean session arrival rate.
	SessionsPerSec float64
	// Warmup runs before measurement starts; Tail must stay error-free.
	Warmup time.Duration
	Tail   time.Duration
	// Parallel bounds concurrent trials (NumCPU when 0).
	Parallel int
	// JSONPath, when non-empty, receives the raw points
	// (BENCH_lag.json in CI).
	JSONPath string
}

// DefaultLag matches E17's farm sizes and schedules (same base seed, so
// trial 0 replays E17's cells record-for-record) at the 500 ms pipe.
func DefaultLag() LagOptions {
	return LagOptions{
		Seed:           171,
		FrontEnds:      []int{2, 4, 8},
		Schedules:      []string{"failure", "move"},
		Trials:         3,
		Delay:          500 * time.Millisecond,
		SessionsPerSec: 200,
		Warmup:         5 * time.Second,
		Tail:           15 * time.Second,
	}
}

// QuickLag is the PR-gate variant: one farm size, two trials.
func QuickLag() LagOptions {
	o := DefaultLag()
	o.FrontEnds = []int{2}
	o.Trials = 2
	return o
}

// LagTrial is one stitched trial of a cell.
type LagTrial struct {
	Seed int64 `json:"seed"`
	// Stages is the primary span's per-stage attribution in milestone
	// order; the durations sum to TotalMs exactly (gap-free).
	Stages []LagTrialStage `json:"stages"`
	// TotalMs is the primary span's end-to-end duration.
	TotalMs float64 `json:"total_ms"`
	// Spans counts all spans stitched from the trial (leader changes
	// ride along with the incident under churn).
	Spans int `json:"spans"`
	// MeasuredErrorSeconds is the serving plane's independent
	// measurement; PredictedErrorSeconds is the span arithmetic
	// (fault→reroute window / front-ends) — failure schedule only.
	MeasuredErrorSeconds  float64 `json:"measured_error_seconds"`
	PredictedErrorSeconds float64 `json:"predicted_error_seconds,omitempty"`
}

// LagTrialStage is one attributed stage of a trial's primary span.
type LagTrialStage struct {
	Stage string  `json:"stage"`
	Ms    float64 `json:"ms"`
}

// LagStage is one stage's latency quantiles across a cell's trials.
type LagStage struct {
	Stage string  `json:"stage"`
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// LagPoint is one measured cell of the E18 sweep.
type LagPoint struct {
	FrontEnds int        `json:"front_ends_per_domain"`
	Schedule  string     `json:"schedule"`
	DelayMs   float64    `json:"delay_ms"`
	Trials    []LagTrial `json:"trials"`
	// Stages aggregates the per-stage attribution across trials, in
	// canonical pipeline order; Total aggregates the span totals.
	Stages []LagStage `json:"stages"`
	Total  LagStage   `json:"total"`
	// Findings collects span-audit and completeness violations (must be
	// empty for the sweep to pass).
	Findings []string `json:"findings,omitempty"`
}

// lagTrialRun measures one trial: the E17 cell pipeline with a span
// collector attached, returning the trial plus any violations.
func lagTrialRun(o LagOptions, seed int64, frontEnds int, schedule string) (LagTrial, []string, error) {
	tr := LagTrial{Seed: seed}
	var bad []string
	sched, err := serveChurn(schedule)
	if err != nil {
		return tr, nil, err
	}
	// The E17 farm, with the flight recorder switched on: capture does
	// not perturb virtual time, so trial 0 still replays E17's cells.
	spec := serveSpec(seed, frontEnds)
	spec.Trace = true
	f, err := farm.Build(spec)
	if err != nil {
		return tr, nil, err
	}
	// Attach before Start so the collector sees the whole run — the
	// stitcher must not depend on the recorder ring's capacity.
	coll := span.NewCollector(nil)
	coll.Attach("farm", f.Trace)
	f.Start()
	if _, ok := f.RunUntilStable(2 * time.Minute); !ok {
		return tr, nil, fmt.Errorf("exp: lag trial (fe=%d %s seed=%d) never stabilized",
			frontEnds, schedule, seed)
	}
	plane := f.AttachServe(
		serve.Config{Seed: seed, SessionsPerSec: o.SessionsPerSec},
		serve.NewDelayedPipe(f.Clock(), o.Delay))
	plane.Start()
	f.RunFor(o.Warmup)
	plane.Workload.ResetStats()

	sched.Run(f)
	if _, ok := f.RunUntilStable(time.Minute); !ok {
		return tr, nil, fmt.Errorf("exp: lag trial (fe=%d %s seed=%d) did not reconverge",
			frontEnds, schedule, seed)
	}
	f.RunFor(o.Delay + time.Second)
	if !plane.Drained() {
		return tr, nil, fmt.Errorf("exp: notification pipe still holds events after settle")
	}
	for _, d := range plane.Stats() {
		tr.MeasuredErrorSeconds += d.ErrorSeconds
	}
	plane.Stop()

	records := coll.Records()
	prefix := fmt.Sprintf("fe=%d %s seed=%d: ", frontEnds, schedule, seed)
	for _, finding := range span.Audit(records, f) {
		bad = append(bad, prefix+finding)
	}
	spans := span.Stitch(records, f)
	tr.Spans = len(spans)
	// The per-stage histograms ride on the farm registry, same as every
	// other instrument (satellite surface for WriteProm assertions).
	span.Observe(f.Metrics, spans)

	// The primary span: the incident the schedule injected.
	wantKind, subject := span.KindFailure, "acme-fe-00"
	if schedule == "move" {
		wantKind, subject = span.KindPlannedMove, "globex-fe-00"
	}
	var primary *span.Span
	for _, sp := range spans {
		if sp.Kind == wantKind && sp.Subject == subject {
			primary = sp
			break
		}
	}
	if primary == nil {
		bad = append(bad, prefix+fmt.Sprintf("no %s span for %s among %d spans",
			wantKind, subject, len(spans)))
		return tr, bad, nil
	}
	if !primary.Complete() {
		bad = append(bad, prefix+fmt.Sprintf("primary span incomplete, missing %v", primary.Missing))
	}
	if !primary.Closed {
		bad = append(bad, prefix+"primary span never closed")
	}
	tr.TotalMs = durMs(primary.Total())
	for _, sd := range primary.StageDurations() {
		tr.Stages = append(tr.Stages, LagTrialStage{Stage: sd.Stage.String(), Ms: durMs(sd.D)})
	}
	if schedule == "failure" {
		fault, reroute := primary.Milestone(span.StFault), primary.Milestone(span.StReroute)
		switch {
		case fault == nil || reroute == nil:
			bad = append(bad, prefix+"failure span lacks fault/reroute milestones")
		default:
			// One of fe front-ends was dark from the kill until the
			// balancer pulled it: the users' share of that window is the
			// error-seconds the serving plane should have measured.
			tr.PredictedErrorSeconds = (reroute.T - fault.T).Seconds() / float64(frontEnds)
			tol := 0.35 + 0.10*tr.MeasuredErrorSeconds
			if diff := math.Abs(tr.PredictedErrorSeconds - tr.MeasuredErrorSeconds); diff > tol {
				bad = append(bad, prefix+fmt.Sprintf(
					"span arithmetic does not reconcile: predicted %.4f err-sec, measured %.4f (|diff| %.4f > tol %.4f)",
					tr.PredictedErrorSeconds, tr.MeasuredErrorSeconds, diff, tol))
			}
		}
	}
	return tr, bad, nil
}

func durMs(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// lagStageOrder is the canonical rendering order for attribution rows.
var lagStageOrder = []span.Stage{
	span.StFault, span.StSuspicion, span.StProbe, span.StVerdict,
	span.StTakeover, span.StPrepare, span.StCommit, span.StView,
	span.StReport, span.StNotify, span.StReroute, span.StMoveDone,
	span.StRestore, span.StClean,
}

// quantiles computes nearest-rank p50/p95/p99 over the sorted samples.
func quantiles(samples []float64) (p50, p95, p99 float64) {
	if len(samples) == 0 {
		return 0, 0, 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	rank := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(s)))) - 1
		if i < 0 {
			i = 0
		}
		return s[i]
	}
	return rank(0.50), rank(0.95), rank(0.99)
}

// LagCell measures one (farm size, schedule) cell: Trials independent
// trials, aggregated into per-stage quantiles.
func LagCell(o LagOptions, frontEnds int, schedule string) (LagPoint, error) {
	pt := LagPoint{
		FrontEnds: frontEnds,
		Schedule:  schedule,
		DelayMs:   durMs(o.Delay),
	}
	byStage := map[string][]float64{}
	var totals []float64
	for trial := 0; trial < o.Trials; trial++ {
		tr, bad, err := lagTrialRun(o, o.Seed+int64(trial), frontEnds, schedule)
		if err != nil {
			return pt, err
		}
		pt.Trials = append(pt.Trials, tr)
		pt.Findings = append(pt.Findings, bad...)
		for _, st := range tr.Stages {
			byStage[st.Stage] = append(byStage[st.Stage], st.Ms)
		}
		totals = append(totals, tr.TotalMs)
	}
	for _, st := range lagStageOrder {
		samples, ok := byStage[st.String()]
		if !ok {
			continue
		}
		p50, p95, p99 := quantiles(samples)
		pt.Stages = append(pt.Stages, LagStage{Stage: st.String(), P50Ms: p50, P95Ms: p95, P99Ms: p99})
	}
	p50, p95, p99 := quantiles(totals)
	pt.Total = LagStage{Stage: "total", P50Ms: p50, P95Ms: p95, P99Ms: p99}
	return pt, nil
}

// LagSweep measures every cell; trials across cells run in parallel
// (each trial is its own farm, so results are deterministic regardless
// of execution order).
func LagSweep(o LagOptions) ([]LagPoint, error) {
	if o.Parallel <= 0 {
		o.Parallel = runtime.NumCPU()
	}
	type cell struct {
		fe    int
		sched string
	}
	var cells []cell
	for _, fe := range o.FrontEnds {
		for _, s := range o.Schedules {
			cells = append(cells, cell{fe, s})
		}
	}
	points := make([]LagPoint, len(cells))
	errs := make([]error, len(cells))
	sem := make(chan struct{}, o.Parallel)
	var wg sync.WaitGroup
	for i, c := range cells {
		wg.Add(1)
		go func(i int, c cell) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			points[i], errs[i] = LagCell(o, c.fe, c.sched)
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return points, nil
}

// lagSanity returns one message per violated acceptance property:
// every trial's audit and completeness findings (already collected per
// point), plus monotone quantiles per stage.
func lagSanity(points []LagPoint) []string {
	var bad []string
	for _, pt := range points {
		bad = append(bad, pt.Findings...)
		for _, st := range append(append([]LagStage(nil), pt.Stages...), pt.Total) {
			if st.P50Ms > st.P95Ms || st.P95Ms > st.P99Ms {
				bad = append(bad, fmt.Sprintf("fe=%d %s: stage %s quantiles not monotone (%.3f/%.3f/%.3f)",
					pt.FrontEnds, pt.Schedule, st.Stage, st.P50Ms, st.P95Ms, st.P99Ms))
			}
		}
	}
	return bad
}

// Lag runs E18 and renders the stage-attribution table. The returned
// count is the number of violated sanity properties (0 on a healthy
// sweep).
func Lag(o LagOptions) (*Table, int, error) {
	points, err := LagSweep(o)
	if err != nil {
		return nil, 0, err
	}
	bad := lagSanity(points)

	t := &Table{
		ID: "E18/lag",
		Title: fmt.Sprintf("end-to-end latency attribution: %d farm sizes x %v, %d trials each, %.0f ms pipe",
			len(o.FrontEnds), o.Schedules, o.Trials, durMs(o.Delay)),
		Columns: []string{"fe/dom", "schedule", "stage", "p50(ms)", "p95(ms)", "p99(ms)"},
	}
	for _, pt := range points {
		rows := append(append([]LagStage(nil), pt.Stages...), pt.Total)
		for _, st := range rows {
			t.AddRow(
				fmt.Sprintf("%d", pt.FrontEnds),
				pt.Schedule,
				st.Stage,
				fmt.Sprintf("%.1f", st.P50Ms),
				fmt.Sprintf("%.1f", st.P95Ms),
				fmt.Sprintf("%.1f", st.P99Ms),
			)
		}
	}
	t.Note("each stage row is the latency attributed to reaching that milestone from the previous one; stages sum to total exactly (gap-free)")
	t.Note("failure: fault->suspicion dominates (detection); notify->reroute is the injected pipe delay")
	t.Note("move: the span opens at MoveStarted — reroute after one pipe delay, then rejoin, correlation, restore")
	for _, m := range bad {
		t.Note("SANITY FAILED: %s", m)
	}
	if len(bad) == 0 {
		t.Note("sanity: every incident closed into a complete, monotone, gap-free span; failure-cell span arithmetic reconciles with measured error-seconds")
	}
	if o.JSONPath != "" {
		blob, err := json.MarshalIndent(points, "", "  ")
		if err != nil {
			return nil, len(bad), err
		}
		if err := os.WriteFile(o.JSONPath, append(blob, '\n'), 0o644); err != nil {
			return nil, len(bad), err
		}
		t.Note("raw points written to %s", o.JSONPath)
	}
	return t, len(bad), nil
}
