package transport

import (
	"testing"
	"testing/quick"
)

func TestMakeIPString(t *testing.T) {
	cases := []struct {
		a, b, c, d byte
		want       string
	}{
		{10, 0, 0, 1, "10.0.0.1"},
		{192, 168, 255, 254, "192.168.255.254"},
		{0, 0, 0, 0, "0.0.0.0"},
		{255, 255, 255, 255, "255.255.255.255"},
	}
	for _, c := range cases {
		if got := MakeIP(c.a, c.b, c.c, c.d).String(); got != c.want {
			t.Errorf("MakeIP(%d,%d,%d,%d) = %q, want %q", c.a, c.b, c.c, c.d, got, c.want)
		}
	}
}

func TestParseIP(t *testing.T) {
	good := map[string]IP{
		"10.0.0.1":    MakeIP(10, 0, 0, 1),
		"224.0.0.71":  MakeIP(224, 0, 0, 71),
		"255.0.255.0": MakeIP(255, 0, 255, 0),
	}
	for s, want := range good {
		got, ok := ParseIP(s)
		if !ok || got != want {
			t.Errorf("ParseIP(%q) = %v,%v; want %v,true", s, got, ok, want)
		}
	}
	bad := []string{"", "10.0.0", "10.0.0.256", "a.b.c.d", "-1.0.0.0"}
	for _, s := range bad {
		if _, ok := ParseIP(s); ok {
			t.Errorf("ParseIP(%q) succeeded, want failure", s)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		ip := IP(v)
		back, ok := ParseIP(ip.String())
		return ok && back == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsMulticast(t *testing.T) {
	if !BeaconGroup.IsMulticast() {
		t.Error("BeaconGroup must be multicast")
	}
	if MakeIP(10, 0, 0, 1).IsMulticast() {
		t.Error("10.0.0.1 must not be multicast")
	}
	if !MakeIP(239, 255, 255, 255).IsMulticast() {
		t.Error("239.255.255.255 must be multicast")
	}
	if MakeIP(240, 0, 0, 1).IsMulticast() {
		t.Error("240.0.0.1 must not be multicast (class E)")
	}
}

func TestIPOrderingMatchesNumeric(t *testing.T) {
	// Leader election depends on numeric ordering: 10.0.1.0 > 10.0.0.255.
	lo := MakeIP(10, 0, 0, 255)
	hi := MakeIP(10, 0, 1, 0)
	if !(hi > lo) {
		t.Errorf("expected %v > %v", hi, lo)
	}
}

func TestAddrString(t *testing.T) {
	a := Addr{IP: MakeIP(10, 0, 0, 1), Port: 7400}
	if a.String() != "10.0.0.1:7400" {
		t.Errorf("Addr.String() = %q", a.String())
	}
}
