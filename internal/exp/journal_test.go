package exp

import "testing"

// TestJournalFailoverFewerResyncMessages is the headline acceptance check
// for the state journal: on a 20-node farm, a warm-standby successor must
// rebuild its view with strictly fewer report-plane messages than a cold
// successor pulling full re-reports from every leader.
func TestJournalFailoverFewerResyncMessages(t *testing.T) {
	o := DefaultJournalFailover()
	if o.AdminNodes+o.UniformNodes < 20 {
		t.Fatalf("farm too small for the acceptance check: %d nodes", o.AdminNodes+o.UniformNodes)
	}
	off, err := JournalFailoverTrial(o, false, o.Seed)
	if err != nil {
		t.Fatal(err)
	}
	on, err := JournalFailoverTrial(o, true, o.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if off.Rebuild <= 0 || on.Rebuild <= 0 {
		t.Fatalf("implausible rebuild times: off=%v on=%v", off.Rebuild, on.Rebuild)
	}
	if on.ResyncMsgs >= off.ResyncMsgs {
		t.Fatalf("journal did not reduce resync traffic: on=%d off=%d report msgs",
			on.ResyncMsgs, off.ResyncMsgs)
	}
	// The journal plane is what replaces that traffic: silent with the
	// journal off, active (snapshot + appends to the new standby) with it on.
	if off.JournalMsgs != 0 {
		t.Fatalf("journal-off farm sent %d journal-plane messages", off.JournalMsgs)
	}
	if on.JournalMsgs == 0 {
		t.Fatal("journal-on farm never used the journal plane after failover")
	}
	t.Logf("rebuild off=%v on=%v; report msgs off=%d on=%d; journal msgs on=%d",
		off.Rebuild, on.Rebuild, off.ResyncMsgs, on.ResyncMsgs, on.JournalMsgs)
}

// TestJournalFailoverTable exercises the printable experiment end to end
// at a reduced size.
func TestJournalFailoverTable(t *testing.T) {
	o := DefaultJournalFailover()
	o.AdminNodes, o.UniformNodes, o.Trials = 3, 5, 1
	tab, err := JournalFailover(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (off + on)", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[2] == "timeout" {
			t.Fatalf("incomplete row: %v", row)
		}
	}
}
