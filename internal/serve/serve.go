// Package serve is the topology-driven serving plane: the Océano
// use-case GulfStream was built for (paper §1, §3.1), where a hosting
// farm keeps answering customer requests while nodes fail, move between
// security domains, and switches are rewired underneath them.
//
// It has three parts:
//
//   - a Balancer that maintains a per-domain table of healthy front-end
//     backends, updated exclusively from GulfStream Central's event bus
//     (AdapterFailed, NodeFailed, MoveStarted, NodeMoved, recoveries,
//     VerifyMismatch) — never from ground truth, so what it routes on is
//     exactly what the notification path delivered;
//   - a Pipe between the bus and the balancer that models the
//     notification channel: a direct tap (the balancer runs next to
//     Central) or a delayed unicast feed (a replica notified over the
//     network), making stale-view routing a measurable quantity;
//   - a Workload that drives a simulated client population against the
//     balancer inside the deterministic event kernel. Sessions arrive in
//     heavy-tailed bursts from a seed-deterministic generator and are
//     tracked as counted cohorts — an int per expiry bucket, not a
//     goroutine or struct per session — so millions of in-flight
//     sessions cost the same as ten.
//
// Every request resolves against a ground-truth Oracle (the switch
// fabric plus daemon liveness): a request routed to a node the fabric
// has killed or moved out of the domain is an error. The workload
// accumulates per-domain request/error counts, misroutes, and
// error-seconds — the integral of the failing traffic fraction over
// time — which is what turns "notification latency" into a user-visible
// number (experiment E17, DESIGN.md §11).
package serve

import (
	"time"

	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Config tunes the serving plane. The zero value is usable: every field
// falls back to the defaults below.
type Config struct {
	// Seed drives the workload's arrival generator. The generator owns
	// its random stream (it never touches the scheduler's), so the same
	// seed yields the identical arrival sequence under any notification
	// delay or churn schedule.
	Seed int64
	// Tick is the workload's accounting quantum (default 100ms): each
	// tick expires due sessions, admits arrivals, and routes the tick's
	// request batch.
	Tick time.Duration
	// SessionsPerSec is the mean session arrival rate per domain
	// (default 200). Arrivals come in heavy-tailed bursts, so the
	// instantaneous rate swings far above the mean.
	SessionsPerSec float64
	// RequestsPerSec is each in-flight session's request rate (default 1).
	RequestsPerSec float64
	// BurstAlpha is the bounded-Pareto shape of the per-burst session
	// count (default 1.4; lower = heavier tail).
	BurstAlpha float64
	// MaxBurst bounds one burst's session count (default 5000).
	MaxBurst int
	// MeanSession is the mean session duration (default 30s).
	MeanSession time.Duration
	// SessionAlpha is the bounded-Pareto shape of session durations
	// (default 1.3).
	SessionAlpha float64
	// TailRatio is the longest-to-shortest session duration ratio
	// (default 100): durations are Pareto on [L, TailRatio*L] with L
	// chosen so the mean lands on MeanSession.
	TailRatio float64
	// QuarantineOnMismatch drops a backend from rotation when a
	// VerifyMismatch names its node (off by default: chaos runs produce
	// transient mismatches that would thrash the table).
	QuarantineOnMismatch bool
}

func (c Config) withDefaults() Config {
	if c.Tick <= 0 {
		c.Tick = 100 * time.Millisecond
	}
	if c.SessionsPerSec <= 0 {
		c.SessionsPerSec = 200
	}
	if c.RequestsPerSec <= 0 {
		c.RequestsPerSec = 1
	}
	if c.BurstAlpha <= 0 {
		c.BurstAlpha = 1.4
	}
	if c.MaxBurst <= 0 {
		c.MaxBurst = 5000
	}
	if c.MeanSession <= 0 {
		c.MeanSession = 30 * time.Second
	}
	if c.SessionAlpha <= 0 {
		c.SessionAlpha = 1.3
	}
	if c.TailRatio < 2 {
		c.TailRatio = 100
	}
	return c
}

// Directory is the static serving topology the balancer seeds from and
// the lookup it consults when a move notification arrives. farm.Farm
// satisfies it structurally.
type Directory interface {
	// Domains lists the served domains, deterministically ordered.
	Domains() []string
	// FrontEnds lists the domain's front-end nodes, deterministically
	// ordered.
	FrontEnds(domain string) []string
	// DomainOf resolves a node's current domain (the directory's view at
	// call time; through a delayed pipe that view is already stale by
	// the pipe's delay, which is the point).
	DomainOf(node string) (string, bool)
}

// Oracle is the ground truth a routed request resolves against: the
// switch fabric's current wiring plus daemon liveness. farm.Farm
// satisfies it structurally.
type Oracle interface {
	// Serves reports whether the node can actually answer the domain's
	// traffic right now.
	Serves(node, domain string) bool
}

// Plane bundles one assembled serving plane: balancer, workload, and the
// notification pipe between Central's bus and the balancer.
type Plane struct {
	Balancer *Balancer
	Workload *Workload
	pipe     Pipe
}

// Attach builds a serving plane over the given farm surfaces and
// subscribes it to the bus through pipe (a direct tap when pipe is nil).
// reg and tracer may be nil.
func Attach(cfg Config, clock transport.Clock, bus *event.Bus, dir Directory,
	oracle Oracle, reg *metrics.Registry, tracer *trace.Recorder, pipe Pipe) *Plane {
	cfg = cfg.withDefaults()
	if pipe == nil {
		pipe = NewDirectPipe()
	}
	b := NewBalancer(cfg, clock, dir, reg, tracer)
	bus.Subscribe(func(e event.Event) { pipe.Deliver(e, b.Apply) })
	w := NewWorkload(cfg, clock, b, oracle, reg, tracer)
	return &Plane{Balancer: b, Workload: w, pipe: pipe}
}

// Start begins the workload ticks.
func (p *Plane) Start() { p.Workload.Start() }

// Stop halts the workload.
func (p *Plane) Stop() { p.Workload.Stop() }

// Drained reports whether every bus notification has reached the
// balancer (a delayed pipe may still hold some in flight).
func (p *Plane) Drained() bool { return p.pipe.Pending() == 0 }

// Audit checks the serving-plane invariant against ground truth: every
// backend the balancer would route to must actually serve its domain.
// It returns one finding per stale route (empty when consistent). Valid
// after the farm is stable and the pipe has drained.
func (p *Plane) Audit(oracle Oracle) []string { return p.Balancer.Audit(oracle) }

// Stats snapshots the per-domain serving statistics.
func (p *Plane) Stats() []DomainStats { return p.Workload.Stats() }
