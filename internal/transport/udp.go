package transport

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"
)

// listenUDPReuse opens a UDP socket with SO_REUSEADDR, letting unicast
// per-adapter sockets share a port number with the multicast group socket.
func listenUDPReuse(ip net.IP, port int) (*net.UDPConn, error) {
	lc := net.ListenConfig{Control: reuseControl}
	pc, err := lc.ListenPacket(context.Background(), "udp4",
		(&net.UDPAddr{IP: ip, Port: port}).String())
	if err != nil {
		return nil, err
	}
	return pc.(*net.UDPConn), nil
}

// Runtime drives event-driven GulfStream components (the daemon, Central)
// over real time and real sockets. All socket reads and timer firings are
// serialized onto one goroutine — the same single-threaded discipline the
// simulator provides — so protocol code needs no locking.
type Runtime struct {
	events chan func()
	start  time.Time

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// NewRuntime returns an idle runtime; call Run (or RunAsync) to start
// dispatching.
func NewRuntime() *Runtime {
	return &Runtime{events: make(chan func(), 1024), start: time.Now()}
}

// Now implements Clock: time since the runtime was created.
func (r *Runtime) Now() time.Duration { return time.Since(r.start) }

// Start returns the wall-clock instant Now is measured from. Processes
// that export flight-recorder timestamps (which are Now offsets) publish
// this so an external merger can align streams from different daemons
// onto one farm-wide clock.
func (r *Runtime) Start() time.Time { return r.start }

// AfterFunc implements Clock. The callback is serialized onto the event
// loop.
func (r *Runtime) AfterFunc(d time.Duration, fn func()) Timer {
	t := &udpTimer{}
	t.t = time.AfterFunc(d, func() {
		r.post(func() {
			t.mu.Lock()
			fired := t.stopped
			t.mu.Unlock()
			if !fired {
				fn()
			}
		})
	})
	return t
}

type udpTimer struct {
	t       *time.Timer
	mu      sync.Mutex
	stopped bool
}

func (t *udpTimer) Stop() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped {
		return false
	}
	t.stopped = true
	return t.t.Stop()
}

// Reset implements Timer by re-arming the underlying time.Timer.
func (t *udpTimer) Reset(d time.Duration) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	was := !t.stopped && t.t.Stop()
	t.stopped = false
	t.t.Reset(d)
	return was
}

// Post enqueues fn onto the event loop, serialized with all socket and
// timer callbacks — the only safe way for outside goroutines to touch
// event-driven components (daemons, Central) owned by this runtime.
func (r *Runtime) Post(fn func()) { r.post(fn) }

// post enqueues fn for the event loop; drops it if the runtime is closed.
func (r *Runtime) post(fn func()) {
	r.mu.Lock()
	closed := r.closed
	r.mu.Unlock()
	if closed {
		return
	}
	select {
	case r.events <- fn:
	default:
		// Back-pressure: block rather than drop protocol events.
		r.events <- fn
	}
}

// Run dispatches events until Close.
func (r *Runtime) Run() {
	for fn := range r.events {
		if fn == nil {
			return
		}
		fn()
	}
}

// RunAsync starts Run on its own goroutine.
func (r *Runtime) RunAsync() { go r.Run() }

// Close stops the loop and all endpoint sockets created from it.
func (r *Runtime) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	r.events <- nil
	r.wg.Wait()
}

// UDPEndpoint implements Endpoint over real UDP sockets bound to one
// local adapter address. Each bound GulfStream port gets its own socket;
// multicast groups are joined per (group, port).
type UDPEndpoint struct {
	rt    *Runtime
	ip    IP
	ifi   *net.Interface // interface owning ip (for multicast), may be nil
	local net.IP

	mu       sync.Mutex
	handlers map[uint16]Handler
	socks    map[uint16]*net.UDPConn
	msocks   map[Addr]*net.UDPConn
	closed   bool
}

// NewUDPEndpoint creates an endpoint for the given local IPv4 address.
func NewUDPEndpoint(rt *Runtime, ip IP) (*UDPEndpoint, error) {
	local := net.IPv4(byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
	e := &UDPEndpoint{
		rt:       rt,
		ip:       ip,
		local:    local,
		handlers: make(map[uint16]Handler),
		socks:    make(map[uint16]*net.UDPConn),
		msocks:   make(map[Addr]*net.UDPConn),
	}
	e.ifi = interfaceFor(local)
	return e, nil
}

// interfaceFor finds the network interface carrying addr: an exact
// address match wins, otherwise subnet containment (secondary loopback
// addresses like 127.0.0.2 live inside lo's 127.0.0.1/8 without being
// listed explicitly).
func interfaceFor(addr net.IP) *net.Interface {
	ifaces, err := net.Interfaces()
	if err != nil {
		return nil
	}
	var bySubnet *net.Interface
	for i := range ifaces {
		addrs, err := ifaces[i].Addrs()
		if err != nil {
			continue
		}
		for _, a := range addrs {
			ipn, ok := a.(*net.IPNet)
			if !ok {
				continue
			}
			if ipn.IP.Equal(addr) {
				return &ifaces[i]
			}
			if bySubnet == nil && ipn.Contains(addr) {
				bySubnet = &ifaces[i]
			}
		}
	}
	return bySubnet
}

// LocalIP implements Endpoint.
func (e *UDPEndpoint) LocalIP() IP { return e.ip }

// Bind implements Endpoint: it opens a UDP socket on (localIP, port) and
// dispatches arriving packets through the runtime's event loop.
func (e *UDPEndpoint) Bind(port uint16, h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if h == nil {
		delete(e.handlers, port)
		if c, ok := e.socks[port]; ok {
			c.Close()
			delete(e.socks, port)
		}
		return
	}
	e.handlers[port] = h
	if _, ok := e.socks[port]; ok {
		return
	}
	conn, err := listenUDPReuse(e.local, int(port))
	if err != nil {
		return // adapter address not configured; sends will fail too
	}
	_ = setMulticastInterface(conn, e.local)
	e.socks[port] = conn
	e.readLoop(conn, port, false)
}

// readLoop pumps one socket into the event loop. mcast marks a group
// membership socket, where our own transmissions echo back (multicast
// loopback) and must be suppressed; on unicast-bound sockets a packet
// from our own address is a genuine self-send (e.g. an AMG leader
// reporting to the Central it hosts) and must be delivered.
func (e *UDPEndpoint) readLoop(conn *net.UDPConn, port uint16, mcast bool) {
	e.rt.wg.Add(1)
	go func() {
		defer e.rt.wg.Done()
		buf := make([]byte, 64*1024)
		for {
			n, src, err := conn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			pkt := make([]byte, n)
			copy(pkt, buf[:n])
			srcIP := ipFrom(src.IP)
			if mcast && srcIP == e.ip && src.Port == int(port) {
				continue // our own multicast loopback
			}
			e.rt.post(func() {
				e.mu.Lock()
				h := e.handlers[port]
				e.mu.Unlock()
				if h != nil {
					h(Addr{IP: srcIP, Port: uint16(src.Port)}, Addr{IP: e.ip, Port: port}, pkt)
				}
			})
		}
	}()
}

func ipFrom(ip net.IP) IP {
	v4 := ip.To4()
	if v4 == nil {
		return 0
	}
	return MakeIP(v4[0], v4[1], v4[2], v4[3])
}

// JoinGroup implements Endpoint: listens on the multicast group address.
// The socket is bound to the group address itself (not the wildcard) so
// that only datagrams sent to this group reach it — endpoints on other
// emulated segments sharing the port stay invisible.
func (e *UDPEndpoint) JoinGroup(group IP, port uint16) {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := Addr{IP: group, Port: port}
	if _, ok := e.msocks[key]; ok {
		return
	}
	gip := net.IPv4(byte(group>>24), byte(group>>16), byte(group>>8), byte(group))
	if conn, err := listenUDPReuse(gip, int(port)); err == nil {
		if joinGroup4(conn, gip, ifaceAddr4(e.ifi)) == nil {
			e.msocks[key] = conn
			e.readLoop(conn, port, true)
			return
		}
		conn.Close()
	}
	// Portable fallback: wildcard-bound group socket (no per-group
	// destination filtering, fine when every segment is a real network).
	conn, err := net.ListenMulticastUDP("udp4", e.ifi, &net.UDPAddr{IP: gip, Port: int(port)})
	if err != nil {
		return
	}
	e.msocks[key] = conn
	e.readLoop(conn, port, true)
}

// ifaceAddr4 returns the first IPv4 address assigned to ifi (the address
// IP_ADD_MEMBERSHIP identifies the interface by), or nil.
func ifaceAddr4(ifi *net.Interface) net.IP {
	if ifi == nil {
		return nil
	}
	addrs, err := ifi.Addrs()
	if err != nil {
		return nil
	}
	for _, a := range addrs {
		if ipn, ok := a.(*net.IPNet); ok {
			if v4 := ipn.IP.To4(); v4 != nil {
				return v4
			}
		}
	}
	return nil
}

// LeaveGroup implements GroupLeaver: it closes the (group, port)
// membership socket, so packets to that group stop arriving. Unknown
// memberships are ignored.
func (e *UDPEndpoint) LeaveGroup(group IP, port uint16) {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := Addr{IP: group, Port: port}
	if c, ok := e.msocks[key]; ok {
		c.Close()
		delete(e.msocks, key)
	}
}

func (e *UDPEndpoint) conn(srcPort uint16) (*net.UDPConn, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, fmt.Errorf("transport: endpoint closed")
	}
	if c, ok := e.socks[srcPort]; ok {
		return c, nil
	}
	conn, err := listenUDPReuse(e.local, int(srcPort))
	if err != nil {
		return nil, err
	}
	_ = setMulticastInterface(conn, e.local)
	e.socks[srcPort] = conn
	e.readLoop(conn, srcPort, false)
	return conn, nil
}

// Unicast implements Endpoint.
func (e *UDPEndpoint) Unicast(srcPort uint16, dst Addr, payload []byte) error {
	conn, err := e.conn(srcPort)
	if err != nil {
		return err
	}
	_, err = conn.WriteToUDP(payload, &net.UDPAddr{
		IP:   net.IPv4(byte(dst.IP>>24), byte(dst.IP>>16), byte(dst.IP>>8), byte(dst.IP)),
		Port: int(dst.Port),
	})
	return err
}

// Multicast implements Endpoint.
func (e *UDPEndpoint) Multicast(srcPort uint16, group Addr, payload []byte) error {
	return e.Unicast(srcPort, group, payload)
}

// Loopback implements Endpoint: the adapter passes if its interface is up.
func (e *UDPEndpoint) Loopback() bool {
	if e.ifi == nil {
		// Re-resolve: the interface may have come up since creation.
		e.ifi = interfaceFor(e.local)
		if e.ifi == nil {
			return false
		}
	}
	ifi, err := net.InterfaceByIndex(e.ifi.Index)
	if err != nil {
		return false
	}
	return ifi.Flags&net.FlagUp != 0
}

// Close shuts every socket.
func (e *UDPEndpoint) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closed = true
	for _, c := range e.socks {
		c.Close()
	}
	for _, c := range e.msocks {
		c.Close()
	}
	e.socks = map[uint16]*net.UDPConn{}
	e.msocks = map[Addr]*net.UDPConn{}
}
