// Cross-shard delivery for sharded networks.
//
// A sharded Network partitions its adapters into lanes, one per shard of a
// sim.Shards kernel. Within a lookahead window every lane's events run
// only against lane-local state; a transmission whose receiver lives on
// another lane cannot be scheduled directly (the receiver's heap belongs
// to another goroutine), so the sender queues a pooled bundle — payload
// copy, receiver set, link profile, send instant — on a per-(src,dst) lane
// queue. At the window barrier, with every shard parked, the bundles are
// expanded into ordinary deliveries: per-receiver latency and loss come
// from the same stateless hashes the send path would have used, arrivals
// are sorted in (time, source lane, bundle order, receiver order) order,
// and injected into the destination heaps. The fixed sort order makes the
// destination's sequence numbering — and therefore the whole run —
// independent of worker scheduling, and the lookahead guarantees every
// arrival is still in the future. Bundles and expansion scratch recycle,
// so steady-state cross-shard traffic allocates nothing.
package netsim

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/sim"
	"repro/internal/transport"
)

// NewSharded creates a network driven by a sharded kernel. home maps a
// node name to its shard: every adapter of the node lives on that shard's
// lane, and all of the node's simulated work must run there. With a
// one-shard kernel the network degenerates to the exact legacy
// single-threaded path (same RNG usage, no bundles, no barriers).
func NewSharded(sh *sim.Shards, resolver SegmentResolver, home func(node string) int) *Network {
	n := New(sh.Shard(0), resolver)
	n.sh = sh
	n.home = home
	if sh.N() == 1 {
		return n
	}
	n.sharded = true
	n.lanes = n.lanes[:0]
	for i := 0; i < sh.N(); i++ {
		n.lanes = append(n.lanes, &lane{
			net:   n,
			id:    i,
			sched: sh.Shard(i),
			out:   make([]bundleQueue, sh.N()),
			mcb:   make([]*bundle, sh.N()),
		})
	}
	sh.OnBarrier(n.flushCross)
	return n
}

// Sharded reports whether the network runs on a multi-shard kernel.
func (n *Network) Sharded() bool { return n.sharded }

// Lane returns the adapter's home shard index.
func (a *Adapter) Lane() int { return a.ln.id }

// bundle is one pooled cross-shard transmission in flight between a lane
// pair: the sender's payload (private reused copy), the receivers on the
// destination lane, and everything needed to resolve per-receiver latency
// and loss at the barrier.
type bundle struct {
	src     transport.Addr
	to      transport.Addr
	at      time.Duration // send instant on the source lane
	payload []byte
	recvs   []*Adapter
	profile LinkProfile
	filter  bool
	xbuf    *packetBuf // destination-lane shared buffer, set during flush
}

// bundleQueue is the single-producer queue for one (src, dst) lane pair.
// The source lane appends during its window; the barrier drains and
// recycles. No locking: producer and consumer never run concurrently.
type bundleQueue struct {
	pending []*bundle
	free    []*bundle
}

// getBundle takes a bundle from the pair pool, fills its header and
// payload copy, and appends it to the pending queue (queue position is the
// bundle's merge sequence number).
func (ln *lane) getBundle(dst int, src, to transport.Addr, payload []byte, p LinkProfile, filter bool) *bundle {
	q := &ln.out[dst]
	var b *bundle
	if k := len(q.free); k > 0 {
		b = q.free[k-1]
		q.free[k-1] = nil
		q.free = q.free[:k-1]
	} else {
		b = &bundle{}
	}
	b.src, b.to, b.at = src, to, ln.sched.Now()
	b.payload = append(b.payload[:0], payload...)
	b.profile, b.filter = p, filter
	q.pending = append(q.pending, b)
	return b
}

// postCross queues a cross-shard unicast for the barrier.
func (ln *lane) postCross(target *Adapter, src, to transport.Addr, payload []byte, p LinkProfile, filter bool) {
	b := ln.getBundle(target.ln.id, src, to, payload, p, filter)
	b.recvs = append(b.recvs, target)
}

// postMulticast adds one remote receiver of the multicast currently being
// sent. Receivers on the same destination lane share one bundle (one
// payload copy per receiving shard); the per-destination scratch holds the
// open bundle until sealMulticast.
func (ln *lane) postMulticast(m *Adapter, src, group transport.Addr, payload []byte, p LinkProfile) {
	dst := m.ln.id
	b := ln.mcb[dst]
	if b == nil {
		b = ln.getBundle(dst, src, group, payload, p, true)
		ln.mcb[dst] = b
	}
	b.recvs = append(b.recvs, m)
}

// sealMulticast closes the per-destination scratch after a multicast.
func (ln *lane) sealMulticast() {
	for i, b := range ln.mcb {
		if b != nil {
			ln.mcb[i] = nil
		}
	}
}

// xdelivery is one expanded cross-shard arrival in the barrier's merge
// scratch, keyed for the deterministic injection order.
type xdelivery struct {
	at  time.Duration
	src int // source lane
	seq int // bundle position in its pair queue
	ri  int // receiver position within the bundle
	dst *Adapter
	b   *bundle
}

// xdelList sorts expanded arrivals by (time, source lane, bundle order,
// receiver order) — the cross-shard delivery order.
type xdelList []xdelivery

func (m *xdelList) Len() int      { return len(*m) }
func (m *xdelList) Swap(i, j int) { (*m)[i], (*m)[j] = (*m)[j], (*m)[i] }
func (m *xdelList) Less(i, j int) bool {
	a, b := (*m)[i], (*m)[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	return a.ri < b.ri
}

// flushCross is the network's barrier hook: expand every pending bundle
// into destination-lane deliveries, in deterministic order, then recycle.
// It runs on the control goroutine with all shards parked.
func (n *Network) flushCross() {
	for dsti := range n.lanes {
		dl := n.lanes[dsti]
		m := n.xdel[:0]
		for srci := range n.lanes {
			q := &n.lanes[srci].out[dsti]
			for bi, b := range q.pending {
				for ri, r := range b.recvs {
					if n.lost(b.profile, b.src.IP, r.ip, b.at) {
						continue
					}
					m = append(m, xdelivery{
						at:  b.at + n.latency(b.profile, b.src.IP, r.ip, b.at),
						src: srci, seq: bi, ri: ri, dst: r, b: b,
					})
				}
			}
		}
		n.xdel = m
		if len(m) > 0 {
			sort.Sort(&n.xdel)
			barrier := dl.sched.Now()
			for i := range n.xdel {
				e := &n.xdel[i]
				if e.at < barrier {
					panic(fmt.Sprintf("netsim: cross-shard arrival at %v precedes barrier %v — link latency shorter than the lookahead", e.at, barrier))
				}
				if e.b.xbuf == nil {
					e.b.xbuf = dl.newBuf(e.b.payload)
				}
				dl.deliverAt(e.dst, e.b.src, e.b.to, e.b.xbuf, e.at, e.b.filter)
			}
			for i := range n.xdel {
				n.xdel[i].dst, n.xdel[i].b = nil, nil
			}
			n.xdel = n.xdel[:0]
		}
		for srci := range n.lanes {
			q := &n.lanes[srci].out[dsti]
			for bi, b := range q.pending {
				b.xbuf = nil
				for ri := range b.recvs {
					b.recvs[ri] = nil
				}
				b.recvs = b.recvs[:0]
				q.free = append(q.free, b)
				q.pending[bi] = nil
			}
			q.pending = q.pending[:0]
		}
	}
}
