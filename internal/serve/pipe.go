package serve

import (
	"time"

	"repro/internal/event"
	"repro/internal/transport"
)

// Pipe is the notification channel between Central's event bus and the
// balancer. The implementations model the two deployment shapes the
// paper allows for view subscribers: co-located with Central (direct)
// and unicast-notified over the network (delayed).
type Pipe interface {
	// Deliver accepts one bus event and eventually invokes fn with it,
	// preserving publication order.
	Deliver(e event.Event, fn func(event.Event))
	// Pending reports how many accepted events have not yet reached fn.
	Pending() int
}

// directPipe hands events to the balancer inline on the bus fan-out —
// the balancer shares Central's view instantly.
type directPipe struct{}

// NewDirectPipe returns the zero-latency notification pipe.
func NewDirectPipe() Pipe { return directPipe{} }

func (directPipe) Deliver(e event.Event, fn func(event.Event)) { fn(e) }
func (directPipe) Pending() int                                { return 0 }

// delayedPipe delivers each event a fixed delay after publication, in
// order — a balancer replica notified over a unicast channel with that
// one-way latency. The delay is the knob E17 sweeps to tie notification
// latency to user-visible error-seconds.
type delayedPipe struct {
	clock   transport.Clock
	delay   time.Duration
	pending int
}

// NewDelayedPipe returns a pipe that delays every notification by delay
// on the given clock. A non-positive delay degenerates to the direct
// pipe.
func NewDelayedPipe(clock transport.Clock, delay time.Duration) Pipe {
	if delay <= 0 {
		return directPipe{}
	}
	return &delayedPipe{clock: clock, delay: delay}
}

func (p *delayedPipe) Deliver(e event.Event, fn func(event.Event)) {
	p.pending++
	// Same delay for every event plus the scheduler's FIFO tie-break
	// keeps delivery in publication order.
	p.clock.AfterFunc(p.delay, func() {
		p.pending--
		fn(e)
	})
}

func (p *delayedPipe) Pending() int { return p.pending }
