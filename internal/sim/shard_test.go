package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// shardNode is one logical process in the synthetic cross-shard workload:
// it ticks on its home shard, sends messages to a ring neighbor (direct
// schedule when the neighbor shares the shard, Post when it does not), and
// folds everything it sees into a running hash.
type shardNode struct {
	id    int
	shard int
	sched *Scheduler
	// ordered folds (time, payload) sensitive to arrival order; summed is
	// commutative, so it is comparable across shard counts even when two
	// messages land at the same instant with different tiebreak orders.
	ordered uint64
	summed  uint64
	recvd   int
}

func (n *shardNode) absorb(at time.Duration, payload uint64) {
	m := Splitmix64(uint64(at) ^ payload)
	n.ordered = n.ordered*0x100000001b3 + m
	n.summed += m
	n.recvd++
}

type shardMsg struct {
	node    *shardNode
	payload uint64
}

func runShardMsg(arg any) {
	m := arg.(*shardMsg)
	m.node.absorb(m.node.sched.Now(), m.payload)
}

// runSyntheticRing drives nodes in a ring over a Shards kernel: every node
// sends rounds messages to its neighbor with a pair-specific delay of at
// least one lookahead. It returns (fired, per-node ordered hash folded in
// node order, per-node commutative sum folded commutatively).
func runSyntheticRing(k int, parallel bool, nodes, rounds int) (uint64, uint64, uint64) {
	const lookahead = time.Millisecond
	sh := NewShards(42, k, lookahead)
	sh.SetParallel(parallel)
	ns := make([]*shardNode, nodes)
	for i := range ns {
		ns[i] = &shardNode{id: i, shard: i % k}
		ns[i].sched = sh.Shard(i % k)
	}
	for i := range ns {
		n := ns[i]
		dst := ns[(i+1)%nodes]
		// Pair-specific extra delay keeps arrival instants from colliding
		// for most pairs; collisions that remain are covered by the
		// commutative sum.
		extra := time.Duration(Splitmix64(uint64(n.id*1000003+dst.id))%1000) * time.Microsecond
		for r := 0; r < rounds; r++ {
			sendAt := time.Duration(r+1)*10*time.Millisecond + time.Duration(n.id)*time.Microsecond
			payload := uint64(n.id)<<32 | uint64(r)
			msg := &shardMsg{node: dst, payload: payload}
			n.sched.AfterFunc(sendAt-n.sched.Now(), func() {
				at := n.sched.Now() + lookahead + extra
				if dst.shard == n.shard {
					dst.sched.AfterCall(at-dst.sched.Now(), runShardMsg, msg)
				} else {
					sh.Post(n.shard, dst.shard, at, runShardMsg, msg)
				}
			})
		}
	}
	sh.Run()
	var ordered, summed uint64
	for _, n := range ns {
		ordered = ordered*0x100000001b3 + n.ordered
		summed ^= Splitmix64(n.summed ^ uint64(n.id) ^ uint64(n.recvd))
	}
	return sh.Fired(), ordered, summed
}

// TestShardsDegenerateMatchesScheduler checks that a one-shard kernel is
// bit-identical to the plain Scheduler: same event order, same clock, same
// RNG stream.
func TestShardsDegenerateMatchesScheduler(t *testing.T) {
	type trace struct {
		h     uint64
		draws []int64
	}
	workload := func(s *Scheduler, run func(time.Duration)) trace {
		var tr trace
		for i := 0; i < 50; i++ {
			i := i
			s.AfterFunc(time.Duration(i)*7*time.Millisecond, func() {
				tr.h = tr.h*31 + uint64(s.Now()) + uint64(i)
				tr.draws = append(tr.draws, s.Rand().Int63())
				if i%3 == 0 {
					s.Schedule(time.Millisecond, func() {
						tr.h = tr.h*31 + uint64(s.Now()) + 7777
					})
				}
			})
		}
		run(400 * time.Millisecond)
		return tr
	}
	plain := NewScheduler(7)
	a := workload(plain, plain.RunUntil)
	sh := NewShards(7, 1, 0)
	b := workload(sh.Shard(0), sh.RunUntil)
	if a.h != b.h {
		t.Fatalf("event order diverged: plain %d sharded %d", a.h, b.h)
	}
	if fmt.Sprint(a.draws) != fmt.Sprint(b.draws) {
		t.Fatalf("rng stream diverged:\nplain   %v\nsharded %v", a.draws, b.draws)
	}
	if plain.Fired() != sh.Fired() || plain.Now() != sh.Now() {
		t.Fatalf("fired/now diverged: plain (%d, %v) sharded (%d, %v)",
			plain.Fired(), plain.Now(), sh.Fired(), sh.Now())
	}
}

// TestShardsCrossShardDeterminism checks the two determinism contracts:
// the same shard count replays exactly (ordered hash, serial vs parallel
// vs repeat), and different shard counts agree on event count and
// per-node message history (commutative hash).
func TestShardsCrossShardDeterminism(t *testing.T) {
	const nodes, rounds = 24, 8
	baseFired, _, baseSummed := runSyntheticRing(1, false, nodes, rounds)
	for _, k := range []int{2, 4, 8} {
		fired, ordered, summed := runSyntheticRing(k, false, nodes, rounds)
		if fired != baseFired || summed != baseSummed {
			t.Fatalf("k=%d diverged from k=1: fired %d vs %d, summed %x vs %x",
				k, fired, baseFired, summed, baseSummed)
		}
		firedP, orderedP, summedP := runSyntheticRing(k, true, nodes, rounds)
		if firedP != fired || orderedP != ordered || summedP != summed {
			t.Fatalf("k=%d parallel diverged from serial: fired %d vs %d, ordered %x vs %x",
				k, firedP, fired, orderedP, ordered)
		}
		fired2, ordered2, _ := runSyntheticRing(k, true, nodes, rounds)
		if fired2 != fired || ordered2 != ordered {
			t.Fatalf("k=%d replay diverged: fired %d vs %d, ordered %x vs %x",
				k, fired2, fired, ordered2, ordered)
		}
	}
}

// TestShardSeedStreams checks the per-shard RNG derivation: shard 0 keeps
// the root seed, no two shards share a stream, and a shard's stream is a
// function of (root seed, shard id) alone — not of the shard count or of
// how a single-threaded run would have interleaved draws.
func TestShardSeedStreams(t *testing.T) {
	const root = int64(99)
	if ShardSeed(root, 0) != root {
		t.Fatalf("shard 0 must keep the root seed, got %d", ShardSeed(root, 0))
	}
	draw := func(seed int64, n int) []int64 {
		r := rand.New(rand.NewSource(seed))
		out := make([]int64, n)
		for i := range out {
			out[i] = r.Int63()
		}
		return out
	}
	streams := make([]string, 9)
	for i := range streams {
		streams[i] = fmt.Sprint(draw(ShardSeed(root, i), 64))
	}
	for i := range streams {
		for j := i + 1; j < len(streams); j++ {
			if streams[i] == streams[j] {
				t.Fatalf("shards %d and %d share an RNG stream", i, j)
			}
		}
	}
	// Shard 1's draws must not be a windowed continuation of the root
	// stream (i.e. independent of single-shard draw ordering).
	rootLong := draw(root, 1024)
	s1 := draw(ShardSeed(root, 1), 8)
	for off := 0; off+8 <= len(rootLong); off++ {
		if fmt.Sprint(rootLong[off:off+8]) == fmt.Sprint(s1) {
			t.Fatalf("shard 1 stream is root stream at offset %d", off)
		}
	}
	// The same shard id draws the same stream under any shard count.
	a := NewShards(root, 2, time.Millisecond)
	b := NewShards(root, 8, time.Millisecond)
	for i := 0; i < 32; i++ {
		if x, y := a.Shard(1).Rand().Int63(), b.Shard(1).Rand().Int63(); x != y {
			t.Fatalf("shard 1 stream depends on shard count: %d vs %d at draw %d", x, y, i)
		}
	}
}

// TestShardsPostLookaheadPanics checks the conservative-lookahead guard: a
// cross-shard post inside the current window must panic, not reorder.
func TestShardsPostLookaheadPanics(t *testing.T) {
	sh := NewShards(1, 2, time.Millisecond)
	sh.SetParallel(false)
	sh.Shard(0).AfterFunc(10*time.Millisecond, func() {
		// The window containing this event ends at or before now+lookahead;
		// posting for "now" is inside it.
		sh.Post(0, 1, sh.Shard(0).Now(), func(any) {}, nil)
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected lookahead-violation panic")
		}
	}()
	sh.RunFor(time.Second)
}

// TestShardsBoundaryDrain checks RunUntil's inclusive semantics: events at
// exactly the deadline run, including same-instant chains they schedule —
// matching Scheduler.RunUntil so callers can poll between calls.
func TestShardsBoundaryDrain(t *testing.T) {
	sh := NewShards(3, 2, time.Millisecond)
	sh.SetParallel(false)
	var got []string
	sh.Shard(1).AfterFunc(10*time.Millisecond, func() {
		got = append(got, "boundary")
		sh.Shard(1).Schedule(0, func() { got = append(got, "chain") })
	})
	sh.RunUntil(10 * time.Millisecond)
	if fmt.Sprint(got) != "[boundary chain]" {
		t.Fatalf("boundary drain ran %v", got)
	}
	if sh.Now() != 10*time.Millisecond {
		t.Fatalf("clock at %v, want 10ms", sh.Now())
	}
	if sh.Fired() != 2 {
		t.Fatalf("fired %d, want 2", sh.Fired())
	}
}

// TestShardsBarrierHook checks that barrier hooks run quiesced between
// windows and may post cross-shard work for future instants.
func TestShardsBarrierHook(t *testing.T) {
	sh := NewShards(5, 2, time.Millisecond)
	sh.SetParallel(false)
	fired := 0
	posted := false
	sh.OnBarrier(func() {
		if sh.Running() {
			t.Fatal("hook ran while a window was executing")
		}
		if !posted {
			posted = true
			sh.Post(0, 1, 20*time.Millisecond, func(any) { fired++ }, nil)
		}
	})
	sh.Shard(0).Schedule(time.Millisecond, func() {}) // something to run
	sh.RunUntil(30 * time.Millisecond)
	if !posted || fired != 1 {
		t.Fatalf("hook post did not run: posted=%v fired=%d", posted, fired)
	}
}

// TestShardsIdleGapJump checks that RunUntil skips over long idle spans
// instead of spinning empty windows (and still runs the far event).
func TestShardsIdleGapJump(t *testing.T) {
	sh := NewShards(6, 4, time.Microsecond)
	sh.SetParallel(false)
	ran := false
	sh.Shard(3).AfterFunc(5*time.Second, func() { ran = true })
	sh.RunUntil(10 * time.Second)
	if !ran {
		t.Fatal("far event did not run")
	}
	if sh.Now() != 10*time.Second {
		t.Fatalf("clock at %v", sh.Now())
	}
}
