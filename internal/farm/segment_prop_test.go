package farm

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/transport"
)

// Property: netsim's incrementally maintained segment-membership cache
// must always agree with resolving every adapter from scratch against
// the switch fabric — no matter how VLANs are rewritten under it. The
// cache is spliced per-adapter on fabric notifications (and bulk-rebuilt
// on switch flips); a missed or double notification would desynchronize
// it silently, misrouting every broadcast on the affected segment. This
// test drives random partitions, heals, switch outages, domain moves,
// and node kills, and checks the agreement after every step.
func TestSegmentCacheMatchesResolverUnderChaos(t *testing.T) {
	for _, seed := range []int64{11, 23, 47} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			segmentCacheRun(t, seed)
		})
	}
}

func segmentCacheRun(t *testing.T, seed int64) {
	f, err := Build(chaosSpec(seed))
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	if _, ok := f.RunUntilStable(2 * time.Minute); !ok {
		t.Fatal("initial stabilization failed")
	}

	// Every simulated adapter, not just protocol ones: management-plane
	// endpoints live in the same cache.
	var adapters []transport.IP
	for _, a := range f.Net.Adapters() {
		adapters = append(adapters, a.LocalIP())
	}

	// Every segment name ever observed stays under scrutiny: a stale
	// cache bucket for a now-empty segment is exactly the kind of
	// desynchronization this hunts.
	seen := map[string]bool{}
	checkAgreement := func(step string) {
		expect := map[string][]transport.IP{}
		for _, ip := range adapters {
			if name, ok := f.Fabric.SegmentOf(ip); ok {
				expect[name] = append(expect[name], ip) // adapters is ascending
				seen[name] = true
			}
		}
		for name := range seen {
			got := f.Net.SegmentMembers(name)
			want := expect[name]
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("after %s: segment %s cache/resolver split:\n cache:    %v\n resolver: %v",
					step, name, got, want)
			}
		}
	}
	checkAgreement("stabilization")

	topo := f.CheckTopology()
	rng := rand.New(rand.NewSource(seed))
	downSwitch := ""
	for i := 0; i < 40; i++ {
		var step string
		switch c := rng.Intn(6); c {
		case 0: // partition a random segment, or heal it
			segs := topo.Segments
			if len(segs) == 0 {
				continue
			}
			seg := segs[rng.Intn(len(segs))]
			if rng.Intn(2) == 0 {
				f.SetSegmentLoss(seg, 1)
				step = "partition " + seg
			} else {
				f.SetSegmentLoss(seg, -1)
				step = "heal " + seg
			}
		case 1: // switch outage / restore
			if downSwitch == "" {
				sw := topo.Switches[rng.Intn(len(topo.Switches))]
				if err := f.KillSwitch(sw); err == nil {
					downSwitch = sw
					step = "switch-off " + sw
				}
			} else {
				_ = f.RestoreSwitch(downSwitch)
				step = "switch-on " + downSwitch
				downSwitch = ""
			}
		case 2: // domain move (rewrites the node's data VLANs)
			n := topo.Nodes[rng.Intn(len(topo.Nodes))]
			if n.Role != "frontend" && n.Role != "backend" {
				continue
			}
			var others []string
			for _, d := range topo.Domains {
				if d != n.Domain {
					others = append(others, d)
				}
			}
			to := others[rng.Intn(len(others))]
			_ = f.MoveNodeToDomain(n.Name, to, nil)
			step = "move " + n.Name + " to " + to
		case 3: // node kill/restart churn
			n := topo.Nodes[rng.Intn(len(topo.Nodes))]
			if n.Role == "admin" {
				continue
			}
			if rng.Intn(2) == 0 {
				_ = f.KillNode(n.Name)
				step = "kill " + n.Name
			} else {
				_ = f.RestartNode(n.Name)
				step = "restart " + n.Name
			}
		default: // let in-flight moves and heals progress
			step = "run"
		}
		if step == "" {
			continue
		}
		f.RunFor(time.Duration(1+rng.Intn(5)) * time.Second)
		checkAgreement(fmt.Sprintf("step %d (%s)", i, step))
	}

	if downSwitch != "" {
		_ = f.RestoreSwitch(downSwitch)
	}
	f.RunFor(time.Minute)
	checkAgreement("final settle")
}
