package exp

import "testing"

// TestPhasesSmall runs E13 on a small farm and checks the phase order the
// protocol guarantees: discovery <= formation, and reporting <= stable.
func TestPhasesSmall(t *testing.T) {
	r, err := PhasesTrial(PhasesOptions{AdminNodes: 2, UniformNodes: 4}, 131)
	if err != nil {
		t.Fatal(err)
	}
	if r.Discovery <= 0 || r.Formation < r.Discovery {
		t.Errorf("phase order: discovery %v, formation %v", r.Discovery, r.Formation)
	}
	if r.Reporting <= 0 || r.Stable < r.Reporting {
		t.Errorf("phase order: reporting %v, stable %v", r.Reporting, r.Stable)
	}
	if r.Txns == 0 || r.Records == 0 {
		t.Errorf("no trace data: %d txns, %d records", r.Txns, r.Records)
	}
}
