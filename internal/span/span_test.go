package span

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/transport"
)

// fakeTopo maps node names to adapters for stitcher tests.
type fakeTopo map[string][]transport.IP

func (t fakeTopo) AdaptersOf(node string) []transport.IP { return t[node] }

func ip(s string) transport.IP {
	v, ok := transport.ParseIP(s)
	if !ok {
		panic("bad ip " + s)
	}
	return v
}

// failureRecords builds a synthetic but shape-accurate record stream
// for one node-failure incident: fault → suspicion → probe → verdict →
// 2PC → view → report → notify → reroute → clean.
func failureRecords() []trace.Record {
	suspect := ip("10.0.0.5")
	leader := ip("10.0.0.1")
	sec := func(n int) time.Duration { return time.Duration(n) * time.Second }
	return []trace.Record{
		{Seq: 1, T: sec(10), Kind: trace.KFaultInjected, Node: "web-3", Detail: "kill"},
		{Seq: 2, T: sec(12), Kind: trace.KSuspicionRaised, Node: "web-1", Self: leader, Peer: suspect, Detail: "silent"},
		{Seq: 3, T: sec(12), Kind: trace.KProbeSent, Node: "web-1", Self: leader, Peer: suspect, Token: 77},
		{Seq: 4, T: sec(13), Kind: trace.KVerdictDead, Node: "web-1", Self: leader, Peer: suspect, Token: 77},
		{Seq: 5, T: sec(13), Kind: trace.KPrepareSent, Node: "web-1", Self: leader, Group: leader, Version: 4, Token: 9, Count: 2},
		{Seq: 6, T: sec(14), Kind: trace.KCommitSent, Node: "web-1", Self: leader, Group: leader, Version: 4, Token: 9, Count: 2},
		{Seq: 7, T: sec(14), Kind: trace.KViewCommit, Node: "web-1", Self: leader, Group: leader, Version: 4, Count: 2},
		{Seq: 8, T: sec(15), Kind: trace.KReportApplied, Node: "ctl-0", Peer: leader, Group: leader, Version: 4, Token: 3, Detail: "delta"},
		{Seq: 9, T: sec(15), Kind: trace.KNotifySent, Node: "ctl-0", Token: 1, Detail: "node-failed web-3"},
		{Seq: 10, T: sec(16), Kind: trace.KServeBackendDown, Node: "web-3", Token: 1, Detail: "acme failure reported"},
		{Seq: 11, T: sec(17), Kind: trace.KServeClean, Count: 40, Detail: "acme"},
		{Seq: 12, T: sec(30), Kind: trace.KNotifySent, Node: "ctl-0", Token: 1, Detail: "node-recovered web-3"},
		{Seq: 13, T: sec(30), Kind: trace.KIncidentClosed, Node: "ctl-0", Token: 1, Detail: "web-3"},
	}
}

func TestStitchFailureChain(t *testing.T) {
	topo := fakeTopo{"web-3": {ip("10.0.0.5"), ip("10.0.0.6")}}
	spans := Stitch(failureRecords(), topo)
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Kind != KindFailure || sp.Subject != "web-3" || sp.Incident != 1 {
		t.Fatalf("bad span identity: %+v", sp)
	}
	if !sp.Closed || sp.ClosedAt != 30*time.Second {
		t.Fatalf("span not closed correctly: closed=%v at %v", sp.Closed, sp.ClosedAt)
	}
	if !sp.Complete() {
		t.Fatalf("span incomplete, missing %v", sp.Missing)
	}
	var got []Stage
	for _, m := range sp.Milestones {
		got = append(got, m.Stage)
	}
	want := []Stage{StFault, StSuspicion, StProbe, StVerdict, StPrepare,
		StCommit, StView, StReport, StNotify, StReroute, StClean}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("milestones %v, want %v", got, want)
	}
	if sp.Domain != "acme" {
		t.Fatalf("domain %q, want acme", sp.Domain)
	}
	if sp.Total() != 7*time.Second {
		t.Fatalf("total %v, want 7s", sp.Total())
	}
	var sum time.Duration
	for _, sd := range sp.StageDurations() {
		sum += sd.D
	}
	if sum != sp.Total() {
		t.Fatalf("stage durations sum %v != total %v", sum, sp.Total())
	}
}

func TestAuditCatchesUnclosedIncident(t *testing.T) {
	recs := failureRecords()
	// Drop the close: the incident never resolves.
	recs = recs[:len(recs)-2]
	topo := fakeTopo{"web-3": {ip("10.0.0.5")}}
	findings := Audit(recs, topo)
	if len(findings) != 1 || !strings.Contains(findings[0], "never closed") {
		t.Fatalf("findings = %v, want one never-closed finding", findings)
	}
	// A Central failover after the open exempts the orphan.
	recs = append(recs, trace.Record{
		Seq: 20, T: 40 * time.Second, Kind: trace.KCentralActivated, Node: "ctl-1",
	})
	if findings := Audit(recs, topo); len(findings) != 0 {
		t.Fatalf("failover should exempt the orphan, got %v", findings)
	}
}

func TestStitchMoveChain(t *testing.T) {
	sec := func(n int) time.Duration { return time.Duration(n) * time.Second }
	recs := []trace.Record{
		{Seq: 1, T: sec(5), Kind: trace.KNotifySent, Node: "ctl-0", Token: 2, Detail: "move-started web-7"},
		{Seq: 2, T: sec(5), Kind: trace.KServeBackendDown, Node: "web-7", Token: 2, Detail: "globex draining for planned move"},
		{Seq: 3, T: sec(9), Kind: trace.KViewCommit, Node: "web-7", Self: ip("10.0.1.2"), Group: ip("10.0.1.2"), Version: 1, Count: 3},
		{Seq: 4, T: sec(10), Kind: trace.KReportApplied, Node: "ctl-0", Group: ip("10.0.1.2"), Version: 1, Token: 8},
		{Seq: 5, T: sec(11), Kind: trace.KNotifySent, Node: "ctl-0", Token: 2, Detail: "node-moved web-7"},
		{Seq: 6, T: sec(11), Kind: trace.KIncidentClosed, Node: "ctl-0", Token: 2, Detail: "web-7"},
		{Seq: 7, T: sec(11), Kind: trace.KServeBackendUp, Node: "web-7", Token: 2, Detail: "acme"},
	}
	spans := Stitch(recs, nil)
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Kind != KindPlannedMove || !sp.Closed || !sp.Complete() {
		t.Fatalf("bad move span: %v missing=%v", sp, sp.Missing)
	}
	var got []Stage
	for _, m := range sp.Milestones {
		got = append(got, m.Stage)
	}
	want := []Stage{StNotify, StReroute, StView, StReport, StMoveDone, StRestore}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("milestones %v, want %v", got, want)
	}
	if findings := Audit(recs, nil); len(findings) != 0 {
		t.Fatalf("audit findings on a clean move: %v", findings)
	}
}

func TestStitchLeaderChange(t *testing.T) {
	sec := func(n int) time.Duration { return time.Duration(n) * time.Second }
	succ := ip("10.0.2.9")
	recs := []trace.Record{
		{Seq: 1, T: sec(3), Kind: trace.KLeaderTakeover, Node: "web-2", Self: succ, Group: ip("10.0.2.1"), Version: 6},
		{Seq: 2, T: sec(3), Kind: trace.KPrepareSent, Node: "web-2", Self: succ, Group: succ, Version: 7, Token: 4},
		{Seq: 3, T: sec(4), Kind: trace.KCommitSent, Node: "web-2", Self: succ, Group: succ, Version: 7, Token: 4},
		{Seq: 4, T: sec(4), Kind: trace.KViewCommit, Node: "web-2", Self: succ, Group: succ, Version: 7, Count: 2},
		{Seq: 5, T: sec(5), Kind: trace.KReportApplied, Node: "ctl-0", Group: succ, Version: 7, Token: 2},
	}
	spans := Stitch(recs, nil)
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Kind != KindLeaderChange || sp.Incident != 0 || !sp.Complete() || !sp.Closed {
		t.Fatalf("bad leader-change span: %v missing=%v", sp, sp.Missing)
	}
	if sp.Total() != 2*time.Second {
		t.Fatalf("total %v, want 2s", sp.Total())
	}
}

func TestCollectorMergeDeterministic(t *testing.T) {
	mk := func() *Collector {
		c := NewCollector(nil)
		c.Add("a", []trace.Record{
			{Seq: 1, T: 2 * time.Second, Kind: trace.KOrphaned, Node: "n1"},
			{Seq: 2, T: 1 * time.Second, Kind: trace.KBeaconSent, Node: "n1"}, // filtered
			{Seq: 3, T: 3 * time.Second, Kind: trace.KViewCommit, Node: "n1"},
		})
		c.Add("b", []trace.Record{
			{Seq: 1, T: 2 * time.Second, Kind: trace.KFormed, Node: "n2"},
		})
		return c
	}
	r1, r2 := mk().Records(), mk().Records()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("merge not deterministic")
	}
	if len(r1) != 3 {
		t.Fatalf("got %d records, want 3 (beacon filtered)", len(r1))
	}
	// Same T: source order (a before b) breaks the tie.
	if r1[0].Node != "n1" || r1[1].Node != "n2" {
		t.Fatalf("tie-break wrong: %v", r1)
	}
	if r1[2].Kind != trace.KViewCommit {
		t.Fatalf("order wrong: %v", r1)
	}
}

func TestCollectorAttach(t *testing.T) {
	rec := trace.New(16)
	c := NewCollector(nil)
	c.Attach("farm", rec)
	rec.Record(trace.Record{T: time.Second, Kind: trace.KBeaconSent})
	rec.Record(trace.Record{T: 2 * time.Second, Kind: trace.KOrphaned, Node: "n1"})
	got := c.Records()
	if len(got) != 1 || got[0].Kind != trace.KOrphaned {
		t.Fatalf("collector saw %v, want just the orphan record", got)
	}
}

func TestObserveFeedsHistograms(t *testing.T) {
	topo := fakeTopo{"web-3": {ip("10.0.0.5"), ip("10.0.0.6")}}
	spans := Stitch(failureRecords(), topo)
	reg := metrics.NewRegistry()
	Observe(reg, spans)
	var sb strings.Builder
	reg.WriteProm(&sb)
	text := sb.String()
	for _, name := range []string{
		"span_stage_suspicion", "span_stage_2pc_prepare", "span_stage_notify",
		"span_stage_first_clean", "span_total",
	} {
		if !strings.Contains(text, name) {
			t.Fatalf("prometheus text missing %s:\n%s", name, text)
		}
	}
}

func TestStageNamesExhaustive(t *testing.T) {
	seen := map[string]bool{}
	for s := Stage(1); s < stageMax; s++ {
		name := s.String()
		if strings.HasPrefix(name, "Stage(") {
			t.Fatalf("stage %d has no name", s)
		}
		if seen[name] {
			t.Fatalf("duplicate stage name %q", name)
		}
		seen[name] = true
	}
}
