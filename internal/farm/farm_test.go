package farm

import (
	"testing"
	"time"

	"repro/internal/central"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/netsim"
)

// fastSpec builds a small farm with quick protocol timers.
func fastSpec(seed int64) Spec {
	cfg := core.DefaultConfig()
	cfg.BeaconPhase = 2 * time.Second
	cfg.BeaconInterval = 500 * time.Millisecond
	cfg.LeaderBeaconInterval = 1 * time.Second
	cfg.StableWait = 1 * time.Second
	cfg.DeferTimeout = 3 * time.Second
	cfg.DetectorParams.Interval = 500 * time.Millisecond
	cfg.OrphanTimeout = 6 * time.Second
	cfg.ConsensusWindow = 1 * time.Second

	cc := central.DefaultConfig()
	cc.StabilizeWait = 3 * time.Second

	return Spec{
		Seed:         seed,
		Core:         cfg,
		Central:      cc,
		StartSkew:    1 * time.Second,
		RecordEvents: true,
	}
}

func TestUniformFarmStabilizes(t *testing.T) {
	spec := fastSpec(1)
	spec.UniformNodes = 8
	spec.UniformAdapters = 3
	spec.AdminNodes = 2
	f, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	at, ok := f.RunUntilStable(60 * time.Second)
	if !ok {
		t.Fatal("farm never stabilized")
	}
	if at <= 0 || at > 30*time.Second {
		t.Fatalf("stabilized at %v", at)
	}
	c := f.ActiveCentral()
	// 3 segments: admin, vlan-11, vlan-12.
	if got := c.GroupCount(); got != 3 {
		t.Fatalf("central tracks %d groups, want 3: %v", got, c.Groups())
	}
	total := 0
	for _, members := range c.Groups() {
		total += len(members)
	}
	// 8 uniform x 3 + 2 admin x 1 = 26 adapters.
	if total != 26 {
		t.Fatalf("central sees %d adapters, want 26", total)
	}
}

func TestDomainFarmTopology(t *testing.T) {
	spec := fastSpec(2)
	spec.AdminNodes = 2
	spec.Domains = []DomainSpec{
		{Name: "acme", FrontEnds: 2, BackEnds: 3},
		{Name: "globex", FrontEnds: 2, BackEnds: 2},
	}
	f, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	if _, ok := f.RunUntilStable(90 * time.Second); !ok {
		t.Fatal("farm never stabilized")
	}
	c := f.ActiveCentral()
	// Segments: admin + 2 per domain = 5.
	if got := c.GroupCount(); got != 5 {
		t.Fatalf("central tracks %d groups, want 5: %v", got, c.Groups())
	}
	// Verification against the database must be clean.
	if ms := c.Verify(); len(ms) != 0 {
		t.Fatalf("clean farm verification found: %v", ms)
	}
	// Domain isolation: front-end VLANs of different domains are separate
	// segments.
	fe0 := f.Nodes["acme-fe-00"].Adapters[1]
	fe1 := f.Nodes["globex-fe-00"].Adapters[1]
	s0, _ := f.SegmentOf(fe0)
	s1, _ := f.SegmentOf(fe1)
	if s0 == s1 {
		t.Fatal("domains share a front-end segment")
	}
}

func TestNodeFailureCorrelation(t *testing.T) {
	spec := fastSpec(3)
	spec.AdminNodes = 2
	spec.Domains = []DomainSpec{{Name: "acme", FrontEnds: 3, BackEnds: 3}}
	f, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	if _, ok := f.RunUntilStable(60 * time.Second); !ok {
		t.Fatal("farm never stabilized")
	}
	victim := "acme-fe-01"
	if err := f.KillNode(victim); err != nil {
		t.Fatal(err)
	}
	f.RunFor(40 * time.Second)

	c := f.ActiveCentral()
	if c.NodeAlive(victim) {
		t.Fatal("central did not infer node failure")
	}
	nodeFails := f.Bus.Filter(event.NodeFailed)
	found := false
	for _, e := range nodeFails {
		if e.Node == victim {
			found = true
		}
	}
	if !found {
		t.Fatalf("no NodeFailed event for %s (events: %v)", victim, nodeFails)
	}
	// All three of the victim's adapters must be marked dead.
	for _, ip := range f.Nodes[victim].Adapters {
		alive, known := c.AdapterAlive(ip)
		if !known || alive {
			t.Fatalf("adapter %v alive=%v known=%v", ip, alive, known)
		}
	}
	// Recovery.
	if err := f.RestartNode(victim); err != nil {
		t.Fatal(err)
	}
	f.RunFor(40 * time.Second)
	if !c.NodeAlive(victim) {
		t.Fatal("central did not see node recovery")
	}
	if f.Bus.Count(event.NodeRecovered) == 0 {
		t.Fatal("no NodeRecovered event")
	}
}

func TestSwitchFailureCorrelation(t *testing.T) {
	spec := fastSpec(4)
	spec.AdminNodes = 2
	spec.UniformNodes = 8
	spec.UniformAdapters = 2
	spec.NodesPerSwitch = 5 // forces 2 switches
	f, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	if _, ok := f.RunUntilStable(60 * time.Second); !ok {
		t.Fatal("farm never stabilized")
	}
	// Kill the switch that does NOT host the active central's node.
	c := f.ActiveCentral()
	centralSwitch := ""
	for _, name := range f.order {
		if f.Daemons[name].HostingCentral() {
			centralSwitch = f.Nodes[name].Switch
		}
	}
	victim := "sw-00"
	if centralSwitch == "sw-00" {
		victim = "sw-01"
	}
	if err := f.KillSwitch(victim); err != nil {
		t.Fatal(err)
	}
	f.RunFor(60 * time.Second)
	fails := f.Bus.Filter(event.SwitchFailed)
	found := false
	for _, e := range fails {
		if e.Node == victim {
			found = true
		}
	}
	if !found {
		t.Fatalf("no SwitchFailed event for %s (got %v)", victim, fails)
	}
	// Restore.
	if err := f.RestoreSwitch(victim); err != nil {
		t.Fatal(err)
	}
	f.RunFor(60 * time.Second)
	if f.Bus.Count(event.SwitchRecovered) == 0 {
		t.Fatal("no SwitchRecovered event")
	}
	_ = c
}

func TestDomainMoveEndToEnd(t *testing.T) {
	spec := fastSpec(5)
	spec.AdminNodes = 2
	spec.Domains = []DomainSpec{
		{Name: "acme", FrontEnds: 2, BackEnds: 3},
		{Name: "globex", FrontEnds: 2, BackEnds: 3},
	}
	f, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	if _, ok := f.RunUntilStable(90 * time.Second); !ok {
		t.Fatal("farm never stabilized")
	}

	mover := "acme-be-02"
	var moveErr error
	moved := false
	if err := f.MoveNodeToDomain(mover, "globex", func(err error) { moveErr, moved = err, true }); err != nil {
		t.Fatal(err)
	}
	f.RunFor(90 * time.Second)
	if !moved || moveErr != nil {
		t.Fatalf("move done=%v err=%v", moved, moveErr)
	}
	// The back-end adapter must now sit in globex's back VLAN segment.
	be := f.Nodes[mover].Adapters[1]
	seg, ok := f.SegmentOf(be)
	if !ok || seg != "vlan-103" {
		t.Fatalf("moved adapter segment = %q", seg)
	}
	// Central must have inferred an (expected) move...
	moves := f.Bus.Filter(event.NodeMoved)
	foundExpected := false
	for _, e := range moves {
		if e.Adapter == be && !e.Suppressed {
			foundExpected = true
			if e.Detail != "expected (central-initiated)" {
				t.Fatalf("move detail = %q", e.Detail)
			}
		}
	}
	if !foundExpected {
		t.Fatalf("no NodeMoved event for %v (moves: %v)", be, moves)
	}
	// ...and the departure's failure notification must be suppressed.
	suppressed := false
	for _, e := range f.Bus.Filter(event.AdapterFailed) {
		if e.Adapter == be && e.Suppressed {
			suppressed = true
		}
		if e.Adapter == be && !e.Suppressed {
			t.Fatal("move produced an unsuppressed failure notification")
		}
	}
	if !suppressed {
		t.Fatal("no suppressed failure for the moved adapter")
	}
	// The database now expects the new VLAN, so verification stays clean.
	if ms := f.ActiveCentral().Verify(); len(ms) != 0 {
		t.Fatalf("post-move verification found: %v", ms)
	}
}

func TestUnexpectedMoveFlagged(t *testing.T) {
	spec := fastSpec(6)
	spec.AdminNodes = 2
	spec.Domains = []DomainSpec{
		{Name: "acme", FrontEnds: 2, BackEnds: 2},
		{Name: "globex", FrontEnds: 2, BackEnds: 2},
	}
	f, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	if _, ok := f.RunUntilStable(90 * time.Second); !ok {
		t.Fatal("farm never stabilized")
	}
	// Rogue VLAN rewrite directly on the switch (not via Central).
	be := f.Nodes["acme-be-01"].Adapters[1]
	sw, port, _ := f.Fabric.Locate(be)
	if err := sw.SetPortVLAN(port, 103); err != nil {
		t.Fatal(err)
	}
	f.RunFor(90 * time.Second)
	foundUnexpected := false
	for _, e := range f.Bus.Filter(event.NodeMoved) {
		if e.Adapter == be && e.Detail == "UNEXPECTED" {
			foundUnexpected = true
		}
	}
	if !foundUnexpected {
		t.Fatalf("unexpected move not inferred (moves: %v)", f.Bus.Filter(event.NodeMoved))
	}
	// And the failure notification must NOT have been suppressed.
	unsuppressed := false
	for _, e := range f.Bus.Filter(event.AdapterFailed) {
		if e.Adapter == be && !e.Suppressed {
			unsuppressed = true
		}
	}
	if !unsuppressed {
		t.Fatal("rogue move's failure notification was wrongly suppressed")
	}
	// Verification should flag the wrong segment too.
	if ms := f.ActiveCentral().Verify(); len(ms) == 0 {
		t.Fatal("verification found nothing after rogue move")
	}
}

func TestCentralFailoverRebuildsView(t *testing.T) {
	spec := fastSpec(7)
	spec.AdminNodes = 3
	spec.UniformNodes = 5
	spec.UniformAdapters = 2
	f, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	if _, ok := f.RunUntilStable(60 * time.Second); !ok {
		t.Fatal("farm never stabilized")
	}
	var hostName string
	for _, name := range f.order {
		if f.Daemons[name].HostingCentral() {
			hostName = name
		}
	}
	if hostName == "" {
		t.Fatal("nobody hosts central")
	}
	before := f.ActiveCentral()
	groupsBefore := len(before.Groups())

	if err := f.KillNode(hostName); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.RunUntilStable(120 * time.Second); !ok {
		t.Fatal("no stability after central failover")
	}
	after := f.ActiveCentral()
	if after == nil || after == before {
		t.Fatal("central did not move")
	}
	if f.Bus.Count(event.CentralElected) < 2 {
		t.Fatal("no second CentralElected event")
	}
	if got := len(after.Groups()); got != groupsBefore {
		t.Fatalf("rebuilt view has %d groups, want %d", got, groupsBefore)
	}
}

func TestVerifyDetectsSeededMismatch(t *testing.T) {
	spec := fastSpec(8)
	spec.AdminNodes = 2
	spec.UniformNodes = 4
	spec.UniformAdapters = 2
	f, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the database: one adapter's expected VLAN is wrong.
	victim := f.Nodes["node-002"].Adapters[1]
	if err := f.DB.SetExpectedVLAN(victim, 999); err != nil {
		t.Fatal(err)
	}
	f.Start()
	if _, ok := f.RunUntilStable(60 * time.Second); !ok {
		t.Fatal("farm never stabilized")
	}
	ms := f.ActiveCentral().Verify()
	if len(ms) == 0 {
		t.Fatal("seeded mismatch not found")
	}
	hit := false
	for _, m := range ms {
		if m.Adapter == victim {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("findings %v miss victim %v", ms, victim)
	}
	if f.Bus.Count(event.VerifyMismatch) == 0 {
		t.Fatal("no VerifyMismatch events published")
	}
}

func TestDisableConflictsActuallyDisables(t *testing.T) {
	spec := fastSpec(9)
	spec.AdminNodes = 2
	spec.UniformNodes = 4
	spec.UniformAdapters = 3 // vlan-11 and vlan-12 both populated
	spec.Central.DisableConflicts = true
	f, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	if _, ok := f.RunUntilStable(60 * time.Second); !ok {
		t.Fatal("farm never stabilized")
	}
	// Rogue-move an adapter so verification sees WrongSegment.
	victim := f.Nodes["node-001"].Adapters[1]
	sw, port, _ := f.Fabric.Locate(victim)
	if err := sw.SetPortVLAN(port, 12); err != nil {
		t.Fatal(err)
	}
	f.RunFor(60 * time.Second)
	f.ActiveCentral().Verify()
	f.RunFor(30 * time.Second)
	if f.Bus.Count(event.AdapterDisabled) == 0 {
		t.Fatal("conflicting adapter was not disabled")
	}
	// The daemon must have silenced the adapter.
	if _, live := f.Daemons["node-001"].View(victim); live {
		t.Fatal("disabled adapter still in a group")
	}
}

func TestFailRecvAdapterDetectedWithoutFalseBlame(t *testing.T) {
	spec := fastSpec(10)
	spec.AdminNodes = 6
	f, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	if _, ok := f.RunUntilStable(60 * time.Second); !ok {
		t.Fatal("farm never stabilized")
	}
	victim := f.Nodes["mgmt-03"].Adapters[0]
	if err := f.FailAdapter(victim, netsim.FailRecv); err != nil {
		t.Fatal(err)
	}
	f.RunFor(60 * time.Second)
	// Exactly the broken adapter must be reported failed; the loopback
	// test prevents it blaming its healthy neighbor (paper §3 flaw #1).
	for _, e := range f.Bus.Filter(event.AdapterFailed) {
		if e.Adapter != victim {
			t.Fatalf("healthy adapter %v reported failed", e.Adapter)
		}
	}
	alive, known := f.ActiveCentral().AdapterAlive(victim)
	if !known || alive {
		t.Fatalf("receive-dead adapter alive=%v known=%v", alive, known)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(Spec{Seed: 1}); err == nil {
		t.Fatal("zero-node farm built")
	}
}

func TestEventLogDeterminism(t *testing.T) {
	run := func() []string {
		spec := fastSpec(11)
		spec.AdminNodes = 2
		spec.UniformNodes = 4
		f, err := Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		f.Start()
		f.RunFor(30 * time.Second)
		var out []string
		for _, e := range f.Bus.Log() {
			out = append(out, e.String())
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs:\n%s\n%s", i, a[i], b[i])
		}
	}
}
