package netsim

import (
	"testing"
	"time"

	"repro/internal/transport"
)

// Allocation regression guards for the single-copy delivery plane: in the
// steady state a transmission pays exactly one payload copy into a pooled
// buffer shared by all receivers, and the in-flight delivery records plus
// the scheduler events carrying them are pooled too — so the whole
// send-to-handler round trip allocates nothing.

// fanoutFixture builds n adapters on one segment, all subscribed to the
// beacon group on port 200 with a no-op handler.
func fanoutFixture(n int) (*fixture, *Adapter) {
	f := newFixture(1)
	var first *Adapter
	for i := 0; i < n; i++ {
		a := f.net.AddAdapter(transport.MakeIP(10, 0, byte(i/250), byte(i%250+1)), "n")
		f.res.Attach(a.LocalIP(), "s1")
		a.JoinGroup(transport.BeaconGroup, 200)
		a.Bind(200, func(_, _ transport.Addr, _ []byte) {})
		if first == nil {
			first = a
		}
	}
	return f, first
}

// TestAllocUnicastSteadyState: a delivered unicast round trip allocates
// nothing once the pools are warm.
func TestAllocUnicastSteadyState(t *testing.T) {
	f := newFixture(1)
	a := f.adapter(1, "s1")
	b := f.adapter(2, "s1")
	b.Bind(100, func(_, _ transport.Addr, _ []byte) {})
	dst := transport.Addr{IP: b.LocalIP(), Port: 100}
	payload := make([]byte, 48)
	// Warm the buffer, delivery and scheduler-event pools.
	for i := 0; i < 4; i++ {
		if err := a.Unicast(100, dst, payload); err != nil {
			t.Fatal(err)
		}
		f.sched.Run()
	}
	got := testing.AllocsPerRun(100, func() {
		if err := a.Unicast(100, dst, payload); err != nil {
			t.Fatal(err)
		}
		f.sched.Run()
	})
	if got != 0 {
		t.Errorf("unicast round trip: %.1f allocs/op, want 0", got)
	}
}

// TestAllocMulticastSingleCopy: a 64-receiver multicast performs at most
// one payload-buffer fill per transmission — receivers share the copy —
// and in the steady state the whole fan-out allocates nothing.
func TestAllocMulticastSingleCopy(t *testing.T) {
	f, first := fanoutFixture(64)
	group := transport.Addr{IP: transport.BeaconGroup, Port: 200}
	payload := make([]byte, 64)
	for i := 0; i < 4; i++ {
		if err := first.Multicast(200, group, payload); err != nil {
			t.Fatal(err)
		}
		f.sched.Run()
	}
	got := testing.AllocsPerRun(50, func() {
		if err := first.Multicast(200, group, payload); err != nil {
			t.Fatal(err)
		}
		f.sched.Run()
	})
	if got != 0 {
		t.Errorf("64-receiver multicast round trip: %.1f allocs/op, want 0 (single shared copy)", got)
	}
}

// TestMulticastSharedBuffer verifies receivers genuinely alias one buffer:
// every handler sees the same backing array for the delivered payload.
func TestMulticastSharedBuffer(t *testing.T) {
	f := newFixture(1)
	group := transport.Addr{IP: transport.BeaconGroup, Port: 200}
	sender := f.adapter(1, "s1")
	var bufs []*byte
	for i := byte(2); i < 6; i++ {
		r := f.adapter(i, "s1")
		r.JoinGroup(transport.BeaconGroup, 200)
		r.Bind(200, func(_, _ transport.Addr, p []byte) { bufs = append(bufs, &p[0]) })
	}
	if err := sender.Multicast(200, group, []byte("shared")); err != nil {
		t.Fatal(err)
	}
	f.sched.Run()
	if len(bufs) != 4 {
		t.Fatalf("deliveries = %d, want 4", len(bufs))
	}
	for _, p := range bufs[1:] {
		if p != bufs[0] {
			t.Fatal("receivers got distinct payload copies; want one shared buffer")
		}
	}
}

func BenchmarkUnicastRoundTrip(b *testing.B) {
	f := newFixture(1)
	src := f.adapter(1, "s1")
	rcv := f.adapter(2, "s1")
	rcv.Bind(100, func(_, _ transport.Addr, _ []byte) {})
	dst := transport.Addr{IP: rcv.LocalIP(), Port: 100}
	payload := make([]byte, 48)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Unicast(100, dst, payload)
		f.sched.Run()
	}
}

func BenchmarkMulticastFanout256(b *testing.B) {
	f, first := fanoutFixture(256)
	group := transport.Addr{IP: transport.BeaconGroup, Port: 200}
	payload := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		first.Multicast(200, group, payload)
		f.sched.Run()
	}
}

// TestAllocShardedCrossDelivery extends the steady-state guarantee to the
// cross-shard path: bundle posting, barrier expansion, PostAt injection
// and the arrival itself must all recycle — zero allocs/op once the
// bundle pools, merge scratch and per-lane free lists are warm.
func TestAllocShardedCrossDelivery(t *testing.T) {
	p := LinkProfile{Latency: 2 * time.Millisecond, Spread: 300 * time.Microsecond, RecvFilter: true}
	f := newShardFixture(1, 4, 8, time.Millisecond, p)
	group := transport.Addr{IP: transport.BeaconGroup, Port: 200}
	for _, a := range f.adapters {
		a.JoinGroup(group.IP, group.Port)
		a.Bind(200, func(_, _ transport.Addr, _ []byte) {})
		a.Bind(100, func(_, _ transport.Addr, _ []byte) {})
	}
	src, cross := f.adapters[0], f.adapters[1]
	if src.Lane() == cross.Lane() {
		t.Fatal("fixture should split hosts across lanes")
	}
	dst := transport.Addr{IP: cross.LocalIP(), Port: 100}
	payload := make([]byte, 48)
	send := func() {
		src.Unicast(100, dst, payload)     // cross-shard unicast
		src.Multicast(200, group, payload) // fan-out crossing all lanes
	}
	step := func() {
		f.scheds[0].Schedule(time.Millisecond, send)
		f.sh.RunFor(5 * time.Millisecond)
	}
	for i := 0; i < 8; i++ {
		step() // warm every pool on every lane
	}
	got := testing.AllocsPerRun(100, step)
	if got != 0 {
		t.Errorf("cross-shard send+exchange+deliver: %.1f allocs/op, want 0", got)
	}
}
