package snmp

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/transport"
)

// ErrTimeout reports that all retries of a request went unanswered.
var ErrTimeout = errors.New("snmp: request timed out")

// RequestError carries a non-zero SNMP error-status from an agent.
type RequestError struct {
	Status int
	Index  int
}

func (e *RequestError) Error() string {
	return fmt.Sprintf("snmp: agent returned error-status %d at index %d", e.Status, e.Index)
}

// Client issues SNMP requests over a transport endpoint. It is event-loop
// driven (callback style) to match the simulator's single-threaded world;
// the Do* helpers are what callers use.
type Client struct {
	ep        transport.Endpoint
	clock     transport.Clock
	community string
	// Timeout is the per-attempt wait; Retries the number of re-sends.
	Timeout time.Duration
	Retries int

	port    uint16
	nextID  int32
	pending map[int32]*call
}

type call struct {
	timer   transport.Timer
	done    func(*Message, error)
	msg     *Message
	dst     transport.Addr
	left    int
	timeout time.Duration
	c       *Client
}

// NewClient creates a client bound to a local port on ep. Each concurrent
// client on one adapter needs a distinct port.
func NewClient(ep transport.Endpoint, clock transport.Clock, community string, localPort uint16) *Client {
	c := &Client{
		ep:        ep,
		clock:     clock,
		community: community,
		Timeout:   500 * time.Millisecond,
		Retries:   3,
		port:      localPort,
		nextID:    1,
		pending:   make(map[int32]*call),
	}
	ep.Bind(localPort, c.handle)
	return c
}

func (c *Client) handle(_, _ transport.Addr, payload []byte) {
	m, err := Unmarshal(payload)
	if err != nil || m.Type != Response || m.Community != c.community {
		return
	}
	cl, ok := c.pending[m.RequestID]
	if !ok {
		return
	}
	delete(c.pending, m.RequestID)
	cl.timer.Stop()
	if m.ErrStatus != ErrStatusNoError {
		cl.done(m, &RequestError{Status: m.ErrStatus, Index: m.ErrIndex})
		return
	}
	cl.done(m, nil)
}

// Request sends typ with bindings to agent and invokes done exactly once:
// with the response, or with ErrTimeout after all retries lapse.
func (c *Client) Request(agent transport.Addr, typ PDUType, bindings []VarBind, done func(*Message, error)) {
	id := c.nextID
	c.nextID++
	msg := &Message{Community: c.community, Type: typ, RequestID: id, Bindings: bindings}
	cl := &call{done: done, msg: msg, dst: agent, left: c.Retries, timeout: c.Timeout, c: c}
	c.pending[id] = cl
	cl.send()
}

func (cl *call) send() {
	out, err := cl.msg.Marshal()
	if err != nil {
		delete(cl.c.pending, cl.msg.RequestID)
		cl.done(nil, err)
		return
	}
	_ = cl.c.ep.Unicast(cl.c.port, cl.dst, out)
	cl.timer = cl.c.clock.AfterFunc(cl.timeout, func() {
		if _, still := cl.c.pending[cl.msg.RequestID]; !still {
			return
		}
		if cl.left <= 0 {
			delete(cl.c.pending, cl.msg.RequestID)
			cl.done(nil, ErrTimeout)
			return
		}
		cl.left--
		cl.send()
	})
}

// Get fetches one object.
func (c *Client) Get(agent transport.Addr, oid OID, done func(Value, error)) {
	c.Request(agent, Get, []VarBind{{OID: oid, Value: Null}}, func(m *Message, err error) {
		if err != nil {
			done(Null, err)
			return
		}
		if len(m.Bindings) != 1 {
			done(Null, ErrBadEncoding)
			return
		}
		done(m.Bindings[0].Value, nil)
	})
}

// Set writes one object.
func (c *Client) Set(agent transport.Addr, oid OID, v Value, done func(error)) {
	c.Request(agent, Set, []VarBind{{OID: oid, Value: v}}, func(_ *Message, err error) {
		done(err)
	})
}

// WalkPrefix performs a GETNEXT walk over everything under prefix,
// delivering the collected varbinds to done.
func (c *Client) WalkPrefix(agent transport.Addr, prefix OID, done func([]VarBind, error)) {
	var acc []VarBind
	var step func(from OID)
	step = func(from OID) {
		c.Request(agent, GetNext, []VarBind{{OID: from, Value: Null}}, func(m *Message, err error) {
			var reqErr *RequestError
			if errors.As(err, &reqErr) && reqErr.Status == ErrStatusNoSuchName {
				done(acc, nil) // clean end of MIB
				return
			}
			if err != nil {
				done(acc, err)
				return
			}
			if len(m.Bindings) != 1 {
				done(acc, ErrBadEncoding)
				return
			}
			vb := m.Bindings[0]
			if !vb.OID.HasPrefix(prefix) {
				done(acc, nil)
				return
			}
			acc = append(acc, vb)
			step(vb.OID)
		})
	}
	step(prefix)
}
