// Command gsd is the GulfStream daemon for real networks: the same
// protocol engine the simulator runs, driven by UDP multicast/unicast
// sockets and wall-clock time. Start one per node, listing the node's
// adapter addresses (the first is the administrative adapter); the
// daemons discover each other by beaconing on 224.0.0.71:7400, form
// Adapter Membership Groups per segment, and report to whichever node's
// administrative adapter wins the admin-AMG leadership (that node
// activates GulfStream Central and prints farm-level events).
//
// Usage:
//
//	gsd -node web-01 -adapters 10.1.0.5,10.4.0.5,10.5.0.5 [flags]
//
// With -journal-dir, a hosted Central keeps an append-only journal of its
// committed state there and streams it to the next-in-line administrative
// adapter, so a successor (or a restarted gsd) rebuilds its view from the
// journal instead of a multicast resync pull.
//
// Network segments can be emulated two ways on one machine: with network
// namespaces (see README.md), or — for unprivileged conformance runs —
// with scoped adapters: `-adapters 127.1.0.11@239.71.0.1` wraps the
// adapter so its multicast lives on the given per-segment group instead
// of the well-known one, which is how cmd/gshive's loopback fabric plugs
// daemons into virtual VLANs. `-fabric-ctl` additionally exposes
// /fabricctl handlers on the debug server so the harness can rewire and
// fault those adapters at runtime.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/central"
	"repro/internal/configdb"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/event"
	"repro/internal/journal"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/transport"
)

// readyInfo is the machine-readable readiness line written to -ready-fd
// once the daemon has started: the orchestrator's signal that sockets are
// bound and the protocol clock is running. StartUnixNS is the wall-clock
// epoch of the daemon's trace timestamps, letting an external merger
// align flight-recorder streams from many processes.
type readyInfo struct {
	Node        string   `json:"node"`
	PID         int      `json:"pid"`
	StartUnixNS int64    `json:"start_unix_ns"`
	Adapters    []string `json:"adapters"`
	DebugAddr   string   `json:"debug_addr,omitempty"`
}

// fastProfile compresses every protocol timer for single-host conformance
// farms — the same values the in-repo UDP end-to-end test converges with.
func fastProfile(cfg *core.Config) {
	cfg.BeaconPhase = 2 * time.Second
	cfg.BeaconInterval = 300 * time.Millisecond
	cfg.LeaderBeaconInterval = 500 * time.Millisecond
	cfg.StableWait = 500 * time.Millisecond
	cfg.DeferTimeout = 3 * time.Second
	cfg.DetectorParams.Interval = 300 * time.Millisecond
	cfg.OrphanTimeout = 5 * time.Second
	cfg.ConsensusWindow = 600 * time.Millisecond
}

// parseAdapters parses the -adapters list. Each element is `ip` or
// `ip@scopegroup`; any scoped element wraps its endpoint in a
// transport.ScopedEndpoint pinned to that multicast group.
func parseAdapters(rt *transport.Runtime, spec string) (eps []transport.Endpoint, scoped map[transport.IP]*transport.ScopedEndpoint, close func(), err error) {
	scoped = make(map[transport.IP]*transport.ScopedEndpoint)
	var raw []*transport.UDPEndpoint
	close = func() {
		for _, ep := range raw {
			ep.Close()
		}
	}
	for _, s := range strings.Split(spec, ",") {
		s = strings.TrimSpace(s)
		addr, scope, hasScope := strings.Cut(s, "@")
		ip, ok := transport.ParseIP(addr)
		if !ok {
			return nil, nil, close, fmt.Errorf("bad adapter address %q", s)
		}
		ep, err := transport.NewUDPEndpoint(rt, ip)
		if err != nil {
			return nil, nil, close, fmt.Errorf("adapter %v: %v", ip, err)
		}
		raw = append(raw, ep)
		if !hasScope {
			eps = append(eps, ep)
			continue
		}
		group, ok := transport.ParseIP(scope)
		if !ok || !group.IsMulticast() {
			return nil, nil, close, fmt.Errorf("bad scope group %q for adapter %v", scope, ip)
		}
		sc := transport.NewScopedEndpoint(ep, group)
		scoped[ip] = sc
		eps = append(eps, sc)
	}
	return eps, scoped, close, nil
}

// parseSwitches parses -switches: `name=ip:port` elements naming the SNMP
// agents of the farm's switches, registered with a hosted Central so it
// can execute (and verify) VLAN rewrites.
func parseSwitches(spec string) (map[string]transport.Addr, error) {
	out := make(map[string]transport.Addr)
	if spec == "" {
		return out, nil
	}
	for _, s := range strings.Split(spec, ",") {
		s = strings.TrimSpace(s)
		name, addr, ok := strings.Cut(s, "=")
		if !ok {
			return nil, fmt.Errorf("bad switch spec %q (want name=ip:port)", s)
		}
		host, portStr, ok := strings.Cut(addr, ":")
		port := int(transport.PortSNMP)
		if ok {
			p, err := strconv.Atoi(portStr)
			if err != nil || p <= 0 || p > 65535 {
				return nil, fmt.Errorf("bad switch port in %q", s)
			}
			port = p
		}
		ip, okIP := transport.ParseIP(host)
		if !okIP {
			return nil, fmt.Errorf("bad switch address in %q", s)
		}
		out[name] = transport.Addr{IP: ip, Port: uint16(port)}
	}
	return out, nil
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		node       = flag.String("node", "", "node name (required)")
		adapters   = flag.String("adapters", "", "comma-separated adapter IPv4 addresses, each `ip` or `ip@scopegroup`; first is administrative (required)")
		fast       = flag.Bool("fast", false, "compressed protocol timers for single-host conformance farms")
		tb         = flag.Duration("tb", 5*time.Second, "beacon phase Tb")
		ts         = flag.Duration("ts", 5*time.Second, "leader quiet wait Ts")
		tgsc       = flag.Duration("tgsc", 15*time.Second, "Central stabilization wait Tgsc")
		th         = flag.Duration("th", time.Second, "heartbeat interval Th")
		miss       = flag.Int("miss", 3, "missed-heartbeat sensitivity k")
		detName    = flag.String("detector", "biring", "failure detector: ring|biring|all-to-all|randping|subgroup")
		dbPath     = flag.String("configdb", "", "expected-topology JSON for Central verification (optional)")
		community  = flag.String("community", "farm-admin", "SNMP community for switch management")
		switches   = flag.String("switches", "", "comma-separated switch SNMP agents (name=ip:port) registered with a hosted Central")
		journalDir = flag.String("journal-dir", "", "directory for Central's durable state journal (empty = journal off)")
		seed       = flag.Int64("seed", 0, "randomness seed (0 = time-based)")
		debugAddr  = flag.String("debug-addr", "", "HTTP debug listen address serving /metrics, /trace, /healthz, /debug/vars, /debug/pprof (empty = off)")
		fabricCtl  = flag.Bool("fabric-ctl", false, "expose /fabricctl rescope/fault/move handlers on the debug server (conformance harness only)")
		readyFD    = flag.Int("ready-fd", 0, "file descriptor to write a one-line JSON readiness message to once started (0 = off)")
		traceOn    = flag.Bool("trace", true, "capture protocol flight-recorder records")
		traceCap   = flag.Int("trace-cap", 0, "flight recorder capacity in records (0 = default)")
	)
	flag.Parse()
	if *node == "" || *adapters == "" {
		flag.Usage()
		return 2
	}
	kind, err := detect.ParseKind(*detName)
	if err != nil {
		log.Print(err)
		return 1
	}

	cfg := core.DefaultConfig()
	// Reports are deduped by Central per reporter via sequence numbers; a
	// restarted process must not reuse its previous life's numbering or
	// its first reports are swallowed as duplicates. Boot time makes the
	// sequence space monotonic across restarts.
	cfg.ReportEpoch = uint64(time.Now().UnixNano())
	if *fast {
		fastProfile(&cfg)
		// Explicit timer flags still win over the profile.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "tb":
				cfg.BeaconPhase = *tb
			case "ts":
				cfg.StableWait = *ts
			case "th":
				cfg.DetectorParams.Interval = *th
			}
		})
	} else {
		cfg.BeaconPhase = *tb
		cfg.StableWait = *ts
		cfg.DetectorParams.Interval = *th
	}
	cfg.Detector = kind
	cfg.Consensus = kind == detect.BiRing
	cfg.DetectorParams.MissThreshold = *miss

	rt := transport.NewRuntime()
	eps, scopedEPs, closeEPs, err := parseAdapters(rt, *adapters)
	defer closeEPs()
	if err != nil {
		log.Printf("gsd: %v", err)
		return 1
	}

	var db *configdb.DB
	if *dbPath != "" {
		db, err = configdb.Load(*dbPath)
		if err != nil {
			log.Printf("gsd: configdb: %v", err)
			return 1
		}
	}
	bus := event.NewBus(false)
	bus.Subscribe(func(e event.Event) {
		fmt.Printf("%s %v\n", time.Now().Format(time.RFC3339), e)
	})
	cc := central.DefaultConfig()
	cc.StabilizeWait = *tgsc
	cc.Community = *community
	ctr := central.New(cc, rt, bus, db)
	agents, err := parseSwitches(*switches)
	if err != nil {
		log.Printf("gsd: %v", err)
		return 1
	}
	for name, addr := range agents {
		ctr.RegisterSwitchAgent(name, addr)
	}
	if *journalDir != "" {
		store, err := journal.NewFileStore(*journalDir, journal.FileOptions{})
		if err != nil {
			log.Printf("gsd: journal: %v", err)
			return 1
		}
		j, err := journal.New(store, journal.Options{})
		if err != nil {
			log.Printf("gsd: journal: %v", err)
			return 1
		}
		defer j.Close()
		ctr.SetJournal(j)
		state := "empty"
		if j.Loaded() {
			state = fmt.Sprintf("replayed %d groups", len(j.State().Groups))
		}
		log.Printf("gsd: state journal at %s (%s, epoch %d, seq %d)",
			*journalDir, state, j.Epoch(), j.Seq())
	}

	s := *seed
	if s == 0 {
		s = time.Now().UnixNano()
	}
	d, err := core.NewDaemon(cfg, *node, rt, rand.New(rand.NewSource(s)), eps)
	if err != nil {
		log.Print(err)
		return 1
	}
	d.SetCentral(ctr)

	// Flight recorder + telemetry registry. The recorder is always
	// installed (a disabled recorder costs one atomic load per capture
	// site); the registry is fed from recorder records via the bridge.
	rec := trace.New(*traceCap)
	rec.Enable(*traceOn)
	reg := metrics.NewRegistry()
	rec.AddSink(metrics.ObserveTrace(reg))
	d.SetTracer(rec)
	ctr.SetTracer(rec, *node)
	boundDebug := ""
	if *debugAddr != "" {
		var fc *fabricControl
		if *fabricCtl {
			fc = &fabricControl{scoped: scopedEPs}
		}
		boundDebug = startDebug(*debugAddr, *node, rt, eps, d, ctr, rec, reg, fc)
	}

	// Start inside the event loop so all protocol work is serialized.
	rt.AfterFunc(0, func() {
		d.Start()
		log.Printf("gsd: node %s up with %d adapters (admin %v), detector %v",
			*node, len(eps), d.AdminIP(), kind)
		if *readyFD > 0 {
			writeReady(*readyFD, *node, rt, eps, boundDebug)
		}
	})

	// Periodic status line.
	var status func()
	status = func() {
		for _, ep := range eps {
			if v, ok := d.View(ep.LocalIP()); ok {
				role := "member"
				if v.Leader() == ep.LocalIP() {
					role = "LEADER"
				}
				log.Printf("gsd: adapter %v: %s of %v", ep.LocalIP(), role, v)
			} else {
				log.Printf("gsd: adapter %v: discovering", ep.LocalIP())
			}
		}
		if d.HostingCentral() {
			log.Printf("gsd: this node hosts GulfStream Central (%d groups)", ctr.GroupCount())
		}
		if j := ctr.Journal(); j != nil && (d.HostingCentral() || j.Loaded()) {
			log.Printf("gsd: journal epoch %d seq %d (%d groups)", j.Epoch(), j.Seq(), len(j.State().Groups))
		}
		rt.AfterFunc(30*time.Second, status)
	}
	rt.AfterFunc(30*time.Second, status)

	go rt.Run()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	log.Printf("gsd: %v, shutting down", got)
	// Close sockets first: the runtime's Close waits for every socket
	// read loop, and those only exit when their sockets close.
	closeEPs()
	rt.Close()
	return 0
}

// writeReady emits the one-line readiness JSON on the inherited fd and
// closes it, so an orchestrator blocked on the read unblocks exactly when
// the daemon is live.
func writeReady(fd int, node string, rt *transport.Runtime, eps []transport.Endpoint, debugAddr string) {
	f := os.NewFile(uintptr(fd), "ready")
	if f == nil {
		return
	}
	defer f.Close()
	info := readyInfo{
		Node:        node,
		PID:         os.Getpid(),
		StartUnixNS: rt.Start().UnixNano(),
		DebugAddr:   debugAddr,
	}
	for _, ep := range eps {
		info.Adapters = append(info.Adapters, ep.LocalIP().String())
	}
	b, err := json.Marshal(info)
	if err != nil {
		return
	}
	b = append(b, '\n')
	_, _ = f.Write(b)
}
