package check

import "time"

// minSettle is the floor the shrinker won't reduce Settle below — a
// schedule needs some quiet tail for the violation to be about the
// faults, not about cutting the run off mid-protocol.
const minSettle = 15 * time.Second

// Shrink reduces a failing schedule to a (locally) minimal one that
// still fails, using delta debugging (ddmin) over the op list followed
// by settle-halving. fails must re-run the schedule from scratch and
// report whether the invariant violation reproduces; it is called at
// most maxRuns times (each call is a full simulation). The input
// schedule is assumed to fail and is returned unchanged if nothing
// smaller reproduces within the budget.
func Shrink(s Schedule, fails func(Schedule) bool, maxRuns int) (Schedule, int) {
	runs := 0
	try := func(c Schedule) bool {
		if runs >= maxRuns {
			return false
		}
		runs++
		return fails(c)
	}

	best := s
	sortOps(best.Ops)

	// ddmin: repeatedly try dropping chunks of the schedule, refining
	// granularity when no chunk can go.
	n := 2
	for len(best.Ops) >= 2 && runs < maxRuns {
		if n > len(best.Ops) {
			n = len(best.Ops)
		}
		chunk := (len(best.Ops) + n - 1) / n
		reduced := false
		for i := 0; i < len(best.Ops) && runs < maxRuns; i += chunk {
			end := i + chunk
			if end > len(best.Ops) {
				end = len(best.Ops)
			}
			rest := make([]Op, 0, len(best.Ops)-(end-i))
			rest = append(rest, best.Ops[:i]...)
			rest = append(rest, best.Ops[end:]...)
			cand := Schedule{Seed: best.Seed, Ops: rest, Settle: best.Settle}
			if try(cand) {
				best = cand
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(best.Ops) {
				break
			}
			n *= 2
		}
	}

	// Shorten the quiet tail while the violation still reproduces.
	for best.Settle/2 >= minSettle && runs < maxRuns {
		cand := best
		cand.Settle = best.Settle / 2
		if !try(cand) {
			break
		}
		best = cand
	}
	return best, runs
}
