package exp

import (
	"fmt"
	"time"

	"repro/internal/central"
	"repro/internal/core"
	"repro/internal/farm"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// JournalFailoverOptions parameterizes the journal-vs-cold failover
// comparison.
type JournalFailoverOptions struct {
	Seed         int64
	AdminNodes   int
	UniformNodes int
	Trials       int
}

// DefaultJournalFailover uses a 20-node farm (4 admin + 16 uniform).
func DefaultJournalFailover() JournalFailoverOptions {
	return JournalFailoverOptions{Seed: 101, AdminNodes: 4, UniformNodes: 16, Trials: 2}
}

// JournalFailoverResult is one measured recovery.
type JournalFailoverResult struct {
	// Rebuild is Central-host death to the successor holding the full view.
	Rebuild time.Duration
	// ResyncMsgs counts report-plane messages from death until the farm is
	// quiet again: the resync pulls plus every full report they trigger.
	ResyncMsgs uint64
	// JournalMsgs counts journal-plane messages in the same window (the
	// stream the new active opens to its own standby).
	JournalMsgs uint64
}

// JournalFailoverTrial kills the Central host of a stabilized farm and
// measures the successor's recovery, with or without the state journal.
func JournalFailoverTrial(o JournalFailoverOptions, journaled bool, seed int64) (JournalFailoverResult, error) {
	var res JournalFailoverResult
	cfg := core.DefaultConfig()
	cfg.BeaconPhase = 3 * time.Second
	cc := central.DefaultConfig()
	cc.StabilizeWait = 5 * time.Second
	f, err := farm.Build(farm.Spec{
		Seed:         seed,
		AdminNodes:   o.AdminNodes,
		UniformNodes: o.UniformNodes, UniformAdapters: 2,
		Core: cfg, Central: cc, RecordEvents: true,
		Journal: journaled,
	})
	if err != nil {
		return res, err
	}
	f.Start()
	if _, ok := f.RunUntilStable(3 * time.Minute); !ok {
		return res, fmt.Errorf("exp: journal failover (journal=%v) never stabilized", journaled)
	}
	// Let the standby stream drain after the last view change.
	f.RunFor(5 * time.Second)

	var hostName string
	for name, d := range f.Daemons {
		if d.Running() && d.HostingCentral() {
			hostName = name
		}
	}
	if hostName == "" {
		return res, fmt.Errorf("exp: journal failover: nobody hosts central")
	}
	groupsBefore := f.ActiveCentral().GroupCount()

	f.Metrics.Reset(f.Sched.Now())
	killedAt := f.Sched.Now()
	if err := f.KillNode(hostName); err != nil {
		return res, err
	}
	var rebuiltAt time.Duration
	deadline := f.Sched.Now() + 3*time.Minute
	for f.Sched.Now() < deadline {
		f.RunFor(250 * time.Millisecond)
		if c := f.ActiveCentral(); c != nil && c.GroupCount() >= groupsBefore {
			rebuiltAt = f.Sched.Now()
			break
		}
	}
	if rebuiltAt == 0 {
		return res, fmt.Errorf("exp: journal failover (journal=%v): view never rebuilt", journaled)
	}
	// Settle so stragglers (late resync responses, duplicate fulls) count.
	f.RunFor(15 * time.Second)
	res.Rebuild = rebuiltAt - killedAt
	res.ResyncMsgs = f.Metrics.PlaneCounter(metrics.Plane(transport.PortReport)).Messages
	res.JournalMsgs = f.Metrics.PlaneCounter(metrics.Plane(transport.PortJournal)).Messages
	return res, nil
}

// JournalFailover compares Central failover recovery with the journal off
// (cold successor: multicast resync pull, every leader re-reports) and on
// (warm standby: replay the streamed journal, verify only stale groups).
func JournalFailover(o JournalFailoverOptions) (*Table, error) {
	t := &Table{
		ID: "E12/journal-failover",
		Title: fmt.Sprintf("Central failover recovery, state journal off vs on (%d nodes)",
			o.AdminNodes+o.UniformNodes),
		Columns: []string{"trial", "journal", "view rebuilt(s)", "report msgs", "journal msgs"},
	}
	for trial := 0; trial < o.Trials; trial++ {
		seed := o.Seed + int64(trial)*7
		for _, journaled := range []bool{false, true} {
			r, err := JournalFailoverTrial(o, journaled, seed)
			if err != nil {
				return nil, err
			}
			mode := "off"
			if journaled {
				mode = "on"
			}
			t.AddRow(fmt.Sprintf("%d", trial+1), mode, secs2(r.Rebuild),
				fmt.Sprintf("%d", r.ResyncMsgs), fmt.Sprintf("%d", r.JournalMsgs))
		}
	}
	t.Note("off: the successor multicasts a resync pull 3x and every leader answers with a full report;")
	t.Note("on: the successor replays the journal streamed to it while standby — streamed groups are")
	t.Note("trusted, only stale ones get a unicast verification pull, so the report plane stays quieter")
	return t, nil
}
