package serve

import (
	"sort"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/sim"
	"repro/internal/transport"
)

// fakeFarm implements Directory and Oracle for unit tests: a static
// domain map plus mutable liveness.
type fakeFarm struct {
	doms map[string][]string // domain -> front-ends
	home map[string]string   // node -> current domain (ground truth)
	dead map[string]bool
}

func newFakeFarm() *fakeFarm {
	f := &fakeFarm{
		doms: map[string][]string{
			"acme":   {"acme-fe-00", "acme-fe-01"},
			"globex": {"globex-fe-00", "globex-fe-01"},
		},
		home: map[string]string{},
		dead: map[string]bool{},
	}
	for dom, nodes := range f.doms {
		for _, n := range nodes {
			f.home[n] = dom
		}
	}
	return f
}

func (f *fakeFarm) Domains() []string {
	out := make([]string, 0, len(f.doms))
	for d := range f.doms {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

func (f *fakeFarm) FrontEnds(domain string) []string {
	return append([]string(nil), f.doms[domain]...)
}

func (f *fakeFarm) DomainOf(node string) (string, bool) {
	d, ok := f.home[node]
	return d, ok
}

func (f *fakeFarm) Serves(node, domain string) bool {
	return !f.dead[node] && f.home[node] == domain
}

// moveNode updates ground truth for a domain move.
func (f *fakeFarm) moveNode(node, to string) {
	from := f.home[node]
	for i, n := range f.doms[from] {
		if n == node {
			f.doms[from] = append(f.doms[from][:i], f.doms[from][i+1:]...)
			break
		}
	}
	f.doms[to] = append(f.doms[to], node)
	f.home[node] = to
}

type simClock struct{ s *sim.Scheduler }

func (c simClock) Now() time.Duration { return c.s.Now() }
func (c simClock) AfterFunc(d time.Duration, fn func()) transport.Timer {
	return c.s.AfterFunc(d, fn)
}

func testBalancer(t *testing.T) (*Balancer, *fakeFarm, *sim.Scheduler) {
	t.Helper()
	sched := sim.NewScheduler(1)
	farm := newFakeFarm()
	return NewBalancer(Config{}, simClock{sched}, farm, nil, nil), farm, sched
}

func TestBalancerSeedsFromDirectory(t *testing.T) {
	b, _, _ := testBalancer(t)
	got := b.Healthy("acme")
	want := []string{"acme-fe-00", "acme-fe-01"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Healthy(acme) = %v, want %v", got, want)
	}
}

func TestBalancerFailureAndRecovery(t *testing.T) {
	b, _, _ := testBalancer(t)

	b.Apply(event.Event{Kind: event.AdapterFailed, Node: "acme-fe-00"})
	if got := b.Healthy("acme"); len(got) != 1 || got[0] != "acme-fe-01" {
		t.Fatalf("after failure Healthy(acme) = %v, want [acme-fe-01]", got)
	}
	if b.DownReason("acme-fe-00") == "" {
		t.Fatal("acme-fe-00 should carry a down reason")
	}

	b.Apply(event.Event{Kind: event.AdapterRecovered, Node: "acme-fe-00"})
	if got := b.Healthy("acme"); len(got) != 2 {
		t.Fatalf("after recovery Healthy(acme) = %v, want both backends", got)
	}
}

func TestBalancerIgnoresSuppressedFailures(t *testing.T) {
	b, _, _ := testBalancer(t)
	b.Apply(event.Event{Kind: event.AdapterFailed, Node: "acme-fe-00", Suppressed: true})
	if got := b.Healthy("acme"); len(got) != 2 {
		t.Fatalf("suppressed failure pulled a backend: Healthy(acme) = %v", got)
	}
}

func TestBalancerIgnoresUntrackedNodes(t *testing.T) {
	b, _, _ := testBalancer(t)
	b.Apply(event.Event{Kind: event.SwitchFailed, Node: "sw0"})
	b.Apply(event.Event{Kind: event.NodeFailed, Node: "no-such-node"})
	for _, dom := range []string{"acme", "globex"} {
		if got := b.Healthy(dom); len(got) != 2 {
			t.Fatalf("untracked node event changed %s rotation: %v", dom, got)
		}
	}
}

func TestBalancerMoveStartedDrainsThenMoveRestores(t *testing.T) {
	b, farm, _ := testBalancer(t)

	// Central announces the planned move: the node drains immediately.
	b.Apply(event.Event{Kind: event.MoveStarted, Node: "globex-fe-00"})
	if got := b.Healthy("globex"); len(got) != 1 || got[0] != "globex-fe-01" {
		t.Fatalf("MoveStarted did not drain: Healthy(globex) = %v", got)
	}

	// The fabric completes the move, then the join is reported.
	farm.moveNode("globex-fe-00", "acme")
	b.Apply(event.Event{Kind: event.NodeMoved, Node: "globex-fe-00"})

	if got := b.Healthy("acme"); len(got) != 3 {
		t.Fatalf("moved node missing from acme rotation: %v", got)
	}
	if got := b.Healthy("globex"); len(got) != 1 {
		t.Fatalf("moved node still in globex rotation: %v", got)
	}
	if findings := b.Audit(farm); len(findings) != 0 {
		t.Fatalf("audit after clean move: %v", findings)
	}
}

// A move that completes while the node is down is reported as a plain
// recovery, not NodeMoved; the balancer must re-resolve the domain anyway.
func TestBalancerRecoveryHealsDomainAfterHiddenMove(t *testing.T) {
	b, farm, _ := testBalancer(t)

	b.Apply(event.Event{Kind: event.NodeFailed, Node: "globex-fe-00"})
	farm.moveNode("globex-fe-00", "acme")
	b.Apply(event.Event{Kind: event.NodeRecovered, Node: "globex-fe-00"})

	if got := b.Healthy("acme"); len(got) != 3 {
		t.Fatalf("recovered node not re-homed to acme: %v", got)
	}
	if findings := b.Audit(farm); len(findings) != 0 {
		t.Fatalf("audit after hidden move: %v", findings)
	}
}

func TestBalancerQuarantineOnMismatch(t *testing.T) {
	sched := sim.NewScheduler(1)
	farm := newFakeFarm()
	b := NewBalancer(Config{QuarantineOnMismatch: true}, simClock{sched}, farm, nil, nil)
	b.Apply(event.Event{Kind: event.VerifyMismatch, Node: "acme-fe-01"})
	if got := b.Healthy("acme"); len(got) != 1 || got[0] != "acme-fe-00" {
		t.Fatalf("mismatch did not quarantine: Healthy(acme) = %v", got)
	}

	// Default config ignores mismatches.
	b2, _, _ := testBalancer(t)
	b2.Apply(event.Event{Kind: event.VerifyMismatch, Node: "acme-fe-01"})
	if got := b2.Healthy("acme"); len(got) != 2 {
		t.Fatalf("default config quarantined on mismatch: %v", got)
	}
}

func TestBalancerRouteRotates(t *testing.T) {
	b, _, _ := testBalancer(t)
	counts := map[string]int{}
	for i := 0; i < 10; i++ {
		n, ok := b.Route("acme")
		if !ok {
			t.Fatal("Route failed with healthy backends")
		}
		counts[n]++
	}
	if counts["acme-fe-00"] != 5 || counts["acme-fe-01"] != 5 {
		t.Fatalf("rotation uneven: %v", counts)
	}

	b.Apply(event.Event{Kind: event.NodeFailed, Node: "acme-fe-00"})
	b.Apply(event.Event{Kind: event.NodeFailed, Node: "acme-fe-01"})
	if _, ok := b.Route("acme"); ok {
		t.Fatal("Route succeeded with all backends down")
	}
}

func TestBalancerAssignSplitsExactly(t *testing.T) {
	b, _, _ := testBalancer(t)
	for _, n := range []int64{1, 2, 3, 7, 100, 101, 1_000_000_001} {
		shares := b.Assign("acme", n)
		var sum int64
		for _, s := range shares {
			sum += s.Requests
		}
		if sum != n {
			t.Fatalf("Assign(acme, %d) shares sum to %d", n, sum)
		}
		if len(shares) > 2 {
			t.Fatalf("Assign(acme, %d) produced %d shares for 2 backends", n, len(shares))
		}
	}
	if shares := b.Assign("acme", 0); shares != nil {
		t.Fatalf("Assign(acme, 0) = %v, want nil", shares)
	}
}

// Repeated odd batches must rotate the remainder, not pin it to one
// backend.
func TestBalancerAssignRotatesRemainder(t *testing.T) {
	b, _, _ := testBalancer(t)
	totals := map[string]int64{}
	for i := 0; i < 10; i++ {
		for _, s := range b.Assign("acme", 3) {
			totals[s.Node] += s.Requests
		}
	}
	if totals["acme-fe-00"] != 15 || totals["acme-fe-01"] != 15 {
		t.Fatalf("remainder pinned: %v", totals)
	}
}

func TestBalancerAuditFindsStaleRoute(t *testing.T) {
	b, farm, _ := testBalancer(t)
	// Ground truth kills a node but no notification arrives.
	farm.dead["acme-fe-00"] = true
	findings := b.Audit(farm)
	if len(findings) != 1 {
		t.Fatalf("audit = %v, want exactly one finding", findings)
	}
}

func TestBalancerNotificationLagHistogram(t *testing.T) {
	sched := sim.NewScheduler(1)
	farm := newFakeFarm()
	b := NewBalancer(Config{}, simClock{sched}, farm, nil, nil)

	sched.Schedule(2*time.Second, func() {
		// Published at t=1s, delivered at t=2s: 1s of lag.
		b.Apply(event.Event{Kind: event.NodeFailed, Node: "acme-fe-00", Time: 1 * time.Second})
	})
	sched.Run()

	if b.Notifications() != 1 {
		t.Fatalf("Notifications() = %d, want 1", b.Notifications())
	}
	if b.MaxLag() != time.Second {
		t.Fatalf("MaxLag() = %v, want 1s", b.MaxLag())
	}
}
