package core

import (
	"fmt"

	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// segmentHint labels reports with the adapter's index class ("idx-0" is
// the administrative plane by convention). Central treats it as advisory.
func (p *adapterProto) segmentHint() string { return fmt.Sprintf("idx-%d", p.index) }

// reporter ships membership reports from this daemon's AMG leaders to
// GulfStream Central over the administrative adapter, one at a time, with
// acknowledgement and retransmission. In the steady state it is silent —
// the paper's "no network resources are used for group membership
// information" property.
type reporter struct {
	d        *Daemon
	queue    []*wire.Report
	inflight *wire.Report
	timer    transport.Timer
	nextSeq  uint64
}

func newReporter(d *Daemon) *reporter {
	return &reporter{d: d, nextSeq: d.cfg.ReportEpoch + 1}
}

func (r *reporter) reset() {
	r.queue = nil
	r.inflight = nil
	if r.timer != nil {
		r.timer.Stop()
		r.timer = nil
	}
}

// enqueue assigns a sequence number and queues the report for delivery.
func (r *reporter) enqueue(rep *wire.Report) {
	rep.Seq = r.nextSeq
	r.nextSeq++
	det := "delta"
	if rep.Full {
		det = "full"
	}
	r.d.trace(&trace.Record{Kind: trace.KReportQueued, Self: r.d.AdminIP(),
		Group: rep.Leader, Version: rep.Version, Token: rep.Seq, Detail: det})
	r.queue = append(r.queue, rep)
	r.kick()
}

// centralChanged reacts to a change of the administrative AMG leader: any
// report addressed to the old Central is junk, and every group this daemon
// leads owes the new Central a fresh full report (after the usual quiet
// wait).
func (r *reporter) centralChanged() {
	r.reset()
	for _, p := range r.d.adapters {
		if p.state == stLeader && p.lead != nil {
			p.lead.reportedValid = false
			p.lead.resetStableTimer()
		}
	}
}

func (r *reporter) kick() {
	if r.inflight != nil || len(r.queue) == 0 {
		return
	}
	r.inflight = r.queue[0]
	r.queue = r.queue[1:]
	r.transmit()
}

func (r *reporter) transmit() {
	if r.inflight == nil {
		return
	}
	dst := r.d.centralIP
	if dst != 0 && r.d.running {
		admin := r.d.admin()
		pkt := wire.NewPacket(r.inflight)
		_ = admin.ep.Unicast(transport.PortReport,
			transport.Addr{IP: dst, Port: transport.PortReport}, pkt.Bytes())
		pkt.Free()
	}
	// Retry until acked (or Central moves / daemon dies).
	if r.timer != nil {
		r.timer.Reset(r.d.cfg.ReportRetry)
	} else {
		r.timer = r.d.clock.AfterFunc(r.d.cfg.ReportRetry, r.transmit)
	}
}

func (r *reporter) onAck(seq uint64) {
	if r.inflight == nil || r.inflight.Seq != seq {
		return
	}
	r.d.trace(&trace.Record{Kind: trace.KReportAcked, Self: r.d.AdminIP(),
		Group: r.inflight.Leader, Version: r.inflight.Version, Token: seq})
	r.inflight = nil
	if r.timer != nil {
		r.timer.Stop()
		r.timer = nil
	}
	r.kick()
}

// dropLeader discards queued and retransmitting reports for a group this
// daemon no longer leads. A demoted leader's stale report, delivered (or
// retransmitted) after the absorbing group's join delta, would otherwise
// make Central undo the join — reports about a dead lineage must stop at
// the source the moment the lineage dies.
func (r *reporter) dropLeader(ip transport.IP) {
	keep := r.queue[:0]
	for _, rep := range r.queue {
		if rep.Leader != ip {
			keep = append(keep, rep)
		}
	}
	r.queue = keep
	if r.inflight != nil && r.inflight.Leader == ip {
		r.inflight = nil
		if r.timer != nil {
			r.timer.Stop()
			r.timer = nil
		}
		r.kick()
	}
}
