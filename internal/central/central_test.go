package central

import (
	"testing"
	"time"

	"repro/internal/configdb"
	"repro/internal/event"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/wire"
)

type clock struct{ s *sim.Scheduler }

func (c clock) Now() time.Duration { return c.s.Now() }
func (c clock) AfterFunc(d time.Duration, fn func()) transport.Timer {
	return c.s.AfterFunc(d, fn)
}

type fixture struct {
	sched *sim.Scheduler
	bus   *event.Bus
	c     *Central
	ep    *netsim.Adapter
	seq   uint64
}

func ip(c, d byte) transport.IP { return transport.MakeIP(10, 0, c, d) }

func newFixture(t *testing.T, db *configdb.DB) *fixture {
	t.Helper()
	sched := sim.NewScheduler(1)
	res := netsim.NewStaticResolver()
	net := netsim.New(sched, res)
	ep := net.AddAdapter(ip(9, 9), "central-host")
	res.Attach(ip(9, 9), "admin")
	bus := event.NewBus(true)
	cfg := DefaultConfig()
	cfg.StabilizeWait = 5 * time.Second
	cfg.MoveWindow = 30 * time.Second
	c := New(cfg, clock{sched}, bus, db)
	c.Activate(ep)
	return &fixture{sched: sched, bus: bus, c: c, ep: ep}
}

func member(c, d byte, node string, admin bool) wire.Member {
	return wire.Member{IP: ip(c, d), Node: node, Admin: admin}
}

func (f *fixture) report(r *wire.Report) {
	f.seq++
	r.Seq = f.seq
	f.c.HandleReport(transport.Addr{IP: ip(9, 9), Port: transport.PortReport}, r)
}

func (f *fixture) full(leader transport.IP, version uint64, members ...wire.Member) {
	f.report(&wire.Report{Leader: leader, Version: version, Full: true, Members: members})
}

func TestFullReportBuildsView(t *testing.T) {
	f := newFixture(t, nil)
	f.full(ip(1, 3), 1, member(1, 3, "n3", true), member(1, 2, "n2", true), member(1, 1, "n1", true))
	groups := f.c.Groups()
	if len(groups) != 1 || len(groups[ip(1, 3)]) != 3 {
		t.Fatalf("groups = %v", groups)
	}
	if f.bus.Count(event.GroupFormed) != 1 {
		t.Fatal("no GroupFormed")
	}
	if f.bus.Count(event.AdapterJoined) != 0 {
		t.Fatal("initial members must not produce join events")
	}
	alive, known := f.c.AdapterAlive(ip(1, 2))
	if !known || !alive {
		t.Fatal("member not tracked alive")
	}
}

func TestDeltaJoinAndLeave(t *testing.T) {
	f := newFixture(t, nil)
	f.full(ip(1, 3), 1, member(1, 3, "n3", true), member(1, 2, "n2", true))
	f.report(&wire.Report{Leader: ip(1, 3), Version: 2, Members: []wire.Member{member(1, 1, "n1", true)}})
	if f.bus.Count(event.AdapterJoined) != 1 {
		t.Fatal("join delta not published")
	}
	f.report(&wire.Report{Leader: ip(1, 3), Version: 3, Left: []transport.IP{ip(1, 2)}})
	if f.bus.Count(event.AdapterFailed) != 1 {
		t.Fatal("leave delta not published")
	}
	if alive, _ := f.c.AdapterAlive(ip(1, 2)); alive {
		t.Fatal("departed member still alive")
	}
	if len(f.c.Groups()[ip(1, 3)]) != 2 {
		t.Fatalf("group = %v", f.c.Groups())
	}
}

func TestDuplicateReportIgnored(t *testing.T) {
	f := newFixture(t, nil)
	f.full(ip(1, 3), 1, member(1, 3, "n3", true))
	r := &wire.Report{Leader: ip(1, 3), Version: 2, Members: []wire.Member{member(1, 1, "n1", true)}, Seq: f.seq + 1}
	f.seq++
	src := transport.Addr{IP: ip(9, 9), Port: transport.PortReport}
	f.c.HandleReport(src, r)
	f.c.HandleReport(src, r) // duplicate retransmission
	if n := f.bus.Count(event.AdapterJoined); n != 1 {
		t.Fatalf("duplicate applied: %d joins", n)
	}
}

func TestTakeoverViaPrevLeader(t *testing.T) {
	f := newFixture(t, nil)
	f.full(ip(1, 5), 1,
		member(1, 5, "n5", true), member(1, 4, "n4", true), member(1, 3, "n3", true))
	// Successor n4 takes over; n5 is gone.
	f.report(&wire.Report{
		Leader: ip(1, 4), Version: 2, Full: true, PrevLeader: ip(1, 5), PrevVersion: 1,
		Members: []wire.Member{member(1, 4, "n4", true), member(1, 3, "n3", true)},
	})
	if alive, known := f.c.AdapterAlive(ip(1, 5)); !known || alive {
		t.Fatal("dead old leader not marked")
	}
	if f.bus.Count(event.LeaderChanged) != 1 {
		t.Fatal("no LeaderChanged")
	}
	groups := f.c.Groups()
	if len(groups) != 1 || len(groups[ip(1, 4)]) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	fails := f.bus.Filter(event.AdapterFailed)
	if len(fails) != 1 || fails[0].Adapter != ip(1, 5) {
		t.Fatalf("failures = %v", fails)
	}
}

func TestOrphanSingletonDoesNotKillOldGroup(t *testing.T) {
	f := newFixture(t, nil)
	f.full(ip(1, 5), 1,
		member(1, 5, "n5", true), member(1, 4, "n4", true), member(1, 3, "n3", true))
	// n3 orphaned itself and reports a fresh singleton with no lineage.
	f.report(&wire.Report{
		Leader: ip(1, 3), Version: 1001, Full: true,
		Members: []wire.Member{member(1, 3, "n3", true)},
	})
	// Others must stay alive.
	for _, a := range []transport.IP{ip(1, 5), ip(1, 4)} {
		if alive, _ := f.c.AdapterAlive(a); !alive {
			t.Fatalf("adapter %v wrongly killed", a)
		}
	}
	if f.bus.Count(event.AdapterFailed) != 0 {
		t.Fatalf("failures published: %v", f.bus.Filter(event.AdapterFailed))
	}
	// n3 now lives in its own group only.
	groups := f.c.Groups()
	if len(groups[ip(1, 5)]) != 2 || len(groups[ip(1, 3)]) != 1 {
		t.Fatalf("groups = %v", groups)
	}
}

func TestMergeMovesMembersBetweenGroups(t *testing.T) {
	f := newFixture(t, nil)
	f.full(ip(1, 5), 1, member(1, 5, "n5", true), member(1, 4, "n4", true))
	f.full(ip(1, 9), 1, member(1, 9, "n9", true))
	// 10.0.1.9 absorbs the other group.
	f.report(&wire.Report{Leader: ip(1, 9), Version: 2,
		Members: []wire.Member{member(1, 5, "n5", true), member(1, 4, "n4", true)}})
	groups := f.c.Groups()
	if len(groups) != 1 || len(groups[ip(1, 9)]) != 3 {
		t.Fatalf("groups after merge = %v", groups)
	}
	if f.bus.Count(event.AdapterFailed) != 0 {
		t.Fatal("merge produced failures")
	}
}

func TestNodeCorrelation(t *testing.T) {
	f := newFixture(t, nil)
	// Node "web" has two adapters, members (not leaders) of two groups.
	f.full(ip(1, 9), 1, member(1, 9, "lead-a", true), member(1, 4, "web", true))
	f.full(ip(2, 9), 1, wire.Member{IP: ip(2, 9), Node: "lead-b"}, wire.Member{IP: ip(2, 4), Node: "web"})
	// First adapter dies: node still alive.
	f.report(&wire.Report{Leader: ip(1, 9), Version: 2, Left: []transport.IP{ip(1, 4)}})
	if !f.c.NodeAlive("web") {
		t.Fatal("node dead with one live adapter")
	}
	if f.bus.Count(event.NodeFailed) != 0 {
		t.Fatal("premature NodeFailed")
	}
	// Second adapter dies: node failed.
	f.report(&wire.Report{Leader: ip(2, 9), Version: 2, Left: []transport.IP{ip(2, 4)}})
	if f.c.NodeAlive("web") {
		t.Fatal("node alive with all adapters dead")
	}
	nf := f.bus.Filter(event.NodeFailed)
	if len(nf) != 1 || nf[0].Node != "web" {
		t.Fatalf("NodeFailed events = %v", nf)
	}
	// Recovery: one adapter rejoins.
	f.report(&wire.Report{Leader: ip(2, 9), Version: 3,
		Members: []wire.Member{{IP: ip(2, 4), Node: "web"}}})
	if !f.c.NodeAlive("web") {
		t.Fatal("node not recovered")
	}
	if f.bus.Count(event.NodeRecovered) != 1 {
		t.Fatal("no NodeRecovered")
	}
}

func TestSwitchCorrelation(t *testing.T) {
	db := configdb.New()
	_ = db.AddAdapter(configdb.AdapterSpec{IP: ip(1, 1), Node: "na", Index: 0, VLAN: 1, Switch: "sw-x", Port: 1})
	_ = db.AddAdapter(configdb.AdapterSpec{IP: ip(1, 2), Node: "nb", Index: 0, VLAN: 1, Switch: "sw-x", Port: 2})
	_ = db.AddAdapter(configdb.AdapterSpec{IP: ip(1, 3), Node: "nc", Index: 0, VLAN: 1, Switch: "sw-y", Port: 1})
	f := newFixture(t, db)
	f.full(ip(1, 3), 1,
		wire.Member{IP: ip(1, 3), Node: "nc", Admin: true},
		wire.Member{IP: ip(1, 2), Node: "nb", Admin: true},
		wire.Member{IP: ip(1, 1), Node: "na", Admin: true})
	f.report(&wire.Report{Leader: ip(1, 3), Version: 2, Left: []transport.IP{ip(1, 1), ip(1, 2)}})
	sf := f.bus.Filter(event.SwitchFailed)
	if len(sf) != 1 || sf[0].Node != "sw-x" {
		t.Fatalf("SwitchFailed = %v", sf)
	}
	// One adapter returns: switch recovered.
	f.report(&wire.Report{Leader: ip(1, 3), Version: 3,
		Members: []wire.Member{{IP: ip(1, 1), Node: "na", Admin: true}}})
	if f.bus.Count(event.SwitchRecovered) != 1 {
		t.Fatal("no SwitchRecovered")
	}
}

func TestExpectedMoveSuppression(t *testing.T) {
	f := newFixture(t, nil)
	f.full(ip(1, 5), 1, member(1, 5, "n5", true), member(1, 4, "mover", true))
	f.full(ip(2, 5), 1, wire.Member{IP: ip(2, 5), Node: "x"})
	// Register the expectation as MoveAdapter would.
	f.c.expectedMoves[ip(1, 4)] = f.sched.Now() + f.c.cfg.MoveWindow
	f.report(&wire.Report{Leader: ip(1, 5), Version: 2, Left: []transport.IP{ip(1, 4)}})
	fails := f.bus.Filter(event.AdapterFailed)
	if len(fails) != 1 || !fails[0].Suppressed {
		t.Fatalf("expected suppressed failure, got %v", fails)
	}
	// Join on the new segment completes the move.
	f.report(&wire.Report{Leader: ip(2, 5), Version: 2,
		Members: []wire.Member{member(1, 4, "mover", true)}})
	moves := f.bus.Filter(event.NodeMoved)
	if len(moves) != 1 || moves[0].Detail != "expected (central-initiated)" {
		t.Fatalf("moves = %v", moves)
	}
	if _, still := f.c.expectedMoves[ip(1, 4)]; still {
		t.Fatal("expectation not cleared")
	}
}

func TestUnexpectedMoveInference(t *testing.T) {
	f := newFixture(t, nil)
	f.full(ip(1, 5), 1, member(1, 5, "n5", true), member(1, 4, "mover", true))
	f.full(ip(2, 5), 1, wire.Member{IP: ip(2, 5), Node: "x"})
	f.report(&wire.Report{Leader: ip(1, 5), Version: 2, Left: []transport.IP{ip(1, 4)}})
	fails := f.bus.Filter(event.AdapterFailed)
	if len(fails) != 1 || fails[0].Suppressed {
		t.Fatalf("unexpected move's failure must not be suppressed: %v", fails)
	}
	f.sched.RunFor(10 * time.Second) // still inside MoveWindow
	f.report(&wire.Report{Leader: ip(2, 5), Version: 2,
		Members: []wire.Member{member(1, 4, "mover", true)}})
	moves := f.bus.Filter(event.NodeMoved)
	if len(moves) != 1 || moves[0].Detail != "UNEXPECTED" {
		t.Fatalf("moves = %v", moves)
	}
	if f.bus.Count(event.VerifyMismatch) == 0 {
		t.Fatal("unplanned move not flagged")
	}
}

func TestRejoinOutsideWindowIsRecovery(t *testing.T) {
	f := newFixture(t, nil)
	f.full(ip(1, 5), 1, member(1, 5, "n5", true), member(1, 4, "n4", true))
	f.report(&wire.Report{Leader: ip(1, 5), Version: 2, Left: []transport.IP{ip(1, 4)}})
	f.sched.RunFor(f.c.cfg.MoveWindow + time.Second)
	f.report(&wire.Report{Leader: ip(1, 5), Version: 3,
		Members: []wire.Member{member(1, 4, "n4", true)}})
	if f.bus.Count(event.NodeMoved) != 0 {
		t.Fatal("late rejoin misread as a move")
	}
	if f.bus.Count(event.AdapterRecovered) != 1 {
		t.Fatal("no AdapterRecovered")
	}
}

func TestSameGroupRejoinIsRecoveryNotMove(t *testing.T) {
	f := newFixture(t, nil)
	f.full(ip(1, 5), 1, member(1, 5, "n5", true), member(1, 4, "n4", true))
	f.report(&wire.Report{Leader: ip(1, 5), Version: 2, Left: []transport.IP{ip(1, 4)}})
	f.report(&wire.Report{Leader: ip(1, 5), Version: 3,
		Members: []wire.Member{member(1, 4, "n4", true)}})
	if f.bus.Count(event.NodeMoved) != 0 {
		t.Fatal("same-group rejoin misread as a move")
	}
	if f.bus.Count(event.AdapterRecovered) != 1 {
		t.Fatal("no AdapterRecovered")
	}
}

func TestStability(t *testing.T) {
	f := newFixture(t, nil)
	if f.c.Stable() {
		t.Fatal("stable with empty view")
	}
	f.full(ip(1, 5), 1, member(1, 5, "n5", true))
	if f.c.Stable() {
		t.Fatal("stable immediately after change")
	}
	f.sched.RunFor(6 * time.Second)
	if !f.c.Stable() {
		t.Fatal("not stable after quiet Tgsc")
	}
	want := f.c.StableAt()
	if want >= 6*time.Second || want < 5*time.Second {
		t.Fatalf("StableAt = %v", want)
	}
	// Any change resets stability.
	f.report(&wire.Report{Leader: ip(1, 5), Version: 2,
		Members: []wire.Member{member(1, 4, "n4", true)}})
	if f.c.Stable() {
		t.Fatal("stable right after delta")
	}
}

func TestDeactivateStopsProcessing(t *testing.T) {
	f := newFixture(t, nil)
	f.c.Deactivate()
	f.full(ip(1, 5), 1, member(1, 5, "n5", true))
	if len(f.c.Groups()) != 0 {
		t.Fatal("inactive central applied a report")
	}
	if f.c.Active() {
		t.Fatal("still active")
	}
}

func TestMoveAdapterErrors(t *testing.T) {
	f := newFixture(t, nil) // no db
	gotErr := make(chan error, 1)
	f.c.MoveAdapter(ip(1, 1), 100, func(err error) { gotErr <- err })
	select {
	case err := <-gotErr:
		if err == nil {
			t.Fatal("MoveAdapter without db succeeded")
		}
	default:
		t.Fatal("no callback")
	}
}

func TestVerifyInactive(t *testing.T) {
	db := configdb.New()
	f := newFixture(t, db)
	f.c.Deactivate()
	if ms := f.c.Verify(); ms != nil {
		t.Fatal("inactive verify returned findings")
	}
}
