// Package exp regenerates the paper's evaluation artifacts: every
// experiment in DESIGN.md §5 (Figure 5, Formula 1, the beacon-loss
// analysis, and the quantitative versions of the §3/§4.2 claims) is a
// function producing a printable table. cmd/gsbench prints them;
// bench_test.go wraps them in testing.B harnesses; EXPERIMENTS.md records
// paper-vs-measured.
package exp

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a printable experiment result.
type Table struct {
	ID      string // experiment id, e.g. "E1/fig5"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table, aligned, with a header rule.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "== %s — %s ==\n", t.ID, t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Columns)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total-2))
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// secs renders a duration as seconds with one decimal.
func secs(d time.Duration) string { return fmt.Sprintf("%.1f", d.Seconds()) }

// secs2 renders a duration as seconds with two decimals.
func secs2(d time.Duration) string { return fmt.Sprintf("%.2f", d.Seconds()) }
