package detect

import (
	"testing"
	"time"

	"repro/internal/transport"
)

// Back-to-back evictions: two ring-adjacent members die inside the same
// heartbeat interval. In the unidirectional ring the second victim's only
// monitor IS the first victim, so it cannot be detected at all until the
// first eviction commits and the survivor's monitor re-targets onto it —
// the cascade the paper's §3 ring heal depends on. This table test pins
// that re-targeting: who may report before the first eviction, who must
// report after it, that the re-targeted monitor grants a fresh grace
// window (no insta-suspicion from silence it never observed), and that
// the ring is quiet once both are evicted.
func TestAdjacentDeathsCascadeAcrossEvictions(t *testing.T) {
	// Members descending: 9 8 7 6 5 4 3 2 1. Monitor(x) = RightOf(x), so
	// 4 monitors 5, 5 monitors 6: killing 5 and 6 leaves 6 unwatched.
	first, second := ip(5), ip(6)
	cases := []struct {
		kind Kind
		// reporters of `second` before the first eviction. Uni: nobody
		// (its monitor died with it). Bi: its other neighbor ip(7).
		preSecond []transport.IP
		// reporters of `second` after the first eviction re-targets the
		// ring. ip(4) is the newly assigned monitor in both modes; in the
		// bidirectional ring ip(7) keeps re-raising too.
		postSecond []transport.IP
	}{
		{Ring, nil, []transport.IP{ip(4)}},
		{BiRing, []transport.IP{ip(7)}, []transport.IP{ip(4), ip(7)}},
	}
	for _, tc := range cases {
		t.Run(tc.kind.String(), func(t *testing.T) {
			n := newFakeNet(21)
			p := fastParams() // interval 100ms, miss 3 => 300ms window
			window := time.Duration(p.MissThreshold) * p.Interval
			view := buildGroup(n, tc.kind, p, 9)
			runFor(n, 2*time.Second)

			n.nodes[first].alive = false
			n.nodes[second].alive = false
			runFor(n, 5*time.Second)

			reporters := func(victim transport.IP) map[transport.IP][]suspicion {
				out := map[transport.IP][]suspicion{}
				for a, fn := range n.nodes {
					for _, s := range fn.suspects {
						if s.suspect == victim {
							out[a] = append(out[a], s)
						}
					}
				}
				return out
			}

			if got := reporters(first); len(got) == 0 {
				t.Fatalf("first victim %v never suspected", first)
			}
			got := reporters(second)
			if len(got) != len(tc.preSecond) {
				t.Fatalf("pre-eviction reporters of %v = %v, want %v", second, got, tc.preSecond)
			}
			for _, want := range tc.preSecond {
				if len(got[want]) == 0 {
					t.Fatalf("pre-eviction: %v did not report %v (got %v)", want, second, got)
				}
			}

			// The leader evicts the first victim; every survivor installs
			// the new view and the ring re-targets around the hole.
			for _, fn := range n.nodes {
				fn.suspects = nil
			}
			view = view.Without(first)
			n.reconfigureAll(view)
			retargeted := n.sched.Now()
			runFor(n, 5*time.Second)

			got = reporters(second)
			if len(got) != len(tc.postSecond) {
				t.Fatalf("post-eviction reporters of %v = %v, want %v", second, got, tc.postSecond)
			}
			for _, want := range tc.postSecond {
				if len(got[want]) == 0 {
					t.Fatalf("post-eviction: %v did not report %v (got %v)", want, second, got)
				}
			}
			// The re-targeted monitor never heard from its new left
			// neighbor, but its silence clock must start at the
			// reconfigure — a fresh grace window, not an instant verdict
			// from silence it never observed.
			if first := got[ip(4)][0].at; first < retargeted+window {
				t.Fatalf("re-targeted monitor reported after %v, inside the fresh %v grace window",
					first-retargeted, window)
			}
			// No survivor may be caught in the crossfire.
			for a, fn := range n.nodes {
				for _, s := range fn.suspects {
					if s.suspect != second {
						t.Fatalf("%v suspected live member %v during the cascade", a, s.suspect)
					}
				}
			}

			// Second eviction closes the hole; the ring must go quiet.
			for _, fn := range n.nodes {
				fn.suspects = nil
			}
			n.reconfigureAll(view.Without(second))
			runFor(n, 10*time.Second)
			if s := n.allSuspicions(); len(s) != 0 {
				t.Fatalf("suspicions after both evictions: %v", s)
			}
		})
	}
}

// A reconfiguration that keeps a monitor's neighbor assignment must NOT
// restart that neighbor's silence clock: evidence of an in-progress
// failure survives unrelated view changes, so detection latency doesn't
// stretch when other members come and go mid-silence.
func TestReconfigurePreservesSilenceClockForKeptNeighbor(t *testing.T) {
	n := newFakeNet(22)
	p := fastParams()
	window := time.Duration(p.MissThreshold) * p.Interval
	view := buildGroup(n, Ring, p, 9)
	runFor(n, 2*time.Second)

	// ip(4) monitors ip(5). Kill ip(5), let part of the window elapse,
	// then commit an unrelated eviction (ip(8)) that changes the view but
	// keeps ip(4)'s left neighbor.
	victim := ip(5)
	n.nodes[victim].alive = false
	killedAt := n.sched.Now()
	runFor(n, window/2)
	n.nodes[ip(8)].alive = false // silence it so it doesn't linger half-configured
	n.reconfigureAll(view.Without(ip(8)))
	runFor(n, 5*time.Second)

	var first time.Duration
	for _, s := range n.nodes[ip(4)].suspects {
		if s.suspect == victim {
			first = s.at
			break
		}
	}
	if first == 0 {
		t.Fatalf("kept neighbor %v never reported; got %v", victim, n.nodes[ip(4)].suspects)
	}
	// Had the reconfigure reset the clock, the earliest report would be
	// window/2 later than this bound.
	if first > killedAt+window+3*p.Interval {
		t.Fatalf("report at %v after death — the silence clock restarted on reconfigure",
			first-killedAt)
	}
}
