// Failover: GulfStream surviving everything the paper's §3 enumerates.
//
// In sequence: a receive-dead adapter (the loopback-test case), an AMG
// leader crash (successor takeover via the committed succession order), a
// whole-switch failure (correlated from its wired adapters), and finally
// the death of the node hosting GulfStream Central itself (a new Central
// is elected among the administrative adapters and rebuilds the farm view
// from full re-reports).
//
// Run with:
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"time"

	gulfstream "repro"
)

func main() {
	f, err := gulfstream.NewFarm(gulfstream.Spec{
		Seed:            3,
		AdminNodes:      3,
		UniformNodes:    10,
		UniformAdapters: 2,
		NodesPerSwitch:  7, // two switches
		StartSkew:       2 * time.Second,
		RecordEvents:    true,
	})
	if err != nil {
		log.Fatal(err)
	}
	f.Bus.Subscribe(func(e gulfstream.Event) { fmt.Printf("  event %v\n", e) })

	fmt.Println("== boot ==")
	f.Start()
	if _, ok := f.RunUntilStable(2 * time.Minute); !ok {
		log.Fatal("never stabilized")
	}
	central := f.ActiveCentral()

	// 1. Receive-dead adapter: it can still transmit, so a naive ring
	// would blame its neighbor; the loopback self-test prevents that.
	victim := f.Nodes["node-004"].Adapters[1]
	fmt.Printf("\n== 1. adapter %v goes receive-dead ==\n", victim)
	if err := f.FailAdapter(victim, gulfstream.FailRecv); err != nil {
		log.Fatal(err)
	}
	f.RunFor(40 * time.Second)
	for _, e := range f.Bus.Filter(gulfstream.AdapterFailed) {
		if e.Adapter != victim {
			log.Fatalf("healthy adapter %v was blamed", e.Adapter)
		}
	}
	fmt.Println("  -> only the broken adapter was reported (loopback test worked)")
	_ = f.FailAdapter(victim, gulfstream.Healthy)
	f.RunFor(40 * time.Second)

	// 2. AMG leader crash.
	dataView, _ := f.Daemons["node-000"].View(f.Nodes["node-000"].Adapters[1])
	leaderIP := dataView.Leader()
	successor := dataView.Successor()
	var leaderNode string
	for name, info := range f.Nodes {
		for _, ip := range info.Adapters {
			if ip == leaderIP {
				leaderNode = name
			}
		}
	}
	fmt.Printf("\n== 2. AMG leader %v (node %s) crashes; committed successor is %v ==\n",
		leaderIP, leaderNode, successor)
	if err := f.KillNode(leaderNode); err != nil {
		log.Fatal(err)
	}
	f.RunFor(60 * time.Second)
	newView, ok := f.Daemons["node-000"].View(f.Nodes["node-000"].Adapters[1])
	if !ok || newView.Leader() != successor {
		log.Fatalf("successor takeover failed: leader now %v", newView.Leader())
	}
	fmt.Printf("  -> group recommitted under %v\n", newView.Leader())
	_ = f.RestartNode(leaderNode)
	f.RunFor(60 * time.Second)

	// 3. Switch failure: every adapter wired to sw-01 goes dark at once.
	fmt.Println("\n== 3. switch sw-01 loses power ==")
	if err := f.KillSwitch("sw-01"); err != nil {
		log.Fatal(err)
	}
	f.RunFor(60 * time.Second)
	swFails := f.Bus.Filter(gulfstream.SwitchFailed)
	if len(swFails) == 0 {
		log.Fatal("switch failure was not correlated")
	}
	fmt.Printf("  -> Central correlated the adapter deaths: %v\n", swFails[len(swFails)-1])
	_ = f.RestoreSwitch("sw-01")
	f.RunFor(90 * time.Second)

	// 4. Central's own node dies.
	var hostName string
	for name, d := range f.Daemons {
		if d.Running() && d.HostingCentral() {
			hostName = name
		}
	}
	fmt.Printf("\n== 4. GulfStream Central host %s crashes ==\n", hostName)
	groupsBefore := central.GroupCount()
	if err := f.KillNode(hostName); err != nil {
		log.Fatal(err)
	}
	if _, ok := f.RunUntilStable(3 * time.Minute); !ok {
		log.Fatal("no stability after central failover")
	}
	newCentral := f.ActiveCentral()
	if newCentral == central {
		log.Fatal("central did not move")
	}
	fmt.Printf("  -> new Central elected; view rebuilt with %d groups (had %d)\n",
		newCentral.GroupCount(), groupsBefore)
	fmt.Println("\nall four failure classes handled.")
}
