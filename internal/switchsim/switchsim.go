// Package switchsim simulates the managed Ethernet switches of a
// multi-domain server farm. The switches' VLAN tables are the single
// source of truth for which adapters share a broadcast segment: the Fabric
// implements netsim.SegmentResolver, so rewriting a port's VLAN — directly
// or through the switch's SNMP agent, exactly as GulfStream Central does
// in the paper — instantly re-scopes multicast and unicast reachability.
//
// VLANs are fabric-wide (trunked between switches), matching the paper's
// Océano testbed where private VLANs span the switched fast-Ethernet
// network. A segment is named "vlan-<id>".
package switchsim

import (
	"fmt"
	"sort"

	"repro/internal/snmp"
	"repro/internal/transport"
)

// SegmentName returns the netsim segment name of a VLAN.
func SegmentName(vlan int) string { return fmt.Sprintf("vlan-%d", vlan) }

// Enterprise MIB layout for the simulated switch (loosely modelled on the
// paper's Cisco 6509 management):
//
//	1.3.6.1.4.1.2.6509.1.1        sysName        (string, ro)
//	1.3.6.1.4.1.2.6509.1.2        numPorts       (int,    ro)
//	1.3.6.1.4.1.2.6509.2.1.<p>    portVLAN       (int,    rw)
//	1.3.6.1.4.1.2.6509.3.1.<p>    portOperStatus (int 1=up 2=down, rw)
//	1.3.6.1.4.1.2.6509.4.1.<p>    portAdapterIP  (string, ro)
var (
	oidBase            = snmp.MustOID("1.3.6.1.4.1.2.6509")
	OIDSysName         = oidBase.Append(1, 1)
	OIDNumPorts        = oidBase.Append(1, 2)
	oidPortVLANBase    = oidBase.Append(2, 1)
	oidPortStatusBase  = oidBase.Append(3, 1)
	oidPortAdapterBase = oidBase.Append(4, 1)
)

// OIDPortVLAN returns the OID holding port p's VLAN assignment.
func OIDPortVLAN(p int) snmp.OID { return oidPortVLANBase.Append(uint32(p)) }

// OIDPortStatus returns the OID holding port p's oper status.
func OIDPortStatus(p int) snmp.OID { return oidPortStatusBase.Append(uint32(p)) }

// OIDPortAdapter returns the OID naming the adapter wired to port p.
func OIDPortAdapter(p int) snmp.OID { return oidPortAdapterBase.Append(uint32(p)) }

// OIDPortAdapterTable is the prefix of the port->adapter wiring table,
// for GETNEXT walks.
func OIDPortAdapterTable() snmp.OID { return oidPortAdapterBase.Append() }

// OIDPortVLANTable is the prefix of the port->VLAN table.
func OIDPortVLANTable() snmp.OID { return oidPortVLANBase.Append() }

// Port status values.
const (
	PortUp   = 1
	PortDown = 2
)

// Port is one switch port.
type Port struct {
	Number  int
	VLAN    int
	Up      bool
	Adapter transport.IP // 0 if nothing wired
}

// Switch is a simulated managed switch.
type Switch struct {
	name   string
	fabric *Fabric
	ports  map[int]*Port
	up     bool
	mib    *snmp.MapMIB
	mgmtIP transport.IP
}

// Name returns the switch's name.
func (s *Switch) Name() string { return s.name }

// Up reports whether the switch is powered.
func (s *Switch) Up() bool { return s.up }

// SetUp powers the switch on or off. A powered-off switch disconnects
// every wired adapter — the paper's switch-failure correlation case.
func (s *Switch) SetUp(up bool) {
	if s.up == up {
		return
	}
	s.up = up
	s.fabric.version++
	for _, p := range s.ports {
		if p.Adapter != 0 {
			s.fabric.changed(p.Adapter)
		}
	}
}

// ManagementIP returns the address of the switch's management adapter
// (zero if none was attached).
func (s *Switch) ManagementIP() transport.IP { return s.mgmtIP }

// Ports lists the switch's ports in number order.
func (s *Switch) Ports() []*Port {
	nums := make([]int, 0, len(s.ports))
	for n := range s.ports {
		nums = append(nums, n)
	}
	sort.Ints(nums)
	out := make([]*Port, len(nums))
	for i, n := range nums {
		out[i] = s.ports[n]
	}
	return out
}

// Port returns port n, or nil.
func (s *Switch) Port(n int) *Port { return s.ports[n] }

// Connect wires an adapter into port n on the given VLAN, creating the
// port. It panics if the port is occupied or the adapter is already wired
// somewhere: farm wiring is static, a conflict is a construction bug.
func (s *Switch) Connect(n int, adapter transport.IP, vlan int) {
	if p, ok := s.ports[n]; ok && p.Adapter != 0 {
		panic(fmt.Sprintf("switchsim: %s port %d already wired to %v", s.name, n, p.Adapter))
	}
	if prev, ok := s.fabric.where[adapter]; ok {
		panic(fmt.Sprintf("switchsim: adapter %v already wired to %s port %d", adapter, prev.sw.name, prev.port))
	}
	p := &Port{Number: n, VLAN: vlan, Up: true, Adapter: adapter}
	s.ports[n] = p
	s.fabric.where[adapter] = location{sw: s, port: n}
	s.defineMIBPort(p)
	s.fabric.bump(adapter)
}

// SetPortVLAN reassigns port n's VLAN (the VLAN-move primitive).
func (s *Switch) SetPortVLAN(n, vlan int) error {
	p, ok := s.ports[n]
	if !ok {
		return fmt.Errorf("switchsim: %s has no port %d", s.name, n)
	}
	if p.VLAN == vlan {
		return nil
	}
	p.VLAN = vlan
	_ = s.mib.Update(OIDPortVLAN(n), snmp.Integer(int64(vlan)))
	s.fabric.bump(p.Adapter)
	return nil
}

// SetPortUp toggles port n's link state.
func (s *Switch) SetPortUp(n int, up bool) error {
	p, ok := s.ports[n]
	if !ok {
		return fmt.Errorf("switchsim: %s has no port %d", s.name, n)
	}
	if p.Up == up {
		return nil
	}
	p.Up = up
	status := PortDown
	if up {
		status = PortUp
	}
	_ = s.mib.Update(OIDPortStatus(n), snmp.Integer(int64(status)))
	s.fabric.bump(p.Adapter)
	return nil
}

// MIB exposes the switch's management view, for attaching an SNMP agent.
func (s *Switch) MIB() snmp.MIB { return s.mib }

// AttachAgent binds an SNMP agent serving this switch's MIB to the given
// management endpoint (an adapter on the administrative VLAN).
func (s *Switch) AttachAgent(ep transport.Endpoint, community string) *snmp.Agent {
	s.mgmtIP = ep.LocalIP()
	return snmp.NewAgent(ep, community, s.mib)
}

func (s *Switch) defineMIBPort(p *Port) {
	s.mib.Define(OIDPortVLAN(p.Number), snmp.Integer(int64(p.VLAN)), true)
	st := PortDown
	if p.Up {
		st = PortUp
	}
	s.mib.Define(OIDPortStatus(p.Number), snmp.Integer(int64(st)), true)
	s.mib.Define(OIDPortAdapter(p.Number), snmp.OctetString(p.Adapter.String()), false)
	_ = s.mib.Update(OIDNumPorts, snmp.Integer(int64(len(s.ports))))
}

// mibSet applies SNMP SETs to switch state. Called via MapMIB.OnSet.
func (s *Switch) mibSet(oid snmp.OID, v snmp.Value) {
	if oid.HasPrefix(oidPortVLANBase) && len(oid) == len(oidPortVLANBase)+1 {
		port := int(oid[len(oid)-1])
		if p, ok := s.ports[port]; ok && v.Kind == snmp.KindInteger {
			if p.VLAN != int(v.Int) {
				p.VLAN = int(v.Int)
				s.fabric.bump(p.Adapter)
			}
		}
		return
	}
	if oid.HasPrefix(oidPortStatusBase) && len(oid) == len(oidPortStatusBase)+1 {
		port := int(oid[len(oid)-1])
		if p, ok := s.ports[port]; ok && v.Kind == snmp.KindInteger {
			up := v.Int == PortUp
			if p.Up != up {
				p.Up = up
				s.fabric.bump(p.Adapter)
			}
		}
	}
}

func (s *Switch) mibValidate(oid snmp.OID, v snmp.Value) error {
	switch {
	case oid.HasPrefix(oidPortVLANBase):
		if v.Kind != snmp.KindInteger || v.Int < 1 || v.Int > 4094 {
			return fmt.Errorf("%w: VLAN id %v", snmp.ErrBadValue, v)
		}
	case oid.HasPrefix(oidPortStatusBase):
		if v.Kind != snmp.KindInteger || (v.Int != PortUp && v.Int != PortDown) {
			return fmt.Errorf("%w: port status %v", snmp.ErrBadValue, v)
		}
	}
	return nil
}

type location struct {
	sw   *Switch
	port int
}

// Fabric is the collection of switches in the farm. It implements
// netsim.SegmentResolver — adapters reach each other exactly when both
// hang off powered switches, live ports, and the same VLAN — and
// netsim.NotifyingResolver, attributing every topology change to the
// adapter it affects so the network's segment cache updates incrementally.
type Fabric struct {
	switches map[string]*Switch
	names    []string
	where    map[transport.IP]location
	version  uint64
	onIP     func(transport.IP)
	onBulk   func()
}

// NewFabric returns an empty fabric.
func NewFabric() *Fabric {
	return &Fabric{
		switches: make(map[string]*Switch),
		where:    make(map[transport.IP]location),
		version:  1,
	}
}

// Notify implements netsim.NotifyingResolver.
func (f *Fabric) Notify(perIP func(transport.IP), bulk func()) {
	f.onIP, f.onBulk = perIP, bulk
}

// bump records a topology change attributed to one adapter.
func (f *Fabric) bump(ip transport.IP) {
	f.version++
	f.changed(ip)
}

func (f *Fabric) changed(ip transport.IP) {
	if f.onIP != nil && ip != 0 {
		f.onIP(ip)
	}
}

// AddSwitch creates a switch.
func (f *Fabric) AddSwitch(name string) *Switch {
	if _, dup := f.switches[name]; dup {
		panic("switchsim: duplicate switch " + name)
	}
	s := &Switch{name: name, fabric: f, ports: make(map[int]*Port), up: true, mib: snmp.NewMapMIB()}
	s.mib.Define(OIDSysName, snmp.OctetString(name), false)
	s.mib.Define(OIDNumPorts, snmp.Integer(0), false)
	s.mib.OnSet = s.mibSet
	s.mib.Validate = s.mibValidate
	f.switches[name] = s
	f.names = append(f.names, name)
	sort.Strings(f.names)
	f.version++ // a fresh switch has no wired adapters: nothing to re-resolve
	return s
}

// Switch returns the named switch, or nil.
func (f *Fabric) Switch(name string) *Switch { return f.switches[name] }

// Switches lists switches in name order.
func (f *Fabric) Switches() []*Switch {
	out := make([]*Switch, len(f.names))
	for i, n := range f.names {
		out[i] = f.switches[n]
	}
	return out
}

// Locate returns the switch and port an adapter is wired to.
func (f *Fabric) Locate(adapter transport.IP) (sw *Switch, port int, ok bool) {
	loc, ok := f.where[adapter]
	if !ok {
		return nil, 0, false
	}
	return loc.sw, loc.port, true
}

// SegmentOf implements netsim.SegmentResolver.
func (f *Fabric) SegmentOf(ip transport.IP) (string, bool) {
	loc, ok := f.where[ip]
	if !ok {
		return "", false
	}
	if !loc.sw.up {
		return "", false
	}
	p := loc.sw.ports[loc.port]
	if p == nil || !p.Up {
		return "", false
	}
	return SegmentName(p.VLAN), true
}

// Version implements netsim.SegmentResolver.
func (f *Fabric) Version() uint64 { return f.version }

// AdaptersOnSwitch lists every adapter wired to the named switch, in
// ascending IP order — the wiring view GulfStream Central correlates
// against when inferring switch failures.
func (f *Fabric) AdaptersOnSwitch(name string) []transport.IP {
	var out []transport.IP
	for ip, loc := range f.where {
		if loc.sw.name == name {
			out = append(out, ip)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// VLANOf returns the VLAN an adapter's port is assigned to.
func (f *Fabric) VLANOf(adapter transport.IP) (int, bool) {
	loc, ok := f.where[adapter]
	if !ok {
		return 0, false
	}
	return loc.sw.ports[loc.port].VLAN, true
}
