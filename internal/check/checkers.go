package check

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// All returns one instance of every invariant checker, the default set
// for chaos runs.
func All() []Checker {
	return []Checker{
		NewMonotoneVersions(),
		NewSingleIncarnation(),
		NewTwoPC(),
		NewEvictionEvidence(),
		NewSuspicionEvidence(),
		NewVerdictRequiresProbe(),
		NewNoDeadInView(),
		NewJournalConsistent(),
	}
}

// gvKey identifies one group incarnation: lineage leader + view version.
type gvKey struct {
	g transport.IP
	v uint64
}

// txnKey identifies one 2PC transaction: committing leader + round token.
type txnKey struct {
	g   transport.IP
	tok uint64
}

// pairKey identifies an (observer, subject) adapter pair.
type pairKey struct {
	self transport.IP
	peer transport.IP
}

// isAdapterReset reports whether rec wipes the adapter's group lineage:
// reforming fresh (orphan, eviction, formation) or a crash-restart
// re-entering the beacon phase ungrouped (KBeaconSent with Group == 0).
// After any of these the adapter's version counter legitimately restarts.
func isAdapterReset(rec trace.Record) bool {
	switch rec.Kind {
	case trace.KOrphaned, trace.KEvicted, trace.KFormed:
		return true
	case trace.KBeaconSent:
		return rec.Group == 0
	}
	return false
}

// viewFingerprint renders the committed membership of the adapter that
// just traced a KViewCommit (commitView installs the view before
// tracing, so ViewOf sees it). Empty when the context can't resolve it.
func viewFingerprint(ctx Context, self transport.IP) string {
	v, ok := ctx.ViewOf(self)
	if !ok {
		return ""
	}
	ips := v.IPs()
	ss := make([]string, len(ips))
	for i, ip := range ips {
		ss[i] = ip.String()
	}
	sort.Strings(ss)
	return strings.Join(ss, ",")
}

// ---------------------------------------------------------------------------
// monotone-versions: within one lineage (same leader IP), an adapter
// never installs a view older than one it already holds. The member-side
// guards in onPrepare/onCommit are supposed to make regressions
// structurally impossible; this watches them from the outside.

type monotoneVersions struct {
	last map[transport.IP]gvKey // adapter -> last committed incarnation
}

// NewMonotoneVersions builds the monotone-versions checker.
func NewMonotoneVersions() Checker {
	return &monotoneVersions{last: map[transport.IP]gvKey{}}
}

func (c *monotoneVersions) Name() string { return "monotone-versions" }

func (c *monotoneVersions) Observe(ctx Context, rec trace.Record, report func(string)) {
	if isAdapterReset(rec) {
		delete(c.last, rec.Self)
		return
	}
	if rec.Kind != trace.KViewCommit {
		return
	}
	prev, ok := c.last[rec.Self]
	if ok && prev.g == rec.Group && rec.Version < prev.v {
		report(fmt.Sprintf("adapter %v installed view v%d of lineage %v after already holding v%d",
			rec.Self, rec.Version, rec.Group, prev.v))
	}
	c.last[rec.Self] = gvKey{rec.Group, rec.Version}
}

// ---------------------------------------------------------------------------
// single-incarnation: every adapter that commits incarnation (G, V) must
// install the identical membership — a disagreement means two adapters
// think they are in the same group version with different peers, the
// split-brain a stale 2PC ack can cause. When the leader adapter G
// resets (crash-restart reuses versions from 1), its lineage's recorded
// incarnations are discarded.

type singleIncarnation struct {
	views map[gvKey]string // incarnation -> membership fingerprint
}

// NewSingleIncarnation builds the single-incarnation checker.
func NewSingleIncarnation() Checker {
	return &singleIncarnation{views: map[gvKey]string{}}
}

func (c *singleIncarnation) Name() string { return "single-incarnation" }

func (c *singleIncarnation) Observe(ctx Context, rec trace.Record, report func(string)) {
	if isAdapterReset(rec) {
		for k := range c.views {
			if k.g == rec.Self {
				delete(c.views, k)
			}
		}
		return
	}
	if rec.Kind != trace.KViewCommit {
		return
	}
	fp := viewFingerprint(ctx, rec.Self)
	if fp == "" {
		return
	}
	k := gvKey{rec.Group, rec.Version}
	if prev, ok := c.views[k]; ok {
		if prev != fp {
			report(fmt.Sprintf("incarnation %v/v%d committed with divergent memberships: {%s} vs {%s} at %v",
				rec.Group, rec.Version, prev, fp, rec.Self))
		}
		return
	}
	c.views[k] = fp
}

// ---------------------------------------------------------------------------
// two-phase-commit: a round token commits at most once, commits only at
// adapters that voted for it (or were folded in by a leader's direct
// refresh), and never lands after the same round aborted there.

type twoPC struct {
	committed map[txnKey]bool                  // leader committed this token
	prepared  map[txnKey]map[transport.IP]bool // adapters holding a live (non-rejected) prepare
	aborted   map[txnKey]map[transport.IP]bool // adapters that saw Abort for the token
	installed map[txnKey]map[transport.IP]bool // adapters that installed the commit
}

// NewTwoPC builds the 2PC checker.
func NewTwoPC() Checker {
	return &twoPC{
		committed: map[txnKey]bool{},
		prepared:  map[txnKey]map[transport.IP]bool{},
		aborted:   map[txnKey]map[transport.IP]bool{},
		installed: map[txnKey]map[transport.IP]bool{},
	}
}

func (c *twoPC) Name() string { return "two-phase-commit" }

func mark(m map[txnKey]map[transport.IP]bool, k txnKey, ip transport.IP) {
	s := m[k]
	if s == nil {
		s = map[transport.IP]bool{}
		m[k] = s
	}
	s[ip] = true
}

func (c *twoPC) Observe(ctx Context, rec trace.Record, report func(string)) {
	if isAdapterReset(rec) {
		// The adapter's lineage died: rounds led by it are over (a
		// crash-restarted leader process restarts its token counter, so
		// (leader, token) pairs legitimately repeat across incarnations),
		// and its own votes/installs under other leaders are forgotten.
		for _, m := range []map[txnKey]map[transport.IP]bool{c.prepared, c.aborted, c.installed} {
			for k, set := range m {
				if k.g == rec.Self {
					delete(m, k)
				} else {
					delete(set, rec.Self)
				}
			}
		}
		for k := range c.committed {
			if k.g == rec.Self {
				delete(c.committed, k)
			}
		}
		return
	}
	k := txnKey{rec.Group, rec.Token}
	switch rec.Kind {
	case trace.KPrepareRecv:
		if rec.Detail == "rejected" {
			delete(c.prepared[k], rec.Self)
		} else {
			mark(c.prepared, k, rec.Self)
		}
	case trace.KAbortRecv:
		mark(c.aborted, k, rec.Self)
		delete(c.prepared[k], rec.Self)
	case trace.KCommitSent:
		if rec.Self != rec.Group {
			report(fmt.Sprintf("commit of txn %s sent by %v, which is not the round's leader",
				rec.TxnID(), rec.Self))
		}
		if rec.Token != 0 && c.committed[k] {
			report(fmt.Sprintf("txn %s committed twice by its leader", rec.TxnID()))
		}
		c.committed[k] = true
	case trace.KCommitRecv:
		// Token 0 is the leader's unilateral view refresh for a member
		// that fell behind — not a voted round.
		if rec.Token == 0 {
			return
		}
		if c.installed[k][rec.Self] {
			report(fmt.Sprintf("adapter %v installed txn %s twice", rec.Self, rec.TxnID()))
		}
		if c.aborted[k][rec.Self] {
			report(fmt.Sprintf("adapter %v installed txn %s after aborting it", rec.Self, rec.TxnID()))
		}
		// "direct" commits adopt the view without a prepare (merge
		// fold-in); everything else must have a live prepared state.
		if rec.Detail != "direct" && !c.prepared[k][rec.Self] {
			report(fmt.Sprintf("adapter %v installed txn %s without a matching prepare", rec.Self, rec.TxnID()))
		}
		mark(c.installed, k, rec.Self)
	}
}

// ---------------------------------------------------------------------------
// eviction-evidence: when a leader commits a view that drops a member,
// the leader must hold evidence for the removal — a verification verdict
// (KVerdictDead) for that member, or a 2PC retarget since its previous
// commit (the member stayed silent through a voted round). A removal
// with neither is the paper's §3 false-report flaw: acting on an
// unverified suspicion. This is the checker that catches
// Config.UnsafeSkipVerify.

// evidenceKind distinguishes why a leader may drop a member.
type evidenceKind uint8

const (
	evidenceDeath  evidenceKind = iota // verified dead (or takeover of a dead leader)
	evidenceDepart                     // verified alive under a foreign lineage
)

type evictionEvidence struct {
	prevView map[transport.IP][]transport.IP // leader adapter -> members of its last committed view
	verdicts map[pairKey]evidenceKind        // (leader, member) -> unconsumed removal evidence
	retarget map[transport.IP]bool           // leader -> retarget seen since last commit
}

// NewEvictionEvidence builds the eviction-evidence checker.
func NewEvictionEvidence() Checker {
	return &evictionEvidence{
		prevView: map[transport.IP][]transport.IP{},
		verdicts: map[pairKey]evidenceKind{},
		retarget: map[transport.IP]bool{},
	}
}

func (c *evictionEvidence) Name() string { return "eviction-evidence" }

func (c *evictionEvidence) Observe(ctx Context, rec trace.Record, report func(string)) {
	if isAdapterReset(rec) {
		delete(c.prevView, rec.Self)
		delete(c.retarget, rec.Self)
		return
	}
	switch rec.Kind {
	case trace.KVerdictDead:
		c.verdicts[pairKey{rec.Self, rec.Peer}] = evidenceDeath
	case trace.KLeaderTakeover:
		// A successor promotes itself only after verifying the old
		// leader dead — or alive under another lineage (it defected).
		// Either way the takeover commit legitimately drops it.
		c.verdicts[pairKey{rec.Self, rec.Peer}] = evidenceDeath
	case trace.KVerdictAlive:
		// Alive under a foreign lineage is departure evidence (the
		// protocol removes movers without a death declaration). When the
		// suspect turns out to be one of ours, KFalseAccusation follows
		// immediately and voids this.
		c.verdicts[pairKey{rec.Self, rec.Peer}] = evidenceDepart
	case trace.KFalseAccusation:
		delete(c.verdicts, pairKey{rec.Self, rec.Peer})
	case trace.KPrepareAck:
		// The member voted on a live round: it is demonstrably alive, so
		// a stale death verdict must not justify a future drop. Departure
		// evidence is different — the mover stays reachable and may well
		// ack a round that was already in flight when the leader verified
		// it under a foreign lineage, while the queued depart executes
		// one or two commits later.
		if c.verdicts[pairKey{rec.Self, rec.Peer}] == evidenceDeath {
			delete(c.verdicts, pairKey{rec.Self, rec.Peer})
		}
	case trace.KRetarget:
		c.retarget[rec.Self] = true
	case trace.KViewCommit:
		if rec.Group != rec.Self {
			// A member's commit: its own prior view is superseded, not
			// evidence of anything. Just refresh what it holds.
			c.setView(ctx, rec.Self)
			return
		}
		v, ok := ctx.ViewOf(rec.Self)
		if !ok {
			return
		}
		for _, m := range c.prevView[rec.Self] {
			if v.Contains(m) || m == rec.Self {
				continue
			}
			pk := pairKey{rec.Self, m}
			_, hasVerdict := c.verdicts[pk]
			switch {
			case hasVerdict:
				delete(c.verdicts, pk) // evidence consumed by the removal
			case c.retarget[rec.Self]:
				// The member sat silent through a voted round; the
				// retarget is collective evidence for every drop in
				// this commit.
			default:
				report(fmt.Sprintf("leader %v committed v%d dropping %v without a dead verdict or 2PC retarget",
					rec.Self, rec.Version, m))
			}
		}
		delete(c.retarget, rec.Self)
		c.prevView[rec.Self] = v.IPs()
	}
}

func (c *evictionEvidence) setView(ctx Context, self transport.IP) {
	if v, ok := ctx.ViewOf(self); ok {
		c.prevView[self] = v.IPs()
	}
}

// ---------------------------------------------------------------------------
// suspicion-evidence: a raised suspicion must cite detector evidence —
// one of the wire-protocol suspect reasons — and, per §3, is only traced
// after the loopback self-test passed, so an unknown or empty reason
// means a suspicion fabricated outside the detection path.

type suspicionEvidence struct {
	reasons map[string]bool
}

// NewSuspicionEvidence builds the suspicion-evidence checker.
func NewSuspicionEvidence() Checker {
	return &suspicionEvidence{reasons: map[string]bool{
		wire.ReasonMissedHeartbeats.String(): true,
		wire.ReasonProbeTimeout.String():     true,
		wire.ReasonPingTimeout.String():      true,
		wire.ReasonSubgroupDead.String():     true,
		wire.ReasonStaleView.String():        true,
	}}
}

func (c *suspicionEvidence) Name() string { return "suspicion-evidence" }

func (c *suspicionEvidence) Observe(ctx Context, rec trace.Record, report func(string)) {
	if rec.Kind != trace.KSuspicionRaised {
		return
	}
	if !c.reasons[rec.Detail] {
		report(fmt.Sprintf("adapter %v raised suspicion of %v with no detector evidence (reason %q)",
			rec.Self, rec.Peer, rec.Detail))
	}
}

// ---------------------------------------------------------------------------
// verdict-requires-probe: a leader may declare a suspect dead only after
// actually probing it — every KVerdictDead must match an earlier
// KProbeSent (same adapter, same nonce) aimed at that suspect.

type verdictRequiresProbe struct {
	probes map[txnKey]transport.IP // (prober, nonce) -> probed peer
}

// NewVerdictRequiresProbe builds the verdict-requires-probe checker.
func NewVerdictRequiresProbe() Checker {
	return &verdictRequiresProbe{probes: map[txnKey]transport.IP{}}
}

func (c *verdictRequiresProbe) Name() string { return "verdict-requires-probe" }

func (c *verdictRequiresProbe) Observe(ctx Context, rec trace.Record, report func(string)) {
	switch rec.Kind {
	case trace.KProbeSent:
		c.probes[txnKey{rec.Self, rec.Token}] = rec.Peer
	case trace.KVerdictDead, trace.KVerdictAlive:
		k := txnKey{rec.Self, rec.Token}
		peer, ok := c.probes[k]
		if !ok || peer != rec.Peer {
			report(fmt.Sprintf("adapter %v reached a verdict on %v without a matching probe (nonce %d)",
				rec.Self, rec.Peer, rec.Token))
		}
		delete(c.probes, k)
	}
}

// ---------------------------------------------------------------------------
// no-dead-in-view: once a leader's verification declared a member dead,
// no later view the leader commits may still contain it — unless the
// member demonstrably came back (an alive verdict, a vote on a new
// round, or its removal completing and a fresh join).

type noDeadInView struct {
	dead map[pairKey]bool // (leader, member) -> declared dead, not yet removed
}

// NewNoDeadInView builds the no-dead-in-view checker.
func NewNoDeadInView() Checker {
	return &noDeadInView{dead: map[pairKey]bool{}}
}

func (c *noDeadInView) Name() string { return "no-dead-in-view" }

func (c *noDeadInView) Observe(ctx Context, rec trace.Record, report func(string)) {
	if isAdapterReset(rec) {
		for k := range c.dead {
			if k.self == rec.Self {
				delete(c.dead, k)
			}
		}
		return
	}
	switch rec.Kind {
	case trace.KVerdictDead:
		c.dead[pairKey{rec.Self, rec.Peer}] = true
	case trace.KVerdictAlive, trace.KFalseAccusation:
		delete(c.dead, pairKey{rec.Self, rec.Peer})
	case trace.KPrepareAck:
		// The member voted on a live round: it is back from the dead as
		// far as this leader is concerned.
		delete(c.dead, pairKey{rec.Self, rec.Peer})
	case trace.KViewCommit:
		if rec.Group != rec.Self {
			return
		}
		v, ok := ctx.ViewOf(rec.Self)
		if !ok {
			return
		}
		for k := range c.dead {
			if k.self != rec.Self {
				continue
			}
			if v.Contains(k.peer) {
				report(fmt.Sprintf("leader %v committed v%d still containing %v, which it declared dead",
					rec.Self, rec.Version, k.peer))
			} else {
				delete(c.dead, k) // eviction completed
			}
		}
	}
}

// ---------------------------------------------------------------------------
// journal-consistent: whenever a Central applies a report or replays its
// journal, folding the journal from scratch must reproduce exactly the
// live in-memory state — the durability guarantee failover relies on.

type journalConsistent struct{}

// NewJournalConsistent builds the journal-consistency checker.
func NewJournalConsistent() Checker { return journalConsistent{} }

func (journalConsistent) Name() string { return "journal-consistent" }

func (journalConsistent) Observe(ctx Context, rec trace.Record, report func(string)) {
	if rec.Kind != trace.KReportApplied && rec.Kind != trace.KJournalReplayed {
		return
	}
	if drift := ctx.JournalDrift(rec.Node); drift != "" {
		report(fmt.Sprintf("central %s journal diverged from live state: %s", rec.Node, drift))
	}
}
