// Package check is the simulation-testing subsystem: a FoundationDB-style
// harness that holds the GulfStream protocol to its invariants
// continuously — while chaos is being injected — rather than only at
// quiescence.
//
// It has three parts:
//
//   - an invariant Engine (this file and checkers.go): pluggable checkers
//     fed live from the internal/trace flight recorder via a sink, each
//     violation reported with the correlated 2PC transaction id
//     ("leader#token"), the simulated timestamp, and a bounded window of
//     surrounding trace records;
//   - a scenario engine (scenario.go): a small composable schedule DSL
//     (kill/restart node, per-mode adapter failure, partition/heal,
//     drop-profile ramp, switch outage, domain move, Central failover)
//     driven by the deterministic sim clock, replayable from a seed;
//   - an explorer and shrinker (shrink.go, internal/exp.Chaos): seed
//     sweeps that, on a violation, bisect the schedule down to a minimal
//     failing scenario re-emitted as a Go literal.
//
// The package deliberately does not import internal/farm: the farm (and
// any future runtime) satisfies the Target and Context interfaces
// structurally, which also lets farm's own tests use the engine without
// an import cycle.
package check

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/amg"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Context is the live system state a checker may consult when a record
// arrives. Because trace sinks run synchronously on the capture path —
// and commitView installs the view before tracing KViewCommit — the
// state visible here is exactly the state the record describes.
type Context interface {
	// ViewOf returns the committed membership of the adapter at ip.
	ViewOf(ip transport.IP) (amg.Membership, bool)
	// SegmentOf resolves an adapter's current broadcast segment from
	// scratch (the switch fabric's authoritative answer).
	SegmentOf(ip transport.IP) (string, bool)
	// JournalDrift describes the divergence between the named node's
	// journal fold and its live Central state ("" when consistent, not
	// journaling, or not a Central).
	JournalDrift(node string) string
}

// Violation is one invariant breach caught mid-run.
type Violation struct {
	// Checker names the invariant that fired.
	Checker string
	// Msg describes the breach.
	Msg string
	// Rec is the trace record that triggered it.
	Rec trace.Record
	// Txn is the correlated 2PC transaction id ("leader#token"), empty
	// when the trigger is not transaction-correlated.
	Txn string
	// T is the simulated time of the trigger.
	T time.Duration
	// Window is a bounded window of records surrounding the trigger
	// (the trigger is the last entry).
	Window []trace.Record
}

func (v Violation) String() string {
	s := fmt.Sprintf("[%11v] %s: %s", v.T, v.Checker, v.Msg)
	if v.Txn != "" {
		s += " (txn " + v.Txn + ")"
	}
	return s
}

// Format renders the violation with its surrounding trace window, for
// artifacts and failure messages.
func (v Violation) Format() string {
	var b strings.Builder
	b.WriteString(v.String())
	b.WriteString("\n  trigger: ")
	b.WriteString(v.Rec.String())
	for _, r := range v.Window {
		b.WriteString("\n    ")
		b.WriteString(r.String())
	}
	return b.String()
}

// Checker is one pluggable invariant. Observe is called for every
// captured trace record, in capture order, from a single goroutine (the
// simulator is single-threaded); report files a violation against rec.
type Checker interface {
	Name() string
	Observe(ctx Context, rec trace.Record, report func(msg string))
}

// windowSize bounds how many surrounding records a violation carries.
const windowSize = 24

// maxViolations bounds how many violations the engine retains; a broken
// invariant tends to fire on every subsequent commit and the first few
// are the diagnostic ones.
const maxViolations = 64

// Engine fans trace records out to its checkers and collects violations.
type Engine struct {
	ctx      Context
	checkers []Checker

	window [windowSize]trace.Record
	wn     int // records ever observed

	violations []Violation
	dropped    int
}

// NewEngine builds an engine over ctx. With no checkers, All() is used.
func NewEngine(ctx Context, checkers ...Checker) *Engine {
	if len(checkers) == 0 {
		checkers = All()
	}
	return &Engine{ctx: ctx, checkers: checkers}
}

// Attach registers the engine as a sink on the recorder. The recorder
// must be enabled for records to flow.
func (e *Engine) Attach(r *trace.Recorder) { r.AddSink(e.Observe) }

// Observe feeds one record through every checker. It is the sink
// callback; it must not be called concurrently (the simulator never
// does).
func (e *Engine) Observe(rec trace.Record) {
	e.window[e.wn%windowSize] = rec
	e.wn++
	for _, c := range e.checkers {
		name := c.Name()
		c.Observe(e.ctx, rec, func(msg string) { e.report(name, msg, rec) })
	}
}

func (e *Engine) report(checker, msg string, rec trace.Record) {
	if len(e.violations) >= maxViolations {
		e.dropped++
		return
	}
	e.violations = append(e.violations, Violation{
		Checker: checker,
		Msg:     msg,
		Rec:     rec,
		Txn:     rec.TxnID(),
		T:       rec.T,
		Window:  e.windowCopy(),
	})
}

// windowCopy snapshots the trailing record window, oldest first (the
// trigger record is last: it was appended before the checkers ran).
func (e *Engine) windowCopy() []trace.Record {
	n := e.wn
	if n > windowSize {
		n = windowSize
	}
	out := make([]trace.Record, 0, n)
	for i := e.wn - n; i < e.wn; i++ {
		out = append(out, e.window[i%windowSize])
	}
	return out
}

// Violations returns every breach caught so far, in capture order.
func (e *Engine) Violations() []Violation { return e.violations }

// Dropped reports violations discarded past the retention cap.
func (e *Engine) Dropped() int { return e.dropped }

// Ok reports whether no invariant fired.
func (e *Engine) Ok() bool { return len(e.violations) == 0 && e.dropped == 0 }
