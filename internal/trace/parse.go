package trace

import (
	"encoding/json"
	"fmt"
	"math"
	"time"

	"repro/internal/transport"
)

// This file is the read side of the dump format: the conformance harness
// scrapes each real daemon's /trace endpoint and rebuilds []Record from
// the JSON, so the invariant engine and span auditor run on real-daemon
// streams exactly as they do on simulated ones.

// kindByName is the reverse of kindNames, built once.
var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, name := range kindNames {
		if name != "" {
			m[name] = Kind(k)
		}
	}
	return m
}()

// ParseKind resolves a dump kind string ("view-commit") to its Kind.
func ParseKind(s string) (Kind, bool) {
	k, ok := kindByName[s]
	return k, ok
}

// UnmarshalJSON implements json.Unmarshaler, inverting Record.MarshalJSON:
// t_sec back to a Duration, dotted-quad addresses back to transport.IP.
// An unknown kind string is an error (the dump and the reader disagree on
// the protocol vocabulary — better loud than silently unclassified).
func (r *Record) UnmarshalJSON(data []byte) error {
	var j recordJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	k, ok := ParseKind(j.Kind)
	if !ok {
		return fmt.Errorf("trace: unknown record kind %q", j.Kind)
	}
	parseIP := func(s, field string) (transport.IP, error) {
		if s == "" {
			return 0, nil
		}
		ip, ok := transport.ParseIP(s)
		if !ok {
			return 0, fmt.Errorf("trace: bad %s address %q", field, s)
		}
		return ip, nil
	}
	self, err := parseIP(j.Self, "self")
	if err != nil {
		return err
	}
	peer, err := parseIP(j.Peer, "peer")
	if err != nil {
		return err
	}
	group, err := parseIP(j.Group, "group")
	if err != nil {
		return err
	}
	*r = Record{
		Seq:     j.Seq,
		T:       time.Duration(math.Round(j.T * float64(time.Second))),
		Kind:    k,
		Node:    j.Node,
		Self:    self,
		Peer:    peer,
		Group:   group,
		Version: j.Version,
		Token:   j.Token,
		Count:   j.Count,
		Detail:  j.Detail,
	}
	return nil
}

// Dump is a parsed WriteJSON document.
type Dump struct {
	Total   uint64   `json:"total"`
	Dropped uint64   `json:"dropped"`
	Cap     int      `json:"capacity"`
	Records []Record `json:"records"`
}

// ParseDump decodes one WriteJSON document.
func ParseDump(data []byte) (*Dump, error) {
	var d Dump
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, err
	}
	return &d, nil
}
