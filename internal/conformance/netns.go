package conformance

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/switchsim"
	"repro/internal/transport"
)

// NetnsFabric runs the farm across Linux network namespaces: one netns
// per node, one bridge per VLAN segment, one veth pair per adapter.
// Broadcast domains are real kernel bridges, so the daemons' multicast
// beaconing, the SNMP plane, and segment isolation are exercised with
// no emulation inside the process at all — a VLAN move is literally
// re-plugging the veth into another bridge, and adapter failure modes
// are link-down and tc-netem loss on the wire. Needs root and
// iproute2; this is the nightly fabric.
type NetnsFabric struct {
	spec *FarmSpec
	bin  string
	art  string
	logf func(string, ...any)

	agent   *switchAgent
	dbPath  string
	onStart func(*Daemon)
	prefix  string // resource-name prefix, pid-derived

	mu   sync.Mutex
	live map[string]*Daemon
	gens map[string]int
	vlan map[transport.IP]int
	up   bool
}

// NewNetnsFabric validates the environment (root, iproute2) and
// returns the fabric.
func NewNetnsFabric(spec *FarmSpec, bin, art string, logf func(string, ...any)) (*NetnsFabric, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if os.Geteuid() != 0 {
		return nil, fmt.Errorf("conformance: the netns fabric needs root")
	}
	if _, err := exec.LookPath("ip"); err != nil {
		return nil, fmt.Errorf("conformance: the netns fabric needs iproute2: %w", err)
	}
	nf := &NetnsFabric{
		spec: spec, bin: bin, art: art, logf: logf,
		prefix: fmt.Sprintf("gs%d", os.Getpid()%1000),
		live:   map[string]*Daemon{}, gens: map[string]int{},
		vlan: map[transport.IP]int{},
	}
	for _, n := range spec.Nodes {
		for _, a := range n.Adapters {
			nf.vlan[a.IP] = a.VLAN
		}
	}
	return nf, nil
}

// Kind implements Fabric.
func (nf *NetnsFabric) Kind() string { return "netns" }

// Spec implements Fabric.
func (nf *NetnsFabric) Spec() *FarmSpec { return nf.spec }

// OnStart implements Fabric.
func (nf *NetnsFabric) OnStart(fn func(*Daemon)) { nf.onStart = fn }

// Resource names. Interface names are capped at 15 chars; the prefix
// is <=6 ("gs999"), node indexes single-digit.
func (nf *NetnsFabric) nsName(node string) string { return nf.prefix + "-" + node }
func (nf *NetnsFabric) brName(vlan int) string    { return fmt.Sprintf("%s-br%d", nf.prefix, vlan) }
func (nf *NetnsFabric) vethRoot(port int) string  { return fmt.Sprintf("%s-p%d", nf.prefix, port) }
func (nf *NetnsFabric) vethInner(idx int) string  { return fmt.Sprintf("eth%d", idx) }
func (nf *NetnsFabric) hostVeth() string          { return nf.prefix + "-host" }
func (nf *NetnsFabric) hostVethPeer() string      { return nf.prefix + "-hostp" }

// sh runs one command, returning combined output in the error.
func (nf *NetnsFabric) sh(name string, args ...string) error {
	out, err := exec.Command(name, args...).CombinedOutput()
	if err != nil {
		return fmt.Errorf("conformance: %s %s: %v: %s", name, strings.Join(args, " "), err, strings.TrimSpace(string(out)))
	}
	return nil
}

// inNS runs one command inside a node's namespace.
func (nf *NetnsFabric) inNS(node, name string, args ...string) error {
	full := append([]string{"netns", "exec", nf.nsName(node), name}, args...)
	return nf.sh("ip", full...)
}

func maskFor(ip transport.IP) string {
	// Admin and data planes each sit in one flat subnet so an adapter
	// keeps its address across a VLAN re-plug.
	if byte(ip>>16) == 70 {
		return "24"
	}
	return "16"
}

// Boot implements Fabric.
func (nf *NetnsFabric) Boot() error {
	for _, dir := range []string{"logs", "journal"} {
		if err := os.MkdirAll(filepath.Join(nf.art, dir), 0o755); err != nil {
			return err
		}
	}
	nf.dbPath = filepath.Join(nf.art, "configdb.json")
	if err := nf.spec.WriteConfigDB(nf.dbPath); err != nil {
		return err
	}

	// Bridges: one per VLAN in use. Multicast snooping off, so beacon
	// groups flood the whole segment like a dumb switch.
	vlans := map[int]bool{}
	for _, v := range nf.vlan {
		vlans[v] = true
	}
	for v := range vlans {
		br := nf.brName(v)
		if err := nf.sh("ip", "link", "add", br, "type", "bridge", "mcast_snooping", "0"); err != nil {
			return err
		}
		if err := nf.sh("ip", "link", "set", br, "up"); err != nil {
			return err
		}
	}
	nf.up = true

	// The harness's own foothold on the admin segment: a veth into the
	// admin bridge carrying the switch-agent address.
	adminBr := nf.brName(AdminVLAN)
	if err := nf.sh("ip", "link", "add", nf.hostVeth(), "type", "veth", "peer", "name", nf.hostVethPeer()); err != nil {
		return err
	}
	if err := nf.sh("ip", "link", "set", nf.hostVethPeer(), "master", adminBr); err != nil {
		return err
	}
	for _, link := range []string{nf.hostVeth(), nf.hostVethPeer()} {
		if err := nf.sh("ip", "link", "set", link, "up"); err != nil {
			return err
		}
	}
	if err := nf.sh("ip", "addr", "add", nf.spec.SwitchIP.String()+"/24", "dev", nf.hostVeth()); err != nil {
		return err
	}

	// Per-node namespaces and veth wiring.
	for _, n := range nf.spec.Nodes {
		ns := nf.nsName(n.Name)
		if err := nf.sh("ip", "netns", "add", ns); err != nil {
			return err
		}
		if err := nf.inNS(n.Name, "ip", "link", "set", "lo", "up"); err != nil {
			return err
		}
		for _, a := range n.Adapters {
			root, inner := nf.vethRoot(a.Port), nf.vethInner(a.Index)
			if err := nf.sh("ip", "link", "add", root, "type", "veth", "peer", "name", inner, "netns", ns); err != nil {
				return err
			}
			if err := nf.sh("ip", "link", "set", root, "master", nf.brName(nf.vlan[a.IP])); err != nil {
				return err
			}
			if err := nf.sh("ip", "link", "set", root, "up"); err != nil {
				return err
			}
			if err := nf.inNS(n.Name, "ip", "addr", "add", a.IP.String()+"/"+maskFor(a.IP), "dev", inner); err != nil {
				return err
			}
			if err := nf.inNS(n.Name, "ip", "link", "set", inner, "up"); err != nil {
				return err
			}
		}
	}

	agent, err := startSwitchAgent(nf.spec, nf.applyPortVLAN)
	if err != nil {
		return err
	}
	nf.agent = agent

	for _, n := range nf.spec.Nodes {
		if err := nf.startNode(n.Name); err != nil {
			return err
		}
	}
	return nil
}

// startNode launches a fresh incarnation inside the node's namespace.
func (nf *NetnsFabric) startNode(name string) error {
	node, ok := nf.spec.Node(name)
	if !ok {
		return fmt.Errorf("conformance: unknown node %q", name)
	}
	nf.mu.Lock()
	gen := nf.gens[name] + 1
	nf.gens[name] = gen
	nf.mu.Unlock()

	adapters := make([]string, len(node.Adapters))
	for i, a := range node.Adapters {
		adapters[i] = a.IP.String() // real broadcast domains: no scoping
	}
	seed := int64(gen)*1000 + int64(node.Adapters[0].Port)
	argv := []string{
		"ip", "netns", "exec", nf.nsName(name),
		nf.bin,
		"-node", name,
		"-adapters", strings.Join(adapters, ","),
		"-fast",
		"-seed", strconv.FormatInt(seed, 10),
		"-configdb", nf.dbPath,
		"-community", nf.spec.Community,
		"-switches", fmt.Sprintf("%s=%v:%d", nf.spec.SwitchName, nf.spec.SwitchIP, nf.spec.SwitchPort),
		"-journal-dir", filepath.Join(nf.art, "journal", name),
		"-debug-addr", nf.spec.AdminIP(name).String() + ":0",
		"-fabric-ctl", // the /fabricctl/move handler drives planned moves
		"-trace-cap", "16384",
		"-ready-fd", "3",
	}
	logPath := filepath.Join(nf.art, "logs", fmt.Sprintf("%s-gen%d.log", name, gen))
	d, err := startDaemon(name, gen, argv, logPath)
	if err != nil {
		return err
	}
	nf.mu.Lock()
	nf.live[name] = d
	nf.mu.Unlock()
	nf.logf("fabric: %s ready (pid %d, debug %s)", d.Source(), d.Ready.PID, d.Ready.DebugAddr)
	if nf.onStart != nil {
		nf.onStart(d)
	}
	return nil
}

// Live implements Fabric.
func (nf *NetnsFabric) Live(node string) (*Daemon, bool) {
	nf.mu.Lock()
	defer nf.mu.Unlock()
	d, ok := nf.live[node]
	return d, ok
}

// LiveDaemons implements Fabric.
func (nf *NetnsFabric) LiveDaemons() []*Daemon {
	nf.mu.Lock()
	defer nf.mu.Unlock()
	var out []*Daemon
	for _, n := range nf.spec.Nodes {
		if d, ok := nf.live[n.Name]; ok {
			out = append(out, d)
		}
	}
	return out
}

// KillNode implements Fabric.
func (nf *NetnsFabric) KillNode(node string) error {
	nf.mu.Lock()
	d, ok := nf.live[node]
	delete(nf.live, node)
	nf.mu.Unlock()
	if !ok {
		return fmt.Errorf("conformance: %s is not running", node)
	}
	d.Kill()
	nf.logf("fabric: killed %s", d.Source())
	return nil
}

// RestartNode implements Fabric.
func (nf *NetnsFabric) RestartNode(node string) error {
	if _, running := nf.Live(node); running {
		return fmt.Errorf("conformance: %s is still running", node)
	}
	return nf.startNode(node)
}

// FailAdapter implements Fabric with link state and tc-netem loss:
// fail-stop downs the link, fail-recv drops everything flowing toward
// the node (root-side veth egress), fail-send drops everything the
// node transmits (namespace-side egress). Partial rates use the same
// qdiscs with the given percentages.
func (nf *NetnsFabric) FailAdapter(ip transport.IP, mode string, lossIn, lossOut float64) error {
	node, a, ok := nf.spec.Adapter(ip)
	if !ok {
		return fmt.Errorf("conformance: unknown adapter %v", ip)
	}
	root, inner := nf.vethRoot(a.Port), nf.vethInner(a.Index)

	// Reset everything first; each mode reapplies what it needs.
	_ = nf.sh("tc", "qdisc", "del", "dev", root, "root")
	_ = nf.inNS(node, "tc", "qdisc", "del", "dev", inner, "root")
	if err := nf.inNS(node, "ip", "link", "set", inner, "up"); err != nil {
		return err
	}

	netem := func(dev string, inNode bool, pct float64) error {
		loss := strconv.FormatFloat(pct*100, 'f', 2, 64) + "%"
		if inNode {
			return nf.inNS(node, "tc", "qdisc", "add", "dev", dev, "root", "netem", "loss", loss)
		}
		return nf.sh("tc", "qdisc", "add", "dev", dev, "root", "netem", "loss", loss)
	}
	switch mode {
	case "", "healthy":
		if lossIn > 0 {
			if err := netem(root, false, lossIn); err != nil {
				return err
			}
		}
		if lossOut > 0 {
			if err := netem(inner, true, lossOut); err != nil {
				return err
			}
		}
		return nil
	case "fail-stop":
		return nf.inNS(node, "ip", "link", "set", inner, "down")
	case "fail-recv":
		return netem(root, false, 1)
	case "fail-send":
		return netem(inner, true, 1)
	default:
		return fmt.Errorf("conformance: unknown failure mode %q", mode)
	}
}

// RescopeAdapter implements Fabric: the veth re-plug between bridges.
func (nf *NetnsFabric) RescopeAdapter(ip transport.IP, vlan int) error {
	_, a, ok := nf.spec.Adapter(ip)
	if !ok {
		return fmt.Errorf("conformance: unknown adapter %v", ip)
	}
	br := nf.brName(vlan)
	if err := nf.sh("ip", "link", "set", nf.vethRoot(a.Port), "master", br); err != nil {
		return err
	}
	nf.mu.Lock()
	nf.vlan[ip] = vlan
	nf.mu.Unlock()
	nf.logf("fabric: %v re-plugged to %s", ip, switchsim.SegmentName(vlan))
	return nil
}

// VLANOf implements Fabric.
func (nf *NetnsFabric) VLANOf(ip transport.IP) int {
	nf.mu.Lock()
	defer nf.mu.Unlock()
	return nf.vlan[ip]
}

// applyPortVLAN is the switch agent's write hook.
func (nf *NetnsFabric) applyPortVLAN(port, vlan int) {
	ip, ok := nf.spec.AdapterOnPort(port)
	if !ok {
		nf.logf("fabric: SNMP SET on unwired port %d ignored", port)
		return
	}
	// A re-plug may target a VLAN with no bridge yet (first adapter in
	// a fresh domain).
	nf.mu.Lock()
	needBridge := true
	for _, v := range nf.vlan {
		if v == vlan {
			needBridge = false
			break
		}
	}
	nf.mu.Unlock()
	if needBridge {
		br := nf.brName(vlan)
		_ = nf.sh("ip", "link", "add", br, "type", "bridge", "mcast_snooping", "0")
		_ = nf.sh("ip", "link", "set", br, "up")
	}
	if err := nf.RescopeAdapter(ip, vlan); err != nil {
		nf.logf("fabric: SNMP port %d -> vlan %d: %v", port, vlan, err)
	}
}

// Close implements Fabric: stop daemons, then tear the namespaces,
// veths, and bridges down (veths die with their namespaces).
func (nf *NetnsFabric) Close() error {
	nf.mu.Lock()
	var ds []*Daemon
	for _, d := range nf.live {
		ds = append(ds, d)
	}
	nf.live = map[string]*Daemon{}
	nf.mu.Unlock()

	var firstErr error
	var wg sync.WaitGroup
	errs := make([]error, len(ds))
	for i, d := range ds {
		wg.Add(1)
		go func(i int, d *Daemon) {
			defer wg.Done()
			errs[i] = d.Stop(10 * time.Second)
		}(i, d)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if nf.agent != nil {
		nf.agent.close()
		nf.agent = nil
	}
	if nf.up {
		for _, n := range nf.spec.Nodes {
			_ = nf.sh("ip", "netns", "del", nf.nsName(n.Name))
		}
		_ = nf.sh("ip", "link", "del", nf.hostVeth())
		vlans := map[int]bool{}
		nf.mu.Lock()
		for _, v := range nf.vlan {
			vlans[v] = true
		}
		nf.mu.Unlock()
		for v := range vlans {
			_ = nf.sh("ip", "link", "del", nf.brName(v))
		}
		nf.up = false
	}
	return firstErr
}
