//go:build linux || darwin || freebsd || netbsd || openbsd

package transport

import (
	"net"
	"syscall"
)

// reuseControl marks sockets SO_REUSEADDR so a unicast socket on
// (adapterIP, port) can coexist with the multicast group socket bound to
// the same port.
func reuseControl(_, _ string, c syscall.RawConn) error {
	var serr error
	err := c.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_REUSEADDR, 1)
	})
	if err != nil {
		return err
	}
	return serr
}

// setMulticastInterface pins a UDP socket's outgoing multicast interface
// to the one carrying local, so that multicast sent from an adapter
// address actually egresses (and loops back) on that adapter's interface.
// Without this the kernel uses the default multicast route, and daemons
// bound to secondary addresses (e.g. several 127.0.0.x on loopback) never
// hear each other's beacons.
// joinGroup4 subscribes an already-bound UDP socket to an IPv4 multicast
// group via the interface owning local. Combined with binding the socket
// to the group address itself, this gives per-group delivery: the kernel
// only queues datagrams whose destination matches the bound group, so an
// endpoint joined to segment group A never sees segment group B traffic
// on the same port. (net.ListenMulticastUDP binds the wildcard address on
// some platforms, which delivers every group the host has joined.)
func joinGroup4(conn *net.UDPConn, group, local net.IP) error {
	g, l := group.To4(), local.To4()
	if g == nil || l == nil {
		return syscall.EINVAL
	}
	raw, err := conn.SyscallConn()
	if err != nil {
		return err
	}
	mreq := &syscall.IPMreq{}
	copy(mreq.Multiaddr[:], g)
	copy(mreq.Interface[:], l)
	var serr error
	cerr := raw.Control(func(fd uintptr) {
		// Linux defaults to IP_MULTICAST_ALL=1, delivering every group
		// any socket on the host joined to every group-bound socket on
		// the port — which would bleed traffic across emulated segments.
		// Turn it off; other unixes lack the option (and already filter
		// by bound address), so errors are ignored.
		const ipMulticastAll = 49
		_ = syscall.SetsockoptInt(int(fd), syscall.IPPROTO_IP, ipMulticastAll, 0)
		serr = syscall.SetsockoptIPMreq(int(fd), syscall.IPPROTO_IP, syscall.IP_ADD_MEMBERSHIP, mreq)
	})
	if cerr != nil {
		return cerr
	}
	return serr
}

func setMulticastInterface(conn *net.UDPConn, local net.IP) error {
	v4 := local.To4()
	if v4 == nil {
		return nil
	}
	raw, err := conn.SyscallConn()
	if err != nil {
		return err
	}
	var addr [4]byte
	copy(addr[:], v4)
	var serr error
	cerr := raw.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInet4Addr(int(fd), syscall.IPPROTO_IP, syscall.IP_MULTICAST_IF, addr)
	})
	if cerr != nil {
		return cerr
	}
	return serr
}
