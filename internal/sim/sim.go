// Package sim provides a deterministic discrete-event scheduler and a
// virtual clock. All GulfStream simulations run on top of this kernel:
// every daemon, switch and network link schedules its work as events on a
// single queue, so a run is exactly reproducible given a seed and executes
// thousands of simulated seconds per wall second.
//
// The kernel is allocation-free in the steady state: fired and cancelled
// events return to a per-scheduler free list (the scheduler is
// single-threaded, so the list needs no locking), and a generation counter
// on each event keeps recycled events safe to reference from stale Timer
// handles. See DESIGN.md §9.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// event is a scheduled callback. Events fire in (time, sequence) order;
// the sequence number makes simultaneous events deterministic (FIFO).
//
// Events are pooled: gen increments every time an event is released back
// to the free list, so a Timer holding (event, gen) can detect that its
// event fired or was cancelled and has possibly been reused for an
// unrelated schedule.
type event struct {
	at    time.Duration
	seq   uint64
	gen   uint64
	index int // heap index; -1 when not queued
	fn    func()
	fnc   func(any) // arg-style callback; avoids a closure allocation
	arg   any
}

// heapEntry is one queue slot: the event's ordering key (at, seq) copied
// next to its pointer, so heap comparisons read the contiguous queue
// array instead of dereferencing scattered events.
type heapEntry struct {
	at  time.Duration
	seq uint64
	ev  *event
}

// Scheduler is a single-threaded discrete-event executor with a virtual
// clock. It is not safe for concurrent use: all events run on the caller's
// goroutine, which is the point — determinism.
type Scheduler struct {
	now    time.Duration
	seq    uint64
	queue  []heapEntry // 4-ary min-heap ordered by (at, seq)
	free   []*event    // recycled events
	rng    *rand.Rand
	fired  uint64
	halted bool
}

// NewScheduler returns a scheduler whose clock starts at zero and whose
// random source is seeded with seed.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time (duration since simulation start).
func (s *Scheduler) Now() time.Duration { return s.now }

// Rand returns the scheduler's deterministic random source. All simulated
// components must draw randomness from here so runs replay exactly.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Fired reports how many events have executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending reports how many events are queued.
func (s *Scheduler) Pending() int { return len(s.queue) }

// --- event pool ---

// alloc takes an event from the free list (or the heap allocator) and
// stamps it with the fire time and the next sequence number.
func (s *Scheduler) alloc(d time.Duration) *event {
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		ev = &event{}
	}
	if d < 0 {
		d = 0
	}
	ev.at = s.now + d
	ev.seq = s.seq
	s.seq++
	return ev
}

// release returns a fired or cancelled event to the free list, bumping its
// generation so stale Timer handles can never touch it again.
func (s *Scheduler) release(ev *event) {
	ev.gen++
	ev.fn, ev.fnc, ev.arg = nil, nil, nil
	s.free = append(s.free, ev)
}

// --- intrusive 4-ary heap (concrete types: no interface dispatch) ---
//
// 4-ary halves the depth of a binary heap, so pops move half as many
// entries, and the four children of a node share at most two cache lines.

func (s *Scheduler) push(ev *event) {
	s.queue = append(s.queue, heapEntry{})
	s.siftUp(len(s.queue)-1, heapEntry{at: ev.at, seq: ev.seq, ev: ev})
}

// siftUp places e at or above hole i, moving displaced parents down.
func (s *Scheduler) siftUp(i int, e heapEntry) {
	q := s.queue
	for i > 0 {
		p := (i - 1) / 4
		if q[p].at < e.at || (q[p].at == e.at && q[p].seq < e.seq) {
			break // parent fires first
		}
		q[i] = q[p]
		q[i].ev.index = i
		i = p
	}
	q[i] = e
	e.ev.index = i
}

// siftDown places e at or below hole i, pulling earlier children up.
func (s *Scheduler) siftDown(i int, e heapEntry) {
	q := s.queue
	n := len(q)
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if q[j].at < q[m].at || (q[j].at == q[m].at && q[j].seq < q[m].seq) {
				m = j
			}
		}
		if e.at < q[m].at || (e.at == q[m].at && e.seq < q[m].seq) {
			break // e fires before its earliest child
		}
		q[i] = q[m]
		q[i].ev.index = i
		i = m
	}
	q[i] = e
	e.ev.index = i
}

// popMin removes and returns the earliest event.
func (s *Scheduler) popMin() *event {
	q := s.queue
	ev := q[0].ev
	n := len(q) - 1
	last := q[n]
	q[n] = heapEntry{}
	s.queue = q[:n]
	if n > 0 {
		s.siftDown(0, last)
	}
	ev.index = -1
	return ev
}

// remove deletes a pending event from an arbitrary heap position.
func (s *Scheduler) remove(ev *event) {
	i := ev.index
	q := s.queue
	n := len(q) - 1
	last := q[n]
	q[n] = heapEntry{}
	s.queue = q[:n]
	ev.index = -1
	if i == n {
		return
	}
	s.siftDown(i, last)
	if last.ev.index == i {
		s.siftUp(i, last)
	}
}

// fix restores heap order after ev's (at, seq) key changed in place.
func (s *Scheduler) fix(ev *event) {
	i := ev.index
	e := heapEntry{at: ev.at, seq: ev.seq, ev: ev}
	s.siftDown(i, e)
	if ev.index == i {
		s.siftUp(i, e)
	}
}

// --- timers and scheduling ---

// Timer is a handle to a scheduled event, with the same Stop contract as
// time.Timer: Stop reports whether the call prevented the event from
// firing. The handle captures the event's generation, so once the event
// fires (and is recycled for an unrelated schedule) the handle goes inert
// instead of cancelling someone else's event.
type Timer struct {
	s   *Scheduler
	ev  *event
	gen uint64
	fn  func() // retained so Reset can re-arm after a fire or Stop
}

// active reports whether the timer still owns a pending event.
func (t *Timer) active() bool {
	return t.ev != nil && t.ev.gen == t.gen && t.ev.index >= 0
}

// Stop cancels the timer. It returns false if the event already fired or
// was already stopped; in that case the stale event reference is dropped,
// so a recycled event can never be resurrected through an old handle.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil {
		return false
	}
	if !t.active() {
		t.ev = nil
		return false
	}
	ev := t.ev
	t.ev = nil
	t.s.remove(ev)
	t.s.release(ev)
	return true
}

// Reset re-arms the timer to fire d from now, reporting whether it was
// still pending (like time.Timer.Reset). A pending timer keeps its pooled
// event — the fixed-interval fast path: rescheduling from inside the
// timer's own callback allocates nothing. A fired or stopped timer is
// re-armed with its original callback.
func (t *Timer) Reset(d time.Duration) bool {
	if t.active() {
		if d < 0 {
			d = 0
		}
		ev := t.ev
		ev.at = t.s.now + d
		ev.seq = t.s.seq
		t.s.seq++
		t.s.fix(ev)
		return true
	}
	ev := t.s.alloc(d)
	ev.fn = t.fn
	t.s.push(ev)
	t.ev = ev
	t.gen = ev.gen
	return false
}

// AfterFunc schedules fn to run d from now. Negative d is treated as zero.
func (s *Scheduler) AfterFunc(d time.Duration, fn func()) *Timer {
	if fn == nil {
		panic("sim: AfterFunc with nil function")
	}
	ev := s.alloc(d)
	ev.fn = fn
	s.push(ev)
	return &Timer{s: s, ev: ev, gen: ev.gen, fn: fn}
}

// Schedule runs fn once at d from now without a cancellation handle — the
// allocation-free path for fire-and-forget work (the event comes from and
// returns to the scheduler's pool, and no Timer is created).
func (s *Scheduler) Schedule(d time.Duration, fn func()) {
	if fn == nil {
		panic("sim: Schedule with nil function")
	}
	ev := s.alloc(d)
	ev.fn = fn
	s.push(ev)
}

// AfterCall schedules fn(arg) at d from now. Passing the argument
// explicitly rather than closing over it lets hot callers schedule with
// zero allocations: fn is typically a package-level function and arg a
// pooled pointer, neither of which needs a heap-allocated closure.
func (s *Scheduler) AfterCall(d time.Duration, fn func(any), arg any) {
	if fn == nil {
		panic("sim: AfterCall with nil function")
	}
	ev := s.alloc(d)
	ev.fnc = fn
	ev.arg = arg
	s.push(ev)
}

// At schedules fn at absolute virtual time at. Times in the past run
// immediately (at the current instant).
func (s *Scheduler) At(at time.Duration, fn func()) *Timer {
	return s.AfterFunc(at-s.now, fn)
}

// Step executes the single earliest event. It reports false when the queue
// is empty.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	ev := s.popMin()
	s.now = ev.at
	fn, fnc, arg := ev.fn, ev.fnc, ev.arg
	// Recycle before running: the callback may schedule (reusing this very
	// event, under a new generation) or Stop its own timer (a no-op now).
	s.release(ev)
	s.fired++
	if fn != nil {
		fn()
	} else if fnc != nil {
		fnc(arg)
	}
	return true
}

// Run executes events until the queue is empty.
func (s *Scheduler) Run() {
	s.halted = false
	for !s.halted && s.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to deadline. Events scheduled at exactly the deadline do run.
func (s *Scheduler) RunUntil(deadline time.Duration) {
	s.halted = false
	for !s.halted && len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor advances the simulation by d.
func (s *Scheduler) RunFor(d time.Duration) { s.RunUntil(s.now + d) }

// runWindow executes events with timestamps strictly before end, then
// advances the clock to end. This is the body of one conservative-lookahead
// window (see shard.go): the exclusive bound means every shard stops at the
// same instant, and events at exactly the window boundary wait for the
// cross-shard merge that happens there.
func (s *Scheduler) runWindow(end time.Duration) {
	for len(s.queue) > 0 && s.queue[0].at < end {
		s.Step()
	}
	if s.now < end {
		s.now = end
	}
}

// PostAt schedules fn(arg) at absolute virtual time at — the injection
// point for cross-shard events merged at a window barrier. The event is
// pooled like every other schedule. Times in the past are a contract
// violation (a barrier only injects events at or after the barrier
// instant), so PostAt panics rather than warping them forward.
func (s *Scheduler) PostAt(at time.Duration, fn func(any), arg any) {
	if fn == nil {
		panic("sim: PostAt with nil function")
	}
	if at < s.now {
		panic(fmt.Sprintf("sim: PostAt %v before current time %v", at, s.now))
	}
	ev := s.alloc(at - s.now)
	ev.fnc = fn
	ev.arg = arg
	s.push(ev)
}

// RunWhile executes events while cond() is true and events remain. It is
// the primitive behind "run until the farm is stable" style loops; cond is
// evaluated before each event.
func (s *Scheduler) RunWhile(cond func() bool) {
	s.halted = false
	for !s.halted && len(s.queue) > 0 && cond() {
		s.Step()
	}
}

// Halt stops Run/RunUntil/RunWhile after the current event returns.
func (s *Scheduler) Halt() { s.halted = true }

// String describes the scheduler state, for debugging.
func (s *Scheduler) String() string {
	return fmt.Sprintf("sim.Scheduler{now=%v pending=%d fired=%d}", s.now, len(s.queue), s.fired)
}
