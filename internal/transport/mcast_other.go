//go:build !linux && !darwin && !freebsd && !netbsd && !openbsd

package transport

import (
	"net"
	"syscall"
)

// setMulticastInterface is a no-op on platforms without the unix
// IP_MULTICAST_IF socket option path; the default multicast route is used.
func setMulticastInterface(_ *net.UDPConn, _ net.IP) error { return nil }

// joinGroup4 reports unsupported so JoinGroup falls back to
// net.ListenMulticastUDP (no per-group destination filtering).
func joinGroup4(_ *net.UDPConn, _, _ net.IP) error { return syscall.EINVAL }

// reuseControl is a no-op on platforms without SO_REUSEADDR handling here.
func reuseControl(_, _ string, _ syscall.RawConn) error { return nil }
