// Package event defines the typed notifications GulfStream publishes —
// adapter/node/switch failures and recoveries, group changes, moves, and
// verification findings — plus a small synchronous bus. GulfStream Central
// is "the authority on the status of all network components" (paper §2.2);
// these events are the form that authority takes.
package event

import (
	"fmt"
	"time"

	"repro/internal/transport"
)

// Kind classifies an event.
type Kind int

// Event kinds.
const (
	// AdapterFailed: an AMG declared a member dead.
	AdapterFailed Kind = iota + 1
	// AdapterRecovered: a previously-dead adapter rejoined a group.
	AdapterRecovered
	// AdapterJoined: an adapter joined a group for the first time.
	AdapterJoined
	// NodeFailed: every adapter of the node is dead (correlation).
	NodeFailed
	// NodeRecovered: some adapter of a dead node came back.
	NodeRecovered
	// SwitchFailed: every adapter wired to the switch is dead (correlation).
	SwitchFailed
	// SwitchRecovered: some adapter on a dead switch came back.
	SwitchRecovered
	// NodeMoved: leave+join correlation across groups — the adapter moved
	// domains (VLAN reconfiguration), it did not fail.
	NodeMoved
	// GroupFormed: a new AMG committed.
	GroupFormed
	// GroupChanged: an existing AMG recommitted with different membership.
	GroupChanged
	// LeaderChanged: an AMG elected a new leader.
	LeaderChanged
	// CentralElected: a node became GulfStream Central.
	CentralElected
	// VerifyMismatch: discovered topology disagrees with the configuration
	// database.
	VerifyMismatch
	// AdapterDisabled: Central disabled an adapter over a verification
	// conflict.
	AdapterDisabled
	// MoveStarted: Central began a planned domain move for the adapter —
	// the VLAN rewrite is about to land. Subscribers that route traffic
	// (the serving plane's balancer) drain the node on this notification
	// instead of waiting for the post-move join to be reported.
	MoveStarted
)

var kindNames = map[Kind]string{
	AdapterFailed:    "adapter-failed",
	AdapterRecovered: "adapter-recovered",
	AdapterJoined:    "adapter-joined",
	NodeFailed:       "node-failed",
	NodeRecovered:    "node-recovered",
	SwitchFailed:     "switch-failed",
	SwitchRecovered:  "switch-recovered",
	NodeMoved:        "node-moved",
	GroupFormed:      "group-formed",
	GroupChanged:     "group-changed",
	LeaderChanged:    "leader-changed",
	CentralElected:   "central-elected",
	VerifyMismatch:   "verify-mismatch",
	AdapterDisabled:  "adapter-disabled",
	MoveStarted:      "move-started",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one published notification.
type Event struct {
	Time    time.Duration // virtual (or process) time of publication
	Kind    Kind
	Adapter transport.IP // subject adapter, when applicable
	Node    string       // subject node / switch name, when applicable
	Group   transport.IP // AMG leader identifying the group, when applicable
	Detail  string
	// Incident is Central's incident correlator: every notification about
	// the same ongoing disturbance (a node's failure and later recovery,
	// a planned move's start and completion) carries the same nonzero id,
	// so consumers — and the span stitcher — can tie the lifecycle
	// together. Zero on events Central does not correlate.
	Incident uint64
	// Suppressed marks notifications Central withheld from external
	// subscribers because the change was expected (a Central-initiated
	// domain move). They remain visible for audit.
	Suppressed bool
}

func (e Event) String() string {
	s := fmt.Sprintf("[%v] %v", e.Time, e.Kind)
	if e.Adapter != 0 {
		s += " adapter=" + e.Adapter.String()
	}
	if e.Node != "" {
		s += " node=" + e.Node
	}
	if e.Group != 0 {
		s += " group=" + e.Group.String()
	}
	if e.Detail != "" {
		s += " (" + e.Detail + ")"
	}
	if e.Incident != 0 {
		s += fmt.Sprintf(" incident=%d", e.Incident)
	}
	if e.Suppressed {
		s += " [suppressed]"
	}
	return s
}

// Bus is a synchronous publish/subscribe fan-out. Subscribers run inline
// on Publish, in subscription order — under simulation that keeps event
// handling inside the deterministic event loop.
//
// Publishes from inside a subscriber callback are queued and delivered
// after the current event finishes its fan-out, so every subscriber
// observes the same canonical event order (the recorded Log order). A
// naive recursive Publish would show subscriber A the order e1,e2 and
// subscriber B the order e2,e1 whenever A republishes while handling e1
// — fatal for same-seed replay once a balancer, the flight recorder,
// and the invariant engine all watch the same bus.
type Bus struct {
	subs       []func(Event)
	log        []Event
	keep       bool
	queue      []Event
	delivering bool
}

// NewBus returns a bus that also records every published event when
// record is true (test and experiment harnesses read the log).
func NewBus(record bool) *Bus { return &Bus{keep: record} }

// Subscribe registers fn for all subsequent events.
func (b *Bus) Subscribe(fn func(Event)) { b.subs = append(b.subs, fn) }

// Publish delivers e to every subscriber, in subscription order. Nested
// publishes (from a subscriber) are deferred until the in-flight event
// has reached every subscriber, preserving one global delivery order.
func (b *Bus) Publish(e Event) {
	if b.keep {
		b.log = append(b.log, e)
	}
	b.queue = append(b.queue, e)
	if b.delivering {
		return
	}
	b.delivering = true
	for i := 0; i < len(b.queue); i++ {
		ev := b.queue[i]
		for _, fn := range b.subs {
			fn(ev)
		}
	}
	b.queue = b.queue[:0]
	b.delivering = false
}

// Log returns the recorded events (nil unless recording).
func (b *Bus) Log() []Event { return b.log }

// Filter returns recorded events of the given kind.
func (b *Bus) Filter(k Kind) []Event {
	var out []Event
	for _, e := range b.log {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Count returns how many recorded events have the given kind.
func (b *Bus) Count(k Kind) int { return len(b.Filter(k)) }
