package central

import (
	"fmt"
	"sort"

	"repro/internal/configdb"
	"repro/internal/event"
	"repro/internal/snmp"
	"repro/internal/switchsim"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Verification and dynamic reconfiguration — Central's roles 1 and 3 in
// paper §2.2.

// Verify compares the discovered topology against the configuration
// database, publishes a VerifyMismatch event per finding, and (when
// DisableConflicts is set) orders wrong-segment adapters disabled.
func (c *Central) Verify() []configdb.Mismatch {
	if c.db == nil || !c.active {
		return nil
	}
	findings := c.db.Verify(c.Groups())
	for _, m := range findings {
		c.publish(event.Event{Kind: event.VerifyMismatch, Adapter: m.Adapter,
			Detail: m.String()})
		if c.cfg.DisableConflicts && m.Kind == configdb.WrongSegment {
			c.DisableAdapter(m.Adapter, m.String())
		}
	}
	return findings
}

// DisableAdapter sends a Disable order for the adapter to its owning
// node's administrative adapter (the only one Central can reach).
func (c *Central) DisableAdapter(ip transport.IP, reason string) bool {
	if !c.active || c.ep == nil {
		return false
	}
	admin, ok := c.adminAdapterFor(ip)
	if !ok {
		return false
	}
	msg := &wire.Disable{Target: ip, Reason: reason}
	pkt := wire.NewPacket(msg)
	_ = c.ep.Unicast(transport.PortMember,
		transport.Addr{IP: admin, Port: transport.PortMember}, pkt.Bytes())
	pkt.Free()
	c.publish(event.Event{Kind: event.AdapterDisabled, Adapter: ip, Detail: reason})
	return true
}

// adminAdapterFor finds the administrative adapter of the node owning ip,
// preferring live view data and falling back to the database.
func (c *Central) adminAdapterFor(ip transport.IP) (transport.IP, bool) {
	node := ""
	if a, ok := c.adapters[ip]; ok {
		node = a.member.Node
	} else if c.db != nil {
		if spec, ok := c.db.Adapter(ip); ok {
			node = spec.Node
		}
	}
	if node == "" {
		return 0, false
	}
	for aip := range c.knownNodeAdapters(node) {
		if a, ok := c.adapters[aip]; ok && a.member.Admin {
			return aip, true
		}
		if c.db != nil {
			if spec, ok := c.db.Adapter(aip); ok && spec.Index == 0 {
				return aip, true
			}
		}
	}
	return 0, false
}

// DiscoverWiring walks every registered switch's port tables over SNMP
// and learns which adapter is wired to which switch — implementing the
// paper's §3 plan: "In the future, GulfStream will independently identify
// these connections by querying the routers and switches directly using
// SNMP." Once discovered, switch-failure correlation no longer depends on
// the configuration database. done receives the wiring (switch name ->
// adapters) and the first error, after all switches have been walked.
func (c *Central) DiscoverWiring(done func(map[string][]transport.IP, error)) {
	if done == nil {
		done = func(map[string][]transport.IP, error) {}
	}
	if !c.active || c.snmp == nil {
		done(nil, fmt.Errorf("central: not active"))
		return
	}
	names := make([]string, 0, len(c.switchAgents))
	for n := range c.switchAgents {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		done(map[string][]transport.IP{}, nil)
		return
	}
	result := make(map[string][]transport.IP, len(names))
	var firstErr error
	remaining := len(names)
	finish := func() {
		remaining--
		if remaining > 0 {
			return
		}
		if firstErr == nil {
			c.snmpWiring = result
			c.snmpSwitchOf = make(map[transport.IP]string)
			for sw, ips := range result {
				for _, ip := range ips {
					c.snmpSwitchOf[ip] = sw
				}
			}
		}
		done(result, firstErr)
	}
	for _, name := range names {
		name := name
		agent := c.switchAgents[name]
		c.snmp.WalkPrefix(agent, switchsim.OIDPortAdapterTable(),
			func(vbs []snmp.VarBind, err error) {
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("central: walking %s: %w", name, err)
				}
				for _, vb := range vbs {
					if ip, ok := transport.ParseIP(vb.Value.String()); ok && ip != 0 {
						result[name] = append(result[name], ip)
					}
				}
				sortIPs(result[name])
				finish()
			})
	}
}

// MoveAdapter relocates one adapter to a new VLAN by rewriting its switch
// port over SNMP. The change is registered as expected, so the resulting
// departure/join pair is reported as a move with failure notifications
// suppressed. done receives the SNMP outcome.
func (c *Central) MoveAdapter(ip transport.IP, vlan int, done func(error)) {
	if done == nil {
		done = func(error) {}
	}
	if !c.active || c.snmp == nil {
		done(fmt.Errorf("central: not active"))
		return
	}
	if c.db == nil {
		done(fmt.Errorf("central: no configuration database"))
		return
	}
	spec, ok := c.db.Adapter(ip)
	if !ok {
		done(fmt.Errorf("central: adapter %v not in database", ip))
		return
	}
	agent, ok := c.switchAgents[spec.Switch]
	if !ok {
		done(fmt.Errorf("central: no agent registered for switch %q", spec.Switch))
		return
	}
	// Register the expectation BEFORE the SET: the departure may be
	// reported before the SNMP response returns.
	deadline := c.clock.Now() + c.cfg.MoveWindow
	c.expectedMoves[ip] = deadline
	c.jMoveExpect(ip, deadline)
	// Announce the intent before the VLAN rewrite lands: traffic-routing
	// subscribers (the serving plane) drain the node now, instead of
	// discovering the move through failure detection after the fact.
	c.publish(event.Event{Kind: event.MoveStarted, Adapter: ip, Node: spec.Node,
		Detail: fmt.Sprintf("to %s", switchsim.SegmentName(vlan))})
	c.snmp.Set(agent, switchsim.OIDPortVLAN(spec.Port), snmp.Integer(int64(vlan)), func(err error) {
		if err != nil {
			delete(c.expectedMoves, ip)
			c.jMoveDone(ip)
			c.closeIncidentIfMoveDone(spec.Node)
			done(fmt.Errorf("central: VLAN set for %v failed: %w", ip, err))
			return
		}
		_ = c.db.SetExpectedVLAN(ip, vlan)
		done(nil)
	})
}

// MoveNode relocates a whole node between domains: every non-admin
// adapter's VLAN is rewritten per the vlanByIndex map (adapter index ->
// new VLAN). Adapters whose index is absent stay put. done fires once
// with the first error or nil after all SETs succeed.
func (c *Central) MoveNode(node string, vlanByIndex map[int]int, done func(error)) {
	if done == nil {
		done = func(error) {}
	}
	if c.db == nil {
		done(fmt.Errorf("central: no configuration database"))
		return
	}
	spec, ok := c.db.Node(node)
	if !ok {
		done(fmt.Errorf("central: unknown node %q", node))
		return
	}
	type task struct {
		ip   transport.IP
		vlan int
	}
	var tasks []task
	for _, aip := range spec.Adapters {
		aspec, ok := c.db.Adapter(aip)
		if !ok {
			continue
		}
		if vlan, want := vlanByIndex[aspec.Index]; want {
			tasks = append(tasks, task{ip: aip, vlan: vlan})
		}
	}
	if len(tasks) == 0 {
		done(fmt.Errorf("central: node %q has no adapters matching the move", node))
		return
	}
	remaining := len(tasks)
	failed := false
	for _, t := range tasks {
		c.MoveAdapter(t.ip, t.vlan, func(err error) {
			if err != nil && !failed {
				failed = true
				done(err)
			}
			remaining--
			if remaining == 0 && !failed {
				done(nil)
			}
		})
	}
}
