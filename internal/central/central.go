// Package central implements GulfStream Central — the root of the
// reporting hierarchy (paper §2.2, §3). The node whose administrative
// adapter leads the administrative AMG hosts Central. It assembles the
// farm-wide topology from leaders' membership reports, correlates adapter
// failures into node and switch failures, verifies the discovered
// topology against the configuration database (flagging and optionally
// disabling conflicting adapters), infers domain moves from paired
// leave/join reports and suppresses the resulting false failure
// notifications, and drives dynamic VLAN reconfiguration through the
// switches' SNMP agents.
package central

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/configdb"
	"repro/internal/event"
	"repro/internal/journal"
	"repro/internal/snmp"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Config tunes Central.
type Config struct {
	// StabilizeWait is Tgsc: how long the farm view must sit unchanged
	// before Central declares the topology stable (15 s in the paper).
	StabilizeWait time.Duration
	// MoveWindow bounds how long a departure may wait for the matching
	// join before an unexpected move stops being inferable.
	MoveWindow time.Duration
	// Community is the SNMP community used toward the switches.
	Community string
	// SNMPPort is the local client port on the administrative adapter.
	SNMPPort uint16
	// DisableConflicts makes verification send Disable orders for
	// wrong-segment adapters (the paper's security response).
	DisableConflicts bool
}

// DefaultConfig mirrors the prototype parameters.
func DefaultConfig() Config {
	return Config{
		StabilizeWait:    15 * time.Second,
		MoveWindow:       60 * time.Second,
		Community:        "farm-admin",
		SNMPPort:         7410,
		DisableConflicts: false,
	}
}

// group is Central's record of one AMG.
type group struct {
	leader  transport.IP
	version uint64
	members map[transport.IP]wire.Member
	// src is the admin address of the daemon reporting for this group,
	// kept so Central can ask it for a full resync.
	src transport.Addr
	// resyncAt rate-limits per-group resync requests; resynced marks it
	// meaningful (zero is a valid instant under the simulated clock).
	resyncAt time.Duration
	resynced bool
}

// adapterInfo is Central's record of one adapter's state.
type adapterInfo struct {
	member wire.Member
	alive  bool
	group  transport.IP // leader of the group it belongs to
	diedAt time.Duration
}

// Central is the farm-view authority. Like the daemon it is event-driven
// and must be driven from a single goroutine.
type Central struct {
	cfg   Config
	clock transport.Clock
	bus   *event.Bus
	db    *configdb.DB // may be nil: discovery-only mode

	active bool
	ep     transport.Endpoint
	snmp   *snmp.Client

	groups   map[transport.IP]*group
	adapters map[transport.IP]*adapterInfo
	// nodesSeen accumulates every adapter ever reported per node, the
	// basis of node-failure correlation.
	nodesSeen  map[string]map[transport.IP]bool
	nodeDead   map[string]bool
	switchDead map[string]bool

	// lastSeq dedups reports per reporting daemon (admin adapter addr).
	lastSeq map[transport.IP]uint64

	// expectedMoves holds adapters Central itself is relocating.
	expectedMoves map[transport.IP]time.Duration

	// incidents holds the open incident id per subject node or switch;
	// incidentSeq issues ids (incident.go).
	incidents   map[string]uint64
	incidentSeq uint64

	// limbo holds adapters displaced by a lineage break (a Fresh report
	// replaced their group): still presumed alive, but if they surface in
	// no group before the deadline they are declared failed.
	limbo      map[transport.IP]time.Duration
	sweepTimer transport.Timer

	// switchAgents maps switch name -> SNMP agent address.
	switchAgents map[string]transport.Addr
	// snmpWiring holds switch->adapters wiring learned by walking the
	// switches' own port tables (DiscoverWiring) — the paper's §3 future
	// plan of identifying connections "by querying the routers and
	// switches directly using SNMP" instead of trusting the database.
	snmpWiring map[string][]transport.IP
	// snmpSwitchOf is the reverse index.
	snmpSwitchOf map[transport.IP]string

	// jr, when set, journals every committed transition; stream is the
	// sender side of the warm-standby replication (journal.go).
	jr     *journal.Journal
	stream stream

	// tracer, when set, receives flight-recorder records labeled with the
	// hosting node's name (trace.go).
	tracer    *trace.Recorder
	traceNode string

	lastChange  time.Duration
	everChanged bool

	// OnReport, if set, observes every report as it is applied (after
	// dedup) — an observability hook for tests and debugging tools.
	OnReport func(src transport.Addr, r *wire.Report)
}

// New builds a Central. db may be nil (no verification or switch
// correlation). bus receives all published events.
func New(cfg Config, clock transport.Clock, bus *event.Bus, db *configdb.DB) *Central {
	return &Central{
		cfg:           cfg,
		clock:         clock,
		bus:           bus,
		db:            db,
		groups:        make(map[transport.IP]*group),
		adapters:      make(map[transport.IP]*adapterInfo),
		nodesSeen:     make(map[string]map[transport.IP]bool),
		nodeDead:      make(map[string]bool),
		switchDead:    make(map[string]bool),
		lastSeq:       make(map[transport.IP]uint64),
		expectedMoves: make(map[transport.IP]time.Duration),
		incidents:     make(map[string]uint64),
		limbo:         make(map[transport.IP]time.Duration),
		switchAgents:  make(map[string]transport.Addr),
		snmpWiring:    make(map[string][]transport.IP),
		snmpSwitchOf:  make(map[transport.IP]string),
	}
}

// RegisterSwitchAgent tells Central where a switch's management agent
// lives on the administrative network.
func (c *Central) RegisterSwitchAgent(name string, addr transport.Addr) {
	c.switchAgents[name] = addr
}

// Activate implements core.CentralHook.
func (c *Central) Activate(admin transport.Endpoint) {
	c.active = true
	c.ep = admin
	c.snmp = snmp.NewClient(admin, c.clock, c.cfg.Community, c.cfg.SNMPPort)
	// With a journal the successor replays its accumulated state (streamed
	// from the previous active, or loaded from disk) instead of starting
	// from nothing.
	restored := c.jr != nil && c.jr.Loaded() && c.installRestored()
	if !restored {
		// Cold start: whatever this Central held under a previous regime
		// — groups, adapter liveness, correlated node/switch deaths — no
		// longer describes its (empty) view. The correlation maps must be
		// dropped along with the groups: a node marked dead by a prior
		// activation would otherwise survive in memory with no journal
		// record backing it, and the resync rebuilds all of it anyway.
		c.groups = make(map[transport.IP]*group)
		c.adapters = make(map[transport.IP]*adapterInfo)
		c.nodesSeen = make(map[string]map[transport.IP]bool)
		c.nodeDead = make(map[string]bool)
		c.switchDead = make(map[string]bool)
		c.expectedMoves = make(map[transport.IP]time.Duration)
		// Incident correlation state is regime-local (never journaled):
		// incidents opened by a previous activation cannot be resolved by
		// this one. The sequence keeps counting so ids stay unique per
		// instance.
		c.incidents = make(map[string]uint64)
		if c.jr != nil {
			// The journal fold is stale for the same reason, and left in
			// place it would leak into the next standby snapshot.
			c.jr.Reset()
		}
	}
	det := "cold"
	if restored {
		det = "restored"
		c.trace(trace.Record{Kind: trace.KJournalReplayed, Count: uint32(len(c.groups))})
	}
	c.trace(trace.Record{Kind: trace.KCentralActivated, Count: uint32(len(c.groups)), Detail: det})
	c.lastSeq = make(map[transport.IP]uint64)
	c.limbo = make(map[transport.IP]time.Duration)
	c.resetStream()
	c.touch()
	c.publish(event.Event{Kind: event.CentralElected, Adapter: admin.LocalIP()})
	if c.sweepTimer == nil {
		c.sweepTimer = c.clock.AfterFunc(5*time.Second, c.sweepTick)
	}
	if c.jr != nil {
		c.jr.BeginEpoch()
	}
	if restored {
		// The view is already populated: only re-confirm groups whose state
		// did not arrive live over the standby stream, one unicast each.
		c.verifyRestored()
		return
	}
	// Pull the topology: the steady state is silent, so a Central without
	// state must ask every daemon to resend full reports. Multicast on
	// the administrative segment, repeated against loss.
	c.requestResync(3)
}

// requestGroupResync asks one group's reporting daemon for a fresh full
// report, rate-limited per group.
func (c *Central) requestGroupResync(g *group) {
	if c.ep == nil || g.src.IP == 0 {
		return
	}
	now := c.clock.Now()
	if g.resynced && now-g.resyncAt < 10*time.Second {
		return
	}
	g.resyncAt = now
	g.resynced = true
	c.trace(trace.Record{Kind: trace.KResyncSent, Peer: g.src.IP,
		Group: g.leader, Version: g.version, Detail: "group"})
	req := wire.Encode(&wire.ResyncRequest{From: c.ep.LocalIP()})
	_ = c.ep.Unicast(transport.PortReport, g.src, req)
}

// requestResync multicasts a ResyncRequest, re-sending `times` times.
func (c *Central) requestResync(times int) {
	if !c.active || c.ep == nil || times <= 0 {
		return
	}
	c.trace(trace.Record{Kind: trace.KResyncSent, Detail: "multicast"})
	req := wire.Encode(&wire.ResyncRequest{From: c.ep.LocalIP()})
	_ = c.ep.Multicast(transport.PortReport,
		transport.Addr{IP: transport.BeaconGroup, Port: transport.PortReport}, req)
	c.clock.AfterFunc(time.Second, func() { c.requestResync(times - 1) })
}

// Deactivate implements core.CentralHook.
func (c *Central) Deactivate() {
	c.trace(trace.Record{Kind: trace.KCentralDeactivated, Count: uint32(len(c.groups))})
	c.active = false
	c.resetStream()
	if c.sweepTimer != nil {
		c.sweepTimer.Stop()
		c.sweepTimer = nil
	}
}

// sweepTick runs the time-based housekeeping (limbo deadlines, stale
// expected moves) even when no reports are flowing.
func (c *Central) sweepTick() {
	if !c.active {
		c.sweepTimer = nil
		return
	}
	c.sweepExpectedMoves()
	c.sweepLimbo()
	if c.sweepTimer != nil {
		c.sweepTimer.Reset(5 * time.Second)
	}
}

// sweepLimbo declares failed any adapter displaced by a lineage break
// that never resurfaced in a group.
func (c *Central) sweepLimbo() {
	now := c.clock.Now()
	for ip, deadline := range c.limbo {
		if now <= deadline {
			continue
		}
		delete(c.limbo, ip)
		info := c.adapters[ip]
		if info == nil || !info.alive {
			continue
		}
		info.alive = false
		info.diedAt = now
		c.jAdapter(info)
		c.publish(event.Event{Kind: event.AdapterFailed, Adapter: ip,
			Node: info.member.Node, Detail: "unaccounted after group dissolution"})
		c.correlateNode(info.member.Node)
		c.correlateSwitch(ip)
	}
}

// Active reports whether this instance currently is GulfStream Central.
func (c *Central) Active() bool { return c.active }

func (c *Central) publish(e event.Event) {
	e.Time = c.clock.Now()
	c.stampIncident(&e)
	c.bus.Publish(e)
}

func (c *Central) touch() {
	c.lastChange = c.clock.Now()
	c.everChanged = true
}

// Stable reports whether a nonempty view has been quiet for Tgsc.
func (c *Central) Stable() bool {
	return c.everChanged && len(c.groups) > 0 &&
		c.clock.Now()-c.lastChange >= c.cfg.StabilizeWait
}

// StableAt returns the instant stability was (or will be) reached given
// no further changes: lastChange + Tgsc.
func (c *Central) StableAt() time.Duration { return c.lastChange + c.cfg.StabilizeWait }

// Groups snapshots the discovered topology: leader -> member addresses.
func (c *Central) Groups() map[transport.IP][]transport.IP {
	out := make(map[transport.IP][]transport.IP, len(c.groups))
	for l, g := range c.groups {
		for ip := range g.members {
			out[l] = append(out[l], ip)
		}
	}
	for _, ips := range out {
		sortIPs(ips)
	}
	return out
}

// GroupCount returns how many AMGs Central currently tracks.
func (c *Central) GroupCount() int { return len(c.groups) }

// AdapterAlive reports the last known liveness of an adapter.
func (c *Central) AdapterAlive(ip transport.IP) (alive, known bool) {
	a, ok := c.adapters[ip]
	if !ok {
		return false, false
	}
	return a.alive, true
}

// NodeAlive reports node-level correlated state.
func (c *Central) NodeAlive(node string) bool { return !c.nodeDead[node] }

// DeadNodes lists the nodes Central currently believes dead, sorted —
// the harness diffs this against a scenario's expected casualties.
func (c *Central) DeadNodes() []string {
	out := make([]string, 0, len(c.nodeDead))
	for n := range c.nodeDead {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func sortIPs(ips []transport.IP) {
	for i := 1; i < len(ips); i++ {
		for j := i; j > 0 && ips[j-1] > ips[j]; j-- {
			ips[j-1], ips[j] = ips[j], ips[j-1]
		}
	}
}

// HandleReport implements core.CentralHook: apply one membership report
// and acknowledge it.
func (c *Central) HandleReport(src transport.Addr, r *wire.Report) {
	if !c.active {
		return
	}
	defer c.ack(src, r.Seq)
	if last, ok := c.lastSeq[src.IP]; ok && r.Seq <= last {
		return // duplicate of an already-applied report
	}
	c.lastSeq[src.IP] = r.Seq
	det := "delta"
	if r.Full {
		det = "full"
	}
	c.trace(trace.Record{Kind: trace.KReportApplied, Peer: src.IP,
		Group: r.Leader, Version: r.Version, Token: r.Seq, Detail: det})
	if c.OnReport != nil {
		c.OnReport(src, r)
	}
	if r.Full {
		c.applyFull(src, r)
	} else {
		if c.groups[r.Leader] == nil {
			// A delta without a baseline: we are missing state for this
			// group. Apply what we can and ask the reporter for a full.
			defer func() {
				req := wire.Encode(&wire.ResyncRequest{From: c.ep.LocalIP()})
				_ = c.ep.Unicast(transport.PortReport, src, req)
			}()
		}
		c.applyDelta(src, r)
	}
	c.sweepExpectedMoves()
	// Membership may have shifted the next-in-line admin adapter.
	c.refreshStream()
}

func (c *Central) ack(src transport.Addr, seq uint64) {
	if c.ep == nil {
		return
	}
	ack := &wire.ReportAck{From: c.ep.LocalIP(), Seq: seq}
	pkt := wire.NewPacket(ack)
	_ = c.ep.Unicast(transport.PortReport, src, pkt.Bytes())
	pkt.Free()
}

func (c *Central) applyFull(src transport.Addr, r *wire.Report) {
	// A takeover report names the group (leader + version) it supersedes:
	// the successor won leadership after verifying the old leader's death.
	// Old-group members absent from the new membership departed (typically
	// just the dead leader); the group is rekeyed under the new leader.
	// The version guard skips the inference when the old leader's address
	// now keys an unrelated, newer lineage (it moved and re-formed).
	if r.PrevLeader != 0 && r.PrevLeader != r.Leader {
		if og := c.groups[r.PrevLeader]; og != nil && og.version <= r.PrevVersion {
			inNew := make(map[transport.IP]bool, len(r.Members))
			for _, m := range r.Members {
				inNew[m.IP] = true
			}
			for ip, m := range og.members {
				if !inNew[ip] {
					c.memberLeft(r.PrevLeader, m)
				}
			}
			delete(c.groups, r.PrevLeader)
			c.jGroupRemove(r.PrevLeader)
			c.publish(event.Event{Kind: event.LeaderChanged, Group: r.Leader,
				Detail: fmt.Sprintf("took over from %v", r.PrevLeader)})
		}
	}
	// A Fresh report is a lineage break: the sender reformed after total
	// isolation and knows nothing about its previous group. Displace the
	// old same-key group's members into limbo — alive, but expected to
	// resurface somewhere within the move window.
	if r.Fresh {
		if og := c.groups[r.Leader]; og != nil {
			for ip := range og.members {
				if ip != r.Leader {
					c.limbo[ip] = c.clock.Now() + c.cfg.MoveWindow
				}
			}
			delete(c.groups, r.Leader)
		}
	}
	g := c.groups[r.Leader]
	fresh := g == nil
	if fresh {
		g = &group{leader: r.Leader, members: make(map[transport.IP]wire.Member)}
		c.groups[r.Leader] = g
	}
	if !fresh && r.Version < g.version {
		g.src = src // still the live reporter, even when the full is stale
		return
	}
	oldVersion, oldSrc := g.version, g.src
	g.src = src
	oldMembers := g.members
	g.members = make(map[transport.IP]wire.Member, len(r.Members))
	g.version = r.Version
	for _, m := range r.Members {
		g.members[m.IP] = m
	}
	if fresh {
		c.publish(event.Event{Kind: event.GroupFormed, Group: r.Leader,
			Detail: fmt.Sprintf("%d members", len(r.Members))})
	}
	changed := fresh
	// Joins: present now, absent before.
	for _, m := range r.Members {
		if _, had := oldMembers[m.IP]; !had {
			c.memberJoined(r.Leader, m, fresh)
			changed = true
		}
	}
	// Departures: present before, absent now.
	for ip, m := range oldMembers {
		if _, still := g.members[ip]; !still {
			c.memberLeft(r.Leader, m)
			changed = true
		}
	}
	if changed {
		// Resync-triggered no-op fulls must not reset the stability clock.
		c.touch()
	}
	if changed || g.version != oldVersion || g.src != oldSrc {
		c.jGroup(g)
	}
}

func (c *Central) applyDelta(src transport.Addr, r *wire.Report) {
	g := c.groups[r.Leader]
	if g == nil {
		// Delta without a baseline (lost state); synthesize the group so
		// we at least track these members — the next full report heals.
		g = &group{leader: r.Leader, members: make(map[transport.IP]wire.Member)}
		c.groups[r.Leader] = g
		c.publish(event.Event{Kind: event.GroupFormed, Group: r.Leader, Detail: "from delta"})
	}
	oldVersion := g.version
	g.src = src
	g.version = r.Version
	changed := false
	for _, m := range r.Members {
		if _, had := g.members[m.IP]; !had {
			g.members[m.IP] = m
			c.memberJoined(r.Leader, m, false)
			changed = true
		}
	}
	for _, ip := range r.Left {
		if m, had := g.members[ip]; had {
			delete(g.members, ip)
			c.memberLeft(r.Leader, m)
			changed = true
		}
	}
	if changed {
		c.touch()
		c.publish(event.Event{Kind: event.GroupChanged, Group: r.Leader,
			Detail: fmt.Sprintf("v%d, %d members", r.Version, len(g.members))})
	}
	if len(g.members) == 0 {
		delete(c.groups, r.Leader)
		c.jGroupRemove(r.Leader)
	} else if changed || g.version != oldVersion {
		c.jGroup(g)
	}
}

// memberJoined integrates one adapter into the view.
func (c *Central) memberJoined(leader transport.IP, m wire.Member, initial bool) {
	delete(c.limbo, m.IP) // surfaced somewhere; no longer unaccounted
	// An adapter lives in exactly one group: a join here is an implicit
	// departure from any other group (that is how merges appear). The old
	// group's leader may not know it lost the member (an orphan reforms
	// without its leader dropping it), in which case our record and the
	// leader's reported state have silently diverged — ask that group for
	// a full resync so later changes reconcile.
	for l, og := range c.groups {
		if l != leader {
			if _, in := og.members[m.IP]; in {
				delete(og.members, m.IP)
				if len(og.members) == 0 {
					delete(c.groups, l)
					c.jGroupRemove(l)
				} else {
					c.jGroup(og)
					c.requestGroupResync(og)
				}
			}
		}
	}
	if m.Node != "" {
		set := c.nodesSeen[m.Node]
		if set == nil {
			set = make(map[transport.IP]bool)
			c.nodesSeen[m.Node] = set
		}
		set[m.IP] = true
	}
	prev := c.adapters[m.IP]
	wasDead := prev != nil && !prev.alive
	movedGroup := prev != nil && prev.group != leader
	diedAt := time.Duration(0)
	if prev != nil {
		diedAt = prev.diedAt
	}
	c.adapters[m.IP] = &adapterInfo{member: m, alive: true, group: leader}
	c.jAdapter(c.adapters[m.IP])

	deadline, expected := c.expectedMoves[m.IP]
	switch {
	case expected && movedGroup && c.clock.Now() <= deadline:
		// A Central-initiated move completed. The adapter may have been
		// reported dead in between (ordinary member move) or regrouped
		// silently (it led its old group and reformed); either way the
		// expectation is satisfied.
		delete(c.expectedMoves, m.IP)
		c.jMoveDone(m.IP)
		c.publish(event.Event{Kind: event.NodeMoved, Adapter: m.IP, Node: m.Node,
			Group: leader, Detail: "expected (central-initiated)"})
	case wasDead && movedGroup && c.clock.Now()-diedAt <= c.cfg.MoveWindow:
		// Death in one group + join in another inside the window: the
		// adapter moved domains; only Central can see this (paper §3.1) —
		// and nobody planned it.
		c.publish(event.Event{Kind: event.NodeMoved, Adapter: m.IP, Node: m.Node,
			Group: leader, Detail: "UNEXPECTED"})
		c.publish(event.Event{Kind: event.VerifyMismatch, Adapter: m.IP, Node: m.Node,
			Detail: "unplanned domain change"})
	case wasDead:
		c.publish(event.Event{Kind: event.AdapterRecovered, Adapter: m.IP, Node: m.Node, Group: leader})
	case !initial && prev == nil:
		c.publish(event.Event{Kind: event.AdapterJoined, Adapter: m.IP, Node: m.Node, Group: leader})
	}
	c.correlateNode(m.Node)
	c.correlateSwitch(m.IP)
}

// memberLeft marks one adapter dead (or moving).
func (c *Central) memberLeft(leader transport.IP, m wire.Member) {
	info := c.adapters[m.IP]
	if info == nil {
		info = &adapterInfo{member: m}
		c.adapters[m.IP] = info
	}
	if !info.alive {
		return
	}
	if info.group != leader && info.group != 0 {
		// Already accounted to a different group (it moved before this
		// departure report arrived): cleanup, not a death.
		return
	}
	info.alive = false
	info.diedAt = c.clock.Now()
	info.group = leader
	c.jAdapter(info)

	_, expected := c.expectedMoves[m.IP]
	c.publish(event.Event{Kind: event.AdapterFailed, Adapter: m.IP, Node: m.Node,
		Group: leader, Suppressed: expected,
		Detail: map[bool]string{true: "expected move in progress", false: ""}[expected]})
	c.correlateNode(m.Node)
	c.correlateSwitch(m.IP)
}

// correlateNode applies the paper's §3 inference: a node is down exactly
// when all of its adapters are down.
func (c *Central) correlateNode(node string) {
	if node == "" {
		return
	}
	known := c.knownNodeAdapters(node)
	if len(known) == 0 {
		return
	}
	allDead := true
	for ip := range known {
		if a, ok := c.adapters[ip]; !ok || a.alive {
			allDead = false
			break
		}
	}
	switch {
	case allDead && !c.nodeDead[node]:
		c.nodeDead[node] = true
		c.jNode(node, true)
		suppressed := true
		for ip := range known {
			if _, exp := c.expectedMoves[ip]; !exp {
				suppressed = false
			}
		}
		c.publish(event.Event{Kind: event.NodeFailed, Node: node, Suppressed: suppressed,
			Detail: fmt.Sprintf("all %d adapters down", len(known))})
	case !allDead && c.nodeDead[node]:
		delete(c.nodeDead, node)
		c.jNode(node, false)
		c.publish(event.Event{Kind: event.NodeRecovered, Node: node})
	}
}

// knownNodeAdapters merges report-derived and database-derived adapter
// sets for a node.
func (c *Central) knownNodeAdapters(node string) map[transport.IP]bool {
	out := make(map[transport.IP]bool)
	for ip := range c.nodesSeen[node] {
		out[ip] = true
	}
	if c.db != nil {
		if spec, ok := c.db.Node(node); ok {
			for _, ip := range spec.Adapters {
				out[ip] = true
			}
		}
	}
	return out
}

// wiringOf resolves which switch carries an adapter and what else is
// wired there, preferring SNMP-discovered wiring over the database
// (paper §3: the prototype "relies on a configuration database to
// identify how nodes are connected"; the stated future plan — querying
// the switches directly — is DiscoverWiring).
func (c *Central) wiringOf(ip transport.IP) (name string, wired []transport.IP, ok bool) {
	if sw, found := c.snmpSwitchOf[ip]; found {
		return sw, c.snmpWiring[sw], true
	}
	if c.db == nil {
		return "", nil, false
	}
	spec, found := c.db.Adapter(ip)
	if !found || spec.Switch == "" {
		return "", nil, false
	}
	return spec.Switch, c.db.AdaptersOnSwitch(spec.Switch), true
}

// correlateSwitch applies the switch inference: a switch whose every
// wired, known adapter is dead has itself failed.
func (c *Central) correlateSwitch(ip transport.IP) {
	name, wired, ok := c.wiringOf(ip)
	if !ok || len(wired) == 0 {
		return
	}
	allDead := true
	anySeen := false
	for _, w := range wired {
		a, known := c.adapters[w]
		if !known {
			continue
		}
		anySeen = true
		if a.alive {
			allDead = false
			break
		}
	}
	if !anySeen {
		return
	}
	switch {
	case allDead && !c.switchDead[name]:
		c.switchDead[name] = true
		c.jSwitch(name, true)
		c.publish(event.Event{Kind: event.SwitchFailed, Node: name,
			Detail: fmt.Sprintf("all %d wired adapters down", len(wired))})
	case !allDead && c.switchDead[name]:
		delete(c.switchDead, name)
		c.jSwitch(name, false)
		c.publish(event.Event{Kind: event.SwitchRecovered, Node: name})
	}
}

// sweepExpectedMoves drops moves that never completed.
func (c *Central) sweepExpectedMoves() {
	now := c.clock.Now()
	for ip, deadline := range c.expectedMoves {
		if now > deadline {
			delete(c.expectedMoves, ip)
			c.jMoveDone(ip)
			node := ""
			if a := c.adapters[ip]; a != nil {
				node = a.member.Node
			} else if c.db != nil {
				if spec, ok := c.db.Adapter(ip); ok {
					node = spec.Node
				}
			}
			c.publish(event.Event{Kind: event.VerifyMismatch, Adapter: ip,
				Node: node, Detail: "planned move never completed"})
			// The expectation was abandoned, not correlated, so no
			// NodeMoved will ever arrive to resolve the incident.
			c.closeIncidentIfMoveDone(node)
		}
	}
}
