package conformance

import (
	"strings"
	"testing"

	"repro/internal/configdb"
	"repro/internal/transport"
)

// groupsFromTruth rebuilds the discovered-topology groups a faithful
// Central would report for a given ground truth: one group per
// segment, led by any member.
func groupsFromTruth(gt *GroundTruth) map[string][]string {
	groups := map[string][]string{}
	for _, members := range gt.Segments {
		groups[members[0]] = members
	}
	return groups
}

func TestGroundTruthDiffClean(t *testing.T) {
	f := DefaultFarm()
	gt := f.GroundTruth(nil, nil, nil)
	if len(gt.Segments) != 3 {
		t.Fatalf("want 3 segments, got %v", gt.Segments)
	}
	topo := &TopologyDoc{Stable: true, Groups: groupsFromTruth(gt)}
	if diff := gt.Diff(topo); len(diff) != 0 {
		t.Fatalf("clean topology diffed: %v", diff)
	}
}

func TestGroundTruthDiffDeadNode(t *testing.T) {
	f := DefaultFarm()
	gt := f.GroundTruth(nil, map[string]bool{"web-2": true}, nil)
	for _, ip := range gt.Segments["vlan-101"] {
		if ip == f.DataIP("web-2").String() {
			t.Fatalf("dead node's adapter %s still in ground truth", ip)
		}
	}
	topo := &TopologyDoc{Groups: groupsFromTruth(gt)}
	diff := gt.Diff(topo)
	if len(diff) != 1 || !strings.Contains(diff[0], "web-2") {
		t.Fatalf("want one missing-dead-node complaint, got %v", diff)
	}
	topo.DeadNodes = []string{"web-2"}
	if diff := gt.Diff(topo); len(diff) != 0 {
		t.Fatalf("dead node reported but still diffed: %v", diff)
	}
	topo.DeadNodes = []string{"web-2", "web-3"}
	diff = gt.Diff(topo)
	if len(diff) != 1 || !strings.Contains(diff[0], "web-3") {
		t.Fatalf("want one falsely-dead complaint, got %v", diff)
	}
}

func TestGroundTruthDiffMovedAdapter(t *testing.T) {
	f := DefaultFarm()
	moved := f.DataIP("web-1") // starts on VLAN 101
	vlanOf := func(ip transport.IP) int {
		if ip == moved {
			return 102
		}
		return 0
	}
	gt := f.GroundTruth(vlanOf, nil, nil)
	for _, ip := range gt.Segments["vlan-101"] {
		if ip == moved.String() {
			t.Fatalf("moved adapter still listed on vlan-101")
		}
	}
	found := false
	for _, ip := range gt.Segments["vlan-102"] {
		if ip == moved.String() {
			found = true
		}
	}
	if !found {
		t.Fatalf("moved adapter missing from vlan-102: %v", gt.Segments)
	}

	// A Central still believing the pre-move reality must diff on both
	// affected segments.
	stale := f.GroundTruth(nil, nil, nil)
	diff := gt.Diff(&TopologyDoc{Groups: groupsFromTruth(stale)})
	if len(diff) != 4 { // 2 unmatched segments + 2 orphan groups
		t.Fatalf("want 4 divergences, got %v", diff)
	}
}

func TestGroundTruthDiffMismatches(t *testing.T) {
	gt := &GroundTruth{ExpectedMismatches: []string{"wrong-segment 10.0.2.1"}}
	verdicts := []string{"wrong-segment 10.0.2.1 vlan=200 (configured vlan=100)"}
	if diff := gt.DiffMismatches(verdicts); len(diff) != 0 {
		t.Fatalf("expected mismatch not matched: %v", diff)
	}
	if diff := gt.DiffMismatches(nil); len(diff) != 1 {
		t.Fatalf("want one missing-verdict complaint, got %v", diff)
	}
	gt.ExpectedMismatches = nil
	if diff := gt.DiffMismatches(verdicts); len(diff) != 1 {
		t.Fatalf("want one unexpected-verdict complaint, got %v", diff)
	}
}

func TestFarmSpecConfigDBLies(t *testing.T) {
	f := DefaultFarm()
	wrong := f.DataIP("web-2")
	omit := f.DataIP("web-4")
	ghost := f.AdminIP("web-1") + 8
	f.DBWrongVLAN = map[transport.IP]int{wrong: 102}
	f.DBOmit = map[transport.IP]bool{omit: true}
	f.DBGhosts = append(f.DBGhosts, configdb.AdapterSpec{
		IP: ghost, Node: "web-9", Index: 0, VLAN: AdminVLAN,
		Switch: f.SwitchName, Port: 9,
	})

	db, err := f.ConfigDB()
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := db.Adapter(wrong); !ok || a.VLAN != 102 {
		t.Fatalf("wrong-VLAN lie not planted: %+v ok=%v", a, ok)
	}
	if _, ok := db.Adapter(omit); ok {
		t.Fatalf("omitted adapter still present in db")
	}
	if _, ok := db.Adapter(ghost); !ok {
		t.Fatalf("ghost adapter missing from db")
	}
}
