package core

import "repro/internal/trace"

// SetTracer installs the protocol flight recorder. Must be called before
// Start. A nil (or absent) recorder makes every instrumentation point a
// no-op, so the protocol code records unconditionally.
func (d *Daemon) SetTracer(r *trace.Recorder) { d.tracer = r }

// Tracer returns the installed flight recorder (possibly nil).
func (d *Daemon) Tracer() *trace.Recorder { return d.tracer }

// trace stamps a record with this daemon's clock and node name and
// captures it. It takes a pointer so the Record literal at each call
// site stays on the caller's stack and hot paths don't pay a struct
// copy per instrumentation point when no recorder is installed.
func (d *Daemon) trace(rec *trace.Record) {
	if d.tracer == nil {
		return
	}
	rec.T = d.clock.Now()
	rec.Node = d.node
	d.tracer.Record(*rec)
}

// trace captures a record on behalf of one adapter.
func (p *adapterProto) trace(rec *trace.Record) {
	if p.d.tracer == nil {
		return
	}
	rec.Self = p.self
	p.d.trace(rec)
}
