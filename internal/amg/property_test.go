package amg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/transport"
	"repro/internal/wire"
)

// randomMembership builds a membership with n distinct random addresses.
func randomMembership(rng *rand.Rand, n int) Membership {
	seen := map[transport.IP]bool{}
	var ms []wire.Member
	for len(ms) < n {
		ip := transport.IP(rng.Uint32())
		if ip == 0 || seen[ip] {
			continue
		}
		seen[ip] = true
		ms = append(ms, wire.Member{IP: ip})
	}
	return New(uint64(rng.Intn(100)), ms)
}

// Property: Subgroups partitions the membership exactly — every member in
// exactly one subgroup, order preserved, sizes bounded.
func TestPropertySubgroupsPartition(t *testing.T) {
	f := func(seed int64, nRaw, sizeRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%64) + 1
		size := int(sizeRaw%12) + 2
		g := randomMembership(rng, n)
		subs := g.Subgroups(size)
		seen := map[transport.IP]int{}
		idx := 0
		for _, sub := range subs {
			if len(sub) == 0 || len(sub) > size {
				return false
			}
			for _, m := range sub {
				seen[m.IP]++
				// Order preserved: members appear in rank order globally.
				if g.Members[idx].IP != m.IP {
					return false
				}
				idx++
			}
		}
		if len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		// SubgroupOf agrees with the partition.
		for i, sub := range subs {
			for _, m := range sub {
				if g.SubgroupOf(m.IP, size) != i {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: WithJoined then Without of the same members is identity on
// the IP set (though the version advances).
func TestPropertyJoinRemoveIdentity(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%32) + 1
		k := int(kRaw%8) + 1
		g := randomMembership(rng, n)
		extra := randomMembership(rng, k)
		// Ensure disjoint.
		var add []wire.Member
		for _, m := range extra.Members {
			if !g.Contains(m.IP) {
				add = append(add, m)
			}
		}
		g2 := g.WithJoined(add...)
		var ips []transport.IP
		for _, m := range add {
			ips = append(ips, m.IP)
		}
		g3 := g2.Without(ips...)
		return g3.SameMembers(g) && g3.Version > g.Version
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Diff is consistent — applying the reported join/leave delta
// to the old membership reproduces the new IP set.
func TestPropertyDiffAppliesCleanly(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		old := randomMembership(rng, rng.Intn(20)+1)
		cur := old
		// Random edits.
		for i := 0; i < rng.Intn(6); i++ {
			if rng.Intn(2) == 0 && cur.Size() > 1 {
				cur = cur.Without(cur.Members[rng.Intn(cur.Size())].IP)
			} else {
				cur = cur.WithJoined(wire.Member{IP: transport.IP(rng.Uint32() | 1)})
			}
		}
		joined, left := cur.Diff(old)
		rebuilt := old.WithJoined(joined...).Without(left...)
		return rebuilt.SameMembers(cur)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the leader is always the maximum, the successor the second
// maximum.
func TestPropertyLeaderOrder(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%40) + 2
		g := randomMembership(rng, n)
		var max1, max2 transport.IP
		for _, m := range g.Members {
			if m.IP > max1 {
				max2 = max1
				max1 = m.IP
			} else if m.IP > max2 {
				max2 = m.IP
			}
		}
		return g.Leader() == max1 && g.Successor() == max2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
