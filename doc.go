// Package gulfstream is a complete reproduction of "GulfStream: a System
// for Dynamic Topology Management in Multi-domain Server Farms"
// (Fakhouri, Goldszmidt, Kalantar, Pershing, Gupta — IEEE CLUSTER 2001):
// a distributed system that discovers the network topology of a
// VLAN-partitioned server farm, organizes network adapters into Adapter
// Membership Groups (AMGs) with two-phase-commit membership, detects
// failures with heartbeat rings (plus the paper's §4.2 scalability
// alternatives), reports membership deltas up to GulfStream Central, and
// reconfigures domains by rewriting switch VLANs over SNMP.
//
// This top-level package is the public API: it assembles the internal
// building blocks (deterministic discrete-event simulator, switched-VLAN
// network, SNMP subset, the daemon protocol, GulfStream Central, the farm
// scenario harness) behind a small set of types. The typical entry point
// is a Farm:
//
//	f, err := gulfstream.NewFarm(gulfstream.Spec{
//		Seed:       1,
//		AdminNodes: 2,
//		Domains: []gulfstream.DomainSpec{
//			{Name: "acme", FrontEnds: 2, BackEnds: 3},
//		},
//		RecordEvents: true,
//	})
//	f.Start()
//	at, ok := f.RunUntilStable(2 * time.Minute)
//
// Everything runs on a virtual clock: farms with hundreds of adapters
// simulate minutes of protocol time in milliseconds, deterministically
// for a given Spec.Seed. The same daemon code also runs over real UDP
// multicast via cmd/gsd.
//
// See DESIGN.md for the architecture and the paper-to-module map, and
// EXPERIMENTS.md for the reproduced evaluation (Figure 5, Formula 1, the
// loss analysis, and the §3/§4.2 trade-off tables).
package gulfstream
