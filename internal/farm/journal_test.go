package farm

import (
	"testing"
	"time"

	"repro/internal/event"
)

// journalSpec is fastSpec with per-node state journals enabled.
func journalSpec(seed int64) Spec {
	spec := fastSpec(seed)
	spec.Journal = true
	return spec
}

// centralHost returns the node currently hosting Central.
func centralHost(f *Farm) string {
	for _, name := range f.order {
		if f.Daemons[name].Running() && f.Daemons[name].HostingCentral() {
			return name
		}
	}
	return ""
}

func TestWarmStandbyStreams(t *testing.T) {
	spec := journalSpec(21)
	spec.AdminNodes = 3
	spec.UniformNodes = 5
	spec.UniformAdapters = 2
	f, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	if _, ok := f.RunUntilStable(60 * time.Second); !ok {
		t.Fatal("farm never stabilized")
	}
	// Give the stream a beat to drain after the last view change.
	f.RunFor(5 * time.Second)

	host := centralHost(f)
	if host == "" {
		t.Fatal("nobody hosts central")
	}
	view := f.ActiveCentral().Groups()

	// Exactly one other node — the next-in-line admin adapter — must have
	// received the full view over the stream, marked as streamed.
	standby := ""
	for name, j := range f.Journals {
		if name == host || !j.Loaded() {
			continue
		}
		if standby != "" {
			t.Fatalf("two standbys streamed to: %s and %s", standby, name)
		}
		standby = name
	}
	if standby == "" {
		t.Fatal("no standby received the journal stream")
	}
	st := f.Journals[standby].State()
	if len(st.Groups) != len(view) {
		t.Fatalf("standby journal has %d groups, active view has %d", len(st.Groups), len(view))
	}
	for leader, members := range view {
		gs := st.Groups[leader]
		if gs == nil {
			t.Fatalf("standby journal missing group %v", leader)
		}
		if len(gs.Members) != len(members) {
			t.Fatalf("group %v: standby has %d members, active %d", leader, len(gs.Members), len(members))
		}
		if !gs.Streamed {
			t.Fatalf("group %v not marked streamed on the standby", leader)
		}
	}
}

func TestCentralFailoverWithJournalUsesStandby(t *testing.T) {
	spec := journalSpec(22)
	spec.AdminNodes = 3
	spec.UniformNodes = 5
	spec.UniformAdapters = 2
	f, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	if _, ok := f.RunUntilStable(60 * time.Second); !ok {
		t.Fatal("farm never stabilized")
	}
	f.RunFor(5 * time.Second)

	host := centralHost(f)
	if host == "" {
		t.Fatal("nobody hosts central")
	}
	before := f.ActiveCentral()
	groupsBefore := len(before.Groups())

	if err := f.KillNode(host); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.RunUntilStable(120 * time.Second); !ok {
		t.Fatal("no stability after central failover")
	}
	after := f.ActiveCentral()
	if after == nil || after == before {
		t.Fatal("central did not move")
	}
	if f.Bus.Count(event.CentralElected) < 2 {
		t.Fatal("no second CentralElected event")
	}
	if got := len(after.Groups()); got != groupsBefore {
		t.Fatalf("rebuilt view has %d groups, want %d", got, groupsBefore)
	}
	// The successor restored from its streamed journal: its journal must
	// have been loaded before activation and its epoch advanced past the
	// first regime's.
	newHost := centralHost(f)
	j := f.Journals[newHost]
	if j == nil || !j.Loaded() {
		t.Fatal("successor has no loaded journal")
	}
	if j.Epoch() < 2 {
		t.Fatalf("successor epoch = %d, want >= 2 (new regime over streamed state)", j.Epoch())
	}
}
