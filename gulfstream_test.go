package gulfstream

import (
	"testing"
	"time"
)

// The public API, exercised the way a downstream user would.

func TestPublicAPIEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BeaconPhase = 2 * time.Second
	cfg.StableWait = time.Second
	cc := DefaultCentralConfig()
	cc.StabilizeWait = 3 * time.Second
	f, err := NewFarm(Spec{
		Seed:       5,
		AdminNodes: 2,
		Domains: []DomainSpec{
			{Name: "acme", FrontEnds: 2, BackEnds: 2},
		},
		Core:         cfg,
		Central:      cc,
		RecordEvents: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	f.Bus.Subscribe(func(e Event) { events = append(events, e) })
	f.Start()
	at, ok := f.RunUntilStable(90 * time.Second)
	if !ok {
		t.Fatal("farm never stabilized")
	}
	if at <= 0 {
		t.Fatalf("StableAt = %v", at)
	}
	c := f.ActiveCentral()
	if c == nil || c.GroupCount() != 3 {
		t.Fatalf("central groups = %v", c.Groups())
	}
	if len(events) == 0 {
		t.Fatal("no events published")
	}
	if ms := c.Verify(); len(ms) != 0 {
		t.Fatalf("verification: %v", ms)
	}
	// Failure round-trip.
	if err := f.KillNode("acme-be-00"); err != nil {
		t.Fatal(err)
	}
	f.RunFor(30 * time.Second)
	if c.NodeAlive("acme-be-00") {
		t.Fatal("node failure not correlated")
	}
	if f.Bus.Count(NodeFailed) == 0 {
		t.Fatal("no NodeFailed event")
	}
}

func TestPublicHelpers(t *testing.T) {
	ip, ok := ParseIP("10.1.2.3")
	if !ok || ip != MakeIP(10, 1, 2, 3) {
		t.Fatal("ParseIP/MakeIP disagree")
	}
	if _, err := ParseDetector("randping"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseDetector("nope"); err == nil {
		t.Fatal("bad detector parsed")
	}
	if FrontVLAN(0) == BackVLAN(0) || FrontVLAN(0) == FrontVLAN(1) {
		t.Fatal("VLAN helpers collide")
	}
	if AdminVLAN != 1 {
		t.Fatal("AdminVLAN changed")
	}
	want := 25 * time.Second
	if got := Stabilization(5*time.Second, 5*time.Second, 15*time.Second); got != want {
		t.Fatalf("Stabilization = %v", got)
	}
	if DefaultDetectorParams().Interval <= 0 {
		t.Fatal("bad default detector params")
	}
}

func TestSpecValidationSurfacesErrors(t *testing.T) {
	if _, err := NewFarm(Spec{Seed: 1}); err == nil {
		t.Fatal("zero-node farm accepted")
	}
	cfg := DefaultConfig()
	cfg.BeaconInterval = -1
	if _, err := NewFarm(Spec{Seed: 1, AdminNodes: 2, Core: cfg}); err == nil {
		t.Fatal("invalid config accepted")
	}
}
