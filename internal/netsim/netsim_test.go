package netsim

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/transport"
)

func ip(d byte) transport.IP { return transport.MakeIP(10, 0, 0, d) }

type fixture struct {
	sched *sim.Scheduler
	res   *StaticResolver
	net   *Network
}

func newFixture(seed int64) *fixture {
	s := sim.NewScheduler(seed)
	r := NewStaticResolver()
	return &fixture{sched: s, res: r, net: New(s, r)}
}

func (f *fixture) adapter(d byte, seg string) *Adapter {
	a := f.net.AddAdapter(ip(d), "node")
	f.res.Attach(ip(d), seg)
	return a
}

func TestUnicastSameSegment(t *testing.T) {
	f := newFixture(1)
	a := f.adapter(1, "s1")
	b := f.adapter(2, "s1")
	var got []byte
	var gotSrc transport.Addr
	b.Bind(100, func(src, dst transport.Addr, p []byte) {
		gotSrc = src
		got = append([]byte(nil), p...)
	})
	if err := a.Unicast(100, transport.Addr{IP: b.LocalIP(), Port: 100}, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	f.sched.Run()
	if string(got) != "hi" {
		t.Fatalf("payload = %q, want hi", got)
	}
	if gotSrc.IP != a.LocalIP() || gotSrc.Port != 100 {
		t.Fatalf("src = %v", gotSrc)
	}
}

func TestUnicastCrossSegmentVanishes(t *testing.T) {
	f := newFixture(1)
	a := f.adapter(1, "s1")
	b := f.adapter(2, "s2")
	delivered := false
	b.Bind(100, func(_, _ transport.Addr, _ []byte) { delivered = true })
	if err := a.Unicast(100, transport.Addr{IP: b.LocalIP(), Port: 100}, []byte("x")); err != nil {
		t.Fatalf("cross-segment send should not error locally: %v", err)
	}
	f.sched.Run()
	if delivered {
		t.Fatal("packet crossed segments; GulfStream assumes no inter-segment routing")
	}
}

func TestUnicastUnboundPortDropped(t *testing.T) {
	f := newFixture(1)
	a := f.adapter(1, "s1")
	b := f.adapter(2, "s1")
	_ = b
	if err := a.Unicast(100, transport.Addr{IP: ip(2), Port: 999}, []byte("x")); err != nil {
		t.Fatal(err)
	}
	f.sched.Run() // must not panic
}

func TestMulticastScopedToSegmentAndGroup(t *testing.T) {
	f := newFixture(1)
	a := f.adapter(1, "s1")
	b := f.adapter(2, "s1")
	c := f.adapter(3, "s1") // same segment, not joined
	d := f.adapter(4, "s2") // other segment, joined
	group := transport.Addr{IP: transport.BeaconGroup, Port: 200}
	recv := map[transport.IP]int{}
	for _, ad := range []*Adapter{a, b, c, d} {
		ad := ad
		ad.Bind(200, func(_, _ transport.Addr, _ []byte) { recv[ad.LocalIP()]++ })
	}
	a.JoinGroup(transport.BeaconGroup, 200)
	b.JoinGroup(transport.BeaconGroup, 200)
	d.JoinGroup(transport.BeaconGroup, 200)
	if err := a.Multicast(200, group, []byte("beacon")); err != nil {
		t.Fatal(err)
	}
	f.sched.Run()
	if recv[b.LocalIP()] != 1 {
		t.Error("joined same-segment adapter missed multicast")
	}
	if recv[a.LocalIP()] != 0 {
		t.Error("sender received its own multicast")
	}
	if recv[c.LocalIP()] != 0 {
		t.Error("non-member received multicast")
	}
	if recv[d.LocalIP()] != 0 {
		t.Error("multicast leaked across segments")
	}
}

func TestLeaveGroup(t *testing.T) {
	f := newFixture(1)
	a := f.adapter(1, "s1")
	b := f.adapter(2, "s1")
	group := transport.Addr{IP: transport.BeaconGroup, Port: 200}
	n := 0
	b.Bind(200, func(_, _ transport.Addr, _ []byte) { n++ })
	b.JoinGroup(transport.BeaconGroup, 200)
	a.Multicast(200, group, []byte("1"))
	f.sched.Run()
	b.LeaveGroup(transport.BeaconGroup, 200)
	a.Multicast(200, group, []byte("2"))
	f.sched.Run()
	if n != 1 {
		t.Fatalf("received %d, want 1", n)
	}
}

func TestFailureModes(t *testing.T) {
	f := newFixture(1)
	a := f.adapter(1, "s1")
	b := f.adapter(2, "s1")
	count := 0
	b.Bind(100, func(_, _ transport.Addr, _ []byte) { count++ })
	acount := 0
	a.Bind(100, func(_, _ transport.Addr, _ []byte) { acount++ })
	dst := transport.Addr{IP: b.LocalIP(), Port: 100}
	back := transport.Addr{IP: a.LocalIP(), Port: 100}

	// FailStop: cannot send.
	a.SetMode(FailStop)
	if err := a.Unicast(100, dst, []byte("x")); err != ErrAdapterDown {
		t.Fatalf("FailStop send err = %v, want ErrAdapterDown", err)
	}
	// FailRecv: can send, cannot receive.
	a.SetMode(FailRecv)
	if err := a.Unicast(100, dst, []byte("x")); err != nil {
		t.Fatalf("FailRecv should still send: %v", err)
	}
	b.Unicast(100, back, []byte("y"))
	f.sched.Run()
	if count != 1 {
		t.Fatalf("b received %d, want 1", count)
	}
	if acount != 0 {
		t.Fatal("FailRecv adapter received a packet")
	}
	// FailSend: can receive, cannot send usefully... sends error.
	a.SetMode(FailSend)
	if err := a.Unicast(100, dst, []byte("x")); err != ErrAdapterDown {
		t.Fatalf("FailSend send err = %v, want ErrAdapterDown", err)
	}
	b.Unicast(100, back, []byte("y"))
	f.sched.Run()
	if acount != 1 {
		t.Fatalf("FailSend adapter should still receive; got %d", acount)
	}
	// Healthy again.
	a.SetMode(Healthy)
	if !a.Loopback() {
		t.Fatal("healthy attached adapter must pass loopback")
	}
}

func TestLoopbackDetectsPartialFailure(t *testing.T) {
	f := newFixture(1)
	a := f.adapter(1, "s1")
	for _, m := range []FailureMode{FailStop, FailRecv, FailSend} {
		a.SetMode(m)
		if a.Loopback() {
			t.Errorf("loopback passed under %v", m)
		}
	}
	a.SetMode(Healthy)
	f.res.Detach(a.LocalIP())
	if a.Loopback() {
		t.Error("loopback passed with no segment attachment")
	}
}

func TestDetachedSenderErrors(t *testing.T) {
	f := newFixture(1)
	a := f.adapter(1, "s1")
	f.res.Detach(a.LocalIP())
	if err := a.Unicast(100, transport.Addr{IP: ip(2), Port: 100}, nil); err != ErrNoSegment {
		t.Fatalf("err = %v, want ErrNoSegment", err)
	}
}

func TestLossModel(t *testing.T) {
	f := newFixture(7)
	f.net.SetDefaultProfile(LinkProfile{Loss: 0.5, Latency: time.Millisecond})
	a := f.adapter(1, "s1")
	b := f.adapter(2, "s1")
	n := 0
	b.Bind(100, func(_, _ transport.Addr, _ []byte) { n++ })
	const total = 2000
	for i := 0; i < total; i++ {
		a.Unicast(100, transport.Addr{IP: b.LocalIP(), Port: 100}, []byte("x"))
	}
	f.sched.Run()
	if n < total*40/100 || n > total*60/100 {
		t.Fatalf("with 50%% loss received %d of %d", n, total)
	}
}

func TestLatencyAndJitterBounds(t *testing.T) {
	f := newFixture(3)
	f.net.SetSegmentProfile("s1", LinkProfile{Latency: 10 * time.Millisecond, Jitter: 5 * time.Millisecond})
	a := f.adapter(1, "s1")
	b := f.adapter(2, "s1")
	var arrivals []time.Duration
	b.Bind(100, func(_, _ transport.Addr, _ []byte) { arrivals = append(arrivals, f.sched.Now()) })
	for i := 0; i < 100; i++ {
		a.Unicast(100, transport.Addr{IP: b.LocalIP(), Port: 100}, []byte("x"))
	}
	f.sched.Run()
	if len(arrivals) != 100 {
		t.Fatalf("got %d arrivals", len(arrivals))
	}
	for _, at := range arrivals {
		if at < 10*time.Millisecond || at >= 15*time.Millisecond {
			t.Fatalf("arrival at %v outside [10ms,15ms)", at)
		}
	}
}

func TestSegmentMoveViaResolver(t *testing.T) {
	f := newFixture(1)
	a := f.adapter(1, "s1")
	b := f.adapter(2, "s1")
	c := f.adapter(3, "s2")
	group := transport.Addr{IP: transport.BeaconGroup, Port: 200}
	for _, ad := range []*Adapter{a, b, c} {
		ad.JoinGroup(transport.BeaconGroup, 200)
	}
	recv := map[transport.IP]int{}
	for _, ad := range []*Adapter{b, c} {
		ad := ad
		ad.Bind(200, func(_, _ transport.Addr, _ []byte) { recv[ad.LocalIP()]++ })
	}
	a.Multicast(200, group, []byte("1"))
	f.sched.Run()
	// Move a to s2 — the VLAN-rewrite path.
	f.res.Attach(a.LocalIP(), "s2")
	a.Multicast(200, group, []byte("2"))
	f.sched.Run()
	if recv[b.LocalIP()] != 1 {
		t.Errorf("b received %d, want 1 (only before the move)", recv[b.LocalIP()])
	}
	if recv[c.LocalIP()] != 1 {
		t.Errorf("c received %d, want 1 (only after the move)", recv[c.LocalIP()])
	}
}

func TestTapObservesTraffic(t *testing.T) {
	f := newFixture(9)
	f.net.SetDefaultProfile(LinkProfile{Loss: 1.0})
	a := f.adapter(1, "s1")
	b := f.adapter(2, "s1")
	b.Bind(100, func(_, _ transport.Addr, _ []byte) {})
	b.JoinGroup(transport.BeaconGroup, 200)
	var traces []Trace
	f.net.Tap(func(tr Trace) { traces = append(traces, tr) })
	a.Unicast(100, transport.Addr{IP: b.LocalIP(), Port: 100}, []byte("abc"))
	a.Multicast(200, transport.Addr{IP: transport.BeaconGroup, Port: 200}, []byte("de"))
	f.sched.Run()
	if len(traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(traces))
	}
	if traces[0].Multicast || traces[0].Bytes != 3 || traces[0].Dropped != 1 || traces[0].Receivers != 0 {
		t.Errorf("unicast trace = %+v", traces[0])
	}
	if !traces[1].Multicast || traces[1].Bytes != 2 || traces[1].Dropped != 1 {
		t.Errorf("multicast trace = %+v", traces[1])
	}
}

func TestPayloadIsolation(t *testing.T) {
	f := newFixture(1)
	a := f.adapter(1, "s1")
	b := f.adapter(2, "s1")
	var got []byte
	b.Bind(100, func(_, _ transport.Addr, p []byte) { got = p })
	buf := []byte("mutate-me")
	a.Unicast(100, transport.Addr{IP: b.LocalIP(), Port: 100}, buf)
	copy(buf, "XXXXXXXXX") // sender reuses its buffer before delivery
	f.sched.Run()
	if string(got) != "mutate-me" {
		t.Fatalf("delivered payload was aliased to the sender's buffer: %q", got)
	}
}

func TestDuplicateAdapterPanics(t *testing.T) {
	f := newFixture(1)
	f.adapter(1, "s1")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate adapter")
		}
	}()
	f.net.AddAdapter(ip(1), "other")
}

func TestAdaptersSorted(t *testing.T) {
	f := newFixture(1)
	f.adapter(9, "s1")
	f.adapter(1, "s1")
	f.adapter(5, "s1")
	as := f.net.Adapters()
	if len(as) != 3 {
		t.Fatalf("len = %d", len(as))
	}
	for i := 1; i < len(as); i++ {
		if as[i-1].LocalIP() >= as[i].LocalIP() {
			t.Fatal("Adapters() not sorted ascending")
		}
	}
}

func TestSegmentMembers(t *testing.T) {
	f := newFixture(1)
	f.adapter(1, "s1")
	f.adapter(2, "s2")
	f.adapter(3, "s1")
	got := f.net.SegmentMembers("s1")
	if len(got) != 2 || got[0] != ip(1) || got[1] != ip(3) {
		t.Fatalf("SegmentMembers(s1) = %v", got)
	}
	if len(f.net.SegmentMembers("nosuch")) != 0 {
		t.Fatal("unknown segment should have no members")
	}
}

func BenchmarkMulticastFanout64(b *testing.B) {
	f := newFixture(1)
	group := transport.Addr{IP: transport.BeaconGroup, Port: 200}
	var first *Adapter
	for i := 0; i < 64; i++ {
		a := f.net.AddAdapter(transport.MakeIP(10, 0, byte(i/250), byte(i%250+1)), "n")
		f.res.Attach(a.LocalIP(), "s1")
		a.JoinGroup(transport.BeaconGroup, 200)
		a.Bind(200, func(_, _ transport.Addr, _ []byte) {})
		if first == nil {
			first = a
		}
	}
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		first.Multicast(200, group, payload)
		f.sched.Run()
	}
}
