package exp

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/detect"
)

// The experiment tests run scaled-down variants of every table so that
// `go test` exercises each experiment end to end quickly; cmd/gsbench and
// bench_test.go run the full-size versions.

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("not a number: %q", s)
	}
	return v
}

func smallFig5() Fig5Options {
	o := DefaultFig5()
	o.NodeCounts = []int{2, 6, 12}
	o.BeaconPhases = []time.Duration{5 * time.Second, 10 * time.Second}
	return o
}

func TestFig5ShapeConstantInSize(t *testing.T) {
	o := smallFig5()
	tab, err := Fig5(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(o.NodeCounts) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Column 1 = Tb=5s series; column 2 = Tb=10s series.
	for col := 1; col <= 2; col++ {
		var vals []float64
		for _, row := range tab.Rows {
			vals = append(vals, parseF(t, row[col]))
		}
		lo, hi := vals[0], vals[0]
		for _, v := range vals {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		// The paper's finding: constant vs group size. Allow the skew +
		// protocol jitter, but nothing resembling growth with size.
		if hi-lo > 4.0 {
			t.Fatalf("column %d not constant: spread %.1f s (%v)", col, hi-lo, vals)
		}
	}
	// Tb=10 series must sit ~5 s above Tb=5 series.
	gap := parseF(t, tab.Rows[0][2]) - parseF(t, tab.Rows[0][1])
	if gap < 3.0 || gap > 7.5 {
		t.Fatalf("Tb gap = %.1f s, want ~5", gap)
	}
	// δ columns must be small and nonnegative-ish.
	for _, row := range tab.Rows {
		for col := 3; col <= 4; col++ {
			d := parseF(t, row[col])
			if d < -0.5 || d > 6.5 {
				t.Fatalf("δ out of range: %.1f", d)
			}
		}
	}
}

func TestFormula1Delta(t *testing.T) {
	o := DefaultFormula1()
	o.Nodes = 10
	o.Grid = o.Grid[:3]
	tab, err := Formula1(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		delta := parseF(t, row[5])
		if delta < -0.5 || delta > 6.5 {
			t.Fatalf("δ = %.2f out of plausible range (row %v)", delta, row)
		}
		pred, meas := parseF(t, row[3]), parseF(t, row[4])
		if meas < pred-0.5 {
			t.Fatalf("measured %.1f below predicted %.1f", meas, pred)
		}
	}
}

func TestBeaconLossMatchesAnalytic(t *testing.T) {
	o := DefaultBeaconLoss()
	o.Adapters = 20
	o.LossRates = []float64{0, 0.5, 0.8}
	o.Trials = 3
	tab, err := BeaconLoss(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		analytic, measured := parseF(t, row[1]), parseF(t, row[2])
		if analytic == 0 {
			if measured > 0.02 {
				t.Fatalf("lossless run missing adapters: %v", row)
			}
			continue
		}
		// Within a loose multiplicative band (binomial noise, few trials).
		if measured < analytic/4 || measured > analytic*4+0.02 {
			t.Fatalf("loss row %v: measured %.4f vs analytic %.4f", row, measured, analytic)
		}
	}
}

func TestDetectorTradeoffShape(t *testing.T) {
	o := DefaultDetectors()
	o.Adapters = 12
	o.LossRates = []float64{0, 0.10}
	o.Window = 60 * time.Second
	o.Schemes = []DetectorScheme{
		{Name: "ring k=1", Kind: detect.Ring, Miss: 1},
		{Name: "biring k=3 + consensus", Kind: detect.BiRing, Miss: 3, Consensus: true},
	}
	tab, err := Detectors(o)
	if err != nil {
		t.Fatal(err)
	}
	// Layout: rows 0,1 = ring k=1 at loss 0, 10%; rows 2,3 = biring.
	get := func(r, c int) string { return tab.Rows[r][c] }
	// Everyone must detect the real failure eventually.
	for r := 0; r < 4; r++ {
		if get(r, 2) == "undetected" {
			t.Fatalf("row %d failed to detect: %v", r, tab.Rows[r])
		}
	}
	// One-strike ring at 10% loss must show false suspicions; the
	// high-sensitivity consensus scheme must show far fewer.
	ringFalse := parseF(t, get(1, 3))
	biFalse := parseF(t, get(3, 3))
	if ringFalse == 0 {
		t.Fatal("one-strike ring produced no false suspicions under loss; paper trade-off not reproduced")
	}
	if biFalse > ringFalse/2 {
		t.Fatalf("k=3+consensus did not reduce false suspicions: %v vs %v", biFalse, ringFalse)
	}
	// The leader's verification probe keeps false kills near zero even
	// for the trigger-happy detector.
	if fk := parseF(t, get(1, 4)); fk > 2 {
		t.Fatalf("verification let through %v false kills", fk)
	}
	// The one-strike detector must be faster at zero loss.
	if parseF(t, get(0, 2)) > parseF(t, get(2, 2)) {
		t.Fatal("k=1 not faster than consensus at zero loss")
	}
}

func TestHBLoadScaling(t *testing.T) {
	o := DefaultHBLoad()
	o.GroupSizes = []int{8, 32}
	o.Window = 30 * time.Second
	tab, err := HBLoad(o)
	if err != nil {
		t.Fatal(err)
	}
	// Columns: size, ring, biring, subgroup, randping, all-to-all.
	small, large := tab.Rows[0], tab.Rows[1]
	ringGrowth := parseF(t, large[1]) / parseF(t, small[1])
	ataGrowth := parseF(t, large[5]) / parseF(t, small[5])
	if ringGrowth > 6 {
		t.Fatalf("ring growth x%.1f for 4x size", ringGrowth)
	}
	if ataGrowth < 10 {
		t.Fatalf("all-to-all growth x%.1f for 4x size; expected ~quadratic", ataGrowth)
	}
	// At n=32 all-to-all must dominate every other scheme.
	ata := parseF(t, large[5])
	for c := 1; c <= 4; c++ {
		if parseF(t, large[c]) >= ata {
			t.Fatalf("column %d (%s) >= all-to-all at n=32", c, tab.Columns[c])
		}
	}
}

func TestFailoverTimings(t *testing.T) {
	o := DefaultFailover()
	o.Nodes = 8
	o.Trials = 1
	tab, err := Failover(o)
	if err != nil {
		t.Fatal(err)
	}
	row := tab.Rows[0]
	if row[1] == "n/a" || row[2] == "timeout" || row[3] == "timeout" {
		t.Fatalf("failover row incomplete: %v", row)
	}
	recommit := parseF(t, row[1])
	if recommit <= 0 || recommit > 30 {
		t.Fatalf("recommit time %.2f s implausible", recommit)
	}
	rebuilt := parseF(t, row[3])
	if rebuilt < recommit {
		t.Fatalf("view rebuilt (%.2f) before recommit (%.2f)?", rebuilt, recommit)
	}
}

func TestMoveScenario(t *testing.T) {
	o := DefaultMove()
	o.Trials = 1
	tab, err := Move(o)
	if err != nil {
		t.Fatal(err)
	}
	row := tab.Rows[0]
	if row[1] == "never" || row[2] == "never" {
		t.Fatalf("move incomplete: %v", row)
	}
	if parseF(t, row[4]) != 0 {
		t.Fatalf("unsuppressed failures during an expected move: %v", row)
	}
	if parseF(t, row[3]) == 0 {
		t.Fatalf("no suppressed failure recorded: %v", row)
	}
	if row[5] != "yes" {
		t.Fatalf("post-move verify not clean: %v", row)
	}
}

func TestMergeConvergence(t *testing.T) {
	o := DefaultMerge()
	o.Sizes = [][2]int{{3, 3}, {6, 2}}
	tab, err := Merge(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[2] != "yes" {
			t.Fatalf("merge not led by highest IP: %v", row)
		}
		if parseF(t, row[1]) > 60 {
			t.Fatalf("merge too slow: %v", row)
		}
	}
}

func TestCentralLoadSteadyStateSilent(t *testing.T) {
	o := DefaultCentralLoad()
	o.FarmSizes = []int{8, 16}
	o.Window = 30 * time.Second
	tab, err := CentralLoad(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if parseF(t, row[3]) != 0 {
			t.Fatalf("steady-state report traffic nonzero: %v", row)
		}
		if parseF(t, row[2]) == 0 {
			t.Fatalf("no formation reports: %v", row)
		}
		if parseF(t, row[4]) == 0 {
			t.Fatalf("churn produced no reports: %v", row)
		}
	}
	// Formation reports grow with groups, not quadratically with nodes.
	f8, f16 := parseF(t, tab.Rows[0][2]), parseF(t, tab.Rows[1][2])
	if f16 > f8*6 {
		t.Fatalf("formation reports grew too fast: %v -> %v", f8, f16)
	}
}

func TestVerifyFindings(t *testing.T) {
	tab, err := Verify(DefaultVerify())
	if err != nil {
		t.Fatal(err)
	}
	if parseF(t, tab.Rows[0][2]) < 1 {
		t.Fatalf("wrong-segment not found: %v", tab.Rows[0])
	}
	if parseF(t, tab.Rows[1][2]) < 1 {
		t.Fatalf("missing-adapter not found: %v", tab.Rows[1])
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "X", Title: "demo", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.Note("n1")
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, frag := range []string{"== X — demo ==", "a", "bb", "note: n1"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("rendered table missing %q:\n%s", frag, out)
		}
	}
}
