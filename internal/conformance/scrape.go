package conformance

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/span"
	"repro/internal/trace"
)

// Scraper turns many daemons' flight recorders into one farm-wide
// trace stream. Each incarnation's /trace feed is an independent
// source ("web-1#2"); records are clock-aligned by shifting every
// source's daemon-relative timestamps onto a common epoch (the
// earliest daemon start), then merged deterministically by
// span.Collector ordering. The harness also injects synthetic
// fault-injected records marking what it did to the farm, so stitched
// incident spans carry their cause milestone just as in the simulator.
type Scraper struct {
	mu       sync.Mutex
	sources  []*scrapeSource
	injected []injectedRecord
	warnings []string
}

type scrapeSource struct {
	d       *Daemon
	lastSeq uint64
	recs    []trace.Record
	gapped  bool
}

type injectedRecord struct {
	wallNS int64
	rec    trace.Record
}

// NewScraper returns an empty scraper; register incarnations with
// Track (typically via Fabric.OnStart).
func NewScraper() *Scraper { return &Scraper{} }

// Track registers a daemon incarnation as a trace source.
func (s *Scraper) Track(d *Daemon) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sources = append(s.sources, &scrapeSource{d: d})
}

// Inject records a harness action into the merged stream, stamped at
// the current wall time.
func (s *Scraper) Inject(kind trace.Kind, node, detail string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.injected = append(s.injected, injectedRecord{
		wallNS: time.Now().UnixNano(),
		rec:    trace.Record{Kind: kind, Node: node, Detail: detail},
	})
}

// Poll fetches every live source's full retained window and appends
// the records not yet seen. Dead or unresponsive daemons are skipped —
// their last successful poll is what survives of them, which is why
// the harness polls synchronously right before injecting a kill.
func (s *Scraper) Poll() {
	s.mu.Lock()
	srcs := append([]*scrapeSource(nil), s.sources...)
	s.mu.Unlock()

	for _, src := range srcs {
		if !src.d.Alive() {
			continue
		}
		var dump trace.Dump
		if err := httpGetJSON(src.d.DebugURL()+"/trace", &dump, httpTimeout); err != nil {
			continue
		}
		s.mu.Lock()
		// Detect ring overwrite: if the oldest retained record is past
		// the last sequence we captured, records were lost between polls.
		if len(dump.Records) > 0 && src.lastSeq > 0 && !src.gapped &&
			dump.Records[0].Seq > src.lastSeq+1 {
			src.gapped = true
			s.warnings = append(s.warnings, fmt.Sprintf(
				"trace gap at %s: recorder dropped past seq %d before the next poll",
				src.d.Source(), src.lastSeq))
		}
		for _, r := range dump.Records {
			if r.Seq > src.lastSeq {
				src.recs = append(src.recs, r)
				src.lastSeq = r.Seq
			}
		}
		s.mu.Unlock()
	}
}

// Start launches a background poll loop; the returned function stops
// it (and does not poll again — call Poll for the final drain).
func (s *Scraper) Start(every time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.Poll()
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Merged returns the clock-aligned, deterministically ordered
// farm-wide stream. keep filters records (nil keeps everything —
// beacons included, which the invariant engine needs for its
// adapter-reset tracking; pass span.DefaultFilter for stitching).
func (s *Scraper) Merged(keep func(trace.Record) bool) []trace.Record {
	if keep == nil {
		keep = func(trace.Record) bool { return true }
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	epoch := int64(0)
	for _, src := range s.sources {
		if start := src.d.Ready.StartUnixNS; epoch == 0 || start < epoch {
			epoch = start
		}
	}
	for _, inj := range s.injected {
		if epoch == 0 || inj.wallNS < epoch {
			epoch = inj.wallNS
		}
	}

	ordered := append([]*scrapeSource(nil), s.sources...)
	sort.SliceStable(ordered, func(i, j int) bool {
		a, b := ordered[i].d, ordered[j].d
		if a.Ready.StartUnixNS != b.Ready.StartUnixNS {
			return a.Ready.StartUnixNS < b.Ready.StartUnixNS
		}
		return a.Source() < b.Source()
	})

	col := span.NewCollector(keep)
	for _, src := range ordered {
		shift := time.Duration(src.d.Ready.StartUnixNS - epoch)
		adj := make([]trace.Record, len(src.recs))
		for i, r := range src.recs {
			r.T += shift
			adj[i] = r
		}
		col.Add(src.d.Source(), adj)
	}
	if len(s.injected) > 0 {
		adj := make([]trace.Record, len(s.injected))
		for i, inj := range s.injected {
			r := inj.rec
			r.T = time.Duration(inj.wallNS - epoch)
			adj[i] = r
		}
		col.Add("harness", adj)
	}
	return col.Records()
}

// Warnings lists scrape anomalies (trace gaps).
func (s *Scraper) Warnings() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.warnings...)
}

// Sources reports how many incarnation streams were tracked.
func (s *Scraper) Sources() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sources)
}
