// Package conformance is the Hive-style multi-process conformance
// harness: it boots farms of real gsd daemons speaking the GulfStream
// protocol over real UDP sockets, injects faults through an emulated
// switching fabric, scrapes every daemon's flight recorder over HTTP,
// and holds the merged farm-wide trace to the same invariant engine
// (internal/check) and incident-span audit (internal/span) the
// deterministic simulator uses — plus a declarative ground-truth diff
// of Central's discovered topology.
//
// Two fabrics implement the segment emulation:
//
//   - loopback (loopback.go): every adapter is a 127.x address on the
//     host loopback interface; VLAN membership is emulated by rewriting
//     each adapter's multicast groups to a per-segment 239.x scope
//     (transport.ScopedEndpoint, driven over the daemon's /fabricctl
//     debug handlers). Runs unprivileged — this is the CI fabric.
//   - netns (netns.go): every node lives in its own network namespace,
//     VLAN segments are Linux bridges, and a VLAN move is a veth
//     re-plug between bridges — real kernel broadcast domains. Needs
//     root and iproute2; this is the nightly fabric.
//
// Both present the same Fabric interface, so every scenario suite runs
// unchanged on either.
package conformance

import (
	"fmt"
	"os"
	"sort"

	"repro/internal/configdb"
	"repro/internal/switchsim"
	"repro/internal/transport"
)

// AdminVLAN is the administrative segment every node's first adapter
// lives on (paper §2: the administrative AMG spans domains).
const AdminVLAN = 1

// AdapterSpec describes one adapter of a farm node.
type AdapterSpec struct {
	IP    transport.IP
	Index int // adapter number on the node; 0 = administrative
	VLAN  int // segment the adapter starts on
	Port  int // emulated switch port the adapter is wired to
}

// NodeSpec describes one farm node.
type NodeSpec struct {
	Name     string
	Adapters []AdapterSpec
}

// FarmSpec is the declarative description of a conformance farm: the
// wiring reality the fabric constructs, and — separately — the lies the
// configuration database may tell about it (the configdb-mismatch
// suites plant divergence here and expect Central to detect it).
type FarmSpec struct {
	Nodes []NodeSpec

	// Segments maps VLAN id -> emulated multicast scope group (loopback
	// fabric only; the netns fabric gives every VLAN a real bridge).
	Segments map[int]transport.IP

	// The emulated switch every adapter is wired to, managed by a
	// harness-side SNMP agent Central drives moves through.
	SwitchName string
	SwitchIP   transport.IP
	SwitchPort uint16
	Community  string

	// Lies planted in the configuration database relative to reality.
	DBWrongVLAN map[transport.IP]int   // adapter -> VLAN the db wrongly expects
	DBGhosts    []configdb.AdapterSpec // adapters that exist only on paper
	DBOmit      map[transport.IP]bool  // real adapters the db never heard of
}

// DefaultFarm returns the standard five-node loopback farm. Addresses
// are derived from the pid so concurrent harness runs on one host do
// not collide: admin adapters on 127.B.0.x (VLAN 1), data adapters on
// 127.B.1.x split across VLANs 101 and 102, multicast scopes under
// 239.G. web-5 holds the highest administrative IP, so it leads the
// admin AMG and hosts Central.
func DefaultFarm() *FarmSpec {
	b := byte(2 + os.Getpid()%250)
	g := byte(1 + os.Getpid()%250)
	f := &FarmSpec{
		Segments: map[int]transport.IP{
			AdminVLAN: transport.MakeIP(239, g, 2, 1),
			101:       transport.MakeIP(239, g, 2, 101),
			102:       transport.MakeIP(239, g, 2, 102),
		},
		SwitchName: "sw-1",
		SwitchIP:   transport.MakeIP(127, b, 0, 254),
		SwitchPort: 10161,
		Community:  "farm-admin",
	}
	dataVLAN := []int{101, 101, 101, 102, 102}
	for i := 1; i <= 5; i++ {
		f.Nodes = append(f.Nodes, NodeSpec{
			Name: fmt.Sprintf("web-%d", i),
			Adapters: []AdapterSpec{
				{IP: transport.MakeIP(127, b, 0, byte(10+i)), Index: 0, VLAN: AdminVLAN, Port: i},
				{IP: transport.MakeIP(127, b, 1, byte(10+i)), Index: 1, VLAN: dataVLAN[i-1], Port: 10 + i},
			},
		})
	}
	return f
}

// NetnsFarm returns the five-node farm on routable 10.x addressing for
// the netns fabric: admin adapters on 10.70.0.x/24 (bridge br-gsadm),
// data adapters on 10.71.0.x/16 attached to the per-VLAN bridges.
func NetnsFarm() *FarmSpec {
	f := &FarmSpec{
		Segments:   map[int]transport.IP{}, // real bridges, no scope groups
		SwitchName: "sw-1",
		SwitchIP:   transport.MakeIP(10, 70, 0, 254),
		SwitchPort: 10161,
		Community:  "farm-admin",
	}
	dataVLAN := []int{101, 101, 101, 102, 102}
	for i := 1; i <= 5; i++ {
		f.Nodes = append(f.Nodes, NodeSpec{
			Name: fmt.Sprintf("web-%d", i),
			Adapters: []AdapterSpec{
				{IP: transport.MakeIP(10, 70, 0, byte(10+i)), Index: 0, VLAN: AdminVLAN, Port: i},
				{IP: transport.MakeIP(10, 71, 0, byte(10+i)), Index: 1, VLAN: dataVLAN[i-1], Port: 10 + i},
			},
		})
	}
	return f
}

// Node returns the named node's spec.
func (f *FarmSpec) Node(name string) (*NodeSpec, bool) {
	for i := range f.Nodes {
		if f.Nodes[i].Name == name {
			return &f.Nodes[i], true
		}
	}
	return nil, false
}

// NodeNames lists the farm's nodes in spec order.
func (f *FarmSpec) NodeNames() []string {
	out := make([]string, len(f.Nodes))
	for i, n := range f.Nodes {
		out[i] = n.Name
	}
	return out
}

// Adapter resolves an adapter IP to its owning node and spec.
func (f *FarmSpec) Adapter(ip transport.IP) (node string, a AdapterSpec, ok bool) {
	for _, n := range f.Nodes {
		for _, ad := range n.Adapters {
			if ad.IP == ip {
				return n.Name, ad, true
			}
		}
	}
	return "", AdapterSpec{}, false
}

// AdapterOnPort resolves an emulated switch port to the wired adapter.
func (f *FarmSpec) AdapterOnPort(port int) (transport.IP, bool) {
	for _, n := range f.Nodes {
		for _, ad := range n.Adapters {
			if ad.Port == port {
				return ad.IP, true
			}
		}
	}
	return 0, false
}

// AdaptersOf implements span.Topology over the farm spec.
func (f *FarmSpec) AdaptersOf(node string) []transport.IP {
	n, ok := f.Node(node)
	if !ok {
		return nil
	}
	out := make([]transport.IP, len(n.Adapters))
	for i, a := range n.Adapters {
		out[i] = a.IP
	}
	return out
}

// AdminIP returns a node's administrative adapter address (zero if the
// node is unknown).
func (f *FarmSpec) AdminIP(node string) transport.IP {
	n, ok := f.Node(node)
	if !ok {
		return 0
	}
	for _, a := range n.Adapters {
		if a.Index == 0 {
			return a.IP
		}
	}
	return 0
}

// DataIP returns a node's index-1 adapter address (zero if absent).
func (f *FarmSpec) DataIP(node string) transport.IP {
	n, ok := f.Node(node)
	if !ok {
		return 0
	}
	for _, a := range n.Adapters {
		if a.Index == 1 {
			return a.IP
		}
	}
	return 0
}

// Scope returns the loopback fabric's multicast scope for a VLAN.
func (f *FarmSpec) Scope(vlan int) (transport.IP, bool) {
	g, ok := f.Segments[vlan]
	return g, ok
}

// Domains maps segment names ("vlan-101") to VLAN ids for the data
// segments — the vocabulary chaos schedules move nodes between.
func (f *FarmSpec) Domains() map[string]int {
	out := map[string]int{}
	vlans := map[int]bool{}
	for _, n := range f.Nodes {
		for _, a := range n.Adapters {
			vlans[a.VLAN] = true
		}
	}
	for v := range vlans {
		if v != AdminVLAN {
			out[switchsim.SegmentName(v)] = v
		}
	}
	return out
}

// ConfigDB builds the configuration database handed to every daemon:
// the wiring reality, distorted by the planted lies.
func (f *FarmSpec) ConfigDB() (*configdb.DB, error) {
	db := configdb.New()
	for _, n := range f.Nodes {
		for _, a := range n.Adapters {
			if f.DBOmit[a.IP] {
				continue
			}
			vlan := a.VLAN
			if lie, ok := f.DBWrongVLAN[a.IP]; ok {
				vlan = lie
			}
			spec := configdb.AdapterSpec{
				IP: a.IP, Node: n.Name, Index: a.Index, VLAN: vlan,
				Switch: f.SwitchName, Port: a.Port,
			}
			if err := db.AddAdapter(spec); err != nil {
				return nil, fmt.Errorf("conformance: configdb %s/%v: %w", n.Name, a.IP, err)
			}
		}
	}
	for _, ghost := range f.DBGhosts {
		if err := db.AddAdapter(ghost); err != nil {
			return nil, fmt.Errorf("conformance: configdb ghost %v: %w", ghost.IP, err)
		}
	}
	return db, nil
}

// WriteConfigDB saves the (possibly lying) database as the JSON file
// every daemon loads with -configdb.
func (f *FarmSpec) WriteConfigDB(path string) error {
	db, err := f.ConfigDB()
	if err != nil {
		return err
	}
	return db.Save(path)
}

// sortIPStrings sorts dotted-quad strings by address value, matching
// the ordering Central reports group members in.
func sortIPStrings(ss []string) {
	sort.Slice(ss, func(i, j int) bool {
		a, _ := transport.ParseIP(ss[i])
		b, _ := transport.ParseIP(ss[j])
		return a < b
	})
}
