package central

import (
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/journal"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/wire"
)

// tapFixture is a fixture with a traffic tap, for tests that assert on
// what Central actually sends.
type tapFixture struct {
	*fixture
	net    *netsim.Network
	traces []netsim.Trace
}

func newTapFixture(t *testing.T, j *journal.Journal) *tapFixture {
	t.Helper()
	sched := sim.NewScheduler(1)
	res := netsim.NewStaticResolver()
	net := netsim.New(sched, res)
	ep := net.AddAdapter(ip(9, 9), "central-host")
	res.Attach(ip(9, 9), "admin")
	bus := event.NewBus(true)
	cfg := DefaultConfig()
	cfg.StabilizeWait = 5 * time.Second
	cfg.MoveWindow = 30 * time.Second
	c := New(cfg, clock{sched}, bus, nil)
	if j != nil {
		c.SetJournal(j)
	}
	tf := &tapFixture{fixture: &fixture{sched: sched, bus: bus, c: c, ep: ep}, net: net}
	net.Tap(func(tr netsim.Trace) { tf.traces = append(tf.traces, tr) })
	c.Activate(ep)
	return tf
}

func (tf *tapFixture) reportUnicasts() int {
	n := 0
	for _, tr := range tf.traces {
		if tr.Dst.Port == transport.PortReport && !tr.Multicast {
			n++
		}
	}
	return n
}

func (tf *tapFixture) reportMulticasts() int {
	n := 0
	for _, tr := range tf.traces {
		if tr.Dst.Port == transport.PortReport && tr.Multicast {
			n++
		}
	}
	return n
}

// TestResyncRateLimitAtTimeZero is the regression test for the zero-clock
// hole: a resync requested at simulated time 0 recorded resyncAt == 0,
// which the old `!= 0` guard read as "never requested", so the rate limit
// never engaged at the start of a simulation.
func TestResyncRateLimitAtTimeZero(t *testing.T) {
	tf := newTapFixture(t, nil)
	tf.full(ip(1, 3), 1, member(1, 3, "n3", true), member(1, 2, "n2", true))
	g := tf.c.groups[ip(1, 3)]
	if g == nil || g.src.IP == 0 {
		t.Fatal("group src not recorded")
	}
	if now := tf.sched.Now(); now != 0 {
		t.Fatalf("test requires time zero, at %v", now)
	}
	base := tf.reportUnicasts()
	tf.c.requestGroupResync(g)
	tf.c.requestGroupResync(g) // must be rate-limited, even at t=0
	if got := tf.reportUnicasts() - base; got != 1 {
		t.Fatalf("%d resync requests sent at t=0, want 1 (rate limit)", got)
	}
	// After the window the next request goes through again.
	tf.sched.RunFor(11 * time.Second)
	tf.c.requestGroupResync(g)
	if got := tf.reportUnicasts() - base; got != 2 {
		t.Fatalf("%d resync requests after window, want 2", got)
	}
}

// TestJournalMirrorsView drives a report sequence through a journaling
// Central and asserts the journal's folded state tracks the live view.
func TestJournalMirrorsView(t *testing.T) {
	j := journal.NewMem()
	tf := newTapFixture(t, j)
	tf.full(ip(1, 3), 1, member(1, 3, "n3", true), member(1, 2, "n2", true))
	tf.full(ip(2, 5), 1, member(2, 5, "m5", true), member(2, 1, "m1", true))
	// Delta: join and leave.
	tf.report(&wire.Report{Leader: ip(1, 3), Version: 2, Members: []wire.Member{member(1, 1, "n1", true)}})
	tf.report(&wire.Report{Leader: ip(1, 3), Version: 3, Left: []transport.IP{ip(1, 2)}})

	st := j.State()
	view := tf.c.Groups()
	if len(st.Groups) != len(view) {
		t.Fatalf("journal has %d groups, view has %d", len(st.Groups), len(view))
	}
	for leader, members := range view {
		gs := st.Groups[leader]
		if gs == nil {
			t.Fatalf("journal missing group %v", leader)
		}
		if len(gs.Members) != len(members) {
			t.Fatalf("group %v: journal %d members, view %d", leader, len(gs.Members), len(members))
		}
	}
	// The departed adapter's death must be journaled.
	a, ok := st.Adapters[ip(1, 2)]
	if !ok || a.Alive {
		t.Fatalf("departed adapter in journal: %+v (ok=%v)", a, ok)
	}
	if a2, ok := st.Adapters[ip(1, 1)]; !ok || !a2.Alive {
		t.Fatal("joined adapter not alive in journal")
	}
}

// TestRestoreFromJournalSkipsMulticast reopens a journal store under a
// fresh Central (the gsd-restart path) and asserts activation rebuilds
// the view with zero multicast resync pulls — only per-group unicast
// verification requests, since disk state was never streamed.
func TestRestoreFromJournalSkipsMulticast(t *testing.T) {
	store := journal.NewMemStore()
	j, err := journal.New(store, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tf := newTapFixture(t, j)
	tf.full(ip(1, 3), 1, member(1, 3, "n3", true), member(1, 2, "n2", true))
	tf.full(ip(2, 5), 1, member(2, 5, "m5", true), member(2, 1, "m1", true))
	want := tf.c.Groups()

	// "Restart": a second Central over a journal reopened from the store.
	j2, err := journal.New(store, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !j2.Loaded() {
		t.Fatal("reopened journal reports no state")
	}
	tf2 := newTapFixture(t, j2)
	got := tf2.c.Groups()
	if len(got) != len(want) {
		t.Fatalf("restored %d groups, want %d", len(got), len(want))
	}
	for leader, members := range want {
		if len(got[leader]) != len(members) {
			t.Fatalf("group %v restored with %v, want %v", leader, got[leader], members)
		}
	}
	if n := tf2.reportMulticasts(); n != 0 {
		t.Fatalf("restored activation multicast %d resync pulls, want 0", n)
	}
	// Disk-loaded groups are unverified: one unicast verification each.
	if n := tf2.reportUnicasts(); n != len(want) {
		t.Fatalf("%d verification unicasts, want %d", n, len(want))
	}
	// The cold-start control: a journal-less Central multicasts.
	tf3 := newTapFixture(t, nil)
	if n := tf3.reportMulticasts(); n == 0 {
		t.Fatal("cold activation sent no multicast resync (control broken)")
	}
	// Epoch advanced on the new regime.
	if j2.Epoch() <= j.Epoch()-1 {
		t.Fatalf("epoch did not advance: %d after %d", j2.Epoch(), j.Epoch())
	}
}
