package central

import (
	"testing"

	"repro/internal/configdb"
	"repro/internal/wire"
)

// TestVerifyMismatchTable drives Central's configdb-vs-reality
// verification through the report plane: each case describes what the
// database expects, what the daemons actually reported, and the verdicts
// verification must hand back. These are the same divergences the
// conformance harness plants against real daemons (configdb-mismatch
// suite); this pins the verdict vocabulary at the unit level.
func TestVerifyMismatchTable(t *testing.T) {
	// The farm reality every case starts from: an admin group of three
	// nodes and a data group of three adapters on VLAN 100.
	type group struct {
		leaderC, leaderD byte // the group's leader, ip(leaderC, leaderD)
		members          []wire.Member
	}
	reality := []group{
		{leaderC: 9, leaderD: 9, members: []wire.Member{
			{IP: ip(9, 9), Node: "central-host", Admin: true},
			{IP: ip(9, 1), Node: "node-a", Admin: true},
			{IP: ip(9, 2), Node: "node-b", Admin: true},
			{IP: ip(9, 3), Node: "node-c", Admin: true},
		}},
		{leaderC: 2, leaderD: 3, members: []wire.Member{
			{IP: ip(2, 1), Node: "node-a", Index: 1},
			{IP: ip(2, 2), Node: "node-b", Index: 1},
			{IP: ip(2, 3), Node: "node-c", Index: 1},
		}},
	}
	baseDB := []configdb.AdapterSpec{
		{IP: ip(9, 9), Node: "central-host", Index: 0, VLAN: 1, Switch: "sw-x", Port: 1},
		{IP: ip(9, 1), Node: "node-a", Index: 0, VLAN: 1, Switch: "sw-x", Port: 2},
		{IP: ip(9, 2), Node: "node-b", Index: 0, VLAN: 1, Switch: "sw-x", Port: 3},
		{IP: ip(9, 3), Node: "node-c", Index: 0, VLAN: 1, Switch: "sw-x", Port: 4},
		{IP: ip(2, 1), Node: "node-a", Index: 1, VLAN: 100, Switch: "sw-x", Port: 5},
		{IP: ip(2, 2), Node: "node-b", Index: 1, VLAN: 100, Switch: "sw-x", Port: 6},
		{IP: ip(2, 3), Node: "node-c", Index: 1, VLAN: 100, Switch: "sw-x", Port: 7},
	}

	type verdict struct {
		kind    configdb.MismatchKind
		adapter byte // ip octets c,d packed as below; 0 means "any/none"
		ipC     byte
	}
	cases := []struct {
		name string
		db   func(*configdb.DB) // extra lies planted in the database
		want []verdict
	}{
		{
			name: "clean",
			db:   func(*configdb.DB) {},
			want: nil,
		},
		{
			// A whole node exists only on paper: every adapter the db
			// claims for it is reported missing.
			name: "missing node",
			db: func(db *configdb.DB) {
				must(t, db.AddAdapter(configdb.AdapterSpec{
					IP: ip(9, 7), Node: "node-ghost", Index: 0, VLAN: 1,
					Switch: "sw-x", Port: 8}))
				must(t, db.AddAdapter(configdb.AdapterSpec{
					IP: ip(2, 7), Node: "node-ghost", Index: 1, VLAN: 100,
					Switch: "sw-x", Port: 9}))
			},
			want: []verdict{
				{kind: configdb.MissingAdapter, ipC: 2, adapter: 7},
				{kind: configdb.MissingAdapter, ipC: 9, adapter: 7},
			},
		},
		{
			// The db believes node-a's data adapter lives on VLAN 200,
			// but it was discovered grouped with the VLAN-100 majority:
			// the misconfigured adapter is flagged, not its groupmates.
			name: "wrong VLAN",
			db: func(db *configdb.DB) {
				must(t, db.SetExpectedVLAN(ip(2, 1), 200))
			},
			want: []verdict{
				{kind: configdb.WrongSegment, ipC: 2, adapter: 1},
			},
		},
		{
			// Reality has an adapter the db never heard of — it joined
			// the data group but has no spec.
			name: "extra adapter",
			db: func(db *configdb.DB) {
				// The lie here is an omission: drop nothing from reality,
				// the base db simply never listed ip(2,4); extend reality
				// below via the report instead.
			},
			want: []verdict{
				{kind: configdb.UnknownAdapter, ipC: 2, adapter: 4},
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db := configdb.New()
			for _, spec := range baseDB {
				must(t, db.AddAdapter(spec))
			}
			tc.db(db)

			f := newFixture(t, db)
			for _, g := range reality {
				members := g.members
				if tc.name == "extra adapter" && g.leaderC == 2 {
					members = append(append([]wire.Member{}, members...),
						wire.Member{IP: ip(2, 4), Node: "node-d", Index: 1})
				}
				f.full(ip(g.leaderC, g.leaderD), 1, members...)
			}

			got := f.c.Verify()
			if len(got) != len(tc.want) {
				t.Fatalf("Verify() = %v, want %d findings", got, len(tc.want))
			}
			for i, w := range tc.want {
				if got[i].Kind != w.kind || got[i].Adapter != ip(w.ipC, w.adapter) {
					t.Errorf("finding %d = %v, want %v %v", i, got[i], w.kind, ip(w.ipC, w.adapter))
				}
			}
		})
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
