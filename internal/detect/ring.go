package detect

import (
	"sort"
	"time"

	"repro/internal/amg"
	"repro/internal/transport"
	"repro/internal/wire"
)

// ringDetector implements the paper's §3 heartbeat ring. In unidirectional
// mode each adapter heartbeats its right neighbor and monitors its left;
// bidirectional mode does both directions, which lets the leader demand a
// two-neighbor consensus before acting.
type ringDetector struct {
	p   Params
	env Env
	bi  bool

	view    amg.Membership
	targets []transport.IP // who we heartbeat
	mon     *monitorSet    // who we expect heartbeats from
	seq     uint64
	hb      wire.Heartbeat // reused each tick; Send does not retain it
	ticker  transport.Timer
	stopped bool
}

func newRing(p Params, env Env, bi bool) *ringDetector {
	return &ringDetector{p: p, env: env, bi: bi, mon: newMonitorSet()}
}

// Kind implements Detector.
func (r *ringDetector) Kind() Kind {
	if r.bi {
		return BiRing
	}
	return Ring
}

// Reconfigure implements Detector.
func (r *ringDetector) Reconfigure(view amg.Membership) {
	r.view = view
	self := r.env.Self()
	r.targets = r.targets[:0]
	var monitored []transport.IP
	if view.Size() >= 2 && view.Contains(self) {
		left, right := view.Neighbors(self)
		if r.bi {
			r.targets = appendUnique(r.targets, self, right, left)
			monitored = appendUnique(nil, self, left, right)
		} else {
			r.targets = appendUnique(r.targets, self, right)
			monitored = appendUnique(nil, self, left)
		}
	}
	r.mon.reset(monitored, r.env.Clock().Now())
	r.ensureTicker()
}

// appendUnique appends candidates to dst skipping self and duplicates.
func appendUnique(dst []transport.IP, self transport.IP, candidates ...transport.IP) []transport.IP {
next:
	for _, c := range candidates {
		if c == self || c == 0 {
			continue
		}
		for _, d := range dst {
			if d == c {
				continue next
			}
		}
		dst = append(dst, c)
	}
	return dst
}

func (r *ringDetector) ensureTicker() {
	if r.ticker != nil || r.stopped {
		return
	}
	r.ticker = r.env.Clock().AfterFunc(r.p.Interval, r.tick)
}

func (r *ringDetector) tick() {
	if r.stopped {
		return
	}
	r.seq++
	r.hb = wire.Heartbeat{From: r.env.Self(), Seq: r.seq, Version: r.view.Version, Leader: r.view.Leader()}
	for _, t := range r.targets {
		r.env.Send(t, &r.hb)
	}
	limit := time.Duration(r.p.MissThreshold) * r.p.Interval
	now := r.env.Clock().Now()
	over := r.mon.overdue(now, limit, limit)
	if len(over) > 1 {
		sort.Slice(over, func(i, j int) bool { return over[i] < over[j] })
	}
	for _, ip := range over {
		r.mon.markSuspected(ip, now)
		r.env.ReportSuspect(ip, wire.ReasonMissedHeartbeats)
	}
	if r.stopped || r.ticker == nil {
		return // a callback above stopped us mid-tick
	}
	r.ticker.Reset(r.p.Interval)
}

// Handle implements Detector.
func (r *ringDetector) Handle(src transport.IP, m wire.Message) bool {
	hb, ok := m.(*wire.Heartbeat)
	if !ok {
		return false
	}
	r.mon.heard(hb.From, r.env.Clock().Now())
	_ = src
	return true
}

// Stop implements Detector.
func (r *ringDetector) Stop() {
	r.stopped = true
	if r.ticker != nil {
		r.ticker.Stop()
		r.ticker = nil
	}
}

// allToAll heartbeats every member and monitors every member — the
// baseline whose per-segment load grows quadratically with group size.
type allToAll struct {
	p   Params
	env Env

	view    amg.Membership
	peers   []transport.IP
	mon     *monitorSet
	seq     uint64
	hb      wire.Heartbeat // reused each tick
	ticker  transport.Timer
	stopped bool
}

func newAllToAll(p Params, env Env) *allToAll {
	return &allToAll{p: p, env: env, mon: newMonitorSet()}
}

// Kind implements Detector.
func (a *allToAll) Kind() Kind { return AllToAll }

// Reconfigure implements Detector.
func (a *allToAll) Reconfigure(view amg.Membership) {
	a.view = view
	self := a.env.Self()
	a.peers = a.peers[:0]
	for _, m := range view.Members {
		if m.IP != self {
			a.peers = append(a.peers, m.IP)
		}
	}
	a.mon.reset(a.peers, a.env.Clock().Now())
	if a.ticker == nil && !a.stopped {
		a.ticker = a.env.Clock().AfterFunc(a.p.Interval, a.tick)
	}
}

func (a *allToAll) tick() {
	if a.stopped {
		return
	}
	a.seq++
	a.hb = wire.Heartbeat{From: a.env.Self(), Seq: a.seq, Version: a.view.Version, Leader: a.view.Leader()}
	for _, p := range a.peers {
		a.env.Send(p, &a.hb)
	}
	limit := time.Duration(a.p.MissThreshold) * a.p.Interval
	now := a.env.Clock().Now()
	over := a.mon.overdue(now, limit, limit)
	if len(over) > 1 {
		sort.Slice(over, func(i, j int) bool { return over[i] < over[j] })
	}
	for _, ip := range over {
		a.mon.markSuspected(ip, now)
		a.env.ReportSuspect(ip, wire.ReasonMissedHeartbeats)
	}
	if a.stopped || a.ticker == nil {
		return
	}
	a.ticker.Reset(a.p.Interval)
}

// Handle implements Detector.
func (a *allToAll) Handle(_ transport.IP, m wire.Message) bool {
	hb, ok := m.(*wire.Heartbeat)
	if !ok {
		return false
	}
	a.mon.heard(hb.From, a.env.Clock().Now())
	return true
}

// Stop implements Detector.
func (a *allToAll) Stop() {
	a.stopped = true
	if a.ticker != nil {
		a.ticker.Stop()
		a.ticker = nil
	}
}
