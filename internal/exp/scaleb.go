package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/farm"
)

// ScaleBOptions parameterizes the E14b sweep: cold-start a zoned farm at
// each adapter count on the sharded kernel, once per shard count, and
// measure wall-clock throughput plus the cross-shard determinism contract
// (same seed ⇒ identical events fired and topology hash at every shard
// count).
type ScaleBOptions struct {
	Seed int64
	// Adapters are the nominal adapter counts to sweep (ZoneNodes ×
	// ZoneAdapters per zone; gateway and switch-management adapters ride on
	// top). Zones per point = adapters / (ZoneNodes × ZoneAdapters).
	Adapters     []int
	ZoneNodes    int
	ZoneAdapters int
	// Shards lists the shard counts to run each point at. The first entry
	// is the speedup baseline (1 = the exact legacy kernel).
	Shards      []int
	BeaconPhase time.Duration
	StartSkew   time.Duration
	Timeout     time.Duration
	// JSONPath, when non-empty, merges the results into the keyed BENCH
	// file under "e14b".
	JSONPath string
}

// DefaultScaleB sweeps 10k/50k/100k adapters at 1/2/4/8 shards — the
// zoned shape keeps the event count linear in farm size, which is what
// makes 100k adapters reachable at all (a single farm-wide admin segment
// would be quadratic in deliveries).
func DefaultScaleB() ScaleBOptions {
	return ScaleBOptions{
		Seed:         99,
		Adapters:     []int{10000, 50000, 100000},
		ZoneNodes:    250,
		ZoneAdapters: 2,
		Shards:       []int{1, 2, 4, 8},
		BeaconPhase:  5 * time.Second,
		StartSkew:    2 * time.Second,
		Timeout:      15 * time.Minute,
	}
}

// QuickScaleB is the CI smoke variant: one small point, baseline plus the
// requested shard count, still asserting the determinism contract.
func QuickScaleB(shards int) ScaleBOptions {
	o := DefaultScaleB()
	o.Adapters = []int{1000}
	o.ZoneNodes = 50
	o.Shards = []int{1, shards}
	o.Timeout = 5 * time.Minute
	return o
}

// ScaleBCell is one measured cold start at a (adapters, shards) cell.
type ScaleBCell struct {
	Shards       int     `json:"shards"`
	Seed         int64   `json:"seed"`
	Parallel     bool    `json:"parallel"` // worker goroutines (false = serial windows)
	StableSecs   float64 `json:"stable_secs"`
	WallSecs     float64 `json:"wall_secs"`
	Fired        uint64  `json:"fired"`
	EventsPerSec float64 `json:"events_per_sec"`
	TopoHash     uint64  `json:"topo_hash"` // TopologyHashAll over every zone Central
	Speedup      float64 `json:"speedup"`   // baseline wall / this wall
}

// ScaleBPoint aggregates one adapter count across shard counts.
type ScaleBPoint struct {
	Adapters int          `json:"adapters"`
	Zones    int          `json:"zones"`
	Nodes    int          `json:"nodes"`
	Cells    []ScaleBCell `json:"cells"`
}

// ScaleBResult is the JSON payload written under the "e14b" key. HostCPUs
// qualifies the speedup column: on a single-core host the kernel falls
// back to serial windows and the honest speedup is ~1.
type ScaleBResult struct {
	HostCPUs   int           `json:"host_cpus"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Points     []ScaleBPoint `json:"points"`
}

// ScaleBFarm builds the zoned farm for one E14b cell. Exposed so the
// determinism test can run the identical configuration at several shard
// counts.
func ScaleBFarm(o ScaleBOptions, adapters, shards int, seed int64) (*farm.Farm, error) {
	cfg := core.DefaultConfig()
	cfg.BeaconPhase = o.BeaconPhase
	return farm.Build(farm.Spec{
		Seed:         seed,
		Zones:        adapters / (o.ZoneNodes * o.ZoneAdapters),
		ZoneNodes:    o.ZoneNodes,
		ZoneAdapters: o.ZoneAdapters,
		Shards:       shards,
		StartSkew:    o.StartSkew,
		Core:         cfg,
	})
}

// ScaleBCellRun cold-starts one zoned farm and runs it until every zone's
// Central is stable.
func ScaleBCellRun(o ScaleBOptions, adapters, shards int, seed int64) (ScaleBCell, error) {
	f, err := ScaleBFarm(o, adapters, shards, seed)
	if err != nil {
		return ScaleBCell{}, err
	}
	zones := adapters / (o.ZoneNodes * o.ZoneAdapters)
	start := time.Now()
	f.Start()
	at, ok := f.RunUntilAllStable(zones, o.Timeout)
	wall := time.Since(start)
	if !ok {
		return ScaleBCell{}, fmt.Errorf("exp: e14b cell (adapters=%d shards=%d seed=%d) never stabilized", adapters, shards, seed)
	}
	fired := f.Fired()
	parallel := f.Shards != nil && f.Shards.Parallel()
	if f.Shards != nil {
		f.Shards.Stop()
	}
	return ScaleBCell{
		Shards:       shards,
		Seed:         seed,
		Parallel:     parallel,
		StableSecs:   at.Seconds(),
		WallSecs:     wall.Seconds(),
		Fired:        fired,
		EventsPerSec: float64(fired) / wall.Seconds(),
		TopoHash:     TopologyHashAll(f),
	}, nil
}

// ScaleB runs the E14b sweep and renders the table. Every cell at one
// adapter count must fire the same events and converge to the same
// topology hash as the baseline — a determinism violation is an error,
// not a table row.
func ScaleB(o ScaleBOptions) (*Table, error) {
	res := ScaleBResult{HostCPUs: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0)}
	t := &Table{
		ID: "E14b/scaleb",
		Title: fmt.Sprintf("zoned sharded cold-start sweep (Tb=%ds, skew=%v, host_cpus=%d)",
			int(o.BeaconPhase.Seconds()), o.StartSkew, res.HostCPUs),
		Columns: []string{"adapters", "zones", "shards", "par", "stable(s)", "events", "ev/s", "speedup", "topo_hash"},
	}
	for _, a := range o.Adapters {
		zones := a / (o.ZoneNodes * o.ZoneAdapters)
		if zones <= 0 {
			return nil, fmt.Errorf("exp: e14b point %d adapters yields no zones (ZoneNodes=%d ZoneAdapters=%d)", a, o.ZoneNodes, o.ZoneAdapters)
		}
		pt := ScaleBPoint{Adapters: a, Zones: zones, Nodes: zones * o.ZoneNodes}
		var base ScaleBCell
		for i, k := range o.Shards {
			cell, err := ScaleBCellRun(o, a, k, o.Seed)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				base = cell
			} else if cell.Fired != base.Fired || cell.TopoHash != base.TopoHash {
				return nil, fmt.Errorf("exp: e14b determinism violation at %d adapters: shards=%d fired=%d hash=%016x, baseline shards=%d fired=%d hash=%016x",
					a, k, cell.Fired, cell.TopoHash, base.Shards, base.Fired, base.TopoHash)
			}
			cell.Speedup = base.WallSecs / cell.WallSecs
			pt.Cells = append(pt.Cells, cell)
			t.AddRow(
				fmt.Sprintf("%d", a),
				fmt.Sprintf("%d", zones),
				fmt.Sprintf("%d", k),
				fmt.Sprintf("%v", cell.Parallel),
				fmt.Sprintf("%.1f", cell.StableSecs),
				fmt.Sprintf("%d", cell.Fired),
				fmt.Sprintf("%.0f", cell.EventsPerSec),
				fmt.Sprintf("%.2f", cell.Speedup),
				fmt.Sprintf("%016x", cell.TopoHash),
			)
		}
		res.Points = append(res.Points, pt)
	}
	t.Note("every shard count at one adapter count fired identical events and hashed to the identical topology (checked, not sampled)")
	t.Note("speedup is wall-clock vs the first shard count; par=false means serial windows (GOMAXPROCS=%d), so speedup ~1 is the honest single-core figure", res.GoMaxProcs)
	if o.JSONPath != "" {
		if err := mergeBenchJSON(o.JSONPath, "e14b", res); err != nil {
			return nil, err
		}
		t.Note("raw cells merged into %s (key e14b)", o.JSONPath)
	}
	return t, nil
}

// mergeBenchJSON updates one key of a keyed benchmark JSON file in place,
// preserving the other keys. A legacy file holding a bare array (the
// pre-keyed BENCH_scale.json layout) is adopted as {"e14": <array>}.
func mergeBenchJSON(path, key string, v any) error {
	doc := map[string]json.RawMessage{}
	if blob, err := os.ReadFile(path); err == nil {
		if json.Unmarshal(blob, &doc) != nil {
			doc = map[string]json.RawMessage{}
			var raw json.RawMessage
			if json.Unmarshal(blob, &raw) == nil && len(raw) > 0 && raw[0] == '[' {
				doc["e14"] = raw
			}
		}
	}
	blob, err := json.Marshal(v)
	if err != nil {
		return err
	}
	doc[key] = blob
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
