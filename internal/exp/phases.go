package exp

import (
	"fmt"
	"time"

	"repro/internal/central"
	"repro/internal/core"
	"repro/internal/farm"
	"repro/internal/trace"
)

// PhasesOptions parameterizes the stabilization-phase decomposition.
type PhasesOptions struct {
	Seed         int64
	AdminNodes   int
	UniformNodes int
	Trials       int
}

// DefaultPhases uses the paper prototype's 20-node farm.
func DefaultPhases() PhasesOptions {
	return PhasesOptions{Seed: 131, AdminNodes: 4, UniformNodes: 16, Trials: 3}
}

// PhasesResult decomposes one cold start into the protocol's phases, all
// measured from farm start on the simulated clock.
type PhasesResult struct {
	// Discovery ends when the last adapter leaves its beacon phase with
	// an initial member set (last discovery-formed record).
	Discovery time.Duration
	// Formation ends when the last AMG view of the cold start commits
	// (last view-commit record before stabilization).
	Formation time.Duration
	// Reporting ends when Central applies the last leader report.
	Reporting time.Duration
	// Stable is when Central declares the farm view stable (Figure 5).
	Stable time.Duration
	// Txns counts correlated 2PC membership transactions.
	Txns int
	// Records is the number of flight-recorder records captured.
	Records uint64
}

// PhasesTrial cold-starts a traced farm, waits for stabilization, and
// reads the phase boundaries out of the flight recorder.
func PhasesTrial(o PhasesOptions, seed int64) (PhasesResult, error) {
	var res PhasesResult
	cfg := core.DefaultConfig()
	cc := central.DefaultConfig()
	f, err := farm.Build(farm.Spec{
		Seed:         seed,
		AdminNodes:   o.AdminNodes,
		UniformNodes: o.UniformNodes, UniformAdapters: 2,
		StartSkew: 2 * time.Second,
		Core:      cfg, Central: cc,
		Trace: true,
	})
	if err != nil {
		return res, err
	}
	f.Start()
	stable, ok := f.RunUntilStable(5 * time.Minute)
	if !ok {
		return res, fmt.Errorf("exp: phases: farm never stabilized")
	}
	res.Stable = stable
	records := f.Trace.Snapshot()
	for _, rec := range records {
		switch rec.Kind {
		case trace.KFormed:
			if rec.T > res.Discovery {
				res.Discovery = rec.T
			}
		case trace.KViewCommit:
			if rec.T > res.Formation {
				res.Formation = rec.T
			}
		case trace.KReportApplied:
			if rec.T > res.Reporting {
				res.Reporting = rec.T
			}
		}
	}
	res.Txns = len(trace.Txns(records))
	res.Records = f.Trace.Total()
	return res, nil
}

// Phases decomposes Figure 5's stabilization time into its protocol
// phases — beacon discovery, AMG 2PC formation, leader reporting, and
// Central's quiet wait — using the flight recorder's timeline.
func Phases(o PhasesOptions) (*Table, error) {
	t := &Table{
		ID: "E13/phases",
		Title: fmt.Sprintf("cold-start stabilization by protocol phase (%d nodes, flight-recorder spans)",
			o.AdminNodes+o.UniformNodes),
		Columns: []string{"trial", "discovery(s)", "formation(s)", "reporting(s)", "stable(s)", "2pc txns", "records"},
	}
	for trial := 0; trial < o.Trials; trial++ {
		r, err := PhasesTrial(o, o.Seed+int64(trial)*13)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", trial+1), secs(r.Discovery), secs(r.Formation),
			secs(r.Reporting), secs(r.Stable), fmt.Sprintf("%d", r.Txns),
			fmt.Sprintf("%d", r.Records))
	}
	t.Note("discovery = last adapter ends its beacon phase; formation = last AMG view commit;")
	t.Note("reporting = Central applies the last leader report; stable = Formula (1)'s endpoint.")
	t.Note("the stable-reporting gap is Central's Tgsc quiet wait, as the model predicts")
	return t, nil
}

// TraceOverheadOptions parameterizes the recorder-overhead measurement.
type TraceOverheadOptions struct {
	Seed         int64
	AdminNodes   int
	UniformNodes int
	// Window is how much simulated time to run past stabilization, so
	// steady-state heartbeat traffic dominates the measurement.
	Window time.Duration
	// Trials per mode; the fastest wall time of each mode is compared.
	Trials int
}

// DefaultTraceOverhead measures a 20-node farm over 10 simulated minutes
// of steady state, long enough that wall time is dominated by protocol
// work rather than farm construction.
func DefaultTraceOverhead() TraceOverheadOptions {
	return TraceOverheadOptions{Seed: 137, AdminNodes: 4, UniformNodes: 16,
		Window: 10 * time.Minute, Trials: 5}
}

// traceOverheadRun cold-starts one farm and returns the wall time spent
// simulating, plus the records captured.
func traceOverheadRun(o TraceOverheadOptions, traced bool) (time.Duration, uint64, error) {
	f, err := farm.Build(farm.Spec{
		Seed:         o.Seed,
		AdminNodes:   o.AdminNodes,
		UniformNodes: o.UniformNodes, UniformAdapters: 2,
		Trace: traced,
	})
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	f.Start()
	if _, ok := f.RunUntilStable(5 * time.Minute); !ok {
		return 0, 0, fmt.Errorf("exp: trace overhead: farm never stabilized")
	}
	f.RunFor(o.Window)
	return time.Since(start), f.Trace.Total(), nil
}

// TraceOverhead compares wall-clock simulation cost with the flight
// recorder off and on. The disabled recorder costs one atomic load per
// capture site; enabled, each record is one copy into the ring.
func TraceOverhead(o TraceOverheadOptions) (*Table, error) {
	t := &Table{
		ID: "E13b/trace-overhead",
		Title: fmt.Sprintf("flight-recorder capture overhead (%d nodes, stabilization + %s steady state)",
			o.AdminNodes+o.UniformNodes, o.Window),
		Columns: []string{"recorder", "wall(s)", "records", "records/sec", "overhead"},
	}
	best := map[bool]time.Duration{}
	recs := map[bool]uint64{}
	for _, traced := range []bool{false, true} {
		for trial := 0; trial < o.Trials; trial++ {
			wall, n, err := traceOverheadRun(o, traced)
			if err != nil {
				return nil, err
			}
			if cur, ok := best[traced]; !ok || wall < cur {
				best[traced] = wall
				recs[traced] = n
			}
		}
	}
	overhead := 0.0
	if best[false] > 0 {
		overhead = (best[true].Seconds() - best[false].Seconds()) / best[false].Seconds() * 100
	}
	for _, traced := range []bool{false, true} {
		rate, over := "-", "-"
		if traced {
			if s := best[true].Seconds(); s > 0 {
				rate = fmt.Sprintf("%.0f", float64(recs[true])/s)
			}
			over = fmt.Sprintf("%+.1f%%", overhead)
		}
		mode := "off"
		if traced {
			mode = "on"
		}
		t.AddRow(mode, secs2(best[traced]), fmt.Sprintf("%d", recs[traced]), rate, over)
	}
	t.Note("fastest of %d trials per mode; capture is a mutex-guarded copy into a fixed ring,", o.Trials)
	t.Note("no allocation on the hot path — see BenchmarkRecord in internal/trace for per-record cost")
	return t, nil
}
