// Package configdb is the farm's expected-topology database: which nodes
// exist, which adapters they own, which switch port each adapter is wired
// to, and which VLAN (domain) each adapter is supposed to live in.
//
// Per the paper (§2.2), only GulfStream Central reads this database — the
// daemons discover topology on their own, and Central "discovers the
// configuration and then identifies inconsistencies via the database"
// rather than the other way around. Central also consults the wiring
// tables here to correlate adapter failures into switch failures (§3).
package configdb

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/transport"
)

// AdapterSpec is the expected record for one network adapter.
type AdapterSpec struct {
	IP     transport.IP `json:"ip"`
	Node   string       `json:"node"`
	Index  int          `json:"index"` // adapter number on the node; 0 = administrative
	VLAN   int          `json:"vlan"`  // expected domain VLAN
	Switch string       `json:"switch"`
	Port   int          `json:"port"`
}

// NodeSpec is the expected record for one server.
type NodeSpec struct {
	Name     string         `json:"name"`
	Domain   string         `json:"domain"` // owning domain ("" = administrative pool)
	Role     string         `json:"role"`   // frontend / backend / dispatcher / admin
	Adapters []transport.IP `json:"adapters"`
}

// DB is the configuration database.
type DB struct {
	adapters map[transport.IP]*AdapterSpec
	nodes    map[string]*NodeSpec
}

// New returns an empty database.
func New() *DB {
	return &DB{
		adapters: make(map[transport.IP]*AdapterSpec),
		nodes:    make(map[string]*NodeSpec),
	}
}

// AddNode registers a node (idempotent on name).
func (db *DB) AddNode(name, domain, role string) *NodeSpec {
	if n, ok := db.nodes[name]; ok {
		return n
	}
	n := &NodeSpec{Name: name, Domain: domain, Role: role}
	db.nodes[name] = n
	return n
}

// AddAdapter registers an adapter and links it to its node (creating the
// node if needed). It returns an error on duplicate IP.
func (db *DB) AddAdapter(spec AdapterSpec) error {
	if _, dup := db.adapters[spec.IP]; dup {
		return fmt.Errorf("configdb: duplicate adapter %v", spec.IP)
	}
	cp := spec
	db.adapters[spec.IP] = &cp
	n := db.AddNode(spec.Node, "", "")
	n.Adapters = append(n.Adapters, spec.IP)
	sort.Slice(n.Adapters, func(i, j int) bool { return n.Adapters[i] < n.Adapters[j] })
	return nil
}

// Adapter returns the spec for ip.
func (db *DB) Adapter(ip transport.IP) (AdapterSpec, bool) {
	if a, ok := db.adapters[ip]; ok {
		return *a, true
	}
	return AdapterSpec{}, false
}

// Node returns the spec for name.
func (db *DB) Node(name string) (NodeSpec, bool) {
	if n, ok := db.nodes[name]; ok {
		return *n, true
	}
	return NodeSpec{}, false
}

// Adapters lists all adapter specs in ascending IP order.
func (db *DB) Adapters() []AdapterSpec {
	out := make([]AdapterSpec, 0, len(db.adapters))
	for _, a := range db.adapters {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IP < out[j].IP })
	return out
}

// Nodes lists all node specs in name order.
func (db *DB) Nodes() []NodeSpec {
	out := make([]NodeSpec, 0, len(db.nodes))
	for _, n := range db.nodes {
		out = append(out, *n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AdaptersOnSwitch lists adapters wired to the named switch (the wiring
// view used for switch-failure correlation).
func (db *DB) AdaptersOnSwitch(name string) []transport.IP {
	var out []transport.IP
	for ip, a := range db.adapters {
		if a.Switch == name {
			out = append(out, ip)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Switches lists all switch names appearing in the wiring.
func (db *DB) Switches() []string {
	set := map[string]bool{}
	for _, a := range db.adapters {
		if a.Switch != "" {
			set[a.Switch] = true
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// SetExpectedVLAN updates an adapter's expected VLAN — Central calls this
// when it performs a planned domain move, so the database stays the
// authority on intent.
func (db *DB) SetExpectedVLAN(ip transport.IP, vlan int) error {
	a, ok := db.adapters[ip]
	if !ok {
		return fmt.Errorf("configdb: unknown adapter %v", ip)
	}
	a.VLAN = vlan
	return nil
}

// SetNodeDomain reassigns a node's owning domain.
func (db *DB) SetNodeDomain(name, domain string) error {
	n, ok := db.nodes[name]
	if !ok {
		return fmt.Errorf("configdb: unknown node %s", name)
	}
	n.Domain = domain
	return nil
}

// fileForm is the JSON persistence shape.
type fileForm struct {
	Nodes    []NodeSpec    `json:"nodes"`
	Adapters []AdapterSpec `json:"adapters"`
}

// MarshalJSON implements json.Marshaler with stable ordering.
func (db *DB) MarshalJSON() ([]byte, error) {
	return json.Marshal(fileForm{Nodes: db.Nodes(), Adapters: db.Adapters()})
}

// UnmarshalJSON implements json.Unmarshaler.
func (db *DB) UnmarshalJSON(data []byte) error {
	var f fileForm
	if err := json.Unmarshal(data, &f); err != nil {
		return err
	}
	db.adapters = make(map[transport.IP]*AdapterSpec)
	db.nodes = make(map[string]*NodeSpec)
	for _, n := range f.Nodes {
		db.AddNode(n.Name, n.Domain, n.Role)
	}
	for _, a := range f.Adapters {
		if err := db.AddAdapter(a); err != nil {
			return err
		}
	}
	return nil
}

// Save writes the database to a JSON file.
func (db *DB) Save(path string) error {
	data, err := json.MarshalIndent(db, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads a database from a JSON file.
func Load(path string) (*DB, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	db := New()
	if err := json.Unmarshal(data, db); err != nil {
		return nil, err
	}
	return db, nil
}

// MismatchKind classifies a verification finding.
type MismatchKind int

// Mismatch kinds.
const (
	// UnknownAdapter: discovered on the network, absent from the database.
	UnknownAdapter MismatchKind = iota + 1
	// MissingAdapter: in the database, discovered nowhere.
	MissingAdapter
	// WrongSegment: grouped with adapters of a different expected VLAN —
	// the security-relevant case the paper disables adapters over.
	WrongSegment
	// SplitVLAN: one expected VLAN appears as several discovered groups
	// (partition or misconfiguration).
	SplitVLAN
)

func (k MismatchKind) String() string {
	switch k {
	case UnknownAdapter:
		return "unknown-adapter"
	case MissingAdapter:
		return "missing-adapter"
	case WrongSegment:
		return "wrong-segment"
	case SplitVLAN:
		return "split-vlan"
	default:
		return fmt.Sprintf("MismatchKind(%d)", int(k))
	}
}

// Mismatch is one verification finding.
type Mismatch struct {
	Kind    MismatchKind
	Adapter transport.IP // subject adapter (zero for SplitVLAN)
	VLAN    int          // expected VLAN involved
	Detail  string
}

func (m Mismatch) String() string {
	s := m.Kind.String()
	if m.Adapter != 0 {
		s += " " + m.Adapter.String()
	}
	if m.VLAN != 0 {
		s += fmt.Sprintf(" vlan=%d", m.VLAN)
	}
	if m.Detail != "" {
		s += " (" + m.Detail + ")"
	}
	return s
}

// Verify compares the discovered grouping against expectations. The input
// maps each discovered group (keyed by its leader) to its member
// addresses. Findings are deterministic: sorted by kind, then adapter.
//
// The presumed VLAN of a discovered group is the majority expected VLAN of
// its known members; members expecting a different VLAN are WrongSegment.
func (db *DB) Verify(groups map[transport.IP][]transport.IP) []Mismatch {
	var out []Mismatch
	seen := make(map[transport.IP]bool)
	vlanGroups := make(map[int]int) // expected VLAN -> how many groups presume it

	leaders := make([]transport.IP, 0, len(groups))
	for l := range groups {
		leaders = append(leaders, l)
	}
	sort.Slice(leaders, func(i, j int) bool { return leaders[i] < leaders[j] })

	for _, leader := range leaders {
		members := groups[leader]
		// Majority expected VLAN among known members.
		counts := map[int]int{}
		for _, ip := range members {
			seen[ip] = true
			if spec, ok := db.adapters[ip]; ok {
				counts[spec.VLAN]++
			}
		}
		majority, best := 0, 0
		for vlan, c := range counts {
			if c > best || (c == best && vlan < majority) {
				majority, best = vlan, c
			}
		}
		if majority != 0 {
			vlanGroups[majority]++
		}
		for _, ip := range members {
			spec, ok := db.adapters[ip]
			if !ok {
				out = append(out, Mismatch{Kind: UnknownAdapter, Adapter: ip,
					Detail: fmt.Sprintf("in group led by %v", leader)})
				continue
			}
			if majority != 0 && spec.VLAN != majority {
				out = append(out, Mismatch{Kind: WrongSegment, Adapter: ip, VLAN: spec.VLAN,
					Detail: fmt.Sprintf("grouped with vlan %d (leader %v)", majority, leader)})
			}
		}
	}
	for _, spec := range db.Adapters() {
		if !seen[spec.IP] {
			out = append(out, Mismatch{Kind: MissingAdapter, Adapter: spec.IP, VLAN: spec.VLAN})
		}
	}
	for vlan, n := range vlanGroups {
		if n > 1 {
			out = append(out, Mismatch{Kind: SplitVLAN, VLAN: vlan,
				Detail: fmt.Sprintf("%d separate groups", n)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		if out[i].Adapter != out[j].Adapter {
			return out[i].Adapter < out[j].Adapter
		}
		return out[i].VLAN < out[j].VLAN
	})
	return out
}
