package conformance

import (
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"repro/internal/switchsim"
	"repro/internal/transport"
)

// LoopbackFabric runs the farm as real gsd processes on the host
// loopback interface. Every adapter is a distinct 127.x address; VLAN
// segmentation is emulated by per-adapter multicast scope groups
// (transport.ScopedEndpoint inside each daemon, controlled over
// /fabricctl). Unprivileged — this is the fabric CI runs on every PR.
type LoopbackFabric struct {
	spec *FarmSpec
	bin  string
	art  string
	logf func(string, ...any)

	agent   *switchAgent
	dbPath  string
	onStart func(*Daemon)

	mu   sync.Mutex
	live map[string]*Daemon
	gens map[string]int
	vlan map[transport.IP]int
}

// NewLoopbackFabric builds the fabric. bin is the gsd binary, art the
// artifacts directory (logs, journals, configdb land under it).
func NewLoopbackFabric(spec *FarmSpec, bin, art string, logf func(string, ...any)) *LoopbackFabric {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	lb := &LoopbackFabric{
		spec: spec, bin: bin, art: art, logf: logf,
		live: map[string]*Daemon{}, gens: map[string]int{},
		vlan: map[transport.IP]int{},
	}
	for _, n := range spec.Nodes {
		for _, a := range n.Adapters {
			lb.vlan[a.IP] = a.VLAN
		}
	}
	return lb
}

// Kind implements Fabric.
func (lb *LoopbackFabric) Kind() string { return "loopback" }

// Spec implements Fabric.
func (lb *LoopbackFabric) Spec() *FarmSpec { return lb.spec }

// OnStart implements Fabric.
func (lb *LoopbackFabric) OnStart(fn func(*Daemon)) { lb.onStart = fn }

// Boot implements Fabric: write the (possibly lying) configdb, start
// the switch agent, then every node.
func (lb *LoopbackFabric) Boot() error {
	for _, dir := range []string{"logs", "journal"} {
		if err := os.MkdirAll(filepath.Join(lb.art, dir), 0o755); err != nil {
			return err
		}
	}
	lb.dbPath = filepath.Join(lb.art, "configdb.json")
	if err := lb.spec.WriteConfigDB(lb.dbPath); err != nil {
		return err
	}
	agent, err := startSwitchAgent(lb.spec, lb.applyPortVLAN)
	if err != nil {
		return err
	}
	lb.agent = agent
	for _, n := range lb.spec.Nodes {
		if err := lb.startNode(n.Name); err != nil {
			lb.Close()
			return err
		}
	}
	return nil
}

// startNode launches a fresh incarnation of the node with its adapters
// scoped to their current segments.
func (lb *LoopbackFabric) startNode(name string) error {
	node, ok := lb.spec.Node(name)
	if !ok {
		return fmt.Errorf("conformance: unknown node %q", name)
	}
	lb.mu.Lock()
	gen := lb.gens[name] + 1
	lb.gens[name] = gen
	adapters := ""
	for i, a := range node.Adapters {
		scope, ok := lb.spec.Scope(lb.vlan[a.IP])
		if !ok {
			lb.mu.Unlock()
			return fmt.Errorf("conformance: no scope group for VLAN %d", lb.vlan[a.IP])
		}
		if i > 0 {
			adapters += ","
		}
		adapters += fmt.Sprintf("%v@%v", a.IP, scope)
	}
	lb.mu.Unlock()

	// Distinct seeds per incarnation keep 2PC round tokens from
	// colliding across a crash-restart in the merged farm trace.
	seed := int64(gen)*1000 + int64(node.Adapters[0].Port)
	argv := []string{
		lb.bin,
		"-node", name,
		"-adapters", adapters,
		"-fast",
		"-seed", strconv.FormatInt(seed, 10),
		"-configdb", lb.dbPath,
		"-community", lb.spec.Community,
		"-switches", fmt.Sprintf("%s=%v:%d", lb.spec.SwitchName, lb.spec.SwitchIP, lb.spec.SwitchPort),
		"-journal-dir", filepath.Join(lb.art, "journal", name),
		"-debug-addr", lb.spec.AdminIP(name).String() + ":0",
		"-fabric-ctl",
		"-trace-cap", "16384",
		"-ready-fd", "3",
	}
	logPath := filepath.Join(lb.art, "logs", fmt.Sprintf("%s-gen%d.log", name, gen))
	d, err := startDaemon(name, gen, argv, logPath)
	if err != nil {
		return err
	}
	lb.mu.Lock()
	lb.live[name] = d
	lb.mu.Unlock()
	lb.logf("fabric: %s ready (pid %d, debug %s)", d.Source(), d.Ready.PID, d.Ready.DebugAddr)
	lb.pushSegments()
	if lb.onStart != nil {
		lb.onStart(d)
	}
	return nil
}

// pushSegments distributes the fabric's current segment table (adapter ->
// scope group) to every live daemon. On a real network a bridge confines
// unicast to its segment; on one loopback interface every 127.x address
// reaches every other, so without this table a moved adapter would keep
// exchanging unicast heartbeats with its old segment forever and the
// protocol would never notice the move.
func (lb *LoopbackFabric) pushSegments() {
	lb.mu.Lock()
	pairs := ""
	stale := false
	for ip, vlan := range lb.vlan {
		scope, ok := lb.spec.Scope(vlan)
		if !ok {
			stale = true
			continue
		}
		if pairs != "" {
			pairs += ","
		}
		pairs += fmt.Sprintf("%v:%v", ip, scope)
	}
	var targets []*Daemon
	for _, d := range lb.live {
		targets = append(targets, d)
	}
	lb.mu.Unlock()
	if stale {
		lb.logf("fabric: segment table has adapters on VLANs with no scope group")
	}
	q := url.Values{"map": {pairs}}
	for _, d := range targets {
		if err := httpCommand(d.DebugURL()+"/fabricctl/segments?"+q.Encode(), httpTimeout); err != nil {
			lb.logf("fabric: segment push to %s failed: %v", d.Source(), err)
		}
	}
}

// Live implements Fabric.
func (lb *LoopbackFabric) Live(node string) (*Daemon, bool) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	d, ok := lb.live[node]
	return d, ok
}

// LiveDaemons implements Fabric.
func (lb *LoopbackFabric) LiveDaemons() []*Daemon {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	var out []*Daemon
	for _, n := range lb.spec.Nodes {
		if d, ok := lb.live[n.Name]; ok {
			out = append(out, d)
		}
	}
	return out
}

// KillNode implements Fabric.
func (lb *LoopbackFabric) KillNode(node string) error {
	lb.mu.Lock()
	d, ok := lb.live[node]
	delete(lb.live, node)
	lb.mu.Unlock()
	if !ok {
		return fmt.Errorf("conformance: %s is not running", node)
	}
	d.Kill()
	lb.logf("fabric: killed %s", d.Source())
	return nil
}

// RestartNode implements Fabric.
func (lb *LoopbackFabric) RestartNode(node string) error {
	if _, running := lb.Live(node); running {
		return fmt.Errorf("conformance: %s is still running", node)
	}
	return lb.startNode(node)
}

// FailAdapter implements Fabric via the owning daemon's /fabricctl
// socket-level fault filter.
func (lb *LoopbackFabric) FailAdapter(ip transport.IP, mode string, lossIn, lossOut float64) error {
	node, _, ok := lb.spec.Adapter(ip)
	if !ok {
		return fmt.Errorf("conformance: unknown adapter %v", ip)
	}
	d, running := lb.Live(node)
	if !running {
		return fmt.Errorf("conformance: %s is not running", node)
	}
	q := url.Values{"adapter": {ip.String()}, "mode": {mode},
		"loss_in":  {strconv.FormatFloat(lossIn, 'f', -1, 64)},
		"loss_out": {strconv.FormatFloat(lossOut, 'f', -1, 64)}}
	return httpCommand(d.DebugURL()+"/fabricctl/fault?"+q.Encode(), httpTimeout)
}

// RescopeAdapter implements Fabric: the emulated switch-port VLAN
// rewrite, performed by re-pointing the adapter's multicast scope.
func (lb *LoopbackFabric) RescopeAdapter(ip transport.IP, vlan int) error {
	node, _, ok := lb.spec.Adapter(ip)
	if !ok {
		return fmt.Errorf("conformance: unknown adapter %v", ip)
	}
	scope, ok := lb.spec.Scope(vlan)
	if !ok {
		return fmt.Errorf("conformance: no scope group for VLAN %d", vlan)
	}
	lb.mu.Lock()
	lb.vlan[ip] = vlan
	lb.mu.Unlock()
	d, running := lb.Live(node)
	if !running {
		// The node is down: the new VLAN takes effect when it restarts
		// (startNode reads the live vlan map), like re-plugging the
		// port of a powered-off machine.
		return nil
	}
	q := url.Values{"adapter": {ip.String()}, "group": {scope.String()}}
	if err := httpCommand(d.DebugURL()+"/fabricctl/rescope?"+q.Encode(), httpTimeout); err != nil {
		return err
	}
	lb.pushSegments()
	lb.logf("fabric: %v re-plugged to %s", ip, switchsim.SegmentName(vlan))
	return nil
}

// VLANOf implements Fabric.
func (lb *LoopbackFabric) VLANOf(ip transport.IP) int {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.vlan[ip]
}

// applyPortVLAN is the switch agent's write hook: an SNMP SET on a
// port's VLAN object lands here and becomes the adapter re-plug.
func (lb *LoopbackFabric) applyPortVLAN(port, vlan int) {
	ip, ok := lb.spec.AdapterOnPort(port)
	if !ok {
		lb.logf("fabric: SNMP SET on unwired port %d ignored", port)
		return
	}
	if err := lb.RescopeAdapter(ip, vlan); err != nil {
		lb.logf("fabric: SNMP port %d -> vlan %d: %v", port, vlan, err)
	}
}

// Close implements Fabric.
func (lb *LoopbackFabric) Close() error {
	lb.mu.Lock()
	var ds []*Daemon
	for _, d := range lb.live {
		ds = append(ds, d)
	}
	lb.live = map[string]*Daemon{}
	lb.mu.Unlock()

	var firstErr error
	var wg sync.WaitGroup
	errs := make([]error, len(ds))
	for i, d := range ds {
		wg.Add(1)
		go func(i int, d *Daemon) {
			defer wg.Done()
			errs[i] = d.Stop(10 * time.Second)
		}(i, d)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if lb.agent != nil {
		lb.agent.close()
		lb.agent = nil
	}
	return firstErr
}
