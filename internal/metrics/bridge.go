package metrics

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/trace"
	"repro/internal/transport"
)

// ObserveTrace returns a flight-recorder sink that folds protocol trace
// records into registry instruments: per-kind event counters, 2PC round
// latency (first Prepare to Commit per transaction), group-size gauges,
// leader churn, and suspicion / false-accusation counts. Install it with
// Recorder.AddSink; both the simulator farm and gsd use it so the same
// instrumentation works in virtual and wall-clock time.
func ObserveTrace(r *Registry) func(trace.Record) {
	type txnKey struct {
		leader transport.IP
		token  uint64
	}
	var mu sync.Mutex
	open := make(map[txnKey]time.Duration)
	return func(rec trace.Record) {
		switch rec.Kind {
		case trace.KBeaconSent:
			r.Inc("beacons_sent_total")
		case trace.KFormed:
			r.Inc("groups_formed_total")
		case trace.KPrepareSent:
			mu.Lock()
			k := txnKey{rec.Group, rec.Token}
			if _, seen := open[k]; !seen {
				if len(open) > 4096 { // bound abandoned rounds
					for stale := range open {
						delete(open, stale)
						break
					}
				}
				open[k] = rec.T
				r.Inc("twopc_rounds_total")
			}
			mu.Unlock()
		case trace.KRetarget:
			r.Inc("twopc_retargets_total")
		case trace.KCommitSent:
			mu.Lock()
			k := txnKey{rec.Group, rec.Token}
			if t0, ok := open[k]; ok {
				delete(open, k)
				r.ObserveDuration("twopc_round", rec.T-t0)
			}
			mu.Unlock()
			r.Inc("twopc_commits_total")
		case trace.KViewCommit:
			r.Inc("view_commits_total")
			// Only the leader's commit describes the group authoritatively.
			if rec.Self == rec.Group {
				r.Set(fmt.Sprintf("group_size{leader=%q}", rec.Group), float64(rec.Count))
			}
		case trace.KLeaderTakeover:
			r.Inc("leader_takeovers_total")
		case trace.KOrphaned:
			r.Inc("orphans_total")
		case trace.KEvicted:
			r.Inc("evictions_total")
		case trace.KSuspicionRaised:
			r.Inc("suspicions_total")
		case trace.KLoopbackFailed:
			r.Inc("loopback_failures_total")
		case trace.KVerdictDead:
			r.Inc("verified_deaths_total")
		case trace.KFalseAccusation:
			r.Inc("false_accusations_total")
		case trace.KReportQueued:
			r.Inc("reports_queued_total")
		case trace.KReportApplied:
			r.Inc("reports_applied_total")
		case trace.KResyncSent:
			r.Inc("resyncs_total")
		case trace.KJournalStreamed:
			r.Inc("journal_streamed_total")
		case trace.KJournalReplayed:
			r.Inc("journal_replays_total")
		case trace.KCentralActivated:
			r.Inc("central_activations_total")
		case trace.KFaultInjected:
			r.Inc("faults_injected_total")
		case trace.KNotifySent:
			r.Inc("notifies_sent_total")
		case trace.KIncidentClosed:
			r.Inc("incidents_closed_total")
		case trace.KServeClean:
			r.Inc("serve_clean_ticks_total")
		}
	}
}
