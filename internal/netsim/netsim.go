// Package netsim simulates an IP-over-switched-Ethernet network for
// GulfStream: adapters attached to broadcast segments, UDP-like unicast and
// multicast with configurable loss and latency, and adapter failure modes
// (fail-stop, receive-dead, send-dead — the paper's §3 discusses exactly
// the receive-dead case and why it requires a loopback self-test).
//
// Which adapters share a segment is not decided here: a SegmentResolver —
// in practice the switch fabric in internal/switchsim — maps each adapter
// to a segment. A resolver that can attribute changes to individual
// adapters (NotifyingResolver) lets the network maintain its
// segment-membership cache incrementally; otherwise the cache is rebuilt
// whenever the resolver's version moves. Each adapter holds a pointer to
// its current segment bucket, so the steady-state send path resolves the
// sender and its peers without touching a map.
//
// The delivery path is allocation-free in the steady state: payloads are
// copied exactly once per transmission into a pooled buffer shared by all
// receivers, and the in-flight delivery records are pooled too. Receivers
// must not retain a delivered payload beyond the handler call (see
// transport.Handler and DESIGN.md §9).
package netsim

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/sim"
	"repro/internal/transport"
)

// SegmentResolver maps adapters to broadcast segments. Implementations
// must bump Version whenever any mapping changes so the network can
// invalidate its segment-membership cache.
type SegmentResolver interface {
	// SegmentOf returns the segment the adapter is attached to, and false
	// if the adapter currently has no connectivity (port down, switch
	// dead, unknown adapter).
	SegmentOf(ip transport.IP) (string, bool)
	// Version increments on every topology change.
	Version() uint64
}

// NotifyingResolver is an optional extension of SegmentResolver for
// resolvers that can say which adapter a topology change affected.
// Notify registers two callbacks: perIP, invoked with each adapter whose
// connectivity may have changed, and bulk, invoked when a change cannot
// be attributed to specific adapters. A Network attached to a
// NotifyingResolver updates its segment-membership cache incrementally
// instead of rebuilding it from scratch on every change.
type NotifyingResolver interface {
	SegmentResolver
	Notify(perIP func(transport.IP), bulk func())
}

// LinkProfile describes delivery quality on a segment. Loss is the
// independent per-receiver drop probability in [0,1]; latency of a packet
// is Latency, plus a uniform draw from [0, Jitter), plus a deterministic
// per-(src,dst) spread in [0, Spread).
//
// Spread exists for sharded runs: it desynchronizes simultaneous arrivals
// the way real path-length differences do, but it is a pure hash of the
// address pair — no RNG draw — so it is identical under any shard count
// and absent (zero) in every pre-existing profile.
//
// RecvFilter selects receiver-side multicast filtering: the segment
// delivers a multicast to every attached adapter and the subscription
// check happens at arrival (IGMP-snooping semantics), instead of the
// default sender-side membership scan. Cross-shard segments require it —
// a sender may not read another shard's subscription state mid-window —
// and it must be a property of the segment, not of the shard count, so
// single-shard runs of the same farm stay bit-identical.
type LinkProfile struct {
	Loss       float64
	Latency    time.Duration
	Jitter     time.Duration
	Spread     time.Duration
	RecvFilter bool
}

// FailureMode enumerates the ways an adapter can be broken.
type FailureMode int

const (
	// Healthy: adapter sends and receives normally.
	Healthy FailureMode = iota
	// FailStop: adapter neither sends nor receives (powered off, cable cut).
	FailStop
	// FailRecv: adapter transmits but hears nothing — the paper's "fails
	// in such a way that it ceases to receive messages" case, which a
	// naive ring detector misblames on the left neighbor.
	FailRecv
	// FailSend: adapter receives but its transmissions vanish.
	FailSend
)

func (m FailureMode) String() string {
	switch m {
	case Healthy:
		return "healthy"
	case FailStop:
		return "fail-stop"
	case FailRecv:
		return "fail-recv"
	case FailSend:
		return "fail-send"
	default:
		return fmt.Sprintf("FailureMode(%d)", int(m))
	}
}

// Trace describes one transmission attempt, for metrics and debugging.
type Trace struct {
	Time      time.Duration
	Src       transport.IP
	Dst       transport.Addr
	Segment   string
	Bytes     int
	Multicast bool
	Receivers int // copies actually delivered (post-loss)
	Dropped   int // copies lost to the loss model
	// Payload aliases the sender's wire bytes and is valid only for the
	// duration of the tap callback (senders reuse their buffers); a tap
	// that retains packet contents must copy.
	Payload []byte
}

// segment is one broadcast domain's cache bucket: its members in
// ascending-IP order plus the resolved link profile, so a sender reaches
// both through a single pointer.
type segment struct {
	name     string
	members  []*Adapter // ascending IP
	profile  LinkProfile
	override bool // profile explicitly set; otherwise the network default applies
}

// find locates the member with the given address, or nil.
func (s *segment) find(ip transport.IP) *Adapter {
	ms := s.members
	i := sort.Search(len(ms), func(i int) bool { return ms[i].ip >= ip })
	if i < len(ms) && ms[i].ip == ip {
		return ms[i]
	}
	return nil
}

// Network is the simulated fabric. It is driven entirely by the
// scheduler's event loop. A legacy (single-lane) network is not safe for
// concurrent use; a sharded network (NewSharded) is driven by the Shards
// kernel and partitions all mutable delivery state into per-shard lanes so
// window bodies can run in parallel — see shard.go.
type Network struct {
	sched    *sim.Scheduler
	resolver SegmentResolver

	// Sharding. lanes always has at least one entry; a legacy network is
	// exactly the one-lane special case (lane 0 on the caller's scheduler).
	lanes   []*lane
	sh      *sim.Shards
	home    func(node string) int
	sharded bool
	xdel    xdelList // barrier merge scratch, reused

	adapters map[transport.IP]*Adapter
	order    []transport.IP // sorted, for deterministic iteration

	defaultProfile LinkProfile
	segProfiles    map[string]LinkProfile

	// Segment-membership cache. With a NotifyingResolver it is maintained
	// incrementally (incremental=true, per-adapter callbacks); otherwise
	// a resolver version change forces a full rebuild. dirty marks a
	// pending rebuild in either mode.
	incremental  bool
	dirty        bool
	cacheVersion uint64
	segments     map[string]*segment

	tap func(Trace)
}

// New creates a network on the given scheduler with the resolver deciding
// segment membership.
func New(sched *sim.Scheduler, resolver SegmentResolver) *Network {
	n := &Network{
		sched:          sched,
		resolver:       resolver,
		adapters:       make(map[transport.IP]*Adapter),
		defaultProfile: LinkProfile{Latency: 200 * time.Microsecond, Jitter: 300 * time.Microsecond},
		segProfiles:    make(map[string]LinkProfile),
		segments:       make(map[string]*segment),
		dirty:          true,
	}
	n.lanes = []*lane{{net: n, id: 0, sched: sched}}
	if nr, ok := resolver.(NotifyingResolver); ok {
		n.incremental = true
		nr.Notify(n.adapterMoved, n.invalidate)
	}
	return n
}

// Scheduler returns the scheduler driving this network.
func (n *Network) Scheduler() *sim.Scheduler { return n.sched }

// SetDefaultProfile sets the link profile used by segments without an
// override.
func (n *Network) SetDefaultProfile(p LinkProfile) { n.defaultProfile = p }

// SetSegmentProfile overrides the link profile for one segment.
func (n *Network) SetSegmentProfile(name string, p LinkProfile) {
	n.segProfiles[name] = p
	if seg := n.segments[name]; seg != nil {
		seg.profile = p
		seg.override = true
	}
}

// Tap installs fn to observe every transmission attempt. A nil fn removes
// the tap.
func (n *Network) Tap(fn func(Trace)) { n.tap = fn }

func (n *Network) effectiveProfile(seg *segment) LinkProfile {
	if seg.override {
		return seg.profile
	}
	return n.defaultProfile
}

// AddAdapter creates and attaches an adapter with the given address,
// owned by the named node. It panics on duplicate addresses: farm
// construction is programmer-controlled and a duplicate is always a bug.
func (n *Network) AddAdapter(ip transport.IP, node string) *Adapter {
	if _, dup := n.adapters[ip]; dup {
		panic(fmt.Sprintf("netsim: duplicate adapter %v", ip))
	}
	a := &Adapter{
		net:  n,
		ip:   ip,
		node: node,
	}
	a.ln = n.lanes[0]
	if n.sharded {
		a.ln = n.lanes[n.home(node)]
	}
	n.adapters[ip] = a
	i := sort.Search(len(n.order), func(i int) bool { return n.order[i] >= ip })
	n.order = append(n.order, 0)
	copy(n.order[i+1:], n.order[i:])
	n.order[i] = ip
	if n.incremental {
		if !n.dirty {
			if name, ok := n.resolver.SegmentOf(ip); ok {
				n.insertMember(n.getSegment(name), a)
			}
		}
	} else {
		n.invalidate()
	}
	return a
}

// Adapter returns the adapter with the given address, or nil.
func (n *Network) Adapter(ip transport.IP) *Adapter { return n.adapters[ip] }

// Adapters returns all adapters in ascending IP order.
func (n *Network) Adapters() []*Adapter {
	out := make([]*Adapter, 0, len(n.order))
	for _, ip := range n.order {
		out = append(out, n.adapters[ip])
	}
	return out
}

// invalidate schedules a full cache rebuild (the bulk-change path).
func (n *Network) invalidate() { n.dirty = true }

// ensure refreshes the segment cache as the mode requires; every read of
// segment state goes through it first. In a sharded network the cache may
// only be rebuilt while the kernel is quiesced — senders on worker
// goroutines read segment buckets concurrently, so a topology change
// landing mid-window is a hard error (sharded runs are for static-topology
// workloads; call Ensure from control code after any change).
func (n *Network) ensure() {
	if n.dirty || (!n.incremental && n.resolver.Version() != n.cacheVersion) {
		if n.sharded && n.sh.Running() {
			panic("netsim: topology changed during a sharded window")
		}
		n.rebuild()
	}
}

// Ensure rebuilds the segment cache if stale. Sharded callers must invoke
// it from control code (between runs) after construction or any topology
// change, so no rebuild happens inside a window.
func (n *Network) Ensure() { n.ensure() }

// getSegment returns the named bucket, creating it (with any registered
// profile override) on first sight.
func (n *Network) getSegment(name string) *segment {
	seg := n.segments[name]
	if seg == nil {
		seg = &segment{name: name}
		if p, ok := n.segProfiles[name]; ok {
			seg.profile = p
			seg.override = true
		}
		n.segments[name] = seg
	}
	return seg
}

// adapterMoved is the per-adapter path of the incremental cache: called by
// a NotifyingResolver whenever one adapter's connectivity may have
// changed, it re-resolves just that adapter and splices it between
// segment buckets.
func (n *Network) adapterMoved(ip transport.IP) {
	if n.dirty {
		return // full rebuild already pending; it will pick this up
	}
	a := n.adapters[ip]
	if a == nil {
		return // resolver knows the IP before AddAdapter; that re-resolves
	}
	name, ok := n.resolver.SegmentOf(ip)
	if old := a.seg; old != nil {
		if ok && old.name == name {
			return
		}
		n.dropMember(old, a)
	}
	if ok {
		n.insertMember(n.getSegment(name), a)
	}
}

// insertMember splices a into the segment's bucket, keeping ascending IP
// order so iteration stays deterministic.
func (n *Network) insertMember(seg *segment, a *Adapter) {
	ms := seg.members
	i := sort.Search(len(ms), func(i int) bool { return ms[i].ip >= a.ip })
	ms = append(ms, nil)
	copy(ms[i+1:], ms[i:])
	ms[i] = a
	seg.members = ms
	a.seg = seg
}

func (n *Network) dropMember(seg *segment, a *Adapter) {
	ms := seg.members
	i := sort.Search(len(ms), func(i int) bool { return ms[i].ip >= a.ip })
	if i < len(ms) && ms[i] == a {
		copy(ms[i:], ms[i+1:])
		ms[len(ms)-1] = nil
		seg.members = ms[:len(ms)-1]
	}
	a.seg = nil
}

// rebuild reconstructs the whole cache from the resolver.
func (n *Network) rebuild() {
	for _, seg := range n.segments {
		for i := range seg.members {
			seg.members[i] = nil
		}
		seg.members = seg.members[:0]
	}
	for _, ip := range n.order {
		a := n.adapters[ip]
		a.seg = nil
		if name, ok := n.resolver.SegmentOf(ip); ok {
			seg := n.getSegment(name)
			seg.members = append(seg.members, a) // n.order is ascending
			a.seg = seg
		}
	}
	n.cacheVersion = n.resolver.Version()
	n.dirty = false
}

// SegmentMembers lists the addresses attached to segment, ascending.
func (n *Network) SegmentMembers(name string) []transport.IP {
	n.ensure()
	seg := n.segments[name]
	if seg == nil {
		return nil
	}
	out := make([]transport.IP, len(seg.members))
	for i, a := range seg.members {
		out[i] = a.ip
	}
	return out
}

// pairHash mixes an address pair (and optional salt) into a deterministic
// 64-bit value — the basis of every draw-free link model under sharding.
func pairHash(src, dst transport.IP, salt uint64) uint64 {
	return sim.Splitmix64(uint64(src)<<32 | uint64(dst)&0xffffffff ^ salt)
}

// pairSpread is the deterministic per-pair latency component in
// [0, Spread). It is a pure hash of the addresses — identical under any
// shard count, zero for profiles that don't opt in.
func pairSpread(p LinkProfile, src, dst transport.IP) time.Duration {
	if p.Spread <= 0 {
		return 0
	}
	return time.Duration(pairHash(src, dst, 0x5eed) % uint64(p.Spread))
}

// latency computes one delivery latency. The legacy (single-lane) network
// draws jitter from the scheduler's RNG exactly as it always has — the
// draw sequence of recorded runs is part of the replay contract. A sharded
// network has no global RNG to share, so jitter becomes a stateless hash
// of (pair, send instant): deterministic under any shard count.
func (n *Network) latency(p LinkProfile, src, dst transport.IP, at time.Duration) time.Duration {
	d := p.Latency + pairSpread(p, src, dst)
	if p.Jitter > 0 {
		if n.sharded {
			d += time.Duration(pairHash(src, dst, uint64(at)*0x9e3779b97f4a7c15) % uint64(p.Jitter))
		} else {
			d += time.Duration(n.sched.Rand().Int63n(int64(p.Jitter)))
		}
	}
	return d
}

// lost decides one per-receiver drop. Same split as latency: RNG draw on
// the legacy path, stateless (pair, send instant) hash when sharded.
func (n *Network) lost(p LinkProfile, src, dst transport.IP, at time.Duration) bool {
	if p.Loss <= 0 {
		return false
	}
	if n.sharded {
		return float64(pairHash(src, dst, uint64(at)^0x10551055)%1_000_000_000)/1e9 < p.Loss
	}
	return n.sched.Rand().Float64() < p.Loss
}

// lane is the per-shard slice of the network's mutable delivery state: the
// scheduler the shard's events run on, the packet/delivery free lists, and
// the outgoing cross-shard bundle queues. Everything an adapter touches on
// the send/receive hot path lives in its home lane, so shards never
// contend. A legacy network is one lane.
type lane struct {
	net   *Network
	id    int
	sched *sim.Scheduler

	// Free lists for in-flight packet state. Only this lane's shard (or
	// the quiesced barrier) touches them — no locking.
	freeDel []*delivery
	freeBuf []*packetBuf

	// out[dst] queues bundles for other lanes (sharded only; see shard.go).
	out []bundleQueue
	// mcb scratch: per-destination-lane bundle of the multicast currently
	// being sent, nil between sends.
	mcb []*bundle
}

// packetBuf is one pooled copy of a payload in flight. It is shared by
// every receiver of a transmission on its lane; refs counts scheduled
// deliveries and the buffer returns to the pool when the last one runs.
type packetBuf struct {
	b    []byte
	refs int
}

// newBuf takes a buffer from the lane's pool and fills it with a private
// copy of payload — the single copy a transmission pays per lane.
func (ln *lane) newBuf(payload []byte) *packetBuf {
	var pb *packetBuf
	if k := len(ln.freeBuf); k > 0 {
		pb = ln.freeBuf[k-1]
		ln.freeBuf[k-1] = nil
		ln.freeBuf = ln.freeBuf[:k-1]
	} else {
		pb = &packetBuf{}
	}
	pb.b = append(pb.b[:0], payload...)
	pb.refs = 0
	return pb
}

func (ln *lane) releaseBuf(pb *packetBuf) {
	pb.refs--
	if pb.refs <= 0 {
		ln.freeBuf = append(ln.freeBuf, pb)
	}
}

// delivery is one pooled in-flight arrival: the scheduled-event argument
// carrying who receives which shared buffer. filter defers the multicast
// subscription check to arrival time (RecvFilter segments).
type delivery struct {
	ln     *lane
	dst    *Adapter
	src    transport.Addr
	to     transport.Addr
	buf    *packetBuf
	filter bool
}

// runDelivery is the scheduler callback for every packet arrival. It is a
// package-level function taking the pooled *delivery as its argument, so
// scheduling it allocates nothing (no closure). It runs on the receiver's
// lane, so reading the receiver's bindings and group subscriptions is
// always shard-local.
func runDelivery(arg any) {
	d := arg.(*delivery)
	ln, pb := d.ln, d.buf
	if d.dst.canReceive() && !(d.filter && !d.dst.inGroup(d.to)) {
		if h := d.dst.handler(d.to.Port); h != nil {
			// The handler may use pb.b only for the duration of this call;
			// the buffer is recycled as soon as the last receiver ran.
			h(d.src, d.to, pb.b)
		}
	}
	d.ln, d.dst, d.buf = nil, nil, nil
	ln.freeDel = append(ln.freeDel, d)
	ln.releaseBuf(pb)
}

// alloc takes a delivery record from the lane's pool.
func (ln *lane) alloc(dst *Adapter, src, to transport.Addr, pb *packetBuf, filter bool) *delivery {
	var d *delivery
	if k := len(ln.freeDel); k > 0 {
		d = ln.freeDel[k-1]
		ln.freeDel[k-1] = nil
		ln.freeDel = ln.freeDel[:k-1]
	} else {
		d = &delivery{}
	}
	d.ln, d.dst, d.src, d.to, d.buf, d.filter = ln, dst, src, to, pb, filter
	pb.refs++
	return d
}

// deliver schedules the arrival of the shared buffer at dst's handler,
// after the given latency. dst must live on this lane.
func (ln *lane) deliver(dst *Adapter, src, to transport.Addr, pb *packetBuf, after time.Duration, filter bool) {
	ln.sched.AfterCall(after, runDelivery, ln.alloc(dst, src, to, pb, filter))
}

// deliverAt schedules an arrival at an absolute instant — the barrier
// injection path for cross-shard deliveries.
func (ln *lane) deliverAt(dst *Adapter, src, to transport.Addr, pb *packetBuf, at time.Duration, filter bool) {
	ln.sched.PostAt(at, runDelivery, ln.alloc(dst, src, to, pb, filter))
}

// wellKnownPlanes counts the ports with dedicated handler slots: the five
// GulfStream protocol planes plus SNMP. Everything else falls back to a
// lazily allocated map.
const wellKnownPlanes = 6

func planeIndex(port uint16) int {
	switch {
	case port >= transport.PortBeacon && port <= transport.PortJournal:
		return int(port - transport.PortBeacon)
	case port == transport.PortSNMP:
		return wellKnownPlanes - 1
	default:
		return -1
	}
}

// Adapter is one simulated network interface; it implements
// transport.Endpoint and transport.Liveness.
type Adapter struct {
	net  *Network
	ln   *lane // home lane: the shard whose windows run this adapter
	ip   transport.IP
	node string
	mode FailureMode
	seg  *segment // current bucket; nil while disconnected or cache dirty
	// planes holds handlers for the well-known ports (hit on every
	// delivery, so no map lookup); bindings covers the rest.
	planes   [wellKnownPlanes]transport.Handler
	bindings map[uint16]transport.Handler
	groups   []transport.Addr // multicast subscriptions; tiny, scanned linearly
}

var (
	_ transport.Endpoint = (*Adapter)(nil)
	_ transport.Liveness = (*Adapter)(nil)
)

// LocalIP returns the adapter's address.
func (a *Adapter) LocalIP() transport.IP { return a.ip }

// Node returns the owning node's identifier.
func (a *Adapter) Node() string { return a.node }

// Mode returns the adapter's current failure mode.
func (a *Adapter) Mode() FailureMode { return a.mode }

// SetMode sets the adapter's failure mode.
func (a *Adapter) SetMode(m FailureMode) { a.mode = m }

// Up reports whether the adapter is fully healthy. Partially failed
// adapters (FailRecv/FailSend) are not "up": the loopback test catches
// them, as the paper requires.
func (a *Adapter) Up() bool { return a.mode == Healthy }

func (a *Adapter) canSend() bool    { return a.mode == Healthy || a.mode == FailRecv }
func (a *Adapter) canReceive() bool { return a.mode == Healthy || a.mode == FailSend }

// Loopback self-tests the adapter's send+receive path.
func (a *Adapter) Loopback() bool {
	if !(a.canSend() && a.canReceive()) {
		return false
	}
	a.net.ensure()
	return a.seg != nil
}

// Bind registers h on port; nil unbinds.
func (a *Adapter) Bind(port uint16, h transport.Handler) {
	if i := planeIndex(port); i >= 0 {
		a.planes[i] = h
		return
	}
	if h == nil {
		delete(a.bindings, port)
		return
	}
	if a.bindings == nil {
		a.bindings = make(map[uint16]transport.Handler)
	}
	a.bindings[port] = h
}

// handler returns the handler bound to port, or nil.
func (a *Adapter) handler(port uint16) transport.Handler {
	if i := planeIndex(port); i >= 0 {
		return a.planes[i]
	}
	return a.bindings[port]
}

// JoinGroup subscribes to multicast group traffic on port.
func (a *Adapter) JoinGroup(group transport.IP, port uint16) {
	addr := transport.Addr{IP: group, Port: port}
	if !a.inGroup(addr) {
		a.groups = append(a.groups, addr)
	}
}

// LeaveGroup removes a multicast subscription.
func (a *Adapter) LeaveGroup(group transport.IP, port uint16) {
	addr := transport.Addr{IP: group, Port: port}
	for i, g := range a.groups {
		if g == addr {
			a.groups = append(a.groups[:i], a.groups[i+1:]...)
			return
		}
	}
}

func (a *Adapter) inGroup(addr transport.Addr) bool {
	for _, g := range a.groups {
		if g == addr {
			return true
		}
	}
	return false
}

// ErrAdapterDown is returned from send operations on a dead interface.
var ErrAdapterDown = fmt.Errorf("netsim: adapter cannot transmit")

// ErrNoSegment is returned when the sending adapter has no connectivity.
var ErrNoSegment = fmt.Errorf("netsim: adapter not attached to any segment")

// Unicast sends payload to dst if dst shares the sender's segment.
// Cross-segment sends vanish silently (there are no routers between
// GulfStream segments, per the paper's network assumptions); only local
// conditions produce an error. The payload is copied before the call
// returns; the caller keeps ownership of its buffer.
func (a *Adapter) Unicast(srcPort uint16, dst transport.Addr, payload []byte) error {
	if !a.canSend() {
		return ErrAdapterDown
	}
	n := a.net
	n.ensure()
	seg := a.seg
	if seg == nil {
		return ErrNoSegment
	}
	src := transport.Addr{IP: a.ip, Port: srcPort}
	now := a.ln.sched.Now()
	received, dropped := 0, 0
	if target := seg.find(dst.IP); target != nil {
		p := n.effectiveProfile(seg)
		if target.ln == a.ln {
			if n.lost(p, a.ip, dst.IP, now) {
				dropped = 1
			} else {
				received = 1
				a.ln.deliver(target, src, dst, a.ln.newBuf(payload), n.latency(p, a.ip, dst.IP, now), false)
			}
		} else {
			// Cross-shard: queue a bundle; loss and latency are resolved at
			// the barrier from the same stateless hashes, so the verdict is
			// identical. The trace reports the pre-loss candidate.
			received = 1
			a.ln.postCross(target, src, dst, payload, p, false)
		}
	}
	if n.tap != nil {
		n.tap(Trace{Time: now, Src: a.ip, Dst: dst, Segment: seg.name,
			Bytes: len(payload), Receivers: received, Dropped: dropped, Payload: payload})
	}
	return nil
}

// Multicast sends payload to every subscribed adapter on the sender's
// segment, excluding the sender itself. The payload is copied exactly
// once per transmission; all receivers share the (immutable) copy.
func (a *Adapter) Multicast(srcPort uint16, group transport.Addr, payload []byte) error {
	if !a.canSend() {
		return ErrAdapterDown
	}
	n := a.net
	n.ensure()
	seg := a.seg
	if seg == nil {
		return ErrNoSegment
	}
	src := transport.Addr{IP: a.ip, Port: srcPort}
	p := n.effectiveProfile(seg)
	now := a.ln.sched.Now()
	received, dropped := 0, 0
	var pb *packetBuf
	for _, m := range seg.members {
		if m == a {
			continue
		}
		if p.RecvFilter {
			// Receiver-side filtering: the segment floods every member and
			// the subscription check happens at arrival, on the receiver's
			// own shard. Mandatory for cross-shard segments — reading a
			// remote adapter's subscriptions mid-window would race — and
			// applied identically to local members so the semantics do not
			// depend on the shard layout.
		} else if m.ln != a.ln {
			panic("netsim: cross-shard multicast on a segment without RecvFilter")
		} else if !m.inGroup(group) {
			continue
		}
		if m.ln != a.ln {
			received++
			a.ln.postMulticast(m, src, group, payload, p)
			continue
		}
		if n.lost(p, a.ip, m.ip, now) {
			dropped++
			continue
		}
		received++
		if pb == nil {
			pb = a.ln.newBuf(payload)
		}
		a.ln.deliver(m, src, group, pb, n.latency(p, a.ip, m.ip, now), p.RecvFilter)
	}
	a.ln.sealMulticast()
	if n.tap != nil {
		n.tap(Trace{Time: now, Src: a.ip, Dst: group, Segment: seg.name,
			Bytes: len(payload), Multicast: true, Receivers: received, Dropped: dropped, Payload: payload})
	}
	return nil
}

// StaticResolver is a trivial SegmentResolver backed by a map, for tests
// and single-segment experiments that need no switch fabric. It is
// deliberately not a NotifyingResolver, so it exercises the
// version-triggered rebuild path.
type StaticResolver struct {
	seg     map[transport.IP]string
	version uint64
}

// NewStaticResolver returns an empty resolver.
func NewStaticResolver() *StaticResolver {
	return &StaticResolver{seg: make(map[transport.IP]string), version: 1}
}

// Attach maps an adapter to a segment (replacing any previous mapping).
func (r *StaticResolver) Attach(ip transport.IP, segment string) {
	r.seg[ip] = segment
	r.version++
}

// Detach removes an adapter's connectivity entirely.
func (r *StaticResolver) Detach(ip transport.IP) {
	delete(r.seg, ip)
	r.version++
}

// SegmentOf implements SegmentResolver.
func (r *StaticResolver) SegmentOf(ip transport.IP) (string, bool) {
	s, ok := r.seg[ip]
	return s, ok
}

// Version implements SegmentResolver.
func (r *StaticResolver) Version() uint64 { return r.version }
