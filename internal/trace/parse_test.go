package trace

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/transport"
)

// TestDumpRoundTrip checks that a WriteJSON document parses back to the
// records that produced it — the contract the conformance harness's
// /trace scraper depends on.
func TestDumpRoundTrip(t *testing.T) {
	rec := New(16)
	want := []Record{
		{T: 1500 * time.Millisecond, Kind: KBeaconSent, Node: "web-1",
			Self: transport.MakeIP(10, 71, 1, 11)},
		{T: 2 * time.Second, Kind: KViewCommit, Node: "web-2",
			Self:  transport.MakeIP(10, 71, 1, 12),
			Group: transport.MakeIP(10, 71, 1, 13), Version: 3, Count: 3},
		{T: 2500 * time.Millisecond, Kind: KPrepareSent, Node: "web-3",
			Self: transport.MakeIP(10, 71, 1, 13), Peer: transport.MakeIP(10, 71, 1, 11),
			Group: transport.MakeIP(10, 71, 1, 13), Token: 7, Detail: "round 1"},
		{T: 3 * time.Second, Kind: KNotifySent, Node: "web-5", Token: 2,
			Detail: "node-failed web-1"},
	}
	for _, r := range want {
		rec.Record(r)
	}

	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	d, err := ParseDump(buf.Bytes())
	if err != nil {
		t.Fatalf("ParseDump: %v", err)
	}
	if d.Total != 4 || d.Dropped != 0 || d.Cap != 16 {
		t.Fatalf("envelope = total %d dropped %d cap %d", d.Total, d.Dropped, d.Cap)
	}
	if len(d.Records) != len(want) {
		t.Fatalf("got %d records, want %d", len(d.Records), len(want))
	}
	for i, got := range d.Records {
		w := want[i]
		w.Seq = uint64(i + 1) // recorder assigns Seq
		if got != w {
			t.Errorf("record %d:\n got  %+v\n want %+v", i, got, w)
		}
	}
}

func TestParseKind(t *testing.T) {
	for k := Kind(1); k < kindMax; k++ {
		got, ok := ParseKind(k.String())
		if !ok || got != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", k.String(), got, ok, k)
		}
	}
	if _, ok := ParseKind("no-such-kind"); ok {
		t.Error("ParseKind accepted an unknown name")
	}
}

func TestUnmarshalRejectsUnknownKind(t *testing.T) {
	var r Record
	if err := r.UnmarshalJSON([]byte(`{"seq":1,"t_sec":0.1,"kind":"martian"}`)); err == nil {
		t.Fatal("unknown kind did not error")
	}
	if err := r.UnmarshalJSON([]byte(`{"seq":1,"t_sec":0.1,"kind":"formed","self":"999.1.1.1"}`)); err == nil {
		t.Fatal("malformed address did not error")
	}
}
