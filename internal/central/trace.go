package central

import "repro/internal/trace"

// SetTracer installs the protocol flight recorder, labeling records with
// the hosting node's name. Records carry the administrative adapter as
// Self once Central has been activated.
func (c *Central) SetTracer(r *trace.Recorder, node string) {
	c.tracer = r
	c.traceNode = node
}

// trace stamps and captures one flight-recorder record.
func (c *Central) trace(rec trace.Record) {
	if c.tracer == nil {
		return
	}
	rec.T = c.clock.Now()
	rec.Node = c.traceNode
	if c.ep != nil {
		rec.Self = c.ep.LocalIP()
	}
	c.tracer.Record(rec)
}
