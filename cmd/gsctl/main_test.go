package main

import (
	"strings"
	"testing"
	"time"

	gulfstream "repro"
)

func testFarm(t *testing.T) *gulfstream.Farm {
	t.Helper()
	f, err := gulfstream.NewFarm(gulfstream.Spec{
		Seed:         9,
		AdminNodes:   2,
		Domains:      []gulfstream.DomainSpec{{Name: "acme", FrontEnds: 1, BackEnds: 2}},
		StartSkew:    time.Second,
		RecordEvents: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	return f
}

func runScript(t *testing.T, f *gulfstream.Farm, script string) string {
	t.Helper()
	var out strings.Builder
	repl(f, strings.NewReader(script), &out)
	return out.String()
}

func TestReplHappyPath(t *testing.T) {
	f := testFarm(t)
	out := runScript(t, f, strings.Join([]string{
		"help",
		"run 40",
		"status",
		"groups",
		"events 5",
		"verify",
		"metrics",
		"quit",
	}, "\n"))
	for _, want := range []string{
		"run <s>",             // help
		"advanced to t=40s",   // run
		"central active",      // status
		"vlan-1",              // groups shows the admin segment
		"central-elected",     // events
		"verification: clean", // verify
		"heartbeat",           // metrics summary
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestReplFaultCommands(t *testing.T) {
	f := testFarm(t)
	adapter := f.Nodes["acme-be-00"].Adapters[0].String()
	out := runScript(t, f, strings.Join([]string{
		"run 40",
		"kill acme-be-00",
		"run 30",
		"restart acme-be-00",
		"run 30",
		"fail " + adapter + " recv",
		"run 10",
		"fail " + adapter + " ok",
		"killsw sw-00",
		"restoresw sw-00",
		"events 100",
		"quit",
	}, "\n"))
	for _, want := range []string{"node-failed", "node-recovered"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestReplErrors(t *testing.T) {
	f := testFarm(t)
	out := runScript(t, f, strings.Join([]string{
		"kill ghost",
		"kill",
		"fail 1.2.3.4 martian",
		"fail not-an-ip recv",
		"move ghost nowhere",
		"blargh",
		"quit",
	}, "\n"))
	for _, want := range []string{
		"error: farm: unknown node",
		"wrong arguments",
		`bad mode "martian"`,
		`bad adapter "not-an-ip"`,
		"unknown command",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestReplMove(t *testing.T) {
	f, err := gulfstream.NewFarm(gulfstream.Spec{
		Seed:       10,
		AdminNodes: 2,
		Domains: []gulfstream.DomainSpec{
			{Name: "acme", FrontEnds: 1, BackEnds: 2},
			{Name: "globex", FrontEnds: 1, BackEnds: 2},
		},
		RecordEvents: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	out := runScript(t, f, strings.Join([]string{
		"run 40",
		"move acme-be-01 globex",
		"run 90",
		"verify",
		"quit",
	}, "\n"))
	if !strings.Contains(out, "SNMP reconfiguration complete") {
		t.Errorf("move did not complete:\n%s", out)
	}
	if !strings.Contains(out, "verification: clean") {
		t.Errorf("post-move verify not clean:\n%s", out)
	}
}

func TestReplTraceAndHealth(t *testing.T) {
	f, err := gulfstream.NewFarm(gulfstream.Spec{
		Seed:         9,
		AdminNodes:   2,
		Domains:      []gulfstream.DomainSpec{{Name: "acme", FrontEnds: 1, BackEnds: 2}},
		StartSkew:    time.Second,
		RecordEvents: true,
		Trace:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	out := runScript(t, f, strings.Join([]string{
		"run 40",
		"trace 10",
		"trace txns",
		"trace view-commit",
		"trace mgmt-00",
		"health",
		"quit",
	}, "\n"))
	for _, want := range []string{
		"captured",               // trace header
		"txn ",                   // correlated 2PC timeline
		"2pc-prepare-sent",       // inside the txn dump
		"2pc-commit-sent",        // the round committed
		`matching "view-commit"`, // kind filter
		`matching "mgmt-00"`,     // node filter
		"hosts Central",          // health marks the elected node
		"leader",                 // health shows adapter roles
		"stable=true",            // central line
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestReplTraceDisabled(t *testing.T) {
	f := testFarm(t) // Spec.Trace unset: recorder present but disabled
	out := runScript(t, f, "trace\nquit\n")
	if !strings.Contains(out, "flight recorder disabled") {
		t.Errorf("expected disabled hint:\n%s", out)
	}
}

func TestReplTraceJSON(t *testing.T) {
	f, err := gulfstream.NewFarm(gulfstream.Spec{
		Seed: 3, AdminNodes: 2, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	out := runScript(t, f, "run 20\ntrace json\nquit\n")
	for _, want := range []string{`"records"`, `"kind"`, `"total"`} {
		if !strings.Contains(out, want) {
			t.Errorf("json dump missing %q:\n%s", want, out)
		}
	}
}
