package conformance

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/netsim"
	"repro/internal/switchsim"
	"repro/internal/transport"
)

// WallTarget adapts the live harness to check.Target, so the same
// chaos schedule DSL the deterministic simulator replays drives real
// processes on the wall clock. Schedule.Run registers every op through
// After and then blocks in RunFor, exactly as with the sim clock.
type WallTarget struct {
	h     *H
	start time.Time

	mu     sync.Mutex
	timers []*time.Timer
}

// NewWallTarget wraps the harness handle as a chaos schedule target.
func NewWallTarget(h *H) *WallTarget {
	return &WallTarget{h: h, start: time.Now()}
}

// Now implements check.Target.
func (t *WallTarget) Now() time.Duration { return time.Since(t.start) }

// After implements check.Target.
func (t *WallTarget) After(d time.Duration, fn func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.timers = append(t.timers, time.AfterFunc(d, fn))
}

// RunFor implements check.Target: real time passes, real daemons run.
func (t *WallTarget) RunFor(d time.Duration) { time.Sleep(d) }

// Stop cancels any outstanding timers (teardown safety).
func (t *WallTarget) Stop() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, tm := range t.timers {
		tm.Stop()
	}
}

// KillNode implements check.Target.
func (t *WallTarget) KillNode(name string) error { return t.h.KillNode(name) }

// RestartNode implements check.Target.
func (t *WallTarget) RestartNode(name string) error { return t.h.RestartNode(name) }

// FailAdapter implements check.Target; the netsim mode names are the
// fabric fault-mode vocabulary by construction.
func (t *WallTarget) FailAdapter(ip transport.IP, mode netsim.FailureMode) error {
	return t.h.FailAdapter(ip, mode.String(), 0, 0)
}

// KillSwitch implements check.Target. The conformance farm has a
// single emulated switch whose death would sever the harness itself;
// schedules for this fabric do not include switch outages.
func (t *WallTarget) KillSwitch(name string) error {
	return fmt.Errorf("conformance: switch outage not supported on the %s fabric", t.h.F.Kind())
}

// RestoreSwitch implements check.Target.
func (t *WallTarget) RestoreSwitch(name string) error {
	return fmt.Errorf("conformance: switch outage not supported on the %s fabric", t.h.F.Kind())
}

// MoveNodeToDomain implements check.Target: a planned move of every
// data adapter to the named segment, through the active Central.
func (t *WallTarget) MoveNodeToDomain(node, toDomain string, done func(error)) error {
	if done == nil {
		done = func(error) {}
	}
	vlan, ok := t.h.Spec.Domains()[toDomain]
	if !ok {
		err := fmt.Errorf("conformance: unknown domain %q", toDomain)
		done(err)
		return err
	}
	spec, ok := t.h.Spec.Node(node)
	if !ok {
		err := fmt.Errorf("conformance: unknown node %q", node)
		done(err)
		return err
	}
	set := map[int]int{}
	for _, a := range spec.Adapters {
		if a.Index != 0 {
			set[a.Index] = vlan
		}
	}
	go func() { done(t.h.PlannedMove(node, set)) }()
	return nil
}

// SetSegmentLoss implements check.Target: a uniform loss rate on every
// adapter of the segment (negative restores). Partition is loss 1.
func (t *WallTarget) SetSegmentLoss(segment string, loss float64) {
	mode := ""
	if loss < 0 {
		loss = 0
	}
	for _, n := range t.h.Spec.Nodes {
		for _, a := range n.Adapters {
			if switchsim.SegmentName(t.h.F.VLANOf(a.IP)) != segment {
				continue
			}
			if err := t.h.FailAdapter(a.IP, mode, loss, loss); err != nil {
				t.h.Logf("chaos: segment loss on %v: %v", a.IP, err)
			}
		}
	}
}

// ActiveCentralNode implements check.Target.
func (t *WallTarget) ActiveCentralNode() string { return t.h.ActiveCentral() }
