package core

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Edge-case coverage for the membership machinery: stale 2PC traffic,
// aborts, concurrent changes, refresh rate limiting, eviction handling.

// A PrepareAck with a stale token must not disturb an in-flight round.
func TestStalePrepareAckIgnored(t *testing.T) {
	h := newHarness(t, 41)
	cfg := fastConfig()
	ips := h.singleSegment(cfg, 4)
	h.run(8 * time.Second)
	leaderIP := h.viewOf(ips[0]).Leader()
	var leader *adapterProto
	for _, d := range h.daemons {
		if p, ok := d.byIP[leaderIP]; ok {
			leader = p
		}
	}
	// Inject a bogus ack: no round in flight, random token.
	leader.lead.onPrepareAck(&wire.PrepareAck{
		From: ipn(0, 1), Leader: leaderIP, Version: 99, Token: 0xabcdef, OK: true,
	})
	h.run(5 * time.Second)
	h.assertOneGroup(ips) // nothing broke
}

// An Abort for an unknown token must be harmless; an Abort matching a
// pending view must clear it.
func TestAbortClearsPending(t *testing.T) {
	h := newHarness(t, 42)
	cfg := fastConfig()
	ips := h.singleSegment(cfg, 3)
	h.run(8 * time.Second)
	var member *adapterProto
	for _, d := range h.daemons {
		if p, ok := d.byIP[ipn(0, 1)]; ok {
			member = p
		}
	}
	// Forge a pending view as if a Prepare had arrived.
	fake := &wire.Prepare{
		Leader:  ipn(0, 99), // higher than everyone: acceptable preparer
		Version: member.view.Version + 1,
		Token:   777,
		Op:      wire.OpJoin,
		Members: append([]wire.Member{{IP: ipn(0, 99), Node: "x"}}, member.view.Members...),
	}
	member.onPrepare(fake)
	if member.pending == nil {
		t.Fatal("prepare did not pend")
	}
	// Mismatched abort: stays pending.
	member.onAbort(&wire.Abort{Leader: ipn(0, 99), Version: fake.Version, Token: 778})
	if member.pending == nil {
		t.Fatal("mismatched abort cleared pending")
	}
	member.onAbort(&wire.Abort{Leader: ipn(0, 99), Version: fake.Version, Token: 777})
	if member.pending != nil {
		t.Fatal("matching abort did not clear pending")
	}
	h.run(5 * time.Second)
	h.assertOneGroup(ips)
}

// A pending view expires if the commit never arrives.
func TestPendingViewExpires(t *testing.T) {
	h := newHarness(t, 43)
	cfg := fastConfig()
	cfg.PendingTimeout = 2 * time.Second
	ips := h.singleSegment(cfg, 3)
	h.run(8 * time.Second)
	var member *adapterProto
	for _, d := range h.daemons {
		if p, ok := d.byIP[ipn(0, 1)]; ok {
			member = p
		}
	}
	member.onPrepare(&wire.Prepare{
		Leader: ipn(0, 99), Version: member.view.Version + 1, Token: 9,
		Op:      wire.OpJoin,
		Members: append([]wire.Member{{IP: ipn(0, 99), Node: "x"}}, member.view.Members...),
	})
	if member.pending == nil {
		t.Fatal("no pending view")
	}
	h.run(3 * time.Second)
	if member.pending != nil {
		t.Fatal("pending view survived its timeout")
	}
	h.assertOneGroup(ips)
}

// A Prepare that does not include the recipient must be NACKed.
func TestPrepareWithoutSelfRejected(t *testing.T) {
	h := newHarness(t, 44)
	cfg := fastConfig()
	h.singleSegment(cfg, 3)
	h.run(8 * time.Second)
	var member *adapterProto
	for _, d := range h.daemons {
		if p, ok := d.byIP[ipn(0, 1)]; ok {
			member = p
		}
	}
	member.onPrepare(&wire.Prepare{
		Leader: ipn(0, 99), Version: 100, Token: 5, Op: wire.OpForm,
		Members: []wire.Member{{IP: ipn(0, 99)}, {IP: ipn(0, 50)}},
	})
	if member.pending != nil {
		t.Fatal("member pended a view that excludes it")
	}
}

// Evict from an unrelated low-IP stranger must be ignored; evict from the
// recorded leader must orphan.
func TestEvictAuthorityRules(t *testing.T) {
	h := newHarness(t, 45)
	cfg := fastConfig()
	ips := h.singleSegment(cfg, 4)
	h.run(8 * time.Second)
	leaderIP := h.viewOf(ips[0]).Leader()
	var member *adapterProto
	for _, d := range h.daemons {
		if p, ok := d.byIP[ipn(0, 1)]; ok {
			member = p
		}
	}
	// A random low stranger: ignored.
	member.onEvict(&wire.Evict{Leader: transport.MakeIP(9, 9, 9, 9) & 0x0fffffff, Target: member.self})
	if member.state != stMember {
		t.Fatal("stranger evicted a member")
	}
	// Wrong target: ignored.
	member.onEvict(&wire.Evict{Leader: leaderIP, Target: ipn(0, 2)})
	if member.state != stMember {
		t.Fatal("mis-addressed evict acted")
	}
	// The real leader: orphan and rediscover.
	member.onEvict(&wire.Evict{Leader: leaderIP, Target: member.self})
	if member.state != stLeader || member.view.Size() != 1 {
		t.Fatalf("evicted member state=%v view=%v", member.state, member.view)
	}
	// It reforms into the group shortly.
	h.run(15 * time.Second)
	h.assertOneGroup(ips)
}

// refreshMember is rate-limited: a burst of stale heartbeats triggers at
// most one refresh per second per member.
func TestRefreshRateLimited(t *testing.T) {
	h := newHarness(t, 46)
	cfg := fastConfig()
	ips := h.singleSegment(cfg, 3)
	h.run(8 * time.Second)
	leaderIP := h.viewOf(ips[0]).Leader()
	var leader *adapterProto
	for _, d := range h.daemons {
		if p, ok := d.byIP[leaderIP]; ok {
			leader = p
		}
	}
	sent := 0
	h.net.Tap(func(tr netsim.Trace) {
		if tr.Src == leaderIP && tr.Dst.Port == transport.PortMember {
			sent++
		}
	})
	for i := 0; i < 10; i++ {
		leader.lead.refreshMember(ipn(0, 1))
	}
	if sent != 1 {
		t.Fatalf("refresh burst sent %d commits, want 1", sent)
	}
	h.run(1100 * time.Millisecond)
	leader.lead.refreshMember(ipn(0, 1))
	if sent != 2 {
		t.Fatalf("refresh after interval sent %d total, want 2", sent)
	}
}

// Joins arriving while a 2PC is in flight are batched into the next round
// rather than lost.
func TestJoinDuringInflight2PC(t *testing.T) {
	h := newHarness(t, 47)
	cfg := fastConfig()
	cfg.JoinBatchDelay = 100 * time.Millisecond
	ips := h.singleSegment(cfg, 5)
	h.run(8 * time.Second)
	// Two late joiners in quick succession.
	a, b := ipn(0, 30), ipn(0, 31)
	h.addNode(cfg, "late-a", []transport.IP{a}, []string{"admin"})
	h.addNode(cfg, "late-b", []transport.IP{b}, []string{"admin"})
	h.daemons["late-a"].Start()
	h.run(300 * time.Millisecond)
	h.daemons["late-b"].Start()
	h.run(20 * time.Second)
	h.assertOneGroup(append(append([]transport.IP{}, ips...), a, b))
}

// Beacons from our own node (another adapter of the same daemon) are not
// special-cased: adapters are independent, per the paper's adapter-centric
// design. A daemon with two adapters on the SAME segment forms/joins one
// group containing both.
func TestTwoAdaptersSameNodeSameSegment(t *testing.T) {
	h := newHarness(t, 48)
	cfg := fastConfig()
	d := h.addNode(cfg, "dual", []transport.IP{ipn(0, 1), ipn(0, 2)}, []string{"admin", "admin"})
	other := h.addNode(cfg, "other", []transport.IP{ipn(0, 3)}, []string{"admin"})
	d.Start()
	other.Start()
	h.run(10 * time.Second)
	h.assertOneGroup([]transport.IP{ipn(0, 1), ipn(0, 2), ipn(0, 3)})
}

// Crash mid-2PC: the leader dies between Prepare and Commit; pending
// views expire and the group re-forms under the successor.
func TestLeaderCrashMidCommit(t *testing.T) {
	h := newHarness(t, 49)
	cfg := fastConfig()
	cfg.PendingTimeout = 2 * time.Second
	ips := h.singleSegment(cfg, 5)
	h.run(8 * time.Second)
	view := h.viewOf(ips[0])
	leaderIP := view.Leader()
	// Trigger a join (new member) and crash the leader just after the
	// Prepares go out but before acks can round-trip.
	late := ipn(0, 40)
	h.addNode(cfg, "late", []transport.IP{late}, []string{"admin"})
	h.daemons["late"].Start()
	// Let the join request land and the 2PC start...
	h.run(cfg.BeaconPhase + cfg.JoinBatchDelay + 50*time.Millisecond)
	for _, d := range h.daemons {
		if d.AdminIP() == leaderIP {
			d.Crash()
			h.eps[leaderIP].SetMode(netsim.FailStop)
		}
	}
	h.run(40 * time.Second)
	var want []transport.IP
	for _, ip := range ips {
		if ip != leaderIP {
			want = append(want, ip)
		}
	}
	want = append(want, late)
	h.assertOneGroup(want)
}
