package central

import (
	"fmt"
	"time"

	"repro/internal/journal"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// State journaling and the warm-standby stream.
//
// An active Central appends every committed view transition (group
// updates, adapter/node/switch state flips, expected moves) to its
// journal and streams the records to the next-in-line administrative
// adapter over the journal plane (PortJournal). When the active Central
// dies, its successor replays the journal it accumulated and activates
// with a populated view: instead of the cold-start 3× multicast resync
// pull — which makes every leader in the farm re-send full reports — it
// sends at most one unicast verification request per group whose state
// did not arrive live over the stream.

// streamRetry paces retransmission of unacknowledged journal records.
const streamRetry = time.Second

// stream is the sender-side state of the warm-standby stream.
type stream struct {
	peer     transport.IP // current standby (0: none elected yet)
	acked    uint64       // cumulative ack from the standby
	snapSeq  uint64       // seq of the bootstrap snapshot in flight
	needSnap bool         // standby has not confirmed the bootstrap yet
	pending  []journal.Record
	timer    transport.Timer
}

// SetJournal attaches a state journal. Must be called before the hosting
// daemon starts; the same journal keeps accumulating whether this
// instance is active (it appends) or standing by (it ingests the
// stream).
func (c *Central) SetJournal(j *journal.Journal) { c.jr = j }

// Journal returns the attached journal, nil if none.
func (c *Central) Journal() *journal.Journal { return c.jr }

func (c *Central) journaling() bool { return c.jr != nil && c.active }

// --- commit helpers: journal a transition and feed the stream ---

func (c *Central) jGroup(g *group) {
	if !c.journaling() {
		return
	}
	members := make([]wire.Member, 0, len(g.members))
	for _, m := range g.members {
		members = append(members, m)
	}
	c.streamRecord(c.jr.GroupUpdate(c.clock.Now(), g.leader, g.version, g.src, members))
}

func (c *Central) jGroupRemove(leader transport.IP) {
	if !c.journaling() {
		return
	}
	c.streamRecord(c.jr.GroupRemove(c.clock.Now(), leader))
}

func (c *Central) jAdapter(info *adapterInfo) {
	if !c.journaling() {
		return
	}
	c.streamRecord(c.jr.AdapterFlip(c.clock.Now(), info.member, info.alive, info.group, info.diedAt))
}

func (c *Central) jNode(node string, dead bool) {
	if !c.journaling() {
		return
	}
	c.streamRecord(c.jr.NodeFlip(c.clock.Now(), node, dead))
}

func (c *Central) jSwitch(name string, dead bool) {
	if !c.journaling() {
		return
	}
	c.streamRecord(c.jr.SwitchFlip(c.clock.Now(), name, dead))
}

func (c *Central) jMoveExpect(ip transport.IP, deadline time.Duration) {
	if !c.journaling() {
		return
	}
	c.streamRecord(c.jr.MoveExpect(c.clock.Now(), ip, deadline))
}

func (c *Central) jMoveDone(ip transport.IP) {
	if !c.journaling() {
		return
	}
	c.streamRecord(c.jr.MoveDone(c.clock.Now(), ip))
}

// --- restore on activation ---

// installRestored rebuilds the live view from the journal's folded state.
// It reports whether there was anything to restore.
func (c *Central) installRestored() bool {
	st := c.jr.State()
	if len(st.Groups) == 0 {
		return false
	}
	c.groups = make(map[transport.IP]*group, len(st.Groups))
	for leader, gs := range st.Groups {
		g := &group{
			leader:  leader,
			version: gs.Version,
			src:     gs.Src,
			members: make(map[transport.IP]wire.Member, len(gs.Members)),
		}
		for _, m := range gs.Members {
			g.members[m.IP] = m
		}
		c.groups[leader] = g
	}
	c.adapters = make(map[transport.IP]*adapterInfo, len(st.Adapters))
	c.nodesSeen = make(map[string]map[transport.IP]bool)
	seen := func(node string, ip transport.IP) {
		if node == "" {
			return
		}
		set := c.nodesSeen[node]
		if set == nil {
			set = make(map[transport.IP]bool)
			c.nodesSeen[node] = set
		}
		set[ip] = true
	}
	for ip, a := range st.Adapters {
		c.adapters[ip] = &adapterInfo{member: a.Member, alive: a.Alive, group: a.Group, diedAt: a.DiedAt}
		seen(a.Member.Node, ip)
	}
	for _, g := range c.groups {
		for ip, m := range g.members {
			seen(m.Node, ip)
		}
	}
	c.nodeDead = make(map[string]bool, len(st.DeadNodes))
	for n := range st.DeadNodes {
		c.nodeDead[n] = true
	}
	c.switchDead = make(map[string]bool, len(st.DeadSwitches))
	for n := range st.DeadSwitches {
		c.switchDead[n] = true
	}
	c.expectedMoves = make(map[transport.IP]time.Duration, len(st.ExpectedMoves))
	for ip, dl := range st.ExpectedMoves {
		c.expectedMoves[ip] = dl
	}
	return true
}

// verifyRestored sends one unicast verification ResyncRequest per group
// whose state did NOT arrive live over the standby stream this process
// lifetime. Streamed state is exactly what the failed Central had
// committed, so it is trusted as-is; state loaded from disk may be
// arbitrarily stale and gets re-confirmed by its reporting daemon.
func (c *Central) verifyRestored() {
	st := c.jr.State()
	for leader, g := range c.groups {
		if gs := st.Groups[leader]; gs != nil && gs.Streamed {
			continue
		}
		c.requestGroupResync(g)
	}
}

// --- sender side of the stream ---

// successor returns the warm standby: the highest non-self member of the
// administrative AMG (the group this Central's own admin adapter leads).
// That adapter wins the next election if we die, so it is the one to
// keep warm.
func (c *Central) successor() transport.IP {
	if c.ep == nil {
		return 0
	}
	self := c.ep.LocalIP()
	g := c.groups[self]
	if g == nil {
		return 0
	}
	var best transport.IP
	for ip := range g.members {
		if ip != self && ip > best {
			best = ip
		}
	}
	return best
}

// refreshStream recomputes the standby after a view change and, when it
// moved, restarts the stream with a snapshot bootstrap.
func (c *Central) refreshStream() {
	if !c.journaling() || c.ep == nil {
		return
	}
	next := c.successor()
	if next == c.stream.peer {
		return
	}
	c.stream.peer = next
	c.stream.pending = nil
	c.stream.acked = 0
	c.stream.needSnap = next != 0
	if next != 0 {
		c.sendSnapshot()
		c.armStreamTimer()
	}
}

// resetStream forgets the standby (used on deactivation).
func (c *Central) resetStream() {
	c.stream.peer = 0
	c.stream.pending = nil
	c.stream.acked = 0
	c.stream.needSnap = false
	if c.stream.timer != nil {
		c.stream.timer.Stop()
		c.stream.timer = nil
	}
}

// streamRecord enqueues one freshly committed record for the standby.
func (c *Central) streamRecord(rec journal.Record) {
	if c.stream.peer == 0 {
		return
	}
	c.stream.pending = append(c.stream.pending, rec)
	c.sendAppend(rec)
	c.armStreamTimer()
}

func (c *Central) sendAppend(rec journal.Record) {
	c.trace(trace.Record{Kind: trace.KJournalStreamed, Peer: c.stream.peer,
		Version: rec.Epoch, Token: rec.Seq})
	pkt := wire.NewPacket(&wire.JournalAppend{
		From:    c.ep.LocalIP(),
		Epoch:   rec.Epoch,
		Seq:     rec.Seq,
		Payload: journal.EncodeRecord(rec),
	})
	_ = c.ep.Unicast(transport.PortJournal,
		transport.Addr{IP: c.stream.peer, Port: transport.PortJournal}, pkt.Bytes())
	pkt.Free()
}

// sendSnapshot bootstraps (or re-bases) the standby with the full folded
// state at the journal's current position.
func (c *Central) sendSnapshot() {
	rec := c.jr.SnapshotRecord(c.clock.Now())
	c.stream.snapSeq = rec.Seq
	c.sendAppend(rec)
}

func (c *Central) armStreamTimer() {
	if c.stream.timer != nil {
		return
	}
	c.stream.timer = c.clock.AfterFunc(streamRetry, c.streamTick)
}

// streamTick retransmits whatever the standby has not acknowledged.
func (c *Central) streamTick() {
	c.stream.timer = nil
	if !c.active || c.stream.peer == 0 {
		return
	}
	if c.stream.needSnap {
		// The standby never confirmed its basis; records are useless to it
		// until it has one.
		c.sendSnapshot()
		c.armStreamTimer()
		return
	}
	if len(c.stream.pending) > 0 {
		for _, rec := range c.stream.pending {
			c.sendAppend(rec)
		}
		c.armStreamTimer()
	}
}

func (c *Central) handleJournalAck(m *wire.JournalAck) {
	if m.From != c.stream.peer {
		return
	}
	if c.stream.needSnap && m.Seq >= c.stream.snapSeq {
		c.stream.needSnap = false
	}
	if m.Seq > c.stream.acked {
		c.stream.acked = m.Seq
	}
	i := 0
	for i < len(c.stream.pending) && c.stream.pending[i].Seq <= m.Seq {
		i++
	}
	c.stream.pending = c.stream.pending[i:]
	if c.stream.needSnap || len(c.stream.pending) > 0 {
		c.armStreamTimer()
	}
}

// --- receiver side ---

// HandleJournal implements core.JournalPeer: journal-plane traffic
// arriving on the hosting daemon's administrative adapter. A standby
// ingests appends and acks cumulatively; the active processes acks.
// ep is passed in because a standby has never been Activated and so has
// no endpoint of its own.
func (c *Central) HandleJournal(ep transport.Endpoint, src transport.Addr, msg wire.Message) {
	switch m := msg.(type) {
	case *wire.JournalAppend:
		if c.active || c.jr == nil {
			return
		}
		rec, err := journal.DecodeRecord(m.Payload)
		if err != nil {
			return
		}
		c.trace(trace.Record{Kind: trace.KJournalIngested, Peer: src.IP,
			Version: rec.Epoch, Token: rec.Seq})
		c.jr.Ingest(rec)
		// Ack our position regardless: a rejected gap record makes the
		// active see a stale ack and re-base us with a snapshot.
		ack := wire.NewPacket(&wire.JournalAck{
			From: ep.LocalIP(), Epoch: c.jr.Epoch(), Seq: c.jr.Seq(),
		})
		_ = ep.Unicast(transport.PortJournal, src, ack.Bytes())
		ack.Free()
	case *wire.JournalAck:
		if !c.active || c.jr == nil {
			return
		}
		c.handleJournalAck(m)
	}
}

// JournalDrift compares the journal's incrementally folded state against
// the live Central state and describes the first divergence found ("" when
// consistent, or when this instance is not an active journaling Central).
// The invariant it serves: replaying the journal must reconstruct exactly
// the state the active Central is operating on — the journal is a prefix
// of (here: equal to, since appends are synchronous) the live view. The
// simulation-testing harness calls it from a trace sink at every applied
// report and at quiescence.
func (c *Central) JournalDrift() string {
	if !c.journaling() {
		return ""
	}
	st := c.jr.State()
	if len(st.Groups) != len(c.groups) {
		return fmt.Sprintf("journal folds %d groups, live tracks %d", len(st.Groups), len(c.groups))
	}
	for leader, g := range c.groups {
		jg := st.Groups[leader]
		if jg == nil {
			return fmt.Sprintf("live group %v missing from journal fold", leader)
		}
		if jg.Version != g.version {
			return fmt.Sprintf("group %v: journal v%d, live v%d", leader, jg.Version, g.version)
		}
		if len(jg.Members) != len(g.members) {
			return fmt.Sprintf("group %v: journal folds %d members, live has %d",
				leader, len(jg.Members), len(g.members))
		}
		for _, m := range jg.Members {
			if _, ok := g.members[m.IP]; !ok {
				return fmt.Sprintf("group %v: journaled member %v not in live group", leader, m.IP)
			}
		}
	}
	for node, dead := range c.nodeDead {
		if dead != st.DeadNodes[node] {
			return fmt.Sprintf("node %s: journal dead=%v, live dead=%v", node, st.DeadNodes[node], dead)
		}
	}
	return ""
}
