package serve

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Balancer routes domain traffic across front-end backends using only
// what the notification pipe has told it. It is the paper's "view
// subscriber": GulfStream Central is the authority on component status
// (§2.2), and the balancer's routing table is that authority as seen
// through a (possibly delayed) notification channel — stale exactly when
// the channel is.
type Balancer struct {
	clock  transport.Clock
	dir    Directory
	reg    *metrics.Registry
	tracer *trace.Recorder

	quarantine bool
	domains    []string
	tables     map[string]*domainTable
	// nodeDomain is the balancer's believed domain per tracked backend;
	// only nodes present here are ever touched by events (switch names
	// riding in Event.Node fall through harmlessly).
	nodeDomain map[string]string
	// down holds the out-of-rotation backends with the reason each was
	// pulled; absence means in rotation.
	down map[string]string

	notifications uint64
	maxLag        time.Duration
}

// domainTable is one domain's backend set, kept sorted for deterministic
// rotation.
type domainTable struct {
	backends []string
	rr       int
}

// Share is one backend's slice of a routed request batch.
type Share struct {
	Node     string
	Requests int64
}

// NewBalancer seeds the routing table from the directory: every
// front-end of every domain starts in rotation. reg and tracer may be
// nil.
func NewBalancer(cfg Config, clock transport.Clock, dir Directory,
	reg *metrics.Registry, tracer *trace.Recorder) *Balancer {
	cfg = cfg.withDefaults()
	b := &Balancer{
		clock:      clock,
		dir:        dir,
		reg:        reg,
		tracer:     tracer,
		quarantine: cfg.QuarantineOnMismatch,
		tables:     make(map[string]*domainTable),
		nodeDomain: make(map[string]string),
		down:       make(map[string]string),
	}
	b.domains = append(b.domains, dir.Domains()...)
	for _, dom := range b.domains {
		t := &domainTable{backends: append([]string(nil), dir.FrontEnds(dom)...)}
		sort.Strings(t.backends)
		b.tables[dom] = t
		for _, n := range t.backends {
			b.nodeDomain[n] = dom
		}
	}
	b.updateGauges()
	return b
}

// Apply consumes one notification. It is the pipe's delivery target; the
// simulator never calls it concurrently.
func (b *Balancer) Apply(e event.Event) {
	b.notifications++
	if lag := b.clock.Now() - e.Time; lag >= 0 {
		if lag > b.maxLag {
			b.maxLag = lag
		}
		if b.reg != nil {
			b.reg.ObserveDuration("serve_notify_lag", lag)
		}
	}
	switch e.Kind {
	case event.AdapterFailed, event.NodeFailed:
		// Suppressed failures are Central-expected (a planned move);
		// MoveStarted already drained the node.
		if e.Suppressed {
			return
		}
		b.setDown(e.Node, "failure reported", e.Incident)
	case event.MoveStarted:
		b.setDown(e.Node, "draining for planned move", e.Incident)
	case event.NodeMoved, event.AdapterRecovered, event.NodeRecovered, event.AdapterJoined:
		// The node is alive (again) — re-resolve its domain, then put it
		// back in rotation. Re-resolving on recovery too, not just on
		// NodeMoved, heals the table when a move completed while the
		// node was down and the join was reported as a plain recovery.
		b.restore(e.Node, e.Incident)
	case event.VerifyMismatch:
		if b.quarantine && e.Node != "" {
			b.setDown(e.Node, "verification mismatch", e.Incident)
		}
	}
}

// setDown pulls a tracked backend out of rotation. incident is the
// triggering notification's correlator, stamped onto the trace record so
// the span stitcher can tie the reroute to the incident it reacted to.
func (b *Balancer) setDown(node, reason string, incident uint64) {
	if _, tracked := b.nodeDomain[node]; !tracked {
		return
	}
	if _, already := b.down[node]; already {
		return
	}
	b.down[node] = reason
	b.trace(trace.KServeBackendDown, node, incident, b.nodeDomain[node]+" "+reason)
	b.updateGauges()
}

// restore re-resolves the node's domain against the directory and
// returns it to rotation.
func (b *Balancer) restore(node string, incident uint64) {
	believed, tracked := b.nodeDomain[node]
	if !tracked {
		return
	}
	if dom, ok := b.dir.DomainOf(node); ok && dom != believed {
		b.removeBackend(believed, node)
		b.addBackend(dom, node)
		b.nodeDomain[node] = dom
	}
	if _, wasDown := b.down[node]; wasDown {
		delete(b.down, node)
		b.trace(trace.KServeBackendUp, node, incident, b.nodeDomain[node])
	}
	b.updateGauges()
}

func (b *Balancer) removeBackend(dom, node string) {
	t := b.tables[dom]
	if t == nil {
		return
	}
	for i, n := range t.backends {
		if n == node {
			t.backends = append(t.backends[:i], t.backends[i+1:]...)
			return
		}
	}
}

func (b *Balancer) addBackend(dom, node string) {
	t := b.tables[dom]
	if t == nil {
		// A move into a domain the directory never listed; track it so
		// the node is not lost.
		t = &domainTable{}
		b.tables[dom] = t
		b.domains = append(b.domains, dom)
	}
	i := sort.SearchStrings(t.backends, node)
	if i < len(t.backends) && t.backends[i] == node {
		return
	}
	t.backends = append(t.backends, "")
	copy(t.backends[i+1:], t.backends[i:])
	t.backends[i] = node
}

// healthy appends the domain's in-rotation backends to dst.
func (b *Balancer) healthy(dom string, dst []string) []string {
	t := b.tables[dom]
	if t == nil {
		return dst
	}
	for _, n := range t.backends {
		if _, isDown := b.down[n]; !isDown {
			dst = append(dst, n)
		}
	}
	return dst
}

// Route picks one backend for a single domain request, rotating
// deterministically across the healthy set. ok is false when no backend
// is in rotation.
func (b *Balancer) Route(domain string) (node string, ok bool) {
	t := b.tables[domain]
	if t == nil || len(t.backends) == 0 {
		return "", false
	}
	n := len(t.backends)
	for i := 0; i < n; i++ {
		cand := t.backends[(t.rr+i)%n]
		if _, isDown := b.down[cand]; !isDown {
			t.rr = (t.rr + i + 1) % n
			return cand, true
		}
	}
	return "", false
}

// Assign splits a batch of n requests across the domain's healthy
// backends — the counted-cohort fast path: one Share per backend instead
// of one Route call per request. The split is even with the remainder
// rotated round-robin, so repeated batches spread exactly like repeated
// Route calls. A nil result means no backend is in rotation.
func (b *Balancer) Assign(domain string, n int64) []Share {
	if n <= 0 {
		return nil
	}
	t := b.tables[domain]
	if t == nil {
		return nil
	}
	up := b.healthy(domain, make([]string, 0, len(t.backends)))
	h := int64(len(up))
	if h == 0 {
		return nil
	}
	base, rem := n/h, n%h
	shares := make([]Share, 0, h)
	for i, node := range up {
		r := base
		// The remainder goes to the rr-rotated prefix so consecutive
		// small batches don't always favor the same backends.
		if int64((i+len(up)-t.rr%len(up))%len(up)) < rem {
			r++
		}
		if r > 0 {
			shares = append(shares, Share{Node: node, Requests: r})
		}
	}
	t.rr = (t.rr + int(rem)) % len(up)
	return shares
}

// Audit verifies the routing table against ground truth: every backend
// in rotation must actually serve the domain the balancer routes it
// for. One finding per stale entry; empty means the notification path
// delivered everything the fabric did.
func (b *Balancer) Audit(oracle Oracle) []string {
	var out []string
	for _, dom := range b.domains {
		for _, node := range b.healthy(dom, nil) {
			if !oracle.Serves(node, dom) {
				out = append(out, fmt.Sprintf(
					"serve: balancer routes %s traffic to %s, which cannot serve it", dom, node))
			}
		}
	}
	return out
}

// Healthy returns the domain's in-rotation backends (sorted).
func (b *Balancer) Healthy(domain string) []string { return b.healthy(domain, nil) }

// DownReason reports why a backend is out of rotation ("" when it is
// in rotation).
func (b *Balancer) DownReason(node string) string { return b.down[node] }

// Notifications counts events the balancer has consumed.
func (b *Balancer) Notifications() uint64 { return b.notifications }

// MaxLag is the largest publication-to-delivery lag observed.
func (b *Balancer) MaxLag() time.Duration { return b.maxLag }

// trace records one routing-table transition; detail's first
// space-separated field is the domain, and token is the incident id of
// the notification that caused it (0 when untriggered or uncorrelated).
func (b *Balancer) trace(kind trace.Kind, node string, token uint64, detail string) {
	if b.tracer == nil {
		return
	}
	b.tracer.Record(trace.Record{
		T: b.clock.Now(), Kind: kind, Node: node, Token: token, Detail: detail,
	})
}

func (b *Balancer) updateGauges() {
	if b.reg == nil {
		return
	}
	for _, dom := range b.domains {
		b.reg.Set("serve_backends_up_"+dom, float64(len(b.healthy(dom, nil))))
	}
}
