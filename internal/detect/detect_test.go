package detect

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/amg"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/wire"
)

// fakeNet wires detector instances to each other through the scheduler,
// standing in for the daemon + netsim stack.
type fakeNet struct {
	sched   *sim.Scheduler
	nodes   map[transport.IP]*fakeNode
	latency time.Duration
	// drop decides per-packet loss; nil means lossless.
	drop  func(src, dst transport.IP) bool
	sends int
}

type suspicion struct {
	suspect transport.IP
	reason  wire.SuspectReason
	at      time.Duration
}

type fakeNode struct {
	net      *fakeNet
	ip       transport.IP
	det      Detector
	alive    bool
	suspects []suspicion
}

func newFakeNet(seed int64) *fakeNet {
	return &fakeNet{
		sched:   sim.NewScheduler(seed),
		nodes:   make(map[transport.IP]*fakeNode),
		latency: time.Millisecond,
	}
}

func (n *fakeNet) addNode(ip transport.IP, kind Kind, p Params) *fakeNode {
	fn := &fakeNode{net: n, ip: ip, alive: true}
	fn.det = New(kind, p, &fakeEnv{node: fn})
	n.nodes[ip] = fn
	return fn
}

// reconfigureAll installs view everywhere.
func (n *fakeNet) reconfigureAll(view amg.Membership) {
	for _, fn := range n.nodes {
		fn.det.Reconfigure(view)
	}
}

func (n *fakeNet) allSuspicions() []suspicion {
	var out []suspicion
	for _, fn := range n.nodes {
		out = append(out, fn.suspects...)
	}
	return out
}

// fakeEnv adapts fakeNode to Env.
type fakeEnv struct{ node *fakeNode }

func (e *fakeEnv) Self() transport.IP     { return e.node.ip }
func (e *fakeEnv) Clock() transport.Clock { return simClock{e.node.net.sched} }
func (e *fakeEnv) Rand() *rand.Rand       { return e.node.net.sched.Rand() }

func (e *fakeEnv) Send(dst transport.IP, m wire.Message) {
	net := e.node.net
	if !e.node.alive {
		return
	}
	net.sends++
	if net.drop != nil && net.drop(e.node.ip, dst) {
		return
	}
	src := e.node.ip
	pkt := wire.Encode(m) // exercise the codec on the way through
	net.sched.AfterFunc(net.latency, func() {
		target, ok := net.nodes[dst]
		if !ok || !target.alive {
			return
		}
		decoded, err := wire.Decode(pkt)
		if err != nil {
			panic(err)
		}
		target.det.Handle(src, decoded)
	})
}

func (e *fakeEnv) ReportSuspect(s transport.IP, r wire.SuspectReason) {
	if !e.node.alive {
		return // a crashed node reports nothing
	}
	e.node.suspects = append(e.node.suspects, suspicion{suspect: s, reason: r, at: e.node.net.sched.Now()})
}

type simClock struct{ s *sim.Scheduler }

func (c simClock) Now() time.Duration { return c.s.Now() }
func (c simClock) AfterFunc(d time.Duration, fn func()) transport.Timer {
	return c.s.AfterFunc(d, fn)
}

func ip(d byte) transport.IP { return transport.MakeIP(10, 0, 0, d) }

func buildGroup(n *fakeNet, kind Kind, p Params, count int) amg.Membership {
	var members []wire.Member
	for i := 1; i <= count; i++ {
		a := ip(byte(i))
		n.addNode(a, kind, p)
		members = append(members, wire.Member{IP: a, Node: "n"})
	}
	view := amg.New(1, members)
	n.reconfigureAll(view)
	return view
}

func runFor(n *fakeNet, d time.Duration) { n.sched.RunFor(d) }

func fastParams() Params {
	p := Defaults()
	p.Interval = 100 * time.Millisecond
	p.MissThreshold = 3
	p.PingTimeout = 40 * time.Millisecond
	p.PollInterval = 500 * time.Millisecond
	p.PollTimeout = 100 * time.Millisecond
	p.SubgroupSize = 4
	return p
}

func kindsUnderTest() []Kind { return []Kind{Ring, BiRing, AllToAll, RandPing, Subgroup} }

// Steady state: no detector strategy may raise suspicions when everyone
// is healthy and the network is lossless.
func TestNoFalseSuspicionsWhenHealthy(t *testing.T) {
	for _, kind := range kindsUnderTest() {
		t.Run(kind.String(), func(t *testing.T) {
			n := newFakeNet(1)
			buildGroup(n, kind, fastParams(), 9)
			runFor(n, 30*time.Second)
			if s := n.allSuspicions(); len(s) != 0 {
				t.Fatalf("healthy group produced suspicions: %v", s)
			}
		})
	}
}

// Kill one member: every strategy must suspect exactly that member,
// within a strategy-appropriate bound.
func TestSingleFailureDetected(t *testing.T) {
	for _, kind := range kindsUnderTest() {
		t.Run(kind.String(), func(t *testing.T) {
			n := newFakeNet(2)
			buildGroup(n, kind, fastParams(), 9)
			runFor(n, 2*time.Second) // settle
			victim := ip(5)
			n.nodes[victim].alive = false
			killedAt := n.sched.Now()
			runFor(n, 30*time.Second)
			sus := n.allSuspicions()
			if len(sus) == 0 {
				t.Fatal("failure never suspected")
			}
			for _, s := range sus {
				if s.suspect != victim {
					t.Fatalf("suspected %v, want only %v (all: %v)", s.suspect, victim, sus)
				}
			}
			latency := sus[0].at - killedAt
			if latency > 15*time.Second {
				t.Fatalf("first suspicion after %v", latency)
			}
		})
	}
}

// Ring topology: only the dead member's ring-left... i.e. its monitoring
// neighbor reports it; distant members stay quiet.
func TestRingOnlyNeighborReports(t *testing.T) {
	n := newFakeNet(3)
	view := buildGroup(n, Ring, fastParams(), 9)
	victim := ip(5)
	watcher := view.RightOf(victim) // the one monitoring victim as its left
	n.nodes[victim].alive = false
	runFor(n, 5*time.Second)
	for a, fn := range n.nodes {
		if a == watcher {
			if len(fn.suspects) == 0 {
				t.Fatalf("monitoring neighbor %v did not report", watcher)
			}
			continue
		}
		if len(fn.suspects) != 0 {
			t.Fatalf("non-neighbor %v reported %v", a, fn.suspects)
		}
	}
}

// Bidirectional ring: both neighbors independently report the victim —
// the two votes the leader's consensus needs.
func TestBiRingBothNeighborsReport(t *testing.T) {
	n := newFakeNet(4)
	view := buildGroup(n, BiRing, fastParams(), 9)
	victim := ip(5)
	left, right := view.Neighbors(victim)
	n.nodes[victim].alive = false
	runFor(n, 5*time.Second)
	for _, rep := range []transport.IP{left, right} {
		if len(n.nodes[rep].suspects) == 0 {
			t.Fatalf("neighbor %v of %v silent", rep, victim)
		}
	}
}

// Suspicions re-raise while the peer stays silent (a one-shot report can
// be lost), but no faster than once per miss window.
func TestSuspicionReRaisePacing(t *testing.T) {
	n := newFakeNet(5)
	p := fastParams() // interval 100ms, miss 3 => window 300ms
	buildGroup(n, Ring, p, 5)
	n.nodes[ip(3)].alive = false
	runFor(n, 20*time.Second)
	window := time.Duration(p.MissThreshold) * p.Interval
	for a, fn := range n.nodes {
		if len(fn.suspects) == 0 {
			continue
		}
		// Must re-raise at least a few times over 20s of silence.
		if len(fn.suspects) < 3 {
			t.Fatalf("node %v reported only %d times in 20s", a, len(fn.suspects))
		}
		for i := 1; i < len(fn.suspects); i++ {
			gap := fn.suspects[i].at - fn.suspects[i-1].at
			if gap < window {
				t.Fatalf("node %v re-raised after %v (< window %v)", a, gap, window)
			}
		}
	}
}

// After a reconfiguration that removes the dead member, the ring heals
// and no further suspicions appear.
func TestReconfigureHealsRing(t *testing.T) {
	n := newFakeNet(6)
	view := buildGroup(n, Ring, fastParams(), 6)
	victim := ip(4)
	n.nodes[victim].alive = false
	runFor(n, 3*time.Second)
	healed := view.Without(victim)
	n.reconfigureAll(healed)
	// Clear old suspicions, then verify silence.
	for _, fn := range n.nodes {
		fn.suspects = nil
	}
	runFor(n, 20*time.Second)
	if s := n.allSuspicions(); len(s) != 0 {
		t.Fatalf("suspicions after heal: %v", s)
	}
}

// A rejoining member must not be insta-suspected: the monitor grants a
// fresh grace period on reconfigure.
func TestRejoinGracePeriod(t *testing.T) {
	n := newFakeNet(7)
	view := buildGroup(n, Ring, fastParams(), 5)
	victim := ip(3)
	n.nodes[victim].alive = false
	runFor(n, 3*time.Second)
	n.reconfigureAll(view.Without(victim))
	runFor(n, 2*time.Second)
	// Revive and re-add.
	n.nodes[victim].alive = true
	for _, fn := range n.nodes {
		fn.suspects = nil
	}
	rejoined := view.Without(victim).WithJoined(wire.Member{IP: victim, Node: "n"})
	n.reconfigureAll(rejoined)
	runFor(n, 10*time.Second)
	if s := n.allSuspicions(); len(s) != 0 {
		t.Fatalf("revived member suspected: %v", s)
	}
}

// Lossy network: a unidirectional ring with MissThreshold=1 (the paper's
// "one strike and you're out") must produce false positives, and raising
// the threshold must reduce them. This is the paper's §3 trade-off.
func TestLossSensitivityTradeoff(t *testing.T) {
	run := func(miss int) int {
		n := newFakeNet(8)
		p := fastParams()
		p.MissThreshold = miss
		rng := rand.New(rand.NewSource(99))
		n.drop = func(_, _ transport.IP) bool { return rng.Float64() < 0.10 }
		buildGroup(n, Ring, p, 16)
		runFor(n, 60*time.Second)
		return len(n.allSuspicions())
	}
	strict := run(1)
	lax := run(6)
	if strict == 0 {
		t.Fatal("one-strike detector produced no false positives under 10% loss; trade-off not reproduced")
	}
	if lax >= strict {
		t.Fatalf("raising threshold did not reduce false positives: k=1 %d vs k=6 %d", strict, lax)
	}
}

// RandPing: indirect probing masks loss on the direct path — a member
// whose direct path to one peer is severed is NOT suspected because
// proxies still reach it.
func TestRandPingIndirectProbesMaskPathLoss(t *testing.T) {
	n := newFakeNet(9)
	p := fastParams()
	// Sever only the 1<->2 direct path, both directions.
	n.drop = func(src, dst transport.IP) bool {
		return (src == ip(1) && dst == ip(2)) || (src == ip(2) && dst == ip(1))
	}
	buildGroup(n, RandPing, p, 6)
	runFor(n, 60*time.Second)
	if s := n.allSuspicions(); len(s) != 0 {
		t.Fatalf("path loss caused suspicion despite proxies: %v", s)
	}
}

// RandPing detects a genuinely dead member even with some ambient loss.
func TestRandPingDetectsUnderLoss(t *testing.T) {
	n := newFakeNet(10)
	p := fastParams()
	rng := rand.New(rand.NewSource(5))
	n.drop = func(_, _ transport.IP) bool { return rng.Float64() < 0.05 }
	buildGroup(n, RandPing, p, 8)
	victim := ip(3)
	n.nodes[victim].alive = false
	runFor(n, 60*time.Second)
	hits, misses := 0, 0
	for _, s := range n.allSuspicions() {
		if s.suspect == victim {
			hits++
		} else {
			misses++
		}
	}
	if hits == 0 {
		t.Fatal("dead member never suspected")
	}
	// Raw detector suspicions may include rare loss-induced false
	// positives (the leader's verification probe filters those); they
	// must stay a small minority.
	if misses*10 > hits {
		t.Fatalf("too many false suspicions: %d false vs %d true", misses, hits)
	}
}

// Subgroup: killing an entire subgroup triggers the leader's poll-based
// catastrophic detection for every member of it.
func TestSubgroupCatastrophicLoss(t *testing.T) {
	n := newFakeNet(11)
	p := fastParams()
	p.SubgroupSize = 4
	view := buildGroup(n, Subgroup, p, 12)
	subs := view.Subgroups(4)
	if len(subs) != 3 {
		t.Fatalf("expected 3 subgroups, got %d", len(subs))
	}
	// Kill the whole last subgroup (doesn't contain the leader).
	victimSub := subs[2]
	victims := map[transport.IP]bool{}
	for _, m := range victimSub {
		victims[m.IP] = true
		n.nodes[m.IP].alive = false
	}
	runFor(n, 30*time.Second)
	reported := map[transport.IP]bool{}
	for _, s := range n.allSuspicions() {
		if !victims[s.suspect] {
			t.Fatalf("non-victim %v suspected", s.suspect)
		}
		reported[s.suspect] = true
	}
	for v := range victims {
		if !reported[v] {
			t.Fatalf("victim %v never reported", v)
		}
	}
}

// Load scaling: per-interval message count must be O(n) for ring and
// randping but O(n^2) for all-to-all.
func TestLoadScaling(t *testing.T) {
	count := func(kind Kind, size int) int {
		n := newFakeNet(12)
		buildGroup(n, kind, fastParams(), size)
		runFor(n, 2*time.Second)
		n.sends = 0
		runFor(n, 10*time.Second)
		return n.sends
	}
	ring16, ring32 := count(Ring, 16), count(Ring, 32)
	ata16, ata32 := count(AllToAll, 16), count(AllToAll, 32)
	if r := float64(ring32) / float64(ring16); r > 2.5 {
		t.Fatalf("ring load grew superlinearly: %d -> %d (x%.1f)", ring16, ring32, r)
	}
	if r := float64(ata32) / float64(ata16); r < 3.0 {
		t.Fatalf("all-to-all load not quadratic: %d -> %d (x%.1f)", ata16, ata32, r)
	}
	if ata32 < ring32*8 {
		t.Fatalf("all-to-all (%d) should dwarf ring (%d) at n=32", ata32, ring32)
	}
}

// Singleton and pair groups must not blow up.
func TestDegenerateGroupSizes(t *testing.T) {
	for _, kind := range kindsUnderTest() {
		t.Run(kind.String(), func(t *testing.T) {
			n := newFakeNet(13)
			buildGroup(n, kind, fastParams(), 1)
			runFor(n, 5*time.Second)
			if len(n.allSuspicions()) != 0 {
				t.Fatal("singleton suspected someone")
			}

			n2 := newFakeNet(14)
			buildGroup(n2, kind, fastParams(), 2)
			runFor(n2, 5*time.Second)
			if len(n2.allSuspicions()) != 0 {
				t.Fatal("healthy pair suspected someone")
			}
			n2.nodes[ip(1)].alive = false
			runFor(n2, 30*time.Second)
			sus := n2.allSuspicions()
			if len(sus) == 0 {
				t.Fatal("pair failure undetected")
			}
			for _, s := range sus {
				if s.suspect != ip(1) {
					t.Fatalf("wrong suspect %v", s.suspect)
				}
			}
		})
	}
}

// Stop must silence a detector completely.
func TestStopSilences(t *testing.T) {
	for _, kind := range kindsUnderTest() {
		n := newFakeNet(15)
		buildGroup(n, kind, fastParams(), 6)
		runFor(n, 2*time.Second)
		for _, fn := range n.nodes {
			fn.det.Stop()
		}
		n.sends = 0
		runFor(n, 10*time.Second)
		if n.sends != 0 {
			t.Fatalf("%v: %d sends after Stop", kind, n.sends)
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range kindsUnderTest() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("bogus kind parsed")
	}
}

func TestMonitorSet(t *testing.T) {
	m := newMonitorSet()
	const win = 3 * time.Second
	const reRaise = time.Hour // effectively one-shot for this test
	m.reset([]transport.IP{ip(1), ip(2)}, 0)
	if got := m.overdue(2*time.Second, win, reRaise); len(got) != 0 {
		t.Fatal("premature overdue")
	}
	if got := m.overdue(4*time.Second, win, reRaise); len(got) != 2 {
		t.Fatalf("overdue = %v", got)
	}
	m.heard(ip(1), 4*time.Second)
	if got := m.overdue(5*time.Second, win, reRaise); len(got) != 1 || got[0] != ip(2) {
		t.Fatalf("overdue after heard = %v", got)
	}
	m.markSuspected(ip(1), 5*time.Second)
	m.markSuspected(ip(2), 5*time.Second)
	if got := m.overdue(10*time.Second, win, reRaise); len(got) != 0 {
		t.Fatal("suspected peer re-reported before reRaise elapsed")
	}
	// After the re-raise interval the silent peer is reported again.
	if got := m.overdue(5*time.Second+reRaise+time.Second, win, reRaise); len(got) != 2 {
		t.Fatalf("silent peers not re-raised: %v", got)
	}
	// Hearing a suspected peer clears the suspicion; ip(1) stays marked.
	m.heard(ip(2), 11*time.Second)
	if got := m.overdue(20*time.Second, win, reRaise); len(got) != 1 || got[0] != ip(2) {
		t.Fatalf("revived peer not re-monitorable: %v", got)
	}
	// unknown peers are ignored
	m.heard(ip(9), 0)
	if len(m.lastSeen) != 2 {
		t.Fatal("heard added unknown peer")
	}
}
