// Command gsbench regenerates the paper's evaluation: every table and
// figure in EXPERIMENTS.md, printed as aligned text tables.
//
// Usage:
//
//	gsbench [-quick] [experiment ...]
//	gsbench chaos [-seeds N] [-from N] [-rounds N] [-parallel N]
//	              [-partition] [-failover] [-seed-bug] [-no-shrink] [-o dir]
//	gsbench serve [-quick] [-seed N] [-sessions R] [-parallel N] [-json path]
//	gsbench lag   [-quick] [-seed N] [-trials N] [-parallel N] [-json path]
//	gsbench scale [-quick] [-shards K] [-json path]
//	gsbench scaleb [-quick] [-json path]
//
// With no arguments it runs everything. Experiments: fig5, formula1,
// beaconloss, detector, hbload, failover, move, merge, centralload,
// verify, tb0, journal, phases, trace, scale. -quick runs scaled-down
// variants (seconds instead of minutes).
//
// The scale subcommand runs E14; with -shards K it instead runs the zoned
// multi-shard smoke (shard counts 1 and K, cross-shard determinism
// checked). The scaleb subcommand runs the full E14b sweep: zoned farms
// at 10k/50k/100k adapters across shard counts 1/2/4/8, asserting that
// every shard count fires identical events and converges to an identical
// topology hash, and recording wall-clock speedup per shard count.
//
// The chaos subcommand sweeps seed-derived fault schedules with the
// protocol-invariant engine attached, shrinks any failing schedule to a
// minimal reproduction, and exits nonzero if any seed fails.
//
// The serve subcommand runs E17: a simulated client population served
// through a topology-driven balancer while the farm churns, sweeping
// farm size x churn schedule x notification delay and reporting
// user-visible error-seconds. It exits nonzero if any sanity property
// of the sweep fails.
//
// The lag subcommand runs E18: the E17 cells re-run with the causal
// timeline plane attached, stitching every incident into an end-to-end
// span and attributing the user-visible window stage by stage
// (fault→suspicion→verdict→2PC→report→notify→reroute→first clean
// request). It exits nonzero if any span is incomplete, any incident
// never closes, or the span arithmetic fails to reconcile with the
// serving plane's measured error-seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/exp"
)

type runner struct {
	name string
	desc string
	run  func(quick bool) (*exp.Table, error)
}

func runners() []runner {
	return []runner{
		{"fig5", "E1: time for all groups to become stable vs adapters (Figure 5)", func(q bool) (*exp.Table, error) {
			o := exp.DefaultFig5()
			if q {
				o.NodeCounts = []int{2, 10, 25}
				o.BeaconPhases = o.BeaconPhases[:2]
			}
			return exp.Fig5(o)
		}},
		{"formula1", "E2: stabilization model T = Tb+Ts+Tgsc+δ validation", func(q bool) (*exp.Table, error) {
			o := exp.DefaultFormula1()
			if q {
				o.Nodes = 15
				o.Grid = o.Grid[:3]
			}
			return exp.Formula1(o)
		}},
		{"beaconloss", "E3: adapters missing from the initial topology vs loss (p^k analysis)", func(q bool) (*exp.Table, error) {
			o := exp.DefaultBeaconLoss()
			if q {
				o.Adapters = 20
				o.Trials = 3
			}
			return exp.BeaconLoss(o)
		}},
		{"detector", "E4: failure-detector trade-off (latency vs false reports)", func(q bool) (*exp.Table, error) {
			o := exp.DefaultDetectors()
			if q {
				o.Adapters = 16
				o.LossRates = []float64{0, 0.10}
				o.Window = 60 * time.Second
			}
			return exp.Detectors(o)
		}},
		{"hbload", "E5: steady-state detection load vs AMG size per scheme", func(q bool) (*exp.Table, error) {
			o := exp.DefaultHBLoad()
			if q {
				o.GroupSizes = []int{4, 16, 64}
				o.Window = 30 * time.Second
			}
			return exp.HBLoad(o)
		}},
		{"failover", "E6: AMG-leader and Central failover times", func(q bool) (*exp.Table, error) {
			o := exp.DefaultFailover()
			if q {
				o.Nodes = 8
				o.Trials = 1
			}
			return exp.Failover(o)
		}},
		{"move", "E7: Central-initiated domain move (SNMP VLAN rewrite)", func(q bool) (*exp.Table, error) {
			o := exp.DefaultMove()
			if q {
				o.Trials = 1
			}
			return exp.Move(o)
		}},
		{"merge", "E8: partition heal and AMG merge", func(q bool) (*exp.Table, error) {
			o := exp.DefaultMerge()
			if q {
				o.Sizes = [][2]int{{3, 3}, {8, 8}}
			}
			return exp.Merge(o)
		}},
		{"centralload", "E9: report-plane load at GulfStream Central", func(q bool) (*exp.Table, error) {
			o := exp.DefaultCentralLoad()
			if q {
				o.FarmSizes = []int{10, 25}
				o.Window = 30 * time.Second
			}
			return exp.CentralLoad(o)
		}},
		{"verify", "E10: discovered-vs-database verification", func(q bool) (*exp.Table, error) {
			return exp.Verify(exp.DefaultVerify())
		}},
		{"tb0", "E11: beacon-phase ablation (Tb=0 vs beaconing, §2.1)", func(q bool) (*exp.Table, error) {
			o := exp.DefaultBeaconPhase()
			if q {
				o.Adapters = 16
			}
			return exp.BeaconPhase(o)
		}},
		{"journal", "E12: Central failover recovery, state journal off vs on", func(q bool) (*exp.Table, error) {
			o := exp.DefaultJournalFailover()
			if q {
				o.AdminNodes, o.UniformNodes, o.Trials = 3, 5, 1
			}
			return exp.JournalFailover(o)
		}},
		{"phases", "E13: cold-start stabilization decomposed by protocol phase (flight recorder)", func(q bool) (*exp.Table, error) {
			o := exp.DefaultPhases()
			if q {
				o.AdminNodes, o.UniformNodes, o.Trials = 2, 4, 1
			}
			return exp.Phases(o)
		}},
		{"trace", "E13b: flight-recorder capture overhead, recorder off vs on", func(q bool) (*exp.Table, error) {
			o := exp.DefaultTraceOverhead()
			if q {
				o.AdminNodes, o.UniformNodes = 2, 4
				o.Window, o.Trials = 15*time.Second, 1
			}
			return exp.TraceOverhead(o)
		}},
		{"scale", "E14: cold-start scale sweep, 500-4000 adapters (kernel throughput)", func(q bool) (*exp.Table, error) {
			o := exp.DefaultScale()
			o.JSONPath = "BENCH_scale.json"
			if q {
				o.Adapters = []int{100, 250}
				o.Trials = 1
			}
			return exp.Scale(o)
		}},
	}
}

// serveMain is the `gsbench serve` subcommand: the E17 serving-plane
// sweep (farm size x churn schedule x notification delay) with the
// user-visible error-seconds as the measured quantity. Exits nonzero
// when a sanity property fails (a cell did not recover, an audit found
// stale routes, or error-seconds were not monotone in delay).
func serveMain(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	o := exp.DefaultServe()
	quick := fs.Bool("quick", false, "run the scaled-down variant (one farm size, two delays)")
	fs.Int64Var(&o.Seed, "seed", o.Seed, "workload and farm seed")
	fs.Float64Var(&o.SessionsPerSec, "sessions", o.SessionsPerSec, "mean session arrivals/s per domain")
	fs.IntVar(&o.Parallel, "parallel", 0, "concurrent cells (0 = NumCPU)")
	fs.StringVar(&o.JSONPath, "json", "BENCH_serve.json", "raw results path (\"\" disables)")
	_ = fs.Parse(args)
	if *quick {
		o.FrontEnds = []int{2}
		o.Delays = []time.Duration{0, 2 * time.Second}
	}

	start := time.Now()
	tab, failed, err := exp.Serve(o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsbench: serve: %v\n", err)
		os.Exit(1)
	}
	tab.Fprint(os.Stdout)
	fmt.Printf("(serve wall time: %.1fs)\n", time.Since(start).Seconds())
	if failed > 0 {
		os.Exit(1)
	}
}

// lagMain is the `gsbench lag` subcommand: the E18 latency-attribution
// sweep. Exits nonzero when a sanity property fails (an incomplete or
// unclosed span, non-monotone quantiles, or span arithmetic that does
// not reconcile with measured error-seconds).
func lagMain(args []string) {
	fs := flag.NewFlagSet("lag", flag.ExitOnError)
	o := exp.DefaultLag()
	quick := fs.Bool("quick", false, "run the scaled-down variant (one farm size, two trials)")
	fs.Int64Var(&o.Seed, "seed", o.Seed, "base seed (trial i runs at seed+i)")
	fs.IntVar(&o.Trials, "trials", o.Trials, "trials per cell")
	fs.IntVar(&o.Parallel, "parallel", 0, "concurrent cells (0 = NumCPU)")
	fs.StringVar(&o.JSONPath, "json", "BENCH_lag.json", "raw results path (\"\" disables)")
	_ = fs.Parse(args)
	if *quick {
		q := exp.QuickLag()
		o.FrontEnds, o.Trials = q.FrontEnds, q.Trials
	}

	start := time.Now()
	tab, failed, err := exp.Lag(o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsbench: lag: %v\n", err)
		os.Exit(1)
	}
	tab.Fprint(os.Stdout)
	fmt.Printf("(lag wall time: %.1fs)\n", time.Since(start).Seconds())
	if failed > 0 {
		os.Exit(1)
	}
}

// scaleMain is the `gsbench scale` subcommand: the E14 uniform sweep, or
// — with -shards — the zoned multi-shard smoke (baseline plus the given
// shard count, determinism checked, results merged into the BENCH file).
func scaleMain(args []string) {
	fs := flag.NewFlagSet("scale", flag.ExitOnError)
	quick := fs.Bool("quick", false, "run the scaled-down variant")
	shards := fs.Int("shards", 0, "run the zoned sharded smoke at this shard count (0 = legacy uniform sweep)")
	jsonPath := fs.String("json", "BENCH_scale.json", "raw results path (\"\" disables)")
	_ = fs.Parse(args)

	start := time.Now()
	var tab *exp.Table
	var err error
	if *shards > 0 {
		o := exp.QuickScaleB(*shards)
		if !*quick {
			o = exp.DefaultScaleB()
			o.Shards = []int{1, *shards}
		}
		o.JSONPath = *jsonPath
		tab, err = exp.ScaleB(o)
	} else {
		o := exp.DefaultScale()
		o.JSONPath = *jsonPath
		if *quick {
			o.Adapters = []int{100, 250}
			o.Trials = 1
		}
		tab, err = exp.Scale(o)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsbench: scale: %v\n", err)
		os.Exit(1)
	}
	tab.Fprint(os.Stdout)
	fmt.Printf("(scale wall time: %.1fs)\n", time.Since(start).Seconds())
}

// scalebMain is the `gsbench scaleb` subcommand: the full E14b sweep —
// 10k/50k/100k adapters across shard counts with bit-identical replay
// checked at every point.
func scalebMain(args []string) {
	fs := flag.NewFlagSet("scaleb", flag.ExitOnError)
	quick := fs.Bool("quick", false, "run the scaled-down variant (one small point)")
	jsonPath := fs.String("json", "BENCH_scale.json", "raw results path (\"\" disables)")
	_ = fs.Parse(args)
	o := exp.DefaultScaleB()
	if *quick {
		o = exp.QuickScaleB(4)
	}
	o.JSONPath = *jsonPath
	start := time.Now()
	tab, err := exp.ScaleB(o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsbench: scaleb: %v\n", err)
		os.Exit(1)
	}
	tab.Fprint(os.Stdout)
	fmt.Printf("(scaleb wall time: %.1fs)\n", time.Since(start).Seconds())
}

// chaosMain is the `gsbench chaos` subcommand: the E15 seed sweep with
// its own flag set (invoked before the experiment-runner flags parse).
func chaosMain(args []string) {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	o := exp.DefaultChaos()
	fs.IntVar(&o.Seeds, "seeds", o.Seeds, "number of seeds to sweep")
	fs.Int64Var(&o.From, "from", o.From, "first seed")
	fs.IntVar(&o.Rounds, "rounds", o.Rounds, "fault injections per schedule")
	fs.IntVar(&o.Parallel, "parallel", 0, "concurrent simulations (0 = NumCPU)")
	fs.BoolVar(&o.Partition, "partition", false, "enable segment partition/drop faults")
	fs.BoolVar(&o.Failover, "failover", false, "enable active-Central failover faults")
	fs.BoolVar(&o.SeedBug, "seed-bug", false, "plant UnsafeSkipVerify to prove the harness catches it")
	settle := fs.Duration("settle", 0, "override post-fault settle window")
	noShrink := fs.Bool("no-shrink", false, "skip shrinking failing schedules")
	fs.StringVar(&o.ArtifactDir, "o", "chaos-artifacts", "directory for reproduction artifacts")
	_ = fs.Parse(args)
	o.Settle = *settle
	o.Shrink = !*noShrink

	start := time.Now()
	tab, failing, err := exp.Chaos(o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gsbench: chaos: %v\n", err)
		os.Exit(1)
	}
	tab.Fprint(os.Stdout)
	fmt.Printf("(chaos wall time: %.1fs)\n", time.Since(start).Seconds())
	if failing > 0 {
		os.Exit(1)
	}
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "chaos" {
		chaosMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		serveMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "lag" {
		lagMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "scale" {
		scaleMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "scaleb" {
		scalebMain(os.Args[2:])
		return
	}
	quick := flag.Bool("quick", false, "run scaled-down variants")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gsbench [-quick] [-list] [experiment ...]\n\nexperiments:\n")
		for _, r := range runners() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", r.name, r.desc)
		}
	}
	flag.Parse()

	all := runners()
	if *list {
		for _, r := range all {
			fmt.Printf("%-12s %s\n", r.name, r.desc)
		}
		return
	}
	want := flag.Args()
	selected := all
	if len(want) > 0 {
		selected = nil
		for _, name := range want {
			found := false
			for _, r := range all {
				if r.name == name {
					selected = append(selected, r)
					found = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "gsbench: unknown experiment %q\n", name)
				flag.Usage()
				os.Exit(2)
			}
		}
	}
	exitCode := 0
	for _, r := range selected {
		start := time.Now()
		tab, err := r.run(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gsbench: %s: %v\n", r.name, err)
			exitCode = 1
			continue
		}
		tab.Fprint(os.Stdout)
		fmt.Printf("(%s wall time: %.1fs)\n\n", r.name, time.Since(start).Seconds())
	}
	os.Exit(exitCode)
}
