package exp

import (
	"fmt"
	"time"

	"repro/internal/amg"
	"repro/internal/central"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/farm"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// coreView aliases the committed-membership type used in daemon hooks.
type coreView = amg.Membership

// FailoverOptions parameterizes the leader / Central failover timings.
type FailoverOptions struct {
	Seed   int64
	Nodes  int
	Trials int
}

// DefaultFailover uses a modest admin segment.
func DefaultFailover() FailoverOptions {
	return FailoverOptions{Seed: 41, Nodes: 12, Trials: 3}
}

// Failover measures (a) AMG leader death -> recommitted group under the
// successor, and (b) Central death -> new Central with a rebuilt view.
func Failover(o FailoverOptions) (*Table, error) {
	t := &Table{
		ID:      "E6/failover",
		Title:   fmt.Sprintf("leader and Central failover times (%d admin nodes)", o.Nodes),
		Columns: []string{"trial", "leader death -> recommit(s)", "central death -> re-elected(s)", "central view rebuilt(s)"},
	}
	for trial := 0; trial < o.Trials; trial++ {
		cfg := core.DefaultConfig()
		cfg.BeaconPhase = 3 * time.Second
		cc := central.DefaultConfig()
		cc.StabilizeWait = 5 * time.Second
		f, err := farm.Build(farm.Spec{
			Seed:         o.Seed + int64(trial)*13,
			AdminNodes:   o.Nodes,
			UniformNodes: 4, UniformAdapters: 2, // extra groups to rebuild
			Core: cfg, Central: cc, RecordEvents: true,
		})
		if err != nil {
			return nil, err
		}
		// Track recommits of the admin group.
		var recommitAt time.Duration
		var killedAt time.Duration
		var oldLeader transport.IP
		for _, d := range f.Daemons {
			d := d
			d.SetHooks(core.Hooks{Commit: func(adapter transport.IP, view coreView) {
				if killedAt > 0 && recommitAt == 0 && !view.Contains(oldLeader) && view.Size() > 1 {
					recommitAt = f.Sched.Now()
				}
			}})
			_ = d
		}
		f.Start()
		if _, ok := f.RunUntilStable(2 * time.Minute); !ok {
			return nil, fmt.Errorf("exp: failover trial %d never stabilized", trial)
		}
		// Identify and kill the Central host (the admin leader).
		var hostName string
		for name, d := range f.Daemons {
			if d.Running() && d.HostingCentral() {
				hostName = name
			}
		}
		host := f.Daemons[hostName]
		oldLeader = host.AdminIP()
		groupsBefore := f.ActiveCentral().GroupCount()
		killedAt = f.Sched.Now()
		if err := f.KillNode(hostName); err != nil {
			return nil, err
		}
		// Run until a new central is elected and has the full view again.
		var electedAt, rebuiltAt time.Duration
		deadline := f.Sched.Now() + 3*time.Minute
		for f.Sched.Now() < deadline {
			f.RunFor(250 * time.Millisecond)
			c := f.ActiveCentral()
			if c == nil {
				continue
			}
			if electedAt == 0 {
				for _, e := range f.Bus.Log() {
					if e.Kind == event.CentralElected && e.Time > killedAt {
						electedAt = e.Time
						break
					}
				}
			}
			if electedAt != 0 && rebuiltAt == 0 && c.GroupCount() >= groupsBefore {
				rebuiltAt = f.Sched.Now()
				break
			}
		}
		row := []string{fmt.Sprintf("%d", trial+1)}
		if recommitAt > 0 {
			row = append(row, secs2(recommitAt-killedAt))
		} else {
			row = append(row, "n/a")
		}
		if electedAt > 0 {
			row = append(row, secs2(electedAt-killedAt))
		} else {
			row = append(row, "timeout")
		}
		if rebuiltAt > 0 {
			row = append(row, secs2(rebuiltAt-killedAt))
		} else {
			row = append(row, "timeout")
		}
		t.AddRow(row...)
	}
	t.Note("leader recommit = detect (k x Th) + consensus window + probe + 2PC;")
	t.Note("view rebuild adds the successor's Ts quiet wait and full re-reports")
	return t, nil
}

// MoveOptions parameterizes the dynamic reconfiguration experiment.
type MoveOptions struct {
	Seed   int64
	Trials int
}

// DefaultMove uses two domains of the Figure 2 shape.
func DefaultMove() MoveOptions { return MoveOptions{Seed: 51, Trials: 3} }

// Move reproduces §3.1: Central moves a node between domains via SNMP
// VLAN rewriting; the old AMG recommits, the new AMG absorbs the node,
// Central infers the move and suppresses the false failure notifications.
func Move(o MoveOptions) (*Table, error) {
	t := &Table{
		ID:      "E7/move",
		Title:   "central-initiated domain move (SNMP VLAN rewrite)",
		Columns: []string{"trial", "snmp done(s)", "move inferred(s)", "suppressed fails", "unsuppressed fails", "verify clean"},
	}
	for trial := 0; trial < o.Trials; trial++ {
		cfg := core.DefaultConfig()
		cfg.BeaconPhase = 3 * time.Second
		cfg.OrphanTimeout = 8 * time.Second
		cc := central.DefaultConfig()
		cc.StabilizeWait = 5 * time.Second
		f, err := farm.Build(farm.Spec{
			Seed:       o.Seed + int64(trial)*17,
			AdminNodes: 2,
			Domains: []farm.DomainSpec{
				{Name: "acme", FrontEnds: 2, BackEnds: 3},
				{Name: "globex", FrontEnds: 2, BackEnds: 3},
			},
			Core: cfg, Central: cc, RecordEvents: true,
		})
		if err != nil {
			return nil, err
		}
		f.Start()
		if _, ok := f.RunUntilStable(3 * time.Minute); !ok {
			return nil, fmt.Errorf("exp: move trial %d never stabilized", trial)
		}
		mover := "acme-be-01"
		movedAdapter := f.Nodes[mover].Adapters[1]
		start := f.Sched.Now()
		var snmpDone time.Duration
		if err := f.MoveNodeToDomain(mover, "globex", func(err error) {
			if err == nil {
				snmpDone = f.Sched.Now()
			}
		}); err != nil {
			return nil, err
		}
		f.RunFor(2 * time.Minute)

		var inferredAt time.Duration
		suppressed, unsuppressed := 0, 0
		for _, e := range f.Bus.Log() {
			if e.Time < start {
				continue
			}
			switch e.Kind {
			case event.NodeMoved:
				if e.Adapter == movedAdapter && inferredAt == 0 {
					inferredAt = e.Time
				}
			case event.AdapterFailed:
				if e.Adapter == movedAdapter {
					if e.Suppressed {
						suppressed++
					} else {
						unsuppressed++
					}
				}
			}
		}
		clean := "yes"
		if ms := f.ActiveCentral().Verify(); len(ms) != 0 {
			clean = fmt.Sprintf("no (%d findings)", len(ms))
		}
		inf := "never"
		if inferredAt > 0 {
			inf = secs2(inferredAt - start)
		}
		sd := "never"
		if snmpDone > 0 {
			sd = secs2(snmpDone - start)
		}
		t.AddRow(fmt.Sprintf("%d", trial+1), sd, inf, fmt.Sprintf("%d", suppressed),
			fmt.Sprintf("%d", unsuppressed), clean)
	}
	t.Note("paper §3.1: neither AMG leader knows a move happened; Central correlates the leave/join pair,")
	t.Note("and expected (Central-initiated) changes suppress external failure notifications")
	return t, nil
}

// MergeOptions parameterizes the partition-heal experiment.
type MergeOptions struct {
	Seed  int64
	Sizes [][2]int
}

// DefaultMerge sweeps partition size pairs.
func DefaultMerge() MergeOptions {
	return MergeOptions{Seed: 61, Sizes: [][2]int{{2, 2}, {4, 4}, {8, 8}, {16, 4}, {16, 16}}}
}

// Merge measures how long two independently formed AMGs take to merge
// under the higher-IP leader once their partition heals.
func Merge(o MergeOptions) (*Table, error) {
	t := &Table{
		ID:      "E8/merge",
		Title:   "partition heal: time to one merged AMG",
		Columns: []string{"sizes", "merge time(s)", "final leader is highest"},
	}
	for _, pair := range o.Sizes {
		dur, leaderOK, err := mergeTrial(o.Seed, pair[0], pair[1])
		if err != nil {
			return nil, err
		}
		ok := "yes"
		if !leaderOK {
			ok = "NO"
		}
		t.AddRow(fmt.Sprintf("%d+%d", pair[0], pair[1]), secs2(dur), ok)
	}
	t.Note("merging AMGs are led by the AMG leader with the highest IP address (paper §2.1)")
	return t, nil
}

func mergeTrial(seed int64, a, b int) (time.Duration, bool, error) {
	cfg := core.DefaultConfig()
	cfg.BeaconPhase = 3 * time.Second
	// Two VLANs initially; we heal by re-VLANing partition B.
	f, err := farm.Build(farm.Spec{
		Seed:            seed,
		UniformNodes:    a + b,
		UniformAdapters: 2, // admin + one data segment per node
		NodesPerSwitch:  a + b,
		Core:            cfg,
	})
	if err != nil {
		return 0, false, err
	}
	// Pre-partition: move the data adapters of the last b nodes onto a
	// private VLAN before starting.
	var partB []transport.IP
	for i := a; i < a+b; i++ {
		ip := f.Nodes[fmt.Sprintf("node-%03d", i)].Adapters[1]
		partB = append(partB, ip)
		sw, port, _ := f.Fabric.Locate(ip)
		if err := sw.SetPortVLAN(port, 900); err != nil {
			return 0, false, err
		}
	}
	f.Start()
	f.RunFor(cfg.BeaconPhase + 15*time.Second)
	// Heal: everyone back onto VLAN 11.
	healedAt := f.Sched.Now()
	for _, ip := range partB {
		sw, port, _ := f.Fabric.Locate(ip)
		if err := sw.SetPortVLAN(port, 11); err != nil {
			return 0, false, err
		}
	}
	// Wait until every data adapter shares one committed view.
	var all []transport.IP
	var highest transport.IP
	for i := 0; i < a+b; i++ {
		ip := f.Nodes[fmt.Sprintf("node-%03d", i)].Adapters[1]
		all = append(all, ip)
		if ip > highest {
			highest = ip
		}
	}
	deadline := f.Sched.Now() + 5*time.Minute
	for f.Sched.Now() < deadline {
		f.RunFor(250 * time.Millisecond)
		if merged, leader := oneGroup(f, all); merged {
			return f.Sched.Now() - healedAt, leader == highest, nil
		}
	}
	return 0, false, fmt.Errorf("exp: merge %d+%d never converged", a, b)
}

// oneGroup reports whether all adapters share one committed view.
func oneGroup(f *farm.Farm, ips []transport.IP) (bool, transport.IP) {
	var leader transport.IP
	for i, ip := range ips {
		v, ok := viewOf(f, ip)
		if !ok || v.Size() != len(ips) {
			return false, 0
		}
		if i == 0 {
			leader = v.Leader()
		} else if v.Leader() != leader {
			return false, 0
		}
	}
	return true, leader
}

func viewOf(f *farm.Farm, ip transport.IP) (coreView, bool) {
	for _, d := range f.Daemons {
		if v, ok := d.View(ip); ok {
			return v, true
		}
	}
	return coreView{}, false
}

// CentralLoadOptions parameterizes the §4.2 Central-load experiment.
type CentralLoadOptions struct {
	Seed      int64
	FarmSizes []int
	Window    time.Duration
	// ChurnPeriod injects a node kill+restart this often during the churn
	// window (0 disables).
	ChurnPeriod time.Duration
}

// DefaultCentralLoad sweeps farm sizes.
func DefaultCentralLoad() CentralLoadOptions {
	return CentralLoadOptions{
		Seed:        71,
		FarmSizes:   []int{10, 25, 50, 100},
		Window:      60 * time.Second,
		ChurnPeriod: 10 * time.Second,
	}
}

// CentralLoad measures report-plane traffic: during formation, in steady
// state (the paper: zero), and under churn (delta-only).
func CentralLoad(o CentralLoadOptions) (*Table, error) {
	t := &Table{
		ID:      "E9/centralload",
		Title:   "report-plane load at GulfStream Central (messages)",
		Columns: []string{"nodes", "adapters", "formation msgs", "steady msgs/min", "churn msgs/min"},
	}
	for _, n := range o.FarmSizes {
		cfg := core.DefaultConfig()
		cfg.BeaconPhase = 5 * time.Second
		f, err := farm.Build(farm.Spec{
			Seed:            o.Seed + int64(n),
			UniformNodes:    n,
			UniformAdapters: 3,
			StartSkew:       2 * time.Second,
			Core:            cfg,
		})
		if err != nil {
			return nil, err
		}
		f.Start()
		if _, ok := f.RunUntilStable(5 * time.Minute); !ok {
			return nil, fmt.Errorf("exp: centralload n=%d never stabilized", n)
		}
		formation := f.Metrics.PlaneCounter(metrics.Plane(transport.PortReport)).Messages

		f.Metrics.Reset(f.Sched.Now())
		f.RunFor(o.Window)
		steady := f.Metrics.PlaneCounter(metrics.Plane(transport.PortReport)).Messages
		steadyPerMin := float64(steady) / o.Window.Minutes()

		churnPerMin := 0.0
		if o.ChurnPeriod > 0 {
			f.Metrics.Reset(f.Sched.Now())
			end := f.Sched.Now() + o.Window
			i := 0
			for f.Sched.Now() < end {
				name := fmt.Sprintf("node-%03d", i%n)
				_ = f.KillNode(name)
				f.RunFor(o.ChurnPeriod / 2)
				_ = f.RestartNode(name)
				f.RunFor(o.ChurnPeriod / 2)
				i++
			}
			churn := f.Metrics.PlaneCounter(metrics.Plane(transport.PortReport)).Messages
			churnPerMin = float64(churn) / o.Window.Minutes()
		}
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", 3*n),
			fmt.Sprintf("%d", formation), fmt.Sprintf("%.1f", steadyPerMin),
			fmt.Sprintf("%.1f", churnPerMin))
	}
	t.Note("paper §2.2: 'in the steady state, no network resources are used for group membership information';")
	t.Note("leaders forward only membership changes, so churn traffic scales with churn, not farm size")
	return t, nil
}

// VerifyOptions parameterizes the verification experiment.
type VerifyOptions struct {
	Seed int64
}

// DefaultVerify uses a two-domain farm.
func DefaultVerify() VerifyOptions { return VerifyOptions{Seed: 81} }

// Verify seeds one inconsistency of each kind between the database and
// the farm, and checks Central's discovered-vs-database comparison flags
// each (paper §2.2's inversion: discover first, then check the database).
func Verify(o VerifyOptions) (*Table, error) {
	cfg := core.DefaultConfig()
	cfg.BeaconPhase = 3 * time.Second
	cc := central.DefaultConfig()
	cc.StabilizeWait = 5 * time.Second
	f, err := farm.Build(farm.Spec{
		Seed:       o.Seed,
		AdminNodes: 2,
		Domains: []farm.DomainSpec{
			{Name: "acme", FrontEnds: 2, BackEnds: 3},
			{Name: "globex", FrontEnds: 2, BackEnds: 3},
		},
		Core: cfg, Central: cc, RecordEvents: true,
	})
	if err != nil {
		return nil, err
	}
	// Seed 1: wrong expected VLAN in the database (WrongSegment).
	wrongSeg := f.Nodes["acme-be-01"].Adapters[1]
	_ = f.DB.SetExpectedVLAN(wrongSeg, 999)

	f.Start()
	if _, ok := f.RunUntilStable(3 * time.Minute); !ok {
		return nil, fmt.Errorf("exp: verify farm never stabilized")
	}
	// Seed 2: an adapter the database knows nothing about (UnknownAdapter)
	// — simulate by removing... the DB is already built; instead report a
	// rogue adapter by killing a node the DB expects (MissingAdapter).
	missing := "globex-be-02"
	_ = f.KillNode(missing)
	f.RunFor(30 * time.Second)

	findings := f.ActiveCentral().Verify()
	counts := map[string]int{}
	for _, m := range findings {
		counts[m.Kind.String()]++
	}
	t := &Table{
		ID:      "E10/verify",
		Title:   "discovered-vs-database verification findings",
		Columns: []string{"seeded inconsistency", "expected kind", "found"},
	}
	t.AddRow("db expects vlan 999 for "+wrongSeg.String(), "wrong-segment", fmt.Sprintf("%d", counts["wrong-segment"]))
	t.AddRow("node "+missing+" down (its adapters vanish)", "missing-adapter", fmt.Sprintf("%d", counts["missing-adapter"]))
	t.AddRow("(control) everything else", "no findings", fmt.Sprintf("%d other", len(findings)-counts["wrong-segment"]-counts["missing-adapter"]))
	t.Note("paper §2.2: inconsistencies are flagged and the affected adapters can be disabled until resolved")
	return t, nil
}
