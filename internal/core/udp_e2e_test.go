package core

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/transport"
)

// End-to-end over real UDP sockets: three daemons on loopback addresses
// discover each other via multicast beacons and form one AMG. Skipped
// where the sandbox lacks loopback multicast.
func TestUDPDaemonsFormGroup(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test")
	}
	// Loopback binding check.
	probe, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0})
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	probe.Close()
	if !loopbackMulticastWorks(t) {
		t.Skip("loopback multicast unavailable in this environment")
	}

	rt := transport.NewRuntime()
	rt.RunAsync()
	defer rt.Close()

	cfg := DefaultConfig()
	cfg.BeaconPhase = 2 * time.Second
	cfg.BeaconInterval = 300 * time.Millisecond
	cfg.LeaderBeaconInterval = 500 * time.Millisecond
	cfg.StableWait = 500 * time.Millisecond
	cfg.DeferTimeout = 3 * time.Second
	cfg.DetectorParams.Interval = 300 * time.Millisecond
	cfg.OrphanTimeout = 5 * time.Second
	cfg.ConsensusWindow = 600 * time.Millisecond

	ips := []transport.IP{
		transport.MakeIP(127, 0, 0, 1),
		transport.MakeIP(127, 0, 0, 2),
		transport.MakeIP(127, 0, 0, 3),
	}
	var daemons []*Daemon
	for i, ip := range ips {
		ep, err := transport.NewUDPEndpoint(rt, ip)
		if err != nil {
			t.Skipf("cannot bind %v: %v", ip, err)
		}
		defer ep.Close()
		d, err := NewDaemon(cfg, "udp-node", rt, rand.New(rand.NewSource(int64(i+1))), []transport.Endpoint{ep})
		if err != nil {
			t.Fatal(err)
		}
		daemons = append(daemons, d)
	}
	done := make(chan struct{})
	rt.Post(func() {
		for _, d := range daemons {
			d.Start()
		}
		close(done)
	})
	<-done

	deadline := time.Now().Add(12 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(500 * time.Millisecond)
		sizes := make(chan int, 1)
		rt.Post(func() {
			best := 0
			for _, d := range daemons {
				if v, ok := d.View(d.AdminIP()); ok && v.Size() > best {
					best = v.Size()
				}
			}
			sizes <- best
		})
		if <-sizes == len(ips) {
			// Converged over real sockets.
			agree := make(chan bool, 1)
			rt.Post(func() {
				v0, ok0 := daemons[0].View(daemons[0].AdminIP())
				all := ok0
				for _, d := range daemons[1:] {
					v, ok := d.View(d.AdminIP())
					if !ok || !v.Equal(v0) {
						all = false
					}
				}
				agree <- all
			})
			if !<-agree {
				continue // still settling
			}
			return
		}
	}
	// Multicast discovery never happened: typical of sandboxes without
	// loopback multicast routing. Distinguish from a real protocol bug:
	// if every daemon at least formed its singleton, the protocol ran and
	// only the fabric is missing.
	formed := make(chan int, 1)
	rt.Post(func() {
		n := 0
		for _, d := range daemons {
			if v, ok := d.View(d.AdminIP()); ok && v.Size() >= 1 {
				n++
			}
		}
		formed <- n
	})
	if <-formed == len(ips) {
		t.Skip("daemons ran but multicast beacons did not propagate (no loopback multicast here)")
	}
	t.Fatal("daemons did not even form singleton groups over UDP")
}

// loopbackMulticastWorks probes whether a multicast datagram sent on the
// loopback interface is delivered to a listener — false in most sandboxes.
func loopbackMulticastWorks(t *testing.T) bool {
	t.Helper()
	group := &net.UDPAddr{IP: net.IPv4(224, 0, 0, 71), Port: 47430}
	lo, err := net.InterfaceByName("lo")
	if err != nil {
		lo = nil
	}
	l, err := net.ListenMulticastUDP("udp4", lo, group)
	if err != nil {
		return false
	}
	defer l.Close()
	s, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0})
	if err != nil {
		return false
	}
	defer s.Close()
	if _, err := s.WriteToUDP([]byte("probe"), group); err != nil {
		return false
	}
	_ = l.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
	buf := make([]byte, 16)
	_, _, err = l.ReadFromUDP(buf)
	return err == nil
}
