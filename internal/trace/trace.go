// Package trace is the protocol flight recorder: a typed, structured
// record for every GulfStream state transition — beacons, two-phase
// membership commits, suspicion → verification → recommit, reports,
// journal streaming, Central failover — captured in a bounded ring
// buffer that can be dumped on demand (gsd's debug endpoint, gsctl's
// trace command) or automatically when a failure-class record lands.
//
// Records carry two correlation axes:
//
//   - a 2PC transaction id (Group = the committing leader, Token = the
//     leader-issued round token), tying Prepare/PrepareAck/Commit/Abort
//     records of one membership change together across daemons;
//   - a group incarnation (Group = lineage leader, Version = committed
//     view version), tying every record to the view it happened under.
//
// The recorder is safe for concurrent use; Record on a nil recorder or
// a disabled recorder is a cheap no-op, so protocol code is instrumented
// unconditionally.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
)

// Kind classifies a trace record.
type Kind uint8

// Record kinds, one per protocol state transition.
const (
	// KBeaconSent: a discovery/leader beacon left this adapter.
	KBeaconSent Kind = iota + 1
	// KBeaconHeard: a beacon from Peer arrived.
	KBeaconHeard
	// KFormed: the beacon phase ended with this adapter as the highest
	// IP heard; Detail carries the formation attempt size.
	KFormed
	// KPrepareSent: the leader opened (or retransmitted) a 2PC round.
	KPrepareSent
	// KPrepareRecv: a member received a Prepare; Detail flags rejection.
	KPrepareRecv
	// KPrepareAck: the leader received one member's vote.
	KPrepareAck
	// KCommitSent: the leader committed the round.
	KCommitSent
	// KCommitRecv: a member installed a committed view.
	KCommitRecv
	// KAbortRecv: a member dropped a pending view on the leader's Abort.
	KAbortRecv
	// KRetarget: a 2PC round restarted against a reduced membership.
	KRetarget
	// KViewCommit: an adapter finalized a membership view (both roles);
	// Group+Version identify the committed incarnation.
	KViewCommit
	// KLeaderTakeover: the successor promoted itself after verifying the
	// leader's death (Peer = the old leader).
	KLeaderTakeover
	// KOrphaned: the adapter lost its whole group and reformed fresh.
	KOrphaned
	// KEvicted: a leader's Evict made this adapter abandon a stale view.
	KEvicted
	// KSuspicionRaised: this daemon's detector reported Peer silent
	// (after the loopback self-test); Detail carries the reason.
	KSuspicionRaised
	// KSuspicionRecv: a Suspect report about Peer arrived.
	KSuspicionRecv
	// KLoopbackFailed: the loopback self-test failed; the suspicion was
	// swallowed (the §3 false-report guard).
	KLoopbackFailed
	// KProbeSent: a verification probe went to Peer (Token = nonce).
	KProbeSent
	// KVerdictDead: verification declared Peer dead.
	KVerdictDead
	// KVerdictAlive: verification found Peer alive (Group/Version carry
	// its self-declared membership).
	KVerdictAlive
	// KFalseAccusation: a leader verified a suspect alive and still in
	// the group — the report was false and is ignored (paper §3).
	KFalseAccusation
	// KReportQueued: a leader queued a membership report for Central
	// (Token = report seq; Detail full|delta).
	KReportQueued
	// KReportAcked: Central acknowledged report Token.
	KReportAcked
	// KReportApplied: Central applied report Token from Peer.
	KReportApplied
	// KResyncSent: Central asked for full reports (Detail has scope).
	KResyncSent
	// KJournalStreamed: the active Central streamed journal record Token
	// to the warm standby Peer.
	KJournalStreamed
	// KJournalIngested: a standby ingested streamed journal record Token.
	KJournalIngested
	// KJournalReplayed: an activating Central rebuilt its view from the
	// journal instead of a multicast resync pull.
	KJournalReplayed
	// KCentralActivated: this daemon became GulfStream Central.
	KCentralActivated
	// KCentralDeactivated: Central leadership was lost.
	KCentralDeactivated
	// KServeBackendDown: the serving plane's balancer pulled backend Node
	// out of rotation (failure notification, planned-move drain, or
	// verification quarantine — Detail says which).
	KServeBackendDown
	// KServeBackendUp: the balancer returned backend Node to rotation for
	// the domain in Detail.
	KServeBackendUp
	// KServeMisroute: Count requests for the domain in Detail resolved
	// against ground truth as errors (routed to Node, or unrouted when
	// Node is empty).
	KServeMisroute
	// KFaultInjected: the harness injected a fault (or repair) against
	// Node — the ground-truth instant a lifecycle span starts from.
	// Detail names the fault ("kill", "restart", "surprise-move <dom>").
	KFaultInjected
	// KNotifySent: Central published an incident-correlated notification.
	// Node is the hosting Central's node, Token the incident id, and
	// Detail is "<event-kind> <subject>" (the subject node or switch).
	KNotifySent
	// KIncidentClosed: Central resolved an incident — the subject
	// recovered, completed its move, or its switch came back. Token is
	// the incident id, Detail the subject.
	KIncidentClosed
	// KServeClean: a domain's request stream went clean again — the first
	// tick with zero errors after a tick that had some. Detail is the
	// domain, Count the tick's request count.
	KServeClean

	kindMax
)

var kindNames = [...]string{
	KBeaconSent:         "beacon-sent",
	KBeaconHeard:        "beacon-heard",
	KFormed:             "formed",
	KPrepareSent:        "2pc-prepare-sent",
	KPrepareRecv:        "2pc-prepare-recv",
	KPrepareAck:         "2pc-prepare-ack",
	KCommitSent:         "2pc-commit-sent",
	KCommitRecv:         "2pc-commit-recv",
	KAbortRecv:          "2pc-abort-recv",
	KRetarget:           "2pc-retarget",
	KViewCommit:         "view-commit",
	KLeaderTakeover:     "leader-takeover",
	KOrphaned:           "orphaned",
	KEvicted:            "evicted",
	KSuspicionRaised:    "suspicion-raised",
	KSuspicionRecv:      "suspicion-recv",
	KLoopbackFailed:     "loopback-failed",
	KProbeSent:          "probe-sent",
	KVerdictDead:        "verdict-dead",
	KVerdictAlive:       "verdict-alive",
	KFalseAccusation:    "false-accusation",
	KReportQueued:       "report-queued",
	KReportAcked:        "report-acked",
	KReportApplied:      "report-applied",
	KResyncSent:         "resync-sent",
	KJournalStreamed:    "journal-streamed",
	KJournalIngested:    "journal-ingested",
	KJournalReplayed:    "journal-replayed",
	KCentralActivated:   "central-activated",
	KCentralDeactivated: "central-deactivated",
	KServeBackendDown:   "serve-backend-down",
	KServeBackendUp:     "serve-backend-up",
	KServeMisroute:      "serve-misroute",
	KFaultInjected:      "fault-injected",
	KNotifySent:         "notify-sent",
	KIncidentClosed:     "incident-closed",
	KServeClean:         "serve-clean",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// FailureKinds are the transitions that indicate something went wrong —
// the default trigger set for the recorder's automatic dump.
func FailureKinds() []Kind {
	return []Kind{KOrphaned, KEvicted, KLoopbackFailed, KVerdictDead,
		KFalseAccusation, KLeaderTakeover, KCentralDeactivated}
}

// Record is one protocol state transition. All fields are fixed-size or
// pre-existing strings, so capturing a record never allocates.
type Record struct {
	// Seq is the recorder-assigned capture order (1-based, monotonic).
	Seq uint64
	// T is the daemon clock at capture (virtual time under simulation).
	T time.Duration
	// Kind classifies the transition.
	Kind Kind
	// Node is the recording daemon's node name.
	Node string
	// Self is the adapter the transition happened on (0 if node-level).
	Self transport.IP
	// Peer is the other party, when there is one.
	Peer transport.IP
	// Group is the AMG lineage leader this record belongs to: for 2PC
	// records the committing leader, for view records the view's leader.
	Group transport.IP
	// Version is the group incarnation (committed or proposed view
	// version) the record belongs to.
	Version uint64
	// Token is the per-transaction correlation id: the 2PC round token
	// for membership-change records, the probe nonce for verification
	// records, the report sequence number for reporting records.
	Token uint64
	// Count is a small numeric payload: the view size for KViewCommit,
	// the formation-attempt size for KFormed, the reduced target size
	// for KRetarget, restored groups for KJournalReplayed.
	Count uint32
	// Detail is optional human-oriented context (reason, flags).
	Detail string
}

// TxnID renders the record's 2PC transaction id ("leader#token"), empty
// when the record is not transaction-correlated.
func (r Record) TxnID() string {
	if r.Token == 0 || r.Group == 0 {
		return ""
	}
	return fmt.Sprintf("%v#%d", r.Group, r.Token)
}

// String renders one line for consoles and dumps.
func (r Record) String() string {
	s := fmt.Sprintf("[%11v] %-18s %s", r.T, r.Kind, r.Node)
	if r.Self != 0 {
		s += " self=" + r.Self.String()
	}
	if r.Peer != 0 {
		s += " peer=" + r.Peer.String()
	}
	if r.Group != 0 {
		s += " group=" + r.Group.String()
	}
	if r.Version != 0 {
		s += fmt.Sprintf(" v%d", r.Version)
	}
	if r.Token != 0 {
		s += fmt.Sprintf(" tok=%d", r.Token)
	}
	if r.Count != 0 {
		s += fmt.Sprintf(" n=%d", r.Count)
	}
	if r.Detail != "" {
		s += " (" + r.Detail + ")"
	}
	return s
}

// recordJSON is the dump shape: IPs dotted-quad, kind named, zero fields
// omitted. Building it allocates, but only at dump time — never on the
// capture path.
type recordJSON struct {
	Seq     uint64  `json:"seq"`
	T       float64 `json:"t_sec"`
	Kind    string  `json:"kind"`
	Node    string  `json:"node,omitempty"`
	Self    string  `json:"self,omitempty"`
	Peer    string  `json:"peer,omitempty"`
	Group   string  `json:"group,omitempty"`
	Version uint64  `json:"version,omitempty"`
	Token   uint64  `json:"token,omitempty"`
	Count   uint32  `json:"count,omitempty"`
	Txn     string  `json:"txn,omitempty"`
	Detail  string  `json:"detail,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (r Record) MarshalJSON() ([]byte, error) {
	j := recordJSON{
		Seq: r.Seq, T: r.T.Seconds(), Kind: r.Kind.String(),
		Node: r.Node, Version: r.Version, Token: r.Token,
		Count: r.Count, Txn: r.TxnID(), Detail: r.Detail,
	}
	if r.Self != 0 {
		j.Self = r.Self.String()
	}
	if r.Peer != 0 {
		j.Peer = r.Peer.String()
	}
	if r.Group != 0 {
		j.Group = r.Group.String()
	}
	return json.Marshal(j)
}

// Recorder is the bounded flight recorder. The zero value is unusable;
// build one with New. All methods are safe for concurrent use and safe
// on a nil receiver (no-ops), so instrumentation costs one predictable
// atomic load when tracing is off.
type Recorder struct {
	enabled atomic.Bool

	mu    sync.Mutex
	buf   []Record // ring storage, len == capacity
	total uint64   // records ever captured; buf index = (seq-1) % cap
	sinks []func(Record)

	dumpMask kindSet // bitset of Kinds triggering auto-dump
	dumpFn   func(trigger Record, recent []Record)
}

// kindSet is a bitset over the whole Kind space. Kind is uint8, so four
// words cover every possible value — a single uint64 mask silently
// ignored kinds >= 64, which the kind table has since outgrown.
type kindSet [4]uint64

func (s *kindSet) add(k Kind)      { s[k>>6] |= 1 << (k & 63) }
func (s *kindSet) has(k Kind) bool { return s[k>>6]&(1<<(k&63)) != 0 }

// DefaultCapacity is the ring size used when New gets cap <= 0.
const DefaultCapacity = 8192

// New returns an enabled recorder retaining the last capacity records.
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	r := &Recorder{buf: make([]Record, capacity)}
	r.enabled.Store(true)
	return r
}

// Enable turns capture on or off. Disabled capture is a single atomic
// load per call site.
func (r *Recorder) Enable(on bool) {
	if r != nil {
		r.enabled.Store(on)
	}
}

// Enabled reports whether capture is on.
func (r *Recorder) Enabled() bool { return r != nil && r.enabled.Load() }

// Cap returns the ring capacity (0 for a nil recorder).
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Total returns how many records were ever captured.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many captured records the ring has already
// overwritten.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total <= uint64(len(r.buf)) {
		return 0
	}
	return r.total - uint64(len(r.buf))
}

// AddSink registers fn to observe every captured record (metrics
// bridges, log taps). Sinks run synchronously on the capture path, after
// the ring append, outside the recorder lock.
func (r *Recorder) AddSink(fn func(Record)) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.sinks = append(r.sinks, fn)
	r.mu.Unlock()
}

// AutoDump arms the automatic dump: when a record of one of the given
// kinds (FailureKinds() if none are named) is captured, fn receives the
// trigger and a snapshot of the ring at that instant. fn runs on the
// capture path — keep it cheap or hand off.
func (r *Recorder) AutoDump(fn func(trigger Record, recent []Record), kinds ...Kind) {
	if r == nil {
		return
	}
	if len(kinds) == 0 {
		kinds = FailureKinds()
	}
	var mask kindSet
	for _, k := range kinds {
		mask.add(k)
	}
	r.mu.Lock()
	r.dumpMask = mask
	r.dumpFn = fn
	r.mu.Unlock()
}

// Record captures one transition. The caller fills every field except
// Seq, which the recorder assigns.
func (r *Recorder) Record(rec Record) {
	if r == nil || !r.enabled.Load() {
		return
	}
	r.mu.Lock()
	r.total++
	rec.Seq = r.total
	r.buf[(rec.Seq-1)%uint64(len(r.buf))] = rec
	sinks := r.sinks
	var dump func(Record, []Record)
	var recent []Record
	if r.dumpFn != nil && r.dumpMask.has(rec.Kind) {
		dump = r.dumpFn
		recent = r.snapshotLocked()
	}
	r.mu.Unlock()
	for _, fn := range sinks {
		fn(rec)
	}
	if dump != nil {
		dump(rec, recent)
	}
}

// snapshotLocked copies the retained records oldest-first. Caller holds mu.
func (r *Recorder) snapshotLocked() []Record {
	n := r.total
	capN := uint64(len(r.buf))
	if n > capN {
		n = capN
	}
	out := make([]Record, 0, n)
	start := r.total - n // seq of oldest retained record, minus one
	for i := uint64(0); i < n; i++ {
		out = append(out, r.buf[(start+i)%capN])
	}
	return out
}

// Snapshot copies the retained records, oldest first.
func (r *Recorder) Snapshot() []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked()
}

// Filter returns the retained records matching pred, oldest first.
func (r *Recorder) Filter(pred func(Record) bool) []Record {
	var out []Record
	for _, rec := range r.Snapshot() {
		if pred(rec) {
			out = append(out, rec)
		}
	}
	return out
}

// dumpJSON is the envelope WriteJSON emits.
type dumpJSON struct {
	Total   uint64   `json:"total"`
	Dropped uint64   `json:"dropped"`
	Cap     int      `json:"capacity"`
	Records []Record `json:"records"`
}

// WriteJSON dumps the retained records as one JSON document.
func (r *Recorder) WriteJSON(w io.Writer) error {
	d := dumpJSON{Total: r.Total(), Dropped: r.Dropped(), Cap: r.Cap(), Records: r.Snapshot()}
	if d.Records == nil {
		d.Records = []Record{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d)
}

// Txn is the correlated timeline of one 2PC transaction: every record
// carrying the same (leader, token) pair, in capture order.
type Txn struct {
	Leader  transport.IP
	Token   uint64
	Records []Record
}

// ID renders the transaction id ("leader#token").
func (t Txn) ID() string { return fmt.Sprintf("%v#%d", t.Leader, t.Token) }

// twoPCKinds are the record kinds that participate in 2PC correlation.
var twoPCKinds = map[Kind]bool{
	KPrepareSent: true, KPrepareRecv: true, KPrepareAck: true,
	KCommitSent: true, KCommitRecv: true, KAbortRecv: true, KRetarget: true,
}

// Txns groups 2PC records by transaction, ordered by each transaction's
// first capture.
func Txns(records []Record) []Txn {
	type key struct {
		leader transport.IP
		token  uint64
	}
	idx := make(map[key]int)
	var out []Txn
	for _, rec := range records {
		if !twoPCKinds[rec.Kind] || rec.Token == 0 || rec.Group == 0 {
			continue
		}
		k := key{rec.Group, rec.Token}
		i, ok := idx[k]
		if !ok {
			i = len(out)
			idx[k] = i
			out = append(out, Txn{Leader: k.leader, Token: k.token})
		}
		out[i].Records = append(out[i].Records, rec)
	}
	return out
}
