package wire

import (
	"fmt"

	"repro/internal/transport"
)

// enc is an append-style binary writer (big-endian).
type enc struct {
	buf []byte
}

func (e *enc) u8(v byte) { e.buf = append(e.buf, v) }

func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *enc) u16(v uint16) { e.buf = append(e.buf, byte(v>>8), byte(v)) }

func (e *enc) u32(v uint32) {
	e.buf = append(e.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func (e *enc) u64(v uint64) {
	e.u32(uint32(v >> 32))
	e.u32(uint32(v))
}

func (e *enc) ip(v transport.IP) { e.u32(uint32(v)) }

func (e *enc) str(s string) {
	if len(s) > 0xffff {
		s = s[:0xffff]
	}
	e.u16(uint16(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *enc) member(m Member) {
	e.ip(m.IP)
	e.str(m.Node)
	e.u8(m.Index)
	e.bool(m.Admin)
}

func (e *enc) members(ms []Member) {
	e.u16(uint16(len(ms)))
	for _, m := range ms {
		e.member(m)
	}
}

func (e *enc) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *enc) ips(ips []transport.IP) {
	e.u16(uint16(len(ips)))
	for _, ip := range ips {
		e.ip(ip)
	}
}

// dec is a sticky-error binary reader. The intern table, when present,
// deduplicates decoded strings across packets: node names repeat in every
// beacon and membership list, and returning the shared copy keeps the
// hot receive paths allocation-free.
type dec struct {
	buf    []byte
	pos    int
	err    error
	intern map[string]string
}

// internCap bounds the intern table; node names and disable reasons are
// the only strings on the wire, so hitting this means garbage input.
const internCap = 1 << 12

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: reading %s at %d", ErrShort, what, d.pos)
	}
}

func (d *dec) u8() byte {
	if d.err != nil {
		return 0
	}
	if d.pos+1 > len(d.buf) {
		d.fail("u8")
		return 0
	}
	v := d.buf[d.pos]
	d.pos++
	return v
}

func (d *dec) bool() bool { return d.u8() != 0 }

func (d *dec) u16() uint16 {
	if d.err != nil {
		return 0
	}
	if d.pos+2 > len(d.buf) {
		d.fail("u16")
		return 0
	}
	v := uint16(d.buf[d.pos])<<8 | uint16(d.buf[d.pos+1])
	d.pos += 2
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.pos+4 > len(d.buf) {
		d.fail("u32")
		return 0
	}
	v := uint32(d.buf[d.pos])<<24 | uint32(d.buf[d.pos+1])<<16 |
		uint32(d.buf[d.pos+2])<<8 | uint32(d.buf[d.pos+3])
	d.pos += 4
	return v
}

func (d *dec) u64() uint64 {
	hi := uint64(d.u32())
	return hi<<32 | uint64(d.u32())
}

func (d *dec) ip() transport.IP { return transport.IP(d.u32()) }

func (d *dec) str() string {
	n := int(d.u16())
	if d.err != nil {
		return ""
	}
	if d.pos+n > len(d.buf) {
		d.fail("string body")
		return ""
	}
	b := d.buf[d.pos : d.pos+n]
	d.pos += n
	return d.internBytes(b)
}

// internBytes converts b to a string, returning the shared interned copy
// when one exists (the map lookup converts without allocating).
func (d *dec) internBytes(b []byte) string {
	if d.intern != nil {
		if s, ok := d.intern[string(b)]; ok {
			return s
		}
		if len(d.intern) < internCap {
			s := string(b)
			d.intern[s] = s
			return s
		}
	}
	return string(b)
}

func (d *dec) member() Member {
	var m Member
	m.IP = d.ip()
	m.Node = d.str()
	m.Index = d.u8()
	m.Admin = d.bool()
	return m
}

func (d *dec) members() []Member {
	n := int(d.u16())
	if d.err != nil {
		return nil
	}
	// Each member is at least 8 bytes; bound allocation by what can fit.
	if n > (len(d.buf)-d.pos)/8+1 {
		d.fail("member count")
		return nil
	}
	ms := make([]Member, 0, n)
	for i := 0; i < n; i++ {
		ms = append(ms, d.member())
		if d.err != nil {
			return nil
		}
	}
	return ms
}

func (d *dec) bytes() []byte {
	n := int(d.u32())
	if d.err != nil {
		return nil
	}
	if d.pos+n > len(d.buf) {
		d.fail("bytes body")
		return nil
	}
	b := make([]byte, n)
	copy(b, d.buf[d.pos:d.pos+n])
	d.pos += n
	return b
}

func (d *dec) ips() []transport.IP {
	n := int(d.u16())
	if d.err != nil {
		return nil
	}
	if n > (len(d.buf)-d.pos)/4+1 {
		d.fail("ip count")
		return nil
	}
	out := make([]transport.IP, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.ip())
		if d.err != nil {
			return nil
		}
	}
	return out
}

// --- per-message marshalling ---

func (m *Beacon) marshal(e *enc) {
	e.ip(m.Sender)
	e.str(m.Node)
	e.u32(m.Incarnation)
	e.ip(m.Leader)
	e.u64(m.Version)
	e.u32(m.Members)
	e.bool(m.Admin)
}

func (m *Beacon) unmarshal(d *dec) {
	m.Sender = d.ip()
	m.Node = d.str()
	m.Incarnation = d.u32()
	m.Leader = d.ip()
	m.Version = d.u64()
	m.Members = d.u32()
	m.Admin = d.bool()
}

func (m *Prepare) marshal(e *enc) {
	e.ip(m.Leader)
	e.u64(m.Version)
	e.u64(m.Token)
	e.u8(byte(m.Op))
	e.members(m.Members)
}

func (m *Prepare) unmarshal(d *dec) {
	m.Leader = d.ip()
	m.Version = d.u64()
	m.Token = d.u64()
	m.Op = Op(d.u8())
	m.Members = d.members()
}

func (m *PrepareAck) marshal(e *enc) {
	e.ip(m.From)
	e.ip(m.Leader)
	e.u64(m.Version)
	e.u64(m.Token)
	e.bool(m.OK)
}

func (m *PrepareAck) unmarshal(d *dec) {
	m.From = d.ip()
	m.Leader = d.ip()
	m.Version = d.u64()
	m.Token = d.u64()
	m.OK = d.bool()
}

func (m *Commit) marshal(e *enc) {
	e.ip(m.Leader)
	e.u64(m.Version)
	e.u64(m.Token)
	e.members(m.Members)
}

func (m *Commit) unmarshal(d *dec) {
	m.Leader = d.ip()
	m.Version = d.u64()
	m.Token = d.u64()
	m.Members = d.members()
}

func (m *Abort) marshal(e *enc) {
	e.ip(m.Leader)
	e.u64(m.Version)
	e.u64(m.Token)
}

func (m *Abort) unmarshal(d *dec) {
	m.Leader = d.ip()
	m.Version = d.u64()
	m.Token = d.u64()
}

func (m *JoinRequest) marshal(e *enc) {
	e.ip(m.From)
	e.str(m.Node)
	e.u8(m.Index)
	e.bool(m.Admin)
	e.u32(m.Incarnation)
}

func (m *JoinRequest) unmarshal(d *dec) {
	m.From = d.ip()
	m.Node = d.str()
	m.Index = d.u8()
	m.Admin = d.bool()
	m.Incarnation = d.u32()
}

func (m *MergeOffer) marshal(e *enc) {
	e.ip(m.From)
	e.u64(m.Version)
	e.members(m.Members)
}

func (m *MergeOffer) unmarshal(d *dec) {
	m.From = d.ip()
	m.Version = d.u64()
	m.Members = d.members()
}

func (m *Heartbeat) marshal(e *enc) {
	e.ip(m.From)
	e.u64(m.Seq)
	e.u64(m.Version)
	e.ip(m.Leader)
}

func (m *Heartbeat) unmarshal(d *dec) {
	m.From = d.ip()
	m.Seq = d.u64()
	m.Version = d.u64()
	m.Leader = d.ip()
}

func (m *Suspect) marshal(e *enc) {
	e.ip(m.Reporter)
	e.ip(m.Suspect)
	e.u64(m.Version)
	e.u8(byte(m.Reason))
}

func (m *Suspect) unmarshal(d *dec) {
	m.Reporter = d.ip()
	m.Suspect = d.ip()
	m.Version = d.u64()
	m.Reason = SuspectReason(d.u8())
}

func (m *Probe) marshal(e *enc) {
	e.ip(m.From)
	e.u64(m.Nonce)
}

func (m *Probe) unmarshal(d *dec) {
	m.From = d.ip()
	m.Nonce = d.u64()
}

func (m *ProbeAck) marshal(e *enc) {
	e.ip(m.From)
	e.u64(m.Nonce)
	e.ip(m.Leader)
	e.u64(m.Version)
}

func (m *ProbeAck) unmarshal(d *dec) {
	m.From = d.ip()
	m.Nonce = d.u64()
	m.Leader = d.ip()
	m.Version = d.u64()
}

func (m *Ping) marshal(e *enc) {
	e.ip(m.From)
	e.u64(m.Nonce)
	e.ip(m.Leader)
}

func (m *Ping) unmarshal(d *dec) {
	m.From = d.ip()
	m.Nonce = d.u64()
	m.Leader = d.ip()
}

func (m *PingAck) marshal(e *enc) {
	e.ip(m.From)
	e.ip(m.Target)
	e.u64(m.Nonce)
}

func (m *PingAck) unmarshal(d *dec) {
	m.From = d.ip()
	m.Target = d.ip()
	m.Nonce = d.u64()
}

func (m *PingReq) marshal(e *enc) {
	e.ip(m.From)
	e.ip(m.Target)
	e.u64(m.Nonce)
}

func (m *PingReq) unmarshal(d *dec) {
	m.From = d.ip()
	m.Target = d.ip()
	m.Nonce = d.u64()
}

func (m *Report) marshal(e *enc) {
	e.ip(m.Leader)
	e.str(m.Segment)
	e.u64(m.Version)
	e.u64(m.Seq)
	e.bool(m.Full)
	e.ip(m.PrevLeader)
	e.u64(m.PrevVersion)
	e.bool(m.Fresh)
	e.members(m.Members)
	e.ips(m.Left)
}

func (m *Report) unmarshal(d *dec) {
	m.Leader = d.ip()
	m.Segment = d.str()
	m.Version = d.u64()
	m.Seq = d.u64()
	m.Full = d.bool()
	m.PrevLeader = d.ip()
	m.PrevVersion = d.u64()
	m.Fresh = d.bool()
	m.Members = d.members()
	m.Left = d.ips()
}

func (m *ReportAck) marshal(e *enc) {
	e.ip(m.From)
	e.u64(m.Seq)
}

func (m *ReportAck) unmarshal(d *dec) {
	m.From = d.ip()
	m.Seq = d.u64()
}

func (m *Disable) marshal(e *enc) {
	e.ip(m.Target)
	e.str(m.Reason)
}

func (m *Disable) unmarshal(d *dec) {
	m.Target = d.ip()
	m.Reason = d.str()
}

func (m *SubPoll) marshal(e *enc) {
	e.ip(m.From)
	e.u32(m.Subgroup)
	e.u64(m.Nonce)
}

func (m *SubPoll) unmarshal(d *dec) {
	m.From = d.ip()
	m.Subgroup = d.u32()
	m.Nonce = d.u64()
}

func (m *SubPollAck) marshal(e *enc) {
	e.ip(m.From)
	e.u32(m.Subgroup)
	e.u64(m.Nonce)
	e.u32(m.Alive)
}

func (m *SubPollAck) unmarshal(d *dec) {
	m.From = d.ip()
	m.Subgroup = d.u32()
	m.Nonce = d.u64()
	m.Alive = d.u32()
}

func (m *Evict) marshal(e *enc) {
	e.ip(m.Leader)
	e.ip(m.Target)
	e.u64(m.Version)
}

func (m *Evict) unmarshal(d *dec) {
	m.Leader = d.ip()
	m.Target = d.ip()
	m.Version = d.u64()
}

func (m *ResyncRequest) marshal(e *enc) { e.ip(m.From) }

func (m *ResyncRequest) unmarshal(d *dec) { m.From = d.ip() }

func (m *JournalAppend) marshal(e *enc) {
	e.ip(m.From)
	e.u64(m.Epoch)
	e.u64(m.Seq)
	e.bytes(m.Payload)
}

func (m *JournalAppend) unmarshal(d *dec) {
	m.From = d.ip()
	m.Epoch = d.u64()
	m.Seq = d.u64()
	m.Payload = d.bytes()
}

func (m *JournalAck) marshal(e *enc) {
	e.ip(m.From)
	e.u64(m.Epoch)
	e.u64(m.Seq)
}

func (m *JournalAck) unmarshal(d *dec) {
	m.From = d.ip()
	m.Epoch = d.u64()
	m.Seq = d.u64()
}
